// Registry: serve MANY models from ONE process. Three of the seed
// workloads — voice (ISOLET), activity (PAMAP2), vitals (DIABETES) —
// become tenants of a serve/registry.Registry with heterogeneous
// dimensionality, squeezed through a replica pool smaller than the
// tenant count so LRU parking is visible, then driven over the
// /t/{model}/... HTTP surface: per-tenant predictions, the
// default-tenant alias, a fourth tenant installed live over
// PUT /t/{model}, per-tenant and aggregate stats, a learning tenant
// whose feedback window survives being parked, and a drain.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/registry"
)

// tenant is one workload to install: a model ID, the synthetic
// benchmark standing in for its data, its hypervector width, and
// whether it keeps learning from labeled feedback in production.
type tenant struct {
	id      string
	dataset string
	dim     int
	learn   bool
}

func main() {
	// 1. Train the three workloads at deliberately different shapes —
	//    different feature widths, class counts, AND dimensionality. One
	//    registry serves them all from one process; per-tenant replica
	//    scratch keeps the zero-alloc batched path intact for each shape.
	tenants := []tenant{
		{"voice", "ISOLET", 1024, false},
		{"activity", "PAMAP2", 512, false},
		{"vitals", "DIABETES", 256, true}, // vitals keeps learning in production
	}
	reg, err := registry.New(2) // pool of 2 replica slots < 3 tenants: someone always parks
	if err != nil {
		log.Fatal(err)
	}
	tests := map[string]disthd.DataSplit{}
	for _, t := range tenants {
		train, test, err := disthd.SyntheticBenchmark(t.dataset, 0.10, 42)
		if err != nil {
			log.Fatal(err)
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = t.dim
		cfg.Iterations = 5
		fmt.Printf("training tenant %q on %s (D=%d)...\n", t.id, t.dataset, t.dim)
		m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		spec := registry.Spec{
			Options: serve.Options{MaxBatch: 64, MaxDelay: 2 * time.Millisecond, Replicas: 1},
		}
		if t.learn {
			spec.Learner = &serve.LearnerOptions{Seed: 1}
		}
		if err := reg.Install(t.id, m, spec); err != nil {
			log.Fatal(err)
		}
		tests[t.id] = test
	}

	// 2. One HTTP surface for all of them. Every single-model endpoint
	//    lives at /t/{model}/...; the first-installed tenant ("voice")
	//    also answers the plain routes, byte-identical to a single-model
	//    disthd-serve — existing clients keep working unchanged.
	srv := registry.NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Println("serving", len(tenants), "tenants on", base)

	// 3. Per-tenant traffic. Touching a parked tenant wakes it: the
	//    least-recently-used idle tenant is parked (its serving unit torn
	//    down, the model kept) to free a replica slot.
	for _, t := range tenants {
		test := tests[t.id]
		classes, err := postBatch(base+"/t/"+t.id, test.X[:4])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("/t/%s/predict_batch -> %v (want %v)\n", t.id, classes, test.Y[:4])
	}

	// 4. The default-tenant alias: the plain route answers exactly what
	//    /t/voice answers.
	aliased, err := postBatch(base, tests["voice"].X[:2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default alias /predict_batch -> %v (voice)\n", aliased)

	// 5. Grow the fleet live: PUT /t/{model} with a JSON install spec
	//    trains and installs a fourth tenant server-side (the other
	//    install form PUTs raw Model.Save bytes). DELETE drains and
	//    removes. This is the admin plane `disthd-serve -registry` exposes.
	spec := `{"demo": "UCIHAR", "dim": 384, "scale": 0.1, "iterations": 3}`
	req, err := http.NewRequest(http.MethodPut, base+"/t/gestures", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("PUT /t/gestures:", resp.Status)

	var models struct {
		Default string                 `json:"default"`
		Tenants []registry.TenantStats `json:"tenants"`
	}
	if err := getJSON(base+"/models", &models); err != nil {
		log.Fatal(err)
	}
	ids := make([]string, len(models.Tenants))
	for i, t := range models.Tenants {
		ids[i] = t.ID
	}
	fmt.Printf("GET /models: %v (default %q)\n", ids, models.Default)

	// 6. Stats come in two scopes: /t/{model}/stats for one tenant
	//    (answers even while parked, without waking it) and the aggregate
	//    /stats with the registry gauges — pool occupancy, LRU evictions,
	//    admission-control rejections.
	var ts registry.TenantStats
	if err := getJSON(base+"/t/activity/stats", &ts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant activity: resident=%v wakes=%d evictions=%d (D=%d, %d classes)\n",
		ts.Resident, ts.Wakes, ts.Evictions, ts.Dim, ts.Classes)
	var agg registry.Stats
	if err := getJSON(base+"/stats", &agg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry: %d/%d replica slots used by %d/%d resident tenants; %d evictions, %d wakes\n",
		agg.UsedReplicas, agg.Capacity, agg.ResidentCount, agg.TenantCount, agg.Evictions, agg.Wakes)

	// 7. Parking is lossless for learners. "vitals" was installed with a
	//    learner: feed it labeled samples over /learn, then force it out
	//    of the pool by touching the other tenants. While parked its
	//    /stats still reports the frozen learner gauges, and the next
	//    feedback sample wakes it with the window, drift baseline, and
	//    counters exactly where they stopped — eviction churn never
	//    resets a tenant to a cold learner.
	vt := tests["vitals"]
	for i := 0; i < 8; i++ {
		if err := postLearn(base+"/t/vitals", vt.X[i], vt.Y[i]); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range []string{"voice", "activity"} { // 2 wakes through pool 2 park vitals
		if _, err := postBatch(base+"/t/"+id, tests[id].X[:1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := getJSON(base+"/t/vitals/stats", &ts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vitals parked: resident=%v, frozen learner gauges feedback=%d\n",
		ts.Resident, ts.Learner.Feedback)
	if err := postLearn(base+"/t/vitals", vt.X[8], vt.Y[8]); err != nil { // wakes vitals
		log.Fatal(err)
	}
	if err := getJSON(base+"/t/vitals/stats", &ts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vitals woken: resident=%v, learner feedback=%d (continued, not reset)\n",
		ts.Resident, ts.Serve.Learner.Feedback)

	// 8. Drain: every tenant's accepted micro-batches are answered before
	//    the registry reports closed; learners are settled on the way out,
	//    so no background retrain outlives the process.
	hs.Close()
	srv.Close()
	fmt.Println("drained cleanly")
}

// postBatch sends rows to {base}/predict_batch as JSON and returns the
// predicted classes.
func postBatch(base string, rows [][]float64) ([]int, error) {
	body, err := json.Marshal(map[string][][]float64{"x": rows})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/predict_batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("predict_batch: %s", resp.Status)
	}
	var out struct {
		Classes []int `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Classes, nil
}

// postLearn sends one labeled feedback sample to {base}/learn.
func postLearn(base string, x []float64, label int) error {
	body, err := json.Marshal(map[string]any{"x": x, "label": label})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/learn", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("learn: %s", resp.Status)
	}
	return nil
}

// getJSON decodes a GET response body into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
