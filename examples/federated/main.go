// Federated HDC: several edge devices each train DistHD on their own
// private data shard with a shared frozen encoder; only the class
// hypervectors (a few KiB) travel to the aggregator, which merges them by
// bundling — no raw data ever leaves a device. This is the collaborative
// high-dimensional learning pattern the paper's related work (ref [5])
// builds on, expressed through this library's public API.
package main

import (
	"fmt"
	"log"

	disthd "repro"
)

func main() {
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.25, 33)
	if err != nil {
		log.Fatal(err)
	}

	// Shared configuration: same seed, regeneration disabled so every
	// device ends up with the identical encoder.
	cfg := disthd.DefaultConfig()
	cfg.Dim = 512
	cfg.Iterations = 15
	cfg.RegenRate = 0
	cfg.Seed = 33

	// Partition the training data across 4 devices (disjoint shards).
	const parties = 4
	var models []*disthd.Model
	for p := 0; p < parties; p++ {
		var shardX [][]float64
		var shardY []int
		for i := p; i < train.Len(); i += parties {
			shardX = append(shardX, train.X[i])
			shardY = append(shardY, train.Y[i])
		}
		m, err := disthd.TrainWithConfig(shardX, shardY, train.Classes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := m.Evaluate(test.X, test.Y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %d: trained on %d private samples, solo accuracy %.2f%%\n",
			p, len(shardX), 100*acc)
		models = append(models, m)
	}

	// Aggregate: bundle the class hypervectors.
	global, err := disthd.MergeModels(models...)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := global.Evaluate(test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged global model accuracy: %.2f%% (no raw data shared)\n", 100*acc)

	// Reference: a centralized model with all the data.
	central, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cacc, err := central.Evaluate(test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized reference:        %.2f%%\n", 100*cacc)
}
