// Symbolic sequence recognition with pure HDC primitives: event sequences
// from different device behaviours (boot, normal operation, intrusion) are
// encoded with permutation n-grams and recognized with an associative
// cleanup memory — no gradient training at all. This demonstrates the
// hyperdimensional substrate underneath DistHD (bundling, binding,
// permutation, cleanup recall) on the kind of discrete event streams IoT
// devices emit.
//
// Note: this example exercises internal packages directly (it lives inside
// the module); applications outside this repo use the numeric public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/assoc"
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/rng"
)

const (
	dim      = 4096
	alphabet = 16 // distinct event types (syscall classes, opcodes, ...)
	order    = 3  // trigrams
)

// behaviour generates event sequences from a labeled stochastic grammar.
type behaviour struct {
	name string
	// transition[s] lists the likely successors of event s.
	transition [][]int
}

func makeBehaviours() []behaviour {
	return []behaviour{
		{name: "boot", transition: [][]int{
			0: {1}, 1: {2}, 2: {3}, 3: {4, 5}, 4: {6}, 5: {6}, 6: {7},
			7: {0}, 8: {8}, 9: {9}, 10: {10}, 11: {11}, 12: {12}, 13: {13}, 14: {14}, 15: {15},
		}},
		{name: "normal", transition: [][]int{
			0: {8}, 8: {9, 10}, 9: {8}, 10: {11}, 11: {8, 12}, 12: {8},
			1: {8}, 2: {8}, 3: {8}, 4: {8}, 5: {8}, 6: {8}, 7: {8}, 13: {8}, 14: {8}, 15: {8},
		}},
		{name: "intrusion", transition: [][]int{
			0: {13}, 13: {14}, 14: {15, 13}, 15: {13, 12}, 12: {14},
			1: {13}, 2: {13}, 3: {13}, 4: {13}, 5: {13}, 6: {13}, 7: {13}, 8: {13}, 9: {13}, 10: {13}, 11: {13},
		}},
	}
}

func (b behaviour) sample(r *rng.Rand, length int) []int {
	seq := make([]int, length)
	state := 0
	for i := range seq {
		next := b.transition[state]
		if r.Float64() < 0.15 { // noise: random event
			state = r.Intn(alphabet)
		} else {
			state = next[r.Intn(len(next))]
		}
		seq[i] = state
	}
	return seq
}

func main() {
	enc := encoding.NewNGram(alphabet, dim, order, 99)
	r := rng.New(100)
	behaviours := makeBehaviours()

	// "Training": bundle 30 example sequences per behaviour into one
	// prototype hypervector each and store them in the cleanup memory.
	memory := assoc.New(dim)
	for _, b := range behaviours {
		proto := make([]float64, dim)
		for i := 0; i < 30; i++ {
			h, err := enc.EncodeSequence(b.sample(r, 40))
			if err != nil {
				log.Fatal(err)
			}
			mat.Axpy(proto, 1, h)
		}
		if err := memory.Store(b.name, proto); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d behaviour prototypes (%d-grams over %d event types, D=%d)\n\n",
		memory.Len(), order, alphabet, dim)

	// Recognition: classify fresh sequences by cleanup recall.
	confusion := map[string]map[string]int{}
	const trials = 60
	correct := 0
	for i := 0; i < trials; i++ {
		b := behaviours[i%len(behaviours)]
		h, err := enc.EncodeSequence(b.sample(r, 40))
		if err != nil {
			log.Fatal(err)
		}
		name, _, sim, err := memory.Recall(h)
		if err != nil {
			log.Fatal(err)
		}
		if confusion[b.name] == nil {
			confusion[b.name] = map[string]int{}
		}
		confusion[b.name][name]++
		if name == b.name {
			correct++
		}
		if i < 3 {
			fmt.Printf("sample %d: true=%-9s recognized=%-9s (similarity %.3f)\n", i, b.name, name, sim)
		}
	}
	fmt.Printf("\nrecognition accuracy: %.1f%% over %d sequences\n",
		100*float64(correct)/trials, trials)
	for _, b := range behaviours {
		fmt.Printf("  %-9s -> %v\n", b.name, confusion[b.name])
	}

	// Unknown-behaviour rejection via thresholded recall.
	randomSeq := make([]int, 40)
	for i := range randomSeq {
		randomSeq[i] = r.Intn(alphabet)
	}
	h, err := enc.EncodeSequence(randomSeq)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, sim, err := memory.RecallAbove(h, 0.35); err != nil {
		fmt.Printf("\nrandom event soup correctly rejected (best similarity %.3f < 0.35)\n", sim)
	} else {
		fmt.Printf("\nnote: random soup matched a prototype at %.3f (threshold too low for this run)\n", sim)
	}
}
