// Quickstart: train a DistHD classifier on a synthetic benchmark, evaluate
// it, inspect the top-2 predictions the algorithm is built around, and
// round-trip the model through disk.
package main

import (
	"fmt"
	"log"
	"os"

	disthd "repro"
)

func main() {
	// 1. Data: a compact UCIHAR-like activity recognition task.
	//    (Swap in your own data with disthd.LoadCSVFile + disthd.Split.)
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test samples, %d features, %d classes\n",
		train.Len(), test.Len(), len(train.X[0]), train.Classes)

	// 2. Train. DistHD's point is reaching high accuracy at low
	//    dimensionality: D=512 here, where a static HDC encoder would
	//    need several thousand dimensions.
	cfg := disthd.DefaultConfig()
	cfg.Dim = 512
	cfg.Iterations = 20
	cfg.Seed = 42
	model, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d iterations, %d dimensions regenerated (effective D* = %d)\n",
		model.Info.Iterations, model.Info.RegeneratedDims, model.Info.EffectiveDim)

	// 3. Evaluate.
	acc, err := model.Evaluate(test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	top2, err := model.TopKAccuracy(test.X, test.Y, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.2f%% (top-2: %.2f%%)\n", 100*acc, 100*top2)

	// 4. Inspect a single prediction with its runner-up — the top-2
	//    classification primitive that drives dimension regeneration.
	first, second, err := model.PredictTop2(test.X[0])
	if err != nil {
		log.Fatal(err)
	}
	scores, err := model.Scores(test.X[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample 0: true class %d, predicted %d (score %.3f), runner-up %d (score %.3f)\n",
		test.Y[0], first, scores[first], second, scores[second])

	// 5. Save and reload.
	path := "quickstart-model.dhd"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	defer os.Remove(path)
	reloaded, err := disthd.Load(g)
	if err != nil {
		log.Fatal(err)
	}
	acc2, err := reloaded.Evaluate(test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded model accuracy: %.2f%% (bit-identical: %v)\n", 100*acc2, acc == acc2)
}
