// Activity recognition on a wearable-IMU-like stream (the PAMAP2 scenario
// from the paper's evaluation): train once, then classify a stream of
// sensor windows one at a time — the edge-inference pattern DistHD targets
// — and report per-class sensitivity/specificity, the operating metrics
// §III-C of the paper discusses.
package main

import (
	"fmt"
	"log"
	"time"

	disthd "repro"
)

var activities = []string{"walking", "running", "cycling", "sitting", "stairs"}

func main() {
	// PAMAP2 stand-in: 54 IMU features, 5 activities.
	train, test, err := disthd.SyntheticBenchmark("PAMAP2", 0.25, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wearable stream: %d training windows, %d live windows, %d IMU features\n",
		train.Len(), test.Len(), len(train.X[0]))

	cfg := disthd.DefaultConfig()
	cfg.Dim = 512
	cfg.Iterations = 20
	cfg.Seed = 7
	start := time.Now()
	model, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %.2fs (D=%d, D*=%d)\n\n",
		time.Since(start).Seconds(), model.Dim(), model.Info.EffectiveDim)

	// Classify the "live" stream window by window, as an edge device would.
	k := train.Classes
	confusion := make([][]int, k)
	for i := range confusion {
		confusion[i] = make([]int, k)
	}
	inferStart := time.Now()
	for i, window := range test.X {
		pred, err := model.Predict(window)
		if err != nil {
			log.Fatal(err)
		}
		confusion[test.Y[i]][pred]++
	}
	perWindow := time.Since(inferStart).Seconds() / float64(test.Len())
	fmt.Printf("streamed %d windows at %.0f windows/s (%.3f ms per window)\n\n",
		test.Len(), 1/perWindow, 1000*perWindow)

	// Per-activity operating metrics.
	fmt.Printf("%-10s %12s %12s %12s\n", "activity", "windows", "sensitivity", "specificity")
	correct := 0
	for c := 0; c < k; c++ {
		var tp, fn, fp, tn float64
		for t := 0; t < k; t++ {
			for p := 0; p < k; p++ {
				n := float64(confusion[t][p])
				switch {
				case t == c && p == c:
					tp += n
				case t == c:
					fn += n
				case p == c:
					fp += n
				default:
					tn += n
				}
			}
		}
		correct += confusion[c][c]
		sens, spec := 0.0, 0.0
		if tp+fn > 0 {
			sens = tp / (tp + fn)
		}
		if tn+fp > 0 {
			spec = tn / (tn + fp)
		}
		fmt.Printf("%-10s %12.0f %11.1f%% %11.1f%%\n", activities[c], tp+fn, 100*sens, 100*spec)
	}
	fmt.Printf("\noverall accuracy: %.2f%%\n", 100*float64(correct)/float64(test.Len()))
	fmt.Println("\ntip: tune Config.Alpha up for higher sensitivity or Beta/Theta up for")
	fmt.Println("higher specificity (the trade-off of the paper's Fig. 6).")
}
