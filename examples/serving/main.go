// Serving: put a trained DistHD model behind the micro-batching HTTP
// inference server, fire concurrent traffic at it, hot-swap a retrained
// model mid-flight, and read the latency/occupancy counters — the full
// online-serving lifecycle from the serve package.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/wire"
)

func main() {
	// 1. Train the live model and a "retrained" successor (same shape,
	//    different seed — stand-in for an online retraining pipeline).
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.10, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 512
	cfg.Iterations = 10
	cfg.Seed = 42
	fmt.Println("training live model...")
	live, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = 43
	fmt.Println("training replacement model...")
	next, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Serve over HTTP on an ephemeral local port. Concurrent /predict
	//    calls coalesce into micro-batches (≤64 rows, ≤2ms linger) and run
	//    through the zero-allocation batched-GEMM kernels.
	srv, err := serve.New(live, serve.Options{
		MaxBatch: 64,
		MinFill:  8,
		MaxDelay: 2 * time.Millisecond,
		Replicas: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Println("serving on", base)

	// 3. Closed-loop traffic: 16 clients, each predicting in a loop.
	var (
		wg             sync.WaitGroup
		correct, total int
		mu             sync.Mutex
	)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < test.Len(); i += 16 {
				class, err := postPredict(base, test.X[i])
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				total++
				if class == test.Y[i] {
					correct++
				}
				mu.Unlock()
			}
		}(c)
	}

	// 4. Hot-swap the model while those clients are in flight, through the
	//    same HTTP surface an operator would use: POST the Model.Save
	//    bytes to /swap.
	var snapshot bytes.Buffer
	if err := next.Save(&snapshot); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/swap", "application/octet-stream", &snapshot)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("hot-swap status:", resp.Status)

	wg.Wait()
	fmt.Printf("served %d predictions, accuracy %.1f%% (mixed across the swap)\n",
		total, 100*float64(correct)/float64(total))

	// 5. The same endpoints also speak the compact binary frame protocol
	//    (repro/serve/wire): send a matrix frame with Content-Type
	//    application/x-disthd-frame and the classes come back as a frame
	//    too — ~3-7x the JSON throughput at high dimensionality. Benchmark
	//    it on a live server with `hdbench -loadgen -http <addr> -wire
	//    binary` (vs `-wire json`).
	classes, err := postPredictBatchBinary(base, test.X[:8])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary /predict_batch answered %d classes: %v\n", len(classes), classes)

	// 6. Read the serving counters — including requests per wire format.
	stats, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(stats.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	stats.Body.Close()
	fmt.Printf("stats: %d requests in %d batches (mean %.1f rows/batch), p50 %.2fms, p99 %.2fms, %d swap(s), wire json/binary %d/%d\n",
		snap.Requests, snap.Batches, snap.MeanBatchRows,
		snap.LatencyMsP50, snap.LatencyMsP99, snap.Swaps,
		snap.WireJSONRequests, snap.WireBinaryRequests)

	// 7. Drain: stop the listener, then the batcher (answers everything
	//    already accepted).
	hs.Close()
	srv.Close()
	fmt.Println("drained cleanly")
}

// postPredictBatchBinary sends rows to /predict_batch as a binary matrix
// frame and decodes the classes frame that mirrors it back.
func postPredictBatchBinary(base string, rows [][]float64) ([]int, error) {
	frame, err := wire.AppendMatrixF64(nil, rows, len(rows[0]))
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/predict_batch", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("predict_batch: %s", resp.Status)
	}
	d := wire.NewDecoder(resp.Body)
	if typ, err := d.Next(); err != nil || typ != wire.TypeClasses {
		return nil, fmt.Errorf("want a classes frame, got %v (%v)", typ, err)
	}
	n, err := d.ClassCount()
	if err != nil {
		return nil, err
	}
	classes := make([]int, n)
	return classes, d.Classes(classes)
}

// postPredict sends one feature vector to /predict.
func postPredict(base string, x []float64) (int, error) {
	body, err := json.Marshal(map[string][]float64{"x": x})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("predict: %s", resp.Status)
	}
	var out struct {
		Class int `json:"class"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Class, nil
}
