// Fault tolerance on a noisy edge device: deploy a trained DistHD model at
// several precisions, inject random memory bit flips at increasing rates,
// and watch accuracy degrade gracefully — the robustness study of the
// paper's Fig. 8, runnable on your own model and data.
package main

import (
	"fmt"
	"log"

	disthd "repro"
)

func main() {
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.20, 5)
	if err != nil {
		log.Fatal(err)
	}

	cfg := disthd.DefaultConfig()
	cfg.Dim = 1024
	cfg.Iterations = 20
	cfg.Seed = 5
	model, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cleanAcc, err := model.Evaluate(test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model: D=%d, float accuracy %.2f%%\n\n", model.Dim(), 100*cleanAcc)

	rates := []float64{0.01, 0.02, 0.05, 0.10, 0.15}
	const trials = 5

	fmt.Printf("%-6s %-10s %-10s", "bits", "memory", "clean")
	for _, r := range rates {
		fmt.Printf(" %7.0f%%", 100*r)
	}
	fmt.Println("   <- bit-flip rate")

	for _, bits := range []int{1, 2, 4, 8} {
		dep, err := model.Deploy(bits)
		if err != nil {
			log.Fatal(err)
		}
		clean, err := dep.Evaluate(test.X, test.Y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-10s %-10s", bits,
			fmt.Sprintf("%d KiB", dep.MemoryBits()/8/1024),
			fmt.Sprintf("%.2f%%", 100*clean))
		for _, rate := range rates {
			var lossSum float64
			for trial := uint64(0); trial < trials; trial++ {
				if err := dep.Restore(); err != nil {
					log.Fatal(err)
				}
				if err := dep.Inject(rate, 100+trial*17); err != nil {
					log.Fatal(err)
				}
				acc, err := dep.Evaluate(test.X, test.Y)
				if err != nil {
					log.Fatal(err)
				}
				if loss := clean - acc; loss > 0 {
					lossSum += loss
				}
			}
			fmt.Printf(" %7.2f%%", 100*lossSum/trials)
		}
		fmt.Println()
	}

	fmt.Println("\nrows show average accuracy LOSS per precision; note the 1-bit deployment")
	fmt.Println("is both the smallest and the most robust — the holographic distribution")
	fmt.Println("of information across dimensions means no single bit matters much.")
}
