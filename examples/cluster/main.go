// Cluster: fault-tolerant sharded serving. Three worker shards train
// privately over a shared frozen encoder and serve over real HTTP; a
// cluster.Coordinator fans batches out to them behind per-worker circuit
// breakers with retries and health probes. One worker is killed mid-run
// and not a single request fails — the survivors and the coordinator's
// local fallback model absorb it. Finally a federated merge round pulls
// the shard models over GET /model, averages them, and gates the merged
// candidate against the incumbent fallback before publishing.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/cluster"
)

func main() {
	// 1. Three shards train on disjoint thirds of the data over one shared
	//    frozen encoder (same Seed, RegenRate 0) — the precondition both
	//    chunk fan-out and federated averaging rely on.
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 512
	cfg.Iterations = 10
	cfg.Seed = 42
	cfg.RegenRate = 0
	n := len(train.X)
	shards := make([]*disthd.Model, 3)
	for i := range shards {
		lo, hi := i*n/3, (i+1)*n/3
		fmt.Printf("training shard %d on rows [%d,%d)...\n", i, lo, hi)
		shards[i], err = disthd.TrainWithConfig(train.X[lo:hi], train.Y[lo:hi], train.Classes, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	// 2. Each shard serves behind the stock micro-batching server on its
	//    own local port — three independent processes in real life.
	var (
		addrs   []string
		servers []*http.Server
	)
	for i, m := range shards {
		srv, err := serve.New(m, serve.Options{MaxBatch: 64, MaxDelay: time.Millisecond, Replicas: 1})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		addrs = append(addrs, "http://"+ln.Addr().String())
		servers = append(servers, hs)
		fmt.Printf("worker %d serving on %s\n", i, addrs[i])
	}

	// 3. The coordinator fans out across the shards: health-gated workers,
	//    250ms call deadline, up to 3 tries with jittered backoff, a
	//    breaker that opens after 3 straight failures, active probes, and
	//    shard 0's model held locally as the below-quorum fallback. The
	//    holdout makes the merge gate in step 6 a real judge.
	c, err := cluster.New(cluster.Config{
		Workers:     addrs,
		CallTimeout: 250 * time.Millisecond,
		Retry: cluster.RetryConfig{
			MaxAttempts: 3,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		},
		Breaker:       cluster.BreakerConfig{FailureThreshold: 3, OpenFor: time.Second},
		ProbeInterval: 100 * time.Millisecond,
		Fallback:      shards[0],
		Merge: cluster.MergeConfig{
			HoldX: test.X[:100],
			HoldY: test.Y[:100],
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 4. Predict through the coordinator with all workers healthy.
	ctx := context.Background()
	predict := func(label string) {
		correct, total := 0, 0
		for i := 0; i+32 <= len(test.X) && total < 512; i += 32 {
			classes, err := c.PredictBatch(ctx, test.X[i:i+32])
			if err != nil {
				log.Fatalf("%s: %v", label, err)
			}
			for j, cl := range classes {
				total++
				if cl == test.Y[i+j] {
					correct++
				}
			}
		}
		fmt.Printf("%s: %d rows predicted, accuracy %.1f%%\n",
			label, total, 100*float64(correct)/float64(total))
	}
	predict("all workers up")

	// 5. Kill worker 0 the hard way and keep predicting: retries rotate
	//    chunks to the survivors, the breaker opens, and the client never
	//    sees an error.
	fmt.Println("killing worker 0...")
	servers[0].Close()
	predict("one worker dead")
	snap := c.Stats()
	fmt.Printf("coordinator: available=%d/%d dropped=%d retries=%d fallback_rows=%d\n",
		snap.Available, len(snap.Workers), snap.Dropped, snap.Retries, snap.FallbackRows)
	for i, w := range snap.Workers {
		fmt.Printf("  worker %d: breaker=%s requests=%d failures=%d\n",
			i, w.Breaker, w.Requests, w.Failures)
	}

	// 6. One federated merge round: pull every reachable shard's model,
	//    average under the disthd.AverageModels contract, and let the
	//    champion/challenger gate decide whether the merged candidate
	//    replaces the incumbent fallback.
	report, err := c.MergeNow(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merge: %d shard(s) merged, published=%v", len(report.Workers), report.Published)
	if report.Verdict != nil {
		fmt.Printf(" (challenger %.3f vs incumbent %.3f on the holdout)",
			report.Verdict.ChallengerAccuracy, report.Verdict.ChampionAccuracy)
	}
	fmt.Println()

	predict("after merge")
}
