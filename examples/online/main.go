// Online learning closes the DistHD loop at deployment time: a drifting
// labeled stream goes in, windowed accuracy comes out, and the model
// retrains itself when drift is detected. A frozen model and a
// disthd.OnlineLearner consume the same stream (PAMAP2-like activity
// windows whose sensors slowly decalibrate, modeled by the dataset
// package's DriftStream); the learner tracks windowed accuracy against its
// post-deployment baseline, flags drift when accuracy sags, and
// warm-retrains a successor on its feedback window by rerunning the staged
// train → score → regenerate pipeline. The successor replaces the old
// model with zero interruption — the same clone-retrain-publish dance the
// serving stack automates behind POST /learn (serve.Learner).
//
// Note: the drift generator lives in an internal package (this example is
// inside the module); external applications corrupt their own streams or
// replicate the ~30-line generator.
package main

import (
	"fmt"
	"log"

	disthd "repro"
	"repro/internal/dataset"
	"repro/internal/mat"
)

func main() {
	// Base task: PAMAP2-like activity windows.
	trainSplit, streamSplit, err := disthd.SyntheticBenchmark("PAMAP2", 0.4, 11)
	if err != nil {
		log.Fatal(err)
	}

	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 12
	cfg.Seed = 11
	frozen, err := disthd.TrainWithConfig(trainSplit.X, trainSplit.Y, trainSplit.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The adaptive side starts from the SAME model: observing feedback
	// never mutates it, and each retrain trains a detached copy.
	learner, err := disthd.NewOnlineLearner(frozen, disthd.OnlineConfig{
		Window:         256, // labeled feedback the retrain draws from
		RecentWindow:   48,  // span of the windowed accuracy estimate
		DriftThreshold: 0.12,
		Retrain:        disthd.RetrainConfig{Iterations: 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A third of the sensors decalibrate, drifting up to +2.5 standard
	// deviations (features are z-scored) by the end of the stream.
	src := &dataset.Dataset{
		Name: "stream", X: mat.FromRows(streamSplit.X),
		Y: streamSplit.Y, Classes: streamSplit.Classes,
	}
	stream, err := dataset.NewDriftStream(src, dataset.DriftShift, 0.33, 2.5, 99)
	if err != nil {
		log.Fatal(err)
	}

	const phases = 6
	phaseLen := stream.Len() / phases
	fmt.Printf("%-8s %-10s %-14s %-16s %-10s\n",
		"phase", "severity", "frozen acc", "adaptive acc", "retrains")
	retrains := 0
	pos := 0
	for p := 0; p < phases; p++ {
		var frozenOK, adaptiveOK, n int
		for ; n < phaseLen || (p == phases-1 && stream.Remaining() > 0); n++ {
			x, label, ok := stream.Next()
			if !ok {
				break
			}
			if pred, err := frozen.Predict(x); err == nil && pred == label {
				frozenOK++
			}
			// Observe: classify with the learner's current model, record
			// the labeled sample, update the drift estimate.
			correct, err := learner.Observe(x, label)
			if err != nil {
				log.Fatal(err)
			}
			if correct {
				adaptiveOK++
			}
			// Drift detected → warm-retrain on the feedback window. The
			// serving stack (serve.Learner) runs this in the background and
			// hot-swaps the result; inline here for a deterministic tour.
			if learner.DriftDetected() {
				if _, err := learner.Retrain(); err != nil {
					log.Fatal(err)
				}
				retrains++
			}
		}
		pos += n
		fmt.Printf("%-8d %-10.2f %-14.3f %-16.3f %-10d\n",
			p, stream.Severity(pos-1),
			float64(frozenOK)/float64(n), float64(adaptiveOK)/float64(n), retrains)
	}
	fmt.Println("\nthe frozen model decays with the drift; the online learner")
	fmt.Println("retrains on its feedback window and tracks the moving input.")
}
