// Online learning closes the DistHD loop at deployment time: a drifting
// labeled stream goes in, windowed accuracy comes out, and the model
// retrains itself when drift is detected — but a retrained successor only
// goes live if it EARNS it. A frozen model and a disthd.OnlineLearner
// consume the same stream (PAMAP2-like activity windows whose sensors
// slowly decalibrate, modeled by the dataset package's DriftStream); the
// learner tracks windowed accuracy against its post-deployment baseline,
// attributes drift to the classes whose accuracy sags (DriftReport), and
// on drift warm-retrains a challenger on the training slice of its
// feedback window with a budget scaled by the measured severity. The
// champion/challenger gate (disthd.Gate) then scores challenger vs
// incumbent on the stratified holdout (the newest per-class samples,
// excluded from retrain data): a passing challenger is refit on the full
// window and replaces the old model with zero interruption — the same
// clone-retrain-judge-publish dance the serving stack automates behind
// POST /learn and POST /retrain (serve.Learner) — while a failing one is
// dropped and the incumbent keeps serving.
//
// Note: the drift generator lives in an internal package (this example is
// inside the module); external applications corrupt their own streams or
// replicate the ~30-line generator.
package main

import (
	"fmt"
	"log"

	disthd "repro"
	"repro/internal/dataset"
	"repro/internal/mat"
)

func main() {
	// Base task: PAMAP2-like activity windows.
	trainSplit, streamSplit, err := disthd.SyntheticBenchmark("PAMAP2", 0.4, 11)
	if err != nil {
		log.Fatal(err)
	}

	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 12
	cfg.Seed = 11
	frozen, err := disthd.TrainWithConfig(trainSplit.X, trainSplit.Y, trainSplit.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The adaptive side starts from the SAME model: observing feedback
	// never mutates it, and each retrain trains a detached copy.
	learner, err := disthd.NewOnlineLearner(frozen, disthd.OnlineConfig{
		Window:          256,  // labeled feedback the retrain draws from
		RecentWindow:    48,   // span of the windowed accuracy estimate
		DriftThreshold:  0.12, // accuracy drop below baseline that flags drift
		HoldoutFraction: 0.2,  // newest per-class slice the gate judges on
		Retrain:         disthd.RetrainConfig{Iterations: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The gate: a challenger must match the incumbent on the holdout to
	// publish (MinMargin 0 — a tie goes to the challenger, which embodies
	// the newer data). Raise MinMargin to demand strict improvement.
	gate := disthd.NewGate(disthd.GateConfig{})

	// A third of the sensors decalibrate, drifting up to +2.5 standard
	// deviations (features are z-scored) by the end of the stream.
	src := &dataset.Dataset{
		Name: "stream", X: mat.FromRows(streamSplit.X),
		Y: streamSplit.Y, Classes: streamSplit.Classes,
	}
	stream, err := dataset.NewDriftStream(src, dataset.DriftShift, 0.33, 2.5, 99)
	if err != nil {
		log.Fatal(err)
	}

	const phases = 6
	phaseLen := stream.Len() / phases
	fmt.Printf("%-8s %-10s %-14s %-16s %-10s %-8s\n",
		"phase", "severity", "frozen acc", "adaptive acc", "published", "rejected")
	pos := 0
	// One gated attempt per accuracy-estimate span: after a rejection the
	// drift flag stays up, and retrying before the windowed estimate has
	// turned over would re-judge the same evidence every sample
	// (serve.Learner applies the same backoff to its auto-retrains).
	lastAttempt := -1 << 30
	seen := 0
	for p := 0; p < phases; p++ {
		var frozenOK, adaptiveOK, n int
		for ; n < phaseLen || (p == phases-1 && stream.Remaining() > 0); n++ {
			x, label, ok := stream.Next()
			if !ok {
				break
			}
			if pred, err := frozen.Predict(x); err == nil && pred == label {
				frozenOK++
			}
			// Observe: classify with the learner's current model, record
			// the labeled sample, update the drift estimate.
			correct, err := learner.Observe(x, label)
			if err != nil {
				log.Fatal(err)
			}
			if correct {
				adaptiveOK++
			}
			seen++
			// Drift detected → challenger retrain, judged by the gate. The
			// serving stack (serve.Learner) runs this in the background and
			// hot-swaps an accepted successor; inline here for a
			// deterministic tour.
			if learner.DriftDetected() && seen-lastAttempt >= 48 {
				lastAttempt = seen
				if worst, drop := learner.DriftReport().Worst(); worst >= 0 {
					fmt.Printf("  drift: class %d sagged %.2f below its baseline\n", worst, drop)
				}
				_, verdict, err := learner.RetrainGated(gate, false)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  gate: challenger %.3f vs champion %.3f on %d held-out -> publish=%v\n",
					verdict.ChallengerAccuracy, verdict.ChampionAccuracy,
					verdict.HoldoutSize, verdict.Publish)
			}
		}
		pos += n
		fmt.Printf("%-8d %-10.2f %-14.3f %-16.3f %-10d %-8d\n",
			p, stream.Severity(pos-1),
			float64(frozenOK)/float64(n), float64(adaptiveOK)/float64(n),
			learner.Retrains(), learner.Rejections())
	}
	fmt.Println("\nthe frozen model decays with the drift; the online learner")
	fmt.Println("retrains on its feedback window, and the champion/challenger")
	fmt.Println("gate only publishes successors that beat the incumbent on the")
	fmt.Println("held-out slice — a bad retrain can never replace a good model.")
}
