// Concept drift on an IoT sensor stream: a deployed model faces a slowly
// shifting input distribution (sensor aging, re-mounting, seasonality),
// modeled by the dataset package's DriftStream. A frozen model decays; the
// same model kept alive with DistHD's online Update rule (Algorithm 1, one
// step per labeled window) tracks the drift. This showcases the
// continual-learning side of the paper's edge story.
//
// Note: the drift generator lives in an internal package (this example is
// inside the module); external applications corrupt their own streams or
// replicate the ~30-line generator.
package main

import (
	"fmt"
	"log"

	disthd "repro"
	"repro/internal/dataset"
	"repro/internal/mat"
)

func main() {
	// Base task: PAMAP2-like activity windows.
	trainSplit, streamSplit, err := disthd.SyntheticBenchmark("PAMAP2", 0.25, 21)
	if err != nil {
		log.Fatal(err)
	}

	cfg := disthd.DefaultConfig()
	cfg.Dim = 512
	cfg.Iterations = 15
	cfg.Seed = 21
	frozen, err := disthd.TrainWithConfig(trainSplit.X, trainSplit.Y, trainSplit.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := disthd.TrainWithConfig(trainSplit.X, trainSplit.Y, trainSplit.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Wrap the test split as a drifting stream: a third of the sensors
	// decalibrate, drifting up to +1.8 (features are z-scored) by the end.
	src := &dataset.Dataset{Name: "stream", X: mat.FromRows(streamSplit.X), Y: streamSplit.Y, Classes: streamSplit.Classes}
	stream, err := dataset.NewDriftStream(src, dataset.DriftShift, 0.33, 1.8, 99)
	if err != nil {
		log.Fatal(err)
	}

	const phases = 6
	phaseLen := stream.Len() / phases
	fmt.Printf("%-8s %-10s %-18s %-18s\n", "phase", "severity", "frozen accuracy", "online accuracy")
	pos := 0
	for p := 0; p < phases; p++ {
		var frozenOK, onlineOK, n int
		var sev float64
		for i := 0; i < phaseLen || (p == phases-1 && stream.Remaining() > 0); i++ {
			x, label, ok := stream.Next()
			if !ok {
				break
			}
			sev = stream.Severity(pos)
			pos++
			fp, err := frozen.Predict(x)
			if err != nil {
				log.Fatal(err)
			}
			ap, err := adaptive.Predict(x)
			if err != nil {
				log.Fatal(err)
			}
			if fp == label {
				frozenOK++
			}
			if ap == label {
				onlineOK++
			}
			n++
			// Prequential: the adaptive model learns after predicting.
			if _, err := adaptive.Update(x, label); err != nil {
				log.Fatal(err)
			}
		}
		if n == 0 {
			break
		}
		fmt.Printf("%-8d %-10.2f %-18s %-18s\n", p, sev,
			fmt.Sprintf("%.2f%%", 100*float64(frozenOK)/float64(n)),
			fmt.Sprintf("%.2f%%", 100*float64(onlineOK)/float64(n)))
	}
	fmt.Println("\nthe frozen model decays as the sensors drift; the online model keeps")
	fmt.Println("absorbing one Algorithm-1 step per labeled window and stays usable.")
}
