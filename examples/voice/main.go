// Voice-recognition (ISOLET-like, 26 spoken letters) demonstrating the
// paper's headline trade-off: a static encoder needs thousands of
// dimensions, while DistHD's dynamic encoder reaches the same accuracy at a
// fraction of the physical dimensionality — which is what makes the model
// fit on an edge device.
package main

import (
	"fmt"
	"log"
	"time"

	disthd "repro"
)

func main() {
	train, test, err := disthd.SyntheticBenchmark("ISOLET", 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voice task: %d train / %d test utterances, %d acoustic features, %d letters\n\n",
		train.Len(), test.Len(), len(train.X[0]), train.Classes)

	fmt.Printf("%-8s %-12s %-12s %-12s %-14s\n", "D", "accuracy", "top-2 acc", "train time", "model memory")
	for _, d := range []int{128, 256, 512, 1024} {
		cfg := disthd.DefaultConfig()
		cfg.Dim = d
		cfg.Iterations = 20
		cfg.Seed = 11
		start := time.Now()
		model, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		acc, err := model.Evaluate(test.X, test.Y)
		if err != nil {
			log.Fatal(err)
		}
		top2, err := model.TopKAccuracy(test.X, test.Y, 2)
		if err != nil {
			log.Fatal(err)
		}
		// Deployed at 8 bits per dimension per class.
		dep, err := model.Deploy(8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12s %-12s %-12s %-14s\n",
			d,
			fmt.Sprintf("%.2f%%", 100*acc),
			fmt.Sprintf("%.2f%%", 100*top2),
			fmt.Sprintf("%.2fs", elapsed.Seconds()),
			fmt.Sprintf("%d KiB", dep.MemoryBits()/8/1024))
	}

	fmt.Println("\nthe dynamic encoder keeps accuracy high as D shrinks — the 8× dimension")
	fmt.Println("reduction of the paper's Fig. 4 — because misleading dimensions are")
	fmt.Println("continuously regenerated instead of being carried dead weight.")
}
