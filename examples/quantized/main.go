// Quantized: freeze a trained f32 model into the packed 1-bit serving
// tier (the paper's most robust quantized configuration), judge the
// accuracy cost the way the champion/challenger gate would, measure the
// batched-inference speedup, then publish the 1-bit tier on a live
// server through POST /quantize and watch the /stats gauges flip.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	disthd "repro"
	"repro/serve"
)

func main() {
	// 1. Train the f32 champion. Keep it: a quantized model is frozen
	//    (no Update/Retrain), so the f32 model stays the one that learns
	//    and every 1-bit successor is quantized from it.
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.30, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 2048
	cfg.Iterations = 10
	cfg.Seed = 42
	fmt.Println("training f32 champion...")
	champion, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Quantize: pack the sign bits of every class hypervector and
	//    switch scoring to XOR+popcount. One call, no retraining.
	q, err := champion.Quantize1Bit()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Judge the accuracy cost exactly as a gated publish would: the
	//    1-bit challenger against the f32 champion on held-out data,
	//    tolerating a bounded regression (2 points here — the same
	//    default POST /quantize uses) because the speedup pays for it.
	gate := disthd.NewGate(disthd.GateConfig{MinMargin: -0.02})
	verdict, err := gate.Evaluate(champion, q, test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f32 %.1f%% vs 1-bit %.1f%% on %d holdout samples (margin %+.1f pts) -> publish=%v\n",
		100*verdict.ChampionAccuracy, 100*verdict.ChallengerAccuracy,
		verdict.HoldoutSize, 100*verdict.Margin, verdict.Publish)
	if !verdict.Publish {
		fmt.Println("gate would refuse this publish; serving stays on the f32 champion")
	}

	// 4. The payoff: batched inference throughput. Both models run the
	//    same PredictBatch surface; the quantized one routes through the
	//    packed encoder and popcount kernels. (Rough wall-clock, not a
	//    benchmark — PERF.md has the measured serving numbers.)
	const rounds = 20
	f32Time := timePredict(champion, test.X, rounds)
	bitTime := timePredict(q, test.X, rounds)
	fmt.Printf("PredictBatch over %d rows x %d rounds: f32 %v, 1-bit %v (%.1fx)\n",
		len(test.X), rounds, f32Time.Round(time.Millisecond),
		bitTime.Round(time.Millisecond), float64(f32Time)/float64(bitTime))

	// 5. The same transition on a live server: serve the f32 champion,
	//    then publish the 1-bit tier through POST /quantize. Without an
	//    attached learner the endpoint publishes unconditionally; with
	//    -learn it gates on the holdout first, as in step 3.
	srv, err := serve.New(champion, serve.Options{MaxBatch: 64, Replicas: 1})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	resp, err := http.Post(base+"/quantize", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var pub struct {
		Published bool `json:"published"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /quantize (no learner attached, so ungated): %s published=%v\n",
		resp.Status, pub.Published)

	// Predictions keep flowing through the same endpoint, now answered
	// by the packed kernels.
	body, _ := json.Marshal(map[string][]float64{"x": test.X[0]})
	pr, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var out struct {
		Class int `json:"class"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	pr.Body.Close()
	fmt.Printf("1-bit /predict: class %d (true %d)\n", out.Class, test.Y[0])

	// 6. The /stats quantization gauges record the transition, and
	//    GET /model now serves the packed wire format.
	st, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(st.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	st.Body.Close()
	mr, err := http.Get(base + "/model")
	if err != nil {
		log.Fatal(err)
	}
	mr.Body.Close()
	fmt.Printf("stats: quantization active=%v publishes=%d; GET /model format=%s\n",
		snap.Quantization.Active, snap.Quantization.Publishes,
		mr.Header.Get("X-DistHD-Format"))

	hs.Close()
	srv.Close()
}

// timePredict runs PredictBatch over X rounds times and returns the
// total wall-clock.
func timePredict(m *disthd.Model, X [][]float64, rounds int) time.Duration {
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := m.PredictBatch(X); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start)
}
