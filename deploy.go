package disthd

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/mat"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/rng"
)

// Deployed is the edge-deployment view of a trained model: the class
// hypervectors packed into a b-bit memory image (1, 2, 4 or 8 bits per
// dimension) plus the encoder needed to map inputs into hyperspace.
// It supports the robustness methodology of the paper's Fig. 8: inject
// random bit flips into the image and measure the surviving accuracy.
type Deployed struct {
	parent *Model
	bits   int
	image  *quant.Image
	// work is the unpacked model used for classification; refreshed after
	// every injection.
	work *model.Model
	// packed caches the 1-bit XOR+popcount engine (lazy, see Packed).
	packed *bitpack.Model
}

// Deploy packs the model's class hypervectors at the given precision.
// Lower precision means a smaller memory footprint and, per the paper,
// higher robustness per stored bit (a flipped low-order bit cannot move a
// weight far when there are no low-order bits).
func (m *Model) Deploy(bits int) (*Deployed, error) {
	if !quant.ValidBits(bits) {
		return nil, fmt.Errorf("disthd: unsupported precision %d bits (want 1, 2, 4 or 8)", bits)
	}
	img, err := quant.Pack(m.clf.Model.Weights.Data, bits)
	if err != nil {
		return nil, err
	}
	d := &Deployed{parent: m, bits: bits, image: img}
	d.refresh()
	return d, nil
}

// refresh rebuilds the working model from the (possibly injured) image.
func (d *Deployed) refresh() {
	vals := d.image.Unpack()
	w := model.New(d.parent.Classes(), d.parent.Dim())
	copy(w.Weights.Data, vals)
	w.RefreshNorms()
	d.work = w
	d.packed = nil // invalidate the packed fast path
}

// Packed returns the XOR+popcount inference engine for a 1-bit deployment
// — the arithmetic an edge accelerator executes, typically an order of
// magnitude faster than float dot products at equal dimensionality. It
// reflects the image's current (possibly injured) state; it is rebuilt
// lazily after Inject/Restore. Only valid when Bits() == 1.
func (d *Deployed) Packed() (*bitpack.Model, error) {
	if d.bits != 1 {
		return nil, fmt.Errorf("disthd: packed inference requires a 1-bit deployment, have %d bits", d.bits)
	}
	if d.packed == nil {
		rows := make([][]float64, d.work.Classes())
		for c := 0; c < d.work.Classes(); c++ {
			rows[c] = d.work.Weights.Row(c)
		}
		d.packed = bitpack.NewModel(rows)
	}
	return d.packed, nil
}

// PredictPacked classifies x through the packed 1-bit engine: the encoded
// query is sign-quantized and compared with word-level XOR+popcount. It
// can differ from Predict on borderline samples — Predict keeps the float
// query magnitudes while edge hardware quantizes the query too — but the
// two agree on the vast majority of inputs.
func (d *Deployed) PredictPacked(x []float64) (int, error) {
	pm, err := d.Packed()
	if err != nil {
		return 0, err
	}
	if len(x) != d.parent.Features() {
		return 0, fmt.Errorf("disthd: input has %d features, model expects %d", len(x), d.parent.Features())
	}
	h := make([]float64, d.parent.clf.Enc.Dim())
	d.parent.clf.Enc.Encode(x, h)
	return pm.Predict(bitpack.FromFloats(h)), nil
}

// Bits returns the deployment precision.
func (d *Deployed) Bits() int { return d.bits }

// MemoryBits returns the size of the deployed model image in bits.
func (d *Deployed) MemoryBits() int { return d.image.TotalBits() }

// Inject flips rate·MemoryBits randomly chosen bits of the model image —
// the paper's hardware-error model — and refreshes the working model.
// Repeated calls accumulate damage; use Restore to heal.
func (d *Deployed) Inject(rate float64, seed uint64) error {
	if err := d.image.FlipBits(rate, rng.New(seed)); err != nil {
		return err
	}
	d.refresh()
	return nil
}

// Restore re-packs the image from the parent model, undoing all injected
// faults.
func (d *Deployed) Restore() error {
	img, err := quant.Pack(d.parent.clf.Model.Weights.Data, d.bits)
	if err != nil {
		return err
	}
	d.image = img
	d.refresh()
	return nil
}

// Predict classifies a feature vector with the deployed (quantized,
// possibly injured) model.
func (d *Deployed) Predict(x []float64) (int, error) {
	if len(x) != d.parent.Features() {
		return 0, fmt.Errorf("disthd: input has %d features, model expects %d", len(x), d.parent.Features())
	}
	h := make([]float64, d.parent.clf.Enc.Dim())
	d.parent.clf.Enc.Encode(x, h)
	return d.work.Predict(h), nil
}

// Evaluate returns the deployed model's accuracy over a labeled set.
func (d *Deployed) Evaluate(X [][]float64, y []int) (float64, error) {
	if len(X) != len(y) || len(X) == 0 {
		return 0, fmt.Errorf("disthd: bad evaluation set (%d samples, %d labels)", len(X), len(y))
	}
	if len(X[0]) != d.parent.Features() {
		return 0, fmt.Errorf("disthd: input has %d features, model expects %d", len(X[0]), d.parent.Features())
	}
	H := d.parent.clf.Enc.EncodeBatch(mat.FromRows(X))
	return model.Accuracy(d.work, H, y), nil
}
