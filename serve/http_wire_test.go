package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"

	disthd "repro"
	"repro/serve/wire"
)

// postFrame posts one binary frame and returns the status, body, and
// response content type.
func postFrame(t *testing.T, url string, frame []byte) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url, wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("Content-Type")
}

// decodeClassesFrame parses a classes frame out of a response body.
func decodeClassesFrame(t *testing.T, body []byte) []int {
	t.Helper()
	d := wire.NewDecoder(bytes.NewReader(body))
	typ, err := d.Next()
	if err != nil || typ != wire.TypeClasses {
		t.Fatalf("response frame = %v, %v; want classes", typ, err)
	}
	n, err := d.ClassCount()
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]int, n)
	if err := d.Classes(classes); err != nil {
		t.Fatal(err)
	}
	return classes
}

// wireEquivalence drives the same batch through JSON and both binary
// matrix encodings against one live server and requires identical
// classes.
func wireEquivalence(t *testing.T, tsURL string, rows [][]float64) {
	t.Helper()
	var jsonOut struct {
		Classes []int `json:"classes"`
	}
	if code := postJSON(t, tsURL+"/predict_batch", predictBatchRequest{X: rows}, &jsonOut); code != http.StatusOK {
		t.Fatalf("JSON /predict_batch status %d", code)
	}
	cols := len(rows[0])
	for _, enc := range []struct {
		name  string
		frame func() ([]byte, error)
	}{
		{"f64", func() ([]byte, error) { return wire.AppendMatrixF64(nil, rows, cols) }},
		{"f32", func() ([]byte, error) { return wire.AppendMatrixF32(nil, rows, cols) }},
	} {
		frame, err := enc.frame()
		if err != nil {
			t.Fatal(err)
		}
		code, body, ct := postFrame(t, tsURL+"/predict_batch", frame)
		if code != http.StatusOK {
			t.Fatalf("%s binary /predict_batch status %d: %s", enc.name, code, body)
		}
		if ct != wire.ContentType {
			t.Fatalf("%s binary response content type %q", enc.name, ct)
		}
		got := decodeClassesFrame(t, body)
		if len(got) != len(jsonOut.Classes) {
			t.Fatalf("%s binary answered %d classes, JSON %d", enc.name, len(got), len(jsonOut.Classes))
		}
		for i := range got {
			if got[i] != jsonOut.Classes[i] {
				t.Fatalf("%s binary class[%d] = %d, JSON says %d", enc.name, i, got[i], jsonOut.Classes[i])
			}
		}
	}
}

func TestWirePredictBatchEquivalence(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)
	wireEquivalence(t, ts.URL, s.test.X[:12])
}

func TestWirePredictBatchEquivalenceQuantized(t *testing.T) {
	s := fixtures(t)
	q, err := s.a.Quantize1Bit()
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, q)
	wireEquivalence(t, ts.URL, s.test.X[:12])
}

func TestWirePredictSingleEquivalence(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)
	for _, x := range s.test.X[:4] {
		var jsonOut struct {
			Class int `json:"class"`
		}
		if code := postJSON(t, ts.URL+"/predict", predictRequest{X: x}, &jsonOut); code != http.StatusOK {
			t.Fatalf("JSON /predict status %d", code)
		}
		frame, err := wire.AppendMatrixF64(nil, [][]float64{x}, len(x))
		if err != nil {
			t.Fatal(err)
		}
		code, body, _ := postFrame(t, ts.URL+"/predict", frame)
		if code != http.StatusOK {
			t.Fatalf("binary /predict status %d: %s", code, body)
		}
		got := decodeClassesFrame(t, body)
		if len(got) != 1 || got[0] != jsonOut.Class {
			t.Fatalf("binary /predict = %v, JSON says %d", got, jsonOut.Class)
		}
	}
}

func TestWireLearnRoundTrip(t *testing.T) {
	st := fixtures(t)
	_, url := newLearnerServer(t, LearnerOptions{RecentWindow: 8, MinRetrain: 8, Iterations: 1})
	frame := wire.AppendLearn(nil, st.test.X[0], st.test.Y[0])
	code, body, ct := postFrame(t, url+"/learn", frame)
	if code != http.StatusOK {
		t.Fatalf("binary /learn status %d: %s", code, body)
	}
	if ct != wire.ContentType {
		t.Fatalf("binary /learn response content type %q", ct)
	}
	d := wire.NewDecoder(bytes.NewReader(body))
	typ, err := d.Next()
	if err != nil || typ != wire.TypeFeedAck {
		t.Fatalf("response frame = %v, %v; want feed-ack", typ, err)
	}
	ack, err := d.FeedAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.WindowAccuracy != 0 && ack.WindowAccuracy != 1 {
		t.Fatalf("first feedback window accuracy %v", ack.WindowAccuracy)
	}
	// Malformed feedback (wrong width) must still answer a JSON 400.
	bad := wire.AppendLearn(nil, st.test.X[0][:2], 0)
	if code, _, _ := postFrame(t, url+"/learn", bad); code != http.StatusBadRequest {
		t.Fatalf("malformed binary /learn status %d, want 400", code)
	}
}

func TestWireMalformedRequests(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)
	cols := len(s.test.X[0])
	good, err := wire.AppendMatrixF64(nil, s.test.X[:2], cols)
	if err != nil {
		t.Fatal(err)
	}
	wrongCols, err := wire.AppendMatrixF64(nil, [][]float64{{1, 2, 3}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage":         []byte("not a frame at all"),
		"truncated":       good[:len(good)-5],
		"corrupt magic":   append([]byte("XXXX"), good[4:]...),
		"wrong type":      wire.AppendClasses(nil, []int{1}),
		"column mismatch": wrongCols,
		"empty body":      {},
	}
	for name, frame := range cases {
		code, body, ct := postFrame(t, ts.URL+"/predict_batch", frame)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %q)", name, code, body)
		}
		if ct != "application/json" {
			t.Errorf("%s: error content type %q, want JSON", name, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", name, body)
		}
	}
}

func TestWireStatsCounters(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)
	rows := s.test.X[:3]
	frame, err := wire.AppendMatrixF64(nil, rows, len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if code, body, _ := postFrame(t, ts.URL+"/predict_batch", frame); code != http.StatusOK {
			t.Fatalf("binary status %d: %s", code, body)
		}
	}
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/predict_batch", predictBatchRequest{X: rows}, nil); code != http.StatusOK {
			t.Fatalf("JSON status %d", code)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.WireBinaryRequests != 2 || snap.WireJSONRequests != 3 {
		t.Fatalf("wire counters binary=%d json=%d, want 2/3", snap.WireBinaryRequests, snap.WireJSONRequests)
	}
}

// TestPredictStreamMatchesPredictBatch pins the decode-into-lease path to
// the reference batch path on both serving tiers.
func TestPredictStreamMatchesPredictBatch(t *testing.T) {
	s := fixtures(t)
	q, err := s.a.Quantize1Bit()
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []struct {
		name string
		m    *disthd.Model
	}{{"f32", s.a}, {"1bit", q}} {
		t.Run(tier.name, func(t *testing.T) {
			// MaxBatch 4 forces chunking over the 11-row input.
			b, err := NewBatcher(tier.m, Options{MaxBatch: 4, Replicas: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			rows := s.test.X[:11]
			want, err := b.PredictBatch(rows)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int, len(rows))
			next := 0
			err = b.PredictStream(len(rows), got, func(dst []float64) error {
				cols := len(rows[0])
				for i := 0; i < len(dst)/cols; i++ {
					copy(dst[i*cols:(i+1)*cols], rows[next])
					next++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d: stream %d, batch %d", i, got[i], want[i])
				}
			}
		})
	}
}

// nullRW is the allocation-free ResponseWriter behind the handler-level
// benchmarks.
type nullRW struct{ h http.Header }

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullRW) WriteHeader(int)             {}

// replayBody is a resettable no-op-Close request body.
type replayBody struct{ bytes.Reader }

func (b *replayBody) Close() error { return nil }

// benchHandlerBatch measures the /predict_batch handler path itself —
// dispatch, decode, predict, response framing — with the net/http
// machinery (connection handling, request parsing, goroutine per request)
// factored out, so the wire format's own cost is visible. This is the
// number behind the "≤10 allocs per binary /predict_batch" acceptance
// bar; the end-to-end figure including a real loopback round trip is
// BenchmarkDirectWorkerBinary in serve/cluster.
func benchHandlerBatch(b *testing.B, dim, nrows int, binary bool) {
	s := benchFixtures(b, dim)
	srv, err := New(s.m, Options{MaxBatch: 64, Replicas: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	rows := s.rows[:nrows]
	var payload []byte
	ct := "application/json"
	if binary {
		payload, err = wire.AppendMatrixF64(nil, rows, len(rows[0]))
		if err != nil {
			b.Fatal(err)
		}
		ct = wire.ContentType
	} else {
		payload, err = json.Marshal(predictBatchRequest{X: rows})
		if err != nil {
			b.Fatal(err)
		}
	}
	body := &replayBody{}
	req := &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: "/predict_batch"},
		Header: http.Header{"Content-Type": []string{ct}},
		Body:   body,
	}
	w := &nullRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Reset(payload)
		srv.handlePredictBatch(w, req)
	}
	b.StopTimer()
	b.ReportMetric(float64(nrows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWireHandlerBatch sweeps the binary and JSON handler paths over
// the PERF.md dimensionalities. The binary rows/s over JSON rows/s ratio
// at D>=1024 is the wire-level throughput multiple PR 8 claims.
func BenchmarkWireHandlerBatch(b *testing.B) {
	for _, g := range []struct {
		dim  int
		mode string
	}{{512, "json"}, {512, "binary"}, {1024, "json"}, {1024, "binary"}, {2048, "json"}, {2048, "binary"}} {
		b.Run(fmt.Sprintf("D=%d/%s", g.dim, g.mode), func(b *testing.B) {
			benchHandlerBatch(b, g.dim, 16, g.mode == "binary")
		})
	}
}
