package serve

import (
	"reflect"
	"testing"
)

// TestLearnerExportRestoreContinuity pins the serve-level half of the
// park/wake contract: Export settles the learner and captures everything,
// RestoreLearner rebuilds an identical one — online state bitwise, gate
// and retrain gauges included.
func TestLearnerExportRestoreContinuity(t *testing.T) {
	b, l, st := learnerFixture(t, LearnerOptions{Window: 64, RecentWindow: 8, Seed: 3})
	for i, x := range st.test.X[:32] {
		if _, err := l.Feed(x, st.test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A forced retrain publishes a successor and populates the gate gauges;
	// Export must wait it out, so no explicit Wait here.
	if started, err := l.Retrain(true); err != nil || !started {
		t.Fatalf("forced retrain: started=%v err=%v", started, err)
	}
	snap := l.Export()
	if snap.Gauges.Retraining {
		t.Fatal("Export returned with a retrain still in flight")
	}
	if snap.Retrains != 1 || snap.GateAccepts != 1 {
		t.Fatalf("exported gauges retrains=%d gateAccepts=%d, want 1/1 after a forced retrain",
			snap.Retrains, snap.GateAccepts)
	}
	if b.Model() == st.a {
		t.Fatal("forced retrain never published; the export has nothing to preserve")
	}

	restored, err := RestoreLearner(b.Swapper(), LearnerOptions{Window: 64, RecentWindow: 8, Seed: 3}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Snapshot(), l.Snapshot()) {
		t.Fatalf("restored snapshot diverges:\n got %+v\nwant %+v", restored.Snapshot(), l.Snapshot())
	}
	if !reflect.DeepEqual(restored.Export(), snap) {
		t.Fatal("restored learner's Export differs from the snapshot it was built from")
	}
	// The restored learner keeps working: more feedback continues the
	// counters instead of restarting them.
	for i, x := range st.test.X[:8] {
		if _, err := restored.Feed(x, st.test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := restored.Snapshot().Feedback; got != snap.Feedback+8 {
		t.Fatalf("feedback after restore+8 = %d, want %d", got, snap.Feedback+8)
	}
}

// TestRestoreLearnerValidates proves the restore rejects nil inputs and a
// snapshot whose geometry does not match the options.
func TestRestoreLearnerValidates(t *testing.T) {
	b, l, st := learnerFixture(t, LearnerOptions{Window: 32, RecentWindow: 8})
	if _, err := l.Feed(st.test.X[0], st.test.Y[0]); err != nil {
		t.Fatal(err)
	}
	snap := l.Export()
	if _, err := RestoreLearner(nil, LearnerOptions{}, snap); err == nil {
		t.Fatal("nil swapper accepted")
	}
	if _, err := RestoreLearner(b.Swapper(), LearnerOptions{}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := RestoreLearner(b.Swapper(), LearnerOptions{Window: 16, RecentWindow: 8}, snap); err == nil {
		t.Fatal("snapshot restored under mismatched options")
	}
}
