package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	disthd "repro"
)

// newTestServer spins a Server over an httptest listener.
func newTestServer(t *testing.T, m *disthd.Model) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(m, Options{MaxBatch: 8, MaxDelay: 500 * time.Microsecond, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON posts v and decodes the response body into out.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPPredict(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)

	var got struct {
		Class int `json:"class"`
	}
	if code := postJSON(t, ts.URL+"/predict", predictRequest{X: s.test.X[0]}, &got); code != http.StatusOK {
		t.Fatalf("/predict status %d", code)
	}
	want, err := s.a.Predict(s.test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != want {
		t.Fatalf("/predict class %d, model says %d", got.Class, want)
	}

	// Malformed width -> 400 with an error body.
	var e struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/predict", predictRequest{X: []float64{1}}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad width status %d", code)
	}
	if e.Error == "" {
		t.Fatal("error body empty")
	}
}

func TestHTTPPredictBatch(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)

	rows := s.test.X[:5]
	var got struct {
		Classes []int `json:"classes"`
	}
	if code := postJSON(t, ts.URL+"/predict_batch", predictBatchRequest{X: rows}, &got); code != http.StatusOK {
		t.Fatalf("/predict_batch status %d", code)
	}
	want, err := s.a.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != len(want) {
		t.Fatalf("got %d classes want %d", len(got.Classes), len(want))
	}
	for i := range want {
		if got.Classes[i] != want[i] {
			t.Fatalf("row %d: got %d want %d", i, got.Classes[i], want[i])
		}
	}

	// Empty batch is a legal no-op.
	if code := postJSON(t, ts.URL+"/predict_batch", predictBatchRequest{}, &got); code != http.StatusOK {
		t.Fatalf("empty batch status %d", code)
	}
	if len(got.Classes) != 0 {
		t.Fatalf("empty batch returned %v", got.Classes)
	}
}

func TestHTTPHealthzAndStats(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status   string `json:"status"`
		Features int    `json:"features"`
		Dim      int    `json:"dim"`
		Classes  int    `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Features != s.a.Features() || hz.Dim != s.a.Dim() || hz.Classes != s.a.Classes() {
		t.Fatalf("healthz %+v does not match model", hz)
	}

	// Generate one request, then check /stats reflects it.
	if code := postJSON(t, ts.URL+"/predict", predictRequest{X: s.test.X[0]}, nil); code != http.StatusOK {
		t.Fatalf("warmup predict status %d", code)
	}
	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.Batches != 1 {
		t.Fatalf("stats after one request: %+v", snap)
	}
	if snap.LatencyMsP50 <= 0 {
		t.Fatalf("latency histogram empty: %+v", snap)
	}
}

func TestHTTPSwap(t *testing.T) {
	s := fixtures(t)
	srv, ts := newTestServer(t, s.a)

	// Swap in the compatible sibling model via its Save snapshot.
	var buf bytes.Buffer
	if err := s.b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/swap", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/swap status %d", resp.StatusCode)
	}
	if got := srv.Batcher().Swapper().Swaps(); got != 1 {
		t.Fatalf("swaps=%d after one swap", got)
	}

	// Garbage payload -> 400 (it is not a model at all), model untouched.
	resp2, err := http.Post(ts.URL+"/swap", "application/octet-stream", bytes.NewReader([]byte("not a model")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage swap status %d, want 400", resp2.StatusCode)
	}
	if got := srv.Batcher().Swapper().Swaps(); got != 1 {
		t.Fatalf("failed swap counted: %d", got)
	}

	// A well-formed model of the wrong shape -> 409 Conflict.
	cfg := disthd.DefaultConfig()
	cfg.Dim = 32
	cfg.Iterations = 2
	cfg.Seed = 11
	narrow, err := disthd.TrainWithConfig(s.train.X, s.train.Y, s.train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var nbuf bytes.Buffer
	if err := narrow.Save(&nbuf); err != nil {
		t.Fatal(err)
	}
	resp3, err := http.Post(ts.URL+"/swap", "application/octet-stream", &nbuf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("shape-mismatch swap status %d, want 409", resp3.StatusCode)
	}

	// Serving still works after the swap cycle.
	if code := postJSON(t, ts.URL+"/predict", predictRequest{X: s.test.X[0]}, nil); code != http.StatusOK {
		t.Fatalf("predict after swap status %d", code)
	}
}
