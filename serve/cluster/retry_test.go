package cluster

import (
	"testing"
	"time"
)

// expBackoff is the un-jittered capped exponential the jitter is drawn
// around: BaseBackoff·2^(retry-1), capped at MaxBackoff.
func expBackoff(c RetryConfig, retry int) time.Duration {
	d := c.BaseBackoff
	for i := 1; i < retry; i++ {
		d <<= 1
		if d >= c.MaxBackoff || d <= 0 {
			return c.MaxBackoff
		}
	}
	if d > c.MaxBackoff {
		return c.MaxBackoff
	}
	return d
}

func TestBackoffJitterBounds(t *testing.T) {
	cfg := RetryConfig{BaseBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}.withDefaults()
	rng := prng{s: 1}
	for retry := 1; retry <= 12; retry++ {
		d := expBackoff(cfg, retry)
		for trial := 0; trial < 64; trial++ {
			got := cfg.backoff(retry, &rng)
			if got < d/2 || got > d {
				t.Fatalf("retry %d: backoff %v outside equal-jitter bounds [%v, %v]", retry, got, d/2, d)
			}
		}
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	cfg := RetryConfig{BaseBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}.withDefaults()
	// By retry 6 the raw exponential (5ms·2^5 = 160ms) is past the cap.
	for _, retry := range []int{6, 10, 30, 63, 100} {
		if d := expBackoff(cfg, retry); d != cfg.MaxBackoff {
			t.Fatalf("retry %d: exponential %v, want cap %v", retry, d, cfg.MaxBackoff)
		}
	}
	// A huge base must not overflow into a negative sleep.
	big := RetryConfig{BaseBackoff: time.Duration(1) << 62, MaxBackoff: time.Duration(1)<<62 + 1}.withDefaults()
	rng := prng{s: 3}
	for retry := 1; retry <= 4; retry++ {
		if got := big.backoff(retry, &rng); got < 0 {
			t.Fatalf("retry %d: negative backoff %v after shift overflow", retry, got)
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	cfg := RetryConfig{}.withDefaults()
	draw := func(seed uint64) []time.Duration {
		rng := prng{s: seed}
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = cfg.backoff(1+i%4, &rng)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: seed 42 gave %v then %v — jitter is not deterministic", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical jitter sequences")
	}
}

func TestRetryDefaults(t *testing.T) {
	cfg := RetryConfig{}.withDefaults()
	if cfg.MaxAttempts != 3 || cfg.BaseBackoff != 5*time.Millisecond || cfg.MaxBackoff != 100*time.Millisecond || cfg.HedgeAfter != 0 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestBackoffZeroBase(t *testing.T) {
	cfg := RetryConfig{BaseBackoff: -1, MaxBackoff: time.Millisecond}
	rng := prng{s: 9}
	if got := cfg.backoff(1, &rng); got != 0 {
		t.Fatalf("non-positive base: backoff = %v, want 0", got)
	}
}
