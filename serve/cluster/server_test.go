package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer wires a Server over sim workers behind an httptest
// listener.
func newTestServer(t *testing.T, workers map[string]*simWorker, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	c, _ := newTestCoordinator(t, workers, mod)
	s := NewServer(c)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and decodes the response into out (when non-nil).
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestServerPredictEndpoints(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	_, ts := newTestServer(t, map[string]*simWorker{"w0": sim(m)}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
		cfg.Fallback = m
	})

	var one struct {
		Class int `json:"class"`
	}
	if code := postJSON(t, ts.URL+"/predict", map[string]any{"x": f.test.X[0]}, &one); code != http.StatusOK {
		t.Fatalf("/predict status %d", code)
	}
	want, err := m.Predict(f.test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if one.Class != want {
		t.Fatalf("/predict class %d, want %d", one.Class, want)
	}

	rows := f.test.X[:5]
	var batch struct {
		Classes []int `json:"classes"`
	}
	if code := postJSON(t, ts.URL+"/predict_batch", map[string]any{"x": rows}, &batch); code != http.StatusOK {
		t.Fatalf("/predict_batch status %d", code)
	}
	wantCls, err := m.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Classes) != len(wantCls) {
		t.Fatalf("/predict_batch answered %d classes, want %d", len(batch.Classes), len(wantCls))
	}
	for i := range wantCls {
		if batch.Classes[i] != wantCls[i] {
			t.Fatalf("row %d: class %d, want %d", i, batch.Classes[i], wantCls[i])
		}
	}
}

func TestServerErrorMapping(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	_, ts := newTestServer(t, map[string]*simWorker{"w0": sim(m)}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
		cfg.Fallback = m
	})

	// Malformed JSON is a 400.
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// A wrong-width row is the caller's fault: 400, not a drop.
	if code := postJSON(t, ts.URL+"/predict", map[string]any{"x": []float64{1, 2}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad row: status %d, want 400", code)
	}

	// A body past the limit is a 413. The payload is valid JSON shape but
	// padded beyond serverBodyLimit with whitespace, so only the limit can
	// reject it.
	huge := append(bytes.Repeat([]byte{' '}, serverBodyLimit+1), []byte(`{"x":[]}`)...)
	resp, err = http.Post(ts.URL+"/predict_batch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestServerHealthzDegradedAndStrict(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	w0, w1, w2 := sim(m), sim(m), sim(m)
	srv, ts := newTestServer(t, map[string]*simWorker{"w0": w0, "w1": w1, "w2": w2}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1", "w2"}
		cfg.Quorum = 2
		cfg.Fallback = m
		cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour}
	})

	var hz struct {
		Status    string `json:"status"`
		Available int    `json:"available"`
		Quorum    int    `json:"quorum"`
		Fallback  bool   `json:"fallback"`
		Workers   []struct {
			Addr    string `json:"addr"`
			Breaker string `json:"breaker"`
		} `json:"workers"`
	}
	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		hz.Workers = nil
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	if code := get(); code != http.StatusOK || hz.Status != "ok" || hz.Available != 3 || !hz.Fallback {
		t.Fatalf("healthy cluster: code %d payload %+v", code, hz)
	}

	// Kill two workers and burn their failure budget through traffic: the
	// cluster drops below quorum and /healthz must say so.
	w1.mu.Lock()
	w1.dead = true
	w1.mu.Unlock()
	w2.mu.Lock()
	w2.dead = true
	w2.mu.Unlock()
	for i := 0; i < 4; i++ {
		if code := postJSON(t, ts.URL+"/predict_batch", map[string]any{"x": f.test.X[:6]}, nil); code != http.StatusOK {
			t.Fatalf("batch %d during degradation: status %d (the fallback must keep answering)", i, code)
		}
	}
	if code := get(); code != http.StatusOK || hz.Status != "degraded" || hz.Available != 1 {
		t.Fatalf("below quorum: code %d payload %+v, want 200 + degraded", code, hz)
	}
	openWorkers := 0
	for _, w := range hz.Workers {
		if w.Breaker == "open" {
			openWorkers++
		}
	}
	if openWorkers != 2 {
		t.Fatalf("%d open breakers in /healthz, want 2: %+v", openWorkers, hz.Workers)
	}

	srv.SetStrictHealth(true)
	if code := get(); code != http.StatusServiceUnavailable || hz.Status != "degraded" {
		t.Fatalf("strict degraded: code %d status %q, want 503 degraded", code, hz.Status)
	}
}

func TestServerStatsAndMerge(t *testing.T) {
	f := fixtures(t)
	_, ts := newTestServer(t, map[string]*simWorker{
		"w0": sim(f.shards[0]), "w1": sim(f.shards[1]),
	}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1"}
	})

	var rep MergeReport
	if code := postJSON(t, ts.URL+"/merge", struct{}{}, &rep); code != http.StatusOK {
		t.Fatalf("/merge status %d", code)
	}
	if !rep.Published || len(rep.Workers) != 2 {
		t.Fatalf("merge report %+v, want both shards published", rep)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Merges != 1 || snap.MergePublished != 1 || !snap.HasFallback || len(snap.Workers) != 2 {
		t.Fatalf("stats %+v, want one published merge and a held fallback", snap)
	}
}
