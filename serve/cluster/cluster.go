// Package cluster is the fault-tolerant multi-node serving layer: a
// Coordinator fans /predict_batch out to N worker shards (each a stock
// disthd-serve process) through a pluggable Transport and keeps answering
// when shards misbehave.
//
// Robustness is layered. Each worker sits behind a three-state circuit
// breaker (closed → open → half-open) fed by both passive request
// failures and an active /healthz probe loop, so a dead shard costs one
// probe per cooldown instead of a timeout per request. A failing chunk of
// a batch is retried on surviving workers with jittered exponential
// backoff under the caller's deadline, and an optional hedge duplicates a
// slow call on a second worker and takes the first answer. When fewer
// than Quorum workers are available — or a chunk exhausts its retries —
// the coordinator serves from a locally held fallback model instead of
// erroring, so partial failure degrades throughput, never availability.
//
// The fallback stays fresh through the federated merge loop: the
// coordinator periodically pulls each shard's model (GET /model), merges
// them via the disthd.AverageModels contract, and the merged candidate
// must beat the current fallback through the champion/challenger
// disthd.Gate on a reference holdout before it is adopted (and, with
// Republish, pushed back to the shards via POST /swap).
//
// Server exposes a Coordinator over the same HTTP/JSON wire format as a
// single worker, so clients and load generators cannot tell the
// difference; cmd/disthd-cluster is the runnable binary and
// `hdbench -chaos` the kill/stall load harness that proves the
// zero-dropped-requests invariant.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
)

// ErrClosed is returned by Predict and PredictBatch after Close.
var ErrClosed = errors.New("cluster: coordinator is closed")

// errBreakerOpen marks a call refused locally because the target worker's
// breaker would not admit it.
var errBreakerOpen = errors.New("cluster: worker breaker is open")

// MergeConfig configures the coordinator's federated merge loop.
type MergeConfig struct {
	// Interval is how often the loop pulls and merges shard models; 0
	// disables the background loop (MergeNow still works).
	Interval time.Duration
	// HoldX and HoldY are the labeled reference set the champion/
	// challenger gate judges merged candidates on. Empty means the gate
	// has no evidence and publishes every merge (the disthd.Gate
	// empty-holdout contract).
	HoldX [][]float64
	// HoldY holds the labels for HoldX.
	HoldY []int
	// GateMargin is the holdout-accuracy lead a merged candidate needs
	// over the current fallback to publish (disthd.GateConfig.MinMargin).
	GateMargin float64
	// Republish pushes a published merged model back to every available
	// worker via POST /swap, closing the federated loop globally.
	Republish bool
}

// Config configures a Coordinator. Workers is required; everything else
// has the documented default.
type Config struct {
	// Workers lists the worker shard addresses ("host:port" or URLs).
	Workers []string
	// Transport carries worker calls; default NewHTTPTransport().
	Transport Transport
	// Quorum is the minimum number of available workers for remote
	// serving; below it the whole batch is served from the fallback
	// model. Default is a majority: len(Workers)/2 + 1.
	Quorum int
	// CallTimeout bounds each individual worker call (the caller's
	// context deadline still applies on top). Default 1s.
	CallTimeout time.Duration
	// Retry shapes the per-chunk retry/backoff/hedge policy.
	Retry RetryConfig
	// Breaker shapes every worker's circuit breaker.
	Breaker BreakerConfig
	// ProbeInterval is the active /healthz probe cadence; 0 disables
	// active probing (breakers then learn only from request traffic).
	ProbeInterval time.Duration
	// Fallback is the locally held model that serves when the cluster
	// cannot — the last-merged incumbent, seeded here. Without one, a
	// below-quorum batch is an error (and counts as dropped rows).
	Fallback *disthd.Model
	// Merge configures the federated merge loop that refreshes Fallback.
	Merge MergeConfig
	// Seed drives backoff jitter; runs with equal seeds draw equal
	// jitter sequences.
	Seed uint64
}

// withDefaults fills unset fields and validates the rest.
func (c Config) withDefaults() (Config, error) {
	if len(c.Workers) == 0 {
		return c, fmt.Errorf("cluster: config needs at least one worker")
	}
	if c.Transport == nil {
		c.Transport = NewHTTPTransport()
	}
	if c.Quorum == 0 {
		c.Quorum = len(c.Workers)/2 + 1
	}
	if c.Quorum < 0 || c.Quorum > len(c.Workers) {
		return c, fmt.Errorf("cluster: quorum %d out of range for %d workers", c.Quorum, len(c.Workers))
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = time.Second
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c, nil
}

// worker is the coordinator's per-shard state: address, breaker, health
// flags, and counters.
type worker struct {
	addr     string
	br       *breaker
	healthy  atomic.Bool
	degraded atomic.Bool

	requests   atomic.Uint64
	failures   atomic.Uint64
	retries    atomic.Uint64
	hedges     atomic.Uint64
	probeFails atomic.Uint64
}

// Coordinator fans prediction batches out to worker shards with retries,
// hedging, circuit breaking, and local fallback, and runs the optional
// probe and merge loops. Create one with New and stop it with Close; all
// methods are safe for concurrent use.
type Coordinator struct {
	cfg     Config
	tr      Transport
	workers []*worker
	gate    *disthd.Gate

	fallback atomic.Pointer[disthd.Model]

	now   func() time.Time
	rr    atomic.Uint64 // round-robin cursor for retry/hedge targets
	rngMu sync.Mutex
	rng   prng

	requests     atomic.Uint64
	rows         atomic.Uint64
	dropped      atomic.Uint64
	fallbackRows atomic.Uint64
	quorumMisses atomic.Uint64
	retriesTotal atomic.Uint64
	hedgesTotal  atomic.Uint64
	hedgeWins    atomic.Uint64
	merges       atomic.Uint64
	mergePub     atomic.Uint64
	mergeRej     atomic.Uint64
	mergeErrs    atomic.Uint64
	lastMerge    atomic.Int64

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New builds a Coordinator and starts its probe and merge loops (when
// their intervals are configured).
func New(cfg Config) (*Coordinator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:  c,
		tr:   c.Transport,
		gate: disthd.NewGate(disthd.GateConfig{MinMargin: c.Merge.GateMargin}),
		now:  time.Now,
		rng:  prng{s: c.Seed},
		stop: make(chan struct{}),
	}
	for _, addr := range c.Workers {
		w := &worker{addr: addr, br: newBreaker(c.Breaker, co.clock)}
		w.healthy.Store(true)
		co.workers = append(co.workers, w)
	}
	if c.Fallback != nil {
		co.fallback.Store(c.Fallback)
	}
	if c.ProbeInterval > 0 {
		co.wg.Add(1)
		go co.probeLoop()
	}
	if c.Merge.Interval > 0 {
		co.wg.Add(1)
		go co.mergeLoop()
	}
	return co, nil
}

// clock is the injected time source for the breakers (tests substitute a
// manual clock through the now field).
func (c *Coordinator) clock() time.Time { return c.now() }

// Fallback returns the locally held fallback model — the last-merged
// incumbent, or the configured seed model before any merge (nil when
// neither exists).
func (c *Coordinator) Fallback() *disthd.Model { return c.fallback.Load() }

// Close stops the probe and merge loops and fails subsequent predictions
// with ErrClosed. In-flight predictions finish. It is idempotent.
func (c *Coordinator) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.stop)
	c.wg.Wait()
}

// candidates returns the workers whose breakers would currently admit a
// call, self-reported-healthy workers first so degraded shards only see
// traffic when nothing better is available.
func (c *Coordinator) candidates() []*worker {
	var ok, degraded []*worker
	for _, w := range c.workers {
		if !w.br.available() {
			continue
		}
		if w.degraded.Load() {
			degraded = append(degraded, w)
		} else {
			ok = append(ok, w)
		}
	}
	return append(ok, degraded...)
}

// Predict classifies one feature vector — a batch of one through
// PredictBatch.
func (c *Coordinator) Predict(ctx context.Context, x []float64) (int, error) {
	out, err := c.PredictBatch(ctx, [][]float64{x})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// PredictBatch classifies rows across the cluster: the batch is split
// into contiguous chunks over the available workers, each chunk retried
// (and optionally hedged) on surviving workers when its primary fails,
// and any chunk that exhausts the cluster — or an entire batch arriving
// below quorum — is answered by the local fallback model. The caller gets
// an error only for its own malformed input, for a closed coordinator, or
// when remote serving failed AND no fallback is held (those rows count as
// Dropped in Stats; keeping that counter at zero is the point of this
// package).
func (c *Coordinator) PredictBatch(ctx context.Context, rows [][]float64) ([]int, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if fb := c.fallback.Load(); fb != nil {
		for i, r := range rows {
			if len(r) != fb.Features() {
				return nil, &PermanentError{Err: fmt.Errorf(
					"cluster: row %d has %d features, model expects %d", i, len(r), fb.Features())}
			}
		}
	}
	c.requests.Add(1)
	c.rows.Add(uint64(len(rows)))

	cands := c.candidates()
	if len(cands) < c.cfg.Quorum || len(cands) == 0 {
		c.quorumMisses.Add(1)
		return c.serveFallback(rows, fmt.Errorf("cluster: %d of %d workers available, quorum is %d",
			len(cands), len(c.workers), c.cfg.Quorum))
	}

	nChunks := len(cands)
	if nChunks > len(rows) {
		nChunks = len(rows)
	}
	per := (len(rows) + nChunks - 1) / nChunks
	out := make([]int, len(rows))
	errs := make([]error, nChunks)
	var wg sync.WaitGroup
	for i := 0; i < nChunks; i++ {
		lo, hi := i*per, min((i+1)*per, len(rows))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w *worker, lo, hi, slot int) {
			defer wg.Done()
			cls, err := c.callChunk(ctx, w, rows[lo:hi])
			if err != nil {
				cls, err = c.chunkFallback(rows[lo:hi], err)
			}
			if err != nil {
				errs[slot] = err
				return
			}
			copy(out[lo:hi], cls)
		}(cands[i], lo, hi, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// serveFallback answers a whole batch from the local fallback model,
// counting the rows as dropped (and failing) when none is held.
func (c *Coordinator) serveFallback(rows [][]float64, cause error) ([]int, error) {
	fb := c.fallback.Load()
	if fb == nil {
		c.dropped.Add(uint64(len(rows)))
		return nil, fmt.Errorf("cluster: no fallback model: %w", cause)
	}
	cls, err := fb.PredictBatch(rows)
	if err != nil {
		c.dropped.Add(uint64(len(rows)))
		return nil, fmt.Errorf("cluster: fallback predict: %w", err)
	}
	c.fallbackRows.Add(uint64(len(rows)))
	return cls, nil
}

// chunkFallback degrades one failed chunk to the fallback model, unless
// the failure was the caller's own bad input (PermanentError), which no
// amount of degradation can answer differently.
func (c *Coordinator) chunkFallback(rows [][]float64, cause error) ([]int, error) {
	var pe *PermanentError
	if errors.As(cause, &pe) {
		return nil, cause
	}
	return c.serveFallback(rows, cause)
}

// callChunk runs one chunk against the cluster: the assigned primary
// first, then up to MaxAttempts-1 retries on rotating available workers
// with jittered exponential backoff, respecting ctx the whole way. When
// the transport implements BatchPreparer, the chunk payload is encoded
// exactly once here and every retry and hedge reuses it.
func (c *Coordinator) callChunk(ctx context.Context, w *worker, rows [][]float64) ([]int, error) {
	send := func(cctx context.Context, addr string) ([]int, error) {
		return c.tr.PredictBatch(cctx, addr, rows)
	}
	if bp, ok := c.tr.(BatchPreparer); ok {
		p, err := bp.PrepareBatch(rows)
		if err != nil {
			return nil, err
		}
		defer p.Close()
		send = func(cctx context.Context, addr string) ([]int, error) {
			return bp.PredictPrepared(cctx, addr, p)
		}
	}
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			if next := c.pickWorker(w); next != nil {
				w = next
			}
			c.retriesTotal.Add(1)
			w.retries.Add(1)
			if !c.sleepCtx(ctx, c.backoff(attempt-1)) {
				return nil, ctx.Err()
			}
		}
		cls, err := c.callOnce(ctx, w, send)
		if err == nil {
			return cls, nil
		}
		var pe *PermanentError
		if errors.As(err, &pe) {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// backoff draws the jittered backoff for the given retry under the
// rng mutex.
func (c *Coordinator) backoff(retry int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.cfg.Retry.backoff(retry, &c.rng)
}

// pickWorker rotates over the available workers, preferring one that is
// not exclude; nil when none is available.
func (c *Coordinator) pickWorker(exclude *worker) *worker {
	cands := c.candidates()
	if len(cands) == 0 {
		return nil
	}
	start := int(c.rr.Add(1)) % len(cands)
	for i := range cands {
		if w := cands[(start+i)%len(cands)]; w != exclude {
			return w
		}
	}
	return cands[0]
}

// sleepCtx sleeps d, returning false if ctx or the coordinator stopped
// first.
func (c *Coordinator) sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-c.stop:
		return false
	}
}

// callResult is one worker call's answer inside callOnce.
type callResult struct {
	classes []int
	err     error
	w       *worker
}

// callOnce performs one (possibly hedged) call attempt against w under
// CallTimeout, sending through send (the per-chunk closure callChunk
// built, which carries the prepared payload when the transport supports
// one). With hedging configured, an unanswered primary is duplicated on a
// second worker after HedgeAfter; the first answer wins and cancels the
// loser, whose breaker claim is released without a verdict. Breaker
// accounting: a worker that answers settles Success (a PermanentError
// still means the worker itself behaved), a worker that fails while the
// parent context is live settles Failure, and a worker abandoned
// mid-cancel settles Cancel.
func (c *Coordinator) callOnce(ctx context.Context, w *worker, send func(context.Context, string) ([]int, error)) ([]int, error) {
	if !w.br.Allow() {
		return nil, errBreakerOpen
	}
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	ch := make(chan callResult, 2)
	launch := func(w *worker) {
		w.requests.Add(1)
		go func() {
			cls, err := send(cctx, w.addr)
			ch <- callResult{classes: cls, err: err, w: w}
		}()
	}
	launch(w)
	pending := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.cfg.Retry.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.cfg.Retry.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var hedged *worker
	var lastErr error
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				r.w.br.Success()
				if hedged != nil && r.w == hedged {
					c.hedgeWins.Add(1)
				}
				cancel()
				c.reap(ch, pending)
				return r.classes, nil
			}
			var pe *PermanentError
			switch {
			case errors.As(r.err, &pe):
				// The worker answered; the input was the problem.
				r.w.br.Success()
				cancel()
				c.reap(ch, pending)
				return nil, r.err
			case ctx.Err() != nil:
				// The caller is gone; nobody's fault.
				r.w.br.Cancel()
			default:
				r.w.br.Failure()
				r.w.failures.Add(1)
			}
			lastErr = r.err
		case <-hedgeC:
			hedgeC = nil
			hw := c.pickWorker(w)
			if hw == nil || hw == w || !hw.br.Allow() {
				continue
			}
			hedged = hw
			c.hedgesTotal.Add(1)
			hw.hedges.Add(1)
			launch(hw)
			pending++
		}
	}
	if lastErr == nil {
		lastErr = cctx.Err()
	}
	return nil, lastErr
}

// reap drains abandoned in-flight calls in the background so their
// breaker claims are settled: a late success still counts as Success, a
// late (canceled) failure releases the claim without a verdict.
func (c *Coordinator) reap(ch chan callResult, pending int) {
	if pending == 0 {
		return
	}
	go func() {
		for i := 0; i < pending; i++ {
			r := <-ch
			if r.err == nil {
				r.w.br.Success()
			} else {
				r.w.br.Cancel()
			}
		}
	}()
}

// probeLoop actively probes every worker's /healthz at ProbeInterval.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, w := range c.workers {
				c.probe(w)
			}
		}
	}
}

// probe runs one active health check and feeds the result to the
// worker's breaker: failures count like request failures (so a dead shard
// opens its breaker without costing a request a timeout), and a success
// through an expired-cooldown breaker is the half-open trial that closes
// it — recovery is detected by probes, not by sacrificed requests.
func (c *Coordinator) probe(w *worker) {
	claimed := false
	if w.br.State() != BreakerClosed {
		if !w.br.Allow() {
			return // open and still cooling down; don't even probe
		}
		claimed = true
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	hs, err := c.tr.Health(ctx, w.addr)
	cancel()
	if err != nil {
		w.healthy.Store(false)
		w.probeFails.Add(1)
		w.br.Failure()
		return
	}
	w.healthy.Store(true)
	w.degraded.Store(hs.Status == "degraded")
	if claimed || w.br.State() == BreakerClosed {
		w.br.Success()
	}
}

// MergeReport describes one federated merge round.
type MergeReport struct {
	// Workers lists the shards whose models were fetched and merged.
	Workers []string `json:"workers"`
	// Skipped lists shards that failed to deliver a mergeable model,
	// with the reason.
	Skipped []string `json:"skipped,omitempty"`
	// Verdict is the champion/challenger evaluation of the merged
	// candidate against the previous fallback (nil when there was no
	// incumbent to defend).
	Verdict *disthd.GateVerdict `json:"verdict,omitempty"`
	// Published is whether the merged candidate became the fallback.
	Published bool `json:"published"`
	// Republished counts workers the published model was pushed back to.
	Republished int `json:"republished"`
}

// mergeLoop periodically pulls, merges, gates, and publishes.
func (c *Coordinator) mergeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Merge.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout*time.Duration(1+len(c.workers)))
			_, _ = c.MergeNow(ctx)
			cancel()
		}
	}
}

// MergeNow runs one federated merge round: pull every available shard's
// model, average them under the disthd merge contract, judge the
// candidate against the current fallback through the champion/challenger
// gate on the configured holdout, and on a passing verdict adopt it as
// the fallback (and push it back to the shards when Republish is set).
// Shards that fail to deliver a mergeable model are skipped, not fatal;
// the round errors only when no shard delivered one.
func (c *Coordinator) MergeNow(ctx context.Context) (MergeReport, error) {
	c.merges.Add(1)
	var rep MergeReport
	var models []*disthd.Model
	incumbent := c.fallback.Load()
	for _, w := range c.workers {
		if !w.br.available() {
			rep.Skipped = append(rep.Skipped, w.addr+": breaker open")
			continue
		}
		mctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		m, err := c.tr.FetchModel(mctx, w.addr)
		cancel()
		if err != nil {
			w.failures.Add(1)
			w.br.Failure()
			rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s: %v", w.addr, err))
			continue
		}
		w.br.Success()
		if incumbent != nil {
			if err := incumbent.MergeableWith(m); err != nil {
				rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s: %v", w.addr, err))
				continue
			}
		}
		models = append(models, m)
		rep.Workers = append(rep.Workers, w.addr)
	}
	if len(models) == 0 {
		c.mergeErrs.Add(1)
		return rep, fmt.Errorf("cluster: merge round fetched no mergeable shard models (skipped: %v)", rep.Skipped)
	}
	merged, err := disthd.AverageModels(models...)
	if err != nil {
		c.mergeErrs.Add(1)
		return rep, fmt.Errorf("cluster: merge: %w", err)
	}
	if incumbent != nil {
		v, err := c.gate.Evaluate(incumbent, merged, c.cfg.Merge.HoldX, c.cfg.Merge.HoldY)
		if err != nil {
			c.mergeErrs.Add(1)
			return rep, fmt.Errorf("cluster: merge gate: %w", err)
		}
		rep.Verdict = &v
		c.lastMerge.Store(c.now().Unix())
		if !v.Publish {
			c.mergeRej.Add(1)
			return rep, nil
		}
	} else {
		c.lastMerge.Store(c.now().Unix())
	}
	c.fallback.Store(merged)
	c.mergePub.Add(1)
	rep.Published = true
	if c.cfg.Merge.Republish {
		for _, w := range c.workers {
			if !w.br.available() {
				continue
			}
			pctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
			err := c.tr.PushModel(pctx, w.addr, merged)
			cancel()
			if err != nil {
				w.failures.Add(1)
				w.br.Failure()
				continue
			}
			w.br.Success()
			rep.Republished++
		}
	}
	return rep, nil
}

// Stats returns a point-in-time snapshot of the coordinator counters.
func (c *Coordinator) Stats() Snapshot {
	snap := Snapshot{
		Quorum:         c.cfg.Quorum,
		Requests:       c.requests.Load(),
		Rows:           c.rows.Load(),
		Dropped:        c.dropped.Load(),
		FallbackRows:   c.fallbackRows.Load(),
		QuorumMisses:   c.quorumMisses.Load(),
		Retries:        c.retriesTotal.Load(),
		Hedges:         c.hedgesTotal.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		Merges:         c.merges.Load(),
		MergePublished: c.mergePub.Load(),
		MergeRejected:  c.mergeRej.Load(),
		MergeErrors:    c.mergeErrs.Load(),
		LastMergeUnix:  c.lastMerge.Load(),
		HasFallback:    c.fallback.Load() != nil,
	}
	for _, w := range c.workers {
		avail := w.br.available()
		if avail {
			snap.Available++
		}
		snap.Workers = append(snap.Workers, WorkerSnapshot{
			Addr:          w.addr,
			Breaker:       w.br.State().String(),
			Available:     avail,
			Healthy:       w.healthy.Load(),
			Degraded:      w.degraded.Load(),
			Requests:      w.requests.Load(),
			Failures:      w.failures.Load(),
			Retries:       w.retries.Load(),
			Hedges:        w.hedges.Load(),
			ProbeFailures: w.probeFails.Load(),
		})
	}
	snap.QuorumOK = snap.Available >= snap.Quorum
	return snap
}
