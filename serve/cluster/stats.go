package cluster

// WorkerSnapshot is one worker's row in the coordinator's /stats payload.
type WorkerSnapshot struct {
	// Addr is the worker's configured address.
	Addr string `json:"addr"`
	// Breaker is the circuit-breaker state: closed, open, or half-open.
	Breaker string `json:"breaker"`
	// Available is whether the breaker would admit a call right now.
	Available bool `json:"available"`
	// Healthy is the last active probe's verdict (true before any probe).
	Healthy bool `json:"healthy"`
	// Degraded is whether the worker self-reports degraded health; the
	// coordinator deprioritizes but does not exclude such a worker.
	Degraded bool `json:"degraded"`
	// Requests counts prediction calls launched at this worker, hedges
	// included.
	Requests uint64 `json:"requests"`
	// Failures counts calls that failed against this worker (probe
	// failures excluded).
	Failures uint64 `json:"failures"`
	// Retries counts retry attempts directed at this worker.
	Retries uint64 `json:"retries"`
	// Hedges counts hedged duplicates launched at this worker.
	Hedges uint64 `json:"hedges"`
	// ProbeFailures counts failed active health probes.
	ProbeFailures uint64 `json:"probe_failures"`
}

// Snapshot is a point-in-time copy of the coordinator's counters, shaped
// for JSON (the cluster Server's GET /stats returns exactly this struct).
type Snapshot struct {
	// Workers holds one row per configured worker.
	Workers []WorkerSnapshot `json:"workers"`
	// Available is how many workers the breakers would currently admit.
	Available int `json:"available"`
	// Quorum is the configured minimum for remote serving.
	Quorum int `json:"quorum"`
	// QuorumOK is whether Available >= Quorum right now.
	QuorumOK bool `json:"quorum_ok"`
	// Requests counts PredictBatch calls accepted by the coordinator.
	Requests uint64 `json:"requests"`
	// Rows counts rows across those calls.
	Rows uint64 `json:"rows"`
	// Dropped counts rows the coordinator failed to answer — the
	// fault-tolerance invariant is that this stays 0 (client-side input
	// errors are not drops).
	Dropped uint64 `json:"dropped"`
	// FallbackRows counts rows answered by the locally held fallback
	// model instead of a worker (graceful degradation).
	FallbackRows uint64 `json:"fallback_rows"`
	// QuorumMisses counts PredictBatch calls that found fewer than Quorum
	// available workers and went straight to the fallback.
	QuorumMisses uint64 `json:"quorum_misses"`
	// Retries counts retry attempts across all workers.
	Retries uint64 `json:"retries"`
	// Hedges counts hedged duplicates launched.
	Hedges uint64 `json:"hedges"`
	// HedgeWins counts hedges whose duplicate answered first.
	HedgeWins uint64 `json:"hedge_wins"`
	// Merges counts merge-loop rounds attempted.
	Merges uint64 `json:"merges"`
	// MergePublished counts merged candidates the gate published.
	MergePublished uint64 `json:"merge_published"`
	// MergeRejected counts merged candidates the gate rejected.
	MergeRejected uint64 `json:"merge_rejected"`
	// MergeErrors counts merge rounds that failed before a verdict.
	MergeErrors uint64 `json:"merge_errors"`
	// LastMergeUnix is the wall-clock second of the last merge round that
	// reached a verdict (0 before any).
	LastMergeUnix int64 `json:"last_merge_unix"`
	// HasFallback is whether a local fallback model is held.
	HasFallback bool `json:"has_fallback"`
	// WireJSONRequests and WireBinaryRequests count requests to the
	// cluster Server's format-negotiated endpoints (/predict,
	// /predict_batch) by wire format. The Coordinator itself does not
	// track formats; Server.handleStats fills these.
	WireJSONRequests   uint64 `json:"wire_json_requests"`
	WireBinaryRequests uint64 `json:"wire_binary_requests"`
}
