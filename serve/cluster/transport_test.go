package cluster

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHTTPTransportConnectionReuse pins the connection-pool sizing of
// NewHTTPTransport: at chaos-smoke-like fan-out (32-wide waves against
// one worker), the transport must not churn connections — the first
// wave dials once per client and every later wave rides keep-alive.
//
// The wave shape (fan out, barrier, repeat — how the coordinator fans a
// batch's chunks out and waits for stragglers) is what exposes churn: a
// barrier parks every connection idle at once, and any pool sized below
// the fan-out (MaxIdleConnsPerHost 16, or the stdlib default of 2)
// closes the surplus, forcing re-dials next wave. Measured here, per-host
// 16 burned 336 dials over 20×32 requests; per-host 64 dialed 32, ever.
func TestHTTPTransportConnectionReuse(t *testing.T) {
	f := fixtures(t)
	addr := liveWorker(t, f.shards[0])
	rows := f.test.X[:8]

	const (
		fanout = 32
		waves  = 20
	)

	tr := NewHTTPTransport()
	ht := tr.Client.Transport.(*http.Transport)
	if ht.MaxIdleConnsPerHost < fanout {
		t.Fatalf("MaxIdleConnsPerHost = %d, below the %d-wide fan-out it must absorb",
			ht.MaxIdleConnsPerHost, fanout)
	}
	// Count every real TCP dial the pool makes.
	var dials atomic.Int64
	base := &net.Dialer{}
	ht.DialContext = func(ctx context.Context, network, address string) (net.Conn, error) {
		dials.Add(1)
		return base.DialContext(ctx, network, address)
	}

	ctx := context.Background()
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for c := 0; c < fanout; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := tr.PredictBatch(ctx, addr, rows); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}

	// Steady state: one dial per concurrent client in the first wave,
	// plus a little slack for requests that raced a connection being
	// handed back. Churn looks like ~10× that — what must not come back.
	if got := dials.Load(); got > fanout*2 {
		t.Fatalf("%d dials for %d requests in %d-wide waves: connection churn (want ≤ %d)",
			got, fanout*waves, fanout, fanout*2)
	}
}
