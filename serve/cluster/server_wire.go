package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/serve/wire"
)

// Binary wire-mode handlers for the cluster Server: /predict and
// /predict_batch accept Content-Type application/x-disthd-frame and
// mirror it in the response, exactly like a single worker, so a
// binary-speaking client cannot tell a coordinator from a worker either.
// The Coordinator API takes [][]float64 (chunks are re-encoded per worker
// by the transport), so frames are decoded into a pooled flat buffer with
// pooled row headers over it; errors stay JSON in both modes.

// isWire reports whether the request negotiates the binary frame
// protocol.
func isWire(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
}

// Wire-path pools: frame decoders, flat row storage + row headers, class
// output, and response frames.
var (
	srvDecPool   = sync.Pool{New: func() any { return wire.NewDecoder(nil) }}
	srvFlatPool  = sync.Pool{New: func() any { s := make([]float64, 0, 4096); return &s }}
	srvRowsPool  = sync.Pool{New: func() any { s := make([][]float64, 0, 64); return &s }}
	srvFramePool = sync.Pool{New: func() any { s := make([]byte, 0, 512); return &s }}
)

// poolRowsOK reports whether decoded request rows may live in pooled
// storage. With a BatchPreparer transport the rows are re-encoded
// synchronously inside PredictBatch, so nothing references them after it
// returns; with a plain Transport an abandoned hedge goroutine can still
// be reading them afterwards, so the rows must own their memory.
func (s *Server) poolRowsOK() bool {
	_, ok := s.c.tr.(BatchPreparer)
	return ok
}

// decodeMatrix reads one matrix frame into a flat buffer — pooled when
// the transport permits it — and returns row views over it. done
// releases any pooled storage; call it once the rows are no longer
// referenced.
func decodeMatrix(d *wire.Decoder, pooled bool) (rows [][]float64, done func(), err error) {
	typ, err := d.Next()
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: read frame: %w", err)
	}
	if typ != wire.TypeMatrixF64 && typ != wire.TypeMatrixF32 {
		return nil, nil, fmt.Errorf("cluster: want a matrix frame, got %v", typ)
	}
	n, cols, err := d.MatrixDims()
	if err != nil {
		return nil, nil, err
	}
	var flat []float64
	done = func() {}
	if pooled {
		fp := srvFlatPool.Get().(*[]float64)
		rp := srvRowsPool.Get().(*[][]float64)
		done = func() {
			srvFlatPool.Put(fp)
			srvRowsPool.Put(rp)
		}
		if cap(*fp) < n*cols {
			*fp = make([]float64, n*cols)
		}
		if cap(*rp) < n {
			*rp = make([][]float64, n)
		}
		flat, rows = (*fp)[:n*cols], (*rp)[:n]
	} else {
		flat, rows = make([]float64, n*cols), make([][]float64, n)
	}
	if err := d.Floats(flat); err != nil {
		done()
		return nil, nil, err
	}
	for i := range rows {
		rows[i] = flat[i*cols : (i+1)*cols]
	}
	return rows, done, nil
}

// writeClassesFrame answers with a pooled binary classes frame.
func writeClassesFrame(w http.ResponseWriter, classes []int) {
	buf := srvFramePool.Get().(*[]byte)
	defer srvFramePool.Put(buf)
	*buf = wire.AppendClasses((*buf)[:0], classes)
	w.Header().Set("Content-Type", wire.ContentType)
	_, _ = w.Write(*buf)
}

// handlePredictWire serves one prediction from a 1-row matrix frame.
func (s *Server) handlePredictWire(w http.ResponseWriter, r *http.Request) {
	d := srvDecPool.Get().(*wire.Decoder)
	d.Reset(r.Body)
	defer srvDecPool.Put(d)
	rows, done, err := decodeMatrix(d, s.poolRowsOK())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer done()
	if len(rows) != 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: /predict wants exactly one row, got %d", len(rows)))
		return
	}
	class, err := s.c.Predict(r.Context(), rows[0])
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeClassesFrame(w, []int{class})
}

// handlePredictBatchWire serves a matrix frame through the cluster.
func (s *Server) handlePredictBatchWire(w http.ResponseWriter, r *http.Request) {
	d := srvDecPool.Get().(*wire.Decoder)
	d.Reset(r.Body)
	defer srvDecPool.Put(d)
	rows, done, err := decodeMatrix(d, s.poolRowsOK())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer done()
	classes, err := s.c.PredictBatch(r.Context(), rows)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeClassesFrame(w, classes)
}
