package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/wire"
)

// liveWorker stands up one real serving worker over HTTP for the wire
// interop tests (the test-sized sibling of bench_test.go's benchWorker).
func liveWorker(t testing.TB, m *disthd.Model) string {
	t.Helper()
	srv, err := serve.New(m, serve.Options{MaxBatch: 32, MaxDelay: time.Millisecond, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

// newLiveCluster stands up three real workers and a cluster Server in
// front of them, with the coordinator's transport speaking workerWire to
// the workers.
func newLiveCluster(t *testing.T, workerWire string) *httptest.Server {
	t.Helper()
	f := fixtures(t)
	addrs := []string{
		liveWorker(t, f.shards[0]),
		liveWorker(t, f.shards[1]),
		liveWorker(t, f.shards[2]),
	}
	tr := NewHTTPTransport()
	tr.Wire = workerWire
	c, err := New(Config{
		Workers:     addrs,
		CallTimeout: 2 * time.Second,
		Fallback:    f.shards[0],
		Transport:   tr,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	s := NewServer(c)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postBatchJSON runs a JSON /predict_batch and returns the classes.
func postBatchJSON(t *testing.T, url string, rows [][]float64) []int {
	t.Helper()
	var out struct {
		Classes []int `json:"classes"`
	}
	if code := postJSON(t, url+"/predict_batch", map[string]any{"x": rows}, &out); code != http.StatusOK {
		t.Fatalf("JSON /predict_batch status %d", code)
	}
	return out.Classes
}

// postBatchBinary runs a binary /predict_batch and returns the classes.
func postBatchBinary(t *testing.T, url string, rows [][]float64) []int {
	t.Helper()
	frame, err := wire.AppendMatrixF64(nil, rows, len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/predict_batch", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary /predict_batch status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("binary response content type %q", ct)
	}
	d := wire.NewDecoder(bytes.NewReader(body))
	typ, err := d.Next()
	if err != nil || typ != wire.TypeClasses {
		t.Fatalf("response frame = %v, %v; want classes", typ, err)
	}
	n, err := d.ClassCount()
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]int, n)
	if err := d.Classes(classes); err != nil {
		t.Fatal(err)
	}
	return classes
}

// TestClusterMixedFormatInterop is the coordinator<->worker interop E2E:
// every combination of client format (JSON, binary) and coordinator->
// worker format (JSON, binary) must answer the same classes over real
// HTTP end to end — format negotiation happens per hop, invisibly to the
// other hop.
func TestClusterMixedFormatInterop(t *testing.T) {
	f := fixtures(t)
	rows := f.test.X[:13]
	var want []int
	for _, workerWire := range []string{WireJSON, WireBinary} {
		ts := newLiveCluster(t, workerWire)
		for _, client := range []string{"json", "binary"} {
			var got []int
			if client == "binary" {
				got = postBatchBinary(t, ts.URL, rows)
			} else {
				got = postBatchJSON(t, ts.URL, rows)
			}
			if want == nil {
				want = got
				if len(want) != len(rows) {
					t.Fatalf("got %d classes for %d rows", len(want), len(rows))
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("client=%s workers=%s: %d classes, want %d", client, workerWire, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("client=%s workers=%s: class[%d] = %d, want %d", client, workerWire, i, got[i], want[i])
				}
			}
		}
	}
}

// TestClusterWireSingleAndStats covers the binary /predict hop through a
// live cluster plus the per-format counters in the coordinator's /stats.
func TestClusterWireSingleAndStats(t *testing.T) {
	f := fixtures(t)
	ts := newLiveCluster(t, WireBinary)

	var one struct {
		Class int `json:"class"`
	}
	if code := postJSON(t, ts.URL+"/predict", map[string]any{"x": f.test.X[0]}, &one); code != http.StatusOK {
		t.Fatalf("JSON /predict status %d", code)
	}
	got := postBatchBinary(t, ts.URL, f.test.X[:1])
	if len(got) != 1 || got[0] != one.Class {
		t.Fatalf("binary /predict_batch of one row = %v, JSON /predict says %d", got, one.Class)
	}

	// Malformed binary -> JSON 400 with an error body.
	resp, err := http.Post(ts.URL+"/predict_batch", wire.ContentType, bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed frame status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("malformed frame error body %q", body)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// 1 JSON predict; binary: 1 good batch + 1 malformed.
	if snap.WireJSONRequests != 1 || snap.WireBinaryRequests != 2 {
		t.Fatalf("wire counters json=%d binary=%d, want 1/2", snap.WireJSONRequests, snap.WireBinaryRequests)
	}
}

// TestTransportBinaryMatchesJSON pins the transport's two wire formats to
// each other against one live worker, prepared-payload path included.
func TestTransportBinaryMatchesJSON(t *testing.T) {
	f := fixtures(t)
	addr := liveWorker(t, f.shards[0])
	rows := f.test.X[:9]
	ctx := context.Background()

	jt := NewHTTPTransport()
	want, err := jt.PredictBatch(ctx, addr, rows)
	if err != nil {
		t.Fatal(err)
	}
	bt := NewHTTPTransport()
	bt.Wire = WireBinary
	got, err := bt.PredictBatch(ctx, addr, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("binary transport answered %d classes, JSON %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("class[%d]: binary %d, JSON %d", i, got[i], want[i])
		}
	}

	// A prepared payload must survive reuse: run the same PreparedBatch
	// twice, as a retry would.
	p, err := bt.PrepareBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for attempt := 0; attempt < 2; attempt++ {
		again, err := bt.PredictPrepared(ctx, addr, p)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		for i := range again {
			if again[i] != want[i] {
				t.Fatalf("attempt %d class[%d]: %d, want %d", attempt, i, again[i], want[i])
			}
		}
	}

	// An unknown wire format must fail permanently, not retry forever.
	ut := NewHTTPTransport()
	ut.Wire = "carrier-pigeon"
	if _, err := ut.PredictBatch(ctx, addr, rows); err == nil {
		t.Fatal("unknown wire format did not error")
	}
}
