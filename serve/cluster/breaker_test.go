package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// breakerOp is one step of a table-driven breaker scenario.
type breakerOp struct {
	op        string        // "allow", "available", "success", "failure", "cancel", "advance"
	d         time.Duration // for "advance"
	want      bool          // for "allow" / "available"
	wantState BreakerState  // checked after every op
}

func TestBreakerTransitions(t *testing.T) {
	cfg := BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, HalfOpenProbes: 1}
	cases := []struct {
		name string
		ops  []breakerOp
	}{
		{
			name: "closed stays closed under threshold",
			ops: []breakerOp{
				{op: "failure", wantState: BreakerClosed},
				{op: "failure", wantState: BreakerClosed},
				{op: "allow", want: true, wantState: BreakerClosed},
			},
		},
		{
			name: "success resets the consecutive-failure count",
			ops: []breakerOp{
				{op: "failure", wantState: BreakerClosed},
				{op: "failure", wantState: BreakerClosed},
				{op: "success", wantState: BreakerClosed},
				{op: "failure", wantState: BreakerClosed},
				{op: "failure", wantState: BreakerClosed},
				{op: "allow", want: true, wantState: BreakerClosed},
			},
		},
		{
			name: "threshold consecutive failures open the breaker",
			ops: []breakerOp{
				{op: "failure", wantState: BreakerClosed},
				{op: "failure", wantState: BreakerClosed},
				{op: "failure", wantState: BreakerOpen},
				{op: "allow", want: false, wantState: BreakerOpen},
				{op: "available", want: false, wantState: BreakerOpen},
			},
		},
		{
			name: "cooldown expiry admits a half-open trial",
			ops: []breakerOp{
				{op: "failure"}, {op: "failure"}, {op: "failure", wantState: BreakerOpen},
				{op: "advance", d: 999 * time.Millisecond},
				{op: "allow", want: false, wantState: BreakerOpen},
				{op: "advance", d: time.Millisecond},
				{op: "available", want: true, wantState: BreakerOpen}, // peek does not transition
				{op: "allow", want: true, wantState: BreakerHalfOpen},
				{op: "allow", want: false, wantState: BreakerHalfOpen}, // one probe slot only
				{op: "available", want: false, wantState: BreakerHalfOpen},
			},
		},
		{
			name: "half-open success closes",
			ops: []breakerOp{
				{op: "failure"}, {op: "failure"}, {op: "failure", wantState: BreakerOpen},
				{op: "advance", d: time.Second},
				{op: "allow", want: true, wantState: BreakerHalfOpen},
				{op: "success", wantState: BreakerClosed},
				{op: "allow", want: true, wantState: BreakerClosed},
			},
		},
		{
			name: "half-open failure reopens and restarts the cooldown",
			ops: []breakerOp{
				{op: "failure"}, {op: "failure"}, {op: "failure", wantState: BreakerOpen},
				{op: "advance", d: time.Second},
				{op: "allow", want: true, wantState: BreakerHalfOpen},
				{op: "failure", wantState: BreakerOpen},
				{op: "allow", want: false, wantState: BreakerOpen},
				{op: "advance", d: 999 * time.Millisecond}, // old cooldown would have expired long ago
				{op: "allow", want: false, wantState: BreakerOpen},
				{op: "advance", d: time.Millisecond},
				{op: "allow", want: true, wantState: BreakerHalfOpen},
			},
		},
		{
			name: "cancel releases the half-open trial slot",
			ops: []breakerOp{
				{op: "failure"}, {op: "failure"}, {op: "failure", wantState: BreakerOpen},
				{op: "advance", d: time.Second},
				{op: "allow", want: true, wantState: BreakerHalfOpen},
				{op: "allow", want: false, wantState: BreakerHalfOpen},
				{op: "cancel", wantState: BreakerHalfOpen},
				{op: "allow", want: true, wantState: BreakerHalfOpen},
			},
		},
		{
			name: "stale success while open is ignored",
			ops: []breakerOp{
				{op: "failure"}, {op: "failure"}, {op: "failure", wantState: BreakerOpen},
				{op: "success", wantState: BreakerOpen},
				{op: "allow", want: false, wantState: BreakerOpen},
			},
		},
		{
			name: "failure while already open keeps the original cooldown",
			ops: []breakerOp{
				{op: "failure"}, {op: "failure"}, {op: "failure", wantState: BreakerOpen},
				{op: "advance", d: 500 * time.Millisecond},
				{op: "failure", wantState: BreakerOpen},
				{op: "advance", d: 500 * time.Millisecond}, // 1s since it opened
				{op: "allow", want: true, wantState: BreakerHalfOpen},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(0, 0)}
			b := newBreaker(cfg, clk.now)
			for i, op := range tc.ops {
				switch op.op {
				case "allow":
					if got := b.Allow(); got != op.want {
						t.Fatalf("op %d: Allow() = %v, want %v", i, got, op.want)
					}
				case "available":
					if got := b.available(); got != op.want {
						t.Fatalf("op %d: available() = %v, want %v", i, got, op.want)
					}
				case "success":
					b.Success()
				case "failure":
					b.Failure()
				case "cancel":
					b.Cancel()
				case "advance":
					clk.advance(op.d)
				default:
					t.Fatalf("op %d: unknown op %q", i, op.op)
				}
				// Every non-advance row pins the state; an omitted wantState
				// is the zero value BreakerClosed, which holds in every such
				// row above.
				if op.op != "advance" && b.State() != op.wantState {
					t.Fatalf("op %d (%s): state = %v, want %v", i, op.op, b.State(), op.wantState)
				}
			}
		})
	}
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.FailureThreshold != 5 || cfg.OpenFor != 2*time.Second || cfg.HalfOpenProbes != 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(42): "unknown",
	} {
		if got := s.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}
