package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	disthd "repro"
)

// fault_test.go holds the deterministic fault-injection harness the
// cluster tests run on: simWorker is one in-memory worker shard backed by
// a real disthd.Model, and faultTransport implements Transport over a set
// of them with seeded, schedule-driven faults — kill-after-N-calls,
// next-N-calls-5xx, probabilistic drops from a splitmix64 stream, stalls
// that block until the context dies, and hard partitions. Nothing draws
// from the wall clock or math/rand, so every failure sequence is exactly
// reproducible under -race and across machines.

// simWorker is one in-memory worker shard with a fault schedule.
type simWorker struct {
	mu       sync.Mutex
	model    *disthd.Model
	degraded bool // self-reported degraded health
	dead     bool // hard partition: every call errors immediately
	stalled  bool // every call blocks until its context dies
	dieAfter int  // become dead after this many more predict calls (<0 = never)
	failNext int  // answer the next N predict calls with a retryable 5xx
	badInput bool // answer every predict call with a PermanentError (a 4xx)

	calls    int // predict calls that reached the worker
	canceled int // predict calls that died with their context while stalled
	swaps    int // models pushed via PushModel
	probes   int // health probes answered
}

// faultTransport is the deterministic in-memory Transport the tests and
// the chaos harness drive the Coordinator with.
type faultTransport struct {
	mu       sync.Mutex
	workers  map[string]*simWorker
	rng      prng    // drop schedule; deterministic per seed
	dropProb float64 // per-call probability that a predict call 5xxes
}

// newFaultTransport builds a transport over named sim workers.
func newFaultTransport(seed uint64, workers map[string]*simWorker) *faultTransport {
	return &faultTransport{workers: workers, rng: prng{s: seed}}
}

// worker looks a shard up; unknown addresses fail like a refused dial.
func (t *faultTransport) worker(addr string) (*simWorker, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.workers[addr]
	if !ok {
		return nil, fmt.Errorf("fault: no route to %s", addr)
	}
	return w, nil
}

// drop draws the next step of the seeded drop schedule.
func (t *faultTransport) drop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropProb <= 0 {
		return false
	}
	return float64(t.rng.next()%1_000_000)/1_000_000 < t.dropProb
}

// PredictBatch implements Transport against the worker's fault schedule.
func (t *faultTransport) PredictBatch(ctx context.Context, addr string, rows [][]float64) ([]int, error) {
	w, err := t.worker(addr)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.calls++
	if w.dieAfter > 0 {
		w.dieAfter--
		if w.dieAfter == 0 {
			w.dead = true
		}
	}
	dead, stalled, bad := w.dead, w.stalled, w.badInput
	fail := false
	if w.failNext > 0 {
		w.failNext--
		fail = true
	}
	m := w.model
	w.mu.Unlock()

	switch {
	case dead:
		return nil, fmt.Errorf("fault: %s is partitioned", addr)
	case stalled:
		<-ctx.Done()
		w.mu.Lock()
		w.canceled++
		w.mu.Unlock()
		return nil, ctx.Err()
	case bad:
		return nil, &PermanentError{Err: fmt.Errorf("fault: %s: 400 bad input", addr)}
	case fail || t.drop():
		return nil, fmt.Errorf("fault: %s: 503 injected", addr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.PredictBatch(rows)
}

// Health implements Transport: dead and stalled workers don't answer.
func (t *faultTransport) Health(ctx context.Context, addr string) (HealthStatus, error) {
	w, err := t.worker(addr)
	if err != nil {
		return HealthStatus{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.stalled {
		return HealthStatus{}, fmt.Errorf("fault: %s does not answer /healthz", addr)
	}
	w.probes++
	hs := HealthStatus{Status: "ok", Swaps: uint64(w.swaps)}
	if w.degraded {
		hs.Status = "degraded"
	}
	return hs, nil
}

// FetchModel implements Transport: the worker's current model, by
// reference (the coordinator treats fetched models as read-only inputs).
func (t *faultTransport) FetchModel(ctx context.Context, addr string) (*disthd.Model, error) {
	w, err := t.worker(addr)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return nil, fmt.Errorf("fault: %s is partitioned", addr)
	}
	if w.model == nil {
		return nil, fmt.Errorf("fault: %s holds no model", addr)
	}
	return w.model, nil
}

// PushModel implements Transport: replaces the worker's model, like a
// /swap.
func (t *faultTransport) PushModel(ctx context.Context, addr string, m *disthd.Model) error {
	w, err := t.worker(addr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return fmt.Errorf("fault: %s is partitioned", addr)
	}
	w.model = m
	w.swaps++
	return nil
}

// clusterFixtures is the shared dataset + model set, trained once: three
// shard models trained on disjoint thirds of the training split with one
// shared encoder (mergeable), one model with a different encoder seed
// (unmergeable), and a labeled holdout for the merge gate.
type clusterFixtures struct {
	train, test disthd.DataSplit
	shards      [3]*disthd.Model
	alien       *disthd.Model // different encoder seed: fails MergeableWith
}

var (
	fixturesOnce sync.Once
	fixturesVal  clusterFixtures
)

// fixtures trains the shared models once per test binary. Tiny settings —
// the host may be single-core and the chaos tests run under -race.
func fixtures(t testing.TB) *clusterFixtures {
	t.Helper()
	fixturesOnce.Do(func() {
		train, test, err := disthd.SyntheticBenchmark("DIABETES", 0.05, 7)
		if err != nil {
			panic(err)
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = 64
		cfg.Iterations = 3
		cfg.Seed = 7
		cfg.RegenRate = 0 // merging requires a frozen shared encoder
		n := len(train.X)
		var shards [3]*disthd.Model
		for i := range shards {
			lo, hi := i*n/3, (i+1)*n/3
			m, err := disthd.TrainWithConfig(train.X[lo:hi], train.Y[lo:hi], train.Classes, cfg)
			if err != nil {
				panic(err)
			}
			shards[i] = m
		}
		acfg := cfg
		acfg.Seed = 8 // different encoder: MergeableWith must reject it
		alien, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, acfg)
		if err != nil {
			panic(err)
		}
		fixturesVal = clusterFixtures{train: train, test: test, shards: shards, alien: alien}
	})
	return &fixturesVal
}

// sim builds one healthy simWorker serving m.
func sim(m *disthd.Model) *simWorker { return &simWorker{model: m, dieAfter: -1} }

// newTestCoordinator wires a coordinator over sim workers with fast test
// timings, registering cleanup. Callers mutate cfg via mod before New.
func newTestCoordinator(t *testing.T, workers map[string]*simWorker, mod func(*Config)) (*Coordinator, *faultTransport) {
	t.Helper()
	tr := newFaultTransport(1, workers)
	addrs := make([]string, 0, len(workers))
	for addr := range workers {
		addrs = append(addrs, addr)
	}
	// Map order is random; tests that care about which worker is primary
	// pass explicit Workers through mod.
	cfg := Config{
		Workers:     addrs,
		Transport:   tr,
		CallTimeout: 2 * time.Second, // generous: tests drive faults explicitly
		Retry:       RetryConfig{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: 2 * time.Microsecond},
		Seed:        11,
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, tr
}
