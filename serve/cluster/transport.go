package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	disthd "repro"
)

// Transport is how the Coordinator talks to one worker shard. The worker
// argument is the address the Coordinator was configured with; every call
// must honor ctx cancellation, because the retry, hedge, and deadline
// machinery all cancel through it. HTTPTransport is the production
// implementation (each worker a stock disthd-serve); the tests substitute
// a deterministic in-memory fault-injecting transport.
type Transport interface {
	// PredictBatch classifies rows on the worker and returns one class
	// per row.
	PredictBatch(ctx context.Context, worker string, rows [][]float64) ([]int, error)
	// Health probes the worker's /healthz and returns its self-reported
	// status ("ok" or "degraded"); a non-nil error means the worker did
	// not answer healthily at all.
	Health(ctx context.Context, worker string) (HealthStatus, error)
	// FetchModel pulls the worker's serving model snapshot (GET /model) —
	// what the federated merge loop aggregates.
	FetchModel(ctx context.Context, worker string) (*disthd.Model, error)
	// PushModel publishes m to the worker (POST /swap) — how a gated
	// merged model is republished to the shards.
	PushModel(ctx context.Context, worker string, m *disthd.Model) error
}

// HealthStatus is a worker's self-reported health, as surfaced by the
// truthful /healthz endpoint: Status "degraded" means the worker is
// serving but impaired (e.g. its learner is in post-rejection backoff or a
// retrain is wedged), so the coordinator deprioritizes it without opening
// its breaker.
type HealthStatus struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Swaps is the worker's model-swap counter, useful for checking that
	// a republished merge actually landed.
	Swaps uint64 `json:"swaps"`
}

// PermanentError wraps a failure that retrying on another worker cannot
// fix — a 4xx from the worker, i.e. the caller's own input was bad. The
// coordinator returns it immediately instead of burning retries, and it
// never counts against a worker's circuit breaker.
type PermanentError struct {
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped failure to errors.Is / errors.As.
func (e *PermanentError) Unwrap() error { return e.Err }

// HTTPTransport talks to workers over the serve.Server HTTP/JSON wire
// format: POST /predict_batch, GET /healthz, GET /model, POST /swap. A
// worker address may be "host:port" or a full http:// URL.
type HTTPTransport struct {
	// Client is the underlying HTTP client; NewHTTPTransport installs one
	// tuned for many small requests to few hosts. Per-call deadlines come
	// from the context, not Client.Timeout.
	Client *http.Client
}

// NewHTTPTransport returns a transport with a connection-pooled client
// sized for coordinator fan-out (keep-alive connections to every worker,
// no global timeout — the coordinator propagates deadlines per call).
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// url joins a worker address and path into a request URL.
func (t *HTTPTransport) url(worker, path string) string {
	if !strings.Contains(worker, "://") {
		worker = "http://" + worker
	}
	return strings.TrimSuffix(worker, "/") + path
}

// do runs one request and maps worker-side status codes: 2xx passes
// through, 4xx becomes a PermanentError, and anything else is a retryable
// failure. The returned body is non-nil only on success.
func (t *HTTPTransport) do(req *http.Request) (*http.Response, error) {
	resp, err := t.Client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	err = fmt.Errorf("cluster: worker %s: %s: %s", req.URL.Host, resp.Status, bytes.TrimSpace(body))
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		return nil, &PermanentError{Err: err}
	}
	return nil, err
}

// PredictBatch implements Transport over POST /predict_batch.
func (t *HTTPTransport) PredictBatch(ctx context.Context, worker string, rows [][]float64) ([]int, error) {
	payload, err := json.Marshal(map[string][][]float64{"x": rows})
	if err != nil {
		return nil, &PermanentError{Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.url(worker, "/predict_batch"), bytes.NewReader(payload))
	if err != nil {
		return nil, &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Classes []int `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: decode response: %w", worker, err)
	}
	if len(out.Classes) != len(rows) {
		return nil, fmt.Errorf("cluster: worker %s answered %d classes for %d rows", worker, len(out.Classes), len(rows))
	}
	return out.Classes, nil
}

// Health implements Transport over GET /healthz.
func (t *HTTPTransport) Health(ctx context.Context, worker string) (HealthStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(worker, "/healthz"), nil)
	if err != nil {
		return HealthStatus{}, err
	}
	resp, err := t.do(req)
	if err != nil {
		return HealthStatus{}, err
	}
	defer resp.Body.Close()
	var hs HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		return HealthStatus{}, fmt.Errorf("cluster: worker %s: decode healthz: %w", worker, err)
	}
	return hs, nil
}

// FetchModel implements Transport over GET /model.
func (t *HTTPTransport) FetchModel(ctx context.Context, worker string) (*disthd.Model, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(worker, "/model"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	m, err := disthd.Load(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", worker, err)
	}
	return m, nil
}

// PushModel implements Transport over POST /swap.
func (t *HTTPTransport) PushModel(ctx context.Context, worker string, m *disthd.Model) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return &PermanentError{Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.url(worker, "/swap"), &buf)
	if err != nil {
		return &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
