package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	disthd "repro"
	"repro/serve/wire"
)

// Transport is how the Coordinator talks to one worker shard. The worker
// argument is the address the Coordinator was configured with; every call
// must honor ctx cancellation, because the retry, hedge, and deadline
// machinery all cancel through it. HTTPTransport is the production
// implementation (each worker a stock disthd-serve); the tests substitute
// a deterministic in-memory fault-injecting transport.
type Transport interface {
	// PredictBatch classifies rows on the worker and returns one class
	// per row.
	PredictBatch(ctx context.Context, worker string, rows [][]float64) ([]int, error)
	// Health probes the worker's /healthz and returns its self-reported
	// status ("ok" or "degraded"); a non-nil error means the worker did
	// not answer healthily at all.
	Health(ctx context.Context, worker string) (HealthStatus, error)
	// FetchModel pulls the worker's serving model snapshot (GET /model) —
	// what the federated merge loop aggregates.
	FetchModel(ctx context.Context, worker string) (*disthd.Model, error)
	// PushModel publishes m to the worker (POST /swap) — how a gated
	// merged model is republished to the shards.
	PushModel(ctx context.Context, worker string, m *disthd.Model) error
}

// HealthStatus is a worker's self-reported health, as surfaced by the
// truthful /healthz endpoint: Status "degraded" means the worker is
// serving but impaired (e.g. its learner is in post-rejection backoff or a
// retrain is wedged), so the coordinator deprioritizes it without opening
// its breaker.
type HealthStatus struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Swaps is the worker's model-swap counter, useful for checking that
	// a republished merge actually landed.
	Swaps uint64 `json:"swaps"`
}

// PermanentError wraps a failure that retrying on another worker cannot
// fix — a 4xx from the worker, i.e. the caller's own input was bad. The
// coordinator returns it immediately instead of burning retries, and it
// never counts against a worker's circuit breaker.
type PermanentError struct {
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped failure to errors.Is / errors.As.
func (e *PermanentError) Unwrap() error { return e.Err }

// PreparedBatch is one chunk's request payload encoded once, reusable
// across every retry and hedge of that chunk. Close releases it; after
// Close it must not be passed to PredictPrepared again.
type PreparedBatch interface {
	// Close releases the prepared payload.
	Close()
}

// BatchPreparer is the optional Transport extension the Coordinator uses
// to stop re-encoding a chunk on every retry/hedge: when the transport
// implements it, the Coordinator prepares each chunk once and calls
// PredictPrepared per attempt. Transports without it (like the tests'
// fault injector) keep the plain PredictBatch path.
type BatchPreparer interface {
	// PrepareBatch encodes rows into a reusable request payload.
	PrepareBatch(rows [][]float64) (PreparedBatch, error)
	// PredictPrepared runs one prediction attempt against worker with a
	// payload from this transport's PrepareBatch.
	PredictPrepared(ctx context.Context, worker string, p PreparedBatch) ([]int, error)
}

// WireBinary and WireJSON name the worker wire formats HTTPTransport can
// speak on predict calls.
const (
	// WireJSON is the default HTTP/JSON format.
	WireJSON = "json"
	// WireBinary is the repro/serve/wire frame protocol.
	WireBinary = "binary"
)

// HTTPTransport talks to workers over the serve.Server HTTP wire formats:
// POST /predict_batch (JSON by default, the binary frame protocol with
// Wire set to WireBinary), GET /healthz, GET /model, POST /swap. A worker
// address may be "host:port" or a full http:// URL. It implements
// BatchPreparer, so the Coordinator encodes each chunk exactly once and
// reuses the payload (and the cached endpoint URL) across every retry and
// hedge of that chunk.
type HTTPTransport struct {
	// Client is the underlying HTTP client; NewHTTPTransport installs one
	// tuned for many small requests to few hosts. Per-call deadlines come
	// from the context, not Client.Timeout.
	Client *http.Client
	// Wire selects the predict-call request format: WireJSON (the default,
	// also chosen by an empty string) or WireBinary. Health, model fetch,
	// and swap always use their existing formats. Set it before serving
	// traffic.
	Wire string

	// urls caches per-worker endpoint URLs so no request rebuilds them.
	urls sync.Map // worker addr -> *workerURLs
}

// workerURLs is the per-worker endpoint URL cache.
type workerURLs struct {
	predictBatch, healthz, model, swap string
}

// NewHTTPTransport returns a transport with a connection-pooled client
// sized for coordinator fan-out (keep-alive connections to every worker,
// no global timeout — the coordinator propagates deadlines per call).
//
// MaxIdleConnsPerHost must be at least the coordinator's per-worker
// concurrency: the stdlib default (2) — and anything below the client
// fan-out — closes the surplus connections after every burst, so a
// closed loop at chaos-smoke concurrency re-dials the same worker on
// almost every request. 64 per host covers the chunk fan-out plus
// hedges; TestHTTPTransportConnectionReuse pins the no-churn behavior.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// endpoints returns the cached endpoint URLs for a worker, building them
// on first use.
func (t *HTTPTransport) endpoints(worker string) *workerURLs {
	if u, ok := t.urls.Load(worker); ok {
		return u.(*workerURLs)
	}
	base := worker
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	u := &workerURLs{
		predictBatch: base + "/predict_batch",
		healthz:      base + "/healthz",
		model:        base + "/model",
		swap:         base + "/swap",
	}
	actual, _ := t.urls.LoadOrStore(worker, u)
	return actual.(*workerURLs)
}

// do runs one request and maps worker-side status codes: 2xx passes
// through, 4xx becomes a PermanentError, and anything else is a retryable
// failure. The returned body is non-nil only on success.
func (t *HTTPTransport) do(req *http.Request) (*http.Response, error) {
	resp, err := t.Client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	err = fmt.Errorf("cluster: worker %s: %s: %s", req.URL.Host, resp.Status, bytes.TrimSpace(body))
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		return nil, &PermanentError{Err: err}
	}
	return nil, err
}

// preparedBatch is HTTPTransport's PreparedBatch: the encoded request
// payload plus what a response must answer. The payload is immutable once
// built, so concurrent hedged attempts can stream it simultaneously (each
// attempt wraps it in its own bytes.Reader).
type preparedBatch struct {
	payload     []byte
	contentType string
	rows        int
	binary      bool
}

// Close implements PreparedBatch. The payload is garbage-collected once
// the last in-flight attempt's body reader drops it; abandoned hedges may
// still be streaming it after Close, which is why it is not pooled.
func (p *preparedBatch) Close() {}

// PrepareBatch implements BatchPreparer: the chunk is marshaled exactly
// once — as a JSON {"x": rows} body or a binary matrix frame per Wire —
// and every retry/hedge reuses the bytes.
func (t *HTTPTransport) PrepareBatch(rows [][]float64) (PreparedBatch, error) {
	switch t.Wire {
	case "", WireJSON:
		payload, err := json.Marshal(map[string][][]float64{"x": rows})
		if err != nil {
			return nil, &PermanentError{Err: err}
		}
		return &preparedBatch{payload: payload, contentType: "application/json", rows: len(rows)}, nil
	case WireBinary:
		cols := 0
		if len(rows) > 0 {
			cols = len(rows[0])
		}
		payload, err := wire.AppendMatrixF64(make([]byte, 0, wire.HeaderSize+8+len(rows)*cols*8), rows, cols)
		if err != nil {
			return nil, &PermanentError{Err: err}
		}
		return &preparedBatch{payload: payload, contentType: wire.ContentType, rows: len(rows), binary: true}, nil
	}
	return nil, &PermanentError{Err: fmt.Errorf("cluster: unknown wire format %q", t.Wire)}
}

// PredictPrepared implements BatchPreparer over POST /predict_batch.
func (t *HTTPTransport) PredictPrepared(ctx context.Context, worker string, pb PreparedBatch) ([]int, error) {
	p, ok := pb.(*preparedBatch)
	if !ok {
		return nil, &PermanentError{Err: fmt.Errorf("cluster: foreign prepared batch %T", pb)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.endpoints(worker).predictBatch, bytes.NewReader(p.payload))
	if err != nil {
		return nil, &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", p.contentType)
	resp, err := t.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if p.binary {
		return decodeClasses(resp.Body, worker, p.rows)
	}
	var out struct {
		Classes []int `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: decode response: %w", worker, err)
	}
	if len(out.Classes) != p.rows {
		return nil, fmt.Errorf("cluster: worker %s answered %d classes for %d rows", worker, len(out.Classes), p.rows)
	}
	return out.Classes, nil
}

// decodeClasses reads a binary classes frame and validates the count.
func decodeClasses(body io.Reader, worker string, rows int) ([]int, error) {
	d := wire.NewDecoder(body)
	typ, err := d.Next()
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: decode response: %w", worker, err)
	}
	if typ != wire.TypeClasses {
		return nil, fmt.Errorf("cluster: worker %s answered frame %v, want classes", worker, typ)
	}
	n, err := d.ClassCount()
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: decode response: %w", worker, err)
	}
	if n != rows {
		return nil, fmt.Errorf("cluster: worker %s answered %d classes for %d rows", worker, n, rows)
	}
	classes := make([]int, n)
	if err := d.Classes(classes); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: decode response: %w", worker, err)
	}
	return classes, nil
}

// PredictBatch implements Transport over POST /predict_batch — one
// prepare, one attempt. The Coordinator prefers the BatchPreparer path,
// which amortizes the encode across retries and hedges.
func (t *HTTPTransport) PredictBatch(ctx context.Context, worker string, rows [][]float64) ([]int, error) {
	p, err := t.PrepareBatch(rows)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return t.PredictPrepared(ctx, worker, p)
}

// Health implements Transport over GET /healthz.
func (t *HTTPTransport) Health(ctx context.Context, worker string) (HealthStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.endpoints(worker).healthz, nil)
	if err != nil {
		return HealthStatus{}, err
	}
	resp, err := t.do(req)
	if err != nil {
		return HealthStatus{}, err
	}
	defer resp.Body.Close()
	var hs HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		return HealthStatus{}, fmt.Errorf("cluster: worker %s: decode healthz: %w", worker, err)
	}
	return hs, nil
}

// FetchModel implements Transport over GET /model.
func (t *HTTPTransport) FetchModel(ctx context.Context, worker string) (*disthd.Model, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.endpoints(worker).model, nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	m, err := disthd.Load(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", worker, err)
	}
	return m, nil
}

// PushModel implements Transport over POST /swap.
func (t *HTTPTransport) PushModel(ctx context.Context, worker string, m *disthd.Model) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return &PermanentError{Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.endpoints(worker).swap, &buf)
	if err != nil {
		return &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
