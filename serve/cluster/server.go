package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Server exposes a Coordinator over the same HTTP/JSON wire format as a
// single serve.Server, so clients, load balancers, and hdbench cannot
// tell a coordinator from a worker:
//
//	POST /predict        {"x":[...]}            -> {"class":3}
//	POST /predict_batch  {"x":[[...],[...]]}    -> {"classes":[3,1]}
//	GET  /healthz                               -> cluster + per-worker health
//	GET  /stats                                 -> cluster.Snapshot JSON
//	POST /merge                                 -> MergeReport JSON (one merge round now)
//
// Like a worker, /predict and /predict_batch also negotiate the binary
// frame protocol: a request with Content-Type application/x-disthd-frame
// (see repro/serve/wire) is answered in kind, and /stats carries
// per-format request counters. JSON stays the default; errors are JSON in
// both modes.
//
// /healthz reports "ok" while the available workers meet the quorum and
// "degraded" while serving from the fallback model; SetStrictHealth makes
// degraded answer 503 so upstream load balancers can act on it. The
// server is hardened from birth: header/read/idle timeouts and bounded
// request bodies (413 on overflow).
type Server struct {
	c            *Coordinator
	mux          *http.ServeMux
	hs           *http.Server
	strictHealth bool

	// Per-format request counters over the negotiated endpoints, surfaced
	// in /stats so a fleet migration is observable at the coordinator too.
	wireJSON   atomic.Uint64
	wireBinary atomic.Uint64
}

// serverBodyLimit bounds /predict and /predict_batch request bodies.
const serverBodyLimit = 8 << 20

// NewServer wraps c. The caller keeps ownership of the Coordinator's
// lifecycle only if it never calls Server.Close (which closes both).
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /predict_batch", s.handlePredictBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /merge", s.handleMerge)
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	return s
}

// Coordinator returns the wrapped coordinator (for stats or direct
// calls).
func (s *Server) Coordinator() *Coordinator { return s.c }

// SetStrictHealth makes /healthz answer 503 while the cluster is
// degraded (below quorum, serving from the fallback). Set it before
// serving traffic.
func (s *Server) SetStrictHealth(on bool) { s.strictHealth = on }

// Handler returns the route table, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Close or a listener error,
// blocking like http.Server.ListenAndServe.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	return s.hs.ListenAndServe()
}

// Close shuts the HTTP listener down, waits for in-flight requests, and
// then closes the Coordinator (stopping its probe and merge loops).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := s.hs.Shutdown(ctx)
	cancel()
	s.c.Close()
	return err
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits a {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// readJSON decodes a body bounded by serverBodyLimit, mapping overflow
// to 413 and malformed JSON to 400; a zero status means success.
func readJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, serverBodyLimit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode body: %w", err)
	}
	return 0, nil
}

// statusFor maps a coordinator error to its HTTP status: client-caused
// failures are 4xx, a closed coordinator or an unanswerable batch is 503.
func statusFor(err error) int {
	var pe *PermanentError
	switch {
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &pe):
		return http.StatusBadRequest
	}
	return http.StatusServiceUnavailable
}

// handlePredict serves one prediction through the cluster.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if isWire(r) {
		s.wireBinary.Add(1)
		s.handlePredictWire(w, r)
		return
	}
	s.wireJSON.Add(1)
	var req struct {
		X []float64 `json:"x"`
	}
	if status, err := readJSON(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	class, err := s.c.Predict(r.Context(), req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"class": class})
}

// handlePredictBatch serves a caller-provided batch through the cluster.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if isWire(r) {
		s.wireBinary.Add(1)
		s.handlePredictBatchWire(w, r)
		return
	}
	s.wireJSON.Add(1)
	var req struct {
		X [][]float64 `json:"x"`
	}
	if status, err := readJSON(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	classes, err := s.c.PredictBatch(r.Context(), req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if classes == nil {
		classes = []int{}
	}
	writeJSON(w, http.StatusOK, map[string][]int{"classes": classes})
}

// handleHealthz reports cluster liveness: "ok" at or above quorum,
// "degraded" below it (503 in strict mode), with per-worker breaker
// states so an operator sees which shard is out.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.c.Stats()
	status := "ok"
	if !snap.QuorumOK {
		status = "degraded"
	}
	code := http.StatusOK
	if status != "ok" && s.strictHealth {
		code = http.StatusServiceUnavailable
	}
	workers := make([]map[string]any, 0, len(snap.Workers))
	for _, ws := range snap.Workers {
		workers = append(workers, map[string]any{
			"addr": ws.Addr, "breaker": ws.Breaker,
			"available": ws.Available, "degraded": ws.Degraded,
		})
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"available": snap.Available,
		"quorum":    snap.Quorum,
		"fallback":  snap.HasFallback,
		"workers":   workers,
	})
}

// Stats assembles the full cluster snapshot: the coordinator counters
// plus this server's per-wire-format request counters. GET /stats
// returns exactly this.
func (s *Server) Stats() Snapshot {
	snap := s.c.Stats()
	snap.WireJSONRequests = s.wireJSON.Load()
	snap.WireBinaryRequests = s.wireBinary.Load()
	return snap
}

// handleStats reports the coordinator counters plus the server's
// per-format request counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMerge triggers one federated merge round and reports it — the
// operator's lever for refreshing the fallback without waiting for the
// merge interval.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	rep, err := s.c.MergeNow(r.Context())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
