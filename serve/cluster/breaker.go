package cluster

import (
	"sync"
	"time"
)

// BreakerState is one of the three circuit-breaker states a worker shard
// moves through: Closed (traffic flows, consecutive failures are counted),
// Open (the shard is presumed dead; calls are refused without touching the
// network), and HalfOpen (the cooldown expired; a bounded number of trial
// calls probe whether the shard recovered).
type BreakerState int32

// The three breaker states. The zero value is BreakerClosed, so a freshly
// constructed breaker admits traffic.
const (
	// BreakerClosed admits every call and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every call until the cooldown expires — a dead
	// shard costs one probe per cooldown instead of a timeout per request.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of trial calls; one success
	// closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

// String names the state for logs and the /stats JSON.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig configures one worker's circuit breaker. The zero value
// picks the defaults documented on each field.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures (passive request
	// failures and active probe failures both count) open the breaker.
	// Default 5.
	FailureThreshold int
	// OpenFor is the cooldown an open breaker waits before admitting
	// half-open trial calls. Default 2s.
	OpenFor time.Duration
	// HalfOpenProbes bounds how many trial calls may be in flight while
	// half-open. Default 1.
	HalfOpenProbes int
}

// withDefaults fills unset fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor == 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes == 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// breaker is the per-worker three-state circuit breaker. All transitions
// run under one mutex; the clock is injected so tests drive transitions
// deterministically without wall-clock sleeps.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // in-flight half-open trial calls
}

// newBreaker builds a closed breaker on the given clock.
func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// Allow reports whether a call may proceed, transitioning Open to HalfOpen
// once the cooldown has expired. A true return while half-open claims one
// trial slot; the caller must settle it with Success, Failure, or Cancel.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		fallthrough
	case BreakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
	return false
}

// available reports whether a call would currently be admitted, without
// claiming a half-open trial slot — what quorum counting and retry-target
// selection use.
func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.now().Sub(b.openedAt) >= b.cfg.OpenFor
	case BreakerHalfOpen:
		return b.probes < b.cfg.HalfOpenProbes
	}
	return false
}

// Success settles a call that got an answer: it resets the consecutive-
// failure count, and a half-open success closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.fails = 0
		b.probes = 0
	case BreakerOpen:
		// A stale success from before the breaker opened; ignore it.
	}
}

// Failure settles a failed call: the FailureThreshold-th consecutive
// failure opens a closed breaker, and any half-open failure reopens it
// (restarting the cooldown).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probes = 0
	case BreakerOpen:
		// Already open; the cooldown keeps its original start.
	}
}

// Cancel releases a half-open trial slot claimed by Allow when the call
// was abandoned without a verdict — the hedge loser's path. A no-op in the
// other states.
func (b *breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// State returns the current state (Open is reported as Open even when the
// cooldown has expired; the transition happens on the next Allow).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
