package cluster

import "time"

// RetryConfig shapes the coordinator's per-chunk retry policy: how many
// workers a failing chunk may visit, how the pre-retry backoff grows, and
// when a hedged duplicate of a slow call launches. The zero value picks
// the defaults documented on each field.
type RetryConfig struct {
	// MaxAttempts is the total number of tries a chunk gets, the first
	// call included; later attempts go to a different worker when one is
	// available. Default 3.
	MaxAttempts int
	// BaseBackoff is the backoff before the first retry; attempt n waits
	// BaseBackoff·2^(n-1), jittered. Default 5ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 100ms.
	MaxBackoff time.Duration
	// HedgeAfter, when positive, launches a duplicate of an unanswered
	// call on a second worker after this long — the tail-latency hedge.
	// The first answer wins and the loser is canceled. Default 0 (off).
	HedgeAfter time.Duration
}

// withDefaults fills unset fields.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 5 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	return c
}

// backoff returns the pre-sleep before retry number retry (1-based):
// exponential growth BaseBackoff·2^(retry-1) capped at MaxBackoff, with
// equal-jitter drawn from rng so synchronized retries de-correlate. The
// result is always within [d/2, d] for the capped exponential d — the
// bound the retry tests pin.
func (c RetryConfig) backoff(retry int, rng *prng) time.Duration {
	d := c.BaseBackoff
	for i := 1; i < retry; i++ {
		d <<= 1
		if d >= c.MaxBackoff || d <= 0 {
			d = c.MaxBackoff
			break
		}
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(rng.next()%uint64(d-half+1))
}

// prng is a splitmix64 generator: deterministic for a fixed seed, cheap,
// and good enough to de-correlate backoff jitter. It is not safe for
// concurrent use; the coordinator guards it with a mutex.
type prng struct{ s uint64 }

// next advances the generator one step.
func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
