package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	disthd "repro"
)

// TestClusterChaosWorkerDiesMidStream is the package's headline E2E: three
// workers serve identical models, concurrent clients stream batches, and
// one worker is hard-partitioned mid-stream. Every request must still be
// answered, every answer must bitwise-match the model, the dead worker's
// breaker must open, and the Dropped counter must end at zero.
func TestClusterChaosWorkerDiesMidStream(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	w0, w1, w2 := sim(m), sim(m), sim(m)
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0, "w1": w1, "w2": w2}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1", "w2"}
		cfg.Quorum = 2
		cfg.Fallback = m
		cfg.Breaker = BreakerConfig{FailureThreshold: 2, OpenFor: time.Hour}
	})

	const (
		clients      = 3
		batchesPer   = 30
		rowsPerBatch = 6
		killAtBatch  = 10 // client 0 partitions w0 after this many of its batches
	)
	var kill sync.Once
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				if cl == 0 && b == killAtBatch {
					kill.Do(func() {
						w0.mu.Lock()
						w0.dead = true
						w0.mu.Unlock()
					})
				}
				rows := make([][]float64, rowsPerBatch)
				for i := range rows {
					rows[i] = f.test.X[(cl*batchesPer*rowsPerBatch+b*rowsPerBatch+i)%len(f.test.X)]
				}
				got, err := c.PredictBatch(context.Background(), rows)
				if err != nil {
					errs[cl] = err
					return
				}
				want, err := m.PredictBatch(rows)
				if err != nil {
					errs[cl] = err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("client %d batch %d row %d: class %d, want %d", cl, b, i, got[i], want[i])
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	for cl, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", cl, err)
		}
	}
	snap := c.Stats()
	if snap.Dropped != 0 {
		t.Fatalf("dropped %d rows; the invariant is 0 (stats: %+v)", snap.Dropped, snap)
	}
	if want := uint64(clients * batchesPer * rowsPerBatch); snap.Rows != want {
		t.Fatalf("rows %d, want %d", snap.Rows, want)
	}
	var w0snap WorkerSnapshot
	for _, ws := range snap.Workers {
		if ws.Addr == "w0" {
			w0snap = ws
		}
	}
	if w0snap.Breaker != "open" {
		t.Fatalf("dead worker w0 breaker %q, want open (failures %d)", w0snap.Breaker, w0snap.Failures)
	}
	if snap.Available != 2 || !snap.QuorumOK {
		t.Fatalf("available %d quorum_ok %v, want 2 survivors meeting quorum", snap.Available, snap.QuorumOK)
	}
}

// TestClusterBelowQuorumServesFallback loses two of three workers: once
// their breakers open the cluster is below quorum and every batch must be
// answered by the local fallback model, never dropped.
func TestClusterBelowQuorumServesFallback(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	w0, w1, w2 := sim(m), sim(m), sim(m)
	w1.dead, w2.dead = true, true
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0, "w1": w1, "w2": w2}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1", "w2"}
		cfg.Quorum = 2
		cfg.Fallback = m
		cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour}
	})

	rows := f.test.X[:8]
	want, err := m.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Batches keep being answered while the dead workers burn through
	// their (threshold-1) failure budget and after the quorum is lost.
	for i := 0; i < 6; i++ {
		got, err := c.PredictBatch(context.Background(), rows)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("batch %d row %d: class %d, want %d", i, j, got[j], want[j])
			}
		}
	}
	snap := c.Stats()
	if snap.Dropped != 0 {
		t.Fatalf("dropped %d rows, want 0", snap.Dropped)
	}
	if snap.QuorumMisses == 0 {
		t.Fatal("expected below-quorum batches to be counted")
	}
	if snap.FallbackRows == 0 {
		t.Fatal("expected fallback-served rows")
	}
	if snap.QuorumOK {
		t.Fatalf("quorum_ok true with %d of 3 workers available", snap.Available)
	}
}

// TestClusterNoFallbackCountsDrops is the negative control: with no
// fallback model and no reachable worker, the batch errors and its rows
// are counted as dropped.
func TestClusterNoFallbackCountsDrops(t *testing.T) {
	f := fixtures(t)
	w0 := sim(f.shards[0])
	w0.dead = true
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
		cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour}
	})
	if _, err := c.PredictBatch(context.Background(), f.test.X[:4]); err == nil {
		t.Fatal("expected an error with no fallback and a dead worker")
	}
	if got := c.Stats().Dropped; got != 4 {
		t.Fatalf("dropped %d rows, want 4", got)
	}
}

// TestClusterPermanentErrorShortCircuits pins the 4xx contract: a
// PermanentError is returned to the caller immediately — no retries, no
// fallback, no breaker penalty, no drop accounting.
func TestClusterPermanentErrorShortCircuits(t *testing.T) {
	f := fixtures(t)
	w0 := sim(f.shards[0])
	w0.badInput = true
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
		cfg.Fallback = f.shards[0]
	})
	_, err := c.PredictBatch(context.Background(), f.test.X[:2])
	var pe *PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a PermanentError", err)
	}
	snap := c.Stats()
	if snap.Retries != 0 {
		t.Fatalf("retries %d, want 0 — 4xx must not burn retries", snap.Retries)
	}
	if snap.Dropped != 0 || snap.FallbackRows != 0 {
		t.Fatalf("dropped %d fallback %d, want 0/0 — a 4xx is the caller's fault", snap.Dropped, snap.FallbackRows)
	}
	if st := snap.Workers[0].Breaker; st != "closed" {
		t.Fatalf("breaker %q after 4xx, want closed — the worker behaved", st)
	}
}

// TestClusterRetryRotatesToSurvivor sends one chunk at a worker whose next
// calls 5xx; the retry must land on the healthy worker and succeed.
func TestClusterRetryRotatesToSurvivor(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	w0, w1 := sim(m), sim(m)
	w0.failNext = 10
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0, "w1": w1}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1"}
		cfg.Quorum = 1
	})
	x := f.test.X[0]
	got, err := c.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("class %d, want %d", got, want)
	}
	snap := c.Stats()
	if snap.Retries == 0 {
		t.Fatal("expected at least one retry")
	}
	if snap.FallbackRows != 0 {
		t.Fatalf("fallback served %d rows; the retry should have answered remotely", snap.FallbackRows)
	}
}

// TestClusterHedgeWins stalls the primary worker; the hedged duplicate on
// the survivor must answer, the stalled loser must be canceled, and its
// breaker must stay closed (an abandoned call is nobody's fault).
func TestClusterHedgeWins(t *testing.T) {
	f := fixtures(t)
	m := f.shards[0]
	w0, w1 := sim(m), sim(m)
	w0.stalled = true
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0, "w1": w1}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1"}
		cfg.Quorum = 1
		cfg.Retry = RetryConfig{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond, HedgeAfter: 2 * time.Millisecond}
	})
	x := f.test.X[1]
	got, err := c.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("class %d, want %d", got, want)
	}
	snap := c.Stats()
	if snap.Hedges == 0 || snap.HedgeWins == 0 {
		t.Fatalf("hedges %d wins %d, want both > 0", snap.Hedges, snap.HedgeWins)
	}
	// The loser was canceled, not failed: give the reaper a moment to
	// settle the claim, then check the stalled worker kept a clean slate.
	deadline := time.Now().Add(2 * time.Second)
	for {
		w0.mu.Lock()
		canceled := w0.canceled
		w0.mu.Unlock()
		if canceled > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, ws := range c.Stats().Workers {
		if ws.Addr == "w0" && (ws.Failures != 0 || ws.Breaker != "closed") {
			t.Fatalf("stalled hedge loser: failures %d breaker %q, want 0/closed", ws.Failures, ws.Breaker)
		}
	}
}

// TestProbeDrivesBreakerLifecycle exercises the active-probe path on an
// injected clock: probe failures open a dead worker's breaker without any
// request traffic, and after revival a single probe performs the half-open
// trial and closes it again.
func TestProbeDrivesBreakerLifecycle(t *testing.T) {
	f := fixtures(t)
	w0 := sim(f.shards[0])
	w0.dead = true
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
		cfg.Breaker = BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute}
	})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.now // no loops are running; safe to swap the clock

	w := c.workers[0]
	c.probe(w)
	c.probe(w)
	if st := w.br.State(); st != BreakerOpen {
		t.Fatalf("after %d probe failures: breaker %v, want open", 2, st)
	}
	if w.healthy.Load() {
		t.Fatal("worker still marked healthy after failed probes")
	}
	// Cooling down: the probe must not even touch the worker.
	before := w0.probes
	c.probe(w)
	if w0.probes != before {
		t.Fatal("probe reached a worker whose breaker is cooling down")
	}
	// Revive the worker and expire the cooldown: one probe is the
	// half-open trial and closes the breaker.
	w0.mu.Lock()
	w0.dead = false
	w0.degraded = true
	w0.mu.Unlock()
	clk.advance(time.Minute)
	c.probe(w)
	if st := w.br.State(); st != BreakerClosed {
		t.Fatalf("after recovery probe: breaker %v, want closed", st)
	}
	if !w.healthy.Load() || !w.degraded.Load() {
		t.Fatalf("healthy %v degraded %v, want true/true (self-reported degraded)", w.healthy.Load(), w.degraded.Load())
	}
}

// TestCandidatesDeprioritizeDegraded pins the routing order: a worker
// that self-reports degraded health stays eligible but sorts last.
func TestCandidatesDeprioritizeDegraded(t *testing.T) {
	f := fixtures(t)
	w0, w1 := sim(f.shards[0]), sim(f.shards[0])
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0, "w1": w1}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1"}
	})
	c.workers[0].degraded.Store(true)
	cands := c.candidates()
	if len(cands) != 2 || cands[0].addr != "w1" || cands[1].addr != "w0" {
		order := make([]string, len(cands))
		for i, w := range cands {
			order[i] = w.addr
		}
		t.Fatalf("candidate order %v, want [w1 w0] (degraded last)", order)
	}
}

// TestMergeNowPublishesAverage merges three disjoint-shard models with no
// incumbent: the round must publish, and the adopted fallback must predict
// exactly like disthd.AverageModels over the same shards.
func TestMergeNowPublishesAverage(t *testing.T) {
	f := fixtures(t)
	c, _ := newTestCoordinator(t, map[string]*simWorker{
		"w0": sim(f.shards[0]), "w1": sim(f.shards[1]), "w2": sim(f.shards[2]),
	}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1", "w2"}
	})
	rep, err := c.MergeNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Published || len(rep.Workers) != 3 || len(rep.Skipped) != 0 {
		t.Fatalf("report %+v, want 3 workers merged and published", rep)
	}
	fb := c.Fallback()
	if fb == nil {
		t.Fatal("no fallback adopted after a published merge")
	}
	want, err := disthd.AverageModels(f.shards[0], f.shards[1], f.shards[2])
	if err != nil {
		t.Fatal(err)
	}
	wantCls, err := want.PredictBatch(f.test.X)
	if err != nil {
		t.Fatal(err)
	}
	gotCls, err := fb.PredictBatch(f.test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantCls {
		if gotCls[i] != wantCls[i] {
			t.Fatalf("row %d: merged fallback predicts %d, AverageModels predicts %d", i, gotCls[i], wantCls[i])
		}
	}
	if snap := c.Stats(); snap.MergePublished != 1 || snap.LastMergeUnix == 0 {
		t.Fatalf("merge counters %+v, want one published round", snap)
	}
}

// TestMergeNowGateRejects gives the gate an impossible margin: the merged
// candidate must be evaluated and rejected, and the incumbent fallback
// must keep serving untouched.
func TestMergeNowGateRejects(t *testing.T) {
	f := fixtures(t)
	incumbent := f.shards[0]
	c, _ := newTestCoordinator(t, map[string]*simWorker{
		"w0": sim(f.shards[0]), "w1": sim(f.shards[1]),
	}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1"}
		cfg.Fallback = incumbent
		cfg.Merge = MergeConfig{HoldX: f.test.X, HoldY: f.test.Y, GateMargin: 1.1}
	})
	rep, err := c.MergeNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published {
		t.Fatal("gate with margin 1.1 published a candidate")
	}
	if rep.Verdict == nil || rep.Verdict.Publish {
		t.Fatalf("verdict %+v, want an explicit rejection", rep.Verdict)
	}
	if c.Fallback() != incumbent {
		t.Fatal("rejected merge replaced the incumbent fallback")
	}
	if snap := c.Stats(); snap.MergeRejected != 1 || snap.MergePublished != 0 {
		t.Fatalf("counters rejected=%d published=%d, want 1/0", snap.MergeRejected, snap.MergePublished)
	}
}

// TestMergeNowSkipsIncompatibleShard puts one worker on a different
// encoder seed: the round must skip it with the merge-contract violation
// and still merge (and publish) the compatible shards.
func TestMergeNowSkipsIncompatibleShard(t *testing.T) {
	f := fixtures(t)
	c, _ := newTestCoordinator(t, map[string]*simWorker{
		"w0": sim(f.shards[0]), "w1": sim(f.shards[1]), "w2": sim(f.alien),
	}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1", "w2"}
		cfg.Fallback = f.shards[0]
	})
	rep, err := c.MergeNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("merged %v, want the two compatible shards", rep.Workers)
	}
	if len(rep.Skipped) != 1 || !strings.Contains(rep.Skipped[0], "w2") {
		t.Fatalf("skipped %v, want w2 with a merge-contract violation", rep.Skipped)
	}
	if !rep.Published {
		t.Fatal("compatible shards should still have merged and published (empty holdout)")
	}
}

// TestMergeNowRepublishes closes the federated loop: a published merge
// with Republish must be pushed back to every available worker, and the
// workers must then serve it.
func TestMergeNowRepublishes(t *testing.T) {
	f := fixtures(t)
	w0, w1 := sim(f.shards[0]), sim(f.shards[1])
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0, "w1": w1}, func(cfg *Config) {
		cfg.Workers = []string{"w0", "w1"}
		cfg.Merge = MergeConfig{Republish: true}
	})
	rep, err := c.MergeNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Published || rep.Republished != 2 {
		t.Fatalf("report %+v, want a publish pushed to both workers", rep)
	}
	merged := c.Fallback()
	for name, w := range map[string]*simWorker{"w0": w0, "w1": w1} {
		w.mu.Lock()
		m, swaps := w.model, w.swaps
		w.mu.Unlock()
		if m != merged || swaps != 1 {
			t.Fatalf("%s: model replaced=%v swaps=%d, want the merged model after one swap", name, m == merged, swaps)
		}
	}
}

// TestMergeNowErrorsWhenNothingFetches pins the all-shards-unreachable
// case: the round errors instead of publishing garbage.
func TestMergeNowErrorsWhenNothingFetches(t *testing.T) {
	f := fixtures(t)
	w0 := sim(f.shards[0])
	w0.dead = true
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": w0}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
	})
	if _, err := c.MergeNow(context.Background()); err == nil {
		t.Fatal("expected an error when no shard delivers a model")
	}
	if snap := c.Stats(); snap.MergeErrors != 1 {
		t.Fatalf("merge errors %d, want 1", snap.MergeErrors)
	}
}

// TestClusterClosedAndInputValidation covers the remaining error paths:
// ErrClosed after Close (idempotent), malformed rows, and the empty batch.
func TestClusterClosedAndInputValidation(t *testing.T) {
	f := fixtures(t)
	c, _ := newTestCoordinator(t, map[string]*simWorker{"w0": sim(f.shards[0])}, func(cfg *Config) {
		cfg.Workers = []string{"w0"}
		cfg.Fallback = f.shards[0]
	})
	if _, err := c.PredictBatch(context.Background(), [][]float64{{1, 2}}); err == nil {
		t.Fatal("expected a feature-width error")
	}
	if out, err := c.PredictBatch(context.Background(), nil); err != nil || out != nil {
		t.Fatalf("empty batch: (%v, %v), want (nil, nil)", out, err)
	}
	c.Close()
	c.Close() // idempotent
	if _, err := c.PredictBatch(context.Background(), f.test.X[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if snap := c.Stats(); snap.Dropped != 0 {
		t.Fatalf("input errors counted as drops: %d", snap.Dropped)
	}
}

// TestConfigValidation pins Config.withDefaults rejections and defaults.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected an error for a worker-less config")
	}
	if _, err := New(Config{Workers: []string{"a", "b"}, Quorum: 3, Transport: newFaultTransport(1, nil)}); err == nil {
		t.Fatal("expected an error for quorum > workers")
	}
	cfg, err := Config{Workers: []string{"a", "b", "c"}, Transport: newFaultTransport(1, nil)}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Quorum != 2 {
		t.Fatalf("default quorum %d for 3 workers, want majority 2", cfg.Quorum)
	}
	if cfg.CallTimeout != time.Second {
		t.Fatalf("default call timeout %v, want 1s", cfg.CallTimeout)
	}
}
