package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	disthd "repro"
	"repro/serve"
)

// benchWorker stands up one stock serving worker over real HTTP and
// returns its address.
func benchWorker(b *testing.B, m *disthd.Model) string {
	b.Helper()
	srv, err := serve.New(m, serve.Options{MaxBatch: 32, MaxDelay: time.Millisecond, Replicas: 1})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

// benchRows is the per-request batch both benchmarks send, so the pair
// isolates the coordinator machinery (breaker bookkeeping, chunk split,
// quorum check, stats) from the shared wire cost.
func benchRows(f *clusterFixtures) [][]float64 {
	return f.test.X[:16]
}

// BenchmarkDirectWorker is the baseline: one /predict_batch round trip
// straight to a single worker through the same HTTPTransport the
// coordinator uses.
func BenchmarkDirectWorker(b *testing.B) {
	f := fixtures(b)
	addr := benchWorker(b, f.shards[0])
	tr := NewHTTPTransport()
	rows := benchRows(f)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.PredictBatch(ctx, addr, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectWorkerBinary is BenchmarkDirectWorker on the binary
// frame protocol: the same worker, rows, and transport machinery with
// Wire set to WireBinary. The delta against the JSON row is PR 8's
// end-to-end wire win, loopback TCP and net/http included.
func BenchmarkDirectWorkerBinary(b *testing.B) {
	f := fixtures(b)
	addr := benchWorker(b, f.shards[0])
	tr := NewHTTPTransport()
	tr.Wire = WireBinary
	rows := benchRows(f)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.PredictBatch(ctx, addr, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinator measures the same batch through the full
// coordinator path: health-gated candidate selection, chunk fan-out
// across three live workers, per-chunk breaker claims, and stats
// accounting. The delta against BenchmarkDirectWorker is the price of
// fault tolerance on the happy path.
func BenchmarkCoordinator(b *testing.B) {
	f := fixtures(b)
	addrs := []string{
		benchWorker(b, f.shards[0]),
		benchWorker(b, f.shards[1]),
		benchWorker(b, f.shards[2]),
	}
	c, err := New(Config{
		Workers:     addrs,
		CallTimeout: 2 * time.Second,
		Fallback:    f.shards[0],
		Seed:        11,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	rows := benchRows(f)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PredictBatch(ctx, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinatorBinary is BenchmarkCoordinator with the
// coordinator speaking the binary frame protocol to its three workers —
// the fault-tolerant path's share of the wire win.
func BenchmarkCoordinatorBinary(b *testing.B) {
	f := fixtures(b)
	addrs := []string{
		benchWorker(b, f.shards[0]),
		benchWorker(b, f.shards[1]),
		benchWorker(b, f.shards[2]),
	}
	tr := NewHTTPTransport()
	tr.Wire = WireBinary
	c, err := New(Config{
		Workers:     addrs,
		CallTimeout: 2 * time.Second,
		Fallback:    f.shards[0],
		Transport:   tr,
		Seed:        11,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	rows := benchRows(f)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PredictBatch(ctx, rows); err != nil {
			b.Fatal(err)
		}
	}
}
