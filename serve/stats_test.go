package serve

import (
	"testing"
	"time"
)

func TestHistQuantileBounds(t *testing.T) {
	var h hist
	// 90 fast requests at ~1ms, 10 slow ones at ~100ms.
	for i := 0; i < 90; i++ {
		h.observe(uint64(time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		h.observe(uint64(100 * time.Millisecond))
	}
	// Power-of-two buckets: the quantile is an upper bound within 2× of the
	// true value.
	p50 := time.Duration(h.quantile(0.50))
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50=%v want within (1ms, 2ms]", p50)
	}
	p99 := time.Duration(h.quantile(0.99))
	if p99 < 100*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99=%v want within (100ms, 200ms]", p99)
	}
	// p90 sits right at the fast/slow boundary; either side's bucket bound
	// is acceptable, anything else is not.
	p90 := time.Duration(h.quantile(0.90))
	if p90 < time.Millisecond || p90 > 200*time.Millisecond {
		t.Fatalf("p90=%v escaped the observed range", p90)
	}
	wantMean := (90*float64(time.Millisecond) + 10*float64(100*time.Millisecond)) / 100
	if got := h.mean(); got != wantMean {
		t.Fatalf("mean=%v want %v", got, wantMean)
	}
}

func TestHistEmptyAndExtremes(t *testing.T) {
	var h hist
	if h.quantile(0.99) != 0 || h.mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.observe(0)
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("zero observation lands in bucket 0, got %d", got)
	}
	// An absurd value must clamp into the last bucket, not index out of
	// range.
	var h2 hist
	h2.observe(1 << 63)
	if got := h2.quantile(0.5); got != 1<<(histBuckets-1) {
		t.Fatalf("overflow observation got %d", got)
	}
}

// TestStatsLatencyHistogram drives latencies through the full Stats path
// the way a Batcher does, and checks the /stats quantiles land in the
// right buckets.
func TestStatsLatencyHistogram(t *testing.T) {
	s := newStats()
	for i := 0; i < 99; i++ {
		s.observeLatency(500*time.Microsecond, false)
	}
	s.observeLatency(80*time.Millisecond, true)
	s.observeBatch(10)
	s.observeBatch(30)

	snap := s.Snapshot()
	if snap.Requests != 100 || snap.Errors != 1 || snap.Batches != 2 {
		t.Fatalf("counters wrong: %+v", snap)
	}
	if snap.MeanBatchRows != 20 {
		t.Fatalf("mean occupancy %v want 20", snap.MeanBatchRows)
	}
	if snap.LatencyMsP50 < 0.5 || snap.LatencyMsP50 > 1.1 {
		t.Fatalf("p50=%vms want ~0.5–1ms bucket", snap.LatencyMsP50)
	}
	if snap.LatencyMsP99 < 0.5 || snap.LatencyMsP99 > 1.1 {
		t.Fatalf("p99=%vms: 99th of 100 observations is still fast", snap.LatencyMsP99)
	}
	if snap.UptimeSeconds < 0 {
		t.Fatalf("uptime went backwards: %v", snap.UptimeSeconds)
	}
	// Negative durations (clock steps) must clamp, not corrupt the sum.
	s.observeLatency(-time.Second, false)
	if s.Snapshot().Requests != 101 {
		t.Fatal("clamped observation lost")
	}
}
