// Package serve is the online inference subsystem: it turns a trained
// disthd.Model into a concurrent service that gives individual Predict
// callers batched-GEMM throughput.
//
// The core is the Batcher, which coalesces concurrent single-sample
// requests into micro-batches — size-bounded by Options.MaxBatch,
// latency-bounded by Options.MaxDelay (a forming batch lingers at most
// that long waiting to reach Options.MinFill rows, then greedily drains
// whatever is queued) — and runs each flush through the zero-allocation
// EncodeBatchInto → PredictBatchInto kernel path on a per-replica scratch
// lease (disthd.Replica over mat.NewLease). N replica workers pull from one
// queue; nothing on the flush path takes a lock or touches a shared pool.
//
// Around the Batcher sit the Swapper, which hot-swaps the served model
// behind an atomic pointer so online retraining can publish new weights
// mid-traffic without dropping a request; the Learner, which closes the
// DistHD loop online — labeled feedback in, drift detection with
// per-class attribution over windowed accuracy, warm background
// retraining on the feedback window with a severity-scaled budget, and a
// champion/challenger gate (disthd.Gate) that publishes a successor
// through the Swapper only after it beats the serving incumbent on a
// stratified holdout — without ever touching the flush path; and the
// Server, which exposes the whole thing over HTTP/JSON (/predict,
// /predict_batch, /healthz, /stats, /swap, /learn, /retrain?force=1).
// cmd/disthd-serve is the runnable binary; `hdbench -loadgen` measures the
// throughput-vs-concurrency curve and `hdbench -driftgen` the
// frozen-vs-ungated-vs-gated accuracy under a drifting stream, in-process
// or against a live server (-http).
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	disthd "repro"
)

// ErrClosed is returned by Predict and PredictBatch after Close.
var ErrClosed = errors.New("serve: batcher is closed")

// Options configures a Batcher. The zero value picks the defaults
// documented on each field.
type Options struct {
	// MaxBatch flushes a micro-batch when it reaches this many rows.
	// Default 64 — large enough that the blocked GEMM kernels dominate,
	// small enough to bound queueing delay.
	MaxBatch int
	// MaxDelay bounds how long a forming micro-batch may wait for MinFill
	// rows after its first row arrived — the worst-case latency a request
	// can pay for batching. Default 2ms.
	MaxDelay time.Duration
	// MinFill is the batch size worth waiting for: the worker blocks up to
	// MaxDelay while the batch is below MinFill, then flushes after
	// greedily draining whatever else is already queued. Default 1 — a
	// lone request on an idle server never pays the delay, while
	// concurrent load still coalesces through the greedy drain. Raise it
	// to trade tail latency for guaranteed occupancy. Clamped to MaxBatch.
	MinFill int
	// Replicas is the number of worker goroutines, each with its own
	// scratch lease. Default GOMAXPROCS.
	Replicas int
	// QueueDepth bounds the request queue; submitters block (applying
	// backpressure) when it is full. Default 2·Replicas·MaxBatch.
	QueueDepth int
}

// withDefaults fills unset fields and validates the rest.
func (o Options) withDefaults() (Options, error) {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.Replicas == 0 {
		o.Replicas = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 2 * o.Replicas * o.MaxBatch
	}
	if o.MinFill == 0 {
		o.MinFill = 1
	}
	if o.MinFill > o.MaxBatch {
		o.MinFill = o.MaxBatch
	}
	if o.MaxBatch < 1 || o.MaxDelay < 0 || o.Replicas < 1 || o.QueueDepth < 1 || o.MinFill < 1 {
		return o, fmt.Errorf("serve: invalid options %+v", o)
	}
	return o, nil
}

// request is one coalescable prediction in flight.
type request struct {
	x     []float64
	start time.Time
	out   chan response
}

// response answers one request.
type response struct {
	class int
	err   error
}

// respPool recycles the single-slot response channels so the steady-state
// submit path does not allocate one per request.
var respPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// Batcher coalesces concurrent single-sample Predict calls into
// micro-batches served by replica workers. Create one with NewBatcher,
// serve traffic from any number of goroutines, and Close it to drain.
type Batcher struct {
	opts     Options
	sw       *Swapper
	stats    *Stats
	features int
	queue    chan request
	repPool  sync.Pool // *disthd.Replica for the direct batch path

	mu     sync.RWMutex // guards closed + the right to send on queue
	closed bool
	wg     sync.WaitGroup
}

// NewBatcher starts opts.Replicas workers serving m. The returned Batcher
// owns a Swapper; hot-swap models through Swap / SwapReader (or the
// Swapper itself, via Swapper()).
func NewBatcher(m *disthd.Model, opts Options) (*Batcher, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	sw, err := NewSwapper(m)
	if err != nil {
		return nil, err
	}
	b := &Batcher{
		opts:     o,
		sw:       sw,
		stats:    newStats(),
		features: m.Features(),
		queue:    make(chan request, o.QueueDepth),
	}
	b.repPool.New = func() any {
		// Built from the model serving at Get time, not the construction
		// argument, so the pool never pins a swapped-out model. Replicas
		// themselves are shape-bound, not model-bound, and every swap
		// preserves the shape.
		r, err := b.sw.Current().NewReplica(o.MaxBatch)
		if err != nil {
			panic(err) // MaxBatch was validated; unreachable
		}
		return r
	}
	for i := 0; i < o.Replicas; i++ {
		rep, err := m.NewReplica(o.MaxBatch)
		if err != nil {
			return nil, err
		}
		b.wg.Add(1)
		go b.worker(rep)
	}
	return b, nil
}

// Swapper returns the Batcher's model publication point.
func (b *Batcher) Swapper() *Swapper { return b.sw }

// Model returns the model serving right now.
func (b *Batcher) Model() *disthd.Model { return b.sw.Current() }

// Swap hot-swaps the served model; see Swapper.Swap for the shape
// contract.
func (b *Batcher) Swap(next *disthd.Model) error { return b.sw.Swap(next) }

// Stats returns a point-in-time snapshot of the serving counters.
func (b *Batcher) Stats() Snapshot {
	snap := b.stats.Snapshot()
	snap.Swaps = b.sw.Swaps()
	return snap
}

// Predict classifies one feature vector, riding whatever micro-batch is
// forming. It blocks until the answer is computed — at most roughly
// MaxDelay plus one batch's compute time — and is safe to call from any
// number of goroutines.
func (b *Batcher) Predict(x []float64) (int, error) {
	if len(x) != b.features {
		b.stats.errors.Add(1)
		return 0, fmt.Errorf("serve: input has %d features, model expects %d", len(x), b.features)
	}
	rc := respPool.Get().(chan response)
	req := request{x: x, start: time.Now(), out: rc}
	// The RLock pairs with Close's Lock: it makes "closed" and the send
	// atomic, so nobody sends on a closed queue. In the uncontended case
	// this is one atomic add — the flush path itself takes no lock.
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		respPool.Put(rc)
		return 0, ErrClosed
	}
	b.queue <- req
	b.mu.RUnlock()
	r := <-rc
	respPool.Put(rc)
	b.stats.observeLatency(time.Since(req.start), r.err != nil)
	return r.class, r.err
}

// PredictBatch classifies many rows at once through a pooled replica,
// bypassing coalescing — the caller already has a batch, so there is
// nothing to coalesce. Rows beyond MaxBatch are chunked transparently.
func (b *Batcher) PredictBatch(rows [][]float64) ([]int, error) {
	b.mu.RLock()
	closed := b.closed
	b.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]int, len(rows))
	rep := b.repPool.Get().(*disthd.Replica)
	_, err := rep.PredictBatch(b.sw.Current(), rows, out)
	b.repPool.Put(rep)
	if err != nil {
		b.stats.errors.Add(1)
		return nil, err
	}
	b.stats.batchReqs.Add(uint64(len(rows)))
	return out, nil
}

// PredictStream classifies n rows that the caller writes directly into a
// pooled replica's leased input scratch, skipping the intermediate
// [][]float64 PredictBatch needs — the decode-into-lease fast path the
// binary wire protocol rides. fill is called once per chunk of up to
// MaxBatch rows with the scratch slice to populate (row-major,
// chunkRows×features); out must hold at least n slots. Steady-state the
// whole call allocates nothing beyond what fill does.
func (b *Batcher) PredictStream(n int, out []int, fill func(dst []float64) error) error {
	b.mu.RLock()
	closed := b.closed
	b.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if n == 0 {
		return nil
	}
	if len(out) < n {
		b.stats.errors.Add(1)
		return fmt.Errorf("serve: out has %d slots for %d rows", len(out), n)
	}
	rep := b.repPool.Get().(*disthd.Replica)
	defer b.repPool.Put(rep)
	maxBatch := rep.MaxBatch()
	for done := 0; done < n; {
		c := n - done
		if c > maxBatch {
			c = maxBatch
		}
		dst, err := rep.InputScratch(c)
		if err == nil {
			err = fill(dst)
		}
		if err == nil {
			// The model pointer is loaded once per chunk, like the worker
			// flush loop, so a concurrent Swap lands cleanly between chunks.
			err = rep.PredictScratch(b.sw.Current(), c, out[done:done+c])
		}
		if err != nil {
			b.stats.errors.Add(1)
			return err
		}
		done += c
	}
	b.stats.batchReqs.Add(uint64(n))
	return nil
}

// Close stops accepting new requests, waits for every accepted request to
// be answered, and stops the workers. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.queue)
	b.mu.Unlock()
	b.wg.Wait()
}

// worker is one replica loop: block for a first row, linger up to
// MaxDelay while the batch is below MinFill, greedily drain whatever else
// is queued, then flush through the replica's leased scratch. The model
// pointer is loaded exactly once per flush, so a concurrent Swap lands
// cleanly between batches.
func (b *Batcher) worker(rep *disthd.Replica) {
	defer b.wg.Done()
	maxBatch, minFill := b.opts.MaxBatch, b.opts.MinFill
	batch := make([]request, 0, maxBatch)
	rows := make([][]float64, 0, maxBatch)
	out := make([]int, maxBatch)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		open := true
		// Linger phase: block for more rows, bounded by the deadline,
		// while the batch is not yet worth flushing.
		if minFill > 1 {
			timer.Reset(b.opts.MaxDelay)
			fired := false
		linger:
			for len(batch) < minFill {
				select {
				case req, ok := <-b.queue:
					if !ok {
						open = false
						break linger
					}
					batch = append(batch, req)
				case <-timer.C:
					fired = true
					break linger
				}
			}
			if !fired {
				timer.Stop()
			}
		}
		// Greedy drain: take everything already queued, without waiting.
	drain:
		for open && len(batch) < maxBatch {
			select {
			case req, ok := <-b.queue:
				if !ok {
					open = false
				} else {
					batch = append(batch, req)
				}
			default:
				break drain
			}
		}
		b.flush(rep, batch, rows[:0], out)
		if !open {
			return
		}
	}
}

// flush runs one micro-batch and answers every waiter.
func (b *Batcher) flush(rep *disthd.Replica, batch []request, rows [][]float64, out []int) {
	for _, req := range batch {
		rows = append(rows, req.x)
	}
	m := b.sw.Current()
	_, err := rep.PredictBatch(m, rows, out[:len(batch)])
	for i, req := range batch {
		if err != nil {
			req.out <- response{err: err}
		} else {
			req.out <- response{class: out[i]}
		}
	}
	b.stats.observeBatch(len(batch))
}
