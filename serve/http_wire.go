package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/serve/wire"
)

// Binary wire-mode handlers: /predict, /predict_batch, and /learn accept
// Content-Type application/x-disthd-frame and mirror it in the response.
// The whole path is pooled — frame decoder, class output, response frame,
// single-row scratch — and batch rows are decoded straight into a pooled
// replica's leased input scratch through Batcher.PredictStream, so the
// steady state stays within a handful of allocations per request. Errors
// are always answered as JSON with a non-2xx status, whatever the request
// format; a binary client keys off the status code alone. The decoder's
// own payload bound (wire.DefaultMaxPayload, deliberately equal to
// maxJSONBody) replaces the MaxBytesReader the JSON path wraps around the
// body: the decoder never reads more than one bounded frame.

// isWire reports whether the request negotiates the binary frame protocol.
func isWire(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
}

// Wire-path pools. Indirect slice pointers keep Put from allocating an
// interface box per cycle.
var (
	decPool      = sync.Pool{New: func() any { return wire.NewDecoder(nil) }}
	outPool      = sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }}
	frameBufPool = sync.Pool{New: func() any { s := make([]byte, 0, 512); return &s }}
	rowPool      = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}
)

// nextMatrix reads and validates a matrix frame header, returning its
// dimensions.
func nextMatrix(d *wire.Decoder) (rows, cols int, err error) {
	typ, err := d.Next()
	if err != nil {
		return 0, 0, fmt.Errorf("serve: read frame: %w", err)
	}
	if typ != wire.TypeMatrixF64 && typ != wire.TypeMatrixF32 {
		return 0, 0, fmt.Errorf("serve: want a matrix frame, got %v", typ)
	}
	return d.MatrixDims()
}

// writeFrame answers with one binary frame.
func writeFrame(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	_, _ = w.Write(frame)
}

// handlePredictWire serves one coalesced prediction from a 1-row matrix
// frame, answering with a 1-class classes frame.
func (s *Server) handlePredictWire(w http.ResponseWriter, r *http.Request) {
	d := decPool.Get().(*wire.Decoder)
	d.Reset(r.Body)
	defer decPool.Put(d)
	rows, cols, err := nextMatrix(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rows != 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: /predict wants exactly one row, got %d", rows))
		return
	}
	rp := rowPool.Get().(*[]float64)
	defer rowPool.Put(rp)
	if cap(*rp) < cols {
		*rp = make([]float64, cols)
	}
	row := (*rp)[:cols]
	if err := d.Floats(row); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	class, err := s.b.Predict(row)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	buf := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(buf)
	*buf = wire.AppendClasses((*buf)[:0], []int{class})
	writeFrame(w, *buf)
}

// handlePredictBatchWire serves a matrix frame through the
// decode-into-lease fast path: rows stream from the frame straight into a
// pooled replica's leased input scratch, chunk by chunk, with no
// intermediate [][]float64.
func (s *Server) handlePredictBatchWire(w http.ResponseWriter, r *http.Request) {
	d := decPool.Get().(*wire.Decoder)
	d.Reset(r.Body)
	defer decPool.Put(d)
	rows, cols, err := nextMatrix(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rows > 0 && cols != s.b.features {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: input rows have %d features, model expects %d", cols, s.b.features))
		return
	}
	op := outPool.Get().(*[]int)
	defer outPool.Put(op)
	if cap(*op) < rows {
		*op = make([]int, rows)
	}
	classes := (*op)[:rows]
	if err := s.b.PredictStream(rows, classes, d.Floats); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	buf := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(buf)
	*buf = wire.AppendClasses((*buf)[:0], classes)
	writeFrame(w, *buf)
}

// handleLearnWire ingests one labeled feedback sample from a learn frame,
// answering with a feed-ack frame.
func (s *Server) handleLearnWire(w http.ResponseWriter, r *http.Request) {
	d := decPool.Get().(*wire.Decoder)
	d.Reset(r.Body)
	defer decPool.Put(d)
	typ, err := d.Next()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: read frame: %w", err))
		return
	}
	if typ != wire.TypeLearn {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: want a learn frame, got %v", typ))
		return
	}
	label, cols, err := d.LearnHeader()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rp := rowPool.Get().(*[]float64)
	defer rowPool.Put(rp)
	if cap(*rp) < cols {
		*rp = make([]float64, cols)
	}
	row := (*rp)[:cols]
	if err := d.Floats(row); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.learner.Feed(row, label)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	buf := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(buf)
	*buf = wire.AppendFeedAck((*buf)[:0], wire.FeedAck{
		Correct:        res.Correct,
		Drift:          res.Drift,
		RetrainStarted: res.RetrainStarted,
		WindowAccuracy: res.WindowAccuracy,
	})
	writeFrame(w, *buf)
}
