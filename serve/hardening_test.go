package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	disthd "repro"
)

// TestModelExportRoundTrip pins the GET /model contract: the exported
// snapshot is the same versioned wire format /swap accepts, and a model
// that travels export → import predicts bitwise-identically to the
// original.
func TestModelExportRoundTrip(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)

	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/model status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("/model content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cl := resp.Header.Get("Content-Length"); cl == "" {
		t.Fatal("/model response carries no Content-Length")
	}

	// Import the exported bytes directly: predictions must match bit for
	// bit on the whole test split.
	imported, err := disthd.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("exported snapshot does not Load: %v", err)
	}
	want, err := s.a.PredictBatch(s.test.X)
	if err != nil {
		t.Fatal(err)
	}
	got, err := imported.PredictBatch(s.test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: imported model predicts %d, original %d", i, got[i], want[i])
		}
	}

	// And the snapshot round-trips through /swap on a server serving a
	// different model: afterwards that server must answer like the export.
	_, ts2 := newTestServer(t, s.b)
	swapResp, err := http.Post(ts2.URL+"/swap", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	swapResp.Body.Close()
	if swapResp.StatusCode != http.StatusOK {
		t.Fatalf("/swap of exported snapshot: status %d", swapResp.StatusCode)
	}
	var out struct {
		Classes []int `json:"classes"`
	}
	if code := postJSON(t, ts2.URL+"/predict_batch", predictBatchRequest{X: s.test.X[:8]}, &out); code != http.StatusOK {
		t.Fatalf("/predict_batch after swap: status %d", code)
	}
	for i := range out.Classes {
		if out.Classes[i] != want[i] {
			t.Fatalf("row %d after export→swap: class %d, want %d", i, out.Classes[i], want[i])
		}
	}
}

// TestRequestBodyLimits pins the hardening bound: a JSON body over
// maxJSONBody answers 413, not a hung or misparsed request. The payload is
// shaped so only the limit can reject it (leading whitespace is valid
// JSON framing).
func TestRequestBodyLimits(t *testing.T) {
	s := fixtures(t)
	_, ts := newTestServer(t, s.a)

	huge := append(bytes.Repeat([]byte{' '}, maxJSONBody+1), []byte(`{"x":[]}`)...)
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /predict body: status %d, want 413", resp.StatusCode)
	}

	// A small malformed body is still a plain 400.
	resp, err = http.Post(ts.URL+"/predict", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestServerTimeoutsConfigured pins that the hardening timeouts are
// actually installed on the underlying http.Server.
func TestServerTimeoutsConfigured(t *testing.T) {
	s := fixtures(t)
	srv, _ := newTestServer(t, s.a)
	hs := srv.hs
	if hs.ReadHeaderTimeout != readHeaderTimeout || hs.ReadTimeout != readTimeout || hs.IdleTimeout != idleTimeout {
		t.Fatalf("timeouts %v/%v/%v, want %v/%v/%v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout,
			readHeaderTimeout, readTimeout, idleTimeout)
	}
}

// getHealthz fetches /healthz and decodes the status fields.
func getHealthz(t *testing.T, url string) (int, string, []string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, hz.Status, hz.Reasons
}

// TestHealthzDegradedOnRejectionBackoff drives the learner into the
// post-rejection backoff state and checks that /healthz tells the truth —
// 200 + "degraded" with a reason by default, 503 under SetStrictHealth —
// and that /stats carries the same verdict.
func TestHealthzDegradedOnRejectionBackoff(t *testing.T) {
	srv, url := newLearnerServer(t, LearnerOptions{RecentWindow: 16})
	lr := srv.Learner()

	if code, status, _ := getHealthz(t, url); code != http.StatusOK || status != "ok" {
		t.Fatalf("fresh learner: %d %q, want 200 ok", code, status)
	}

	// A challenger was just rejected: rejectAt = feedback+1 is exactly what
	// runRetrain records, and no fresh feedback has arrived since.
	lr.rejectAt.Store(lr.feedback.Load() + 1)
	code, status, reasons := getHealthz(t, url)
	if code != http.StatusOK || status != "degraded" {
		t.Fatalf("in backoff: %d %q, want 200 degraded", code, status)
	}
	if len(reasons) == 0 || !strings.Contains(reasons[0], "backoff") {
		t.Fatalf("degraded reasons %v, want the backoff named", reasons)
	}

	srv.SetStrictHealth(true)
	if code, status, _ := getHealthz(t, url); code != http.StatusServiceUnavailable || status != "degraded" {
		t.Fatalf("strict mode: %d %q, want 503 degraded", code, status)
	}
	srv.SetStrictHealth(false)

	// The same verdict shows in /stats.
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Learner *LearnerSnapshot `json:"learner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Learner == nil || !snap.Learner.Degraded || !snap.Learner.RejectionBackoff {
		t.Fatalf("stats learner %+v, want degraded via rejection backoff", snap.Learner)
	}
}

// TestLearnerHealthWedgedRetrain pins the stall detector: a retrain
// running past StallDeadline flags the learner wedged, and Health never
// blocks on the learner mutex to say so.
func TestLearnerHealthWedgedRetrain(t *testing.T) {
	srv, url := newLearnerServer(t, LearnerOptions{StallDeadline: 50 * time.Millisecond})
	lr := srv.Learner()

	// Simulate a wedged in-flight retrain: slot claimed, started in the
	// past. (A real wedge needs a pathological dataset; the detector only
	// reads these two fields.)
	lr.retraining.Store(true)
	lr.retrainStart.Store(time.Now().Add(-time.Second).UnixNano())
	defer func() {
		lr.retraining.Store(false)
		lr.retrainStart.Store(0)
	}()

	// Health must see the wedge even while the learner mutex is held (a
	// wedged retrain can be stuck holding learner state).
	lr.mu.Lock()
	h := lr.Health()
	lr.mu.Unlock()
	if !h.Degraded || !h.RetrainWedged {
		t.Fatalf("health %+v, want a wedged-retrain degradation", h)
	}
	if len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "wedged") {
		t.Fatalf("reasons %v, want the wedge named", h.Reasons)
	}

	if _, status, _ := getHealthz(t, url); status != "degraded" {
		t.Fatalf("/healthz status %q with a wedged retrain, want degraded", status)
	}

	// A fresh retrain inside its deadline is NOT wedged.
	lr.retrainStart.Store(time.Now().UnixNano())
	if h := lr.Health(); h.RetrainWedged {
		t.Fatal("a retrain inside its stall deadline reported as wedged")
	}
}
