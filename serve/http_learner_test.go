package serve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// decodeJSON decodes a response body.
func decodeJSON(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

// newLearnerServer spins a Server with a Learner attached.
func newLearnerServer(t *testing.T, opts LearnerOptions) (*Server, string) {
	t.Helper()
	st := fixtures(t)
	srv, ts := newTestServer(t, st.a)
	l, err := NewLearner(srv.Batcher().Swapper(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachLearner(l)
	return srv, ts.URL
}

func TestHTTPLearnWithoutLearner(t *testing.T) {
	st := fixtures(t)
	_, ts := newTestServer(t, st.a)
	if code := postJSON(t, ts.URL+"/learn", map[string]any{"x": st.test.X[0], "label": 0}, nil); code != http.StatusNotFound {
		t.Fatalf("/learn without learner returned %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/retrain", struct{}{}, nil); code != http.StatusNotFound {
		t.Fatalf("/retrain without learner returned %d, want 404", code)
	}
}

func TestHTTPLearnFlow(t *testing.T) {
	st := fixtures(t)
	srv, url := newLearnerServer(t, LearnerOptions{RecentWindow: 8, MinRetrain: 8, Iterations: 1})

	var res FeedResult
	code := postJSON(t, url+"/learn", map[string]any{"x": st.test.X[0], "label": st.test.Y[0]}, &res)
	if code != http.StatusOK {
		t.Fatalf("/learn returned %d", code)
	}
	if res.WindowAccuracy != 0 && res.WindowAccuracy != 1 {
		t.Fatalf("first feedback window accuracy %v", res.WindowAccuracy)
	}

	if code := postJSON(t, url+"/learn", map[string]any{"x": st.test.X[0][:2], "label": 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed /learn returned %d, want 400", code)
	}

	// Below MinRetrain: /retrain must refuse.
	if code := postJSON(t, url+"/retrain", struct{}{}, nil); code != http.StatusConflict {
		t.Fatalf("/retrain below MinRetrain returned %d, want 409", code)
	}
	for i := 1; i < 16; i++ {
		if code := postJSON(t, url+"/learn", map[string]any{"x": st.test.X[i], "label": st.test.Y[i]}, nil); code != http.StatusOK {
			t.Fatalf("/learn %d returned %d", i, code)
		}
	}
	var started map[string]bool
	if code := postJSON(t, url+"/retrain", struct{}{}, &started); code != http.StatusAccepted {
		t.Fatalf("/retrain returned %d, want 202", code)
	}
	if !started["started"] {
		t.Fatal("retrain not reported started")
	}
	srv.Learner().Wait()

	// Learner gauges must be visible in /stats.
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := decodeJSON(resp, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Learner == nil {
		t.Fatal("/stats missing learner gauges with a learner attached")
	}
	if snap.Learner.Feedback != 16 {
		t.Fatalf("learner feedback gauge %d, want 16", snap.Learner.Feedback)
	}
	if snap.Learner.Retrains != 1 {
		t.Fatalf("learner retrains gauge %d, want 1", snap.Learner.Retrains)
	}
	// A gated accept swaps twice: the judged challenger, then the
	// full-window refit.
	if snap.Swaps != 2 {
		t.Fatalf("swap counter %d after gated retrain publish, want 2", snap.Swaps)
	}

	// A /retrain racing an in-flight one answers 409, not a second run.
	if code := postJSON(t, url+"/retrain", struct{}{}, nil); code != http.StatusAccepted && code != http.StatusConflict {
		t.Fatalf("second /retrain returned %d", code)
	}
	srv.Learner().Wait()
	deadline := time.Now().Add(time.Second)
	for srv.Learner().Retraining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
