package serve

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	disthd "repro"
)

// ErrShapeMismatch marks a swap rejected because the incoming model's
// (features, dim, classes) differ from the serving model's. Check it with
// errors.Is; the wrapped message names both shapes.
var ErrShapeMismatch = errors.New("serve: swap shape mismatch")

// Swapper publishes the model a Batcher serves and lets an operator
// replace it atomically while traffic is in flight — the primitive that
// puts online retraining behind live serving: train a successor offline,
// Swap it in, and every micro-batch flushed after the swap classifies with
// the new weights while batches already running finish on the old ones.
// No request is ever dropped or served by a half-installed model, because
// each batch loads the pointer exactly once.
//
// Shape compatibility is enforced at swap time: the incoming model must
// match the current one's feature width, hypervector dimensionality and
// class count. That invariant is what lets serving replicas keep their
// leased scratch (disthd.Replica) across swaps instead of reallocating
// mid-traffic.
type Swapper struct {
	cur   atomic.Pointer[disthd.Model]
	swaps atomic.Uint64
}

// NewSwapper starts publishing m, which must be non-nil.
func NewSwapper(m *disthd.Model) (*Swapper, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: NewSwapper needs a model")
	}
	s := &Swapper{}
	s.cur.Store(m)
	return s, nil
}

// Current returns the model serving right now. The returned pointer stays
// valid (and immutable from the Swapper's side) after later swaps; callers
// running a batch should load it once and use it for the whole batch.
func (s *Swapper) Current() *disthd.Model { return s.cur.Load() }

// Swap atomically replaces the served model with next. It fails without
// side effects when next is nil or shaped differently from the current
// model.
func (s *Swapper) Swap(next *disthd.Model) error {
	if next == nil {
		return fmt.Errorf("serve: cannot swap in a nil model")
	}
	cur := s.cur.Load()
	if next.Features() != cur.Features() || next.Dim() != cur.Dim() || next.Classes() != cur.Classes() {
		return fmt.Errorf("%w: serving %d features/%d dims/%d classes, got %d/%d/%d",
			ErrShapeMismatch,
			cur.Features(), cur.Dim(), cur.Classes(), next.Features(), next.Dim(), next.Classes())
	}
	s.cur.Store(next)
	s.swaps.Add(1)
	return nil
}

// SwapIfCurrent atomically replaces the served model with next only if old
// is still the model serving — the conditional form of Swap, for
// publishing a background upgrade without clobbering a model someone else
// published concurrently (serve.Learner's full-window refit uses it so an
// operator /swap that lands mid-refit always wins). It returns whether the
// swap happened; a lost race is not an error.
func (s *Swapper) SwapIfCurrent(old, next *disthd.Model) (bool, error) {
	if next == nil {
		return false, fmt.Errorf("serve: cannot swap in a nil model")
	}
	cur := s.cur.Load()
	if next.Features() != cur.Features() || next.Dim() != cur.Dim() || next.Classes() != cur.Classes() {
		return false, fmt.Errorf("%w: serving %d features/%d dims/%d classes, got %d/%d/%d",
			ErrShapeMismatch,
			cur.Features(), cur.Dim(), cur.Classes(), next.Features(), next.Dim(), next.Classes())
	}
	if !s.cur.CompareAndSwap(old, next) {
		return false, nil
	}
	s.swaps.Add(1)
	return true, nil
}

// SwapReader reads a disthd.Model snapshot (the Model.Save format) from r
// and swaps it in. This is the transport behind the HTTP /swap endpoint.
func (s *Swapper) SwapReader(r io.Reader) error {
	m, err := disthd.Load(r)
	if err != nil {
		return fmt.Errorf("serve: swap payload: %w", err)
	}
	return s.Swap(m)
}

// Swaps returns how many swaps have completed.
func (s *Swapper) Swaps() uint64 { return s.swaps.Load() }
