package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// covers durations in (2^(i-1), 2^i] nanoseconds, so 48 buckets span from
// 1 ns to ~78 hours — every latency a serving process can observe.
const histBuckets = 48

// hist is a lock-free power-of-two histogram. Recording is one atomic
// increment; quantiles are read by summing the buckets, so snapshots taken
// under load are approximate in the usual monotonic-counter way.
type hist struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

// observe records one value (nanoseconds for latencies, rows for batch
// occupancy).
func (h *hist) observe(v uint64) {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// quantile returns an upper bound for the q-quantile (0 < q <= 1): the top
// of the power-of-two bucket the quantile lands in, so the estimate is
// within 2× of the true value. Returns 0 when nothing was recorded.
func (h *hist) quantile(q float64) uint64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			return 1 << i
		}
	}
	return 1 << (histBuckets - 1)
}

// mean returns the arithmetic mean of recorded values, 0 when empty.
func (h *hist) mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Stats aggregates the serving counters every Batcher maintains. All
// fields are updated with atomic operations on the hot path; Snapshot
// reads them without stopping traffic.
type Stats struct {
	start     time.Time
	requests  atomic.Uint64 // single predictions answered (ok or error)
	batchReqs atomic.Uint64 // rows answered through the direct batch path
	errors    atomic.Uint64
	latency   hist // coalesced single-prediction latency, ns
	occupancy hist // rows per flushed micro-batch
}

// newStats returns a zeroed Stats anchored at now.
func newStats() *Stats {
	return &Stats{start: time.Now()}
}

// observeLatency records one completed coalesced prediction.
func (s *Stats) observeLatency(d time.Duration, failed bool) {
	s.requests.Add(1)
	if failed {
		s.errors.Add(1)
	}
	if d < 0 {
		d = 0
	}
	s.latency.observe(uint64(d))
}

// observeBatch records one flushed micro-batch of n rows.
func (s *Stats) observeBatch(n int) {
	s.occupancy.observe(uint64(n))
}

// ClassAccuracy is the JSON shape of one class's drift attribution row
// (disthd.ClassDrift with NaNs flattened to 0 for the wire): how the served
// model's accuracy on this class moved between the post-bind baseline and
// the recent observation window. Classes with zero Observations carry no
// evidence — their accuracy fields are reported as 0.
type ClassAccuracy struct {
	// Class is the class index.
	Class int `json:"class"`
	// BaselineAccuracy is the class's accuracy over the frozen post-bind
	// baseline.
	BaselineAccuracy float64 `json:"baseline_accuracy"`
	// WindowAccuracy is the class's accuracy over the recent window.
	WindowAccuracy float64 `json:"window_accuracy"`
	// Drop is baseline minus window when both are defined, 0 otherwise —
	// the per-class drift attribution signal.
	Drop float64 `json:"drop"`
	// Observations counts the class's samples in the recent window.
	Observations int `json:"observations"`
}

// GateResult is the JSON shape of one champion/challenger gate evaluation
// (disthd.GateVerdict plus what the learner did with it), embedded in the
// learner gauges as the last verdict and the last rejection.
type GateResult struct {
	// Published is whether the challenger went live.
	Published bool `json:"published"`
	// Passed is the gate's own verdict; a forced retrain can publish with
	// Passed false.
	Passed bool `json:"passed"`
	// Forced is whether the publication bypassed the gate
	// (/retrain?force=1).
	Forced bool `json:"forced"`
	// ChampionAccuracy is the incumbent's holdout accuracy.
	ChampionAccuracy float64 `json:"champion_accuracy"`
	// ChallengerAccuracy is the retrained successor's holdout accuracy.
	ChallengerAccuracy float64 `json:"challenger_accuracy"`
	// Margin is challenger minus champion, judged against the gate margin.
	Margin float64 `json:"margin"`
	// HoldoutSize is how many held-out samples the verdict rests on.
	HoldoutSize int `json:"holdout_size"`
}

// QuantizationStats reports the 1-bit serving tier's state: whether the
// model serving right now is quantized, and how the /quantize endpoint's
// publications have gone. Server.handleStats fills it; the counters live
// on the Server because quantization is an operator action, not a hot-path
// event.
type QuantizationStats struct {
	// Active is whether the currently serving model is 1-bit quantized.
	Active bool `json:"active"`
	// Publishes counts quantized successors that went live through
	// /quantize (forced ones included).
	Publishes uint64 `json:"publishes"`
	// Rejects counts quantized challengers the gate turned away; the f32
	// champion kept serving through each.
	Rejects uint64 `json:"rejects"`
	// LastGate is the most recent quantization gate evaluation, whatever
	// its outcome (nil before the first gated /quantize).
	LastGate *GateResult `json:"last_gate,omitempty"`
}

// Snapshot is a point-in-time copy of the serving counters, shaped for
// JSON (`GET /stats` returns exactly this struct).
type Snapshot struct {
	// UptimeSeconds is the time since the Batcher was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts single predictions answered through the coalescing
	// path, including failed ones.
	Requests uint64 `json:"requests"`
	// BatchRequests counts rows answered through the direct
	// PredictBatch path (no coalescing).
	BatchRequests uint64 `json:"batch_requests"`
	// Errors counts predictions that returned an error on any path,
	// including inputs rejected before reaching a batch.
	Errors uint64 `json:"errors"`
	// Swaps counts completed model hot-swaps. Stats itself does not track
	// swaps; Batcher.Stats fills this from its Swapper.
	Swaps uint64 `json:"swaps"`
	// Batches counts flushed micro-batches.
	Batches uint64 `json:"batches"`
	// MeanBatchRows is the mean rows per flushed micro-batch — the
	// batch-occupancy figure that tells whether coalescing is engaging
	// (1.0 means every request rode alone).
	MeanBatchRows float64 `json:"mean_batch_rows"`
	// MaxBatchRowsP99 is a power-of-two upper bound on the 99th
	// percentile batch occupancy.
	MaxBatchRowsP99 uint64 `json:"batch_rows_p99"`
	// LatencyMsP50/P90/P99 are power-of-two upper bounds on the
	// coalesced single-prediction latency quantiles, in milliseconds.
	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	// LatencyMsMean is the exact mean latency in milliseconds.
	LatencyMsMean float64 `json:"latency_ms_mean"`
	// WireJSONRequests and WireBinaryRequests count requests to the
	// format-negotiated HTTP endpoints (/predict, /predict_batch, /learn)
	// by wire format, so operators can watch a fleet migrate from JSON to
	// the binary frame protocol. Stats itself does not track formats;
	// Server.handleStats fills these.
	WireJSONRequests   uint64 `json:"wire_json_requests"`
	WireBinaryRequests uint64 `json:"wire_binary_requests"`
	// Learner holds the online-learning gauges when a Learner is attached
	// to the server, nil otherwise. Stats itself does not track the
	// learner; Server.handleStats fills this.
	Learner *LearnerSnapshot `json:"learner,omitempty"`
	// Quantization holds the 1-bit tier gauges. Stats itself does not
	// track quantization; Server.handleStats fills this.
	Quantization *QuantizationStats `json:"quantization,omitempty"`
}

// Snapshot returns the current counters. It is safe to call while traffic
// is flowing.
func (s *Stats) Snapshot() Snapshot {
	ms := func(ns uint64) float64 { return float64(ns) / 1e6 }
	return Snapshot{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Load(),
		BatchRequests:   s.batchReqs.Load(),
		Errors:          s.errors.Load(),
		Batches:         s.occupancy.n.Load(),
		MeanBatchRows:   s.occupancy.mean(),
		MaxBatchRowsP99: s.occupancy.quantile(0.99),
		LatencyMsP50:    ms(s.latency.quantile(0.50)),
		LatencyMsP90:    ms(s.latency.quantile(0.90)),
		LatencyMsP99:    ms(s.latency.quantile(0.99)),
		LatencyMsMean:   ms(uint64(s.latency.mean())),
	}
}
