package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	disthd "repro"
)

// Server exposes a Batcher over HTTP/JSON:
//
//	POST /predict        {"x":[...]}            -> {"class":3}
//	POST /predict_batch  {"x":[[...],[...]]}    -> {"classes":[3,1]}
//	GET  /healthz                               -> model shape + status
//	GET  /stats                                 -> serve.Snapshot JSON
//	POST /swap           <Model.Save bytes>     -> {"swaps":2}
//	POST /learn          {"x":[...],"label":3}  -> serve.FeedResult JSON
//	POST /retrain[?force=1]                     -> {"started":true,...}
//
// /learn and /retrain are live only after AttachLearner; without a learner
// they return 404. A /retrain challenger answers to the champion/challenger
// gate like any drift-triggered one; ?force=1 publishes it regardless of
// the verdict. Prediction errors map to 400 (malformed input), 409 (/swap
// shape mismatch, /retrain already in flight) or 503 (closed batcher).
// Create one with NewServer, mount Handler on any mux or call
// ListenAndServe, and Close to drain.
type Server struct {
	b       *Batcher
	learner *Learner
	mux     *http.ServeMux
	hs      *http.Server
}

// NewServer wraps an existing Batcher. The caller keeps ownership of the
// Batcher's lifecycle only if it never calls Server.Close (which closes
// both).
func NewServer(b *Batcher) *Server {
	s := &Server{b: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /predict_batch", s.handlePredictBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /swap", s.handleSwap)
	s.mux.HandleFunc("POST /learn", s.handleLearn)
	s.mux.HandleFunc("POST /retrain", s.handleRetrain)
	// The http.Server is created here, not in ListenAndServe, so Close
	// never races the assignment: Shutdown on a never-started server is a
	// no-op and a subsequent ListenAndServe returns ErrServerClosed.
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// New builds a Batcher for m with opts and wraps it in a Server — the
// one-call path cmd/disthd-serve uses.
func New(m *disthd.Model, opts Options) (*Server, error) {
	b, err := NewBatcher(m, opts)
	if err != nil {
		return nil, err
	}
	return NewServer(b), nil
}

// Batcher returns the underlying Batcher (for stats or direct calls).
func (s *Server) Batcher() *Batcher { return s.b }

// AttachLearner enables the online-learning endpoints (/learn, /retrain)
// and the learner gauges in /stats. Attach before serving traffic; the
// learner must publish into this server's Swapper.
func (s *Server) AttachLearner(l *Learner) { s.learner = l }

// Learner returns the attached learner, nil when online learning is off.
func (s *Server) Learner() *Learner { return s.learner }

// Handler returns the route table, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Close or a listener error. It blocks
// like http.Server.ListenAndServe and returns http.ErrServerClosed after a
// clean Close.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	return s.hs.ListenAndServe()
}

// Close drains the server so no accepted request is dropped mid-batch: the
// Batcher closes first — intake stops (late submitters get 503) and every
// micro-batch already accepted into the queue is flushed and answered —
// and only then does http.Server.Shutdown run, which now completes quickly
// because no handler is still waiting on a batch. The previous ordering
// (HTTP first) could hit Shutdown's deadline while handlers were still
// blocked on forming batches and then yank the Batcher out from under
// them. In-flight handlers that had not yet submitted when intake stopped
// are answered with 503 rather than dropped.
func (s *Server) Close() error {
	s.b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := s.hs.Shutdown(ctx)
	cancel()
	return err
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits a {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// predictRequest is the /predict body.
type predictRequest struct {
	X []float64 `json:"x"`
}

// handlePredict serves one coalesced prediction.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	class, err := s.b.Predict(req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"class": class})
}

// predictBatchRequest is the /predict_batch body.
type predictBatchRequest struct {
	X [][]float64 `json:"x"`
}

// handlePredictBatch serves a caller-provided batch directly.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req predictBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	classes, err := s.b.PredictBatch(req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if classes == nil {
		classes = []int{}
	}
	writeJSON(w, http.StatusOK, map[string][]int{"classes": classes})
}

// handleHealthz reports liveness plus the served model's shape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.b.Model()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"features": m.Features(),
		"dim":      m.Dim(),
		"classes":  m.Classes(),
		"swaps":    s.b.Swapper().Swaps(),
	})
}

// handleStats reports the serving counters, with the learner gauges folded
// in when online learning is attached.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.b.Stats()
	if s.learner != nil {
		ls := s.learner.Snapshot()
		snap.Learner = &ls
	}
	writeJSON(w, http.StatusOK, snap)
}

// learnRequest is the /learn body: one labeled feedback sample.
type learnRequest struct {
	X     []float64 `json:"x"`
	Label int       `json:"label"`
}

// handleLearn ingests labeled feedback into the attached learner. 404
// without a learner, 400 for malformed feedback.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	if s.learner == nil {
		writeError(w, http.StatusNotFound, errNoLearner)
		return
	}
	var req learnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	res, err := s.learner.Feed(req.X, req.Label)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleRetrain starts a background retrain on the attached learner: 202
// when one starts, 409 when one is already in flight or the window is still
// too small. The challenger still answers to the champion/challenger gate;
// ?force=1 publishes it regardless of the verdict. The response returns
// immediately; poll /stats for the gate outcome and completion.
func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if s.learner == nil {
		writeError(w, http.StatusNotFound, errNoLearner)
		return
	}
	force := false
	switch r.URL.Query().Get("force") {
	case "1", "true":
		force = true
	}
	started, err := s.learner.Retrain(force)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if !started {
		writeError(w, http.StatusConflict, errors.New("serve: a retrain is already in flight"))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]bool{"started": true, "forced": force})
}

// errNoLearner answers the learning endpoints when no Learner is attached.
var errNoLearner = errors.New("serve: online learning is not enabled on this server")

// handleSwap hot-swaps the served model from a Model.Save payload: 409 for
// a shape mismatch (retrain with matching shape), 400 for a payload that
// does not decode at all.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if err := s.b.Swapper().SwapReader(r.Body); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrShapeMismatch) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"swaps": s.b.Swapper().Swaps()})
}

// statusFor maps a prediction error to its HTTP status.
func statusFor(err error) int {
	if err == ErrClosed {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}
