package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
)

// Server hardening bounds: a slow or oversized client must never pin a
// handler. The timeouts go on the http.Server; the body limits wrap every
// POST body in an http.MaxBytesReader (413 on overflow). Model snapshots
// (/swap) are orders of magnitude larger than JSON requests, so they get
// their own bound.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 60 * time.Second
	idleTimeout       = 120 * time.Second
	maxJSONBody       = 8 << 20
	maxModelBody      = 256 << 20
)

// Server exposes a Batcher over HTTP/JSON:
//
//	POST /predict        {"x":[...]}            -> {"class":3}
//	POST /predict_batch  {"x":[[...],[...]]}    -> {"classes":[3,1]}
//	GET  /healthz                               -> model shape + truthful status
//	GET  /stats                                 -> serve.Snapshot JSON
//	GET  /model          -> <Model.Save bytes>  (what /swap accepts)
//	POST /swap           <Model.Save bytes>     -> {"swaps":2}
//	POST /learn          {"x":[...],"label":3}  -> serve.FeedResult JSON
//	POST /retrain[?force=1]                     -> {"started":true,...}
//	POST /quantize[?force=1&margin=-0.02]       -> {"published":true,...}
//
// /predict, /predict_batch, and /learn negotiate a second wire format:
// a request with Content-Type application/x-disthd-frame carries a binary
// frame (see repro/serve/wire) and is answered in kind — request rows are
// decoded straight into a pooled replica's leased batch scratch, skipping
// JSON float parsing and the intermediate [][]float64 entirely. JSON stays
// the default and is byte-for-byte unchanged; errors are JSON in both
// modes. /stats reports per-format request counters so a fleet migration
// is observable.
//
// /learn and /retrain are live only after AttachLearner; without a learner
// they return 404. A /retrain challenger answers to the champion/challenger
// gate like any drift-triggered one; ?force=1 publishes it regardless of
// the verdict. /quantize deploys the 1-bit packed tier: the serving f32
// champion is sign-quantized and, when a learner holds holdout evidence,
// judged through the same gate (tolerating up to -margin accuracy
// regression) before publishing; a rejected quantization leaves the f32
// champion serving and answers 409 with the losing verdict. /model serves
// the champion's wire format and negotiates it via ?format=1bit|f32 (the
// X-DistHD-Format response header names what was sent). Prediction errors
// map to 400 (malformed input), 409 (/swap shape mismatch, /retrain
// already in flight or frozen champion, /quantize rejected), 413 (request
// body over the documented bound) or 503 (closed batcher). The server is hardened
// against misbehaving clients: header/read/idle timeouts on the
// http.Server and an http.MaxBytesReader around every POST body.
// /healthz reports "degraded" (with reasons; 503 under SetStrictHealth)
// when the attached learner is impaired, so a cluster coordinator's
// health probes can act on it. Create one with NewServer, mount Handler
// on any mux or call ListenAndServe, and Close to drain.
type Server struct {
	b            *Batcher
	learner      *Learner
	mux          *http.ServeMux
	hs           *http.Server
	strictHealth bool

	// Quantization gauges (/stats "quantization" block). They live here
	// rather than on Stats because /quantize is a rare operator action —
	// no hot-path counters needed.
	quantPublishes atomic.Uint64
	quantRejects   atomic.Uint64
	quantLastGate  atomic.Pointer[GateResult]
	quantMu        sync.Mutex // serializes handleQuantize's read-gate-swap

	// Per-format request counters over the format-negotiated endpoints
	// (/predict, /predict_batch, /learn), so operators can watch a fleet
	// migrate from JSON to the binary frame protocol via /stats.
	wireJSON   atomic.Uint64
	wireBinary atomic.Uint64
}

// NewServer wraps an existing Batcher. The caller keeps ownership of the
// Batcher's lifecycle only if it never calls Server.Close (which closes
// both).
func NewServer(b *Batcher) *Server {
	s := &Server{b: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /predict_batch", s.handlePredictBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /model", s.handleModel)
	s.mux.HandleFunc("POST /swap", s.handleSwap)
	s.mux.HandleFunc("POST /learn", s.handleLearn)
	s.mux.HandleFunc("POST /retrain", s.handleRetrain)
	s.mux.HandleFunc("POST /quantize", s.handleQuantize)
	// The http.Server is created here, not in ListenAndServe, so Close
	// never races the assignment: Shutdown on a never-started server is a
	// no-op and a subsequent ListenAndServe returns ErrServerClosed. The
	// timeouts keep a slow client from pinning a handler: headers must
	// arrive promptly, a whole request must finish reading within
	// readTimeout, and idle keep-alive connections are reaped.
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       idleTimeout,
	}
	return s
}

// New builds a Batcher for m with opts and wraps it in a Server — the
// one-call path cmd/disthd-serve uses.
func New(m *disthd.Model, opts Options) (*Server, error) {
	b, err := NewBatcher(m, opts)
	if err != nil {
		return nil, err
	}
	return NewServer(b), nil
}

// Batcher returns the underlying Batcher (for stats or direct calls).
func (s *Server) Batcher() *Batcher { return s.b }

// AttachLearner enables the online-learning endpoints (/learn, /retrain)
// and the learner gauges in /stats. Attach before serving traffic; the
// learner must publish into this server's Swapper.
func (s *Server) AttachLearner(l *Learner) { s.learner = l }

// Learner returns the attached learner, nil when online learning is off.
func (s *Server) Learner() *Learner { return s.learner }

// SetStrictHealth makes /healthz answer 503 while the server is degraded
// (see Learner.Health) instead of a 200 with status "degraded" — for load
// balancers and cluster coordinators that act on status codes alone. Set
// it before serving traffic.
func (s *Server) SetStrictHealth(on bool) { s.strictHealth = on }

// Handler returns the route table, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Close or a listener error. It blocks
// like http.Server.ListenAndServe and returns http.ErrServerClosed after a
// clean Close.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	return s.hs.ListenAndServe()
}

// Close drains the server so no accepted request is dropped mid-batch: the
// Batcher closes first — intake stops (late submitters get 503) and every
// micro-batch already accepted into the queue is flushed and answered —
// and only then does http.Server.Shutdown run, which now completes quickly
// because no handler is still waiting on a batch. The previous ordering
// (HTTP first) could hit Shutdown's deadline while handlers were still
// blocked on forming batches and then yank the Batcher out from under
// them. In-flight handlers that had not yet submitted when intake stopped
// are answered with 503 rather than dropped.
func (s *Server) Close() error {
	s.b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := s.hs.Shutdown(ctx)
	cancel()
	return err
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits a {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// readJSON decodes a POST body bounded by limit, mapping an oversized
// body to 413 and malformed JSON to 400; a zero status means success.
// The body is buffered through a pooled scratch buffer and unmarshaled in
// place, so decoding into a pooled request struct reuses its slice
// backing arrays (encoding/json appends into existing capacity) — the
// steady-state JSON request path allocates no per-request scratch.
func readJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, limit)
	bp := jsonBufPool.Get().(*bytes.Buffer)
	defer jsonBufPool.Put(bp)
	bp.Reset()
	if _, err := bp.ReadFrom(body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode body: %w", err)
	}
	if err := json.Unmarshal(bp.Bytes(), v); err != nil {
		return http.StatusBadRequest, fmt.Errorf("decode body: %w", err)
	}
	return 0, nil
}

// jsonBufPool recycles the body-read scratch behind readJSON.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// predictRequest is the /predict body.
type predictRequest struct {
	X []float64 `json:"x"`
}

// predictReqPool recycles /predict request structs; json.Unmarshal reuses
// the X backing array across requests.
var predictReqPool = sync.Pool{New: func() any { return new(predictRequest) }}

// handlePredict serves one coalesced prediction.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if isWire(r) {
		s.wireBinary.Add(1)
		s.handlePredictWire(w, r)
		return
	}
	s.wireJSON.Add(1)
	req := predictReqPool.Get().(*predictRequest)
	defer predictReqPool.Put(req)
	// Reset so a body without "x" cannot inherit the previous request's
	// row; truncating keeps the backing array for reuse.
	req.X = req.X[:0]
	if status, err := readJSON(w, r, maxJSONBody, req); status != 0 {
		writeError(w, status, err)
		return
	}
	class, err := s.b.Predict(req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"class": class})
}

// predictBatchRequest is the /predict_batch body.
type predictBatchRequest struct {
	X [][]float64 `json:"x"`
}

// predictBatchReqPool recycles /predict_batch request structs; the outer
// and inner row backing arrays are both reused by json.Unmarshal.
var predictBatchReqPool = sync.Pool{New: func() any { return new(predictBatchRequest) }}

// handlePredictBatch serves a caller-provided batch directly.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if isWire(r) {
		s.wireBinary.Add(1)
		s.handlePredictBatchWire(w, r)
		return
	}
	s.wireJSON.Add(1)
	req := predictBatchReqPool.Get().(*predictBatchRequest)
	defer predictBatchReqPool.Put(req)
	req.X = req.X[:0]
	if status, err := readJSON(w, r, maxJSONBody, req); status != 0 {
		writeError(w, status, err)
		return
	}
	classes, err := s.b.PredictBatch(req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if classes == nil {
		classes = []int{}
	}
	writeJSON(w, http.StatusOK, map[string][]int{"classes": classes})
}

// handleHealthz reports liveness plus the served model's shape — and
// tells the truth: when the attached learner is impaired (post-rejection
// backoff, or a retrain wedged past its stall deadline) the status is
// "degraded" with the reasons listed, so a cluster coordinator's probes
// can deprioritize this worker. Plain mode still answers 200 (the worker
// does serve predictions); SetStrictHealth turns degraded into a 503.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.b.Model()
	status := "ok"
	var reasons []string
	if s.learner != nil {
		if h := s.learner.Health(); h.Degraded {
			status = "degraded"
			reasons = h.Reasons
		}
	}
	code := http.StatusOK
	if status != "ok" && s.strictHealth {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"reasons":  reasons,
		"features": m.Features(),
		"dim":      m.Dim(),
		"classes":  m.Classes(),
		"swaps":    s.b.Swapper().Swaps(),
	})
}

// handleModel exports the serving model as a Model.Save snapshot — the
// same versioned binary format /swap accepts, so a cluster coordinator
// can pull shard models for the federated merge loop (and any exported
// snapshot can be re-imported bitwise). ?format negotiates the wire
// format: "1bit" exports the packed payload (sign-quantizing an f32
// champion on the fly, ungated — an export is not a publication),
// "f32" demands the float payload (409 when only packed bits exist:
// sign quantization is not invertible), and the default ships whatever
// is serving. The X-DistHD-Format header names the format actually sent.
// The snapshot is buffered first so the response carries a Content-Length
// and a serialization error can still become a clean status (409 for a
// model whose encoder family has no wire format).
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m := s.b.Model()
	switch r.URL.Query().Get("format") {
	case "", "current":
	case "1bit":
		if !m.Quantized() {
			q, err := m.Quantize1Bit()
			if err != nil {
				writeError(w, http.StatusConflict, err)
				return
			}
			m = q
		}
	case "f32":
		if m.Quantized() {
			writeError(w, http.StatusConflict,
				errors.New("serve: serving model is 1-bit quantized; the f32 weights are gone (quantization is one-way)"))
			return
		}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: unknown model format %q (want 1bit or f32)", r.URL.Query().Get("format")))
		return
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	format := "f32"
	if m.Quantized() {
		format = "1bit"
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-DistHD-Format", format)
	_, _ = w.Write(buf.Bytes())
}

// Stats assembles the full serving snapshot: batcher counters, learner
// gauges when online learning is attached, quantization gauges, and the
// per-wire-format request counters. GET /stats returns exactly this.
func (s *Server) Stats() Snapshot {
	snap := s.b.Stats()
	if s.learner != nil {
		ls := s.learner.Snapshot()
		snap.Learner = &ls
	}
	snap.Quantization = &QuantizationStats{
		Active:    s.b.Model().Quantized(),
		Publishes: s.quantPublishes.Load(),
		Rejects:   s.quantRejects.Load(),
		LastGate:  s.quantLastGate.Load(),
	}
	snap.WireJSONRequests = s.wireJSON.Load()
	snap.WireBinaryRequests = s.wireBinary.Load()
	return snap
}

// handleStats reports the serving counters, with the learner gauges folded
// in when online learning is attached and the quantization gauges always.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// defaultQuantizeMargin is the accuracy regression /quantize tolerates by
// default: the 1-bit tier may lose up to 2 points of holdout accuracy
// against the f32 champion and still publish — it buys a multiple of the
// batch throughput for it. ?margin= overrides per request.
const defaultQuantizeMargin = -0.02

// handleQuantize sign-quantizes the serving f32 champion to the packed
// 1-bit tier and publishes it through the Swapper. With a learner attached
// the quantized challenger must first clear the champion/challenger gate
// on the learner's holdout slice, tolerating margin (default -0.02) of
// regression; a losing verdict answers 409 with {"published":false} and
// the full gate evaluation, and the f32 champion keeps serving. ?force=1
// publishes regardless of the verdict (still measured and reported).
// Quantizing an already-quantized champion answers 409.
func (s *Server) handleQuantize(w http.ResponseWriter, r *http.Request) {
	force := false
	switch r.URL.Query().Get("force") {
	case "1", "true":
		force = true
	}
	margin := defaultQuantizeMargin
	if mq := r.URL.Query().Get("margin"); mq != "" {
		v, err := strconv.ParseFloat(mq, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad margin %q: %w", mq, err))
			return
		}
		margin = v
	}
	// One quantization at a time: the gate evaluation is seconds of work
	// and the read-judge-swap sequence must not interleave with itself.
	s.quantMu.Lock()
	defer s.quantMu.Unlock()
	cur := s.b.Model()
	if cur.Quantized() {
		writeError(w, http.StatusConflict, errors.New("serve: serving model is already 1-bit quantized"))
		return
	}
	q, err := cur.Quantize1Bit()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	var gate *GateResult
	if s.learner != nil {
		gate, err = s.learner.GateQuantized(cur, q, margin)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		gate.Forced = force
		if !gate.Passed && !force {
			s.quantRejects.Add(1)
			s.quantLastGate.Store(gate)
			writeJSON(w, http.StatusConflict, map[string]any{"published": false, "gate": gate})
			return
		}
	}
	if err := s.b.Swap(q); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	s.quantPublishes.Add(1)
	if gate != nil {
		gate.Published = true
		s.quantLastGate.Store(gate)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"published": true,
		"swaps":     s.b.Swapper().Swaps(),
		"gate":      gate,
	})
}

// learnRequest is the /learn body: one labeled feedback sample.
type learnRequest struct {
	X     []float64 `json:"x"`
	Label int       `json:"label"`
}

// learnReqPool recycles /learn request structs; json.Unmarshal reuses the
// X backing array across requests.
var learnReqPool = sync.Pool{New: func() any { return new(learnRequest) }}

// handleLearn ingests labeled feedback into the attached learner. 404
// without a learner, 400 for malformed feedback.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	if s.learner == nil {
		writeError(w, http.StatusNotFound, errNoLearner)
		return
	}
	if isWire(r) {
		s.wireBinary.Add(1)
		s.handleLearnWire(w, r)
		return
	}
	s.wireJSON.Add(1)
	req := learnReqPool.Get().(*learnRequest)
	defer learnReqPool.Put(req)
	req.X, req.Label = req.X[:0], 0
	if status, err := readJSON(w, r, maxJSONBody, req); status != 0 {
		writeError(w, status, err)
		return
	}
	res, err := s.learner.Feed(req.X, req.Label)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleRetrain starts a background retrain on the attached learner: 202
// when one starts, 409 when one is already in flight, the window is still
// too small, or the serving champion is 1-bit quantized (frozen — swap
// the f32 model back in first). The challenger still answers to the
// champion/challenger gate; ?force=1 publishes it regardless of the
// verdict. The response returns immediately; poll /stats for the gate
// outcome and completion.
func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if s.learner == nil {
		writeError(w, http.StatusNotFound, errNoLearner)
		return
	}
	force := false
	switch r.URL.Query().Get("force") {
	case "1", "true":
		force = true
	}
	started, err := s.learner.Retrain(force)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if !started {
		writeError(w, http.StatusConflict, errors.New("serve: a retrain is already in flight"))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]bool{"started": true, "forced": force})
}

// errNoLearner answers the learning endpoints when no Learner is attached.
var errNoLearner = errors.New("serve: online learning is not enabled on this server")

// handleSwap hot-swaps the served model from a Model.Save payload: 409 for
// a shape mismatch (retrain with matching shape), 413 for a payload over
// the model body bound, 400 for a payload that does not decode at all.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if err := s.b.Swapper().SwapReader(http.MaxBytesReader(w, r.Body, maxModelBody)); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		switch {
		case errors.Is(err, ErrShapeMismatch):
			status = http.StatusConflict
		case errors.As(err, &mbe):
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"swaps": s.b.Swapper().Swaps()})
}

// statusFor maps a prediction error to its HTTP status.
func statusFor(err error) int {
	if err == ErrClosed {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// The Serve* methods expose each endpoint handler for mounting under an
// outer router — serve/registry dispatches /t/{model}/... requests to the
// tenant's Server through them without rewriting the request path (which
// would cost a request clone per call). Each behaves exactly like the
// corresponding route on Handler; method filtering is the outer router's
// job.

// ServePredict handles a POST /predict request (JSON or binary frame).
func (s *Server) ServePredict(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r) }

// ServePredictBatch handles a POST /predict_batch request (JSON or binary
// frame).
func (s *Server) ServePredictBatch(w http.ResponseWriter, r *http.Request) {
	s.handlePredictBatch(w, r)
}

// ServeHealthz handles a GET /healthz request.
func (s *Server) ServeHealthz(w http.ResponseWriter, r *http.Request) { s.handleHealthz(w, r) }

// ServeStats handles a GET /stats request.
func (s *Server) ServeStats(w http.ResponseWriter, r *http.Request) { s.handleStats(w, r) }

// ServeModel handles a GET /model request.
func (s *Server) ServeModel(w http.ResponseWriter, r *http.Request) { s.handleModel(w, r) }

// ServeSwap handles a POST /swap request.
func (s *Server) ServeSwap(w http.ResponseWriter, r *http.Request) { s.handleSwap(w, r) }

// ServeLearn handles a POST /learn request (JSON or binary frame).
func (s *Server) ServeLearn(w http.ResponseWriter, r *http.Request) { s.handleLearn(w, r) }

// ServeRetrain handles a POST /retrain request.
func (s *Server) ServeRetrain(w http.ResponseWriter, r *http.Request) { s.handleRetrain(w, r) }

// ServeQuantize handles a POST /quantize request.
func (s *Server) ServeQuantize(w http.ResponseWriter, r *http.Request) { s.handleQuantize(w, r) }
