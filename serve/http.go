package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	disthd "repro"
)

// Server exposes a Batcher over HTTP/JSON:
//
//	POST /predict        {"x":[...]}            -> {"class":3}
//	POST /predict_batch  {"x":[[...],[...]]}    -> {"classes":[3,1]}
//	GET  /healthz                               -> model shape + status
//	GET  /stats                                 -> serve.Snapshot JSON
//	POST /swap           <Model.Save bytes>     -> {"swaps":2}
//
// Prediction errors map to 400 (malformed input), 409 (/swap shape
// mismatch) or 503 (closed batcher). Create one with NewServer, mount
// Handler on any mux or call ListenAndServe, and Close to drain.
type Server struct {
	b   *Batcher
	mux *http.ServeMux
	hs  *http.Server
}

// NewServer wraps an existing Batcher. The caller keeps ownership of the
// Batcher's lifecycle only if it never calls Server.Close (which closes
// both).
func NewServer(b *Batcher) *Server {
	s := &Server{b: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /predict_batch", s.handlePredictBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /swap", s.handleSwap)
	// The http.Server is created here, not in ListenAndServe, so Close
	// never races the assignment: Shutdown on a never-started server is a
	// no-op and a subsequent ListenAndServe returns ErrServerClosed.
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// New builds a Batcher for m with opts and wraps it in a Server — the
// one-call path cmd/disthd-serve uses.
func New(m *disthd.Model, opts Options) (*Server, error) {
	b, err := NewBatcher(m, opts)
	if err != nil {
		return nil, err
	}
	return NewServer(b), nil
}

// Batcher returns the underlying Batcher (for stats or direct calls).
func (s *Server) Batcher() *Batcher { return s.b }

// Handler returns the route table, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Close or a listener error. It blocks
// like http.Server.ListenAndServe and returns http.ErrServerClosed after a
// clean Close.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	return s.hs.ListenAndServe()
}

// Close drains the HTTP server and then the Batcher, answering every
// in-flight request before returning.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := s.hs.Shutdown(ctx)
	cancel()
	s.b.Close()
	return err
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits a {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// predictRequest is the /predict body.
type predictRequest struct {
	X []float64 `json:"x"`
}

// handlePredict serves one coalesced prediction.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	class, err := s.b.Predict(req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"class": class})
}

// predictBatchRequest is the /predict_batch body.
type predictBatchRequest struct {
	X [][]float64 `json:"x"`
}

// handlePredictBatch serves a caller-provided batch directly.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req predictBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	classes, err := s.b.PredictBatch(req.X)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if classes == nil {
		classes = []int{}
	}
	writeJSON(w, http.StatusOK, map[string][]int{"classes": classes})
}

// handleHealthz reports liveness plus the served model's shape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.b.Model()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"features": m.Features(),
		"dim":      m.Dim(),
		"classes":  m.Classes(),
		"swaps":    s.b.Swapper().Swaps(),
	})
}

// handleStats reports the serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.Stats())
}

// handleSwap hot-swaps the served model from a Model.Save payload: 409 for
// a shape mismatch (retrain with matching shape), 400 for a payload that
// does not decode at all.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if err := s.b.Swapper().SwapReader(r.Body); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrShapeMismatch) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"swaps": s.b.Swapper().Swaps()})
}

// statusFor maps a prediction error to its HTTP status.
func statusFor(err error) int {
	if err == ErrClosed {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}
