package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	disthd "repro"
	"repro/serve"
)

// Body bounds for the admin plane, mirroring the single-model server's:
// install specs are small JSON documents, model-snapshot installs are
// bounded like /swap bodies.
const (
	maxSpecBody  = 1 << 20
	maxModelBody = 256 << 20
)

// Server exposes a Registry over HTTP. Every per-model endpoint of the
// single-model serve.Server appears under /t/{model}/..., dispatched to
// the tenant's serving unit (waking it if parked):
//
//	POST /t/{model}/predict        POST /t/{model}/swap
//	POST /t/{model}/predict_batch  POST /t/{model}/learn
//	GET  /t/{model}/healthz        POST /t/{model}/retrain
//	GET  /t/{model}/model          POST /t/{model}/quantize
//	GET  /t/{model}/stats          (tenant row: registry gauges + serve snapshot)
//
// plus the admin plane:
//
//	PUT    /t/{model}   install — JSON InstallSpec (train a demo model) or
//	                    a Model.Save snapshot body (what GET /model emits),
//	                    negotiated on Content-Type
//	DELETE /t/{model}   drain in-flight requests, then remove
//	GET    /models      list every tenant with shape and residency
//	GET    /stats       aggregate registry snapshot (Stats)
//
// and the default-tenant alias: /predict, /predict_batch, /healthz,
// /model, /swap, /learn, /retrain, and /quantize at the root resolve to
// the default tenant through the exact same serve.Server handlers, so a
// single-model client keeps working byte-identically against a registry
// process. The one root route that changes meaning is GET /stats, which
// reports the registry aggregate — the default tenant's serve snapshot is
// inside it (and at GET /t/{model}/stats).
//
// Requests to an unknown tenant answer 404; requests that would need to
// wake a tenant while every pooled replica is actively serving answer 429
// (admission control — retry after in-flight work drains). Dispatch adds
// no allocations to the per-tenant hot path: tenant resolution is one
// mutex-guarded map lookup bracketing the inner handler.
type Server struct {
	reg *Registry
	mux *http.ServeMux
	hs  *http.Server
}

// endpoint is a serve.Server handler method expression — calling through
// it costs nothing per request, unlike binding a method value.
type endpoint = func(*serve.Server, http.ResponseWriter, *http.Request)

// NewServer wraps reg in the HTTP surface. Closing the Server closes the
// registry too.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	for _, route := range []struct {
		pattern string // without the /t/{model} prefix
		f       endpoint
	}{
		{"POST /predict", (*serve.Server).ServePredict},
		{"POST /predict_batch", (*serve.Server).ServePredictBatch},
		{"GET /healthz", (*serve.Server).ServeHealthz},
		{"GET /model", (*serve.Server).ServeModel},
		{"POST /swap", (*serve.Server).ServeSwap},
		{"POST /learn", (*serve.Server).ServeLearn},
		{"POST /retrain", (*serve.Server).ServeRetrain},
		{"POST /quantize", (*serve.Server).ServeQuantize},
	} {
		h := s.forward(route.f)
		method, path, _ := strings.Cut(route.pattern, " ")
		s.mux.HandleFunc(method+" /t/{model}"+path, h)
		s.mux.HandleFunc(route.pattern, h) // default-tenant alias
	}
	s.mux.HandleFunc("GET /t/{model}/stats", s.handleTenantStats)
	s.mux.HandleFunc("PUT /t/{model}", s.handleInstall)
	s.mux.HandleFunc("DELETE /t/{model}", s.handleRemove)
	s.mux.HandleFunc("GET /models", s.handleModels)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	// Built here, not in ListenAndServe, for the same no-race reason as the
	// single-model server; the timeout values match it.
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	return s
}

// Registry returns the wrapped registry.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the route table, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Close or a listener error, blocking
// like http.Server.ListenAndServe.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	return s.hs.ListenAndServe()
}

// Close drains in the same order as the single-model server: the registry
// first — intake stops (late requests get 503) and every tenant's
// accepted micro-batches flush — then the HTTP listener shuts down, which
// completes promptly because no handler still waits on a batch.
func (s *Server) Close() error {
	s.reg.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.hs.Shutdown(ctx)
}

// forward builds the handler for one per-tenant endpoint: resolve the
// tenant (the {model} path segment; empty on the alias routes selects the
// default), pin it resident for the duration, and run the single-model
// handler against its serving unit. Built once per route at mux setup —
// the per-request path allocates nothing of its own.
func (s *Server) forward(f endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.reg.Acquire(r.PathValue("model"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		defer s.reg.Release(t)
		f(t.Server(), w, r)
	}
}

// handleTenantStats serves one tenant's row — registry gauges plus, while
// resident, the serve snapshot. Deliberately not routed through forward:
// reading a parked tenant's stats must not wake it.
func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	ts, err := s.reg.TenantStats(r.PathValue("model"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ts)
}

// handleStats serves the aggregate registry snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Stats())
}

// modelsResponse is the GET /models body.
type modelsResponse struct {
	// Default is the tenant the root alias routes resolve to.
	Default string `json:"default"`
	// Tenants lists every registered tenant in install order.
	Tenants []TenantStats `json:"tenants"`
}

// handleModels lists the registered tenants.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	st := s.reg.Stats()
	writeJSON(w, http.StatusOK, modelsResponse{Default: st.DefaultTenant, Tenants: st.PerTenant})
}

// InstallSpec is the JSON body of PUT /t/{model}: train a model on one of
// the built-in synthetic benchmarks and register it under the path's
// model ID. (Installing a pre-trained model instead is the non-JSON
// branch: PUT the Model.Save snapshot bytes directly.)
type InstallSpec struct {
	// Demo names the synthetic benchmark to train on (disthd.BenchmarkNames).
	Demo string `json:"demo"`
	// Dim is the hypervector dimensionality D (default 512).
	Dim int `json:"dim"`
	// Scale is the dataset scale (default 0.1).
	Scale float64 `json:"scale"`
	// Seed drives training and the learner (default 42).
	Seed uint64 `json:"seed"`
	// Iterations overrides the training iteration count when positive.
	Iterations int `json:"iterations"`
	// Replicas is the tenant's pool cost while resident (default 1).
	Replicas int `json:"replicas"`
	// MaxBatch caps the tenant's micro-batch rows (default 64).
	MaxBatch int `json:"max_batch"`
	// Learn attaches online learning (/t/{model}/learn, /retrain) with
	// default learner options.
	Learn bool `json:"learn"`
	// Quantize deploys a quantized tier at install ("1bit"): the trained
	// f32 model is sign-quantized and published only if it holds within
	// QuantizeMargin of f32 accuracy on the benchmark's test split — a
	// rejected quantization installs the f32 model instead.
	Quantize string `json:"quantize"`
	// QuantizeMargin is the gate floor for Quantize (default -0.02).
	QuantizeMargin float64 `json:"quantize_margin"`
	// Default additionally makes this tenant the root-alias default.
	Default bool `json:"default"`
}

// Build trains the spec's model (and quantized tier, when asked) and
// resolves the tenant's serving Spec — the shared install path behind
// PUT /t/{model} JSON bodies and disthd-serve's -registry boot flags.
func (is InstallSpec) Build() (*disthd.Model, Spec, error) {
	sp := Spec{Options: serve.Options{Replicas: is.Replicas, MaxBatch: is.MaxBatch}}
	if is.Learn {
		sp.Learner = &serve.LearnerOptions{Seed: is.Seed}
	}
	m, err := is.train()
	if err != nil {
		return nil, Spec{}, err
	}
	return m, sp, nil
}

// train builds the spec's model (and quantized tier, when asked).
func (is InstallSpec) train() (*disthd.Model, error) {
	if is.Demo == "" {
		return nil, fmt.Errorf("install spec needs \"demo\" (one of %v)", disthd.BenchmarkNames())
	}
	scale := is.Scale
	if scale == 0 {
		scale = 0.1
	}
	seed := is.Seed
	if seed == 0 {
		seed = 42
	}
	train, test, err := disthd.SyntheticBenchmark(is.Demo, scale, seed)
	if err != nil {
		return nil, err
	}
	cfg := disthd.DefaultConfig()
	if is.Dim > 0 {
		cfg.Dim = is.Dim
	}
	if is.Iterations > 0 {
		cfg.Iterations = is.Iterations
	}
	cfg.Seed = seed
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		return nil, err
	}
	switch is.Quantize {
	case "":
		return m, nil
	case "1bit":
		q, err := m.Quantize1Bit()
		if err != nil {
			return nil, err
		}
		margin := is.QuantizeMargin
		if margin == 0 {
			margin = -0.02
		}
		v, err := disthd.NewGate(disthd.GateConfig{MinMargin: margin}).Evaluate(m, q, test.X, test.Y)
		if err != nil {
			return nil, err
		}
		if !v.Publish {
			return m, nil // rejected tier: the f32 model installs instead
		}
		return q, nil
	default:
		return nil, fmt.Errorf("unknown quantize tier %q (only \"1bit\")", is.Quantize)
	}
}

// handleInstall registers (or replaces) a tenant. Content negotiation
// mirrors the serving plane: a JSON body is an InstallSpec trained here,
// any other body is Model.Save snapshot bytes — exactly what GET /model
// emits and POST /swap accepts — with options in the query string
// (?replicas=, ?max_batch=, ?learn=1, ?default=1).
func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("model")
	var (
		m    *disthd.Model
		spec Spec
		def  bool
	)
	if ct := r.Header.Get("Content-Type"); ct == "" || strings.HasPrefix(ct, "application/json") {
		var is InstallSpec
		body := http.MaxBytesReader(w, r.Body, maxSpecBody)
		if err := json.NewDecoder(body).Decode(&is); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode install spec: %w", err))
			return
		}
		mm, sp, err := is.Build()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m, spec, def = mm, sp, is.Default
	} else {
		body := http.MaxBytesReader(w, r.Body, maxModelBody)
		mm, err := disthd.Load(body)
		if err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
			writeError(w, status, fmt.Errorf("decode model snapshot: %w", err))
			return
		}
		q := r.URL.Query()
		spec.Options.Replicas, _ = strconv.Atoi(q.Get("replicas"))
		spec.Options.MaxBatch, _ = strconv.Atoi(q.Get("max_batch"))
		if q.Get("learn") == "1" {
			seed, _ := strconv.ParseUint(q.Get("seed"), 10, 64)
			spec.Learner = &serve.LearnerOptions{Seed: seed}
		}
		m, def = mm, q.Get("default") == "1"
	}
	if err := s.reg.Install(id, m, spec); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if def {
		if err := s.reg.SetDefault(id); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
	}
	ts, err := s.reg.TenantStats(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ts)
}

// handleRemove drains and deletes a tenant.
func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("model")
	if err := s.reg.Remove(id); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// statusFor maps registry errors onto status codes: unknown tenant 404,
// exhausted pool 429 (admission control — the client should back off and
// retry), closed registry 503, anything else 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrPoolExhausted):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the Retry-After value on 429 responses. Admission
// rejections clear when an in-flight request drains or an idle tenant
// frees pool capacity; the wake itself is sub-millisecond, so the header
// is dominated by the 1-second floor — HTTP Retry-After has whole-second
// granularity, and anything under a second would invite the hammering the
// header exists to prevent.
const retryAfterSeconds = 1

// writeError emits a {"error": ...} body, the same shape as the
// single-model server's errors. Admission rejections (429) additionally
// carry a Retry-After header so well-behaved clients back off instead of
// retrying immediately against a pool that is still saturated.
func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
