package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	disthd "repro"
	"repro/serve"
)

// tenantFixture is one trained tenant model with verification data: rows
// with the answers the model itself gives, so any test can prove a
// registry-routed prediction went through the right tenant's scratch.
type tenantFixture struct {
	name string
	m    *disthd.Model
	rows [][]float64
	want []int
}

var (
	fixOnce sync.Once
	fixSet  []*tenantFixture
)

// fixtures trains three deliberately heterogeneous tenants — different
// feature widths, dimensionalities, and class counts — once per test
// binary. Heterogeneity is the point: cross-tenant scratch aliasing
// cannot go unnoticed when every tenant disagrees on every shape axis.
func fixtures(t testing.TB) []*tenantFixture {
	t.Helper()
	fixOnce.Do(func() {
		specs := []struct {
			name, demo string
			scale      float64
			dim        int
			seed       uint64
		}{
			{"diabetes", "DIABETES", 0.05, 64, 7},
			{"ucihar", "UCIHAR", 0.05, 96, 11},
			{"isolet", "ISOLET", 0.05, 128, 13},
		}
		for _, sp := range specs {
			train, test, err := disthd.SyntheticBenchmark(sp.demo, sp.scale, sp.seed)
			if err != nil {
				panic(err)
			}
			cfg := disthd.DefaultConfig()
			cfg.Dim = sp.dim
			cfg.Iterations = 2
			cfg.Seed = sp.seed
			m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
			if err != nil {
				panic(err)
			}
			rows := test.X
			if len(rows) > 16 {
				rows = rows[:16]
			}
			want := make([]int, len(rows))
			rep, err := m.NewReplica(len(rows))
			if err != nil {
				panic(err)
			}
			if _, err := rep.PredictBatch(m, rows, want); err != nil {
				panic(err)
			}
			fixSet = append(fixSet, &tenantFixture{name: sp.name, m: m, rows: rows, want: want})
		}
	})
	return fixSet
}

// quickOpts keeps test batchers tiny and prompt.
func quickOpts() serve.Options {
	return serve.Options{MaxBatch: 16, MaxDelay: 100 * time.Microsecond, Replicas: 1}
}

// checkTenant acquires id and verifies the fixture's predictions route to
// the fixture's model.
func checkTenant(t *testing.T, reg *Registry, id string, fx *tenantFixture) {
	t.Helper()
	h, err := reg.Acquire(id)
	if err != nil {
		t.Fatalf("Acquire(%q): %v", id, err)
	}
	defer reg.Release(h)
	got, err := h.Server().Batcher().PredictBatch(fx.rows)
	if err != nil {
		t.Fatalf("tenant %q PredictBatch: %v", id, err)
	}
	for i := range got {
		if got[i] != fx.want[i] {
			t.Fatalf("tenant %q row %d: predicted %d, model says %d", id, i, got[i], fx.want[i])
		}
	}
}

// TestRegistryServesHeterogeneousTenants is the core acceptance shape:
// three tenants with different (features, D, classes) in one registry,
// every prediction verified against the owning model.
func TestRegistryServesHeterogeneousTenants(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(len(fx))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, f := range fx {
		if err := reg.Install(f.name, f.m, Spec{Options: quickOpts()}); err != nil {
			t.Fatalf("Install(%q): %v", f.name, err)
		}
	}
	for _, f := range fx {
		checkTenant(t, reg, f.name, f)
	}
	st := reg.Stats()
	if st.TenantCount != 3 || st.ResidentCount != 3 || st.UsedReplicas != 3 {
		t.Fatalf("stats = %+v, want 3 tenants resident with 3 used replicas", st)
	}
	if st.DefaultTenant != fx[0].name {
		t.Fatalf("default tenant %q, want first-installed %q", st.DefaultTenant, fx[0].name)
	}
	// The default alias: Acquire("") routes to the first-installed tenant.
	checkTenant(t, reg, "", fx[0])
}

// TestRegistryLRUEviction proves the pool parks the least-recently-used
// idle tenant — never one with an in-flight request — and that a parked
// tenant serves again (correctly) on its next hit.
func TestRegistryLRUEviction(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	a, b, c := fx[0], fx[1], fx[2]
	for _, f := range []*tenantFixture{a, b} {
		if err := reg.Install(f.name, f.m, Spec{Options: quickOpts()}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch b so a is the LRU resident.
	checkTenant(t, reg, a.name, a)
	checkTenant(t, reg, b.name, b)
	ha, _ := reg.Acquire(a.name)
	reg.Release(ha)
	hb, err := reg.Acquire(b.name)
	if err != nil {
		t.Fatal(err)
	}
	// Installing c with a full pool must park a (LRU idle) — not b, which
	// is pinned by the in-flight acquire.
	if err := reg.Install(c.name, c.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatalf("Install(%q) into a full pool: %v", c.name, err)
	}
	reg.Release(hb)
	st := reg.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	for _, row := range st.PerTenant {
		switch row.ID {
		case a.name:
			if row.Resident {
				t.Fatalf("tenant %q still resident, want parked (LRU)", a.name)
			}
		case b.name, c.name:
			if !row.Resident {
				t.Fatalf("tenant %q parked, want resident", row.ID)
			}
		}
	}
	// The parked tenant wakes on its next hit and still answers with its
	// own model; that wake must evict the new LRU, not the just-used c.
	checkTenant(t, reg, c.name, c)
	checkTenant(t, reg, a.name, a)
	st = reg.Stats()
	if st.Wakes != 1 {
		t.Fatalf("re-wakes = %d, want 1", st.Wakes)
	}
	for _, row := range st.PerTenant {
		if row.ID == b.name && row.Resident {
			t.Fatalf("wake of %q should have parked LRU tenant %q", a.name, b.name)
		}
	}
}

// TestRegistryAdmissionControl proves a wake fails with ErrPoolExhausted
// only while every pooled replica is pinned by an in-flight request, and
// succeeds as soon as one drains.
func TestRegistryAdmissionControl(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	a, b := fx[0], fx[1]
	if err := reg.Install(a.name, a.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	// Pin a's replica first: with the whole pool in flight, b cannot be
	// made resident at install — it must still install fine, parked.
	ha, err := reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(b.name, b.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatalf("Install of a parked tenant: %v", err)
	}
	if _, err := reg.Acquire(b.name); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Acquire(%q) under a pinned pool: err = %v, want ErrPoolExhausted", b.name, err)
	}
	reg.Release(ha)
	// With a idle again it is evictable, so b admits.
	checkTenant(t, reg, b.name, b)
	st := reg.Stats()
	if st.AdmissionRejections != 1 {
		t.Fatalf("admission rejections = %d, want 1", st.AdmissionRejections)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (a parked to admit b)", st.Evictions)
	}
	// An install that can never fit is rejected up front, not at runtime.
	big := quickOpts()
	big.Replicas = 2
	if err := reg.Install("big", a.m, Spec{Options: big}); err == nil {
		t.Fatal("Install wanting more replicas than the pool holds: no error")
	}
}

// TestRegistryRemoveDrains proves DELETE semantics: Remove blocks until
// in-flight requests release, new requests see ErrUnknownTenant, and the
// default re-elects.
func TestRegistryRemoveDrains(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	a, b := fx[0], fx[1]
	for _, f := range []*tenantFixture{a, b} {
		if err := reg.Install(f.name, f.m, Spec{Options: quickOpts()}); err != nil {
			t.Fatal(err)
		}
	}
	ha, err := reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	removed := make(chan error, 1)
	go func() { removed <- reg.Remove(a.name) }()
	select {
	case err := <-removed:
		t.Fatalf("Remove returned %v with a request in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	reg.Release(ha)
	if err := <-removed; err != nil {
		t.Fatalf("Remove after release: %v", err)
	}
	if _, err := reg.Acquire(a.name); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Acquire of a removed tenant: err = %v, want ErrUnknownTenant", err)
	}
	if got := reg.Default(); got != b.name {
		t.Fatalf("default after removing it = %q, want re-elected %q", got, b.name)
	}
}

// TestRegistrySwapSurvivesEviction proves park/wake keeps the latest
// published model: a hot-swap while resident must still serve after the
// tenant is parked and woken — the eviction releases scratch, not state.
func TestRegistrySwapSurvivesEviction(t *testing.T) {
	fx := fixtures(t)
	a, b := fx[0], fx[1]
	// A same-shape successor for a: retrain with another seed.
	train, _, err := disthd.SyntheticBenchmark("DIABETES", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = a.m.Dim()
	cfg.Iterations = 2
	cfg.Seed = 99
	successor, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Install(a.name, a.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(b.name, b.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Server().Batcher().Swap(successor); err != nil {
		t.Fatal(err)
	}
	reg.Release(h)
	// Force a's eviction by waking b, then wake a again.
	checkTenant(t, reg, b.name, b)
	h, err = reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Release(h)
	if got := h.Server().Batcher().Model(); got != successor {
		t.Fatalf("woken tenant serves the pre-swap model; the park lost the published successor")
	}
}

// TestRegistryChurnRace is the churn soak the issue demands: goroutines
// hammer predict/swap/install/delete across overlapping tenants on a pool
// small enough to evict constantly, under -race. Every prediction must
// come back correct for its tenant's model (shape heterogeneity turns any
// cross-tenant scratch aliasing into a wrong answer or an error), and the
// only admissible failure is ErrPoolExhausted — which callers retry, so
// zero requests are dropped.
func TestRegistryChurnRace(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(2) // 3 durable tenants + churners through 2 slots
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, f := range fx {
		if err := reg.Install(f.name, f.m, Spec{Options: quickOpts()}); err != nil {
			t.Fatal(err)
		}
	}
	const (
		workers = 8
		iters   = 120
	)
	var (
		rejected atomic.Uint64
		served   atomic.Uint64
		wg       sync.WaitGroup
	)
	predictOnce := func(id string, f *tenantFixture) error {
		h, err := reg.Acquire(id)
		if err != nil {
			return err
		}
		defer reg.Release(h)
		got, err := h.Server().Batcher().PredictBatch(f.rows)
		if err != nil {
			return fmt.Errorf("tenant %s: %w", id, err)
		}
		for i := range got {
			if got[i] != f.want[i] {
				return fmt.Errorf("tenant %s row %d: got %d want %d (scratch aliasing?)", id, i, got[i], f.want[i])
			}
		}
		return nil
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			own := fmt.Sprintf("churn-%d", w)
			for i := 0; i < iters; i++ {
				f := fx[rng.Intn(len(fx))]
				switch rng.Intn(10) {
				case 0: // install/replace a private tenant
					if err := reg.Install(own, f.m, Spec{Options: quickOpts()}); err != nil {
						errs <- err
						return
					}
				case 1: // remove it again (absent is fine)
					if err := reg.Remove(own); err != nil && !errors.Is(err, ErrUnknownTenant) {
						errs <- err
						return
					}
				case 2: // self-swap: exercises the swap path without changing answers
					h, err := reg.Acquire(f.name)
					if errors.Is(err, ErrPoolExhausted) {
						rejected.Add(1)
						continue
					}
					if err != nil {
						errs <- err
						return
					}
					err = h.Server().Batcher().Swap(f.m)
					reg.Release(h)
					if err != nil {
						errs <- err
						return
					}
				default: // predict, retrying admission rejections: no request drops
					for {
						err := predictOnce(f.name, f)
						if err == nil {
							served.Add(1)
							break
						}
						if errors.Is(err, ErrPoolExhausted) {
							rejected.Add(1)
							continue
						}
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn over a 2-slot pool produced no evictions; the test exercised nothing")
	}
	t.Logf("churn: %d verified predictions, %d admission rejections retried, %d evictions, %d wakes",
		served.Load(), rejected.Load(), st.Evictions, st.Wakes)
}

// TestRegistryCloseDrains proves shutdown answers in-flight work before
// closing and 503s (ErrClosed) afterwards.
func TestRegistryCloseDrains(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(fx[0].name, fx[0].m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Acquire(fx[0].name)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { reg.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with a request in flight")
	case <-time.After(20 * time.Millisecond):
	}
	// The held unit still serves while Close drains.
	if _, err := h.Server().Batcher().PredictBatch(fx[0].rows); err != nil {
		t.Fatalf("in-flight predict during Close: %v", err)
	}
	reg.Release(h)
	<-closed
	if _, err := reg.Acquire(fx[0].name); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close: err = %v, want ErrClosed", err)
	}
}
