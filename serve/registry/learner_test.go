package registry

import (
	"reflect"
	"testing"

	"repro/serve"
)

// learnerSpec is the quick tenant spec with a learner attached: a small
// window so fixture-sized streams can fill it and force retrains.
func learnerSpec(seed uint64) Spec {
	return Spec{
		Options: quickOpts(),
		Learner: &serve.LearnerOptions{Window: 64, RecentWindow: 8, Seed: seed},
	}
}

// feedTenant acquires id and feeds n labeled samples through its learner
// (the fixture's own predictions as labels, so outcomes are deterministic).
func feedTenant(t *testing.T, reg *Registry, id string, fx *tenantFixture, n int) {
	t.Helper()
	h, err := reg.Acquire(id)
	if err != nil {
		t.Fatalf("Acquire(%q): %v", id, err)
	}
	defer reg.Release(h)
	for i := 0; i < n; i++ {
		j := i % len(fx.rows)
		if _, err := h.Server().Learner().Feed(fx.rows[j], fx.want[j]); err != nil {
			t.Fatalf("tenant %q Feed: %v", id, err)
		}
	}
}

// TestRegistryParkWakeLearnerContinuity is the tentpole's acceptance
// shape: park a learning tenant and wake it, and the learner is
// bit-identical — window contents, drift baseline, counters — with the
// parked /stats row reporting the frozen gauges in between.
func TestRegistryParkWakeLearnerContinuity(t *testing.T) {
	fx := fixtures(t)
	a, b := fx[0], fx[1]
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Install(a.name, a.m, learnerSpec(7)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(b.name, b.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	feedTenant(t, reg, a.name, a, 16)
	h, err := reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Server().Learner().Export()
	reg.Release(h)

	// Waking b through the 1-slot pool parks a.
	checkTenant(t, reg, b.name, b)
	row, err := reg.TenantStats(a.name)
	if err != nil {
		t.Fatal(err)
	}
	if row.Resident {
		t.Fatalf("tenant %q still resident; the test parked nothing", a.name)
	}
	if row.Learner == nil {
		t.Fatal("parked learning tenant reports no learner gauges")
	}
	if row.Learner.Feedback != 16 || row.Learner.WindowLen != 16 {
		t.Fatalf("parked gauges feedback=%d windowLen=%d, want 16/16",
			row.Learner.Feedback, row.Learner.WindowLen)
	}

	// Wake a: the learner must continue, not restart.
	h, err = reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	after := h.Server().Learner().Export()
	reg.Release(h)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("learner state not bitwise-preserved across park/wake:\n got %+v\nwant %+v", after, before)
	}
	row, err = reg.TenantStats(a.name)
	if err != nil {
		t.Fatal(err)
	}
	if row.Learner != nil {
		t.Fatal("resident tenant still reports the frozen parked gauges")
	}
	if row.Serve == nil || row.Serve.Learner == nil || row.Serve.Learner.Feedback != 16 {
		t.Fatalf("resident serve snapshot lost the learner gauges: %+v", row.Serve)
	}
	// And it keeps counting from where it stopped.
	feedTenant(t, reg, a.name, a, 4)
	h, err = reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	got := h.Server().Learner().Export().Online.Observations
	reg.Release(h)
	if want := before.Online.Observations + 4; got != want {
		t.Fatalf("observations after wake+4 = %d, want %d (reset to cold?)", got, want)
	}
}

// TestRegistryParkMidRetrainKeepsSuccessor parks a tenant while its
// background retrain is in flight: park must settle the retrain, and the
// gate-accepted successor must be the model the tenant serves after the
// next wake — never lost into the dead serving unit. Run under -race this
// also proves park and the retrain goroutine are properly synchronized.
func TestRegistryParkMidRetrainKeepsSuccessor(t *testing.T) {
	fx := fixtures(t)
	a, b := fx[0], fx[1]
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Install(a.name, a.m, learnerSpec(11)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(b.name, b.m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	feedTenant(t, reg, a.name, a, 16)
	h, err := reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	started, err := h.Server().Learner().Retrain(true) // forced: always publishes
	reg.Release(h)
	if err != nil || !started {
		t.Fatalf("forced retrain: started=%v err=%v", started, err)
	}
	// Evict a immediately — the retrain may still be running; park must
	// wait it out and capture its successor.
	checkTenant(t, reg, b.name, b)
	row, err := reg.TenantStats(a.name)
	if err != nil {
		t.Fatal(err)
	}
	if row.Resident {
		t.Fatalf("tenant %q still resident; nothing was parked mid-retrain", a.name)
	}
	if row.Learner == nil || row.Learner.Retrains != 1 || row.Learner.GateAccepts != 1 {
		t.Fatalf("parked gauges lost the settled retrain: %+v", row.Learner)
	}
	if row.Learner.Retraining {
		t.Fatal("parked snapshot claims a retrain is still in flight")
	}
	h, err = reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Release(h)
	if h.Server().Batcher().Model() == a.m {
		t.Fatal("woken tenant serves the pre-retrain model; the successor was lost in the park")
	}
	if snap := h.Server().Learner().Snapshot(); snap.Retrains != 1 {
		t.Fatalf("woken learner retrains = %d, want 1", snap.Retrains)
	}
}

// TestRegistryLearnerChurnContinuity is the eviction-churn soak with a
// learner on every tenant: labeled traffic through a 1-slot pool, every
// round forcing park/wake cycles, with each tenant's observation counters
// exactly continuous — previous value plus what this round fed — and the
// drift counters monotone.
func TestRegistryLearnerChurnContinuity(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for i, f := range fx {
		if err := reg.Install(f.name, f.m, learnerSpec(uint64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	const rounds, perRound = 4, 8
	prevObs := make(map[string]uint64)
	prevDrifts := make(map[string]uint64)
	for round := 0; round < rounds; round++ {
		for _, f := range fx {
			feedTenant(t, reg, f.name, f, perRound)
			h, err := reg.Acquire(f.name)
			if err != nil {
				t.Fatal(err)
			}
			st := h.Server().Learner().Export()
			reg.Release(h)
			if want := prevObs[f.name] + perRound; st.Online.Observations != want {
				t.Fatalf("round %d tenant %q: observations %d, want %d (window reset across wake?)",
					round, f.name, st.Online.Observations, want)
			}
			if st.Drifts < prevDrifts[f.name] {
				t.Fatalf("round %d tenant %q: drift counter went backwards (%d -> %d)",
					round, f.name, prevDrifts[f.name], st.Drifts)
			}
			prevObs[f.name] = st.Online.Observations
			prevDrifts[f.name] = st.Drifts
		}
	}
	st := reg.Stats()
	if st.Evictions == 0 || st.Wakes == 0 {
		t.Fatalf("churn produced %d evictions / %d wakes; the pool never cycled", st.Evictions, st.Wakes)
	}
}

// TestRegistryCloseSettlesLearner proves Close waits out a background
// retrain: after Close returns, the retrain goroutine has finished and
// its outcome is accounted in the tenant's parked learner snapshot.
func TestRegistryCloseSettlesLearner(t *testing.T) {
	fx := fixtures(t)
	a := fx[0]
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(a.name, a.m, learnerSpec(13)); err != nil {
		t.Fatal(err)
	}
	feedTenant(t, reg, a.name, a, 16)
	h, err := reg.Acquire(a.name)
	if err != nil {
		t.Fatal(err)
	}
	started, err := h.Server().Learner().Retrain(true)
	reg.Release(h)
	if err != nil || !started {
		t.Fatalf("forced retrain: started=%v err=%v", started, err)
	}
	reg.Close()
	// TenantStats keeps answering after Close (the registration is kept in
	// memory); the settled retrain must be in the frozen gauges.
	row, err := reg.TenantStats(a.name)
	if err != nil {
		t.Fatal(err)
	}
	if row.Learner == nil {
		t.Fatal("closed registry lost the parked learner snapshot")
	}
	if row.Learner.Retraining {
		t.Fatal("Close returned with the retrain goroutine still running")
	}
	if row.Learner.Retrains != 1 {
		t.Fatalf("retrains after Close = %d, want 1 (successor dropped on shutdown)", row.Learner.Retrains)
	}
}
