package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/serve"
)

// TestRegistryAliasByteIdentical is the compatibility contract: every
// single-model route answered through the registry's default-tenant alias
// must be byte-for-byte what a plain serve.Server answers — status, JSON
// body, model snapshot bytes, and error shapes alike. (GET /stats is the
// one deliberate exception: in registry mode it is the aggregate.)
func TestRegistryAliasByteIdentical(t *testing.T) {
	fx := fixtures(t)[0]
	opts := quickOpts()
	single, err := serve.New(fx.m, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Batcher().Close()
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Install(fx.name, fx.m, Spec{Options: opts}); err != nil {
		t.Fatal(err)
	}
	regsrv := NewServer(reg)

	var snapshot bytes.Buffer
	if err := fx.m.Save(&snapshot); err != nil {
		t.Fatal(err)
	}
	goodRow, _ := json.Marshal(map[string]any{"x": fx.rows[0]})
	badRow, _ := json.Marshal(map[string]any{"x": []float64{1, 2, 3}})
	batch, _ := json.Marshal(map[string]any{"x": fx.rows[:4]})

	cases := []struct {
		name, method, path, body string
	}{
		{"predict", "POST", "/predict", string(goodRow)},
		{"predict-shape-error", "POST", "/predict", string(badRow)},
		{"predict-malformed", "POST", "/predict", "{nope"},
		{"predict-batch", "POST", "/predict_batch", string(batch)},
		{"predict-wrong-method", "GET", "/predict", ""},
		{"healthz", "GET", "/healthz", ""},
		{"model-export", "GET", "/model", ""},
		{"model-bad-format", "GET", "/model?format=f16", ""},
		{"learn-without-learner", "POST", "/learn", string(goodRow)},
		{"retrain-without-learner", "POST", "/retrain", ""},
		{"swap", "POST", "/swap", snapshot.String()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var answers [2]*httptest.ResponseRecorder
			for i, h := range []http.Handler{single.Handler(), regsrv.Handler()} {
				req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
				if tc.method == "POST" && tc.path != "/swap" && tc.path != "/retrain" {
					req.Header.Set("Content-Type", "application/json")
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				answers[i] = rec
			}
			s, r := answers[0], answers[1]
			if s.Code != r.Code {
				t.Fatalf("status: single %d, registry alias %d", s.Code, r.Code)
			}
			if got, want := r.Header().Get("Content-Type"), s.Header().Get("Content-Type"); got != want {
				t.Fatalf("Content-Type: single %q, registry alias %q", want, got)
			}
			if !bytes.Equal(s.Body.Bytes(), r.Body.Bytes()) {
				t.Fatalf("body diverged:\nsingle:   %q\nregistry: %q", s.Body.String(), r.Body.String())
			}
		})
	}
}

// TestRegistryHTTPAdminPlane walks the admin endpoints over live HTTP:
// install by JSON spec and by model-snapshot body, list, per-tenant
// routing and stats, 404/429 mapping, and drain-then-remove.
func TestRegistryHTTPAdminPlane(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()
	client := ts.Client()

	do := func(method, path, contentType string, body io.Reader) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	// Install tenant "spec" from a JSON InstallSpec (trains in-process).
	spec := `{"demo":"DIABETES","dim":64,"scale":0.05,"seed":7,"iterations":2,"max_batch":16}`
	resp, body := do("PUT", "/t/spec", "application/json", strings.NewReader(spec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /t/spec: %d %s", resp.StatusCode, body)
	}
	var installed TenantStats
	if err := json.Unmarshal(body, &installed); err != nil {
		t.Fatal(err)
	}
	if installed.ID != "spec" || installed.Dim != 64 {
		t.Fatalf("install answered %+v, want id=spec dim=64", installed)
	}

	// Install tenant "snap" from a Model.Save snapshot body.
	var snapshot bytes.Buffer
	if err := fx[1].m.Save(&snapshot); err != nil {
		t.Fatal(err)
	}
	resp, body = do("PUT", "/t/snap?max_batch=16", "application/octet-stream", &snapshot)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /t/snap: %d %s", resp.StatusCode, body)
	}

	// A garbage snapshot body is a 400, not an install.
	resp, _ = do("PUT", "/t/garbage", "application/octet-stream", strings.NewReader("not a model"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT garbage snapshot: %d, want 400", resp.StatusCode)
	}

	// Both tenants serve through their /t/{model} routes with their own
	// shapes.
	row, _ := json.Marshal(map[string]any{"x": fx[1].rows[:2]})
	resp, body = do("POST", "/t/snap/predict_batch", "application/json", bytes.NewReader(row))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /t/snap/predict_batch: %d %s", resp.StatusCode, body)
	}
	var pb struct {
		Classes []int `json:"classes"`
	}
	if err := json.Unmarshal(body, &pb); err != nil {
		t.Fatal(err)
	}
	if want := fx[1].want[:2]; len(pb.Classes) != 2 || pb.Classes[0] != want[0] || pb.Classes[1] != want[1] {
		t.Fatalf("snap tenant answered %v, its model says %v", pb.Classes, want)
	}

	// GET /models lists both, install order, with the first as default.
	resp, body = do("GET", "/models", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /models: %d", resp.StatusCode)
	}
	var models modelsResponse
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	if models.Default != "spec" || len(models.Tenants) != 2 {
		t.Fatalf("GET /models = %+v, want default=spec with 2 tenants", models)
	}

	// Per-tenant stats and the aggregate.
	resp, body = do("GET", "/t/snap/stats", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /t/snap/stats: %d", resp.StatusCode)
	}
	var ten TenantStats
	if err := json.Unmarshal(body, &ten); err != nil {
		t.Fatal(err)
	}
	if ten.ID != "snap" || ten.Features != fx[1].m.Features() {
		t.Fatalf("tenant stats %+v, want snap with %d features", ten, fx[1].m.Features())
	}
	resp, body = do("GET", "/stats", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %d", resp.StatusCode)
	}
	var agg Stats
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.TenantCount != 2 || agg.Capacity != 2 {
		t.Fatalf("aggregate stats %+v, want 2 tenants over capacity 2", agg)
	}

	// Unknown tenants 404 on both planes.
	for _, probe := range []struct{ method, path string }{
		{"POST", "/t/nope/predict_batch"},
		{"GET", "/t/nope/stats"},
		{"DELETE", "/t/nope"},
	} {
		resp, _ = do(probe.method, probe.path, "application/json", strings.NewReader(string(row)))
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}

	// DELETE drains and removes; the route 404s afterwards.
	resp, _ = do("DELETE", "/t/snap", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /t/snap: %d", resp.StatusCode)
	}
	resp, _ = do("POST", "/t/snap/predict_batch", "application/json", bytes.NewReader(row))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict after DELETE: %d, want 404", resp.StatusCode)
	}
}

// TestRegistryHTTPAdmission429 proves the HTTP mapping of admission
// control: with the whole pool pinned, waking another tenant answers 429.
func TestRegistryHTTPAdmission429(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Install(fx[0].name, fx[0].m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Acquire(fx[0].name)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(fx[1].name, fx[1].m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	row, _ := json.Marshal(map[string]any{"x": fx[1].rows[0]})
	req := httptest.NewRequest("POST", fmt.Sprintf("/t/%s/predict", fx[1].name), bytes.NewReader(row))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("wake under a pinned pool: %d, want 429 (%s)", rec.Code, rec.Body)
	}
	// Admission rejections tell well-behaved clients when to come back.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("429 Retry-After = %q, want %q", got, "1")
	}
	reg.Release(h)
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", fmt.Sprintf("/t/%s/predict", fx[1].name), bytes.NewReader(row))
	req.Header.Set("Content-Type", "application/json")
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("wake after the pool drained: %d, want 200 (%s)", rec.Code, rec.Body)
	}
}

// TestRegistryLearnPerTenant proves online learning runs per tenant
// through the alias-identical handlers: feedback to one tenant moves that
// tenant's learner gauges and nobody else's.
func TestRegistryLearnPerTenant(t *testing.T) {
	fx := fixtures(t)
	reg, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	learn := Spec{Options: quickOpts(), Learner: &serve.LearnerOptions{Seed: 1}}
	if err := reg.Install(fx[0].name, fx[0].m, learn); err != nil {
		t.Fatal(err)
	}
	if err := reg.Install(fx[1].name, fx[1].m, Spec{Options: quickOpts()}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	feed, _ := json.Marshal(map[string]any{"x": fx[0].rows[0], "label": fx[0].want[0]})
	req := httptest.NewRequest("POST", fmt.Sprintf("/t/%s/learn", fx[0].name), bytes.NewReader(feed))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /t/%s/learn: %d (%s)", fx[0].name, rec.Code, rec.Body)
	}
	ts, err := reg.TenantStats(fx[0].name)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Serve == nil || ts.Serve.Learner == nil || ts.Serve.Learner.Feedback != 1 {
		t.Fatalf("learning tenant stats %+v, want 1 feedback sample", ts.Serve)
	}
	// The learner-free tenant still 404s /learn — exactly the single-model
	// behavior.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", fmt.Sprintf("/t/%s/learn", fx[1].name), bytes.NewReader(feed))
	req.Header.Set("Content-Type", "application/json")
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("POST /learn on a learner-free tenant: %d, want 404", rec.Code)
	}
}
