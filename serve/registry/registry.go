// Package registry is the multi-tenant serving layer: one process, many
// models. A Registry keys full serving units — a serve.Batcher with its
// Swapper, optionally a serve.Learner, f32 or 1-bit quantized — by model
// ID and exposes every per-model endpoint of the single-model server under
// /t/{model}/..., with a default-tenant alias keeping the single-model
// routes working unchanged.
//
// What makes it a platform rather than a demo is the shared replica
// budget: every resident tenant's Batcher holds Replicas worker
// goroutines, each with a leased scratch arena sized for that tenant's
// shape (features × D × classes — tenants are heterogeneous), and the
// Registry caps the TOTAL resident replicas at a fixed pool capacity.
// A request for a parked tenant wakes it, parking the least-recently-used
// idle tenants to make room (their scratch is released; the model itself
// stays registered and is rebuilt into a fresh Batcher on the next hit).
// Parking is lossless: a learning tenant's full learner state — feedback
// window, drift baseline, accuracy rings, retrain/gate gauges — is
// snapshotted next to the authoritative model and restored on the next
// wake, so eviction churn never resets a tenant to a cold learner.
// When no idle tenant can be parked — every resident replica is actively
// serving — admission fails with ErrPoolExhausted and the HTTP layer
// answers 429, so a process serving N tenants can never allocate
// unboundedly, however many models are registered.
//
// Concurrency contract: Acquire/Release bracket every request. Acquire
// touches the LRU clock and pins the tenant resident (an in-flight request
// is never evicted under); Release unpins. Remove and Install drain —
// they wait until the tenant is idle — so a request admitted before a
// DELETE always completes. The steady-state Acquire/Release pair is one
// mutex lock and no allocations, preserving the serving hot path's
// zero-alloc contract per tenant.
package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
	"repro/serve"
)

// ErrPoolExhausted is returned by Acquire when waking the tenant would
// exceed the replica pool capacity and every resident tenant is actively
// serving (nothing idle to park). The HTTP layer maps it to 429.
var ErrPoolExhausted = errors.New("registry: replica pool exhausted")

// ErrUnknownTenant is returned for a model ID that is not registered (or
// is mid-removal). The HTTP layer maps it to 404.
var ErrUnknownTenant = errors.New("registry: unknown tenant")

// ErrClosed is returned by every operation after Close.
var ErrClosed = errors.New("registry: closed")

// Spec configures one tenant's serving unit. The zero value serves with
// one replica, the serve.Options defaults otherwise, and no learner.
type Spec struct {
	// Options configures the tenant's Batcher. Replicas defaults to 1 —
	// not GOMAXPROCS as in the single-model server, because a multi-tenant
	// process shares cores across tenants and the pool accounts replicas,
	// so the default must be the cheapest resident footprint.
	Options serve.Options
	// Learner, when non-nil, attaches online learning (/learn, /retrain,
	// gated background retraining) to the tenant while it is resident.
	// Learner state — the feedback window, drift baseline, accuracy rings,
	// retrain/gate gauges — survives parking: eviction snapshots it
	// (serve.Learner.Export) next to the authoritative model, and the next
	// wake rebuilds the learner from the snapshot (serve.RestoreLearner),
	// continuing exactly where it stopped. An in-flight background retrain
	// is settled before the snapshot, so its gated successor is published
	// into the captured model or rejected and counted — never lost.
	Learner *serve.LearnerOptions
}

// withDefaults resolves the registry-level defaults.
func (s Spec) withDefaults() Spec {
	if s.Options.Replicas == 0 {
		s.Options.Replicas = 1
	}
	return s
}

// Tenant is one registered model with its serving state. All mutable
// fields are guarded by the owning Registry's lock; the exported methods
// take it.
type Tenant struct {
	reg  *Registry
	id   string
	spec Spec

	// model is authoritative while parked; while resident the unit's
	// Swapper is (park copies the pointer back, so swaps, retrains, and
	// quantizations published while resident survive eviction).
	model *disthd.Model

	// learner is the parked learner snapshot, authoritative while parked
	// for tenants whose spec attaches a learner; while resident the live
	// serve.Learner is, and this is nil. Park captures it (settling any
	// in-flight retrain first) and wake consumes it.
	learner *serve.LearnerState

	resident  bool
	removing  bool
	inflight  int
	lastUse   uint64        // registry LRU clock value at the last Acquire
	srv       *serve.Server // non-nil while resident
	installed time.Time

	wakes     uint64 // times this tenant was made resident (first install included)
	evictions uint64 // times this tenant was parked to reclaim pool capacity
	rejected  uint64 // Acquire calls answered ErrPoolExhausted for this tenant
}

// ID returns the tenant's model ID.
func (t *Tenant) ID() string { return t.id }

// Server returns the tenant's serving unit. It is only valid between the
// Acquire that returned this tenant and the matching Release — outside
// that window the tenant may be parked and the unit closed.
func (t *Tenant) Server() *serve.Server { return t.srv }

// Registry holds the tenants and the shared replica pool. Create one with
// New, Install models into it, and bracket every request with
// Acquire/Release (the HTTP layer in this package does).
type Registry struct {
	mu       sync.Mutex
	cond     *sync.Cond // signaled when a tenant goes idle (inflight drops to 0)
	capacity int
	used     int
	clock    uint64
	tenants  map[string]*Tenant
	order    []*Tenant // insertion order, for deterministic listings
	def      string    // default tenant ID ("" = none)
	closed   bool

	evictions  atomic.Uint64
	rejections atomic.Uint64
	wakes      atomic.Uint64 // re-wakes of previously parked tenants
}

// New creates an empty registry whose resident tenants may hold at most
// capacity replicas in total. capacity must be positive; every Install
// whose Spec asks for more replicas than the whole pool is rejected up
// front.
func New(capacity int) (*Registry, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("registry: pool capacity %d, want >= 1", capacity)
	}
	r := &Registry{capacity: capacity, tenants: make(map[string]*Tenant)}
	r.cond = sync.NewCond(&r.mu)
	return r, nil
}

// Capacity returns the replica pool capacity.
func (r *Registry) Capacity() int { return r.capacity }

// Install registers m as tenant id, replacing an existing tenant of the
// same ID (the replacement drains first: in-flight requests complete on
// the old unit). The new tenant is installed resident when the pool has
// room — parking colder tenants if needed — and parked otherwise, waking
// on its first request. The first installed tenant becomes the default.
func (r *Registry) Install(id string, m *disthd.Model, spec Spec) error {
	if id == "" {
		return fmt.Errorf("registry: empty tenant ID")
	}
	if m == nil {
		return fmt.Errorf("registry: tenant %q needs a model", id)
	}
	sp := spec.withDefaults()
	if sp.Options.Replicas > r.capacity {
		return fmt.Errorf("registry: tenant %q wants %d replicas, pool capacity is %d",
			id, sp.Options.Replicas, r.capacity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if old := r.tenants[id]; old != nil {
		if err := r.drainLocked(old); err != nil {
			return err
		}
		r.dropLocked(old)
	}
	t := &Tenant{reg: r, id: id, spec: sp, model: m, installed: time.Now()}
	r.tenants[id] = t
	r.order = append(r.order, t)
	if r.def == "" {
		r.def = id
	}
	// Best-effort residency at install time: a tenant that fits serves its
	// first request without paying the wake; one that doesn't stays parked
	// rather than failing the install.
	if err := r.wakeLocked(t); err != nil && !errors.Is(err, ErrPoolExhausted) {
		r.dropLocked(t)
		return err
	}
	return nil
}

// Remove drains tenant id — new requests get ErrUnknownTenant, in-flight
// ones complete — then parks it and deletes the registration.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	t := r.tenants[id]
	if t == nil || t.removing {
		return ErrUnknownTenant
	}
	if err := r.drainLocked(t); err != nil {
		return err
	}
	r.dropLocked(t)
	return nil
}

// drainLocked marks t removing (hiding it from Acquire), waits until its
// in-flight requests complete, and parks it. The registry lock is held;
// cond.Wait releases it while blocked, so traffic to other tenants flows.
func (r *Registry) drainLocked(t *Tenant) error {
	t.removing = true
	for t.inflight > 0 {
		r.cond.Wait()
		if r.closed {
			return ErrClosed
		}
	}
	if t.resident {
		r.parkLocked(t, false)
	}
	return nil
}

// dropLocked deletes a drained tenant's registration.
func (r *Registry) dropLocked(t *Tenant) {
	delete(r.tenants, t.id)
	for i, o := range r.order {
		if o == t {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if r.def == t.id {
		r.def = ""
		if len(r.order) > 0 {
			r.def = r.order[0].id
		}
	}
}

// SetDefault names the tenant the single-model alias routes (/predict,
// /predict_batch, ...) resolve to.
func (r *Registry) SetDefault(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tenants[id] == nil {
		return ErrUnknownTenant
	}
	r.def = id
	return nil
}

// Default returns the default tenant ID, "" when none is set.
func (r *Registry) Default() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.def
}

// Acquire resolves id ("" selects the default tenant) to its serving
// unit, waking a parked tenant — evicting colder idle tenants if the pool
// is full — and pins it resident until the matching Release. The
// steady-state call (tenant resident) takes one mutex and allocates
// nothing.
func (r *Registry) Acquire(id string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if id == "" {
		id = r.def
	}
	t := r.tenants[id]
	if t == nil || t.removing {
		return nil, ErrUnknownTenant
	}
	if !t.resident {
		if err := r.wakeLocked(t); err != nil {
			if errors.Is(err, ErrPoolExhausted) {
				t.rejected++
				r.rejections.Add(1)
			}
			return nil, err
		}
	}
	t.inflight++
	r.clock++
	t.lastUse = r.clock
	return t, nil
}

// Release unpins a tenant acquired with Acquire.
func (r *Registry) Release(t *Tenant) {
	r.mu.Lock()
	t.inflight--
	if t.inflight == 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// wakeLocked makes t resident: reclaim pool capacity by parking the
// least-recently-used idle tenants, then build the serving unit — a fresh
// Batcher over the tenant's latest model, wrapped in a serve.Server, with
// a learner attached when the spec asks for one.
func (r *Registry) wakeLocked(t *Tenant) error {
	need := t.spec.Options.Replicas
	for r.used+need > r.capacity {
		v := r.victimLocked(t)
		if v == nil {
			return fmt.Errorf("%w: tenant %q needs %d replicas, %d/%d in use and no idle tenant to park",
				ErrPoolExhausted, t.id, need, r.used, r.capacity)
		}
		r.parkLocked(v, true)
	}
	srv, err := serve.New(t.model, t.spec.Options)
	if err != nil {
		return fmt.Errorf("registry: wake tenant %q: %w", t.id, err)
	}
	if t.spec.Learner != nil {
		var l *serve.Learner
		if t.learner != nil {
			// A previous park snapshotted the learner; continue it instead
			// of starting cold. The spec (and so the learner config) is
			// immutable for a registered tenant, and the tenant's
			// authoritative model is exactly the one the snapshot's baseline
			// describes, so the restore cannot misfit.
			l, err = serve.RestoreLearner(srv.Batcher().Swapper(), *t.spec.Learner, t.learner)
		} else {
			l, err = serve.NewLearner(srv.Batcher().Swapper(), *t.spec.Learner)
		}
		if err != nil {
			srv.Batcher().Close()
			return fmt.Errorf("registry: wake tenant %q: %w", t.id, err)
		}
		t.learner = nil
		srv.AttachLearner(l)
	}
	t.srv = srv
	t.resident = true
	r.used += need
	t.wakes++
	if t.wakes > 1 {
		r.wakes.Add(1)
	}
	return nil
}

// victimLocked picks the least-recently-used resident tenant that is idle
// (no in-flight request) and is not exempt. Tenant counts are small, so a
// linear scan beats maintaining an intrusive list.
func (r *Registry) victimLocked(exempt *Tenant) *Tenant {
	var victim *Tenant
	for _, t := range r.order {
		if t == exempt || !t.resident || t.inflight > 0 {
			continue
		}
		if victim == nil || t.lastUse < victim.lastUse {
			victim = t
		}
	}
	return victim
}

// parkLocked releases an idle resident tenant's serving unit: the Batcher
// drains (its queue is empty — the tenant has no in-flight request — so
// the close is prompt), the learner (if any) is settled and snapshotted,
// and the latest published model is copied back as the tenant's
// authoritative snapshot, so a swap, gated retrain, or quantization that
// landed while resident survives the eviction.
//
// Blocking on the learner under the registry lock is deadlock-free: the
// retrain goroutine touches only the learner mutex and the Swapper, never
// the registry, and with the tenant idle (inflight == 0, guaranteed by
// every caller) no Feed can start a new retrain under us.
func (r *Registry) parkLocked(t *Tenant, evicted bool) {
	bat := t.srv.Batcher()
	bat.Close()
	if l := t.srv.Learner(); l != nil {
		// Export waits out any in-flight background retrain first: its
		// gated successor publishes through the Swapper (which outlives the
		// batcher) or is rejected and counted — either way the verdict is in
		// the snapshot and the model read below sees the publish. This is
		// also what lets Close guarantee no retrain goroutine outlives it.
		t.learner = l.Export()
	}
	// Read the published model only after the batcher has quiesced and the
	// learner has settled, so neither a swap landing mid-drain nor a
	// retrain's successor is lost. The Swapper outlives the batcher;
	// Model() after Close is just an atomic load.
	t.model = bat.Model()
	t.srv = nil
	t.resident = false
	r.used -= t.spec.Options.Replicas
	if evicted {
		t.evictions++
		r.evictions.Add(1)
	}
}

// Close drains every tenant and shuts the registry down: in-flight
// requests complete, learners settle (parkLocked waits out each tenant's
// background retrain, so no retrain goroutine outlives Close), parked
// state is kept only in memory, and every later operation returns
// ErrClosed.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	// Closed flips first so a request arriving mid-drain gets ErrClosed
	// (503, the closing-Batcher answer) rather than a misleading 404.
	r.closed = true
	for _, t := range r.order {
		for t.inflight > 0 {
			r.cond.Wait()
		}
		if t.resident {
			r.parkLocked(t, false)
		}
	}
	r.cond.Broadcast()
}

// TenantStats is one tenant's row in the aggregate Stats and the
// GET /models listing.
type TenantStats struct {
	// ID is the tenant's model ID.
	ID string `json:"id"`
	// Resident is whether the tenant currently holds pool replicas.
	Resident bool `json:"resident"`
	// Replicas is the tenant's configured replica count (its pool cost
	// while resident).
	Replicas int `json:"replicas"`
	// Inflight is the number of requests holding the tenant right now.
	Inflight int `json:"inflight"`
	// Features, Dim, and Classes give the tenant's model shape — tenants
	// are heterogeneous, which is the point.
	Features int `json:"features"`
	Dim      int `json:"dim"`
	Classes  int `json:"classes"`
	// Quantized is whether the tenant's current model is the 1-bit tier.
	Quantized bool `json:"quantized"`
	// Learning is whether the tenant's spec attaches a learner.
	Learning bool `json:"learning"`
	// Wakes counts times the tenant became resident (install included).
	Wakes uint64 `json:"wakes"`
	// Evictions counts times the tenant was parked to reclaim capacity.
	Evictions uint64 `json:"evictions"`
	// Rejections counts Acquire calls for this tenant answered 429.
	Rejections uint64 `json:"rejections"`
	// InstalledUnix is the wall-clock second the tenant was installed.
	InstalledUnix int64 `json:"installed_unix"`
	// Serve is the tenant's serving snapshot while resident (batcher
	// counters, learner and quantization gauges), nil while parked.
	Serve *serve.Snapshot `json:"serve,omitempty"`
	// Learner is the learner gauge snapshot frozen at the last park, for
	// learning tenants while parked — the feedback window length, drift
	// state, and retrain/gate counters survive eviction, and this reports
	// them without waking the tenant. Nil while resident (the live gauges
	// are in Serve.Learner) and for tenants without a learner.
	Learner *serve.LearnerSnapshot `json:"learner,omitempty"`
}

// Stats is the aggregate registry snapshot (`GET /stats` in registry mode
// returns exactly this).
type Stats struct {
	// Capacity and UsedReplicas describe the shared replica pool.
	Capacity     int `json:"capacity"`
	UsedReplicas int `json:"used_replicas"`
	// TenantCount and ResidentCount count registered and resident tenants.
	TenantCount   int `json:"tenants"`
	ResidentCount int `json:"resident"`
	// Evictions counts tenants parked to reclaim capacity (LRU churn).
	Evictions uint64 `json:"evictions"`
	// AdmissionRejections counts Acquire calls answered 429 because the
	// pool was genuinely exhausted.
	AdmissionRejections uint64 `json:"admission_rejections"`
	// Wakes counts re-wakes of previously parked tenants (installs are
	// not counted — churn is what this gauge watches).
	Wakes uint64 `json:"wakes"`
	// DefaultTenant is the ID the single-model alias routes resolve to.
	DefaultTenant string `json:"default_tenant"`
	// PerTenant lists every registered tenant in install order.
	PerTenant []TenantStats `json:"per_tenant"`
}

// Stats assembles the aggregate snapshot. It is safe to call under
// traffic; per-tenant serve snapshots are taken without stopping it.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Capacity:            r.capacity,
		UsedReplicas:        r.used,
		TenantCount:         len(r.order),
		Evictions:           r.evictions.Load(),
		AdmissionRejections: r.rejections.Load(),
		Wakes:               r.wakes.Load(),
		DefaultTenant:       r.def,
		PerTenant:           make([]TenantStats, 0, len(r.order)),
	}
	for _, t := range r.order {
		if t.resident {
			s.ResidentCount++
		}
		s.PerTenant = append(s.PerTenant, r.tenantStatsLocked(t))
	}
	return s
}

// tenantStatsLocked builds one tenant's stats row.
func (r *Registry) tenantStatsLocked(t *Tenant) TenantStats {
	m := t.model
	if t.resident {
		m = t.srv.Batcher().Model()
	}
	ts := TenantStats{
		ID:            t.id,
		Resident:      t.resident,
		Replicas:      t.spec.Options.Replicas,
		Inflight:      t.inflight,
		Features:      m.Features(),
		Dim:           m.Dim(),
		Classes:       m.Classes(),
		Quantized:     m.Quantized(),
		Learning:      t.spec.Learner != nil,
		Wakes:         t.wakes,
		Evictions:     t.evictions,
		Rejections:    t.rejected,
		InstalledUnix: t.installed.Unix(),
	}
	if t.resident {
		snap := t.srv.Stats()
		ts.Serve = &snap
	} else if t.learner != nil {
		gauges := t.learner.Gauges
		ts.Learner = &gauges
	}
	return ts
}

// TenantStats returns one tenant's stats row, for /t/{model}/stats-style
// queries about a parked tenant (a resident tenant's serve snapshot is
// usually read through its Server instead).
func (r *Registry) TenantStats(id string) (TenantStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id == "" {
		id = r.def
	}
	t := r.tenants[id]
	if t == nil || t.removing {
		return TenantStats{}, ErrUnknownTenant
	}
	return r.tenantStatsLocked(t), nil
}
