package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	disthd "repro"
	"repro/serve"
)

// regBench lazily trains one UCIHAR-shaped model per dimensionality,
// matching the serve package's benchmark fixtures so throughput numbers
// line up across packages.
var (
	regBenchMu sync.Mutex
	regBench   = map[int]*tenantFixture{}
)

func benchFixtures(b *testing.B, dim int) *tenantFixture {
	b.Helper()
	regBenchMu.Lock()
	defer regBenchMu.Unlock()
	if f, ok := regBench[dim]; ok {
		return f
	}
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.10, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = dim
	cfg.Iterations = 2
	cfg.Seed = 42
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rows := test.X
	if len(rows) > 64 {
		rows = rows[:64]
	}
	f := &tenantFixture{name: fmt.Sprintf("bench-%d", dim), m: m, rows: rows}
	regBench[dim] = f
	return f
}

// benchOpts sizes a tenant's batcher for the 64-row benchmark batch.
func benchOpts() serve.Options {
	return serve.Options{MaxBatch: 64, MaxDelay: 2 * time.Millisecond, Replicas: 1}
}

// BenchmarkRegistryPredictBatch is the acceptance benchmark: the
// per-tenant batched predict path through registry dispatch —
// Acquire, decode-into-lease PredictStream (what the binary
// /t/{model}/predict_batch handler runs), Release — must stay 0 allocs/op
// steady-state, with two other resident tenants in the pool to prove
// multi-tenancy adds no per-request cost.
func BenchmarkRegistryPredictBatch(b *testing.B) {
	for _, dim := range []int{512, 1024} {
		f := benchFixtures(b, dim)
		b.Run(fmt.Sprintf("D=%d", dim), func(b *testing.B) {
			reg, err := New(3)
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			small := fmt.Sprintf("small-%d", dim)
			for _, t := range []struct {
				id string
				m  *disthd.Model
			}{{f.name, f.m}, {small + "a", f.m}, {small + "b", f.m}} {
				if err := reg.Install(t.id, t.m, Spec{Options: benchOpts()}); err != nil {
					b.Fatal(err)
				}
			}
			rows := f.rows
			features := f.m.Features()
			out := make([]int, len(rows))
			// The fill closure is hoisted out of the loop, as the wire
			// handler's pooled decoder is; per-iteration it only copies.
			fill := func(dst []float64) error {
				for i, r := range rows {
					copy(dst[i*features:(i+1)*features], r)
				}
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := reg.Acquire(f.name)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Server().Batcher().PredictStream(len(rows), out, fill); err != nil {
					b.Fatal(err)
				}
				reg.Release(h)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkRegistryDispatch isolates the registry's per-request overhead:
// one Acquire/Release round trip on a resident tenant — the only cost
// multi-tenant routing adds over the single-model server. Must be 0
// allocs/op and mutex-bound.
func BenchmarkRegistryDispatch(b *testing.B) {
	f := benchFixtures(b, 512)
	reg, err := New(1)
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Install(f.name, f.m, Spec{Options: benchOpts()}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := reg.Acquire(f.name)
		if err != nil {
			b.Fatal(err)
		}
		reg.Release(h)
	}
}

// BenchmarkRegistryWakePark prices an eviction cycle: two tenants
// alternating through a one-slot pool, so every Acquire parks one serving
// unit (batcher drain, scratch release) and builds the other (batcher,
// replica scratch lease). This is the cost the LRU policy pays per cold
// hit — and the reason hot tenants keep their residency.
func BenchmarkRegistryWakePark(b *testing.B) {
	f := benchFixtures(b, 512)
	reg, err := New(1)
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	ids := [2]string{"wp-a", "wp-b"}
	for _, id := range ids {
		if err := reg.Install(id, f.m, Spec{Options: benchOpts()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := reg.Acquire(ids[i%2])
		if err != nil {
			b.Fatal(err)
		}
		reg.Release(h)
	}
}
