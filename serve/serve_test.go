package serve

import (
	"sync"
	"testing"
	"time"

	disthd "repro"
)

// testState caches one dataset + two shape-compatible models (different
// training seeds, so they disagree on some inputs) across the package's
// tests.
type testState struct {
	train, test disthd.DataSplit
	a, b        *disthd.Model
}

var (
	stateOnce sync.Once
	state     testState
)

// fixtures trains the shared models once.
func fixtures(t *testing.T) *testState {
	t.Helper()
	stateOnce.Do(func() {
		train, test, err := disthd.SyntheticBenchmark("DIABETES", 0.05, 7)
		if err != nil {
			panic(err)
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = 64
		cfg.Iterations = 3
		cfg.Seed = 7
		a, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			panic(err)
		}
		cfg2 := cfg
		cfg2.Seed = 8
		b, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg2)
		if err != nil {
			panic(err)
		}
		state = testState{train: train, test: test, a: a, b: b}
	})
	return &state
}

func TestBatcherFlushOnSize(t *testing.T) {
	s := fixtures(t)
	const batch = 8
	// MaxDelay is effectively infinite: the only way the requests below can
	// complete is a size-triggered flush.
	b, err := NewBatcher(s.a, Options{MaxBatch: batch, MinFill: batch, MaxDelay: time.Hour, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	errs := make([]error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Predict(s.test.X[i%s.test.Len()])
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	snap := b.Stats()
	if snap.Requests != batch {
		t.Fatalf("requests=%d want %d", snap.Requests, batch)
	}
	// With an unreachable deadline the worker can only flush a full batch:
	// exactly one, with every row in it.
	if snap.Batches != 1 || snap.MeanBatchRows != batch {
		t.Fatalf("want one full batch of %d, got %+v", batch, snap)
	}
}

func TestBatcherFlushOnSizeExact(t *testing.T) {
	s := fixtures(t)
	const batch = 4
	b, err := NewBatcher(s.a, Options{MaxBatch: batch, MinFill: batch, MaxDelay: time.Hour, Replicas: 1, QueueDepth: batch})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Pre-fill the queue before the worker can drain it: park the worker on
	// a first wave, so the second wave is fully enqueued by the time the
	// worker returns — that wave must flush as exactly one full batch.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		for i := 0; i < batch; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := b.Predict(s.test.X[i%s.test.Len()]); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
	snap := b.Stats()
	if snap.Requests != 2*batch {
		t.Fatalf("requests=%d want %d", snap.Requests, 2*batch)
	}
	// 8 requests and an unreachable deadline force exactly two full
	// batches, whatever order the submitters ran in.
	if snap.Batches != 2 || snap.MeanBatchRows != batch {
		t.Fatalf("want two full batches of %d, got %+v", batch, snap)
	}
}

func TestBatcherFlushOnDeadline(t *testing.T) {
	s := fixtures(t)
	const delay = 2 * time.Millisecond
	b, err := NewBatcher(s.a, Options{MaxBatch: 64, MinFill: 64, MaxDelay: delay, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// With MinFill == MaxBatch a single request can never fill the batch;
	// only the deadline flush returns it — no earlier than MaxDelay.
	start := time.Now()
	class, err := b.Predict(s.test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if class < 0 || class >= s.train.Classes {
		t.Fatalf("class %d out of range", class)
	}
	elapsed := time.Since(start)
	if elapsed < delay {
		t.Fatalf("flushed after %v, before the %v deadline", elapsed, delay)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
	snap := b.Stats()
	if snap.Batches != 1 || snap.Requests != 1 {
		t.Fatalf("want exactly one single-row batch, got %+v", snap)
	}
	if snap.MeanBatchRows != 1 {
		t.Fatalf("occupancy %v for a lone request", snap.MeanBatchRows)
	}
}

// TestSwapUnderLoad hammers the batcher from many goroutines while the
// model is swapped back and forth mid-traffic. Every request must be
// answered without error — zero drops — and the counters must account for
// every submission. Run under -race this also proves the atomic hot-swap
// publishes safely.
func TestSwapUnderLoad(t *testing.T) {
	s := fixtures(t)
	b, err := NewBatcher(s.a, Options{MaxBatch: 16, MaxDelay: 200 * time.Microsecond, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers    = 16
		perWorker  = 50
		totalSwaps = 40
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				x := s.test.X[(w*perWorker+i)%s.test.Len()]
				class, err := b.Predict(x)
				if err != nil {
					errCh <- err
					return
				}
				if class < 0 || class >= s.train.Classes {
					t.Errorf("class %d out of range", class)
					return
				}
			}
		}(w)
	}

	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		models := [2]*disthd.Model{s.b, s.a}
		for i := 0; i < totalSwaps; i++ {
			if err := b.Swap(models[i%2]); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait()
	<-swapDone
	b.Close()
	close(errCh)
	for err := range errCh {
		t.Fatalf("request dropped or failed during swaps: %v", err)
	}
	snap := b.Stats()
	if snap.Requests != workers*perWorker {
		t.Fatalf("requests=%d want %d (dropped under swap load)", snap.Requests, workers*perWorker)
	}
	if snap.Errors != 0 {
		t.Fatalf("errors=%d want 0", snap.Errors)
	}
	if snap.Swaps != totalSwaps {
		t.Fatalf("swaps=%d want %d", snap.Swaps, totalSwaps)
	}
}

func TestSwapShapeMismatch(t *testing.T) {
	s := fixtures(t)
	sw, err := NewSwapper(s.a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 32 // different dimensionality than the fixture's 64
	cfg.Iterations = 2
	cfg.Seed = 9
	narrow, err := disthd.TrainWithConfig(s.train.X, s.train.Y, s.train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Swap(narrow); err == nil {
		t.Fatal("shape-mismatched swap accepted")
	}
	if err := sw.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	if got := sw.Swaps(); got != 0 {
		t.Fatalf("failed swaps counted: %d", got)
	}
	if sw.Current() != s.a {
		t.Fatal("failed swap replaced the model")
	}
}

func TestBatcherValidation(t *testing.T) {
	s := fixtures(t)
	b, err := NewBatcher(s.a, Options{MaxBatch: 4, MaxDelay: time.Millisecond, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-width input accepted")
	}
	if _, err := b.PredictBatch([][]float64{{1}}); err == nil {
		t.Fatal("wrong-width batch accepted")
	}
	// Oversized direct batches must be chunked, not rejected.
	rows := make([][]float64, 11)
	for i := range rows {
		rows[i] = s.test.X[i%s.test.Len()]
	}
	classes, err := b.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != len(rows) {
		t.Fatalf("got %d classes for %d rows", len(classes), len(rows))
	}
	// Direct-path predictions must agree with the model's own batch path.
	want, err := s.a.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("row %d: direct path %d, model path %d", i, classes[i], want[i])
		}
	}
	b.Close()
	if _, err := b.Predict(s.test.X[0]); err != ErrClosed {
		t.Fatalf("Predict after Close: %v, want ErrClosed", err)
	}
	if _, err := b.PredictBatch(rows); err != ErrClosed {
		t.Fatalf("PredictBatch after Close: %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherAgreesWithModel checks the coalesced path classifies exactly
// like the underlying model: batching is a throughput optimization, never
// an accuracy change.
func TestBatcherAgreesWithModel(t *testing.T) {
	s := fixtures(t)
	b, err := NewBatcher(s.a, Options{MaxBatch: 8, MaxDelay: 100 * time.Microsecond, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	n := s.test.Len()
	if n > 64 {
		n = 64
	}
	var wg sync.WaitGroup
	got := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := b.Predict(s.test.X[i])
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = c
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		want, err := s.a.Predict(s.test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("sample %d: batched %d, direct %d", i, got[i], want)
		}
	}
}
