package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	disthd "repro"
)

// benchModels lazily trains one paper-shaped model (UCIHAR-like: 561
// features) per hypervector dimensionality, shared across the serving
// benchmarks.
var (
	benchMu     sync.Mutex
	benchModels = map[int]*benchState{}
)

// benchState is one trained model plus query rows.
type benchState struct {
	m    *disthd.Model
	rows [][]float64
}

// benchFixtures returns the shared benchmark model for a dimensionality.
func benchFixtures(b *testing.B, dim int) *benchState {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchModels[dim]; ok {
		return s
	}
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.10, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = dim
	cfg.Iterations = 2
	cfg.Seed = 42
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := &benchState{m: m, rows: test.X}
	benchModels[dim] = s
	return s
}

// benchGrid is the (dimensionality, concurrency) sweep both serving
// benchmarks run, so their sub-benchmark names line up for comparison.
var benchGrid = []struct{ dim, conc int }{
	{512, 1}, {512, 32}, {512, 64},
	{1024, 32}, {1024, 64},
	{2048, 32}, {2048, 64},
}

// BenchmarkServePerRequest is the baseline the Batcher must beat: every
// concurrent caller runs Model.Predict itself — per-call encode buffers,
// matrix-vector encoding, no batching.
func BenchmarkServePerRequest(b *testing.B) {
	for _, g := range benchGrid {
		s := benchFixtures(b, g.dim)
		b.Run(fmt.Sprintf("D=%d/conc=%d", g.dim, g.conc), func(b *testing.B) {
			b.SetParallelism(g.conc)
			var i atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					x := s.rows[int(i.Add(1))%len(s.rows)]
					if _, err := s.m.Predict(x); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkServeBatched is the same closed-loop workload through the
// coalescing Batcher: single-request callers, batched-GEMM execution.
// MinFill is set to half the closed-loop population — the tuning a serving
// operator would pick for a known concurrency level.
func BenchmarkServeBatched(b *testing.B) {
	for _, g := range benchGrid {
		s := benchFixtures(b, g.dim)
		b.Run(fmt.Sprintf("D=%d/conc=%d", g.dim, g.conc), func(b *testing.B) {
			bat, err := NewBatcher(s.m, Options{
				MaxBatch: 64,
				MinFill:  minFill(g.conc),
				MaxDelay: 2 * time.Millisecond,
				Replicas: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer bat.Close()
			b.SetParallelism(g.conc)
			var i atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					x := s.rows[int(i.Add(1))%len(s.rows)]
					if _, err := bat.Predict(x); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			snap := bat.Stats()
			b.ReportMetric(snap.MeanBatchRows, "rows/batch")
		})
	}
}

// BenchmarkServeQuantizedBatch is the f32-vs-1bit comparison behind the
// PERF.md quantization table: the same 64-row /predict_batch workload
// through the Replica batch kernel — exactly what Batcher.PredictBatch
// runs per call — once on the float champion and once on its
// sign-quantized successor. Both tiers must report 0 allocs/op (the
// replica leases all scratch up front, packed included), and the 1-bit
// tier must deliver the XOR+popcount speedup that justifies the gate's
// tolerated accuracy loss; the gap widens with D as the batched GEMM's
// f32 traffic grows 32× faster than the packed words.
func BenchmarkServeQuantizedBatch(b *testing.B) {
	for _, dim := range []int{1024, 2048, 4096} {
		s := benchFixtures(b, dim)
		q, err := s.m.Quantize1Bit()
		if err != nil {
			b.Fatal(err)
		}
		rows := s.rows
		if len(rows) > 64 {
			rows = rows[:64]
		}
		for _, tier := range []struct {
			name string
			m    *disthd.Model
		}{{"f32", s.m}, {"1bit", q}} {
			b.Run(fmt.Sprintf("D=%d/%s", dim, tier.name), func(b *testing.B) {
				rep, err := tier.m.NewReplica(64)
				if err != nil {
					b.Fatal(err)
				}
				out := make([]int, len(rows))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rep.PredictBatch(tier.m, rows, out); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}

// minFill picks the linger threshold for a concurrency level: wait for
// half the closed-loop population, so the worker cannot starve itself by
// draining before the clients are rescheduled.
func minFill(conc int) int {
	if conc < 2 {
		return 1
	}
	return conc / 2
}

// BenchmarkServeBatchedWithLearner is BenchmarkServeBatched's D=512
// workload with a Learner attached and labeled feedback trickling in from
// a side goroutine — the configuration the drift-adaptive server runs in.
// The report must match the learner-free benchmark: the learner lives
// entirely off the flush path, so allocs/op stays 0 on the serving side.
func BenchmarkServeBatchedWithLearner(b *testing.B) {
	const conc = 32
	s := benchFixtures(b, 512)
	bat, err := NewBatcher(s.m, Options{
		MaxBatch: 64,
		MinFill:  minFill(conc),
		MaxDelay: 2 * time.Millisecond,
		Replicas: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bat.Close()
	learner, err := NewLearner(bat.Swapper(), LearnerOptions{
		RecentWindow: 32, MinRetrain: 64, Iterations: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := s.rows[i%len(s.rows)]
			if _, err := learner.Feed(x, i%s.m.Classes()); err != nil {
				b.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	b.SetParallelism(conc)
	var i atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			x := s.rows[int(i.Add(1))%len(s.rows)]
			if _, err := bat.Predict(x); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
	learner.Wait()
	snap := bat.Stats()
	b.ReportMetric(snap.MeanBatchRows, "rows/batch")
}
