package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
)

// LearnerOptions configures a Learner. The zero value picks the defaults
// documented on each field (window sizes default through
// disthd.OnlineConfig).
type LearnerOptions struct {
	// Window bounds the labeled-feedback buffer retrains draw from
	// (default 512).
	Window int
	// Reservoir keeps a uniform sample of the whole feedback stream instead
	// of a sliding window of the most recent samples.
	Reservoir bool
	// RecentWindow is the span of the windowed accuracy estimate
	// (default 64).
	RecentWindow int
	// DriftThreshold flags drift when windowed accuracy falls this far
	// below the post-(re)bind baseline. The zero value selects the default
	// 0.15; a literal 0 cannot be expressed — use a small positive value
	// (e.g. 0.001) for a hair-trigger detector.
	DriftThreshold float64
	// MinRetrain is the smallest window a retrain may run on (default
	// RecentWindow): retraining on a handful of samples would overfit the
	// class hypervectors to them.
	MinRetrain int
	// Iterations is the warm-retrain budget in pipeline rounds (default 5).
	Iterations int
	// LearningRate overrides the model's training-time η when positive.
	LearningRate float64
	// Auto starts a background retrain whenever feedback ingestion detects
	// drift (subject to MinRetrain and Cooldown). Without it, retrains run
	// only on explicit Retrain calls (the /retrain endpoint).
	Auto bool
	// Cooldown is the minimum gap between drift-triggered retrains
	// (default 10s), bounding retrain churn when accuracy stays depressed —
	// e.g. while drift outpaces what the window can recover.
	Cooldown time.Duration
	// Seed drives the retrain and reservoir streams.
	Seed uint64
}

// withDefaults fills unset fields.
func (o LearnerOptions) withDefaults() LearnerOptions {
	if o.RecentWindow == 0 {
		o.RecentWindow = 64
	}
	if o.MinRetrain == 0 {
		o.MinRetrain = o.RecentWindow
	}
	if o.Cooldown == 0 {
		o.Cooldown = 10 * time.Second
	}
	return o
}

// FeedResult reports what one feedback ingestion observed and triggered.
type FeedResult struct {
	// Correct is whether the served model predicted the feedback label.
	Correct bool `json:"correct"`
	// WindowAccuracy is the accuracy over the recent observation window.
	WindowAccuracy float64 `json:"window_accuracy"`
	// Drift is whether the learner currently flags distribution drift.
	Drift bool `json:"drift"`
	// RetrainStarted is whether this ingestion kicked off a background
	// retrain (Auto mode only).
	RetrainStarted bool `json:"retrain_started"`
}

// Learner wires a disthd.OnlineLearner into the serving stack: labeled
// feedback arrives through Feed (the /learn endpoint), retraining runs in a
// background goroutine strictly off the request path, and each successor
// model is published through the Batcher's Swapper — in-flight batches
// finish on the old weights, later ones classify with the new. The serving
// hot path is untouched: a Learner costs nothing until feedback arrives.
//
// Concurrency: Feed and Retrain may be called from any number of
// goroutines; the learner state is guarded by one mutex, while the retrain
// itself (the expensive part) runs outside it on a window snapshot. At most
// one retrain is in flight at a time.
type Learner struct {
	sw   *Swapper
	opts LearnerOptions

	mu sync.Mutex // guards ol
	ol *disthd.OnlineLearner

	retraining   atomic.Bool
	feedback     atomic.Uint64
	drifts       atomic.Uint64
	attempts     atomic.Uint64
	retrains     atomic.Uint64
	retrainErrs  atomic.Uint64
	lastRetrain  atomic.Int64 // wall-clock ns of the last completed retrain
	lastDuration atomic.Int64 // duration ns of the last completed retrain
	lastAuto     atomic.Int64 // wall-clock ns of the last auto trigger
	wg           sync.WaitGroup
}

// NewLearner builds a Learner feeding successors into sw, starting from the
// model sw currently serves.
func NewLearner(sw *Swapper, opts LearnerOptions) (*Learner, error) {
	if sw == nil {
		return nil, fmt.Errorf("serve: NewLearner needs a swapper")
	}
	o := opts.withDefaults()
	ol, err := disthd.NewOnlineLearner(sw.Current(), disthd.OnlineConfig{
		Window:         o.Window,
		Reservoir:      o.Reservoir,
		RecentWindow:   o.RecentWindow,
		DriftThreshold: o.DriftThreshold,
		Retrain: disthd.RetrainConfig{
			Iterations:   o.Iterations,
			LearningRate: o.LearningRate,
			Seed:         o.Seed,
		},
		Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Learner{sw: sw, opts: o, ol: ol}, nil
}

// Feed ingests one labeled feedback sample: the served model's verdict
// feeds the windowed accuracy and drift detector, and the sample joins the
// retrain window. In Auto mode a detected drift starts a background retrain
// (at most one in flight, rate-limited by Cooldown).
func (l *Learner) Feed(x []float64, label int) (FeedResult, error) {
	l.mu.Lock()
	// An external /swap may have published a model the learner has not seen;
	// rebind so feedback is judged against what is actually serving.
	if cur := l.sw.Current(); cur != l.ol.Model() {
		if err := l.ol.SetModel(cur); err != nil {
			l.mu.Unlock()
			return FeedResult{}, err
		}
	}
	correct, err := l.ol.Observe(x, label)
	if err != nil {
		l.mu.Unlock()
		return FeedResult{}, err
	}
	res := FeedResult{
		Correct:        correct,
		WindowAccuracy: l.ol.WindowAccuracy(),
		Drift:          l.ol.DriftDetected(),
		RetrainStarted: false,
	}
	windowLen := l.ol.WindowLen()
	l.mu.Unlock()

	l.feedback.Add(1)
	if res.Drift {
		l.drifts.Add(1)
		if l.opts.Auto && windowLen >= l.opts.MinRetrain {
			res.RetrainStarted = l.startAutoRetrain()
		}
	}
	return res, nil
}

// startAutoRetrain is startRetrain behind the drift cooldown. The cooldown
// clock only advances when a retrain actually launches — a trigger that
// loses to an in-flight retrain does not consume the cooldown, so the next
// drifted Feed after that retrain finishes can fire immediately.
func (l *Learner) startAutoRetrain() bool {
	now := time.Now().UnixNano()
	if now-l.lastAuto.Load() < l.opts.Cooldown.Nanoseconds() {
		return false
	}
	if !l.startRetrain() {
		return false
	}
	l.lastAuto.Store(now)
	return true
}

// Retrain starts a background retrain over the current window. It returns
// false without starting one when a retrain is already in flight or the
// window holds fewer than MinRetrain samples.
func (l *Learner) Retrain() (started bool, err error) {
	l.mu.Lock()
	n := l.ol.WindowLen()
	l.mu.Unlock()
	if n < l.opts.MinRetrain {
		return false, fmt.Errorf("serve: retrain window holds %d samples, need %d", n, l.opts.MinRetrain)
	}
	return l.startRetrain(), nil
}

// startRetrain claims the single retrain slot and launches the worker.
func (l *Learner) startRetrain() bool {
	if !l.retraining.CompareAndSwap(false, true) {
		return false
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer l.retraining.Store(false)
		l.runRetrain()
	}()
	return true
}

// runRetrain executes one retrain: snapshot the window and the serving
// model under the lock, train the successor outside it, publish through the
// Swapper, then rebind the learner. Requests keep flowing the whole time.
func (l *Learner) runRetrain() {
	l.mu.Lock()
	X, y := l.ol.Window()
	cur := l.sw.Current()
	attempt := l.attempts.Add(1) - 1
	l.mu.Unlock()
	if len(X) == 0 {
		l.retrainErrs.Add(1)
		return
	}

	start := time.Now()
	// Per-attempt seed derivation is shared with OnlineLearner.Retrain
	// (RetrainConfig.WithAttempt): repeated retrains explore fresh
	// regeneration draws, deterministically.
	next, err := cur.Retrain(X, y, disthd.RetrainConfig{
		Iterations:   l.opts.Iterations,
		LearningRate: l.opts.LearningRate,
		Seed:         l.opts.Seed,
	}.WithAttempt(attempt))
	if err != nil {
		l.retrainErrs.Add(1)
		return
	}
	if err := l.sw.Swap(next); err != nil {
		// Shape mismatches cannot happen (Retrain preserves shape); a
		// failure here means the swapper was closed around us.
		l.retrainErrs.Add(1)
		return
	}
	l.mu.Lock()
	// Feed may already have rebound to `next` via sw.Current; SetModel is
	// idempotent for the same pointer apart from resetting the baseline,
	// which is wanted either way.
	if err := l.ol.SetModel(next); err != nil {
		l.mu.Unlock()
		l.retrainErrs.Add(1)
		return
	}
	l.mu.Unlock()
	l.retrains.Add(1)
	l.lastDuration.Store(int64(time.Since(start)))
	l.lastRetrain.Store(time.Now().UnixNano())
}

// Retraining reports whether a retrain is in flight right now.
func (l *Learner) Retraining() bool { return l.retraining.Load() }

// Wait blocks until no retrain is in flight — a test and benchmark hook;
// production callers never need it.
func (l *Learner) Wait() { l.wg.Wait() }

// LearnerSnapshot is a point-in-time copy of the learner gauges, embedded
// in the /stats payload when a learner is attached.
type LearnerSnapshot struct {
	// Feedback counts labeled samples ingested through Feed.
	Feedback uint64 `json:"feedback"`
	// WindowLen is how many samples the retrain window holds.
	WindowLen int `json:"window_len"`
	// WindowAccuracy is the served model's accuracy over the recent
	// observation window (0 before any feedback).
	WindowAccuracy float64 `json:"window_accuracy"`
	// BaselineAccuracy is the accuracy frozen right after the serving model
	// was last (re)bound (0 before any feedback).
	BaselineAccuracy float64 `json:"baseline_accuracy"`
	// Drift is whether drift is currently flagged.
	Drift bool `json:"drift"`
	// DriftEvents counts feedback ingestions that observed a drift flag.
	DriftEvents uint64 `json:"drift_events"`
	// Retraining is whether a background retrain is in flight.
	Retraining bool `json:"retraining"`
	// Retrains counts completed (published) retrains.
	Retrains uint64 `json:"retrains"`
	// RetrainErrors counts retrains that failed before publishing.
	RetrainErrors uint64 `json:"retrain_errors"`
	// LastRetrainMs is the duration of the last completed retrain.
	LastRetrainMs float64 `json:"last_retrain_ms"`
	// LastRetrainUnix is the wall-clock second the last retrain published
	// (0 when none has).
	LastRetrainUnix int64 `json:"last_retrain_unix"`
}

// Snapshot returns the current learner gauges.
func (l *Learner) Snapshot() LearnerSnapshot {
	l.mu.Lock()
	winLen := l.ol.WindowLen()
	winAcc := l.ol.WindowAccuracy()
	baseAcc := l.ol.BaselineAccuracy()
	drift := l.ol.DriftDetected()
	l.mu.Unlock()
	if winAcc != winAcc { // NaN before any feedback: JSON needs a number
		winAcc = 0
	}
	if baseAcc != baseAcc {
		baseAcc = 0
	}
	var lastUnix int64
	if ns := l.lastRetrain.Load(); ns > 0 {
		lastUnix = ns / 1e9
	}
	return LearnerSnapshot{
		Feedback:         l.feedback.Load(),
		WindowLen:        winLen,
		WindowAccuracy:   winAcc,
		BaselineAccuracy: baseAcc,
		Drift:            drift,
		DriftEvents:      l.drifts.Load(),
		Retraining:       l.retraining.Load(),
		Retrains:         l.retrains.Load(),
		RetrainErrors:    l.retrainErrs.Load(),
		LastRetrainMs:    float64(l.lastDuration.Load()) / 1e6,
		LastRetrainUnix:  lastUnix,
	}
}
