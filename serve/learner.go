package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
)

// LearnerOptions configures a Learner. The zero value picks the defaults
// documented on each field (window sizes default through
// disthd.OnlineConfig).
type LearnerOptions struct {
	// Window bounds the labeled-feedback buffer retrains draw from
	// (default 512).
	Window int
	// Reservoir keeps a uniform sample of the whole feedback stream instead
	// of a sliding window of the most recent samples.
	Reservoir bool
	// RecentWindow is the span of the windowed accuracy estimate
	// (default 64).
	RecentWindow int
	// DriftThreshold flags drift when windowed accuracy falls this far
	// below the post-(re)bind baseline. The zero value selects the default
	// 0.15; a literal 0 cannot be expressed — use a small positive value
	// (e.g. 0.001) for a hair-trigger detector.
	DriftThreshold float64
	// MinRetrain is the smallest window a retrain may run on (default
	// RecentWindow): retraining on a handful of samples would overfit the
	// class hypervectors to them.
	MinRetrain int
	// Iterations is the warm-retrain budget in pipeline rounds (default 5).
	Iterations int
	// LearningRate overrides the model's training-time η when positive.
	LearningRate float64
	// HoldoutFraction is the fraction of the feedback window held out from
	// retrain data for the champion/challenger gate (default 0.20 via
	// disthd.OnlineConfig; negative disables the holdout — the gate then
	// has no evidence and publishes unconditionally).
	HoldoutFraction float64
	// GateMargin is the holdout-accuracy lead a challenger needs to publish
	// (disthd.GateConfig.MinMargin; default 0 — a tie publishes).
	GateMargin float64
	// GateDisabled publishes every completed retrain unconditionally, the
	// pre-gate behavior — the control arm `hdbench -driftgen` measures the
	// gate against. The window is then not split: retrains train on every
	// sample.
	GateDisabled bool
	// Auto starts a background retrain whenever feedback ingestion detects
	// drift (subject to MinRetrain and Cooldown). Without it, retrains run
	// only on explicit Retrain calls (the /retrain endpoint).
	Auto bool
	// Cooldown is the minimum gap between drift-triggered retrains
	// (default 10s), bounding retrain churn when accuracy stays depressed —
	// e.g. while drift outpaces what the window can recover.
	Cooldown time.Duration
	// StallDeadline is how long a background retrain may run before
	// Health reports it wedged (default 2m). A wedged retrain holds the
	// single retrain slot forever, so the learner can no longer adapt —
	// exactly what a cluster coordinator's health probes need to see.
	StallDeadline time.Duration
	// Seed drives the retrain and reservoir streams.
	Seed uint64
}

// withDefaults fills unset fields.
func (o LearnerOptions) withDefaults() LearnerOptions {
	if o.RecentWindow == 0 {
		o.RecentWindow = 64
	}
	if o.MinRetrain == 0 {
		o.MinRetrain = o.RecentWindow
	}
	if o.Cooldown == 0 {
		o.Cooldown = 10 * time.Second
	}
	if o.StallDeadline == 0 {
		o.StallDeadline = 2 * time.Minute
	}
	return o
}

// FeedResult reports what one feedback ingestion observed and triggered.
type FeedResult struct {
	// Correct is whether the served model predicted the feedback label.
	Correct bool `json:"correct"`
	// WindowAccuracy is the accuracy over the recent observation window.
	WindowAccuracy float64 `json:"window_accuracy"`
	// Drift is whether the learner currently flags distribution drift.
	Drift bool `json:"drift"`
	// RetrainStarted is whether this ingestion kicked off a background
	// retrain (Auto mode only).
	RetrainStarted bool `json:"retrain_started"`
}

// Learner wires a disthd.OnlineLearner into the serving stack: labeled
// feedback arrives through Feed (the /learn endpoint), retraining runs in a
// background goroutine strictly off the request path, and each successor
// model is published through the Batcher's Swapper — in-flight batches
// finish on the old weights, later ones classify with the new. The serving
// hot path is untouched: a Learner costs nothing until feedback arrives.
//
// Every retrain (drift-triggered or /retrain-forced) routes through a
// champion/challenger gate unless GateDisabled: the challenger trains on
// the window's training slice with a drift-severity-scaled budget, is
// scored against the serving incumbent on the stratified holdout
// (disthd.Gate), and publishes only on a passing margin. A rejected
// challenger is dropped — counted in the gate gauges and reported in
// /stats with its losing margin — and the incumbent keeps serving.
// /retrain?force=1 bypasses the verdict (the evaluation still runs and is
// reported).
//
// Concurrency: Feed and Retrain may be called from any number of
// goroutines; the learner state is guarded by one mutex, while the retrain
// itself (the expensive part) runs outside it on a window snapshot. At most
// one retrain is in flight at a time.
type Learner struct {
	sw   *Swapper
	opts LearnerOptions
	gate *disthd.Gate // nil when GateDisabled

	mu sync.Mutex // guards ol
	ol *disthd.OnlineLearner

	retraining   atomic.Bool
	retrainStart atomic.Int64 // wall-clock ns the in-flight retrain began, 0 when none
	feedback     atomic.Uint64
	drifts       atomic.Uint64
	attempts     atomic.Uint64
	retrains     atomic.Uint64
	retrainErrs  atomic.Uint64
	gateAccepts  atomic.Uint64
	gateRejects  atomic.Uint64
	rejectAt     atomic.Uint64              // 1 + feedback count at the last rejection
	lastGate     atomic.Pointer[GateResult] // last gate evaluation, any outcome
	lastReject   atomic.Pointer[GateResult] // last rejected challenger
	lastRetrain  atomic.Int64               // wall-clock ns of the last completed retrain
	lastDuration atomic.Int64               // duration ns of the last completed retrain
	lastAuto     atomic.Int64               // wall-clock ns of the last auto trigger
	wg           sync.WaitGroup
}

// onlineConfig maps resolved options onto the disthd.OnlineConfig the
// wrapped OnlineLearner runs under — the single definition NewLearner
// and RestoreLearner share, so a restored learner always rebuilds under
// exactly the configuration its snapshot was taken under.
func (o LearnerOptions) onlineConfig() disthd.OnlineConfig {
	holdout := o.HoldoutFraction
	if o.GateDisabled {
		// No gate, no reason to starve the retrain of holdout samples.
		holdout = -1
	}
	return disthd.OnlineConfig{
		Window:          o.Window,
		Reservoir:       o.Reservoir,
		RecentWindow:    o.RecentWindow,
		DriftThreshold:  o.DriftThreshold,
		HoldoutFraction: holdout,
		Retrain: disthd.RetrainConfig{
			Iterations:   o.Iterations,
			LearningRate: o.LearningRate,
			Seed:         o.Seed,
		},
		Seed: o.Seed,
	}
}

// NewLearner builds a Learner feeding successors into sw, starting from the
// model sw currently serves.
func NewLearner(sw *Swapper, opts LearnerOptions) (*Learner, error) {
	if sw == nil {
		return nil, fmt.Errorf("serve: NewLearner needs a swapper")
	}
	o := opts.withDefaults()
	ol, err := disthd.NewOnlineLearner(sw.Current(), o.onlineConfig())
	if err != nil {
		return nil, err
	}
	l := &Learner{sw: sw, opts: o, ol: ol}
	if !o.GateDisabled {
		l.gate = disthd.NewGate(disthd.GateConfig{MinMargin: o.GateMargin})
	}
	return l, nil
}

// LearnerState is a portable snapshot of a Learner: the wrapped
// OnlineLearner's deep state (feedback window, drift baseline, accuracy
// rings, counters) plus the serving-side gauges — retrain/gate
// counters, backoff position, and the last gate verdicts. Export takes
// one and RestoreLearner rebuilds a Learner from it over a fresh
// Swapper, which is how serve/registry makes tenant eviction lossless
// for learning tenants. Gauges is the frozen /stats view at export
// time, so a parked tenant's stats endpoint can keep reporting the
// learner without holding a live serving unit.
type LearnerState struct {
	// Online is the wrapped OnlineLearner's deep snapshot.
	Online *disthd.LearnerState
	// Gauges is the LearnerSnapshot frozen at export time — what /stats
	// reported the instant the learner was parked.
	Gauges LearnerSnapshot
	// Feedback through GateRejects restore the serving-side counters.
	Feedback uint64
	// Drifts counts drift-flagged ingestions.
	Drifts uint64
	// Attempts counts retrain attempts (seed derivation).
	Attempts uint64
	// Retrains counts published retrains.
	Retrains uint64
	// RetrainErrors counts failed retrains.
	RetrainErrors uint64
	// GateAccepts counts published challengers.
	GateAccepts uint64
	// GateRejects counts dropped challengers.
	GateRejects uint64
	// RejectAt is 1 + the feedback count at the last rejection (the
	// rejection-backoff anchor; 0 when no challenger was ever rejected).
	RejectAt uint64
	// LastGate and LastRejection are the most recent gate verdicts.
	LastGate *GateResult
	// LastRejection is the most recent rejected challenger's verdict.
	LastRejection *GateResult
	// LastRetrainNS, LastDurationNS, and LastAutoNS restore the retrain
	// wall-clock gauges (UnixNano / duration ns).
	LastRetrainNS int64
	// LastDurationNS is the last completed retrain's duration in ns.
	LastDurationNS int64
	// LastAutoNS is the wall-clock ns of the last auto retrain trigger.
	LastAutoNS int64
}

// Export settles the learner and snapshots it: any in-flight background
// retrain is waited out first — its gated successor publishes through
// the (still live) Swapper or is rejected and counted, so a snapshot
// never races a publish — then the full state is deep-copied. The
// caller must guarantee no concurrent Feed/Retrain calls (serve/registry
// parks only idle tenants, which guarantees exactly that); Export is a
// park-time operation, never a request-path one — it copies the whole
// feedback window.
func (l *Learner) Export() *LearnerState {
	l.Wait()
	l.mu.Lock()
	online := l.ol.Export()
	l.mu.Unlock()
	st := &LearnerState{
		Online:         online,
		Feedback:       l.feedback.Load(),
		Drifts:         l.drifts.Load(),
		Attempts:       l.attempts.Load(),
		Retrains:       l.retrains.Load(),
		RetrainErrors:  l.retrainErrs.Load(),
		GateAccepts:    l.gateAccepts.Load(),
		GateRejects:    l.gateRejects.Load(),
		RejectAt:       l.rejectAt.Load(),
		LastGate:       l.lastGate.Load(),
		LastRejection:  l.lastReject.Load(),
		LastRetrainNS:  l.lastRetrain.Load(),
		LastDurationNS: l.lastDuration.Load(),
		LastAutoNS:     l.lastAuto.Load(),
	}
	st.Gauges = l.Snapshot()
	return st
}

// RestoreLearner rebuilds a Learner from an Export snapshot over sw,
// continuing exactly where the exported learner stopped: feedback
// window, drift baseline, accuracy rings, retrain/gate counters, and
// backoff position all carry over. opts must match the options the
// snapshot was taken under (the registry reuses the tenant's Spec, which
// guarantees it); sw should currently serve the model the exported
// learner was bound to — the restored baseline describes that model.
func RestoreLearner(sw *Swapper, opts LearnerOptions, st *LearnerState) (*Learner, error) {
	if sw == nil {
		return nil, fmt.Errorf("serve: RestoreLearner needs a swapper")
	}
	if st == nil || st.Online == nil {
		return nil, fmt.Errorf("serve: RestoreLearner needs an Export snapshot")
	}
	o := opts.withDefaults()
	ol, err := disthd.NewOnlineLearnerFromState(sw.Current(), o.onlineConfig(), st.Online)
	if err != nil {
		return nil, err
	}
	l := &Learner{sw: sw, opts: o, ol: ol}
	if !o.GateDisabled {
		l.gate = disthd.NewGate(disthd.GateConfig{MinMargin: o.GateMargin})
	}
	l.feedback.Store(st.Feedback)
	l.drifts.Store(st.Drifts)
	l.attempts.Store(st.Attempts)
	l.retrains.Store(st.Retrains)
	l.retrainErrs.Store(st.RetrainErrors)
	l.gateAccepts.Store(st.GateAccepts)
	l.gateRejects.Store(st.GateRejects)
	l.rejectAt.Store(st.RejectAt)
	l.lastGate.Store(st.LastGate)
	l.lastReject.Store(st.LastRejection)
	l.lastRetrain.Store(st.LastRetrainNS)
	l.lastDuration.Store(st.LastDurationNS)
	l.lastAuto.Store(st.LastAutoNS)
	return l, nil
}

// Feed ingests one labeled feedback sample: the served model's verdict
// feeds the windowed accuracy and drift detector, and the sample joins the
// retrain window. In Auto mode a detected drift starts a background retrain
// (at most one in flight, rate-limited by Cooldown).
func (l *Learner) Feed(x []float64, label int) (FeedResult, error) {
	l.mu.Lock()
	// An external /swap may have published a model the learner has not seen;
	// rebind so feedback is judged against what is actually serving.
	if cur := l.sw.Current(); cur != l.ol.Model() {
		if err := l.ol.SetModel(cur); err != nil {
			l.mu.Unlock()
			return FeedResult{}, err
		}
	}
	correct, err := l.ol.Observe(x, label)
	if err != nil {
		l.mu.Unlock()
		return FeedResult{}, err
	}
	res := FeedResult{
		Correct:        correct,
		WindowAccuracy: l.ol.WindowAccuracy(),
		Drift:          l.ol.DriftDetected(),
		RetrainStarted: false,
	}
	windowLen := l.ol.WindowLen()
	l.mu.Unlock()

	l.feedback.Add(1)
	if res.Drift {
		l.drifts.Add(1)
		if l.opts.Auto && windowLen >= l.opts.MinRetrain {
			res.RetrainStarted = l.startAutoRetrain()
		}
	}
	return res, nil
}

// startAutoRetrain is startRetrain behind the drift cooldown. The cooldown
// clock only advances when a retrain actually launches — a trigger that
// loses to an in-flight retrain does not consume the cooldown, so the next
// drifted Feed after that retrain finishes can fire immediately.
func (l *Learner) startAutoRetrain() bool {
	// Rejection backoff: a rejected challenger means the window's evidence
	// does not support publishing — retrying before that evidence has
	// materially changed only burns retrain cycles re-judging the same
	// window (and, on a small host, steals them from serving). Wait for a
	// full RecentWindow of fresh feedback after a rejection (the windowed
	// accuracy estimate has then completely turned over) before the next
	// drift-triggered attempt; a manual /retrain is never held back.
	if l.inRejectionBackoff() {
		return false
	}
	// A quantized champion is frozen: retraining it is an error by
	// construction (disthd.Model.Retrain refuses), so a drift flag while
	// the 1-bit tier serves must not burn the retrain slot. The operator
	// swaps the f32 champion back in (or retrains it out of band) first.
	if l.sw.Current().Quantized() {
		return false
	}
	now := time.Now().UnixNano()
	if now-l.lastAuto.Load() < l.opts.Cooldown.Nanoseconds() {
		return false
	}
	if !l.startRetrain(false) {
		return false
	}
	l.lastAuto.Store(now)
	return true
}

// Retrain starts a background retrain over the current window. It returns
// false without starting one when a retrain is already in flight or the
// window holds fewer than MinRetrain samples. force publishes the
// challenger even when the gate's verdict is reject — the operator's
// escape hatch (/retrain?force=1) for when the holdout itself is suspect.
func (l *Learner) Retrain(force bool) (started bool, err error) {
	if l.sw.Current().Quantized() {
		return false, fmt.Errorf("serve: the serving model is 1-bit quantized and frozen; swap the f32 champion back in to retrain")
	}
	l.mu.Lock()
	n := l.ol.WindowLen()
	l.mu.Unlock()
	if n < l.opts.MinRetrain {
		return false, fmt.Errorf("serve: retrain window holds %d samples, need %d", n, l.opts.MinRetrain)
	}
	return l.startRetrain(force), nil
}

// GateQuantized judges a 1-bit quantized challenger against the f32
// champion on the learner's current holdout slice, tolerating up to
// -margin of accuracy regression (quantization trades a little accuracy
// for a large throughput win, so the natural margin is slightly negative;
// a retrain gate would demand ≥ 0). The verdict is advisory: the caller
// (Server.handleQuantize) decides whether to publish. An empty holdout
// publishes by default — there is then no evidence to reject on.
func (l *Learner) GateQuantized(champion, challenger *disthd.Model, margin float64) (*GateResult, error) {
	l.mu.Lock()
	_, _, holdX, holdY := l.ol.SplitWindow()
	l.mu.Unlock()
	v, err := disthd.NewGate(disthd.GateConfig{MinMargin: margin}).Evaluate(champion, challenger, holdX, holdY)
	if err != nil {
		return nil, err
	}
	return &GateResult{
		Passed:             v.Publish,
		ChampionAccuracy:   v.ChampionAccuracy,
		ChallengerAccuracy: v.ChallengerAccuracy,
		Margin:             v.Margin,
		HoldoutSize:        v.HoldoutSize,
	}, nil
}

// startRetrain claims the single retrain slot and launches the worker.
func (l *Learner) startRetrain(force bool) bool {
	if !l.retraining.CompareAndSwap(false, true) {
		return false
	}
	l.retrainStart.Store(time.Now().UnixNano())
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer l.retraining.Store(false)
		defer l.retrainStart.Store(0)
		l.runRetrain(force)
	}()
	return true
}

// inRejectionBackoff reports whether the learner is still sitting out the
// post-rejection backoff: a RecentWindow of fresh feedback must arrive
// after a rejected challenger before the next auto retrain.
func (l *Learner) inRejectionBackoff() bool {
	at := l.rejectAt.Load()
	return at > 0 && l.feedback.Load()-(at-1) < uint64(l.opts.RecentWindow)
}

// LearnerHealth is the learner-side health verdict /healthz folds in: the
// learner is Degraded while it cannot adapt — sitting out the
// post-rejection backoff, or with a background retrain wedged past
// StallDeadline (the single retrain slot is then held forever).
type LearnerHealth struct {
	// Degraded is the overall verdict: any reason below.
	Degraded bool `json:"degraded"`
	// RejectionBackoff is whether a rejected challenger has the auto
	// retrain sitting out fresh feedback.
	RejectionBackoff bool `json:"rejection_backoff"`
	// RetrainWedged is whether the in-flight retrain has exceeded
	// StallDeadline.
	RetrainWedged bool `json:"retrain_wedged"`
	// Reasons names each active degradation for the /healthz payload.
	Reasons []string `json:"reasons,omitempty"`
}

// Health reports whether the learner is currently impaired. It never
// blocks on the learner mutex, so a wedged retrain cannot wedge the
// health probe that is supposed to detect it.
func (l *Learner) Health() LearnerHealth {
	var h LearnerHealth
	if l.inRejectionBackoff() {
		h.RejectionBackoff = true
		h.Reasons = append(h.Reasons, "learner in post-rejection backoff")
	}
	if start := l.retrainStart.Load(); start > 0 && l.retraining.Load() {
		if age := time.Since(time.Unix(0, start)); age > l.opts.StallDeadline {
			h.RetrainWedged = true
			h.Reasons = append(h.Reasons,
				fmt.Sprintf("retrain wedged: running %s, stall deadline %s", age.Round(time.Second), l.opts.StallDeadline))
		}
	}
	h.Degraded = h.RejectionBackoff || h.RetrainWedged
	return h
}

// runRetrain executes one retrain: snapshot the window split and the
// serving model under the lock, train the challenger outside it on the
// training slice (severity-scaled budget), judge it against the incumbent
// on the holdout, and only on a passing (or forced) verdict publish through
// the Swapper and rebind the learner. Requests keep flowing the whole time;
// a rejected challenger is dropped without ever touching the Swapper.
func (l *Learner) runRetrain(force bool) {
	l.mu.Lock()
	trainX, trainY, holdX, holdY := l.ol.SplitWindow()
	severity := l.ol.DriftReport().Severity
	threshold := l.ol.Config().DriftThreshold
	cur := l.sw.Current()
	attempt := l.attempts.Add(1) - 1
	l.mu.Unlock()
	if len(trainX) == 0 {
		l.retrainErrs.Add(1)
		return
	}

	start := time.Now()
	// Per-attempt seed derivation and severity scaling are shared with
	// OnlineLearner.Retrain (RetrainConfig.WithAttempt / ScaleForSeverity):
	// repeated retrains explore fresh regeneration draws deterministically,
	// and a deeper accuracy collapse earns a deeper rerun.
	rc := disthd.RetrainConfig{
		Iterations:   l.opts.Iterations,
		LearningRate: l.opts.LearningRate,
		Seed:         l.opts.Seed,
	}.WithAttempt(attempt).ScaleForSeverity(severity, threshold)
	next, err := cur.Retrain(trainX, trainY, rc)
	if err != nil {
		l.retrainErrs.Add(1)
		return
	}
	var res *GateResult
	if l.gate != nil {
		v, err := l.gate.Evaluate(cur, next, holdX, holdY)
		if err != nil {
			l.retrainErrs.Add(1)
			return
		}
		res = &GateResult{
			Passed:             v.Publish,
			Forced:             force,
			ChampionAccuracy:   v.ChampionAccuracy,
			ChallengerAccuracy: v.ChallengerAccuracy,
			Margin:             v.Margin,
			HoldoutSize:        v.HoldoutSize,
		}
		if !v.Publish && !force {
			l.lastGate.Store(res)
			l.gateRejects.Add(1)
			l.lastReject.Store(res)
			l.rejectAt.Store(l.feedback.Load() + 1)
			return
		}
	}
	if !l.publish(next) {
		// The challenger never served: record the evaluation with
		// Published false so gate_accepts keeps matching challengers that
		// actually went live.
		if res != nil {
			l.lastGate.Store(res)
		}
		return
	}
	if res != nil {
		res.Published = true
		l.lastGate.Store(res)
		l.gateAccepts.Add(1)
	}
	// The retrain gauges are recorded at the stage-one publish: the
	// successor is serving from this moment, whatever becomes of the refit
	// upgrade below (a failed refit adds a retrain error but cannot
	// un-publish the challenger or corrupt the completion record).
	l.retrains.Add(1)
	l.lastDuration.Store(int64(time.Since(start)))
	l.lastRetrain.Store(time.Now().UnixNano())
	if l.gate != nil && len(holdX) > 0 {
		// The accepted challenger is already serving; now refit the
		// incumbent on the FULL window — holdout included, identical budget
		// and seed, window order — and publish the upgrade behind it. The
		// judged challenger proved the window trustworthy, and the deployed
		// model should not forfeit the held-out share of its training data
		// (the classic train/validate-then-refit pattern; see
		// disthd.OnlineLearner.RetrainGated). Training the refit exactly as
		// an ungated retrain would also means the gate changes WHICH
		// retrains publish, never what a published retrain looks like.
		// Publishing the challenger first keeps the gate from costing
		// adaptation latency: traffic runs on adapted weights while the
		// refit trains. The full window is snapshotted only now — rejected
		// retrains never pay for the copy — so the refit trains on the
		// freshest window (identical to the split snapshot whenever no
		// feedback arrived in between, as in the deterministic benchmark).
		l.mu.Lock()
		fullX, fullY := l.ol.Window()
		l.mu.Unlock()
		full, err := cur.Retrain(fullX, fullY, rc)
		if err != nil {
			l.retrainErrs.Add(1)
			return
		}
		if !l.publishUpgrade(next, full) {
			return
		}
		// Refresh the gauges so they cover the upgrade too.
		l.lastDuration.Store(int64(time.Since(start)))
		l.lastRetrain.Store(time.Now().UnixNano())
	}
}

// publishUpgrade swaps the full-window refit in behind the stage-one
// challenger, but ONLY if that challenger is still what is serving
// (Swapper.SwapIfCurrent — a compare-and-swap, so even an operator /swap
// landing in the same instant wins): silently replacing an externally
// published model (and inheriting drift state measured against it) would
// discard an acknowledged operator action and corrupt the baseline. An
// abandoned upgrade is not an error; the accepted challenger already
// served its purpose.
func (l *Learner) publishUpgrade(expected, full *disthd.Model) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	swapped, err := l.sw.SwapIfCurrent(expected, full)
	if err != nil {
		l.retrainErrs.Add(1)
		return false
	}
	if !swapped {
		return false
	}
	if err := l.ol.UpgradeModel(full); err != nil {
		l.retrainErrs.Add(1)
		return false
	}
	return true
}

// publish swaps next into serving and rebinds the learner to it (resetting
// the accuracy baseline — the successor behaves differently from what the
// estimates measured), atomically with respect to Feed (whose
// external-swap rebind check would otherwise race the two steps). A false
// return means the swapper was closed around us or the successor is
// somehow misshaped — both counted as retrain errors (shape mismatches
// cannot happen on this path: Retrain preserves shape).
func (l *Learner) publish(next *disthd.Model) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.sw.Swap(next); err != nil {
		l.retrainErrs.Add(1)
		return false
	}
	if err := l.ol.SetModel(next); err != nil {
		l.retrainErrs.Add(1)
		return false
	}
	return true
}

// Retraining reports whether a retrain is in flight right now.
func (l *Learner) Retraining() bool { return l.retraining.Load() }

// Wait blocks until no retrain is in flight — a test and benchmark hook;
// production callers never need it.
func (l *Learner) Wait() { l.wg.Wait() }

// LearnerSnapshot is a point-in-time copy of the learner gauges, embedded
// in the /stats payload when a learner is attached.
type LearnerSnapshot struct {
	// Feedback counts labeled samples ingested through Feed.
	Feedback uint64 `json:"feedback"`
	// WindowLen is how many samples the retrain window holds.
	WindowLen int `json:"window_len"`
	// WindowAccuracy is the served model's accuracy over the recent
	// observation window (0 before any feedback).
	WindowAccuracy float64 `json:"window_accuracy"`
	// BaselineAccuracy is the accuracy frozen right after the serving model
	// was last (re)bound (0 before any feedback).
	BaselineAccuracy float64 `json:"baseline_accuracy"`
	// Drift is whether drift is currently flagged.
	Drift bool `json:"drift"`
	// DriftEvents counts feedback ingestions that observed a drift flag.
	DriftEvents uint64 `json:"drift_events"`
	// DriftSeverity is the overall accuracy drop below the baseline,
	// clamped to >= 0 — what the retrain budget scales by.
	DriftSeverity float64 `json:"drift_severity"`
	// ClassAccuracy attributes drift per class: baseline vs window accuracy
	// and the drop, for every class the served model separates.
	ClassAccuracy []ClassAccuracy `json:"class_accuracy,omitempty"`
	// Retraining is whether a background retrain is in flight.
	Retraining bool `json:"retraining"`
	// Degraded mirrors Learner.Health: the learner currently cannot
	// adapt (same verdict /healthz reports).
	Degraded bool `json:"degraded"`
	// RejectionBackoff is whether the auto retrain is sitting out the
	// post-rejection backoff.
	RejectionBackoff bool `json:"rejection_backoff"`
	// RetrainWedged is whether the in-flight retrain exceeded the stall
	// deadline.
	RetrainWedged bool `json:"retrain_wedged"`
	// Retrains counts completed (published) retrains.
	Retrains uint64 `json:"retrains"`
	// RetrainErrors counts retrains that failed before publishing.
	RetrainErrors uint64 `json:"retrain_errors"`
	// GateEnabled is whether retrains route through the champion/challenger
	// gate.
	GateEnabled bool `json:"gate_enabled"`
	// GateAccepts counts challengers the gate published (forced publishes
	// included).
	GateAccepts uint64 `json:"gate_accepts"`
	// GateRejects counts challengers the gate dropped; the incumbent kept
	// serving through each.
	GateRejects uint64 `json:"gate_rejects"`
	// LastGate is the most recent gate evaluation, whatever its outcome
	// (nil before the first gated retrain).
	LastGate *GateResult `json:"last_gate,omitempty"`
	// LastRejection is the most recent rejected challenger with its losing
	// margin (nil while no challenger has been rejected).
	LastRejection *GateResult `json:"last_rejection,omitempty"`
	// LastRetrainMs is the duration of the last completed retrain.
	LastRetrainMs float64 `json:"last_retrain_ms"`
	// LastRetrainUnix is the wall-clock second the last retrain published
	// (0 when none has).
	LastRetrainUnix int64 `json:"last_retrain_unix"`
}

// jsonNum flattens the NaN of an empty estimator to 0 — JSON has no NaN.
func jsonNum(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}

// Snapshot returns the current learner gauges.
func (l *Learner) Snapshot() LearnerSnapshot {
	l.mu.Lock()
	winLen := l.ol.WindowLen()
	rep := l.ol.DriftReport()
	l.mu.Unlock()
	classes := make([]ClassAccuracy, len(rep.Classes))
	for i, c := range rep.Classes {
		classes[i] = ClassAccuracy{
			Class:            c.Class,
			BaselineAccuracy: jsonNum(c.BaselineAccuracy),
			WindowAccuracy:   jsonNum(c.WindowAccuracy),
			Drop:             c.Drop,
			Observations:     c.Observations,
		}
	}
	var lastUnix int64
	if ns := l.lastRetrain.Load(); ns > 0 {
		lastUnix = ns / 1e9
	}
	health := l.Health()
	return LearnerSnapshot{
		Feedback:         l.feedback.Load(),
		WindowLen:        winLen,
		WindowAccuracy:   jsonNum(rep.WindowAccuracy),
		BaselineAccuracy: jsonNum(rep.BaselineAccuracy),
		Drift:            rep.Drift,
		DriftEvents:      l.drifts.Load(),
		DriftSeverity:    rep.Severity,
		ClassAccuracy:    classes,
		Retraining:       l.retraining.Load(),
		Degraded:         health.Degraded,
		RejectionBackoff: health.RejectionBackoff,
		RetrainWedged:    health.RetrainWedged,
		Retrains:         l.retrains.Load(),
		RetrainErrors:    l.retrainErrs.Load(),
		GateEnabled:      l.gate != nil,
		GateAccepts:      l.gateAccepts.Load(),
		GateRejects:      l.gateRejects.Load(),
		LastGate:         l.lastGate.Load(),
		LastRejection:    l.lastReject.Load(),
		LastRetrainMs:    float64(l.lastDuration.Load()) / 1e6,
		LastRetrainUnix:  lastUnix,
	}
}
