package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	disthd "repro"
)

// learnerFixture builds a Batcher + Learner over the shared model.
func learnerFixture(t *testing.T, opts LearnerOptions) (*Batcher, *Learner, *testState) {
	t.Helper()
	st := fixtures(t)
	b, err := NewBatcher(st.a, Options{MaxBatch: 8, MaxDelay: 500 * time.Microsecond, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	l, err := NewLearner(b.Swapper(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return b, l, st
}

// driftedRow shifts the leading half of x by a constant — inputs the model
// was never trained on.
func driftedRow(x []float64, offset float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for i := 0; i < len(out)/2; i++ {
		out[i] += offset
	}
	return out
}

func TestLearnerFeedTracksAccuracy(t *testing.T) {
	_, l, st := learnerFixture(t, LearnerOptions{RecentWindow: 16})
	var last FeedResult
	for i, x := range st.test.X {
		res, err := l.Feed(x, st.test.Y[i])
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if math.IsNaN(last.WindowAccuracy) || last.WindowAccuracy < 0 || last.WindowAccuracy > 1 {
		t.Fatalf("window accuracy %v out of range", last.WindowAccuracy)
	}
	snap := l.Snapshot()
	if snap.Feedback != uint64(len(st.test.X)) {
		t.Fatalf("feedback counter %d, want %d", snap.Feedback, len(st.test.X))
	}
	if snap.WindowLen == 0 {
		t.Fatal("feedback never entered the window")
	}
	if snap.Retrains != 0 || snap.Retraining {
		t.Fatal("retrain ran without being requested")
	}
}

func TestLearnerFeedValidates(t *testing.T) {
	_, l, st := learnerFixture(t, LearnerOptions{})
	if _, err := l.Feed(st.test.X[0][:3], 0); err == nil {
		t.Fatal("short feature vector accepted")
	}
	if _, err := l.Feed(st.test.X[0], -1); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestLearnerRetrainPublishes(t *testing.T) {
	b, l, st := learnerFixture(t, LearnerOptions{
		MinRetrain: 16, RecentWindow: 16, Iterations: 2,
	})
	before := b.Model()
	for i := 0; i < 64; i++ {
		x := driftedRow(st.test.X[i%len(st.test.X)], 3.0)
		if _, err := l.Feed(x, st.test.Y[i%len(st.test.Y)]); err != nil {
			t.Fatal(err)
		}
	}
	started, err := l.Retrain(false)
	if err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("retrain did not start")
	}
	l.Wait()
	snap := l.Snapshot()
	if snap.Retrains != 1 || snap.RetrainErrors != 0 {
		t.Fatalf("retrains=%d errors=%d, want 1/0", snap.Retrains, snap.RetrainErrors)
	}
	if b.Model() == before {
		t.Fatal("retrain did not publish a successor through the swapper")
	}
	// A gated accept publishes twice: the judged challenger immediately,
	// then the full-window refit behind it.
	if b.Swapper().Swaps() != 2 {
		t.Fatalf("swap count %d, want 2 (challenger + refit)", b.Swapper().Swaps())
	}
	if snap.LastRetrainMs <= 0 || snap.LastRetrainUnix == 0 {
		t.Fatalf("retrain timing gauges not set: %+v", snap)
	}
	// The batcher must keep serving the successor.
	if _, err := b.Predict(st.test.X[0]); err != nil {
		t.Fatal(err)
	}
}

func TestLearnerRetrainGates(t *testing.T) {
	_, l, st := learnerFixture(t, LearnerOptions{MinRetrain: 32})
	if started, err := l.Retrain(false); err == nil || started {
		t.Fatal("retrain allowed on an empty window")
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Feed(st.test.X[i], st.test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if started, err := l.Retrain(false); err == nil || started {
		t.Fatal("retrain allowed below MinRetrain")
	}
}

func TestLearnerAutoRetrainsOnDrift(t *testing.T) {
	// GateDisabled: this test pins the ungated auto-retrain publish
	// mechanics on a deliberately noisy fixture whose challengers the gate
	// may (correctly) reject; the gated paths are covered by
	// TestLearnerGate* and the HTTP gate tests.
	b, l, st := learnerFixture(t, LearnerOptions{
		RecentWindow:   16,
		MinRetrain:     32,
		DriftThreshold: 0.2,
		Iterations:     2,
		Auto:           true,
		Cooldown:       time.Millisecond,
		GateDisabled:   true,
	})
	before := b.Model()
	// Clean phase: establish a baseline, no retrain may fire.
	for i, x := range st.test.X {
		if _, err := l.Feed(x, st.test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if l.Snapshot().Retrains != 0 || l.Retraining() {
		t.Fatal("auto retrain fired on clean data")
	}
	// Severe drift: accuracy collapses; auto retrain must fire and publish.
	started := false
	for i := 0; i < 3*len(st.test.X) && !started; i++ {
		x := driftedRow(st.test.X[i%len(st.test.X)], 4.0)
		res, err := l.Feed(x, st.test.Y[i%len(st.test.Y)])
		if err != nil {
			t.Fatal(err)
		}
		started = res.RetrainStarted
	}
	if !started {
		t.Fatalf("drift never triggered a retrain (snapshot %+v)", l.Snapshot())
	}
	l.Wait()
	snap := l.Snapshot()
	if snap.Retrains == 0 {
		t.Fatalf("auto retrain did not complete: %+v", snap)
	}
	if snap.DriftEvents == 0 {
		t.Fatal("drift events not counted")
	}
	if b.Model() == before {
		t.Fatal("auto retrain did not publish")
	}
}

func TestLearnerRebindsAfterExternalSwap(t *testing.T) {
	b, l, st := learnerFixture(t, LearnerOptions{RecentWindow: 8})
	for i := 0; i < 8; i++ {
		if _, err := l.Feed(st.test.X[i], st.test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Swap(st.b); err != nil {
		t.Fatal(err)
	}
	// The next feed must be judged against the externally swapped model —
	// and rebinding resets the baseline.
	if _, err := l.Feed(st.test.X[0], st.test.Y[0]); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if snap.WindowLen != 9 {
		t.Fatalf("window lost feedback on rebind: %d", snap.WindowLen)
	}
	if got := l.Snapshot().BaselineAccuracy; got != 0 && got != 1 {
		t.Fatalf("baseline not reset on rebind: %v", got)
	}
}

// TestLearnerConcurrentFeedAndRetrain hammers Feed from several goroutines
// while retrains run — the -race gate for the learner's locking scheme.
func TestLearnerConcurrentFeedAndRetrain(t *testing.T) {
	b, l, st := learnerFixture(t, LearnerOptions{
		RecentWindow: 8, MinRetrain: 8, Iterations: 1,
		Auto: true, Cooldown: time.Millisecond, DriftThreshold: 0.05,
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				x := st.test.X[(g*37+i)%len(st.test.X)]
				if i%3 == 0 {
					x = driftedRow(x, 4.0)
				}
				if _, err := l.Feed(x, st.test.Y[(g*37+i)%len(st.test.Y)]); err != nil {
					t.Error(err)
					return
				}
				if i%25 == 0 {
					l.Retrain(false) //nolint:errcheck // gating errors are expected here
				}
				if _, err := b.Predict(st.test.X[i%len(st.test.X)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	l.Wait()
	snap := l.Snapshot()
	if snap.Feedback != 400 {
		t.Fatalf("feedback counter %d, want 400", snap.Feedback)
	}
}

// TestSwapStorm pins the Swapper contract under a swap storm: many
// concurrent swappers while batched predictions are in flight. Every
// prediction must succeed and agree with one of the two models — no torn
// batch may mix weights.
func TestSwapStorm(t *testing.T) {
	st := fixtures(t)
	b, err := NewBatcher(st.a, Options{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Precompute both models' verdicts on the probe set.
	wantA := make([]int, len(st.test.X))
	wantB := make([]int, len(st.test.X))
	for i, x := range st.test.X {
		if wantA[i], err = st.a.Predict(x); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = st.b.Predict(x); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var swWG sync.WaitGroup
	for g := 0; g < 3; g++ {
		swWG.Add(1)
		go func(g int) {
			defer swWG.Done()
			models := [2]*disthd.Model{st.a, st.b}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := b.Swap(models[(g+i)%2]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	var cliWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		cliWG.Add(1)
		go func(g int) {
			defer cliWG.Done()
			for i := 0; i < 200; i++ {
				idx := (g*53 + i) % len(st.test.X)
				got, err := b.Predict(st.test.X[idx])
				if err != nil {
					t.Error(err)
					return
				}
				if got != wantA[idx] && got != wantB[idx] {
					t.Errorf("prediction %d matches neither model (torn swap?)", idx)
					return
				}
			}
		}(g)
	}
	cliWG.Wait()
	close(stop)
	swWG.Wait()
	if b.Swapper().Swaps() == 0 {
		t.Fatal("storm performed no swaps")
	}
}
