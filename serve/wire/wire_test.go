package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

func TestMatrixF64RoundTrip(t *testing.T) {
	rows := [][]float64{
		{1.5, -2.25, 3e-9},
		{0, math.Inf(1), -0.0},
	}
	buf, err := AppendMatrixF64(nil, rows, 3)
	if err != nil {
		t.Fatalf("AppendMatrixF64: %v", err)
	}
	d := NewDecoder(bytes.NewReader(buf))
	typ, err := d.Next()
	if err != nil || typ != TypeMatrixF64 {
		t.Fatalf("Next = %v, %v; want matrix-f64", typ, err)
	}
	r, c, err := d.MatrixDims()
	if err != nil || r != 2 || c != 3 {
		t.Fatalf("MatrixDims = %d, %d, %v; want 2, 3", r, c, err)
	}
	got := make([]float64, 3)
	for i := 0; i < r; i++ {
		if err := d.Floats(got); err != nil {
			t.Fatalf("Floats row %d: %v", i, err)
		}
		for j, v := range got {
			if v != rows[i][j] && !(math.IsNaN(v) && math.IsNaN(rows[i][j])) {
				t.Fatalf("row %d col %d = %v, want %v", i, j, v, rows[i][j])
			}
		}
	}
}

func TestMatrixF32RoundTripWidens(t *testing.T) {
	rows := [][]float64{{1.25, -3.5}, {0.0078125, 1e10}}
	buf, err := AppendMatrixF32(nil, rows, 2)
	if err != nil {
		t.Fatalf("AppendMatrixF32: %v", err)
	}
	d := NewDecoder(bytes.NewReader(buf))
	if typ, err := d.Next(); err != nil || typ != TypeMatrixF32 {
		t.Fatalf("Next = %v, %v; want matrix-f32", typ, err)
	}
	r, c, err := d.MatrixDims()
	if err != nil || r != 2 || c != 2 {
		t.Fatalf("MatrixDims = %d, %d, %v", r, c, err)
	}
	got := make([]float64, 4)
	if err := d.Floats(got[:2]); err != nil {
		t.Fatal(err)
	}
	if err := d.Floats(got[2:]); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1.25, -3.5, 0.0078125, float64(float32(1e10))} {
		if got[i] != want {
			t.Fatalf("element %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestClassesRoundTrip(t *testing.T) {
	classes := []int{0, 7, -1, 1 << 20}
	buf := AppendClasses(nil, classes)
	d := NewDecoder(bytes.NewReader(buf))
	if typ, err := d.Next(); err != nil || typ != TypeClasses {
		t.Fatalf("Next = %v, %v; want classes", typ, err)
	}
	n, err := d.ClassCount()
	if err != nil || n != 4 {
		t.Fatalf("ClassCount = %d, %v; want 4", n, err)
	}
	got := make([]int, n)
	if err := d.Classes(got); err != nil {
		t.Fatal(err)
	}
	for i := range classes {
		if got[i] != classes[i] {
			t.Fatalf("class %d = %d, want %d", i, got[i], classes[i])
		}
	}
}

func TestLearnRoundTrip(t *testing.T) {
	x := []float64{0.5, -1.5, 2.25}
	buf := AppendLearn(nil, x, 3)
	d := NewDecoder(bytes.NewReader(buf))
	if typ, err := d.Next(); err != nil || typ != TypeLearn {
		t.Fatalf("Next = %v, %v; want learn", typ, err)
	}
	label, cols, err := d.LearnHeader()
	if err != nil || label != 3 || cols != 3 {
		t.Fatalf("LearnHeader = %d, %d, %v; want 3, 3", label, cols, err)
	}
	got := make([]float64, cols)
	if err := d.Floats(got); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("feature %d = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestFeedAckRoundTrip(t *testing.T) {
	for _, ack := range []FeedAck{
		{},
		{Correct: true, WindowAccuracy: 0.875},
		{Drift: true, RetrainStarted: true, WindowAccuracy: 0.5},
	} {
		buf := AppendFeedAck(nil, ack)
		d := NewDecoder(bytes.NewReader(buf))
		if typ, err := d.Next(); err != nil || typ != TypeFeedAck {
			t.Fatalf("Next = %v, %v; want feed-ack", typ, err)
		}
		got, err := d.FeedAck()
		if err != nil || got != ack {
			t.Fatalf("FeedAck = %+v, %v; want %+v", got, err, ack)
		}
	}
}

func TestRaggedRowRejected(t *testing.T) {
	if _, err := AppendMatrixF64(nil, [][]float64{{1, 2}, {3}}, 2); err == nil {
		t.Fatal("ragged f64 row accepted")
	}
	if _, err := AppendMatrixF32(nil, [][]float64{{1, 2}, {3}}, 2); err == nil {
		t.Fatal("ragged f32 row accepted")
	}
}

func TestDecoderRejectsMalformedHeaders(t *testing.T) {
	good, err := AppendMatrixF64(nil, [][]float64{{1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int, v byte) []byte {
		b := bytes.Clone(good)
		b[off] = v
		return b
	}
	cases := map[string][]byte{
		"bad magic":        corrupt(0, 'X'),
		"bad version":      corrupt(4, 9),
		"bad type":         corrupt(5, 99),
		"reserved nonzero": corrupt(6, 1),
		"truncated header": good[:HeaderSize-3],
	}
	for name, b := range cases {
		d := NewDecoder(bytes.NewReader(b))
		if _, err := d.Next(); err == nil {
			t.Errorf("%s: Next accepted malformed header", name)
		}
	}
}

func TestDecoderRejectsOversizePayload(t *testing.T) {
	var b []byte
	b = appendHeader(b, TypeMatrixF64, int(DefaultMaxPayload)+1)
	d := NewDecoder(bytes.NewReader(b))
	if _, err := d.Next(); err == nil {
		t.Fatal("oversize payload declaration accepted")
	}
}

func TestDecoderRejectsDimPayloadMismatch(t *testing.T) {
	// Declared payload is too short for the claimed dimensions.
	var b []byte
	b = appendHeader(b, TypeMatrixF64, 8+8) // room for 1 element
	b = binary.LittleEndian.AppendUint32(b, 2)
	b = binary.LittleEndian.AppendUint32(b, 2) // claims 2x2
	b = binary.LittleEndian.AppendUint64(b, 0)
	d := NewDecoder(bytes.NewReader(b))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.MatrixDims(); err == nil {
		t.Fatal("dimension/payload mismatch accepted")
	}
}

func TestDecoderNeverCrossesFrameEnd(t *testing.T) {
	buf, err := AppendMatrixF64(nil, [][]float64{{1, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Trailing garbage after the frame must stay unread.
	stream := append(bytes.Clone(buf), 0xde, 0xad)
	r := bytes.NewReader(stream)
	d := NewDecoder(r)
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.MatrixDims(); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 2)
	if err := d.Floats(row); err != nil {
		t.Fatal(err)
	}
	// Asking for more elements than the frame holds must error without
	// touching the trailing bytes.
	if err := d.Floats(row[:1]); err == nil {
		t.Fatal("read past frame end accepted")
	}
	if r.Len() != 2 {
		t.Fatalf("decoder consumed trailing bytes: %d left, want 2", r.Len())
	}
}

func TestDecoderEOFOnCleanEnd(t *testing.T) {
	d := NewDecoder(strings.NewReader(""))
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next on empty stream = %v, want io.EOF", err)
	}
}

// FuzzWireFrame feeds arbitrary bytes through the full decode surface and
// requires two invariants: no panic, and no read past the frame length the
// header declared. Well-formed prefixes decode; everything else errors.
func FuzzWireFrame(f *testing.F) {
	seed1, _ := AppendMatrixF64(nil, [][]float64{{1, 2}, {3, 4}}, 2)
	seed2, _ := AppendMatrixF32(nil, [][]float64{{-1, 0.5}}, 2)
	f.Add(seed1)
	f.Add(seed2)
	f.Add(AppendClasses(nil, []int{1, 2, 3}))
	f.Add(AppendLearn(nil, []float64{9, 8, 7}, 4))
	f.Add(AppendFeedAck(nil, FeedAck{Correct: true, WindowAccuracy: 0.75}))
	f.Add([]byte("DHDF"))
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		d := NewDecoder(r)
		d.MaxPayload = 1 << 16 // keep scratch small under the fuzzer
		typ, err := d.Next()
		if err != nil {
			return
		}
		consumedMax := HeaderSize + int(d.remaining)
		switch typ {
		case TypeMatrixF64, TypeMatrixF32:
			rows, cols, err := d.MatrixDims()
			if err != nil {
				break
			}
			if rows > 0 && cols > 0 {
				row := make([]float64, cols)
				for i := 0; i < rows; i++ {
					if err := d.Floats(row); err != nil {
						break
					}
				}
			}
		case TypeClasses:
			n, err := d.ClassCount()
			if err != nil || n == 0 {
				break
			}
			if err := d.Classes(make([]int, n)); err != nil {
				break
			}
		case TypeLearn:
			_, cols, err := d.LearnHeader()
			if err != nil || cols == 0 {
				break
			}
			if err := d.Floats(make([]float64, cols)); err != nil {
				break
			}
		case TypeFeedAck:
			if _, err := d.FeedAck(); err != nil {
				break
			}
		}
		if consumed := len(data) - r.Len(); consumed > consumedMax {
			t.Fatalf("decoder consumed %d bytes, frame declared at most %d", consumed, consumedMax)
		}
	})
}
