// Package wire is the compact binary wire protocol the serving stack
// speaks alongside HTTP/JSON: versioned, little-endian, length-prefixed
// frames carrying float64/float32 row matrices, class IDs, and the online
// feedback exchange. A JSON /predict_batch body spends most of a request's
// budget parsing decimal floats and allocating row slices; a frame is the
// same matrix as raw IEEE-754 words, decodable straight into a replica's
// leased batch scratch.
//
// Frame layout (all integers little-endian):
//
//	offset size  field
//	0      4     magic "DHDF"
//	4      1     version (currently 1)
//	5      1     frame type (TypeMatrixF64, TypeClasses, ...)
//	6      2     reserved, must be zero
//	8      4     payload length in bytes
//	12     ...   payload
//
// Payloads by type:
//
//	TypeMatrixF64:  rows u32, cols u32, rows*cols float64
//	TypeMatrixF32:  rows u32, cols u32, rows*cols float32
//	TypeClasses:    count u32, count int32
//	TypeLearn:      label i32, cols u32, cols float64
//	TypeFeedAck:    flags u32 (bit0 correct, bit1 drift, bit2 retrain
//	                started), window accuracy float64
//
// HTTP requests and responses carrying a frame use Content-Type
// ContentType; errors are always answered as JSON with a non-2xx status,
// so a binary client distinguishes them by status code alone.
//
// The Decoder is streaming and hostile-input-safe: it validates the magic,
// version, type, and the exact payload length implied by the declared
// dimensions before touching any data, bounds the payload by MaxPayload,
// and never reads past the declared frame end — a truncated, corrupt, or
// oversized frame yields an error, never a panic or an over-read
// (FuzzWireFrame holds it to that).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ContentType is the MIME type negotiating the frame protocol over HTTP:
// a request with this Content-Type carries a frame body, and the response
// mirrors the format.
const ContentType = "application/x-disthd-frame"

// Version is the protocol version this package encodes and accepts.
const Version = 1

// HeaderSize is the fixed size of a frame header in bytes.
const HeaderSize = 12

// DefaultMaxPayload is the payload bound a fresh Decoder enforces —
// deliberately the same 8 MiB the HTTP handlers put on JSON bodies, so
// neither wire format admits a larger request than the other.
const DefaultMaxPayload = 8 << 20

// magic identifies a DistHD frame; it never changes across versions.
var magic = [4]byte{'D', 'H', 'D', 'F'}

// Type tags a frame's payload encoding.
type Type uint8

// The frame types of protocol version 1.
const (
	// TypeMatrixF64 carries a row-major float64 matrix (a prediction
	// request batch).
	TypeMatrixF64 Type = 1
	// TypeMatrixF32 carries a row-major float32 matrix — the same request
	// at half the wire bytes, widened server-side.
	TypeMatrixF32 Type = 2
	// TypeClasses carries predicted class IDs as int32 (a prediction
	// response).
	TypeClasses Type = 3
	// TypeLearn carries one labeled feedback sample (a /learn request).
	TypeLearn Type = 4
	// TypeFeedAck carries the feedback ingestion outcome (a /learn
	// response).
	TypeFeedAck Type = 5
)

// valid reports whether t is a known version-1 frame type.
func (t Type) valid() bool { return t >= TypeMatrixF64 && t <= TypeFeedAck }

// String names the frame type for error messages.
func (t Type) String() string {
	switch t {
	case TypeMatrixF64:
		return "matrix-f64"
	case TypeMatrixF32:
		return "matrix-f32"
	case TypeClasses:
		return "classes"
	case TypeLearn:
		return "learn"
	case TypeFeedAck:
		return "feed-ack"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// FeedAck is the decoded TypeFeedAck payload — the binary mirror of the
// JSON /learn response.
type FeedAck struct {
	// Correct is whether the served model predicted the feedback label.
	Correct bool
	// Drift is whether the learner currently flags distribution drift.
	Drift bool
	// RetrainStarted is whether the ingestion kicked off a retrain.
	RetrainStarted bool
	// WindowAccuracy is the accuracy over the recent observation window.
	WindowAccuracy float64
}

// appendHeader writes a frame header for a payload of n bytes.
func appendHeader(dst []byte, t Type, n int) []byte {
	dst = append(dst, magic[0], magic[1], magic[2], magic[3], Version, byte(t), 0, 0)
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

// AppendMatrixF64 appends a TypeMatrixF64 frame holding rows (each of
// width cols) to dst and returns the extended slice. It errors on a
// ragged row instead of writing a malformed frame.
func AppendMatrixF64(dst []byte, rows [][]float64, cols int) ([]byte, error) {
	for i, r := range rows {
		if len(r) != cols {
			return dst, fmt.Errorf("wire: row %d has %d values, want %d", i, len(r), cols)
		}
	}
	dst = appendHeader(dst, TypeMatrixF64, 8+len(rows)*cols*8)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cols))
	for _, r := range rows {
		for _, v := range r {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// AppendMatrixF32 appends a TypeMatrixF32 frame holding rows (each of
// width cols), narrowing each value to float32 on the wire. It errors on
// a ragged row.
func AppendMatrixF32(dst []byte, rows [][]float64, cols int) ([]byte, error) {
	for i, r := range rows {
		if len(r) != cols {
			return dst, fmt.Errorf("wire: row %d has %d values, want %d", i, len(r), cols)
		}
	}
	dst = appendHeader(dst, TypeMatrixF32, 8+len(rows)*cols*4)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cols))
	for _, r := range rows {
		for _, v := range r {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
		}
	}
	return dst, nil
}

// AppendClasses appends a TypeClasses frame holding the class IDs to dst.
func AppendClasses(dst []byte, classes []int) []byte {
	dst = appendHeader(dst, TypeClasses, 4+len(classes)*4)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(classes)))
	for _, c := range classes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(c)))
	}
	return dst
}

// AppendLearn appends a TypeLearn frame holding one labeled feedback
// sample to dst.
func AppendLearn(dst []byte, x []float64, label int) []byte {
	dst = appendHeader(dst, TypeLearn, 8+len(x)*8)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(label)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(x)))
	for _, v := range x {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendFeedAck appends a TypeFeedAck frame to dst.
func AppendFeedAck(dst []byte, ack FeedAck) []byte {
	dst = appendHeader(dst, TypeFeedAck, 12)
	var flags uint32
	if ack.Correct {
		flags |= 1
	}
	if ack.Drift {
		flags |= 2
	}
	if ack.RetrainStarted {
		flags |= 4
	}
	dst = binary.LittleEndian.AppendUint32(dst, flags)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(ack.WindowAccuracy))
}

// Decoder reads one frame from an untrusted stream. Create one with
// NewDecoder (or recycle via Reset), call Next to read and validate the
// header, then the payload accessors matching the returned Type. The
// decoder never reads past the declared payload length, so it is safe on
// a stream with trailing data.
type Decoder struct {
	// MaxPayload bounds the declared payload length; frames claiming more
	// are rejected before any payload is read. NewDecoder and Reset set it
	// to DefaultMaxPayload; adjust it before the first Next.
	MaxPayload uint32

	r         io.Reader
	typ       Type
	remaining uint32 // undelivered payload bytes of the current frame
	buf       []byte // scratch for wire-to-native conversion
}

// NewDecoder returns a Decoder reading from r with the default payload
// bound.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, MaxPayload: DefaultMaxPayload}
}

// Reset rebinds the decoder to a new stream, keeping its scratch buffer —
// the pooling hook the HTTP handlers use.
func (d *Decoder) Reset(r io.Reader) {
	d.r = r
	d.typ = 0
	d.remaining = 0
	d.MaxPayload = DefaultMaxPayload
}

// Next reads and validates the next frame header and returns its type.
// io.EOF is returned untouched when the stream ends cleanly before a
// header; any partial or invalid header is an error.
func (d *Decoder) Next() (Type, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("wire: short frame header: %w", err)
	}
	if [4]byte(hdr[0:4]) != magic {
		return 0, fmt.Errorf("wire: bad magic %q", hdr[0:4])
	}
	if hdr[4] != Version {
		return 0, fmt.Errorf("wire: unsupported version %d (want %d)", hdr[4], Version)
	}
	t := Type(hdr[5])
	if !t.valid() {
		return 0, fmt.Errorf("wire: unknown frame type %d", hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return 0, errors.New("wire: reserved header bytes must be zero")
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > d.MaxPayload {
		return 0, fmt.Errorf("wire: frame payload %d exceeds bound %d", n, d.MaxPayload)
	}
	d.typ, d.remaining = t, n
	return t, nil
}

// elemSize returns the wire width of one matrix element for the current
// frame type, or 0 when the frame is not a matrix.
func (d *Decoder) elemSize() uint32 {
	switch d.typ {
	case TypeMatrixF64:
		return 8
	case TypeMatrixF32:
		return 4
	}
	return 0
}

// take reads exactly n payload bytes into the scratch buffer, enforcing
// the frame boundary.
func (d *Decoder) take(n uint32) ([]byte, error) {
	if n > d.remaining {
		return nil, fmt.Errorf("wire: frame has %d payload bytes left, need %d", d.remaining, n)
	}
	if uint32(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	b := d.buf[:n]
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	d.remaining -= n
	return b, nil
}

// MatrixDims reads the dimension prefix of a matrix frame and verifies
// the declared payload length matches rows*cols elements exactly. Next
// must have returned TypeMatrixF64 or TypeMatrixF32.
func (d *Decoder) MatrixDims() (rows, cols int, err error) {
	es := d.elemSize()
	if es == 0 {
		return 0, 0, fmt.Errorf("wire: frame %v is not a matrix", d.typ)
	}
	b, err := d.take(8)
	if err != nil {
		return 0, 0, err
	}
	r := binary.LittleEndian.Uint32(b[0:4])
	c := binary.LittleEndian.Uint32(b[4:8])
	if want := uint64(r) * uint64(c) * uint64(es); want != uint64(d.remaining) {
		return 0, 0, fmt.Errorf("wire: matrix %dx%d wants %d payload bytes, frame declares %d",
			r, c, want, d.remaining)
	}
	return int(r), int(c), nil
}

// Floats reads len(dst) matrix elements into dst, widening float32 wire
// values when the frame is TypeMatrixF32. Call it repeatedly to stream a
// large matrix chunk by chunk; it never crosses the frame end.
func (d *Decoder) Floats(dst []float64) error {
	es := d.elemSize()
	if es == 0 {
		return fmt.Errorf("wire: frame %v carries no float elements", d.typ)
	}
	b, err := d.take(uint32(len(dst)) * es)
	if err != nil {
		return err
	}
	if es == 8 {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		return nil
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
	}
	return nil
}

// ClassCount reads the count prefix of a TypeClasses frame and verifies
// the declared payload length matches it exactly.
func (d *Decoder) ClassCount() (int, error) {
	if d.typ != TypeClasses {
		return 0, fmt.Errorf("wire: frame %v is not a classes frame", d.typ)
	}
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n)*4 != uint64(d.remaining) {
		return 0, fmt.Errorf("wire: %d classes want %d payload bytes, frame declares %d",
			n, uint64(n)*4, d.remaining)
	}
	return int(n), nil
}

// Classes reads len(dst) class IDs into dst. ClassCount must have been
// read first.
func (d *Decoder) Classes(dst []int) error {
	b, err := d.take(uint32(len(dst)) * 4)
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int(int32(binary.LittleEndian.Uint32(b[i*4:])))
	}
	return nil
}

// LearnHeader reads the label and feature-count prefix of a TypeLearn
// frame, verifying the declared payload length carries exactly that many
// float64 values; read them with Floats.
func (d *Decoder) LearnHeader() (label, cols int, err error) {
	if d.typ != TypeLearn {
		return 0, 0, fmt.Errorf("wire: frame %v is not a learn frame", d.typ)
	}
	b, err := d.take(8)
	if err != nil {
		return 0, 0, err
	}
	label = int(int32(binary.LittleEndian.Uint32(b[0:4])))
	c := binary.LittleEndian.Uint32(b[4:8])
	if uint64(c)*8 != uint64(d.remaining) {
		return 0, 0, fmt.Errorf("wire: learn frame with %d features wants %d payload bytes, frame declares %d",
			c, uint64(c)*8, d.remaining)
	}
	// A learn frame streams like a one-row f64 matrix from here on.
	d.typ = TypeMatrixF64
	return label, int(c), nil
}

// FeedAck decodes a TypeFeedAck payload.
func (d *Decoder) FeedAck() (FeedAck, error) {
	if d.typ != TypeFeedAck {
		return FeedAck{}, fmt.Errorf("wire: frame %v is not a feed-ack frame", d.typ)
	}
	if d.remaining != 12 {
		return FeedAck{}, fmt.Errorf("wire: feed-ack payload is %d bytes, want 12", d.remaining)
	}
	b, err := d.take(12)
	if err != nil {
		return FeedAck{}, err
	}
	flags := binary.LittleEndian.Uint32(b[0:4])
	return FeedAck{
		Correct:        flags&1 != 0,
		Drift:          flags&2 != 0,
		RetrainStarted: flags&4 != 0,
		WindowAccuracy: math.Float64frombits(binary.LittleEndian.Uint64(b[4:12])),
	}, nil
}
