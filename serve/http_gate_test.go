package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestHTTPGateRejectsBadChallenger is the end-to-end gate exercise over
// real HTTP under -race: a server with a gated learner receives garbage
// feedback (drifted inputs with random labels) through /learn while client
// goroutines hammer /predict_batch; a /retrain challenger trained on that
// garbage must be REJECTED — the incumbent keeps serving, zero requests
// drop — and /retrain?force=1 must then publish it anyway.
func TestHTTPGateRejectsBadChallenger(t *testing.T) {
	st := fixtures(t)
	srv, ts := newTestServer(t, st.a)
	l, err := NewLearner(srv.Batcher().Swapper(), LearnerOptions{
		RecentWindow: 8,
		MinRetrain:   16,
		Iterations:   2,
		GateMargin:   0.10,
		Seed:         31,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachLearner(l)
	incumbent := srv.Batcher().Model()

	// Prediction hammer: concurrent live traffic for the whole test; every
	// request must be answered 200.
	stop := make(chan struct{})
	var bad atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rows := [][]float64{st.test.X[(g*31+i)%len(st.test.X)]}
				var out struct {
					Classes []int `json:"classes"`
				}
				if code := postJSON(t, ts.URL+"/predict_batch", map[string][][]float64{"x": rows}, &out); code != http.StatusOK || len(out.Classes) != 1 {
					bad.Add(1)
					return
				}
			}
		}(g)
	}

	// Garbage feedback over real HTTP: drifted inputs, random labels — the
	// worst teacher. A challenger trained on this cannot lead a healthy
	// incumbent by the gate margin on the holdout.
	r := rng.New(77)
	for i := 0; i < 48; i++ {
		x := driftedRow(st.test.X[i%len(st.test.X)], 3.0)
		label := r.Intn(incumbent.Classes())
		if code := postJSON(t, ts.URL+"/learn", map[string]any{"x": x, "label": label}, nil); code != http.StatusOK {
			t.Fatalf("/learn %d returned %d", i, code)
		}
	}

	if code := postJSON(t, ts.URL+"/retrain", struct{}{}, nil); code != http.StatusAccepted {
		t.Fatalf("/retrain returned %d, want 202", code)
	}
	srv.Learner().Wait()

	var snap Snapshot
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeJSON(resp, &snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ls := snap.Learner
	if ls == nil || !ls.GateEnabled {
		t.Fatalf("/stats learner gauges missing or gate off: %+v", ls)
	}
	if ls.GateRejects != 1 || ls.Retrains != 0 || ls.GateAccepts != 0 {
		t.Fatalf("gate did not reject the garbage challenger: rejects=%d retrains=%d accepts=%d (last gate %+v)",
			ls.GateRejects, ls.Retrains, ls.GateAccepts, ls.LastGate)
	}
	if ls.LastRejection == nil {
		t.Fatal("/stats missing the last-rejection margin")
	}
	if ls.LastRejection.Margin >= 0.10 {
		t.Fatalf("rejection recorded a passing margin %v", ls.LastRejection.Margin)
	}
	if ls.LastRejection.Published || ls.LastRejection.Forced {
		t.Fatalf("rejection reported as published: %+v", ls.LastRejection)
	}
	if len(ls.ClassAccuracy) != incumbent.Classes() {
		t.Fatalf("/stats class accuracy covers %d classes, model has %d", len(ls.ClassAccuracy), incumbent.Classes())
	}
	if snap.Swaps != 0 || srv.Batcher().Model() != incumbent {
		t.Fatalf("rejected challenger reached the swapper (swaps=%d)", snap.Swaps)
	}

	// The operator's escape hatch: force publishes the same garbage.
	if code := postJSON(t, ts.URL+"/retrain?force=1", struct{}{}, nil); code != http.StatusAccepted {
		t.Fatalf("/retrain?force=1 returned %d, want 202", code)
	}
	srv.Learner().Wait()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Batcher().Model() == incumbent && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fsnap := srv.Learner().Snapshot()
	if fsnap.Retrains != 1 || fsnap.GateAccepts != 1 {
		t.Fatalf("forced retrain did not publish: %+v", fsnap)
	}
	if fsnap.LastGate == nil || !fsnap.LastGate.Forced || !fsnap.LastGate.Published {
		t.Fatalf("forced verdict not reported: %+v", fsnap.LastGate)
	}
	if srv.Batcher().Model() == incumbent {
		t.Fatal("forced publish never reached the swapper")
	}

	// The hammer ran through rejection, forced publish and swap: no request
	// may have dropped.
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d predictions failed during gated retraining", n)
	}
}
