package serve_test

import (
	"fmt"
	"log"
	"time"

	disthd "repro"
	"repro/serve"
)

// ExampleBatcher trains a small model, serves it through the
// micro-batching Batcher, and hot-swaps a retrained model mid-flight.
func ExampleBatcher() {
	// Train two shape-compatible models (e.g. the live model and an
	// online-retrained successor).
	train, _, err := disthd.SyntheticBenchmark("DIABETES", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 3
	cfg.Seed = 7
	live, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = 8
	retrained, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Serve. Every concurrent Predict call rides a micro-batch: flushed at
	// 64 rows, or 2ms after the first row arrives, whichever comes first.
	b, err := serve.NewBatcher(live, serve.Options{
		MaxBatch: 64,
		MaxDelay: 2 * time.Millisecond,
		Replicas: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	class, err := b.Predict(train.X[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("class in range:", class >= 0 && class < train.Classes)

	// Hot-swap the model; in-flight batches finish on the old weights,
	// later batches use the new ones, and no request is dropped.
	if err := b.Swap(retrained); err != nil {
		log.Fatal(err)
	}
	if _, err := b.Predict(train.X[0]); err != nil {
		log.Fatal(err)
	}
	snap := b.Stats()
	fmt.Println("requests:", snap.Requests)
	fmt.Println("swaps:", snap.Swaps)
	// Output:
	// class in range: true
	// requests: 2
	// swaps: 1
}
