package serve

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	disthd "repro"
)

// quantizeResponse is the /quantize body both outcomes share.
type quantizeResponse struct {
	Published bool        `json:"published"`
	Gate      *GateResult `json:"gate"`
}

// TestHTTPQuantizeGateRejectsAtLowDim is the end-to-end quantization gate
// exercise over real HTTP under -race: at D=64 sign quantization collapses
// accuracy, so a gated POST /quantize must be REJECTED — the f32 champion
// keeps serving, zero in-flight requests drop, and /stats reports the
// rejection with its losing margin. ?force=1 must then publish the same
// collapsed tier anyway (the operator's escape hatch).
func TestHTTPQuantizeGateRejectsAtLowDim(t *testing.T) {
	st := fixtures(t)
	srv, ts := newTestServer(t, st.a)
	l, err := NewLearner(srv.Batcher().Swapper(), LearnerOptions{
		RecentWindow: 8,
		MinRetrain:   16,
		Iterations:   2,
		Seed:         31,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachLearner(l)
	incumbent := srv.Batcher().Model()

	// Truthful labeled feedback over real HTTP builds the holdout slice the
	// quantization gate will judge on.
	for i := 0; i < 60; i++ {
		j := i % len(st.test.X)
		if code := postJSON(t, ts.URL+"/learn", map[string]any{"x": st.test.X[j], "label": st.test.Y[j]}, nil); code != http.StatusOK {
			t.Fatalf("/learn %d returned %d", i, code)
		}
	}

	// Prediction hammer: concurrent live traffic across the rejected and the
	// forced quantization; every request must be answered 200.
	stop := make(chan struct{})
	var bad atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rows := [][]float64{st.test.X[(g*31+i)%len(st.test.X)]}
				var out struct {
					Classes []int `json:"classes"`
				}
				if code := postJSON(t, ts.URL+"/predict_batch", map[string][][]float64{"x": rows}, &out); code != http.StatusOK || len(out.Classes) != 1 {
					bad.Add(1)
					return
				}
			}
		}(g)
	}

	var qr quantizeResponse
	if code := postJSON(t, ts.URL+"/quantize", struct{}{}, &qr); code != http.StatusConflict {
		t.Fatalf("/quantize at D=64 returned %d, want 409", code)
	}
	if qr.Published || qr.Gate == nil || qr.Gate.Passed {
		t.Fatalf("low-D quantization was not rejected: %+v", qr)
	}
	if qr.Gate.Margin >= defaultQuantizeMargin {
		t.Fatalf("rejection recorded a passing margin %v", qr.Gate.Margin)
	}
	if srv.Batcher().Model() != incumbent {
		t.Fatal("rejected quantization reached the swapper")
	}

	var snap Snapshot
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = decodeJSON(resp, &snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	qs := snap.Quantization
	if qs == nil {
		t.Fatal("/stats missing the quantization gauges")
	}
	if qs.Active || qs.Publishes != 0 || qs.Rejects != 1 || qs.LastGate == nil {
		t.Fatalf("quantization gauges after rejection: %+v", qs)
	}

	// The escape hatch: force publishes the collapsed tier regardless.
	if code := postJSON(t, ts.URL+"/quantize?force=1", struct{}{}, &qr); code != http.StatusOK {
		t.Fatalf("/quantize?force=1 returned %d, want 200", code)
	}
	if !qr.Published || qr.Gate == nil || !qr.Gate.Forced || qr.Gate.Passed {
		t.Fatalf("forced quantization misreported: %+v", qr)
	}
	if !srv.Batcher().Model().Quantized() {
		t.Fatal("forced quantization never reached the swapper")
	}
	// The frozen champion refuses retrains with a clean 409.
	if code := postJSON(t, ts.URL+"/retrain", struct{}{}, nil); code != http.StatusConflict {
		t.Fatalf("/retrain on a quantized champion returned %d, want 409", code)
	}
	// And a second quantization has nothing to do.
	if code := postJSON(t, ts.URL+"/quantize", struct{}{}, nil); code != http.StatusConflict {
		t.Fatalf("double /quantize returned %d, want 409", code)
	}

	// The hammer ran through rejection, forced publish and swap: no request
	// may have dropped.
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d predictions failed during gated quantization", n)
	}
}

// TestHTTPQuantizePublishesAtHealthyDim is the accept leg: at D=1024 the
// packed tier holds accuracy, the gate passes, the quantized successor
// serves /predict_batch, /stats flips the Active gauge, and /model
// negotiates formats (1bit export from the packed champion; f32 answers
// 409 because sign quantization is one-way).
func TestHTTPQuantizePublishesAtHealthyDim(t *testing.T) {
	st := fixtures(t)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 1024
	cfg.Iterations = 3
	cfg.Seed = 7
	m, err := disthd.TrainWithConfig(st.train.X, st.train.Y, st.train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, m)
	l, err := NewLearner(srv.Batcher().Swapper(), LearnerOptions{RecentWindow: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachLearner(l)
	for i := 0; i < 60; i++ {
		j := i % len(st.test.X)
		if code := postJSON(t, ts.URL+"/learn", map[string]any{"x": st.test.X[j], "label": st.test.Y[j]}, nil); code != http.StatusOK {
			t.Fatalf("/learn %d returned %d", i, code)
		}
	}

	// A tolerant operator margin: the holdout slice is ~12 samples, so one
	// sample of disagreement moves accuracy by ~0.08 — the margin must not
	// flake on that granularity while still proving the gate ran.
	var qr quantizeResponse
	if code := postJSON(t, ts.URL+"/quantize?margin=-0.2", struct{}{}, &qr); code != http.StatusOK {
		t.Fatalf("/quantize at D=1024 returned %d, want 200", code)
	}
	if !qr.Published || qr.Gate == nil || !qr.Gate.Passed || qr.Gate.Forced {
		t.Fatalf("healthy-D quantization misreported: %+v", qr)
	}
	if qr.Gate.HoldoutSize == 0 {
		t.Fatal("gate judged on an empty holdout — the feedback window never split")
	}
	if !srv.Batcher().Model().Quantized() {
		t.Fatal("published quantization not serving")
	}

	// The packed tier answers live traffic with sane classes.
	var out struct {
		Classes []int `json:"classes"`
	}
	if code := postJSON(t, ts.URL+"/predict_batch", map[string][][]float64{"x": st.test.X[:8]}, &out); code != http.StatusOK || len(out.Classes) != 8 {
		t.Fatalf("/predict_batch on the packed tier: code %d, %d classes", code, len(out.Classes))
	}
	for i, c := range out.Classes {
		if c < 0 || c >= m.Classes() {
			t.Fatalf("row %d: class %d outside [0,%d)", i, c, m.Classes())
		}
	}

	var snap Snapshot
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = decodeJSON(resp, &snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	qs := snap.Quantization
	if qs == nil || !qs.Active || qs.Publishes != 1 || qs.Rejects != 0 {
		t.Fatalf("quantization gauges after publish: %+v", qs)
	}
	if qs.LastGate == nil || !qs.LastGate.Published {
		t.Fatalf("published verdict not reported: %+v", qs.LastGate)
	}

	// /model format negotiation on the packed champion.
	resp, err = http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-DistHD-Format") != "1bit" {
		t.Fatalf("/model on packed champion: code %d format %q", resp.StatusCode, resp.Header.Get("X-DistHD-Format"))
	}
	ld, err := disthd.Load(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exported packed snapshot does not load: %v", err)
	}
	if !ld.Quantized() {
		t.Fatal("exported snapshot lost the packed format")
	}
	resp, err = http.Get(ts.URL + "/model?format=f32")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("/model?format=f32 on packed champion returned %d, want 409", resp.StatusCode)
	}
}

// TestHTTPModelFormatNegotiationF32 covers the f32-champion side of
// /model: the default export stays f32, ?format=1bit quantizes on the fly
// without publishing, and an unknown format is a 400.
func TestHTTPModelFormatNegotiationF32(t *testing.T) {
	st := fixtures(t)
	srv, ts := newTestServer(t, st.a)
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}
	resp, _ := get("/model")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-DistHD-Format") != "f32" {
		t.Fatalf("/model default: code %d format %q", resp.StatusCode, resp.Header.Get("X-DistHD-Format"))
	}
	resp, body := get("/model?format=1bit")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-DistHD-Format") != "1bit" {
		t.Fatalf("/model?format=1bit: code %d format %q", resp.StatusCode, resp.Header.Get("X-DistHD-Format"))
	}
	ld, err := disthd.Load(bytes.NewReader(body))
	if err != nil || !ld.Quantized() {
		t.Fatalf("on-the-fly 1bit export broken: err %v", err)
	}
	if srv.Batcher().Model().Quantized() {
		t.Fatal("a 1bit export must not publish the quantized tier")
	}
	resp, _ = get("/model?format=int7")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/model?format=int7 returned %d, want 400", resp.StatusCode)
	}
}
