package disthd_test

// Integration tests exercising multi-module pipelines end to end through
// the public API: CSV → split → normalize → train → serialize → deploy →
// inject, and the online-update continual-learning path.

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	disthd "repro"
)

// syntheticCSV renders a small separable dataset as CSV text.
func syntheticCSV(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		c := i % 3
		base := float64(c) * 4
		// two informative features plus one noise feature derived from i
		noise := float64((i*37)%11)/11 - 0.5
		fmt.Fprintf(&sb, "%.4f,%.4f,%.4f,%d\n", base+noise, base-noise, noise, c)
	}
	return sb.String()
}

func TestPipelineCSVToDeployment(t *testing.T) {
	// 1. Ingest CSV.
	d, err := disthd.ReadCSV(strings.NewReader(syntheticCSV(300)), -1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes != 3 {
		t.Fatalf("classes = %d", d.Classes)
	}
	// 2. Split + normalize.
	train, test, err := disthd.Split(d, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := disthd.ZScore(train, test); err != nil {
		t.Fatal(err)
	}
	// 3. Train.
	cfg := disthd.DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 10
	cfg.Seed = 5
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("pipeline accuracy %.3f too low on separable CSV data", acc)
	}
	// 4. Serialize, reload, re-verify.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := disthd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 5. Deploy the RELOADED model and inject faults.
	dep, err := loaded.Deploy(1)
	if err != nil {
		t.Fatal(err)
	}
	cleanDep, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if cleanDep < acc-0.15 {
		t.Fatalf("1-bit deployment lost too much: %.3f -> %.3f", acc, cleanDep)
	}
	if err := dep.Inject(0.02, 9); err != nil {
		t.Fatal(err)
	}
	injured, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	// 2% flips on a 1-bit model should cost only a few percent.
	if injured < cleanDep-0.15 {
		t.Fatalf("1-bit model too fragile: %.3f -> %.3f at 2%% flips", cleanDep, injured)
	}
}

func TestOnlineUpdateAdaptsToShift(t *testing.T) {
	train, stream, err := disthd.SyntheticBenchmark("PAMAP2", 0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 8
	cfg.Seed = 13
	frozen, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	online, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Apply a fixed feature shift to the whole stream and run prequential
	// evaluation: predict, then learn from the label.
	q := len(stream.X[0])
	var frozenOK, onlineOK int
	for i := range stream.X {
		x := make([]float64, q)
		copy(x, stream.X[i])
		for j := 0; j < q/2; j++ {
			x[j] += 1.2
		}
		fp, err := frozen.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		op, err := online.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if fp == stream.Y[i] {
			frozenOK++
		}
		if op == stream.Y[i] {
			onlineOK++
		}
		if _, err := online.Update(x, stream.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	fAcc := float64(frozenOK) / float64(len(stream.X))
	oAcc := float64(onlineOK) / float64(len(stream.X))
	t.Logf("shifted stream: frozen=%.3f online=%.3f", fAcc, oAcc)
	if oAcc < fAcc {
		t.Fatalf("online updates (%.3f) should not underperform a frozen model (%.3f) under shift", oAcc, fAcc)
	}
}

func TestUpdateValidation(t *testing.T) {
	train, _, err := disthd.SyntheticBenchmark("DIABETES", 0.04, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 4
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(train.X[0][:3], 0); err == nil {
		t.Fatal("short input accepted by Update")
	}
	if _, err := m.Update(train.X[0], -1); err == nil {
		t.Fatal("negative label accepted by Update")
	}
	if _, err := m.Update(train.X[0], train.Classes); err == nil {
		t.Fatal("out-of-range label accepted by Update")
	}
	// A sample the model already classifies correctly must not change it.
	pred, err := m.Predict(train.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if pred == train.Y[0] {
		before, err := m.Scores(train.X[0])
		if err != nil {
			t.Fatal(err)
		}
		ok, err := m.Update(train.X[0], train.Y[0])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("Update reported error on a correct sample")
		}
		after, err := m.Scores(train.X[0])
		if err != nil {
			t.Fatal(err)
		}
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-12 {
				t.Fatal("correct sample changed the model")
			}
		}
	}
}

// Determinism across the whole public pipeline: identical seeds must give
// identical models, predictions, and serialized bytes.
func TestEndToEndDeterminism(t *testing.T) {
	runOnce := func() []byte {
		train, _, err := disthd.SyntheticBenchmark("UCIHAR", 0.04, 17)
		if err != nil {
			t.Fatal(err)
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = 64
		cfg.Iterations = 5
		cfg.Seed = 17
		m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different serialized models")
	}
}

func TestMergeModelsFederated(t *testing.T) {
	train, test, err := disthd.SyntheticBenchmark("PAMAP2", 0.08, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 8
	cfg.RegenRate = 0 // frozen shared encoder
	cfg.Seed = 23

	const parties = 3
	var models []*disthd.Model
	var soloAcc float64
	for p := 0; p < parties; p++ {
		var sx [][]float64
		var sy []int
		for i := p; i < train.Len(); i += parties {
			sx = append(sx, train.X[i])
			sy = append(sy, train.Y[i])
		}
		m, err := disthd.TrainWithConfig(sx, sy, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := m.Evaluate(test.X, test.Y)
		if err != nil {
			t.Fatal(err)
		}
		soloAcc += a / parties
		models = append(models, m)
	}
	global, err := disthd.MergeModels(models...)
	if err != nil {
		t.Fatal(err)
	}
	gAcc, err := global.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean solo=%.3f merged=%.3f", soloAcc, gAcc)
	if gAcc < soloAcc-0.05 {
		t.Fatalf("merged model (%.3f) should not underperform the mean shard model (%.3f)", gAcc, soloAcc)
	}
}

func TestMergeModelsValidation(t *testing.T) {
	if _, err := disthd.MergeModels(); err == nil {
		t.Fatal("empty merge accepted")
	}
	train, _, err := disthd.SyntheticBenchmark("DIABETES", 0.04, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 4
	cfg.RegenRate = 0
	cfg.Seed = 29
	a, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different seed → different encoder → must be rejected.
	cfg2 := cfg
	cfg2.Seed = 30
	b, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disthd.MergeModels(a, b); err == nil {
		t.Fatal("models with different encoders merged")
	}
	// Regeneration enabled → encoders diverge → must be rejected.
	cfg3 := cfg
	cfg3.RegenRate = 0.2
	c, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disthd.MergeModels(a, c); err == nil {
		t.Fatal("regenerated-encoder model merged with frozen-encoder model")
	}
	// Different dims → rejected.
	cfg4 := cfg
	cfg4.Dim = 128
	d, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disthd.MergeModels(a, d); err == nil {
		t.Fatal("dimension mismatch merged")
	}
	// Self-merge works and is usable.
	merged, err := disthd.MergeModels(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merged.Predict(train.X[0]); err != nil {
		t.Fatal(err)
	}
}
