package disthd

// The 1-bit quantized deployment tier. Quantize1Bit freezes a trained
// f32 model into its packed bipolar view — the paper's most robust
// quantized configuration (Fig. 8) — where class hypervectors are sign
// bits, queries are encoded straight to sign bits (the trig-free packed
// RBF epilogue), and scoring is XOR+popcount agreement instead of a
// float dot product. A quantized Model keeps the full Model interface:
// Predict/PredictBatch/Scores/Evaluate route to the packed kernels,
// Save emits the packed wire format, Replica serving runs zero-alloc
// through the Batcher, and the champion/challenger Gate measures its
// true 1-bit accuracy because Evaluate is already the packed path. What
// it gives up is training: a quantized model is frozen — Update and
// Retrain refuse, because the adaptive rule needs f32 weights. Keep the
// f32 champion for learning and quantize successors from it.

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/encoding"
	"repro/internal/mat"
)

// Quantize1Bit returns a frozen 1-bit deployment view of the model: the
// sign bits of every class hypervector, packed for the XOR+popcount
// kernels, over a deep copy of the encoder so the original can keep
// learning while the quantized successor serves. Only RBF-encoded
// models quantize (the packed query encoder needs the RBF sign rule).
//
// Quantization changes accuracy — usually slightly, catastrophically at
// low dimensionality. Measure the delta before deploying: pass the
// result through Gate.Evaluate against the f32 champion (serve does
// this on every quantized publish).
func (m *Model) Quantize1Bit() (*Model, error) {
	if m.Quantized() {
		return nil, fmt.Errorf("disthd: model is already 1-bit quantized")
	}
	if m.kind != EncoderRBF {
		return nil, fmt.Errorf("disthd: only RBF-encoded models can be quantized")
	}
	if _, err := encoding.NewPackedRBF(m.clf.Enc); err != nil {
		return nil, fmt.Errorf("disthd: quantize: %w", err)
	}
	clf := m.clf.CloneDetached(1)
	k, d := m.Classes(), m.Dim()
	packed := bitpack.NewMatrix(k, d)
	for c := 0; c < k; c++ {
		packed.PackRow(c, clf.Model.Weights.Row(c))
	}
	return &Model{clf: clf, kind: m.kind, packed: packed, Info: m.Info}, nil
}

// Quantized reports whether the model is a frozen 1-bit packed view
// (built by Quantize1Bit or loaded from the packed wire format). A
// quantized model serves through the XOR+popcount kernels and cannot
// learn; its ClassHypervector/DimensionSaliency views reflect the float
// weights the packing was taken from (±1 for a loaded model).
func (m *Model) Quantized() bool { return m.packed != nil }

// packedEncoder builds the per-call packed query encoder view. Cheap
// (one wrapper + closure); the zero-alloc serving path instead holds one
// per Replica.
func (m *Model) packedEncoder() *encoding.PackedRBF {
	p, err := encoding.NewPackedRBF(m.clf.Enc)
	if err != nil {
		// Quantize1Bit and the packed loader verified the encoder family.
		panic(fmt.Sprintf("disthd: quantized model lost its RBF encoder: %v", err))
	}
	return p
}

// packedScoresSingle computes the per-class agreement (bipolar dot
// product) of one sample on the packed tier.
func (m *Model) packedScoresSingle(x []float64) []int32 {
	p := m.packedEncoder()
	x32 := make([]float32, mat.Stride32(m.Features()))
	z := make([]float32, mat.Stride32(m.Dim()))
	q := bitpack.NewMatrix(1, m.Dim())
	p.EncodePacked(x, x32, z, q.Row(0))
	scores := make([]int32, m.Classes())
	bitpack.ScoreBatchInto(m.packed, q, scores)
	return scores
}

// packedPredictBatch classifies every row of X on the packed tier,
// returning predictions and, when wantScores is set, the full agreement
// matrix (rows × classes).
func (m *Model) packedPredictBatch(X [][]float64, wantScores bool) ([]int, []int32) {
	n := len(X)
	p := m.packedEncoder()
	x32 := mat.NewDense32(n, m.Features())
	for i, row := range X {
		dst := x32.Row(i)
		for j, v := range row {
			dst[j] = float32(v)
		}
	}
	z := mat.NewDense32(n, m.Dim())
	qm := bitpack.NewMatrix(n, m.Dim())
	p.EncodeBatchPackedInto(x32, z, qm)
	out := make([]int, n)
	scores := make([]int32, n*m.Classes())
	bitpack.PredictBatchInto(m.packed, qm, scores, out)
	if !wantScores {
		scores = nil
	}
	return out, scores
}

// packedTop2 returns the two highest-agreement classes, best first,
// first index winning ties — the packed analogue of model.Top2.
func packedTop2(scores []int32) (int, int) {
	best, second := 0, -1
	for c := 1; c < len(scores); c++ {
		switch {
		case scores[c] > scores[best]:
			best, second = c, best
		case second < 0 || scores[c] > scores[second]:
			second = c
		}
	}
	return best, second
}
