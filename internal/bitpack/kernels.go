package bitpack

// Popcount and sign-pack micro-kernels behind the packed serving path.
//
// The contract mirrors internal/mat/kernels.go: the pure-Go functions in
// this file define the arithmetic, and the assembly tiers in
// simd_amd64.s reproduce it bit for bit, so switching ISA levels changes
// speed, never results. For the XOR+popcount kernels that is immediate
// (integer arithmetic has one answer); for the sign-pack kernel it holds
// because every operation in the analytic sign rule — multiply, floor,
// subtract, add, compare — is exactly rounded and executed in the same
// order in both implementations.

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// ISA dispatch tiers, lowest to highest. detectISA (per-arch) reports the
// best level the host supports; kernelISA holds the active level and is
// lowered only by tests exercising fallback parity.
const (
	isaGeneric int32 = iota
	isaAVX2          // AVX2 VPSHUFB nibble-LUT popcount (Mula's algorithm)
	isaAVX512        // AVX-512 VPOPCNTQ popcount + VRNDSCALEPD sign pack
)

// bestISA is the highest tier the host CPU + OS support.
var bestISA = detectISA()

// kernelISA is the active dispatch tier. Atomic so tests can force
// fallback tiers while -race parity checks run concurrently.
var kernelISA atomic.Int32

func init() { kernelISA.Store(bestISA) }

// setISA forces the dispatch tier (tests only), clamped to bestISA.
// Returns the previous tier so callers can restore it.
func setISA(level int32) int32 {
	if level > bestISA {
		level = bestISA
	}
	return kernelISA.Swap(level)
}

// packConsts feeds the sign-pack kernels their constants from one place,
// so the Go reference and the assembly provably multiply and compare
// against bit-identical values: 1/(2π), 1/2, 1/4, 3/4.
var packConsts = [4]float64{1 / (2 * math.Pi), 0.5, 0.25, 0.75}

// nibbleLUT is the VPSHUFB table for the AVX2 popcount tier: per-nibble
// bit counts in the first 16 bytes, the 0x0f nibble mask in the next 16.
var nibbleLUT = [32]byte{
	0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
	0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f,
	0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f,
}

// xorPopcntGo is the reference XOR+popcount reduction: the Hamming
// distance between two equal-length packed words slices.
func xorPopcntGo(q, c []uint64) int64 {
	var h int64
	for i := range q {
		h += int64(bits.OnesCount64(q[i] ^ c[i]))
	}
	return h
}

// xorPopcnt4Go is the reference 1×4 tile: one query against four class
// rows, amortizing the query loads exactly like the assembly does.
func xorPopcnt4Go(q, c0, c1, c2, c3 []uint64, out *[4]int64) {
	var h0, h1, h2, h3 int64
	for i, w := range q {
		h0 += int64(bits.OnesCount64(w ^ c0[i]))
		h1 += int64(bits.OnesCount64(w ^ c1[i]))
		h2 += int64(bits.OnesCount64(w ^ c2[i]))
		h3 += int64(bits.OnesCount64(w ^ c3[i]))
	}
	out[0], out[1], out[2], out[3] = h0, h1, h2, h3
}

// packSignWordsGo is the reference sign-pack kernel over full 64-element
// groups: len(z) == len(fc) == 64·len(out). Bit d of out is set when the
// RBF activation cos(z_d + c_d)·sin(z_d) is non-negative, decided by the
// trig-free analytic rule over fractional turns (fc_d = frac(c_d/2π),
// precomputed by the caller):
//
//	f := frac(z·(1/2π))            // sin(z) ≥ 0  iff f ≤ 1/2
//	g := frac(f + fc)              // cos(z+c) ≥ 0 iff g ≤ 1/4 or g ≥ 3/4
//	bit = (f ≤ 1/2) == (g ≤ 1/4 ∨ g ≥ 3/4) ∨ z == 0
//
// The z == 0 clause matches the float path, where a ±0 activation packs
// as +1 (x ≥ 0 admits -0). NaN/Inf activations pack as +1 in both the Go
// and assembly tiers (all ordered compares fail, so the equality holds).
func packSignWordsGo(z, fc []float64, out []uint64) {
	inv, half, quarter, threeQ := packConsts[0], packConsts[1], packConsts[2], packConsts[3]
	for w := range out {
		base := w * 64
		var acc uint64
		for i := 0; i < 64; i++ {
			zv := z[base+i]
			f := zv * inv
			f -= math.Floor(f)
			g := f + fc[base+i]
			g -= math.Floor(g)
			sinNN := f <= half
			cosNN := g <= quarter || g >= threeQ
			if zv == 0 || sinNN == cosNN {
				acc |= 1 << uint(i)
			}
		}
		out[w] = acc
	}
}

// packSignTailBits packs the final partial word (fewer than 64 elements)
// with the same rule; it always runs in Go, on every tier, so trailing
// bits above the dimension stay zero by construction.
func packSignTailBits(z, fc []float64) uint64 {
	inv, half, quarter, threeQ := packConsts[0], packConsts[1], packConsts[2], packConsts[3]
	var acc uint64
	for i, zv := range z {
		f := zv * inv
		f -= math.Floor(f)
		g := f + fc[i]
		g -= math.Floor(g)
		sinNN := f <= half
		cosNN := g <= quarter || g >= threeQ
		if zv == 0 || sinNN == cosNN {
			acc |= 1 << uint(i)
		}
	}
	return acc
}

// xorPopcnt dispatches the Hamming-distance reduction. The assembly
// tiers require the lengths the Matrix layout guarantees (multiples of 8
// words for AVX-512, 4 for AVX2); anything else runs the Go kernel.
func xorPopcnt(q, c []uint64) int64 {
	n := len(q)
	switch kernelISA.Load() {
	case isaAVX512:
		if n >= 8 && n%8 == 0 {
			var out int64
			xorPopcntAVX512(&q[0], &c[0], n, &out)
			return out
		}
	case isaAVX2:
		if n >= 4 && n%4 == 0 {
			var out int64
			xorPopcntAVX2(&q[0], &c[0], n, &nibbleLUT, &out)
			return out
		}
	}
	return xorPopcntGo(q, c)
}

// xorPopcnt4 dispatches the 1×4 tile under the same length contract.
func xorPopcnt4(q, c0, c1, c2, c3 []uint64, out *[4]int64) {
	n := len(q)
	switch kernelISA.Load() {
	case isaAVX512:
		if n >= 8 && n%8 == 0 {
			xorPopcnt4AVX512(&q[0], &c0[0], &c1[0], &c2[0], &c3[0], n, out)
			return
		}
	case isaAVX2:
		if n >= 4 && n%4 == 0 {
			xorPopcnt4AVX2(&q[0], &c0[0], &c1[0], &c2[0], &c3[0], n, &nibbleLUT, out)
			return
		}
	}
	xorPopcnt4Go(q, c0, c1, c2, c3, out)
}

// packSignWords dispatches the full-word sign pack. Only AVX-512 has an
// assembly tier (the rule needs per-lane floor and mask compares); AVX2
// hosts run the Go kernel, which is still branch-light and exact.
func packSignWords(z, fc []float64, out []uint64) {
	if len(out) == 0 {
		return
	}
	if kernelISA.Load() == isaAVX512 {
		packSignsAVX512(&z[0], &fc[0], len(out), &packConsts, &out[0])
		return
	}
	packSignWordsGo(z, fc, out)
}
