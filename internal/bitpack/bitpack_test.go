package bitpack

import (
	"testing"
	"testing/quick"

	"repro/internal/hv"
	"repro/internal/rng"
)

func TestFromToFloatsRoundTrip(t *testing.T) {
	h := []float64{1, -1, -1, 1, 1, -1, 0.5, -0.5, 0}
	v := FromFloats(h)
	back := v.ToFloats()
	want := []float64{1, -1, -1, 1, 1, -1, 1, -1, 1} // signs, zero → +1
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("round trip[%d] = %v, want %v", i, back[i], want[i])
		}
	}
}

func TestBitSetBit(t *testing.T) {
	v := NewVector(130) // crosses word boundaries
	v.SetBit(0, true)
	v.SetBit(64, true)
	v.SetBit(129, true)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if v.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Bit(i), want)
		}
	}
	v.SetBit(64, false)
	if v.Bit(64) {
		t.Fatal("SetBit(false) did not clear")
	}
}

func TestHammingAndAgreement(t *testing.T) {
	a := FromFloats([]float64{1, 1, -1, -1})
	b := FromFloats([]float64{1, -1, -1, 1})
	if d := HammingDistance(a, b); d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	// agreement = dim - 2*hamming = 0; matches bipolar dot product
	if ag := Agreement(a, b); ag != 0 {
		t.Fatalf("Agreement = %d, want 0", ag)
	}
	if ag := Agreement(a, a); ag != 4 {
		t.Fatalf("self Agreement = %d, want 4", ag)
	}
}

func TestHammingMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	HammingDistance(NewVector(4), NewVector(5))
}

func TestBindMatchesFloatBind(t *testing.T) {
	r := rng.New(1)
	fa := hv.RandomBipolar(200, r)
	fb := hv.RandomBipolar(200, r)
	packed := Bind(FromFloats(fa), FromFloats(fb))
	want := hv.Bind(fa, fb)
	got := packed.ToFloats()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packed Bind[%d] = %v, float Bind = %v", i, got[i], want[i])
		}
	}
}

func TestBindTailMasked(t *testing.T) {
	// After the complement in Bind, tail bits must stay clear or
	// popcounts would be wrong.
	a := NewVector(70)
	b := NewVector(70)
	out := Bind(a, b) // all dims agree (-1 * -1 = +1 everywhere)
	if d := HammingDistance(out, out); d != 0 {
		t.Fatal("self-distance nonzero, tail bits leaked")
	}
	if ag := Agreement(out, out); ag != 70 {
		t.Fatalf("self agreement = %d, want 70", ag)
	}
}

// Packed agreement must equal the float dot product of the sign vectors,
// for arbitrary vectors and dimensions (including non-multiples of 64).
func TestAgreementMatchesFloatDot(t *testing.T) {
	f := func(seed uint64, rawDim uint16) bool {
		dim := int(rawDim%300) + 1
		r := rng.New(seed)
		fa := hv.RandomBipolar(dim, r)
		fb := hv.RandomBipolar(dim, r)
		want := int(hv.Dot(fa, fb))
		got := Agreement(FromFloats(fa), FromFloats(fb))
		return got == want
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestModelPredict(t *testing.T) {
	r := rng.New(2)
	const dim, k = 1024, 5
	rows := make([][]float64, k)
	for c := range rows {
		rows[c] = hv.RandomBipolar(dim, r)
	}
	m := NewModel(rows)
	if m.MemoryBits() != dim*k {
		t.Fatalf("MemoryBits = %d", m.MemoryBits())
	}
	// A noisy copy of class 3 must classify as 3.
	noisy := make([]float64, dim)
	copy(noisy, rows[3])
	for i := 0; i < dim/10; i++ {
		noisy[r.Intn(dim)] *= -1
	}
	if got := m.Predict(FromFloats(noisy)); got != 3 {
		t.Fatalf("Predict = %d, want 3", got)
	}
	scores := m.Scores(FromFloats(noisy), make([]int, k))
	best := 0
	for c, s := range scores {
		if s > scores[best] {
			best = c
		}
	}
	if best != 3 {
		t.Fatal("Scores argmax disagrees with Predict")
	}
}

func TestNewVectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dimension accepted")
		}
	}()
	NewVector(0)
}

func BenchmarkPackedAgreement4096(b *testing.B) {
	r := rng.New(3)
	x := FromFloats(hv.RandomBipolar(4096, r))
	y := FromFloats(hv.RandomBipolar(4096, r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Agreement(x, y)
	}
}

func BenchmarkFloatDot4096(b *testing.B) {
	r := rng.New(3)
	x := hv.RandomBipolar(4096, r)
	y := hv.RandomBipolar(4096, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hv.Dot(x, y)
	}
}
