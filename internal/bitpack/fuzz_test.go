package bitpack

import (
	"math"
	"testing"
)

// fuzzByteToFloat maps one fuzz byte to a float value, covering exact
// zeros, signed zeros, non-finite values, and both signs of ordinary
// magnitudes.
func fuzzByteToFloat(b byte) float64 {
	switch b {
	case 0:
		return 0
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return math.NaN()
	default:
		return (float64(b) - 128) / 8
	}
}

// FuzzBitpackRoundTrip checks the core packed-arithmetic invariants for
// arbitrary float vectors: packing preserves the sign predicate (x ≥ 0,
// so −0 packs as +1 and NaN as −1), trailing bits of the last word stay
// zero, Agreement equals the sign-float dot product, the float→pack→
// float round trip is sign-stable, and the padded Matrix kernels score
// exactly what the scalar Vector path scores.
func FuzzBitpackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{128, 0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 128, 127, 129})
	f.Add(make([]byte, 2*63))
	f.Add(make([]byte, 2*64))
	wide := make([]byte, 2*65)
	for i := range wide {
		wide[i] = byte(i * 37)
	}
	f.Add(wide)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		dim := len(data) / 2
		xa := make([]float64, dim)
		xb := make([]float64, dim)
		for i := 0; i < dim; i++ {
			xa[i] = fuzzByteToFloat(data[i])
			xb[i] = fuzzByteToFloat(data[dim+i])
		}

		a, b := FromFloats(xa), FromFloats(xb)

		// Trailing bits of the last word must be zero.
		if rem := dim % 64; rem != 0 {
			if tail := a.Words[len(a.Words)-1] >> uint(rem); tail != 0 {
				t.Fatalf("dim %d: trailing bits set: %#x", dim, tail)
			}
		}

		// Agreement must equal the sign-float dot product under the
		// packing predicate sign(x) = +1 iff x ≥ 0.
		dot := 0
		for i := 0; i < dim; i++ {
			sa, sb := -1, -1
			if xa[i] >= 0 {
				sa = 1
			}
			if xb[i] >= 0 {
				sb = 1
			}
			dot += sa * sb
		}
		if got := Agreement(a, b); got != dot {
			t.Fatalf("dim %d: Agreement = %d, sign dot = %d", dim, got, dot)
		}

		// Round trip: unpacking to ±1 floats and repacking is identity.
		rt := FromFloats(a.ToFloats())
		for i, w := range a.Words {
			if rt.Words[i] != w {
				t.Fatalf("dim %d: round-trip word %d = %#x, want %#x", dim, i, rt.Words[i], w)
			}
		}

		// The padded Matrix kernels must agree with the scalar path.
		m := PackRows([][]float64{xa, xb})
		scores := make([]int32, 4)
		ScoreBatchInto(m, m, scores)
		if int(scores[1]) != dot || int(scores[2]) != dot {
			t.Fatalf("dim %d: matrix cross-scores %d/%d, want %d", dim, scores[1], scores[2], dot)
		}
		if int(scores[0]) != dim || int(scores[3]) != dim {
			t.Fatalf("dim %d: matrix self-scores %d/%d, want %d", dim, scores[0], scores[3], dim)
		}
	})
}
