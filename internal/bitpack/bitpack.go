// Package bitpack implements deployment-grade bipolar hypervector
// inference: hypervectors packed one bit per dimension into uint64 words,
// with Hamming similarity computed by XOR + popcount. This is the
// arithmetic an edge accelerator or microcontroller actually executes for
// a 1-bit HDC model (the most robust configuration in the paper's Fig. 8),
// and it is typically an order of magnitude faster than float dot
// products at equal dimensionality.
package bitpack

import (
	"fmt"
	"math/bits"
)

// Vector is a packed bipolar hypervector: bit i set means dimension i is
// +1, clear means −1. Dim is the logical dimensionality; trailing bits of
// the last word are kept zero.
type Vector struct {
	Dim   int
	Words []uint64
}

// NewVector returns an all-(-1) packed vector of the given dimensionality.
func NewVector(dim int) *Vector {
	if dim <= 0 {
		panic(fmt.Sprintf("bitpack: non-positive dimension %d", dim))
	}
	return &Vector{Dim: dim, Words: make([]uint64, (dim+63)/64)}
}

// FromFloats packs the signs of a float hypervector (zero counts +1,
// matching the repo-wide sign convention).
func FromFloats(h []float64) *Vector {
	v := NewVector(len(h))
	for i, x := range h {
		if x >= 0 {
			v.Words[i/64] |= 1 << uint(i%64)
		}
	}
	return v
}

// ToFloats unpacks to ±1 float values.
func (v *Vector) ToFloats() []float64 {
	out := make([]float64, v.Dim)
	for i := range out {
		if v.Bit(i) {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Bit reports whether dimension i is +1.
func (v *Vector) Bit(i int) bool {
	return v.Words[i/64]&(1<<uint(i%64)) != 0
}

// SetBit assigns dimension i (+1 when set).
func (v *Vector) SetBit(i int, set bool) {
	if set {
		v.Words[i/64] |= 1 << uint(i%64)
	} else {
		v.Words[i/64] &^= 1 << uint(i%64)
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.Words))
	copy(w, v.Words)
	return &Vector{Dim: v.Dim, Words: w}
}

// HammingDistance counts dimensions where a and b disagree.
func HammingDistance(a, b *Vector) int {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("bitpack: dimension mismatch %d vs %d", a.Dim, b.Dim))
	}
	d := 0
	for i := range a.Words {
		d += bits.OnesCount64(a.Words[i] ^ b.Words[i])
	}
	return d
}

// Agreement returns Dim − 2·HammingDistance, i.e. the dot product of the
// two bipolar vectors — the quantity HDC classification maximizes.
func Agreement(a, b *Vector) int {
	return a.Dim - 2*HammingDistance(a, b)
}

// Bind XORs a and b element-wise — the packed form of bipolar
// multiplication (+1·+1 = +1 maps to XNOR of bits; we store the XNOR by
// XOR-ing and complementing within the valid mask).
func Bind(a, b *Vector) *Vector {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("bitpack: dimension mismatch %d vs %d", a.Dim, b.Dim))
	}
	out := NewVector(a.Dim)
	for i := range a.Words {
		out.Words[i] = ^(a.Words[i] ^ b.Words[i])
	}
	out.maskTail()
	return out
}

// maskTail clears the unused bits of the last word so popcounts stay
// correct after complement operations.
func (v *Vector) maskTail() {
	rem := v.Dim % 64
	if rem != 0 {
		v.Words[len(v.Words)-1] &= (1 << uint(rem)) - 1
	}
}

// Model is a packed bipolar classifier: one packed class vector per class.
type Model struct {
	Classes []*Vector
}

// NewModel packs the sign view of float class hypervectors (rows).
func NewModel(rows [][]float64) *Model {
	m := &Model{}
	for _, r := range rows {
		m.Classes = append(m.Classes, FromFloats(r))
	}
	return m
}

// Predict returns the class whose packed vector agrees with q the most.
func (m *Model) Predict(q *Vector) int {
	best, bestScore := 0, Agreement(m.Classes[0], q)
	for c := 1; c < len(m.Classes); c++ {
		if s := Agreement(m.Classes[c], q); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Scores returns per-class agreement counts.
func (m *Model) Scores(q *Vector, dst []int) []int {
	if len(dst) != len(m.Classes) {
		panic("bitpack: Scores dst length mismatch")
	}
	for c := range m.Classes {
		dst[c] = Agreement(m.Classes[c], q)
	}
	return dst
}

// MemoryBits returns the size of the packed model.
func (m *Model) MemoryBits() int {
	if len(m.Classes) == 0 {
		return 0
	}
	return len(m.Classes) * m.Classes[0].Dim
}
