package bitpack

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// benchSetup builds a packed classes×queries fixture at a dimension.
func benchSetup(classes, queries, dim int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	cm := NewMatrix(classes, dim)
	qm := NewMatrix(queries, dim)
	row := make([]float64, dim)
	fill := func(m *Matrix, i int) {
		for d := range row {
			row[d] = rng.NormFloat64()
		}
		m.PackRow(i, row)
	}
	for i := 0; i < classes; i++ {
		fill(cm, i)
	}
	for i := 0; i < queries; i++ {
		fill(qm, i)
	}
	return cm, qm
}

// BenchmarkScoreBatch measures the XOR+popcount scoring tile per ISA
// tier at the serving shapes (64-row batch).
func BenchmarkScoreBatch(b *testing.B) {
	for _, dim := range []int{2048, 10000} {
		cm, qm := benchSetup(8, 64, dim)
		dst := make([]int32, cm.Rows*qm.Rows)
		for _, isa := range availableISAs() {
			b.Run(fmt.Sprintf("d=%d/%s", dim, isaName(isa)), func(b *testing.B) {
				defer setISA(setISA(isa))
				b.ReportAllocs()
				b.SetBytes(int64(qm.Rows * qm.Stride * 8 * cm.Rows))
				for i := 0; i < b.N; i++ {
					ScoreBatchInto(cm, qm, dst)
				}
			})
		}
	}
}

// BenchmarkPackSigns measures the activation sign-pack kernel per ISA
// tier — the packed encoder's epilogue cost per 64-row batch.
func BenchmarkPackSigns(b *testing.B) {
	for _, dim := range []int{2048, 10000} {
		rng := rand.New(rand.NewSource(2))
		z := make([]float64, dim)
		fc := make([]float64, dim)
		for i := range z {
			z[i] = rng.NormFloat64() * 10
			fc[i] = FracTurns(rng.Float64() * 2 * math.Pi)
		}
		dst := make([]uint64, matrixStride(dim))
		for _, isa := range availableISAs() {
			if isa == isaAVX2 {
				continue // pack has no AVX2 tier; identical to generic
			}
			b.Run(fmt.Sprintf("d=%d/%s", dim, isaName(isa)), func(b *testing.B) {
				defer setISA(setISA(isa))
				b.ReportAllocs()
				b.SetBytes(int64(dim * 8))
				for i := 0; i < b.N; i++ {
					PackActivationSigns(z, fc, dst)
				}
			})
		}
	}
}
