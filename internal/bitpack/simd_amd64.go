package bitpack

// This file gates the popcount and sign-pack assembly tiers
// (simd_amd64.s). The assembly computes exactly what the pure-Go kernels
// in kernels.go define — integer XOR+popcount, and the exactly-rounded
// analytic sign rule — so enabling a tier changes speed, never bits.
// Hosts without the required ISA (or other architectures) run the Go
// kernels and produce identical results.

// xorPopcntAVX512 reduces n words (n ≥ 8, n%8 == 0) of q XOR c through
// VPOPCNTQ into a single Hamming distance.
//
//go:noescape
func xorPopcntAVX512(q, c *uint64, n int, out *int64)

// xorPopcnt4AVX512 is the 1×4 tile: one query row against four class
// rows, four Hamming distances out (n ≥ 8, n%8 == 0).
//
//go:noescape
func xorPopcnt4AVX512(q, c0, c1, c2, c3 *uint64, n int, out *[4]int64)

// xorPopcntAVX2 is the AVX2 popcount tier (Mula's VPSHUFB nibble-LUT
// algorithm, VPSADBW-reduced): n ≥ 4, n%4 == 0, lut is nibbleLUT.
//
//go:noescape
func xorPopcntAVX2(q, c *uint64, n int, lut *[32]byte, out *int64)

// xorPopcnt4AVX2 is the AVX2 1×4 tile under the same contract.
//
//go:noescape
func xorPopcnt4AVX2(q, c0, c1, c2, c3 *uint64, n int, lut *[32]byte, out *[4]int64)

// packSignsAVX512 packs `groups` full 64-element words of activation
// signs using the analytic rule of packSignWordsGo, eight lanes at a
// time (VRNDSCALEPD floor + mask-register compares). consts is
// packConsts, so both tiers use bit-identical constants.
//
//go:noescape
func packSignsAVX512(z, fc *float64, groups int, consts *[4]float64, out *uint64)

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// detectISA probes CPUID leaves 1 and 7 plus XCR0 and returns the best
// kernel tier: AVX-512 needs AVX512F + AVX512VPOPCNTDQ and OS-saved
// ZMM/opmask state; AVX2 needs AVX2 and OS-saved YMM state.
func detectISA() int32 {
	const (
		osxsaveBit   = 1 << 27 // leaf 1 ECX
		avxBit       = 1 << 28 // leaf 1 ECX
		avx2Bit      = 1 << 5  // leaf 7 EBX
		avx512fBit   = 1 << 16 // leaf 7 EBX
		vpopcntdqBit = 1 << 14 // leaf 7 ECX
		ymmState     = 0x6     // XCR0: XMM+YMM
		zmmState     = 0xe6    // XCR0: XMM+YMM+opmask+ZMM hi/lo
	)
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return isaGeneric
	}
	_, _, c1, _ := cpuid(1, 0)
	if c1&(osxsaveBit|avxBit) != osxsaveBit|avxBit {
		return isaGeneric
	}
	xcr0, _ := xgetbv()
	_, b7, c7, _ := cpuid(7, 0)
	if xcr0&zmmState == zmmState && b7&avx512fBit != 0 && c7&vpopcntdqBit != 0 {
		return isaAVX512
	}
	if xcr0&ymmState == ymmState && b7&avx2Bit != 0 {
		return isaAVX2
	}
	return isaGeneric
}
