package bitpack

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// parityDims covers the interesting word-boundary shapes: sub-word,
// word-1, exact word, word+1, one kernel stride, the serving default,
// and a large non-round dimension with a padded tail.
var parityDims = []int{1, 63, 64, 65, 1024, 2048, 10000}

// availableISAs lists every dispatch tier this host can actually
// execute, lowest first.
func availableISAs() []int32 {
	isas := []int32{isaGeneric}
	if bestISA >= isaAVX2 {
		isas = append(isas, isaAVX2)
	}
	if bestISA >= isaAVX512 {
		isas = append(isas, isaAVX512)
	}
	return isas
}

func isaName(l int32) string {
	switch l {
	case isaAVX512:
		return "avx512"
	case isaAVX2:
		return "avx2"
	default:
		return "generic"
	}
}

// randomSigns fills a float row with a mix of magnitudes, exact zeros,
// negative zeros and large values so the sign predicates see every edge.
func randomSigns(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		switch rng.Intn(12) {
		case 0:
			x[i] = 0
		case 1:
			x[i] = math.Copysign(0, -1)
		case 2:
			x[i] = (rng.Float64() - 0.5) * 1e6
		case 3:
			x[i] = (rng.Float64() - 0.5) * 1e-6
		default:
			x[i] = rng.NormFloat64()
		}
	}
	return x
}

// TestScoreKernelParityAcrossISAs checks that every ISA tier returns the
// exact agreements the generic kernels define, for every boundary
// dimension, against the seed Vector implementation as ground truth.
func TestScoreKernelParityAcrossISAs(t *testing.T) {
	defer setISA(setISA(bestISA))
	rng := rand.New(rand.NewSource(42))
	const classesN, queriesN = 7, 5 // 7 classes: one 1×4 tile plus a 3-class remainder
	for _, dim := range parityDims {
		classes := NewMatrix(classesN, dim)
		queries := NewMatrix(queriesN, dim)
		classRows := make([][]float64, classesN)
		queryRows := make([][]float64, queriesN)
		for c := range classRows {
			classRows[c] = randomSigns(rng, dim)
			classes.PackRow(c, classRows[c])
		}
		for q := range queryRows {
			queryRows[q] = randomSigns(rng, dim)
			queries.PackRow(q, queryRows[q])
		}

		// Ground truth from the scalar seed implementation.
		want := make([]int32, queriesN*classesN)
		for q := range queryRows {
			qv := FromFloats(queryRows[q])
			for c := range classRows {
				want[q*classesN+c] = int32(Agreement(FromFloats(classRows[c]), qv))
			}
		}

		for _, isa := range availableISAs() {
			setISA(isa)
			got := make([]int32, len(want))
			ScoreBatchInto(classes, queries, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim %d isa %s: score[%d] = %d, want %d",
						dim, isaName(isa), i, got[i], want[i])
				}
			}
			// The raw kernels on padded rows must agree too.
			var h4 [4]int64
			xorPopcnt4(queries.Row(0), classes.Row(0), classes.Row(1), classes.Row(2), classes.Row(3), &h4)
			for c := 0; c < 4; c++ {
				if want := xorPopcntGo(queries.Row(0), classes.Row(c)); h4[c] != want {
					t.Fatalf("dim %d isa %s: xorPopcnt4[%d] = %d, want %d",
						dim, isaName(isa), c, h4[c], want)
				}
			}
			if got, want := xorPopcnt(queries.Row(1), classes.Row(5)), xorPopcntGo(queries.Row(1), classes.Row(5)); got != want {
				t.Fatalf("dim %d isa %s: xorPopcnt = %d, want %d", dim, isaName(isa), got, want)
			}
		}
	}
}

// TestPackSignParityAcrossISAs checks that the assembly sign-pack tier
// reproduces the Go analytic rule bit for bit on every boundary
// dimension, including reused (dirty) destination rows.
func TestPackSignParityAcrossISAs(t *testing.T) {
	defer setISA(setISA(bestISA))
	rng := rand.New(rand.NewSource(7))
	for _, dim := range parityDims {
		z := make([]float64, dim)
		fc := make([]float64, dim)
		for i := range z {
			switch rng.Intn(10) {
			case 0:
				z[i] = 0
			case 1:
				z[i] = math.Copysign(0, -1)
			case 2:
				z[i] = (rng.Float64() - 0.5) * 1e9 // huge angles
			case 3:
				z[i] = math.Inf(1)
			case 4:
				z[i] = math.NaN()
			default:
				z[i] = rng.NormFloat64() * 10
			}
			fc[i] = FracTurns(rng.Float64() * 2 * math.Pi)
		}
		stride := matrixStride(dim)
		want := make([]uint64, stride)
		setISA(isaGeneric)
		PackActivationSigns(z, fc, want)
		for _, isa := range availableISAs()[1:] {
			setISA(isa)
			got := make([]uint64, stride)
			for j := range got {
				got[j] = ^uint64(0) // dirty: pack must clear pads and tails
			}
			PackActivationSigns(z, fc, got)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("dim %d isa %s: pack word %d = %#x, want %#x",
						dim, isaName(isa), j, got[j], want[j])
				}
			}
		}
	}
}

// TestKernelParityQuick drives the popcount and sign-pack tiers with
// testing/quick-generated inputs at a fixed kernel-stride length.
func TestKernelParityQuick(t *testing.T) {
	defer setISA(setISA(bestISA))
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(99))}

	popcount := func(q, c [8]uint64) bool {
		want := xorPopcntGo(q[:], c[:])
		for _, isa := range availableISAs() {
			setISA(isa)
			if xorPopcnt(q[:], c[:]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(popcount, cfg); err != nil {
		t.Fatalf("popcount parity: %v", err)
	}

	pack := func(raw [64]float64, phases [64]float64) bool {
		fc := make([]float64, 64)
		for i, p := range phases {
			fc[i] = FracTurns(p)
		}
		want := make([]uint64, 1)
		packSignWordsGo(raw[:], fc, want)
		for _, isa := range availableISAs() {
			setISA(isa)
			got := make([]uint64, 1)
			packSignWords(raw[:], fc, got)
			if got[0] != want[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(pack, cfg); err != nil {
		t.Fatalf("sign-pack parity: %v", err)
	}
}

// TestKernelParityAcrossGOMAXPROCS reruns the score parity suite at
// several GOMAXPROCS settings: the kernels hold no shared state beyond
// the atomic dispatch tier, so parallelism must not change results.
func TestKernelParityAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			TestScoreKernelParityAcrossISAs(t)
			TestPackSignParityAcrossISAs(t)
		})
	}
}

// TestPredictBatchIntoTieRule pins the first-wins argmax tie rule to the
// float path's mat.ArgMax semantics.
func TestPredictBatchIntoTieRule(t *testing.T) {
	dim := 64
	classes := NewMatrix(3, dim)
	queries := NewMatrix(1, dim)
	row := make([]float64, dim)
	for i := range row {
		row[i] = 1
	}
	classes.PackRow(0, row)
	classes.PackRow(1, row) // identical to class 0: tie
	for i := range row {
		row[i] = -1
	}
	classes.PackRow(2, row)
	queries.PackRow(0, make([]float64, dim)) // all zeros pack as +1
	scores := make([]int32, 3)
	out := make([]int, 1)
	PredictBatchInto(classes, queries, scores, out)
	if out[0] != 0 {
		t.Fatalf("tie broke to class %d, want first-wins 0", out[0])
	}
	if scores[0] != scores[1] || scores[0] != int32(dim) {
		t.Fatalf("tie scores %v, want [%d %d ...]", scores, dim, dim)
	}
}
