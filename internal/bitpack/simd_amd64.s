// Popcount and sign-pack micro-kernels for the packed 1-bit serving
// path. The XOR+popcount kernels are pure integer arithmetic, so every
// tier returns identical Hamming distances by construction. The AVX-512
// sign-pack kernel executes the exactly-rounded analytic rule of
// packSignWordsGo (multiply, floor, subtract, add, ordered compares) on
// eight lanes at a time, with constants broadcast from the same
// packConsts array the Go kernel reads — bit-identical output on every
// input, including NaN/Inf activations and signed zeros.

#include "textflag.h"

// hsumq reduces the 8-qword accumulator zmm into out+off(DI).
#define HSUMQ(accz, accy, accx, off) \
	VEXTRACTI64X4 $1, accz, Y1       \
	VPADDQ        Y1, accy, accy     \
	VEXTRACTI64X2 $1, accy, X1       \
	VPADDQ        X1, accx, accx     \
	VPSHUFD       $0xee, accx, X1    \
	VPADDQ        X1, accx, accx     \
	VMOVQ         accx, AX           \
	MOVQ          AX, off(DI)

// hsumq2 reduces a 4-qword AVX2 accumulator ymm into out+off(DI).
#define HSUMQ2(accy, accx, off) \
	VEXTRACTI128 $1, accy, X1    \
	VPADDQ       X1, accx, accx  \
	VPSHUFD      $0xee, accx, X1 \
	VPADDQ       X1, accx, accx  \
	VMOVQ        accx, AX        \
	MOVQ         AX, off(DI)

// mulaStep computes per-byte popcounts of src XOR (cls) via the VPSHUFB
// nibble LUT (Y8), masks in Y9, zero in Y10, and accumulates the four
// qword partial sums into acc.
#define MULASTEP(cls, acc) \
	VPXOR   (cls), Y0, Y1  \
	VPAND   Y9, Y1, Y2     \
	VPSRLW  $4, Y1, Y3     \
	VPAND   Y9, Y3, Y3     \
	VPSHUFB Y2, Y8, Y2     \
	VPSHUFB Y3, Y8, Y3     \
	VPADDB  Y3, Y2, Y2     \
	VPSADBW Y10, Y2, Y2    \
	VPADDQ  Y2, acc, acc

// func xorPopcntAVX512(q, c *uint64, n int, out *int64)
// n ≥ 8 and n%8 == 0 (the Matrix stride contract).
TEXT ·xorPopcntAVX512(SB), NOSPLIT, $0-32
	MOVQ q+0(FP), SI
	MOVQ c+8(FP), DX
	MOVQ n+16(FP), CX
	MOVQ out+24(FP), DI
	VPXORQ Z4, Z4, Z4
	SHRQ   $3, CX

xp1loop:
	VMOVDQU64 (SI), Z2
	VPXORQ    (DX), Z2, Z2
	VPOPCNTQ  Z2, Z2
	VPADDQ    Z2, Z4, Z4
	ADDQ      $64, SI
	ADDQ      $64, DX
	DECQ      CX
	JNZ       xp1loop

	HSUMQ(Z4, Y4, X4, 0)
	VZEROUPPER
	RET

// func xorPopcnt4AVX512(q, c0, c1, c2, c3 *uint64, n int, out *[4]int64)
// The 1×4 tile: the query chunk is loaded once per iteration and XOR-
// popcounted against four class rows. n ≥ 8 and n%8 == 0.
TEXT ·xorPopcnt4AVX512(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), SI
	MOVQ c0+8(FP), R8
	MOVQ c1+16(FP), R9
	MOVQ c2+24(FP), R10
	MOVQ c3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DI
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	SHRQ   $3, CX

xp4loop:
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z2
	VPOPCNTQ  Z2, Z2
	VPADDQ    Z2, Z4, Z4
	VPXORQ    (R9), Z0, Z2
	VPOPCNTQ  Z2, Z2
	VPADDQ    Z2, Z5, Z5
	VPXORQ    (R10), Z0, Z2
	VPOPCNTQ  Z2, Z2
	VPADDQ    Z2, Z6, Z6
	VPXORQ    (R11), Z0, Z2
	VPOPCNTQ  Z2, Z2
	VPADDQ    Z2, Z7, Z7
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, R9
	ADDQ      $64, R10
	ADDQ      $64, R11
	DECQ      CX
	JNZ       xp4loop

	HSUMQ(Z4, Y4, X4, 0)
	HSUMQ(Z5, Y5, X5, 8)
	HSUMQ(Z6, Y6, X6, 16)
	HSUMQ(Z7, Y7, X7, 24)
	VZEROUPPER
	RET

// func xorPopcntAVX2(q, c *uint64, n int, lut *[32]byte, out *int64)
// Mula's VPSHUFB nibble-LUT popcount with a VPSADBW qword reduction per
// 4-word chunk. n ≥ 4 and n%4 == 0.
TEXT ·xorPopcntAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ c+8(FP), DX
	MOVQ n+16(FP), CX
	MOVQ lut+24(FP), BX
	MOVQ out+32(FP), DI
	VBROADCASTI128 (BX), Y8
	VBROADCASTI128 16(BX), Y9
	VPXOR          Y10, Y10, Y10
	VPXOR          Y11, Y11, Y11
	SHRQ           $2, CX

xa1loop:
	VMOVDQU (SI), Y0
	MULASTEP(DX, Y11)
	ADDQ    $32, SI
	ADDQ    $32, DX
	DECQ    CX
	JNZ     xa1loop

	HSUMQ2(Y11, X11, 0)
	VZEROUPPER
	RET

// func xorPopcnt4AVX2(q, c0, c1, c2, c3 *uint64, n int, lut *[32]byte, out *[4]int64)
// The AVX2 1×4 tile. n ≥ 4 and n%4 == 0.
TEXT ·xorPopcnt4AVX2(SB), NOSPLIT, $0-64
	MOVQ q+0(FP), SI
	MOVQ c0+8(FP), R8
	MOVQ c1+16(FP), R9
	MOVQ c2+24(FP), R10
	MOVQ c3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ lut+48(FP), BX
	MOVQ out+56(FP), DI
	VBROADCASTI128 (BX), Y8
	VBROADCASTI128 16(BX), Y9
	VPXOR          Y10, Y10, Y10
	VPXOR          Y11, Y11, Y11
	VPXOR          Y12, Y12, Y12
	VPXOR          Y13, Y13, Y13
	VPXOR          Y14, Y14, Y14
	SHRQ           $2, CX

xa4loop:
	VMOVDQU (SI), Y0
	MULASTEP(R8, Y11)
	MULASTEP(R9, Y12)
	MULASTEP(R10, Y13)
	MULASTEP(R11, Y14)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	DECQ    CX
	JNZ     xa4loop

	HSUMQ2(Y11, X11, 0)
	HSUMQ2(Y12, X12, 8)
	HSUMQ2(Y13, X13, 16)
	HSUMQ2(Y14, X14, 24)
	VZEROUPPER
	RET

// func packSignsAVX512(z, fc *float64, groups int, consts *[4]float64, out *uint64)
// Packs `groups` full 64-element words of activation signs: per lane
//	f = frac(z·inv2π); g = frac(f + fc)
//	bit = ((f ≤ ½) == (g ≤ ¼ ∨ g ≥ ¾)) ∨ (z == 0)
// Eight lanes per compare round; eight rounds build one output word via
// the rotate-in-from-the-top trick (chunk j lands at bits 8j..8j+7).
TEXT ·packSignsAVX512(SB), NOSPLIT, $0-40
	MOVQ z+0(FP), SI
	MOVQ fc+8(FP), DX
	MOVQ groups+16(FP), CX
	MOVQ consts+24(FP), BX
	MOVQ out+32(FP), DI
	VBROADCASTSD (BX), Z9    // 1/(2π)
	VBROADCASTSD 8(BX), Z10  // 0.5
	VBROADCASTSD 16(BX), Z11 // 0.25
	VBROADCASTSD 24(BX), Z12 // 0.75
	VPXORQ       Z13, Z13, Z13

psword:
	XORQ R13, R13
	MOVQ $8, R8

pschunk:
	VMOVUPD     (SI), Z1
	VMULPD      Z9, Z1, Z2      // f0 = z·inv2π
	VRNDSCALEPD $1, Z2, Z3      // floor(f0)
	VSUBPD      Z3, Z2, Z2      // f
	VADDPD      (DX), Z2, Z4    // g0 = f + fc
	VRNDSCALEPD $1, Z4, Z5      // floor(g0)
	VSUBPD      Z5, Z4, Z4      // g
	VCMPPD      $0x12, Z10, Z2, K1 // LE_OQ: f ≤ 0.5
	VCMPPD      $0x12, Z11, Z4, K2 // LE_OQ: g ≤ 0.25
	VCMPPD      $0x1d, Z12, Z4, K3 // GE_OQ: g ≥ 0.75
	VCMPPD      $0x00, Z13, Z1, K4 // EQ_OQ: z == 0
	KORW        K3, K2, K2
	KXNORW      K2, K1, K5
	KORW        K4, K5, K5
	KMOVW       K5, AX
	SHLQ        $56, AX
	SHRQ        $8, R13
	ORQ         AX, R13
	ADDQ        $64, SI
	ADDQ        $64, DX
	DECQ        R8
	JNZ         pschunk

	MOVQ R13, (DI)
	ADDQ $8, DI
	DECQ CX
	JNZ  psword

	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
