//go:build !amd64

package bitpack

// Non-amd64 builds run the pure-Go kernels exclusively; the assembly
// entry points below exist only to satisfy the dispatch code and are
// unreachable because detectISA pins the tier to isaGeneric.

func detectISA() int32 { return isaGeneric }

func xorPopcntAVX512(q, c *uint64, n int, out *int64) {
	panic("bitpack: AVX-512 kernel on non-amd64 build")
}

func xorPopcnt4AVX512(q, c0, c1, c2, c3 *uint64, n int, out *[4]int64) {
	panic("bitpack: AVX-512 kernel on non-amd64 build")
}

func xorPopcntAVX2(q, c *uint64, n int, lut *[32]byte, out *int64) {
	panic("bitpack: AVX2 kernel on non-amd64 build")
}

func xorPopcnt4AVX2(q, c0, c1, c2, c3 *uint64, n int, lut *[32]byte, out *[4]int64) {
	panic("bitpack: AVX2 kernel on non-amd64 build")
}

func packSignsAVX512(z, fc *float64, groups int, consts *[4]float64, out *uint64) {
	panic("bitpack: AVX-512 kernel on non-amd64 build")
}
