package bitpack

// Batch-serving layout and kernels-facing API. A Matrix stores packed
// hypervector rows at a stride rounded up to eight 64-bit words with the
// padding kept zero, so the score kernels never execute a masked tail:
// XOR of two zero pad words contributes nothing to a popcount. That one
// layout decision is what lets the assembly loops run full 512-bit
// strides unconditionally.

import (
	"fmt"
	"math"
)

// wordAlign is the row-stride granularity in 64-bit words (eight words =
// one 512-bit kernel step).
const wordAlign = 8

// Matrix is a dense row-major collection of packed bipolar hypervectors:
// bit d of row i set means dimension d of vector i is +1. Rows are
// Stride words apart; words at or beyond ceil(Dim/64), and bits at or
// beyond Dim in the last used word, are always zero.
type Matrix struct {
	Rows   int
	Dim    int
	Stride int
	Words  []uint64
}

// matrixStride returns the padded row stride in words for a dimension.
func matrixStride(dim int) int {
	words := (dim + 63) / 64
	return (words + wordAlign - 1) &^ (wordAlign - 1)
}

// NewMatrix returns an all-(−1) packed matrix of rows × dim.
func NewMatrix(rows, dim int) *Matrix {
	if rows <= 0 || dim <= 0 {
		panic(fmt.Sprintf("bitpack: non-positive matrix shape %d×%d", rows, dim))
	}
	stride := matrixStride(dim)
	return &Matrix{Rows: rows, Dim: dim, Stride: stride, Words: make([]uint64, rows*stride)}
}

// Row returns the full padded word slice backing row i.
func (a *Matrix) Row(i int) []uint64 {
	return a.Words[i*a.Stride : (i+1)*a.Stride]
}

// Bit reports whether dimension d of row i is +1.
func (a *Matrix) Bit(i, d int) bool {
	return a.Words[i*a.Stride+d/64]&(1<<uint(d%64)) != 0
}

// PackRow packs the signs of a float hypervector into row i (zero counts
// +1, the repo-wide convention), clearing pad words and trailing bits.
func (a *Matrix) PackRow(i int, x []float64) {
	if len(x) != a.Dim {
		panic(fmt.Sprintf("bitpack: PackRow length %d for dimension %d", len(x), a.Dim))
	}
	row := a.Row(i)
	for j := range row {
		row[j] = 0
	}
	for d, v := range x {
		if v >= 0 {
			row[d/64] |= 1 << uint(d%64)
		}
	}
}

// PackRows packs the sign view of float hypervectors (e.g. trained class
// weights) into a fresh kernel-ready matrix.
func PackRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		panic("bitpack: PackRows on empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		m.PackRow(i, r)
	}
	return m
}

// FracTurns reduces an angle in radians to its fractional number of full
// turns in [0,1), using exactly the constant and operations the sign-
// pack kernels use. Callers precompute FracTurns of each RBF phase and
// hand the result to PackActivationSigns.
func FracTurns(c float64) float64 {
	f := c * packConsts[0]
	f -= math.Floor(f)
	return f
}

// PackActivationSigns packs the signs of the RBF activation
// cos(z_d + c_d)·sin(z_d) for one encoded row, given the projection
// z and the per-dimension fractional phases fracPhase[d] =
// FracTurns(c_d). dst must hold at least ceil(len(z)/64) words (a Matrix
// row); the partial tail word is packed in pure Go on every ISA tier and
// all remaining words are zeroed, so the Matrix padding invariant holds
// even when rows are reused across batches.
func PackActivationSigns(z, fracPhase []float64, dst []uint64) {
	dim := len(z)
	if len(fracPhase) != dim {
		panic(fmt.Sprintf("bitpack: fracPhase length %d for dimension %d", len(fracPhase), dim))
	}
	used := (dim + 63) / 64
	if len(dst) < used {
		panic(fmt.Sprintf("bitpack: PackActivationSigns dst %d words, need %d", len(dst), used))
	}
	groups := dim / 64
	if groups > 0 {
		packSignWords(z[:groups*64], fracPhase[:groups*64], dst[:groups])
	}
	if tail := dim - groups*64; tail > 0 {
		dst[groups] = packSignTailBits(z[groups*64:], fracPhase[groups*64:])
	}
	for j := used; j < len(dst); j++ {
		dst[j] = 0
	}
}

// PackActivationSigns32 is PackActivationSigns for a float32 projection
// row — the packed serving tier's native width. Each float32 widens to
// float64 exactly, so the sign rule (and therefore the packed bits) is
// the same deterministic function on every host; the widening runs
// through a small stack buffer in chunks so the call allocates nothing
// and still feeds the SIMD sign-pack kernel whole words.
func PackActivationSigns32(z []float32, fracPhase []float64, dst []uint64) {
	dim := len(z)
	if len(fracPhase) != dim {
		panic(fmt.Sprintf("bitpack: fracPhase length %d for dimension %d", len(fracPhase), dim))
	}
	used := (dim + 63) / 64
	if len(dst) < used {
		panic(fmt.Sprintf("bitpack: PackActivationSigns32 dst %d words, need %d", len(dst), used))
	}
	var buf [512]float64 // 8 words per SIMD kernel call
	groups := dim / 64
	for g := 0; g < groups; {
		gn := groups - g
		if gn > 8 {
			gn = 8
		}
		lo := g * 64
		for j, v := range z[lo : lo+gn*64] {
			buf[j] = float64(v)
		}
		packSignWords(buf[:gn*64], fracPhase[lo:lo+gn*64], dst[g:g+gn])
		g += gn
	}
	if tail := dim - groups*64; tail > 0 {
		for j, v := range z[groups*64:] {
			buf[j] = float64(v)
		}
		dst[groups] = packSignTailBits(buf[:tail], fracPhase[groups*64:])
	}
	for j := used; j < len(dst); j++ {
		dst[j] = 0
	}
}

// ScoreBatchInto writes the agreement (Dim − 2·Hamming, i.e. the bipolar
// dot product) of every query row against every class row into dst,
// row-major queries.Rows × classes.Rows. Scoring is exact integer
// arithmetic, identical on every ISA tier.
func ScoreBatchInto(classes, queries *Matrix, dst []int32) {
	if classes.Dim != queries.Dim || classes.Stride != queries.Stride {
		panic(fmt.Sprintf("bitpack: score layout mismatch %d/%d vs %d/%d",
			classes.Dim, classes.Stride, queries.Dim, queries.Stride))
	}
	k := classes.Rows
	if len(dst) < queries.Rows*k {
		panic(fmt.Sprintf("bitpack: ScoreBatchInto dst %d, need %d", len(dst), queries.Rows*k))
	}
	dim := int64(queries.Dim)
	for i := 0; i < queries.Rows; i++ {
		q := queries.Row(i)
		row := dst[i*k : (i+1)*k]
		c := 0
		for ; c+4 <= k; c += 4 {
			var h [4]int64
			xorPopcnt4(q, classes.Row(c), classes.Row(c+1), classes.Row(c+2), classes.Row(c+3), &h)
			row[c] = int32(dim - 2*h[0])
			row[c+1] = int32(dim - 2*h[1])
			row[c+2] = int32(dim - 2*h[2])
			row[c+3] = int32(dim - 2*h[3])
		}
		for ; c < k; c++ {
			row[c] = int32(dim - 2*xorPopcnt(q, classes.Row(c)))
		}
	}
}

// PredictBatchInto scores every query against every class into the
// caller-provided scratch (≥ queries.Rows×classes.Rows) and writes the
// argmax class per query into out, first class winning ties — the same
// tie rule as the float path's mat.ArgMax.
func PredictBatchInto(classes, queries *Matrix, scores []int32, out []int) {
	if len(out) < queries.Rows {
		panic(fmt.Sprintf("bitpack: PredictBatchInto out %d, need %d", len(out), queries.Rows))
	}
	ScoreBatchInto(classes, queries, scores)
	k := classes.Rows
	for i := 0; i < queries.Rows; i++ {
		row := scores[i*k : (i+1)*k]
		best, bestScore := 0, row[0]
		for c := 1; c < k; c++ {
			if row[c] > bestScore {
				best, bestScore = c, row[c]
			}
		}
		out[i] = best
	}
}
