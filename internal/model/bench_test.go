package model

import (
	"fmt"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// benchModel returns a trained-looking model plus an encoded batch.
func benchModel(n, k, d int) (*Model, *mat.Dense, []int) {
	m := New(k, d)
	r := rng.New(3)
	r.FillNorm(m.Weights.Data, 0, 1)
	m.RefreshNorms()
	H := mat.New(n, d)
	r.FillNorm(H.Data, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = int(r.Uint64() % uint64(k))
	}
	return m, H, y
}

// BenchmarkSimilarityScore measures the batched cosine-similarity scoring
// that dominates both training (bucketing) and batched inference.
func BenchmarkSimilarityScore(b *testing.B) {
	for _, d := range []int{256, 2048} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			m, H, _ := benchModel(128, 26, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ScoreBatch(H)
			}
		})
	}
}

// BenchmarkPredictBatch measures batched classification throughput.
func BenchmarkPredictBatch(b *testing.B) {
	m, H, _ := benchModel(128, 26, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(H)
	}
}

// BenchmarkFit measures one adaptive-learning epoch over the batch.
func BenchmarkFit(b *testing.B) {
	m, H, y := benchModel(128, 26, 2048)
	cfg := TrainConfig{LearningRate: 0.05, Epochs: 1, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(m, H, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityScoreInto measures the steady-state batched scoring
// path with a caller-owned destination (0 allocs/op).
func BenchmarkSimilarityScoreInto(b *testing.B) {
	for _, d := range []int{256, 2048} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			m, H, _ := benchModel(128, 26, d)
			dst := mat.New(128, 26)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ScoreBatchInto(H, dst)
			}
		})
	}
}

// BenchmarkPredictBatchSteadyState measures batched inference with every
// buffer preallocated — the deployment inner loop (0 allocs/op).
func BenchmarkPredictBatchSteadyState(b *testing.B) {
	m, H, _ := benchModel(128, 26, 2048)
	scores := mat.New(128, 26)
	out := make([]int, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatchInto(H, scores, out)
	}
}

// BenchmarkFitSteadyState measures one adaptive-learning epoch through the
// reusable Trainer — the DistHD training iteration's inner loop
// (0 allocs/op once the order buffer is warm).
func BenchmarkFitSteadyState(b *testing.B) {
	m, H, y := benchModel(128, 26, 2048)
	tr := NewTrainer(m, 1)
	tr.Epoch(H, y, 0.05) // warm the order buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Epoch(H, y, 0.05)
	}
}
