// Package model implements the HDC class-hypervector model and the
// adaptive learning rule of Algorithm 1 in the DistHD paper. The model is
// shared by every HDC learner in this repository: baselineHD trains it over
// a static encoder, and DistHD / NeuralHD retrain it while regenerating
// encoder dimensions between iterations.
package model

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Model holds one hypervector per class plus cached norms so that cosine
// similarity (eq. 1 of the paper) reduces to a dot product.
type Model struct {
	// Weights holds the class hypervectors as rows (Classes × Dim).
	Weights *mat.Dense
	norms   []float64 // cached Euclidean norm per class row
}

// New returns a zero-initialized model for k classes and dimension d.
func New(k, d int) *Model {
	if k < 2 || d <= 0 {
		panic(fmt.Sprintf("model: New(%d, %d) invalid", k, d))
	}
	return &Model{Weights: mat.New(k, d), norms: make([]float64, k)}
}

// Classes returns the number of classes.
func (m *Model) Classes() int { return m.Weights.Rows }

// Dim returns the hypervector dimensionality.
func (m *Model) Dim() int { return m.Weights.Cols }

// Clone returns a deep copy.
func (m *Model) Clone() *Model {
	c := &Model{Weights: m.Weights.Clone(), norms: make([]float64, len(m.norms))}
	copy(c.norms, m.norms)
	return c
}

// RefreshNorms recomputes every cached class norm. Call after bulk edits to
// Weights made outside the package's own update methods.
func (m *Model) RefreshNorms() {
	for c := 0; c < m.Classes(); c++ {
		m.norms[c] = mat.Norm2(m.Weights.Row(c))
	}
}

// refreshNorm updates the cached norm of a single class.
func (m *Model) refreshNorm(c int) { m.norms[c] = mat.Norm2(m.Weights.Row(c)) }

// Scores writes δ(h, C_l) for every class into dst and returns dst.
// δ is cosine similarity; classes with zero norm score 0.
func (m *Model) Scores(h []float64, dst []float64) []float64 {
	if len(dst) != m.Classes() {
		panic("model: Scores dst length mismatch")
	}
	hn := mat.Norm2(h)
	if hn == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for c := 0; c < m.Classes(); c++ {
		if m.norms[c] == 0 {
			dst[c] = 0
			continue
		}
		dst[c] = mat.Dot(h, m.Weights.Row(c)) / (hn * m.norms[c])
	}
	return dst
}

// Predict returns the most similar class for hypervector h.
func (m *Model) Predict(h []float64) int {
	dst := make([]float64, m.Classes())
	return mat.ArgMax(m.Scores(h, dst))
}

// Top2 returns the two most similar classes for h, best first.
func (m *Model) Top2(h []float64) (int, int) {
	dst := make([]float64, m.Classes())
	return mat.ArgTop2(m.Scores(h, dst))
}

// TopK returns the k most similar classes in descending similarity.
func (m *Model) TopK(h []float64, k int) []int {
	dst := make([]float64, m.Classes())
	return mat.ArgTopK(m.Scores(h, dst), k)
}

// PredictBatch classifies every row of H. The score matrix comes from the
// shared scratch pool; use PredictBatchInto to control both buffers.
func (m *Model) PredictBatch(H *mat.Dense) []int {
	out := make([]int, H.Rows)
	s := mat.GetScratch(H.Rows * m.Classes())
	m.PredictBatchInto(H, mat.View(H.Rows, m.Classes(), s.Buf), out)
	s.Release()
	return out
}

// PredictBatchInto classifies every row of H into out (len H.Rows), using
// scores (H.Rows × Classes) as the scoring buffer. Steady-state batched
// inference through this entry point allocates nothing.
func (m *Model) PredictBatchInto(H, scores *mat.Dense, out []int) []int {
	if len(out) != H.Rows {
		panic("model: PredictBatchInto out length mismatch")
	}
	m.ScoreBatchInto(H, scores)
	if mat.Serial() {
		argmaxRows(scores, out, 0, H.Rows)
	} else {
		mat.ParallelFor(H.Rows, func(lo, hi int) {
			argmaxRows(scores, out, lo, hi)
		})
	}
	return out
}

// argmaxRows writes the argmax of each scores row into out.
func argmaxRows(scores *mat.Dense, out []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = mat.ArgMax(scores.Row(i))
	}
}

// ScoreBatch returns the full N×k similarity matrix for H.
func (m *Model) ScoreBatch(H *mat.Dense) *mat.Dense {
	return m.ScoreBatchInto(H, mat.New(H.Rows, m.Classes()))
}

// ScoreBatchInto writes the N×k cosine-similarity matrix of H into dst and
// returns it: one blocked GEMM H·Wᵀ (mat.MulTInto) followed by a norm
// scaling pass, instead of N independent dot-product loops. Rows with zero
// norm, and classes with zero norm, score 0. With caller-owned dst the
// steady-state path allocates nothing.
//
// Batch and single-sample scoring agree to floating-point rounding but not
// bitwise: Scores uses the 4-way-unrolled mat.Dot (the AdaptiveStep hot
// path cannot afford the blocked kernel's sequential lanes), while the
// batch path accumulates in the kernel's panel order. Unlike the encoding
// layer — where EncodeDims patches columns of a batch-encoded matrix and
// bitwise parity is therefore load-bearing — scored values from the two
// paths are never mixed in one structure, so sub-ulp disagreement on exact
// score ties is acceptable here.
func (m *Model) ScoreBatchInto(H, dst *mat.Dense) *mat.Dense {
	mat.MulTInto(dst, H, m.Weights)
	if mat.Serial() {
		m.scaleScoreRows(H, dst, 0, H.Rows)
	} else {
		mat.ParallelFor(H.Rows, func(lo, hi int) {
			m.scaleScoreRows(H, dst, lo, hi)
		})
	}
	return dst
}

// scaleScoreRows converts raw dot products in dst rows [lo, hi) to cosine
// similarities.
func (m *Model) scaleScoreRows(H, dst *mat.Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := dst.Row(i)
		hn := mat.Norm2(H.Row(i))
		if hn == 0 {
			for c := range row {
				row[c] = 0
			}
			continue
		}
		for c := range row {
			if m.norms[c] == 0 {
				row[c] = 0
			} else {
				row[c] /= hn * m.norms[c]
			}
		}
	}
}

// ZeroDims zeroes the given coordinates in every class hypervector. DistHD
// and NeuralHD call this right after regenerating those encoder dimensions,
// because the old class values at those coordinates were accumulated under
// the old base vectors and are meaningless under the new ones.
func (m *Model) ZeroDims(dims []int) {
	for _, d := range dims {
		if d < 0 || d >= m.Dim() {
			panic(fmt.Sprintf("model: ZeroDims index %d out of [0,%d)", d, m.Dim()))
		}
		for c := 0; c < m.Classes(); c++ {
			m.Weights.Row(c)[d] = 0
		}
	}
	m.RefreshNorms()
}

// AdaptiveStep applies the Algorithm 1 update for a single encoded sample
// h with true label y: if the most similar class is wrong, the wrong class
// is weakened and the true class strengthened, each scaled by how *novel*
// the sample is to that class (1 − δ). Returns true if the prediction was
// already correct.
func (m *Model) AdaptiveStep(h []float64, y int, lr float64, scratch []float64) bool {
	scores := m.Scores(h, scratch)
	pred := mat.ArgMax(scores)
	if pred == y {
		return true
	}
	// C_pred ← C_pred − η(1 − δ_pred)·H
	mat.Axpy(m.Weights.Row(pred), -lr*(1-scores[pred]), h)
	// C_true ← C_true + η(1 − δ_true)·H
	mat.Axpy(m.Weights.Row(y), lr*(1-scores[y]), h)
	m.refreshNorm(pred)
	m.refreshNorm(y)
	return false
}

// OnlineStep applies the OnlineHD-style single-pass rule for one encoded
// sample: the error-driven half is exactly AdaptiveStep (weaken the
// wrongly-winning class, strengthen the true class), and on top of it the
// true class additionally memorizes every ALREADY-CORRECT sample scaled by
// its novelty: C_y += η(1 − δ_y)·H. This is the one place the
// "memorize everything" initialization rule is defined; FitOnline's initial
// pass is a shuffled loop of OnlineStep calls. Returns AdaptiveStep's
// verdict: whether the pre-update prediction was already correct.
func (m *Model) OnlineStep(h []float64, y int, lr float64, scratch []float64) bool {
	correct := m.AdaptiveStep(h, y, lr, scratch)
	if correct {
		// scratch still holds the pre-update scores AdaptiveStep computed;
		// δ_y = scratch[y]. A misclassified sample already had its true
		// class strengthened by this exact term inside AdaptiveStep.
		mat.Axpy(m.Weights.Row(y), lr*(1-scratch[y]), h)
		m.refreshNorm(y)
	}
	return correct
}

// TrainConfig controls Fit.
type TrainConfig struct {
	// LearningRate is η in Algorithm 1.
	LearningRate float64
	// Epochs is the maximum number of full passes over the data.
	Epochs int
	// Patience stops training after this many consecutive epochs without
	// improvement in training accuracy; 0 disables early stopping.
	Patience int
	// Seed drives the per-epoch shuffle.
	Seed uint64
}

// DefaultTrainConfig returns the hyperparameters used throughout the
// experiments (η = 0.05, 20 epochs, no early stop).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LearningRate: 0.05, Epochs: 20, Seed: 1}
}

// TrainResult reports per-epoch training accuracy.
type TrainResult struct {
	// History[i] is the training accuracy observed during epoch i (fraction
	// of samples whose pre-update prediction was already correct).
	History []float64
	// Epochs is the number of epochs actually run.
	Epochs int
}

// Trainer runs Algorithm 1 epochs over a model with every buffer — the
// shuffle order, the score scratch, and the RNG itself — preallocated, so
// the steady-state training iteration allocates nothing. DistHD's
// train/regenerate loop owns one Trainer across all iterations, reseeding
// the shuffle stream per iteration.
type Trainer struct {
	m       *Model
	r       *rng.Rand
	order   []int
	scratch []float64
}

// NewTrainer returns a Trainer for m whose shuffle stream starts from seed.
func NewTrainer(m *Model, seed uint64) *Trainer {
	return &Trainer{m: m, r: rng.New(seed), scratch: make([]float64, m.Classes())}
}

// Reseed restarts the shuffle stream in place, as if the Trainer had been
// freshly created with this seed.
func (t *Trainer) Reseed(seed uint64) { t.r.Reseed(seed) }

// Epoch runs one shuffled adaptive pass (Algorithm 1) over (H, y) with
// learning rate lr and returns the fraction of samples whose pre-update
// prediction was already correct (1.0 for an empty batch). It consumes
// exactly the random draws Fit's per-epoch shuffle consumes, so Fit on a
// fresh Trainer reproduces the historical trajectories bit for bit.
func (t *Trainer) Epoch(H *mat.Dense, y []int, lr float64) float64 {
	n := H.Rows
	if cap(t.order) < n {
		t.order = make([]int, n)
	}
	order := t.order[:n]
	t.r.PermInto(order)
	correct := 0
	for _, i := range order {
		if t.m.AdaptiveStep(H.Row(i), y[i], lr, t.scratch) {
			correct++
		}
	}
	if n == 0 {
		return 1.0
	}
	return float64(correct) / float64(n)
}

// Fit runs Algorithm 1 for up to cfg.Epochs passes over the encoded
// training set H with labels y, shuffling the visit order each epoch.
func Fit(m *Model, H *mat.Dense, y []int, cfg TrainConfig) (*TrainResult, error) {
	if H.Rows != len(y) {
		return nil, fmt.Errorf("model: %d samples but %d labels", H.Rows, len(y))
	}
	if H.Cols != m.Dim() {
		return nil, fmt.Errorf("model: encoded dim %d != model dim %d", H.Cols, m.Dim())
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("model: non-positive learning rate %v", cfg.LearningRate)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("model: non-positive epoch count %d", cfg.Epochs)
	}
	t := NewTrainer(m, cfg.Seed)
	res := &TrainResult{History: make([]float64, 0, cfg.Epochs)}
	best := -1.0
	stall := 0
	for e := 0; e < cfg.Epochs; e++ {
		acc := t.Epoch(H, y, cfg.LearningRate)
		res.History = append(res.History, acc)
		res.Epochs = e + 1
		if cfg.Patience > 0 {
			if acc > best+1e-9 {
				best = acc
				stall = 0
			} else {
				stall++
				if stall >= cfg.Patience {
					break
				}
			}
		}
	}
	return res, nil
}

// FitOnline runs an OnlineHD-style single-pass initialization followed by
// cfg.Epochs of adaptive refinement. Unlike the purely error-driven
// Algorithm 1, the initial pass updates the true class on EVERY sample,
// scaled by novelty: C_y += η(1−δ_y)·H, and additionally weakens a
// wrongly-winning class (the OnlineStep rule). This converges faster from
// scratch at the cost of some saturation — the trade-off the
// iterative-vs-single-pass HDC literature explores.
func FitOnline(m *Model, H *mat.Dense, y []int, cfg TrainConfig) (*TrainResult, error) {
	if H.Rows != len(y) {
		return nil, fmt.Errorf("model: %d samples but %d labels", H.Rows, len(y))
	}
	if H.Cols != m.Dim() {
		return nil, fmt.Errorf("model: encoded dim %d != model dim %d", H.Cols, m.Dim())
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("model: non-positive learning rate %v", cfg.LearningRate)
	}
	scratch := make([]float64, m.Classes())
	r := rng.New(cfg.Seed ^ 0x0411e)
	correct := 0
	for _, i := range r.Perm(H.Rows) {
		if m.OnlineStep(H.Row(i), y[i], cfg.LearningRate, scratch) {
			correct++
		}
	}
	res := &TrainResult{Epochs: 1}
	if H.Rows > 0 {
		res.History = append(res.History, float64(correct)/float64(H.Rows))
	}
	if cfg.Epochs > 1 {
		refine := cfg
		refine.Epochs = cfg.Epochs - 1
		more, err := Fit(m, H, y, refine)
		if err != nil {
			return nil, err
		}
		res.History = append(res.History, more.History...)
		res.Epochs += more.Epochs
	}
	return res, nil
}

// Accuracy returns the fraction of rows of H whose prediction matches y.
func Accuracy(m *Model, H *mat.Dense, y []int) float64 {
	if H.Rows == 0 {
		return math.NaN()
	}
	pred := m.PredictBatch(H)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// TopKAccuracy returns the fraction of rows whose true label appears among
// the k most similar classes — the paper's "top-k classification" metric
// from Fig. 2(b).
func TopKAccuracy(m *Model, H *mat.Dense, y []int, k int) float64 {
	if H.Rows == 0 {
		return math.NaN()
	}
	s := mat.GetScratch(H.Rows * m.Classes())
	scores := mat.View(H.Rows, m.Classes(), s.Buf)
	m.ScoreBatchInto(H, scores)
	correct := 0
	for i := 0; i < H.Rows; i++ {
		top := mat.ArgTopK(scores.Row(i), k)
		for _, c := range top {
			if c == y[i] {
				correct++
				break
			}
		}
	}
	s.Release()
	return float64(correct) / float64(H.Rows)
}
