package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/rng"
)

// encodedToy returns a small, learnable encoded dataset: 3 well-separated
// Gaussian classes pushed through an RBF encoder.
func encodedToy(t *testing.T, d int, seed uint64) (tr, te *mat.Dense, trY, teY []int, k int) {
	t.Helper()
	spec := &dataset.Spec{
		Name: "toy", Features: 10, Classes: 3,
		Train: 250, Test: 100,
		Subclusters: 1, LatentDim: 4,
		CenterStd: 1.2, IntraStd: 0.25, Warp: 0.4, NoiseStd: 0.05,
		Seed: seed,
	}
	train, test, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dataset.NormalizePair(train, test)
	enc := encoding.NewRBF(train.Features(), d, seed^0xfeed)
	return enc.EncodeBatch(train.X), enc.EncodeBatch(test.X), train.Y, test.Y, train.Classes
}

func TestNewValidation(t *testing.T) {
	for _, args := range [][2]int{{1, 10}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", args[0], args[1])
				}
			}()
			New(args[0], args[1])
		}()
	}
}

func TestZeroModelScoresZero(t *testing.T) {
	m := New(3, 16)
	h := make([]float64, 16)
	rng.New(1).FillNorm(h, 0, 1)
	scores := m.Scores(h, make([]float64, 3))
	for _, s := range scores {
		if s != 0 {
			t.Fatalf("zero model scored %v", s)
		}
	}
}

func TestScoresZeroQuery(t *testing.T) {
	m := New(2, 4)
	copy(m.Weights.Row(0), []float64{1, 2, 3, 4})
	m.RefreshNorms()
	scores := m.Scores(make([]float64, 4), make([]float64, 2))
	if scores[0] != 0 || scores[1] != 0 {
		t.Fatal("zero query should score 0 everywhere")
	}
}

func TestScoresAreCosine(t *testing.T) {
	m := New(2, 3)
	copy(m.Weights.Row(0), []float64{1, 0, 0})
	copy(m.Weights.Row(1), []float64{0, 2, 0})
	m.RefreshNorms()
	h := []float64{3, 4, 0}
	scores := m.Scores(h, make([]float64, 2))
	if math.Abs(scores[0]-0.6) > 1e-12 || math.Abs(scores[1]-0.8) > 1e-12 {
		t.Fatalf("scores = %v, want [0.6 0.8]", scores)
	}
	if m.Predict(h) != 1 {
		t.Fatal("Predict should pick class 1")
	}
	i1, i2 := m.Top2(h)
	if i1 != 1 || i2 != 0 {
		t.Fatalf("Top2 = (%d,%d), want (1,0)", i1, i2)
	}
}

func TestAdaptiveStepCorrectSampleNoChange(t *testing.T) {
	m := New(2, 3)
	copy(m.Weights.Row(0), []float64{1, 0, 0})
	copy(m.Weights.Row(1), []float64{0, 1, 0})
	m.RefreshNorms()
	before := m.Weights.Clone()
	ok := m.AdaptiveStep([]float64{1, 0.1, 0}, 0, 0.1, make([]float64, 2))
	if !ok {
		t.Fatal("correctly classified sample reported as error")
	}
	for i := range before.Data {
		if m.Weights.Data[i] != before.Data[i] {
			t.Fatal("correct sample must not change the model")
		}
	}
}

func TestAdaptiveStepUpdatesBothClasses(t *testing.T) {
	m := New(2, 3)
	copy(m.Weights.Row(0), []float64{1, 0, 0})
	copy(m.Weights.Row(1), []float64{0, 1, 0})
	m.RefreshNorms()
	// Most similar to class 0 (but not perfectly aligned, so 1-δ > 0 and
	// the update is non-degenerate), true label 1.
	h := []float64{1, 0.2, 0.3}
	ok := m.AdaptiveStep(h, 1, 0.5, make([]float64, 2))
	if ok {
		t.Fatal("misclassified sample reported as correct")
	}
	// class 0 weakened along h, class 1 strengthened along h
	if m.Weights.At(0, 0) >= 1 {
		t.Fatalf("wrong class not weakened: %v", m.Weights.At(0, 0))
	}
	if m.Weights.At(1, 0) <= 0 {
		t.Fatalf("true class not strengthened: %v", m.Weights.At(1, 0))
	}
	// norm cache must be fresh
	if math.Abs(m.norms[0]-mat.Norm2(m.Weights.Row(0))) > 1e-12 {
		t.Fatal("norm cache stale after update")
	}
}

// The (1-δ) scaling: a sample nearly identical to its class vector causes a
// near-zero update; a novel sample causes a large one.
func TestAdaptiveUpdateScalesWithNovelty(t *testing.T) {
	mkModel := func() *Model {
		m := New(2, 4)
		copy(m.Weights.Row(0), []float64{1, 0, 0, 0})
		copy(m.Weights.Row(1), []float64{0, 0, 1, 0})
		m.RefreshNorms()
		return m
	}
	// Sample aligned with class 0 but labeled 1 (partial overlap case).
	familiar := []float64{1, 0, 0.05, 0}
	novel := []float64{0.4, 0.9, 0.05, 0}

	m1 := mkModel()
	m1.AdaptiveStep(familiar, 1, 1, make([]float64, 2))
	deltaFamiliar := math.Abs(m1.Weights.At(0, 0) - 1)

	m2 := mkModel()
	m2.AdaptiveStep(novel, 1, 1, make([]float64, 2))
	deltaNovel := math.Abs(m2.Weights.At(0, 0) - 1)

	if deltaFamiliar >= deltaNovel {
		t.Fatalf("familiar update %v should be smaller than novel update %v", deltaFamiliar, deltaNovel)
	}
}

func TestFitLearnsToy(t *testing.T) {
	tr, te, trY, teY, k := encodedToy(t, 512, 1)
	m := New(k, 512)
	cfg := DefaultTrainConfig()
	res, err := Fit(m, tr, trY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 || len(res.History) != res.Epochs {
		t.Fatal("bad train result bookkeeping")
	}
	acc := Accuracy(m, te, teY)
	if acc < 0.85 {
		t.Fatalf("test accuracy %.3f too low on easy toy task", acc)
	}
	// training accuracy should improve from epoch 1 to the best epoch
	first := res.History[0]
	best := first
	for _, a := range res.History {
		if a > best {
			best = a
		}
	}
	if best <= first && first < 0.99 {
		t.Fatalf("training accuracy never improved: history=%v", res.History)
	}
}

func TestFitValidation(t *testing.T) {
	m := New(2, 8)
	H := mat.New(4, 8)
	y := []int{0, 1, 0, 1}
	if _, err := Fit(m, H, y[:3], DefaultTrainConfig()); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := Fit(m, mat.New(4, 7), y, DefaultTrainConfig()); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	bad := DefaultTrainConfig()
	bad.LearningRate = 0
	if _, err := Fit(m, H, y, bad); err == nil {
		t.Fatal("zero learning rate accepted")
	}
	bad2 := DefaultTrainConfig()
	bad2.Epochs = 0
	if _, err := Fit(m, H, y, bad2); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestFitDeterministic(t *testing.T) {
	tr, _, trY, _, k := encodedToy(t, 128, 2)
	m1 := New(k, 128)
	m2 := New(k, 128)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := Fit(m1, tr, trY, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(m2, tr, trY, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range m1.Weights.Data {
		if m1.Weights.Data[i] != m2.Weights.Data[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestEarlyStopping(t *testing.T) {
	tr, _, trY, _, k := encodedToy(t, 256, 3)
	m := New(k, 256)
	cfg := TrainConfig{LearningRate: 0.05, Epochs: 100, Patience: 2, Seed: 1}
	res, err := Fit(m, tr, trY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 100 {
		t.Log("warning: early stopping never triggered in 100 epochs (acceptable but unusual)")
	}
	if res.Epochs < 3 {
		t.Fatalf("stopped suspiciously early: %d epochs", res.Epochs)
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	tr, _, trY, _, k := encodedToy(t, 128, 4)
	m := New(k, 128)
	if _, err := Fit(m, tr, trY, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(tr)
	for i := 0; i < tr.Rows; i++ {
		if single := m.Predict(tr.Row(i)); single != batch[i] {
			t.Fatalf("row %d: batch %d != single %d", i, batch[i], single)
		}
	}
}

func TestTopKAccuracyMonotone(t *testing.T) {
	tr, te, trY, teY, k := encodedToy(t, 256, 5)
	m := New(k, 256)
	if _, err := Fit(m, tr, trY, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	a1 := TopKAccuracy(m, te, teY, 1)
	a2 := TopKAccuracy(m, te, teY, 2)
	a3 := TopKAccuracy(m, te, teY, 3)
	if a1 > a2 || a2 > a3 {
		t.Fatalf("top-k accuracy not monotone: %v %v %v", a1, a2, a3)
	}
	if a3 != 1.0 && k == 3 {
		t.Fatalf("top-3 of 3 classes must be 1.0, got %v", a3)
	}
	if acc := Accuracy(m, te, teY); math.Abs(acc-a1) > 1e-12 {
		t.Fatalf("Accuracy %v != TopK(1) %v", acc, a1)
	}
}

func TestZeroDims(t *testing.T) {
	m := New(2, 4)
	for c := 0; c < 2; c++ {
		for d := 0; d < 4; d++ {
			m.Weights.Set(c, d, float64(c*4+d+1))
		}
	}
	m.RefreshNorms()
	m.ZeroDims([]int{1, 3})
	for c := 0; c < 2; c++ {
		if m.Weights.At(c, 1) != 0 || m.Weights.At(c, 3) != 0 {
			t.Fatal("listed dims not zeroed")
		}
		if m.Weights.At(c, 0) == 0 || m.Weights.At(c, 2) == 0 {
			t.Fatal("unlisted dims were zeroed")
		}
		if math.Abs(m.norms[c]-mat.Norm2(m.Weights.Row(c))) > 1e-12 {
			t.Fatal("norms stale after ZeroDims")
		}
	}
}

func TestZeroDimsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ZeroDims did not panic")
		}
	}()
	New(2, 4).ZeroDims([]int{4})
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 4)
	m.Weights.Set(0, 0, 5)
	m.RefreshNorms()
	c := m.Clone()
	c.Weights.Set(0, 0, 9)
	c.RefreshNorms()
	if m.Weights.At(0, 0) != 5 {
		t.Fatal("clone shares weights")
	}
	if m.norms[0] == c.norms[0] {
		t.Fatal("clone shares norm cache")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := New(2, 4)
	if !math.IsNaN(Accuracy(m, mat.New(0, 4), nil)) {
		t.Fatal("accuracy of empty set should be NaN")
	}
}

// Property: AdaptiveStep never updates when prediction is correct, always
// updates the two involved classes otherwise, and leaves other classes
// untouched.
func TestAdaptiveStepIsolationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const k, d = 5, 32
		m := New(k, d)
		r.FillNorm(m.Weights.Data, 0, 1)
		m.RefreshNorms()
		h := make([]float64, d)
		r.FillNorm(h, 0, 1)
		y := r.Intn(k)
		before := m.Weights.Clone()
		pred := m.Predict(h)
		m.AdaptiveStep(h, y, 0.3, make([]float64, k))
		for c := 0; c < k; c++ {
			changed := false
			for j := 0; j < d; j++ {
				if m.Weights.At(c, j) != before.At(c, j) {
					changed = true
					break
				}
			}
			if pred == y && changed {
				return false // nothing may change on a correct prediction
			}
			if pred != y {
				if (c == pred || c == y) != changed {
					return false // exactly the two involved classes change
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdaptiveEpoch512(b *testing.B) {
	spec := &dataset.Spec{
		Name: "bench", Features: 20, Classes: 5,
		Train: 200, Test: 10,
		Subclusters: 2, LatentDim: 6,
		CenterStd: 1, IntraStd: 0.4, Warp: 0.5, NoiseStd: 0.1, Seed: 1,
	}
	train, _, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	enc := encoding.NewRBF(train.Features(), 512, 2)
	H := enc.EncodeBatch(train.X)
	m := New(train.Classes, 512)
	scratch := make([]float64, train.Classes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < H.Rows; j++ {
			m.AdaptiveStep(H.Row(j), train.Y[j], 0.05, scratch)
		}
	}
}

func TestFitOnlineLearnsToy(t *testing.T) {
	tr, te, trY, teY, k := encodedToy(t, 256, 21)
	m := New(k, 256)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	res, err := FitOnline(m, tr, trY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 10 || len(res.History) != 10 {
		t.Fatalf("epochs bookkeeping: %d epochs, %d history", res.Epochs, len(res.History))
	}
	if acc := Accuracy(m, te, teY); acc < 0.85 {
		t.Fatalf("FitOnline accuracy %.3f too low", acc)
	}
}

func TestFitOnlineSinglePassBeatsNothing(t *testing.T) {
	tr, te, trY, teY, k := encodedToy(t, 256, 22)
	m := New(k, 256)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1 // single pass only
	if _, err := FitOnline(m, tr, trY, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, te, teY); acc < 0.6 {
		t.Fatalf("single-pass OnlineHD accuracy %.3f too low", acc)
	}
}

func TestFitOnlineValidation(t *testing.T) {
	m := New(2, 8)
	if _, err := FitOnline(m, mat.New(3, 8), []int{0, 1}, DefaultTrainConfig()); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := FitOnline(m, mat.New(2, 7), []int{0, 1}, DefaultTrainConfig()); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	bad := DefaultTrainConfig()
	bad.LearningRate = 0
	if _, err := FitOnline(m, mat.New(2, 8), []int{0, 1}, bad); err == nil {
		t.Fatal("zero lr accepted")
	}
}
