// Package quant provides the bit-level model deployment substrate for the
// robustness study (Fig. 8 of the DistHD paper): quantization of model
// parameters to 1/2/4/8-bit signed fixed point, a bit-exact packed memory
// image, and hardware-fault injection by flipping randomly chosen bits of
// that image — the paper's fault model ("percentage of random bit flips on
// memory storing DNN and DistHD models").
package quant

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Image is the packed memory image of a quantized tensor: N codes of Bits
// bits each, packed little-endian into 64-bit words, plus the per-tensor
// scale that maps codes back to real values.
type Image struct {
	// Bits per parameter (1, 2, 4 or 8).
	Bits int
	// N is the number of parameters.
	N int
	// Scale maps the maximum code magnitude back to the tensor's max |v|.
	Scale float64
	// Words holds the packed codes.
	Words []uint64
}

// ValidBits reports whether b is a supported precision.
func ValidBits(b int) bool { return b == 1 || b == 2 || b == 4 || b == 8 }

// maxCode returns the largest code for a precision: 2^b − 1 (offset
// binary) for b > 1, and 1 for the sign-only 1-bit case.
func maxCode(bits int) int64 {
	if bits == 1 {
		return 1
	}
	return (1 << bits) - 1
}

// Pack quantizes values to the given precision. For bits > 1 the encoding
// is offset binary over [−Scale, +Scale]: code c represents
// Scale·(2c/(2^b − 1) − 1), so all 2^b levels carry information (a
// symmetric two's-complement scheme would waste one level — at 2 bits that
// is a third of the representable range). For bits == 1 the code is the
// sign (+1/−1), matching the bipolar deployment HDC hardware uses.
func Pack(values []float64, bits int) (*Image, error) {
	if !ValidBits(bits) {
		return nil, fmt.Errorf("quant: unsupported precision %d bits", bits)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("quant: empty tensor")
	}
	maxAbs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	img := &Image{
		Bits:  bits,
		N:     len(values),
		Scale: maxAbs,
		Words: make([]uint64, (len(values)*bits+63)/64),
	}
	mc := maxCode(bits)
	for i, v := range values {
		var code uint64
		if bits == 1 {
			// 1 = non-negative, 0 = negative.
			if v >= 0 {
				code = 1
			}
		} else if maxAbs > 0 {
			// offset binary: [−maxAbs, +maxAbs] → [0, mc]
			q := int64(math.Round((v/maxAbs + 1) / 2 * float64(mc)))
			if q < 0 {
				q = 0
			}
			if q > mc {
				q = mc
			}
			code = uint64(q)
		} else {
			code = uint64((mc + 1) / 2) // zero tensor → midpoint code
		}
		img.setCode(i, code)
	}
	return img, nil
}

// setCode writes the i-th code (assumes it fits in Bits bits).
func (img *Image) setCode(i int, code uint64) {
	bitPos := i * img.Bits
	word, off := bitPos/64, uint(bitPos%64)
	mask := uint64((1 << img.Bits) - 1)
	img.Words[word] = (img.Words[word] &^ (mask << off)) | (code << off)
	// Codes never straddle word boundaries because Bits divides 64.
}

// code reads the i-th code.
func (img *Image) code(i int) uint64 {
	bitPos := i * img.Bits
	word, off := bitPos/64, uint(bitPos%64)
	mask := uint64((1 << img.Bits) - 1)
	return (img.Words[word] >> off) & mask
}

// Unpack reconstructs the real-valued tensor from the (possibly injured)
// memory image.
func (img *Image) Unpack() []float64 {
	out := make([]float64, img.N)
	mc := maxCode(img.Bits)
	for i := 0; i < img.N; i++ {
		code := img.code(i)
		if img.Bits == 1 {
			if code == 1 {
				out[i] = img.Scale
			} else {
				out[i] = -img.Scale
			}
			continue
		}
		if img.Scale > 0 {
			out[i] = (2*float64(code)/float64(mc) - 1) * img.Scale
		}
	}
	return out
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	words := make([]uint64, len(img.Words))
	copy(words, img.Words)
	return &Image{Bits: img.Bits, N: img.N, Scale: img.Scale, Words: words}
}

// TotalBits returns the number of payload bits in the image.
func (img *Image) TotalBits() int { return img.N * img.Bits }

// FlipBits injures the image by flipping exactly round(rate·TotalBits)
// distinct, uniformly chosen payload bits. rate must be in [0, 1].
func (img *Image) FlipBits(rate float64, r *rng.Rand) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("quant: flip rate %v outside [0,1]", rate)
	}
	total := img.TotalBits()
	flips := int(math.Round(rate * float64(total)))
	if flips == 0 {
		return nil
	}
	// Partial Fisher-Yates over bit indices gives distinct positions
	// without allocating when flips << total would allow reservoirs; the
	// index slice is fine at the sizes used here (≤ a few hundred k bits).
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < flips; i++ {
		j := i + r.Intn(total-i)
		idx[i], idx[j] = idx[j], idx[i]
		bit := idx[i]
		img.Words[bit/64] ^= 1 << uint(bit%64)
	}
	return nil
}

// QuantizeRoundTrip packs and immediately unpacks values, returning the
// quantized approximation — the "deployed" view of a model at a given
// precision with no faults.
func QuantizeRoundTrip(values []float64, bits int) ([]float64, error) {
	img, err := Pack(values, bits)
	if err != nil {
		return nil, err
	}
	return img.Unpack(), nil
}
