package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestValidBits(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		if !ValidBits(b) {
			t.Fatalf("bits %d should be valid", b)
		}
	}
	for _, b := range []int{0, 3, 5, 16, -1} {
		if ValidBits(b) {
			t.Fatalf("bits %d should be invalid", b)
		}
	}
}

func TestPackRejectsBad(t *testing.T) {
	if _, err := Pack([]float64{1}, 3); err == nil {
		t.Fatal("unsupported precision accepted")
	}
	if _, err := Pack(nil, 8); err == nil {
		t.Fatal("empty tensor accepted")
	}
}

func TestRoundTrip8Bit(t *testing.T) {
	vals := []float64{-1, -0.5, 0, 0.25, 0.9999, 1}
	got, err := QuantizeRoundTrip(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Abs(got[i]-v) > 1.0/127+1e-9 {
			t.Fatalf("8-bit round trip: %v -> %v", v, got[i])
		}
	}
}

func TestRoundTrip1BitIsSign(t *testing.T) {
	vals := []float64{-3, -0.1, 0, 0.1, 3}
	got, err := QuantizeRoundTrip(vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	// scale = 3, so outputs are ±3 with sign matching (0 counts positive)
	want := []float64{-3, -3, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("1-bit round trip = %v, want %v", got, want)
		}
	}
}

func TestHigherPrecisionLowerError(t *testing.T) {
	r := rng.New(1)
	vals := make([]float64, 4096)
	r.FillNorm(vals, 0, 1)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{1, 2, 4, 8} {
		got, err := QuantizeRoundTrip(vals, bits)
		if err != nil {
			t.Fatal(err)
		}
		var mse float64
		for i := range vals {
			d := got[i] - vals[i]
			mse += d * d
		}
		mse /= float64(len(vals))
		if mse >= prev {
			t.Fatalf("MSE did not decrease at %d bits: %v >= %v", bits, mse, prev)
		}
		prev = mse
	}
}

func TestZeroTensor(t *testing.T) {
	got, err := QuantizeRoundTrip([]float64{0, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got[1:] { // index 0 under 1-bit convention aside, 4-bit: all zero
		if v != 0 {
			t.Fatalf("zero tensor round trip produced %v", got)
		}
	}
}

func TestFlipBitsRateZeroNoop(t *testing.T) {
	img, err := Pack([]float64{1, -1, 0.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := img.Clone()
	if err := img.FlipBits(0, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	for i := range img.Words {
		if img.Words[i] != before.Words[i] {
			t.Fatal("rate 0 changed the image")
		}
	}
}

func TestFlipBitsExactCount(t *testing.T) {
	r := rng.New(2)
	vals := make([]float64, 1024)
	r.FillNorm(vals, 0, 1)
	img, err := Pack(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := img.Clone()
	rate := 0.05
	if err := img.FlipBits(rate, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range img.Words {
		x := img.Words[i] ^ before.Words[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	want := int(math.Round(rate * float64(img.TotalBits())))
	if diff != want {
		t.Fatalf("flipped %d bits, want exactly %d", diff, want)
	}
}

func TestFlipBitsBadRate(t *testing.T) {
	img, _ := Pack([]float64{1}, 8)
	if err := img.FlipBits(-0.1, rng.New(1)); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := img.FlipBits(1.5, rng.New(1)); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestFlipAllBitsInvertible(t *testing.T) {
	vals := []float64{1, -1, 0.5, -0.25}
	img, err := Pack(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	orig := img.Clone()
	if err := img.FlipBits(1, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	// flipping all bits twice restores the image
	if err := img.FlipBits(1, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	for i := range img.Words {
		if img.Words[i] != orig.Words[i] {
			t.Fatal("double full flip did not restore image")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	img, _ := Pack([]float64{1, 2, 3}, 8)
	c := img.Clone()
	c.Words[0] ^= 0xff
	if img.Words[0] == c.Words[0] {
		t.Fatal("Clone shares words")
	}
}

// Property: round trip error is bounded by scale/maxCode for every
// precision and arbitrary inputs.
func TestRoundTripErrorBound(t *testing.T) {
	f := func(seed uint64, rawBits uint8) bool {
		bits := []int{2, 4, 8}[int(rawBits)%3]
		r := rng.New(seed)
		vals := make([]float64, 64)
		r.FillNorm(vals, 0, 2)
		img, err := Pack(vals, bits)
		if err != nil {
			return false
		}
		got := img.Unpack()
		bound := img.Scale/float64(maxCode(bits)) + 1e-9
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > bound {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: packing is deterministic and Unpack(Pack(x)) is idempotent
// (quantizing an already-quantized tensor changes nothing).
func TestQuantizationIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		vals := make([]float64, 32)
		r.FillNorm(vals, 0, 1)
		once, err := QuantizeRoundTrip(vals, 4)
		if err != nil {
			return false
		}
		twice, err := QuantizeRoundTrip(once, 4)
		if err != nil {
			return false
		}
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
