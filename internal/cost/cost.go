// Package cost provides an analytical edge-hardware cost model for the
// learners in this repository: operation counts, model memory footprint,
// and first-order energy estimates for a single inference. The paper
// motivates DistHD with the resource limits of edge devices (§I) and
// reports only wall-clock time on a desktop CPU; this model makes the
// underlying asymmetries explicit — a D=0.5k HDC model moves 8× fewer
// bytes and executes 8× fewer MACs than the D*=4k static baseline, and a
// 1-bit deployment replaces float MACs with XOR+popcount.
//
// Energy constants are first-order per-operation figures for a 45 nm
// process (Horowitz, ISSCC'14 keynote): they are not meant to predict a
// specific chip, only to rank configurations the way an edge designer
// would.
package cost

import "fmt"

// Energy per operation in picojoules (45 nm, Horowitz ISSCC'14).
const (
	EnergyFloatMulPJ  = 3.7    // 32-bit float multiply
	EnergyFloatAddPJ  = 0.9    // 32-bit float add
	EnergyIntOpPJ     = 0.1    // 8-bit integer ALU op (add/xor/popcnt step)
	EnergySRAMReadPJ  = 5.0    // 32-bit read from a ~32 KiB SRAM
	EnergyDRAMReadPJ  = 640.0  // 32-bit read from DRAM
	sramCapacityBytes = 262144 // 256 KiB on-chip budget assumed for edge parts
)

// Profile is the per-inference cost of one model configuration.
type Profile struct {
	Name string
	// MACs counts multiply-accumulate operations (float unless BitOps).
	MACs int64
	// BitOps counts XOR+popcount word operations (1-bit deployments).
	BitOps int64
	// ModelBytes is the resident model size.
	ModelBytes int64
	// FitsSRAM reports whether the model fits the assumed on-chip budget.
	FitsSRAM bool
	// EnergyPJ is the estimated energy of one inference in picojoules.
	EnergyPJ float64
}

// EnergyUJ returns the energy estimate in microjoules.
func (p Profile) EnergyUJ() float64 { return p.EnergyPJ / 1e6 }

// memEnergy returns the energy to stream `bytes` of model once, from SRAM
// if the whole model fits on chip and from DRAM otherwise.
func memEnergy(modelBytes int64) float64 {
	words := float64(modelBytes) / 4
	if modelBytes <= sramCapacityBytes {
		return words * EnergySRAMReadPJ
	}
	return words * EnergyDRAMReadPJ
}

// HDCFloat profiles a float-valued HDC classifier: RBF encode (q MACs per
// dimension plus the trig, charged as 4 float ops) then k similarity dot
// products of length D.
func HDCFloat(name string, q, d, k int) Profile {
	encodeMACs := int64(q) * int64(d)
	simMACs := int64(k) * int64(d)
	macs := encodeMACs + simMACs
	// Base vectors + class vectors at float32.
	modelBytes := int64(d)*int64(q)*4 + int64(k)*int64(d)*4
	e := float64(macs)*(EnergyFloatMulPJ+EnergyFloatAddPJ) +
		float64(4*d)*EnergyFloatAddPJ + // cos/sin pair, first-order
		memEnergy(modelBytes)
	return Profile{
		Name:       name,
		MACs:       macs,
		ModelBytes: modelBytes,
		FitsSRAM:   modelBytes <= sramCapacityBytes,
		EnergyPJ:   e,
	}
}

// HDCBinary profiles a 1-bit HDC deployment: bipolar encode (still q MACs
// per dimension to project, then sign) and k packed Hamming comparisons of
// D/64 word ops each.
func HDCBinary(name string, q, d, k int) Profile {
	encodeMACs := int64(q) * int64(d)
	words := int64((d + 63) / 64)
	bitOps := int64(k) * words * 2 // xor + popcount per word
	modelBytes := int64(d)*int64(q)*4 + int64(k)*words*8
	e := float64(encodeMACs)*(EnergyFloatMulPJ+EnergyFloatAddPJ) +
		float64(bitOps)*EnergyIntOpPJ +
		memEnergy(modelBytes)
	return Profile{
		Name:       name,
		MACs:       encodeMACs,
		BitOps:     bitOps,
		ModelBytes: modelBytes,
		FitsSRAM:   modelBytes <= sramCapacityBytes,
		EnergyPJ:   e,
	}
}

// MLP profiles a fully-connected network given its layer widths
// (including input and output).
func MLP(name string, layers []int) (Profile, error) {
	if len(layers) < 2 {
		return Profile{}, fmt.Errorf("cost: MLP needs at least input and output layers")
	}
	var macs, params int64
	for l := 0; l+1 < len(layers); l++ {
		if layers[l] <= 0 || layers[l+1] <= 0 {
			return Profile{}, fmt.Errorf("cost: non-positive layer width at %d", l)
		}
		macs += int64(layers[l]) * int64(layers[l+1])
		params += int64(layers[l])*int64(layers[l+1]) + int64(layers[l+1])
	}
	modelBytes := params * 4
	e := float64(macs)*(EnergyFloatMulPJ+EnergyFloatAddPJ) + memEnergy(modelBytes)
	return Profile{
		Name:       name,
		MACs:       macs,
		ModelBytes: modelBytes,
		FitsSRAM:   modelBytes <= sramCapacityBytes,
		EnergyPJ:   e,
	}, nil
}

// SVMRFF profiles an RFF-lifted one-vs-rest SVM: the lift (q MACs per
// feature plus trig) and k decision dot products.
func SVMRFF(name string, q, rffDim, k int) Profile {
	liftMACs := int64(q) * int64(rffDim)
	decMACs := int64(k) * int64(rffDim+1)
	macs := liftMACs + decMACs
	modelBytes := int64(rffDim)*int64(q)*4 + int64(k)*int64(rffDim+1)*4
	e := float64(macs)*(EnergyFloatMulPJ+EnergyFloatAddPJ) + memEnergy(modelBytes)
	return Profile{
		Name:       name,
		MACs:       macs,
		ModelBytes: modelBytes,
		FitsSRAM:   modelBytes <= sramCapacityBytes,
		EnergyPJ:   e,
	}
}
