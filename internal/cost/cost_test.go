package cost

import "testing"

func TestHDCFloatScalesWithDim(t *testing.T) {
	low := HDCFloat("low", 561, 512, 12)
	high := HDCFloat("high", 561, 4096, 12)
	if high.MACs != 8*low.MACs {
		t.Fatalf("MACs should scale 8x with D: %d vs %d", low.MACs, high.MACs)
	}
	if high.EnergyPJ <= low.EnergyPJ {
		t.Fatal("energy should grow with D")
	}
	if high.ModelBytes <= low.ModelBytes {
		t.Fatal("model size should grow with D")
	}
}

func TestBinaryCheaperThanFloat(t *testing.T) {
	f := HDCFloat("float", 561, 4096, 12)
	b := HDCBinary("binary", 561, 4096, 12)
	if b.EnergyPJ >= f.EnergyPJ {
		t.Fatalf("1-bit deployment (%.0f pJ) should cost less than float (%.0f pJ)", b.EnergyPJ, f.EnergyPJ)
	}
	if b.ModelBytes >= f.ModelBytes {
		t.Fatal("packed model should be smaller")
	}
	if b.BitOps == 0 {
		t.Fatal("binary profile should count bit ops")
	}
}

func TestMLPProfile(t *testing.T) {
	p, err := MLP("dnn", []int{561, 128, 12})
	if err != nil {
		t.Fatal(err)
	}
	wantMACs := int64(561*128 + 128*12)
	if p.MACs != wantMACs {
		t.Fatalf("MLP MACs = %d, want %d", p.MACs, wantMACs)
	}
	if _, err := MLP("bad", []int{5}); err == nil {
		t.Fatal("single-layer MLP accepted")
	}
	if _, err := MLP("bad", []int{5, 0, 2}); err == nil {
		t.Fatal("zero-width layer accepted")
	}
}

func TestSVMRFFProfile(t *testing.T) {
	p := SVMRFF("svm", 561, 1024, 12)
	if p.MACs <= 0 || p.ModelBytes <= 0 || p.EnergyPJ <= 0 {
		t.Fatalf("degenerate profile: %+v", p)
	}
}

func TestSRAMBoundary(t *testing.T) {
	small := HDCBinary("small", 8, 512, 3)
	if !small.FitsSRAM {
		t.Fatalf("tiny model should fit SRAM: %d bytes", small.ModelBytes)
	}
	big := HDCFloat("big", 784, 8192, 26)
	if big.FitsSRAM {
		t.Fatalf("huge model should not fit SRAM: %d bytes", big.ModelBytes)
	}
	// DRAM residency must show up as an energy cliff at equal op count.
	perByteSmall := small.EnergyPJ / float64(small.ModelBytes)
	perByteBig := big.EnergyPJ / float64(big.ModelBytes)
	if perByteBig <= perByteSmall/2 {
		t.Log("note: big model per-byte energy dominated by compute, acceptable")
	}
}

func TestEnergyUJ(t *testing.T) {
	p := Profile{EnergyPJ: 2.5e6}
	if p.EnergyUJ() != 2.5 {
		t.Fatalf("EnergyUJ = %v, want 2.5", p.EnergyUJ())
	}
}
