package encoding

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestNGramValidation(t *testing.T) {
	for _, args := range [][3]int{{0, 8, 2}, {4, 0, 2}, {4, 8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewNGram%v did not panic", args)
				}
			}()
			NewNGram(args[0], args[1], args[2], 1)
		}()
	}
	e := NewNGram(5, 64, 3, 1)
	if e.Dim() != 64 || e.Alphabet() != 5 || e.N() != 3 {
		t.Fatal("accessors wrong")
	}
	if _, err := e.EncodeSequence([]int{0, 9}); err == nil {
		t.Fatal("out-of-alphabet symbol accepted")
	}
	if _, err := e.EncodeSequence([]int{-1}); err == nil {
		t.Fatal("negative symbol accepted")
	}
}

func TestNGramEmptyAndShort(t *testing.T) {
	e := NewNGram(4, 128, 3, 2)
	out, err := e.EncodeSequence(nil)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(out) != 0 {
		t.Fatal("empty sequence should encode to zero")
	}
	// Shorter than n: still produces something usable.
	short, err := e.EncodeSequence([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(short) == 0 {
		t.Fatal("short sequence encoded to zero")
	}
}

func TestNGramOrderSensitivity(t *testing.T) {
	e := NewNGram(8, 2048, 2, 3)
	ab, err := e.EncodeSequence([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := e.EncodeSequence([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sim := mat.CosineSim(ab, ba); math.Abs(sim) > 0.15 {
		t.Fatalf("order-reversed bigram too similar: cos=%v", sim)
	}
}

func TestNGramSharedContentSimilar(t *testing.T) {
	e := NewNGram(10, 2048, 3, 4)
	base := []int{1, 2, 3, 4, 5, 6, 7, 8}
	// One substitution near the end: most trigrams shared.
	near := []int{1, 2, 3, 4, 5, 6, 7, 9}
	// Disjoint symbols: no shared trigrams.
	far := []int{9, 8, 0, 9, 8, 0, 9, 8}

	hb, err := e.EncodeSequence(base)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := e.EncodeSequence(near)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := e.EncodeSequence(far)
	if err != nil {
		t.Fatal(err)
	}
	simNear := mat.CosineSim(hb, hn)
	simFar := mat.CosineSim(hb, hf)
	if simNear < 0.5 {
		t.Fatalf("one-substitution sequence should stay similar: cos=%v", simNear)
	}
	if simFar > simNear-0.3 {
		t.Fatalf("disjoint sequence not separated: near=%v far=%v", simNear, simFar)
	}
}

func TestNGramDeterministic(t *testing.T) {
	a, err := NewNGram(6, 256, 2, 9).EncodeSequence([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNGram(6, 256, 2, 9).EncodeSequence([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed n-gram encoders differ")
		}
	}
}

// A small end-to-end sanity: n-gram encodings of sequences drawn from two
// different Markov chains are separable by a nearest-centroid rule.
func TestNGramSeparatesMarkovSources(t *testing.T) {
	const d = 2048
	e := NewNGram(4, d, 2, 11)
	r := rng.New(12)

	gen := func(bias int, length int) []int {
		seq := make([]int, length)
		state := bias
		for i := range seq {
			if r.Float64() < 0.8 {
				state = (state + 1 + bias) % 4 // biased transition
			} else {
				state = r.Intn(4)
			}
			seq[i] = state
		}
		return seq
	}
	centroid := func(bias, n int) []float64 {
		c := make([]float64, d)
		for i := 0; i < n; i++ {
			h, err := e.EncodeSequence(gen(bias, 30))
			if err != nil {
				t.Fatal(err)
			}
			mat.Axpy(c, 1, h)
		}
		return c
	}
	c0 := centroid(0, 20)
	c1 := centroid(1, 20)

	correct := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		bias := i % 2
		h, err := e.EncodeSequence(gen(bias, 30))
		if err != nil {
			t.Fatal(err)
		}
		pred := 0
		if mat.CosineSim(h, c1) > mat.CosineSim(h, c0) {
			pred = 1
		}
		if pred == bias {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.8 {
		t.Fatalf("Markov sources not separable via n-gram encoding: acc=%v", acc)
	}
}
