package encoding

import (
	"fmt"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// benchBatch returns a deterministic n×q feature batch.
func benchBatch(n, q int, seed uint64) *mat.Dense {
	X := mat.New(n, q)
	rng.New(seed).FillNorm(X.Data, 0, 1)
	return X
}

// BenchmarkEncodeBatch measures the RBF batch encoder at the paper's
// feature width (q ≈ 617 for ISOLET; 512 here) across dimensionalities.
func BenchmarkEncodeBatch(b *testing.B) {
	for _, d := range []int{512, 2048} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			const n, q = 128, 512
			e := NewRBF(q, d, 7)
			X := benchBatch(n, q, 11)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.EncodeBatch(X)
			}
			b.ReportMetric(float64(n), "samples/op")
		})
	}
}

// BenchmarkEncodeSingle measures per-sample encoding latency (the
// inference-path encode) at D = 2048.
func BenchmarkEncodeSingle(b *testing.B) {
	const q, d = 512, 2048
	e := NewRBF(q, d, 7)
	x := benchBatch(1, q, 11).Row(0)
	dst := make([]float64, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(x, dst)
	}
}

// BenchmarkEncodeBatchInto measures the fused batch encoder with a
// caller-owned destination — the steady-state re-encode path (0 allocs/op).
func BenchmarkEncodeBatchInto(b *testing.B) {
	const n, q, d = 128, 512, 2048
	e := NewRBF(q, d, 7)
	X := benchBatch(n, q, 11)
	dst := mat.New(n, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncodeBatchInto(X, dst)
	}
	b.ReportMetric(float64(n), "samples/op")
}

// BenchmarkEncodeDimsBatch measures the cheap-retrain column patch at the
// DistHD shape: 10% of D=2048 dimensions regenerated.
func BenchmarkEncodeDimsBatch(b *testing.B) {
	const n, q, d = 128, 512, 2048
	e := NewRBF(q, d, 7)
	X := benchBatch(n, q, 11)
	H := e.EncodeBatch(X)
	dims := make([]int, d/10)
	for i := range dims {
		dims[i] = i * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncodeDimsBatch(X, dims, H)
	}
}
