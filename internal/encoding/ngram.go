package encoding

import (
	"fmt"

	"repro/internal/hv"
	"repro/internal/mat"
	"repro/internal/rng"
)

// NGram encodes discrete symbol sequences into hyperspace with the classic
// permutation n-gram scheme: each symbol gets a random bipolar identity,
// an n-gram is the binding of its symbols rotated by position
// (ρ^(n-1)(s₁) ⊛ … ⊛ ρ⁰(sₙ)), and a sequence is the bundle of all its
// n-grams. Similar sequences share n-grams and therefore bundle to similar
// hypervectors. This is the standard HDC substrate for language, gesture
// and event-stream classification; it complements the numeric encoders the
// DistHD evaluation uses.
type NGram struct {
	symbols *mat.Dense // alphabet × D bipolar identities
	n       int
}

// NewNGram builds an n-gram encoder over an alphabet of the given size.
func NewNGram(alphabet, d, n int, seed uint64) *NGram {
	if alphabet <= 0 || d <= 0 || n <= 0 {
		panic(fmt.Sprintf("encoding: NewNGram(%d, %d, %d) invalid", alphabet, d, n))
	}
	r := rng.New(seed)
	e := &NGram{symbols: mat.New(alphabet, d), n: n}
	for s := 0; s < alphabet; s++ {
		copy(e.symbols.Row(s), hv.RandomBipolar(d, r))
	}
	return e
}

// Dim returns the hypervector dimensionality.
func (e *NGram) Dim() int { return e.symbols.Cols }

// Alphabet returns the number of distinct symbols.
func (e *NGram) Alphabet() int { return e.symbols.Rows }

// N returns the n-gram order.
func (e *NGram) N() int { return e.n }

// EncodeSequence returns the bundled n-gram hypervector of the symbol
// sequence. Sequences shorter than n yield the bundle of what is available
// (a single (len)-gram); an empty sequence returns the zero vector.
// Symbols outside [0, Alphabet) are an error.
func (e *NGram) EncodeSequence(seq []int) ([]float64, error) {
	d := e.Dim()
	out := make([]float64, d)
	for _, s := range seq {
		if s < 0 || s >= e.Alphabet() {
			return nil, fmt.Errorf("encoding: symbol %d outside alphabet [0,%d)", s, e.Alphabet())
		}
	}
	if len(seq) == 0 {
		return out, nil
	}
	order := e.n
	if len(seq) < order {
		order = len(seq)
	}
	gram := make([]float64, d)
	for start := 0; start+order <= len(seq); start++ {
		// gram = ρ^(order-1)(s_start) ⊛ … ⊛ ρ⁰(s_{start+order-1})
		for i := range gram {
			gram[i] = 1
		}
		for j := 0; j < order; j++ {
			sym := e.symbols.Row(seq[start+j])
			rot := order - 1 - j
			for i := range gram {
				// permute by rot: source index (i - rot) mod d
				src := (i - rot) % d
				if src < 0 {
					src += d
				}
				gram[i] *= sym[src]
			}
		}
		mat.Axpy(out, 1, gram)
	}
	return out, nil
}
