package encoding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitpack"
	"repro/internal/mat"
)

// signGuard is the |activation| band inside which the analytic sign rule
// and the float cos·sin evaluation may legitimately disagree (both are
// correct to their rounding; the true sign is numerically undecided
// there). The packed path projects in float32, so the band covers the
// single-precision GEMM error, not just double rounding.
const signGuard = 1e-4

// TestPackedEncodeMatchesFloatSigns checks that the packed batch encode
// produces exactly the sign bits of the f32 activations, outside the
// numerically undecided band, and that all-zero inputs pack as +1 like
// the float path's ±0 ≥ 0.
func TestPackedEncodeMatchesFloatSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []struct{ q, d int }{{7, 63}, {16, 256}, {54, 2048}} {
		e := NewRBF(shape.q, shape.d, 11)
		p, err := NewPackedRBF(e)
		if err != nil {
			t.Fatalf("NewPackedRBF: %v", err)
		}
		const n = 9
		X := mat.New(n, shape.q)
		for i := range X.Data {
			X.Data[i] = rng.NormFloat64()
		}
		copy(X.Row(n-1), make([]float64, shape.q)) // all-zero row

		H := e.EncodeBatch(X)
		X32 := mat.NewDense32(n, shape.q)
		X32.SetFrom(X)
		z := mat.NewDense32(n, shape.d)
		packed := bitpack.NewMatrix(n, shape.d)
		p.EncodeBatchPackedInto(X32, z, packed)

		for i := 0; i < n; i++ {
			for d := 0; d < shape.d; d++ {
				act := H.Row(i)[d]
				if math.Abs(act) < signGuard {
					continue
				}
				if got, want := packed.Bit(i, d), act >= 0; got != want {
					t.Fatalf("q=%d d=%d: row %d dim %d packed %v, f32 activation %v",
						shape.q, shape.d, i, d, got, act)
				}
			}
		}
		// The all-zero row projects to z == 0 everywhere: every activation
		// is ±0, which the float path packs as +1. The packed path must too.
		for d := 0; d < shape.d; d++ {
			if !packed.Bit(n-1, d) {
				t.Fatalf("q=%d d=%d: zero row packed dim %d as −1, want +1", shape.q, shape.d, d)
			}
		}
	}
}

// TestPackedEncodeSingleMatchesBatch checks single-sample packed encodes
// agree with the batch path bit for bit, including after regeneration
// (which must refresh the fractional-phase cache).
func TestPackedEncodeSingleMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewRBF(12, 130, 5)
	p, err := NewPackedRBF(e)
	if err != nil {
		t.Fatalf("NewPackedRBF: %v", err)
	}
	check := func() {
		t.Helper()
		const n = 5
		X := mat.New(n, 12)
		for i := range X.Data {
			X.Data[i] = rng.NormFloat64()
		}
		X32 := mat.NewDense32(n, 12)
		X32.SetFrom(X)
		z := mat.NewDense32(n, 130)
		batch := bitpack.NewMatrix(n, 130)
		p.EncodeBatchPackedInto(X32, z, batch)
		xs := make([]float32, mat.Stride32(12))
		zs := make([]float32, mat.Stride32(130))
		single := make([]uint64, batch.Stride)
		for i := 0; i < n; i++ {
			p.EncodePacked(X.Row(i), xs, zs, single)
			for j, w := range batch.Row(i) {
				if single[j] != w {
					t.Fatalf("row %d word %d: single %#x, batch %#x", i, j, single[j], w)
				}
			}
		}
	}
	check()
	e.Regenerate([]int{0, 7, 129})
	check()
}

// TestNewPackedRBFRejectsNonRBF pins the fallback contract for encoder
// families without a packed sign rule.
func TestNewPackedRBFRejectsNonRBF(t *testing.T) {
	if _, err := NewPackedRBF(NewLinear(4, 32, true, 1)); err == nil {
		t.Fatal("NewPackedRBF accepted a Linear encoder")
	}
}
