package encoding

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func randomInput(q int, seed uint64) []float64 {
	x := make([]float64, q)
	rng.New(seed).FillNorm(x, 0, 1)
	return x
}

func TestRBFShape(t *testing.T) {
	e := NewRBF(10, 256, 1)
	if e.Dim() != 256 || e.Features() != 10 {
		t.Fatalf("Dim=%d Features=%d", e.Dim(), e.Features())
	}
}

func TestRBFOutputRange(t *testing.T) {
	e := NewRBF(8, 512, 2)
	dst := make([]float64, 512)
	e.Encode(randomInput(8, 3), dst)
	for _, v := range dst {
		// cos(·)·sin(·) is bounded by 1 in magnitude (actually by 1/2 for
		// equal arguments, but phases differ, so just assert the hard bound).
		if math.Abs(v) > 1 {
			t.Fatalf("RBF output %v outside [-1,1]", v)
		}
	}
}

func TestRBFDeterministic(t *testing.T) {
	x := randomInput(8, 4)
	a := make([]float64, 128)
	b := make([]float64, 128)
	NewRBF(8, 128, 7).Encode(x, a)
	NewRBF(8, 128, 7).Encode(x, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed RBF encoders differ")
		}
	}
}

func TestRBFSeedsDiffer(t *testing.T) {
	x := randomInput(8, 4)
	a := make([]float64, 128)
	b := make([]float64, 128)
	NewRBF(8, 128, 1).Encode(x, a)
	NewRBF(8, 128, 2).Encode(x, b)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different-seed RBF encoders identical")
	}
}

// Similar inputs must encode to similar hypervectors and dissimilar inputs
// to dissimilar ones (the kernel property that makes RBF encoding useful).
func TestRBFLocality(t *testing.T) {
	e := NewRBF(16, 2048, 5)
	x := randomInput(16, 6)
	near := make([]float64, 16)
	copy(near, x)
	for i := range near {
		near[i] += 0.01
	}
	far := randomInput(16, 99)

	hx := make([]float64, e.Dim())
	hn := make([]float64, e.Dim())
	hf := make([]float64, e.Dim())
	e.Encode(x, hx)
	e.Encode(near, hn)
	e.Encode(far, hf)

	simNear := mat.CosineSim(hx, hn)
	simFar := mat.CosineSim(hx, hf)
	if simNear < 0.9 {
		t.Fatalf("nearby inputs encode too differently: cos=%v", simNear)
	}
	if simFar > simNear-0.2 {
		t.Fatalf("far input not separated: near=%v far=%v", simNear, simFar)
	}
}

func TestRBFEncodeBatchMatchesSingle(t *testing.T) {
	e := NewRBF(6, 64, 8)
	X := mat.New(5, 6)
	rng.New(9).FillNorm(X.Data, 0, 1)
	batch := e.EncodeBatch(X)
	single := make([]float64, 64)
	for i := 0; i < 5; i++ {
		e.Encode(X.Row(i), single)
		for j := range single {
			if batch.At(i, j) != single[j] {
				t.Fatalf("batch row %d differs from single encode", i)
			}
		}
	}
}

func TestRBFRegenerateChangesOnlyListedDims(t *testing.T) {
	e := NewRBF(6, 64, 10)
	x := randomInput(6, 11)
	before := make([]float64, 64)
	e.Encode(x, before)

	dims := []int{3, 17, 40}
	e.Regenerate(dims)
	after := make([]float64, 64)
	e.Encode(x, after)

	changed := map[int]bool{}
	for _, d := range dims {
		changed[d] = true
	}
	for i := range after {
		if changed[i] {
			if after[i] == before[i] {
				t.Fatalf("dim %d should have changed after regeneration", i)
			}
		} else if after[i] != before[i] {
			t.Fatalf("dim %d changed but was not regenerated", i)
		}
	}
}

func TestRBFRegenerateOutOfRangePanics(t *testing.T) {
	e := NewRBF(4, 16, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Regenerate did not panic")
		}
	}()
	e.Regenerate([]int{16})
}

func TestRBFRegenerateAdvancesStream(t *testing.T) {
	// Regenerating the same dim twice must give different bases both times.
	e := NewRBF(4, 16, 2)
	first := make([]float64, 4)
	copy(first, e.BaseRow(5))
	e.Regenerate([]int{5})
	second := make([]float64, 4)
	copy(second, e.BaseRow(5))
	e.Regenerate([]int{5})
	third := e.BaseRow(5)
	same12, same23 := true, true
	for i := range first {
		if first[i] != second[i] {
			same12 = false
		}
		if second[i] != third[i] {
			same23 = false
		}
	}
	if same12 || same23 {
		t.Fatal("regeneration did not redraw the base vector")
	}
}

func TestLinearBipolarOutput(t *testing.T) {
	e := NewLinear(8, 128, true, 3)
	dst := make([]float64, 128)
	e.Encode(randomInput(8, 4), dst)
	for _, v := range dst {
		if v != 1 && v != -1 {
			t.Fatalf("bipolar Linear emitted %v", v)
		}
	}
}

func TestLinearRealOutput(t *testing.T) {
	e := NewLinear(8, 128, false, 3)
	dst := make([]float64, 128)
	e.Encode(randomInput(8, 4), dst)
	nonBipolar := false
	for _, v := range dst {
		if v != 1 && v != -1 {
			nonBipolar = true
		}
	}
	if !nonBipolar {
		t.Fatal("real-valued Linear produced only ±1, suspicious")
	}
}

func TestLinearRegenerate(t *testing.T) {
	e := NewLinear(8, 64, false, 5)
	x := randomInput(8, 6)
	before := make([]float64, 64)
	e.Encode(x, before)
	e.Regenerate([]int{0, 63})
	after := make([]float64, 64)
	e.Encode(x, after)
	if after[0] == before[0] || after[63] == before[63] {
		t.Fatal("regenerated dims unchanged")
	}
	for i := 1; i < 63; i++ {
		if after[i] != before[i] {
			t.Fatalf("untouched dim %d changed", i)
		}
	}
}

func TestIDLevelShape(t *testing.T) {
	e := NewIDLevel(10, 256, 16, -3, 3, 1)
	if e.Dim() != 256 || e.Features() != 10 || e.Levels() != 16 {
		t.Fatalf("Dim=%d Features=%d Levels=%d", e.Dim(), e.Features(), e.Levels())
	}
}

func TestIDLevelQuantization(t *testing.T) {
	e := NewIDLevel(2, 64, 10, 0, 1, 2)
	if e.Level(-5) != 0 {
		t.Fatal("below-range value should clamp to level 0")
	}
	if e.Level(5) != 9 {
		t.Fatal("above-range value should clamp to top level")
	}
	if e.Level(0.55) != 5 {
		t.Fatalf("Level(0.55) = %d, want 5", e.Level(0.55))
	}
}

func TestIDLevelAdjacentLevelsSimilar(t *testing.T) {
	e := NewIDLevel(2, 4096, 16, -3, 3, 3)
	adj := mat.CosineSim(e.levels.Row(0), e.levels.Row(1))
	farSim := mat.CosineSim(e.levels.Row(0), e.levels.Row(15))
	if adj < 0.8 {
		t.Fatalf("adjacent levels dissimilar: cos=%v", adj)
	}
	if farSim > 0.3 {
		t.Fatalf("extreme levels too similar: cos=%v", farSim)
	}
}

func TestIDLevelLocality(t *testing.T) {
	e := NewIDLevel(16, 4096, 32, -3, 3, 4)
	x := randomInput(16, 5)
	near := make([]float64, 16)
	copy(near, x)
	near[0] += 0.05
	far := randomInput(16, 77)
	hx := make([]float64, e.Dim())
	hn := make([]float64, e.Dim())
	hf := make([]float64, e.Dim())
	e.Encode(x, hx)
	e.Encode(near, hn)
	e.Encode(far, hf)
	simNear := mat.CosineSim(hx, hn)
	simFar := mat.CosineSim(hx, hf)
	if simNear < 0.9 {
		t.Fatalf("tiny perturbation changed encoding too much: cos=%v", simNear)
	}
	// Level vectors vary smoothly, so unrelated inputs remain moderately
	// similar by construction; what matters is the ordering with margin.
	if simFar > simNear-0.1 {
		t.Fatalf("unrelated input not separated: near=%v far=%v", simNear, simFar)
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewRBF(0, 10, 1) },
		func() { NewRBF(10, 0, 1) },
		func() { NewLinear(0, 10, false, 1) },
		func() { NewIDLevel(0, 10, 4, 0, 1, 1) },
		func() { NewIDLevel(2, 10, 1, 0, 1, 1) },
		func() { NewIDLevel(2, 10, 4, 1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: invalid constructor did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEncodeBatchWrongWidthPanics(t *testing.T) {
	e := NewRBF(4, 16, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width batch did not panic")
		}
	}()
	e.EncodeBatch(mat.New(2, 5))
}

// Property: regeneration leaves all non-listed dimensions bit-identical,
// for arbitrary seeds and dim choices.
func TestRegenerationIsolationProperty(t *testing.T) {
	f := func(seed uint64, rawDim uint8) bool {
		const D = 32
		d := int(rawDim) % D
		e := NewRBF(4, D, seed)
		x := randomInput(4, seed^0xabc)
		before := make([]float64, D)
		e.Encode(x, before)
		e.Regenerate([]int{d})
		after := make([]float64, D)
		e.Encode(x, after)
		for i := range after {
			if i != d && after[i] != before[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRBFEncode784x2048(b *testing.B) {
	e := NewRBF(784, 2048, 1)
	x := randomInput(784, 2)
	dst := make([]float64, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(x, dst)
	}
}

func TestRBFParamsRoundTrip(t *testing.T) {
	e := NewRBF(6, 32, 44)
	x := randomInput(6, 45)
	want := make([]float64, 32)
	e.Encode(x, want)

	base, phase, sigma := e.Params()
	re, err := NewRBFFromParams(base, phase, sigma, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 32)
	re.Encode(x, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("reconstructed encoder differs from original")
		}
	}
	// Reconstructed encoder must be independent of the original's storage.
	re.Regenerate([]int{0})
	orig := make([]float64, 32)
	e.Encode(x, orig)
	if orig[0] != want[0] {
		t.Fatal("NewRBFFromParams aliased the original base matrix")
	}
}

func TestNewRBFFromParamsValidation(t *testing.T) {
	e := NewRBF(4, 8, 1)
	base, phase, _ := e.Params()
	if _, err := NewRBFFromParams(base, phase, 0, 1); err == nil {
		t.Fatal("zero sigma accepted")
	}
	if _, err := NewRBFFromParams(base, phase[:4], 0.5, 1); err == nil {
		t.Fatal("phase length mismatch accepted")
	}
	if _, err := NewRBFFromParams(nil, phase, 0.5, 1); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestEncodeDimsMatchesEncode(t *testing.T) {
	for _, mk := range []func() Regenerable{
		func() Regenerable { return NewRBF(5, 24, 3) },
		func() Regenerable { return NewLinear(5, 24, true, 3) },
		func() Regenerable { return NewLinear(5, 24, false, 3) },
	} {
		e := mk()
		x := randomInput(5, 9)
		full := make([]float64, 24)
		e.Encode(x, full)
		dims := []int{0, 7, 23, 11}
		part := make([]float64, len(dims))
		e.EncodeDims(x, dims, part)
		for j, d := range dims {
			if part[j] != full[d] {
				t.Fatalf("EncodeDims[%d] = %v, Encode[%d] = %v", j, part[j], d, full[d])
			}
		}
	}
}

func TestEncodeDimsSizeMismatchPanics(t *testing.T) {
	e := NewRBF(4, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeDims size mismatch did not panic")
		}
	}()
	e.EncodeDims(make([]float64, 4), []int{1, 2}, make([]float64, 3))
}

func TestEncodeSizeMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { NewRBF(4, 8, 1).Encode(make([]float64, 3), make([]float64, 8)) },
		func() { NewLinear(4, 8, false, 1).Encode(make([]float64, 4), make([]float64, 7)) },
		func() { NewIDLevel(4, 8, 4, 0, 1, 1).Encode(make([]float64, 5), make([]float64, 8)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: size mismatch did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestEncodeDimsBatchMatchesEncodeDims pins the batched column-patching
// path to the per-sample EncodeDims reference bitwise, for both regenerable
// encoder families and across a regeneration.
func TestEncodeDimsBatchMatchesEncodeDims(t *testing.T) {
	for _, mk := range []func() Regenerable{
		func() Regenerable { return NewRBF(7, 40, 3) },
		func() Regenerable { return NewLinear(7, 40, true, 3) },
		func() Regenerable { return NewLinear(7, 40, false, 3) },
	} {
		e := mk()
		X := mat.New(9, 7)
		rng.New(21).FillNorm(X.Data, 0, 1)
		H := e.EncodeBatch(X)
		dims := []int{0, 5, 39, 17, 8}
		e.Regenerate(dims)
		e.EncodeDimsBatch(X, dims, H)

		buf := make([]float64, len(dims))
		full := make([]float64, e.Dim())
		for i := 0; i < X.Rows; i++ {
			e.EncodeDims(X.Row(i), dims, buf)
			for j, d := range dims {
				if H.At(i, d) != buf[j] {
					t.Fatalf("row %d dim %d: batch %v != single %v", i, d, H.At(i, d), buf[j])
				}
			}
			// Untouched columns must be exactly the original batch encode,
			// and touched columns must equal a fresh full encode.
			e.Encode(X.Row(i), full)
			for _, d := range dims {
				if H.At(i, d) != full[d] {
					t.Fatalf("row %d dim %d: patched %v != full re-encode %v", i, d, H.At(i, d), full[d])
				}
			}
		}
	}
}

// TestEncodeDimsBatchEmptyDims checks the no-op path.
func TestEncodeDimsBatchEmptyDims(t *testing.T) {
	e := NewRBF(4, 16, 1)
	X := mat.New(3, 4)
	rng.New(2).FillNorm(X.Data, 0, 1)
	H := e.EncodeBatch(X)
	before := H.Clone()
	e.EncodeDimsBatch(X, nil, H)
	for i, v := range H.Data {
		if v != before.Data[i] {
			t.Fatal("EncodeDimsBatch with no dims modified H")
		}
	}
}
