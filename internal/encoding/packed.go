package encoding

// The packed 1-bit query encoder. A quantized model only ever consumes
// the SIGN of each RBF activation, so the packed encode path skips the
// cos·sin evaluation entirely — after the projection GEMM it decides
// each sign with the trig-free analytic rule in bitpack (exact-rounding
// multiply/floor/compare over fractional turns) and writes bits straight
// into a bitpack.Matrix row — and it runs that projection in float32:
// sign decisions don't need double precision, and the f32 kernels move
// half the memory and run twice the SIMD lanes of the float64 GEMM. On
// the serving path that replaces the math.Sincos epilogue and the f64
// projection — the two dominant costs of f32 encoding — with an f32 FMA
// GEMM and an AVX-512 sign-pack kernel. The f32 kernels are bit-identical
// across ISA tiers (see internal/mat/f32.go), so packed encodes of the
// same input produce the same bits on every host.

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/mat"
)

// PackedRBF wraps an RBF encoder with a packed batch encode. It is a
// lightweight per-caller view (construction allocates the wrapper, its
// epilogue closure, and — first wrapper over a given encoder only — the
// encoder's shared f32 base cache): the serving Batcher builds one per replica
// so packed encodes stay zero-alloc. A PackedRBF must not be used from
// more than one goroutine at a time; concurrent callers each take their
// own wrapper around the same shared RBF.
type PackedRBF struct {
	e   *RBF
	dst *bitpack.Matrix
	// post is the fused-GEMM epilogue: it reads the raw f32 projection
	// row and writes packed sign bits into dst's matching row. Bound once
	// at construction so encodes allocate nothing.
	post func(i int, row []float32)
}

// NewPackedRBF wraps enc, which must be an *RBF — the only encoder
// family with a packed sign rule. Other encoders return an error so
// callers can fall back to f32 serving. Construction warms the encoder's
// shared f32 base cache, so the one-time lowering happens here instead
// of inside the first encode.
func NewPackedRBF(enc Encoder) (*PackedRBF, error) {
	e, ok := enc.(*RBF)
	if !ok {
		return nil, fmt.Errorf("encoding: packed encode requires an RBF encoder, have %T", enc)
	}
	e.base32()
	p := &PackedRBF{e: e}
	p.post = func(i int, row []float32) {
		bitpack.PackActivationSigns32(row, p.e.fracPhase, p.dst.Row(i))
	}
	return p, nil
}

// Source returns the wrapped RBF encoder.
func (p *PackedRBF) Source() *RBF { return p.e }

// Dim returns the hypervector dimensionality.
func (p *PackedRBF) Dim() int { return p.e.Dim() }

// Features returns the expected input width.
func (p *PackedRBF) Features() int { return p.e.Features() }

// EncodeBatchPackedInto encodes every row of X directly into packed sign
// bits: one blocked f32 projection GEMM into the caller's z scratch (N×D;
// left holding raw projections) with the sign-pack epilogue fused onto
// each completed row. dst must have dst.Rows == X.Rows and dst.Dim ==
// Dim(). Allocates nothing after the encoder's f32 base is cached.
func (p *PackedRBF) EncodeBatchPackedInto(X, z *mat.Dense32, dst *bitpack.Matrix) {
	if X.Cols != p.Features() {
		panic(fmt.Sprintf("encoding: packed batch has %d features, encoder expects %d", X.Cols, p.Features()))
	}
	if z.Rows != X.Rows || z.Cols != p.Dim() {
		panic(fmt.Sprintf("encoding: packed z is %dx%d, want %dx%d", z.Rows, z.Cols, X.Rows, p.Dim()))
	}
	if dst.Rows != X.Rows || dst.Dim != p.e.Dim() {
		panic(fmt.Sprintf("encoding: packed dst is %d×%d, want %d×%d",
			dst.Rows, dst.Dim, X.Rows, p.e.Dim()))
	}
	p.dst = dst
	mat.MulTInto32Fused(z, X, p.e.base32(), p.post)
	p.dst = nil
}

// EncodePacked encodes a single sample into packed sign bits: x is
// lowered into the caller's x32 scratch (len ≥ mat.Stride32(Features()),
// padding zero), the projection lands in z (len ≥ mat.Stride32(Dim()),
// padding zero; left holding raw f32 projections) and the signs in dst
// (≥ ceil(Dim()/64) words, pad words zeroed). Runs through the same
// kernels as the batch path, so single and batch packed encodes of the
// same input agree bit for bit.
func (p *PackedRBF) EncodePacked(x []float64, x32, z []float32, dst []uint64) {
	if len(x) != p.Features() {
		panic("encoding: EncodePacked size mismatch")
	}
	for j, v := range x {
		x32[j] = float32(v)
	}
	xm := mat.View32(1, len(x), x32)
	zm := mat.View32(1, p.Dim(), z)
	mat.MulTInto32Fused(zm, xm, p.e.base32(), nil)
	bitpack.PackActivationSigns32(zm.Row(0), p.e.fracPhase, dst)
}
