package encoding

import (
	"fmt"

	"repro/internal/hv"
	"repro/internal/mat"
	"repro/internal/rng"
)

// IDLevel is the record-based HDC encoder: each feature gets a random
// bipolar identity hypervector, each quantization level gets a level
// hypervector built by progressively flipping bits of a base level vector
// (so nearby levels stay similar), and a sample is encoded as
//
//	H = Σ_f  ID_f ⊛ Level(quantize(x_f))
//
// where ⊛ is element-wise binding. It is a static encoder (dimension
// regeneration is meaningless for it, since per-dimension information is
// distributed by the binding) and is included as an alternative substrate
// for the examples and static-encoder comparisons.
type IDLevel struct {
	ids    *mat.Dense // q × D feature identities (bipolar)
	levels *mat.Dense // L × D level hypervectors (bipolar)
	lo, hi float64    // quantization range
}

// NewIDLevel builds an ID×Level encoder for q features, dimension d, and
// L quantization levels over the value range [lo, hi]. Values outside the
// range clamp to the extreme levels.
func NewIDLevel(q, d, levels int, lo, hi float64, seed uint64) *IDLevel {
	if q <= 0 || d <= 0 || levels < 2 {
		panic(fmt.Sprintf("encoding: NewIDLevel(q=%d, d=%d, levels=%d) invalid", q, d, levels))
	}
	if hi <= lo {
		panic("encoding: NewIDLevel requires hi > lo")
	}
	r := rng.New(seed)
	e := &IDLevel{
		ids:    mat.New(q, d),
		levels: mat.New(levels, d),
		lo:     lo,
		hi:     hi,
	}
	for f := 0; f < q; f++ {
		copy(e.ids.Row(f), hv.RandomBipolar(d, r))
	}
	// Level 0 is random; each subsequent level flips a fresh d/(2(L-1))
	// block so Level(0) and Level(L-1) are near-orthogonal while adjacent
	// levels stay highly similar — the standard level-hypervector scheme.
	copy(e.levels.Row(0), hv.RandomBipolar(d, r))
	flipPer := d / (2 * (levels - 1))
	perm := r.Perm(d)
	next := 0
	for l := 1; l < levels; l++ {
		copy(e.levels.Row(l), e.levels.Row(l-1))
		row := e.levels.Row(l)
		for i := 0; i < flipPer && next < d; i++ {
			row[perm[next]] *= -1
			next++
		}
	}
	return e
}

// Dim returns the hypervector dimensionality.
func (e *IDLevel) Dim() int { return e.ids.Cols }

// Features returns the expected input width.
func (e *IDLevel) Features() int { return e.ids.Rows }

// Levels returns the number of quantization levels.
func (e *IDLevel) Levels() int { return e.levels.Rows }

// Level quantizes a scalar into a level index, clamping to the range.
func (e *IDLevel) Level(v float64) int {
	if v <= e.lo {
		return 0
	}
	if v >= e.hi {
		return e.Levels() - 1
	}
	l := int(float64(e.Levels()) * (v - e.lo) / (e.hi - e.lo))
	if l >= e.Levels() {
		l = e.Levels() - 1
	}
	return l
}

// Encode writes the bound-and-bundled record hypervector of x into dst.
func (e *IDLevel) Encode(x, dst []float64) {
	if len(x) != e.Features() || len(dst) != e.Dim() {
		panic("encoding: IDLevel.Encode size mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for f, v := range x {
		id := e.ids.Row(f)
		lvl := e.levels.Row(e.Level(v))
		for i := range dst {
			dst[i] += id[i] * lvl[i]
		}
	}
}

// EncodeBatch encodes every row of X in parallel.
func (e *IDLevel) EncodeBatch(X *mat.Dense) *mat.Dense {
	return e.EncodeBatchInto(X, mat.New(X.Rows, e.Dim()))
}

// EncodeBatchInto encodes every row of X into dst in parallel.
func (e *IDLevel) EncodeBatchInto(X, dst *mat.Dense) *mat.Dense {
	return batchEncodeInto(e, X, dst)
}

var _ Encoder = (*IDLevel)(nil)
