// Package encoding maps low-dimensional feature vectors into
// hyperdimensional space. It provides the three encoder families used in
// the DistHD paper and its baselines:
//
//   - RBF: the paper's nonlinear encoder (§III-C, "Dimension Regeneration"),
//     h_d = cos(B_d·F + c_d) · sin(B_d·F) with Gaussian base vectors and
//     uniform phases — a random-Fourier-feature kernel approximation
//     (Rahimi & Recht, ref [21]).
//   - Linear: a plain Gaussian random projection, optionally sign-quantized;
//     the classic static bipolar encoder of baselineHD (ref [6]).
//   - IDLevel: the record-based ID×Level binding encoder common in the HDC
//     literature, included for completeness and the examples.
//
// RBF and Linear implement Regenerable: DistHD and NeuralHD call
// Regenerate(dims) to replace the base hypervector (and phase) of selected
// dimensions with fresh random draws, which is the paper's neural
// regeneration mechanism.
package encoding

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Encoder maps feature vectors of a fixed input width to hypervectors of a
// fixed dimensionality.
type Encoder interface {
	// Dim returns the hypervector dimensionality D.
	Dim() int
	// Features returns the expected input width q.
	Features() int
	// Encode writes the hypervector of x into dst (len(dst) == Dim()).
	Encode(x, dst []float64)
	// EncodeBatch encodes every row of X into a new N×D matrix.
	EncodeBatch(X *mat.Dense) *mat.Dense
}

// Regenerable is an Encoder whose individual dimensions can be re-drawn.
// After Regenerate(dims), encoding the same input produces new values
// exactly at those coordinates and identical values elsewhere.
type Regenerable interface {
	Encoder
	// Regenerate replaces the base vectors of the listed dimensions with
	// fresh random draws. Out-of-range dims panic (programmer error).
	Regenerate(dims []int)
	// EncodeDims writes the encoding of x restricted to the listed
	// dimensions: dst[j] receives the value of output dimension dims[j].
	// This lets the DistHD training loop refresh only the regenerated
	// columns of an already-encoded batch instead of re-encoding
	// everything — the paper's "highly parallel matrix-wise" retraining
	// relies on this being cheap.
	EncodeDims(x []float64, dims []int, dst []float64)
}

// batchEncode implements EncodeBatch for any Encoder, sharding rows across
// CPUs. Encoders embed this via the free function.
func batchEncode(e Encoder, X *mat.Dense) *mat.Dense {
	if X.Cols != e.Features() {
		panic(fmt.Sprintf("encoding: batch has %d features, encoder expects %d", X.Cols, e.Features()))
	}
	out := mat.New(X.Rows, e.Dim())
	mat.ParallelFor(X.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Encode(X.Row(i), out.Row(i))
		}
	})
	return out
}

// RBF is the paper's nonlinear regenerable encoder.
type RBF struct {
	base  *mat.Dense // D×q Gaussian base vectors, one per output dimension
	phase []float64  // D phases c_d ~ U[0, 2π)
	sigma float64    // per-component std of base draws (kernel bandwidth)
	regen *rng.Rand  // stream that feeds regeneration draws
}

// NewRBF builds an RBF encoder for q input features and D output
// dimensions, deterministically from seed.
//
// The paper draws base components from N(0,1); that implicitly assumes the
// dot product B_d·F stays O(1). With z-scored inputs of dimensionality q
// the dot product has standard deviation ≈ √q·σ, so the base components are
// drawn from N(0, 1/q) here — the standard random-Fourier-features
// bandwidth — keeping the effective kernel width comparable across the
// paper's datasets (q ranges from 49 to 784). Use NewRBFWithBandwidth to
// override.
func NewRBF(q, d int, seed uint64) *RBF {
	return NewRBFWithBandwidth(q, d, 1/math.Sqrt(float64(q)), seed)
}

// NewRBFWithBandwidth builds an RBF encoder whose base components are drawn
// from N(0, sigma²). Smaller sigma = wider, smoother kernel.
func NewRBFWithBandwidth(q, d int, sigma float64, seed uint64) *RBF {
	if q <= 0 || d <= 0 {
		panic(fmt.Sprintf("encoding: NewRBF(%d, %d) with non-positive size", q, d))
	}
	if sigma <= 0 {
		panic(fmt.Sprintf("encoding: non-positive RBF bandwidth %v", sigma))
	}
	root := rng.New(seed)
	init := root.Split()
	e := &RBF{
		base:  mat.New(d, q),
		phase: make([]float64, d),
		sigma: sigma,
		regen: root.Split(),
	}
	init.FillNorm(e.base.Data, 0, sigma)
	init.FillUniform(e.phase, 0, 2*math.Pi)
	return e
}

// Dim returns the hypervector dimensionality.
func (e *RBF) Dim() int { return e.base.Rows }

// Features returns the expected input width.
func (e *RBF) Features() int { return e.base.Cols }

// Encode computes h_d = cos(B_d·x + c_d) · sin(B_d·x) for every dimension.
func (e *RBF) Encode(x, dst []float64) {
	if len(x) != e.Features() || len(dst) != e.Dim() {
		panic("encoding: RBF.Encode size mismatch")
	}
	for d := 0; d < e.Dim(); d++ {
		dot := mat.Dot(e.base.Row(d), x)
		dst[d] = math.Cos(dot+e.phase[d]) * math.Sin(dot)
	}
}

// EncodeBatch encodes every row of X in parallel.
func (e *RBF) EncodeBatch(X *mat.Dense) *mat.Dense { return batchEncode(e, X) }

// Regenerate redraws the Gaussian base vector and phase of each listed
// dimension, implementing the paper's dimension regeneration (step P).
func (e *RBF) Regenerate(dims []int) {
	for _, d := range dims {
		if d < 0 || d >= e.Dim() {
			panic(fmt.Sprintf("encoding: Regenerate dim %d out of [0,%d)", d, e.Dim()))
		}
		e.regen.FillNorm(e.base.Row(d), 0, e.sigma)
		e.phase[d] = e.regen.Uniform(0, 2*math.Pi)
	}
}

// EncodeDims computes only the listed output dimensions of x.
func (e *RBF) EncodeDims(x []float64, dims []int, dst []float64) {
	if len(x) != e.Features() || len(dst) != len(dims) {
		panic("encoding: RBF.EncodeDims size mismatch")
	}
	for j, d := range dims {
		dot := mat.Dot(e.base.Row(d), x)
		dst[j] = math.Cos(dot+e.phase[d]) * math.Sin(dot)
	}
}

// Params exposes the encoder's defining parameters for serialization:
// the base matrix (D×q), the phase vector (D) and the bandwidth sigma.
// The returned values are live views; callers must not mutate them.
func (e *RBF) Params() (base *mat.Dense, phase []float64, sigma float64) {
	return e.base, e.phase, e.sigma
}

// NewRBFFromParams reconstructs an RBF encoder from serialized parameters
// (deep-copied). The regeneration stream restarts from regenSeed; a loaded
// model used for inference never draws from it.
func NewRBFFromParams(base *mat.Dense, phase []float64, sigma float64, regenSeed uint64) (*RBF, error) {
	if base == nil || base.Rows != len(phase) {
		return nil, fmt.Errorf("encoding: inconsistent RBF params (%d base rows, %d phases)", baseRows(base), len(phase))
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("encoding: non-positive bandwidth %v", sigma)
	}
	ph := make([]float64, len(phase))
	copy(ph, phase)
	return &RBF{
		base:  base.Clone(),
		phase: ph,
		sigma: sigma,
		regen: rng.New(regenSeed),
	}, nil
}

func baseRows(b *mat.Dense) int {
	if b == nil {
		return -1
	}
	return b.Rows
}

// BaseRow exposes a read-only view of dimension d's base vector, used by
// tests to verify regeneration semantics.
func (e *RBF) BaseRow(d int) []float64 { return e.base.Row(d) }

// Linear is a Gaussian random-projection encoder, optionally sign-quantized
// to bipolar output — the static encoder of baselineHD.
type Linear struct {
	base    *mat.Dense
	bipolar bool
	regen   *rng.Rand
}

// NewLinear builds a linear encoder; if bipolar is true the output is
// sign-quantized to ±1.
func NewLinear(q, d int, bipolar bool, seed uint64) *Linear {
	if q <= 0 || d <= 0 {
		panic(fmt.Sprintf("encoding: NewLinear(%d, %d) with non-positive size", q, d))
	}
	root := rng.New(seed)
	init := root.Split()
	e := &Linear{base: mat.New(d, q), bipolar: bipolar, regen: root.Split()}
	init.FillNorm(e.base.Data, 0, 1)
	return e
}

// Dim returns the hypervector dimensionality.
func (e *Linear) Dim() int { return e.base.Rows }

// Features returns the expected input width.
func (e *Linear) Features() int { return e.base.Cols }

// Encode projects x through the Gaussian base, sign-quantizing if bipolar.
func (e *Linear) Encode(x, dst []float64) {
	if len(x) != e.Features() || len(dst) != e.Dim() {
		panic("encoding: Linear.Encode size mismatch")
	}
	for d := 0; d < e.Dim(); d++ {
		v := mat.Dot(e.base.Row(d), x)
		if e.bipolar {
			if v < 0 {
				v = -1
			} else {
				v = 1
			}
		}
		dst[d] = v
	}
}

// EncodeBatch encodes every row of X in parallel.
func (e *Linear) EncodeBatch(X *mat.Dense) *mat.Dense { return batchEncode(e, X) }

// Regenerate redraws the base vectors of the listed dimensions.
func (e *Linear) Regenerate(dims []int) {
	for _, d := range dims {
		if d < 0 || d >= e.Dim() {
			panic(fmt.Sprintf("encoding: Regenerate dim %d out of [0,%d)", d, e.Dim()))
		}
		e.regen.FillNorm(e.base.Row(d), 0, 1)
	}
}

// EncodeDims computes only the listed output dimensions of x.
func (e *Linear) EncodeDims(x []float64, dims []int, dst []float64) {
	if len(x) != e.Features() || len(dst) != len(dims) {
		panic("encoding: Linear.EncodeDims size mismatch")
	}
	for j, d := range dims {
		v := mat.Dot(e.base.Row(d), x)
		if e.bipolar {
			if v < 0 {
				v = -1
			} else {
				v = 1
			}
		}
		dst[j] = v
	}
}

// Interface conformance checks.
var (
	_ Regenerable = (*RBF)(nil)
	_ Regenerable = (*Linear)(nil)
)
