// Package encoding maps low-dimensional feature vectors into
// hyperdimensional space. It provides the three encoder families used in
// the DistHD paper and its baselines:
//
//   - RBF: the paper's nonlinear encoder (§III-C, "Dimension Regeneration"),
//     h_d = cos(B_d·F + c_d) · sin(B_d·F) with Gaussian base vectors and
//     uniform phases — a random-Fourier-feature kernel approximation
//     (Rahimi & Recht, ref [21]).
//   - Linear: a plain Gaussian random projection, optionally sign-quantized;
//     the classic static bipolar encoder of baselineHD (ref [6]).
//   - IDLevel: the record-based ID×Level binding encoder common in the HDC
//     literature, included for completeness and the examples.
//
// Batch encoding is one blocked GEMM (X·Bᵀ via mat.MulTIntoFused) with the
// encoder nonlinearity fused onto each output row while it is cache-hot,
// rather than N independent matrix-vector loops; the single-sample paths
// run through the same kernels, so batch and single encodes agree bitwise.
//
// RBF and Linear implement Regenerable: DistHD and NeuralHD call
// Regenerate(dims) to replace the base hypervector (and phase) of selected
// dimensions with fresh random draws, which is the paper's neural
// regeneration mechanism, then patch the regenerated columns of the
// already-encoded training batch in place with EncodeDimsBatch.
package encoding

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/bitpack"
	"repro/internal/mat"
	"repro/internal/rng"
)

// Encoder maps feature vectors of a fixed input width to hypervectors of a
// fixed dimensionality.
type Encoder interface {
	// Dim returns the hypervector dimensionality D.
	Dim() int
	// Features returns the expected input width q.
	Features() int
	// Encode writes the hypervector of x into dst (len(dst) == Dim()).
	Encode(x, dst []float64)
	// EncodeBatch encodes every row of X into a new N×D matrix.
	EncodeBatch(X *mat.Dense) *mat.Dense
	// EncodeBatchInto encodes every row of X into dst (N×D) and returns
	// dst, allocating nothing for the result itself.
	EncodeBatchInto(X, dst *mat.Dense) *mat.Dense
}

// Regenerable is an Encoder whose individual dimensions can be re-drawn.
// After Regenerate(dims), encoding the same input produces new values
// exactly at those coordinates and identical values elsewhere.
type Regenerable interface {
	Encoder
	// Regenerate replaces the base vectors of the listed dimensions with
	// fresh random draws. Out-of-range dims panic (programmer error).
	Regenerate(dims []int)
	// EncodeDims writes the encoding of x restricted to the listed
	// dimensions: dst[j] receives the value of output dimension dims[j].
	EncodeDims(x []float64, dims []int, dst []float64)
	// EncodeDimsBatch recomputes the listed output dimensions for every
	// row of X, patching column dims[j] of the already-encoded matrix H in
	// place. This is the DistHD cheap-retrain path: after Regenerate, only
	// the regenerated columns of the training batch are recomputed — as
	// one compact blocked GEMM over the gathered base rows — instead of
	// re-encoding everything. Values match EncodeDims bitwise.
	EncodeDimsBatch(X *mat.Dense, dims []int, H *mat.Dense)
	// CloneDetached returns a deep copy encoding identically to the
	// original, whose regeneration stream restarts from regenSeed — the
	// primitive behind background retraining: the clone can regenerate
	// dimensions freely while the original keeps serving untouched.
	CloneDetached(regenSeed uint64) Regenerable
}

// checkBatch validates a batch encode request, returning the shared shape.
func checkBatch(e Encoder, X, dst *mat.Dense) {
	if X.Cols != e.Features() {
		panic(fmt.Sprintf("encoding: batch has %d features, encoder expects %d", X.Cols, e.Features()))
	}
	if dst.Rows != X.Rows || dst.Cols != e.Dim() {
		panic(fmt.Sprintf("encoding: batch dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, X.Rows, e.Dim()))
	}
}

// batchEncodeInto implements EncodeBatchInto for encoders without a fused
// kernel path (IDLevel), sharding per-sample Encode calls across CPUs.
func batchEncodeInto(e Encoder, X, dst *mat.Dense) *mat.Dense {
	checkBatch(e, X, dst)
	mat.ParallelFor(X.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Encode(X.Row(i), dst.Row(i))
		}
	})
	return dst
}

// checkDimsBatch validates an EncodeDimsBatch request.
func checkDimsBatch(e Encoder, X *mat.Dense, dims []int, H *mat.Dense) {
	if X.Cols != e.Features() {
		panic(fmt.Sprintf("encoding: batch has %d features, encoder expects %d", X.Cols, e.Features()))
	}
	if H.Rows != X.Rows || H.Cols != e.Dim() {
		panic(fmt.Sprintf("encoding: encoded batch is %dx%d, want %dx%d", H.Rows, H.Cols, X.Rows, e.Dim()))
	}
	for _, d := range dims {
		if d < 0 || d >= e.Dim() {
			panic(fmt.Sprintf("encoding: EncodeDimsBatch dim %d out of [0,%d)", d, e.Dim()))
		}
	}
}

// dimsTile is the row-tile height of encodeDimsBatch: it bounds the
// pooled projection buffer at dimsTile×len(dims) however large the
// training set grows, and is a multiple of the kernel row block so tiling
// never changes results (each output element is row-independent).
const dimsTile = 4096

// encodeDimsBatch is the shared scaffolding behind both EncodeDimsBatch
// implementations: the base rows of the listed dims are gathered into a
// compact panel, projected against row tiles of X as blocked GEMMs in
// pooled buffers, and apply maps each projection to its final value while
// scattering into H's columns.
func encodeDimsBatch(base, X *mat.Dense, dims []int, H *mat.Dense, apply func(d int, z float64) float64) {
	if len(dims) == 0 || X.Rows == 0 {
		return
	}
	q := base.Cols
	r := len(dims)
	tileRows := X.Rows
	if tileRows > dimsTile {
		tileRows = dimsTile
	}
	subS := mat.GetScratch(r * q)
	zS := mat.GetScratch(tileRows * r)
	sub := mat.View(r, q, subS.Buf)
	for j, d := range dims {
		copy(sub.Row(j), base.Row(d))
	}
	for t0 := 0; t0 < X.Rows; t0 += dimsTile {
		t1 := t0 + dimsTile
		if t1 > X.Rows {
			t1 = X.Rows
		}
		Xt := mat.View(t1-t0, q, X.Data[t0*q:t1*q])
		z := mat.View(t1-t0, r, zS.Buf[:(t1-t0)*r])
		mat.MulTIntoFused(z, Xt, sub, func(i int, zrow []float64) {
			hrow := H.Row(t0 + i)
			for j, d := range dims {
				hrow[d] = apply(d, zrow[j])
			}
		})
	}
	zS.Release()
	subS.Release()
}

// RBF is the paper's nonlinear regenerable encoder.
type RBF struct {
	base  *mat.Dense // D×q Gaussian base vectors, one per output dimension
	phase []float64  // D phases c_d ~ U[0, 2π)
	// cosPhase/sinPhase cache cos(c_d) and sin(c_d) so the nonlinearity
	// cos(z+c)·sin(z) expands to (cos z·cos c − sin z·sin c)·sin z and
	// needs a single math.Sincos per element instead of two trig calls of
	// unrelated angles.
	cosPhase, sinPhase []float64
	// fracPhase caches frac(c_d/2π) for the packed 1-bit encode path
	// (bitpack.PackActivationSigns), which decides activation signs with
	// the trig-free analytic rule instead of evaluating cos·sin.
	fracPhase []float64
	// base32c lazily caches the float32 lowering of base for the packed
	// projection GEMM, which only consumes activation signs and so runs
	// in single precision. Regenerate drops the cache; concurrent readers
	// may race to rebuild it, which is harmless (both lowerings are
	// identical).
	base32c atomic.Pointer[mat.Dense32]
	sigma   float64   // per-component std of base draws (kernel bandwidth)
	regen   *rng.Rand // stream that feeds regeneration draws
	// post is the fused-GEMM epilogue (nonlinearRow bound to this encoder),
	// built once at construction so batch encodes allocate nothing.
	post func(i int, row []float64)
}

// NewRBF builds an RBF encoder for q input features and D output
// dimensions, deterministically from seed.
//
// The paper draws base components from N(0,1); that implicitly assumes the
// dot product B_d·F stays O(1). With z-scored inputs of dimensionality q
// the dot product has standard deviation ≈ √q·σ, so the base components are
// drawn from N(0, 1/q) here — the standard random-Fourier-features
// bandwidth — keeping the effective kernel width comparable across the
// paper's datasets (q ranges from 49 to 784). Use NewRBFWithBandwidth to
// override.
func NewRBF(q, d int, seed uint64) *RBF {
	return NewRBFWithBandwidth(q, d, 1/math.Sqrt(float64(q)), seed)
}

// NewRBFWithBandwidth builds an RBF encoder whose base components are drawn
// from N(0, sigma²). Smaller sigma = wider, smoother kernel.
func NewRBFWithBandwidth(q, d int, sigma float64, seed uint64) *RBF {
	if q <= 0 || d <= 0 {
		panic(fmt.Sprintf("encoding: NewRBF(%d, %d) with non-positive size", q, d))
	}
	if sigma <= 0 {
		panic(fmt.Sprintf("encoding: non-positive RBF bandwidth %v", sigma))
	}
	root := rng.New(seed)
	init := root.Split()
	e := &RBF{
		base:     mat.New(d, q),
		phase:    make([]float64, d),
		cosPhase: make([]float64, d),
		sinPhase: make([]float64, d),
		sigma:    sigma,
		regen:    root.Split(),
	}
	init.FillNorm(e.base.Data, 0, sigma)
	init.FillUniform(e.phase, 0, 2*math.Pi)
	return e.finish()
}

// finish completes construction shared by every RBF constructor: the
// phase trig caches and the fused-GEMM epilogue bound to this encoder.
func (e *RBF) finish() *RBF {
	e.refreshPhaseCache()
	e.post = func(_ int, row []float64) { e.nonlinearRow(row) }
	return e
}

// refreshPhaseCache recomputes the cached cos/sin and fractional-turn
// views of every phase.
func (e *RBF) refreshPhaseCache() {
	if e.fracPhase == nil {
		e.fracPhase = make([]float64, len(e.phase))
	}
	for d, c := range e.phase {
		e.sinPhase[d], e.cosPhase[d] = math.Sincos(c)
		e.fracPhase[d] = bitpack.FracTurns(c)
	}
}

// Dim returns the hypervector dimensionality.
func (e *RBF) Dim() int { return e.base.Rows }

// Features returns the expected input width.
func (e *RBF) Features() int { return e.base.Cols }

// activate maps one projection z to output dimension d's value,
// cos(z + c_d)·sin(z), expanded against the cached phase trig. Every RBF
// encode path (nonlinearRow, EncodeDims, EncodeDimsBatch) must go through
// this single definition: the bitwise equivalence between batch encoding
// and the regeneration patch path depends on the formula never diverging.
func (e *RBF) activate(d int, z float64) float64 {
	sz, cz := math.Sincos(z)
	return (cz*e.cosPhase[d] - sz*e.sinPhase[d]) * sz
}

// nonlinearRow maps the full-width projection row z to
// cos(z_d + c_d)·sin(z_d) in place.
func (e *RBF) nonlinearRow(row []float64) {
	for d, z := range row {
		row[d] = e.activate(d, z)
	}
}

// Encode computes h_d = cos(B_d·x + c_d) · sin(B_d·x) for every dimension.
// It runs through the same blocked kernels as EncodeBatch, so single and
// batch encodes of the same input agree bitwise.
func (e *RBF) Encode(x, dst []float64) {
	if len(x) != e.Features() || len(dst) != e.Dim() {
		panic("encoding: RBF.Encode size mismatch")
	}
	xm := mat.View(1, len(x), x)
	dm := mat.View(1, len(dst), dst)
	mat.MulTInto(dm, xm, e.base)
	e.nonlinearRow(dst)
}

// EncodeBatch encodes every row of X into a new N×D matrix.
func (e *RBF) EncodeBatch(X *mat.Dense) *mat.Dense {
	return e.EncodeBatchInto(X, mat.New(X.Rows, e.Dim()))
}

// EncodeBatchInto encodes every row of X into dst: one blocked GEMM
// (X·Bᵀ) with the cos·sin nonlinearity fused onto each completed row.
// With a caller-owned dst the steady-state path allocates nothing.
func (e *RBF) EncodeBatchInto(X, dst *mat.Dense) *mat.Dense {
	checkBatch(e, X, dst)
	return mat.MulTIntoFused(dst, X, e.base, e.post)
}

// Regenerate redraws the Gaussian base vector and phase of each listed
// dimension, implementing the paper's dimension regeneration (step P).
func (e *RBF) Regenerate(dims []int) {
	for _, d := range dims {
		if d < 0 || d >= e.Dim() {
			panic(fmt.Sprintf("encoding: Regenerate dim %d out of [0,%d)", d, e.Dim()))
		}
		e.regen.FillNorm(e.base.Row(d), 0, e.sigma)
		e.phase[d] = e.regen.Uniform(0, 2*math.Pi)
		e.sinPhase[d], e.cosPhase[d] = math.Sincos(e.phase[d])
		e.fracPhase[d] = bitpack.FracTurns(e.phase[d])
	}
	e.base32c.Store(nil)
}

// base32 returns the float32 lowering of the projection base, building
// and caching it on first use. The cache survives until Regenerate
// redraws base rows.
func (e *RBF) base32() *mat.Dense32 {
	if b := e.base32c.Load(); b != nil {
		return b
	}
	b := mat.NewDense32(e.base.Rows, e.base.Cols)
	b.SetFrom(e.base)
	e.base32c.Store(b)
	return b
}

// EncodeDims computes only the listed output dimensions of x. PanelDot
// reproduces the blocked kernel's accumulation order, so values match
// Encode bitwise.
func (e *RBF) EncodeDims(x []float64, dims []int, dst []float64) {
	if len(x) != e.Features() || len(dst) != len(dims) {
		panic("encoding: RBF.EncodeDims size mismatch")
	}
	for j, d := range dims {
		dst[j] = e.activate(d, mat.PanelDot(e.base.Row(d), x))
	}
}

// EncodeDimsBatch patches the regenerated columns of H in place via the
// shared gather/GEMM/scatter scaffolding (see encodeDimsBatch); buffers
// come from the scratch pool, so the steady-state retrain loop allocates
// almost nothing.
func (e *RBF) EncodeDimsBatch(X *mat.Dense, dims []int, H *mat.Dense) {
	checkDimsBatch(e, X, dims, H)
	encodeDimsBatch(e.base, X, dims, H, e.activate)
}

// Params exposes the encoder's defining parameters for serialization:
// the base matrix (D×q), the phase vector (D) and the bandwidth sigma.
// The returned values are live views; callers must not mutate them.
func (e *RBF) Params() (base *mat.Dense, phase []float64, sigma float64) {
	return e.base, e.phase, e.sigma
}

// NewRBFFromParams reconstructs an RBF encoder from serialized parameters
// (deep-copied). The regeneration stream restarts from regenSeed; a loaded
// model used for inference never draws from it.
func NewRBFFromParams(base *mat.Dense, phase []float64, sigma float64, regenSeed uint64) (*RBF, error) {
	if base == nil || base.Rows != len(phase) {
		return nil, fmt.Errorf("encoding: inconsistent RBF params (%d base rows, %d phases)", baseRows(base), len(phase))
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("encoding: non-positive bandwidth %v", sigma)
	}
	ph := make([]float64, len(phase))
	copy(ph, phase)
	e := &RBF{
		base:     base.Clone(),
		phase:    ph,
		cosPhase: make([]float64, len(phase)),
		sinPhase: make([]float64, len(phase)),
		sigma:    sigma,
		regen:    rng.New(regenSeed),
	}
	return e.finish(), nil
}

func baseRows(b *mat.Dense) int {
	if b == nil {
		return -1
	}
	return b.Rows
}

// CloneDetached returns a deep copy of the encoder whose regeneration
// stream restarts from regenSeed (see Regenerable.CloneDetached).
func (e *RBF) CloneDetached(regenSeed uint64) Regenerable {
	c, err := NewRBFFromParams(e.base, e.phase, e.sigma, regenSeed)
	if err != nil {
		panic(err) // the source encoder's params are valid by construction
	}
	return c
}

// BaseRow exposes a read-only view of dimension d's base vector, used by
// tests to verify regeneration semantics.
func (e *RBF) BaseRow(d int) []float64 { return e.base.Row(d) }

// Linear is a Gaussian random-projection encoder, optionally sign-quantized
// to bipolar output — the static encoder of baselineHD.
type Linear struct {
	base    *mat.Dense
	bipolar bool
	regen   *rng.Rand
}

// NewLinear builds a linear encoder; if bipolar is true the output is
// sign-quantized to ±1.
func NewLinear(q, d int, bipolar bool, seed uint64) *Linear {
	if q <= 0 || d <= 0 {
		panic(fmt.Sprintf("encoding: NewLinear(%d, %d) with non-positive size", q, d))
	}
	root := rng.New(seed)
	init := root.Split()
	e := &Linear{base: mat.New(d, q), bipolar: bipolar, regen: root.Split()}
	init.FillNorm(e.base.Data, 0, 1)
	return e
}

// Dim returns the hypervector dimensionality.
func (e *Linear) Dim() int { return e.base.Rows }

// Features returns the expected input width.
func (e *Linear) Features() int { return e.base.Cols }

// signRow sign-quantizes row in place (zero counts positive).
func signRow(row []float64) {
	for i, v := range row {
		if v < 0 {
			row[i] = -1
		} else {
			row[i] = 1
		}
	}
}

// signPost is signRow as a capture-free fused-GEMM epilogue; referencing it
// never allocates.
func signPost(_ int, row []float64) { signRow(row) }

// Encode projects x through the Gaussian base, sign-quantizing if bipolar.
// Runs through the same blocked kernels as EncodeBatch (bitwise agreement).
func (e *Linear) Encode(x, dst []float64) {
	if len(x) != e.Features() || len(dst) != e.Dim() {
		panic("encoding: Linear.Encode size mismatch")
	}
	xm := mat.View(1, len(x), x)
	dm := mat.View(1, len(dst), dst)
	mat.MulTInto(dm, xm, e.base)
	if e.bipolar {
		signRow(dst)
	}
}

// EncodeBatch encodes every row of X into a new N×D matrix.
func (e *Linear) EncodeBatch(X *mat.Dense) *mat.Dense {
	return e.EncodeBatchInto(X, mat.New(X.Rows, e.Dim()))
}

// EncodeBatchInto encodes every row of X into dst as one blocked GEMM,
// with sign quantization fused onto each completed row when bipolar.
func (e *Linear) EncodeBatchInto(X, dst *mat.Dense) *mat.Dense {
	checkBatch(e, X, dst)
	if !e.bipolar {
		return mat.MulTInto(dst, X, e.base)
	}
	return mat.MulTIntoFused(dst, X, e.base, signPost)
}

// Regenerate redraws the base vectors of the listed dimensions.
func (e *Linear) Regenerate(dims []int) {
	for _, d := range dims {
		if d < 0 || d >= e.Dim() {
			panic(fmt.Sprintf("encoding: Regenerate dim %d out of [0,%d)", d, e.Dim()))
		}
		e.regen.FillNorm(e.base.Row(d), 0, 1)
	}
}

// EncodeDims computes only the listed output dimensions of x, bitwise
// consistent with Encode (see RBF.EncodeDims).
func (e *Linear) EncodeDims(x []float64, dims []int, dst []float64) {
	if len(x) != e.Features() || len(dst) != len(dims) {
		panic("encoding: Linear.EncodeDims size mismatch")
	}
	for j, d := range dims {
		v := mat.PanelDot(e.base.Row(d), x)
		if e.bipolar {
			if v < 0 {
				v = -1
			} else {
				v = 1
			}
		}
		dst[j] = v
	}
}

// CloneDetached returns a deep copy of the encoder whose regeneration
// stream restarts from regenSeed (see Regenerable.CloneDetached).
func (e *Linear) CloneDetached(regenSeed uint64) Regenerable {
	return &Linear{base: e.base.Clone(), bipolar: e.bipolar, regen: rng.New(regenSeed)}
}

// EncodeDimsBatch patches the listed columns of H in place via the shared
// gather/GEMM/scatter scaffolding (see encodeDimsBatch).
func (e *Linear) EncodeDimsBatch(X *mat.Dense, dims []int, H *mat.Dense) {
	checkDimsBatch(e, X, dims, H)
	encodeDimsBatch(e.base, X, dims, H, func(_ int, z float64) float64 {
		if e.bipolar {
			if z < 0 {
				return -1
			}
			return 1
		}
		return z
	})
}

// Interface conformance checks.
var (
	_ Regenerable = (*RBF)(nil)
	_ Regenerable = (*Linear)(nil)
)
