package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeats: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("sibling streams collided %d times", collisions)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) bucket %d has skewed count %d", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("gaussian variance = %v, want ~1", variance)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(11)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Perm(5)[0]]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Perm(5)[0]=%d count %d is skewed", v, c)
		}
	}
}

func TestBipolarBalanced(t *testing.T) {
	r := New(12)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Bipolar()
		if v != 1 && v != -1 {
			t.Fatalf("Bipolar returned %v", v)
		}
		if v == 1 {
			pos++
		}
	}
	if pos < 48500 || pos > 51500 {
		t.Fatalf("Bipolar +1 count %d/%d is skewed", pos, n)
	}
}

func TestFillNorm(t *testing.T) {
	r := New(13)
	buf := make([]float64, 50000)
	r.FillNorm(buf, 2, 3)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	mean := sum / float64(len(buf))
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("FillNorm mean %v, want ~2", mean)
	}
}

func TestFillUniform(t *testing.T) {
	r := New(14)
	buf := make([]float64, 1000)
	r.FillUniform(buf, 0, 2*math.Pi)
	for _, v := range buf {
		if v < 0 || v >= 2*math.Pi {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
}

// Property: Intn(n) is always in [0, n) for arbitrary positive n and seeds.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := New(seed).Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same sequence, for arbitrary seeds.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

// TestPermIntoMatchesPerm checks that the in-place variant consumes the
// same draws and produces the same permutation as Perm.
func TestPermIntoMatchesPerm(t *testing.T) {
	a := New(9)
	b := New(9)
	buf := make([]int, 17)
	for trial := 0; trial < 5; trial++ {
		want := a.Perm(17)
		got := b.PermInto(buf)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: PermInto %v != Perm %v", trial, got, want)
			}
		}
	}
}

// TestReseedMatchesNew checks Reseed restores the exact New(seed) state,
// including clearing the cached Gaussian.
func TestReseedMatchesNew(t *testing.T) {
	r := New(3)
	r.NormFloat64() // populate the Box-Muller cache
	r.Uint64()
	r.Reseed(42)
	fresh := New(42)
	for i := 0; i < 100; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("draw %d diverged after Reseed", i)
		}
	}
	r.Reseed(7)
	fresh2 := New(7)
	if r.NormFloat64() != fresh2.NormFloat64() {
		t.Fatal("Gaussian cache survived Reseed")
	}
}
