// Package rng provides a deterministic, splittable pseudo-random number
// substrate for the whole repository.
//
// Reproducibility is a hard requirement for the experiments in this repo:
// every figure and table must regenerate identically from a seed, regardless
// of goroutine scheduling. The standard library's global rand source is
// shared mutable state, so instead each component owns an independent
// *rng.Rand stream derived with Split, which produces statistically
// independent child streams from a parent deterministically.
//
// The generator is xoshiro256** seeded through splitmix64, the construction
// recommended by the xoshiro authors. It is not cryptographically secure and
// is not meant to be.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; derive per-goroutine streams with Split instead of
// sharing one instance.
type Rand struct {
	s [4]uint64
	// cached second Gaussian from the polar Box-Muller transform
	gauss    float64
	hasGauss bool
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand a single 64-bit seed into the 256-bit xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place exactly as New(seed) would, letting
// long-lived owners (e.g. training loops that reseed per iteration) avoid
// allocating a fresh generator.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasGauss = false
	r.gauss = 0
}

// State returns the generator's raw internal state — the four xoshiro
// words plus the cached Box-Muller pair — for snapshot/restore. A Rand
// restored with SetState continues the stream exactly where State was
// taken, draw for draw.
func (r *Rand) State() (s [4]uint64, gauss float64, hasGauss bool) {
	return r.s, r.gauss, r.hasGauss
}

// SetState overwrites r's internal state with a snapshot taken by State.
// The all-zero xoshiro state is invalid and is mapped onto the same
// fallback word Reseed uses.
func (r *Rand) SetState(s [4]uint64, gauss float64, hasGauss bool) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.gauss = gauss
	r.hasGauss = hasGauss
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new, statistically independent stream from r. The parent
// advances, so successive Splits yield distinct children. Children are
// themselves splittable, forming a deterministic tree of streams.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple modulo bias is negligible for n << 2^64 but we still avoid it
	// with rejection sampling on the top bits.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative 63-bit integer, mirroring math/rand.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// method, caching the paired value.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	return r.PermInto(make([]int, n))
}

// PermInto fills p with a uniformly random permutation of [0, len(p)) and
// returns it, consuming exactly the same random draws as Perm — callers can
// swap an allocating Perm for a reusable buffer without changing any
// seeded trajectory.
func (r *Rand) PermInto(p []int) []int {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillNorm fills dst with independent N(mu, sigma) variates.
func (r *Rand) FillNorm(dst []float64, mu, sigma float64) {
	for i := range dst {
		dst[i] = mu + sigma*r.NormFloat64()
	}
}

// FillUniform fills dst with independent U[lo, hi) variates.
func (r *Rand) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}

// Bipolar returns -1 or +1 with equal probability.
func (r *Rand) Bipolar() float64 {
	if r.Uint64()&1 == 0 {
		return -1
	}
	return 1
}
