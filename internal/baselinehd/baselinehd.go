// Package baselinehd implements the static-encoder bipolar HDC classifier
// of Rahimi et al. (ISLPED'16) — "baselineHD" in the DistHD paper's
// evaluation (ref [6]). It is the SOTA-HDC reference point of Figs. 2, 4,
// 5 and 7: a fixed bipolar random-projection encoder, one-shot bundling
// initialization, and perceptron-style retraining on integer accumulators,
// with inference by Hamming similarity against the sign-quantized class
// hypervectors.
//
// Because the encoder is static and the model bipolar, this learner needs
// far higher dimensionality (the paper's D* = 4k) to match the accuracy
// DistHD reaches at D = 0.5k — which is precisely the gap the paper's
// dynamic encoding closes.
package baselinehd

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/rng"
)

// Config holds baselineHD hyperparameters.
type Config struct {
	// Dim is the hypervector dimensionality.
	Dim int
	// Epochs is the number of perceptron retraining passes after the
	// initial bundling.
	Epochs int
	// Seed drives the encoder and shuffling.
	Seed uint64
}

// DefaultConfig returns D = 4096 (the paper's effective dimensionality for
// baselineHD) and 20 retraining epochs.
func DefaultConfig() Config {
	return Config{Dim: 4096, Epochs: 20, Seed: 1}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("baselinehd: Dim must be positive, got %d", c.Dim)
	case c.Epochs < 0:
		return fmt.Errorf("baselinehd: Epochs must be non-negative, got %d", c.Epochs)
	}
	return nil
}

// Classifier is a trained baselineHD model. Acc holds the integer-valued
// accumulators; classification uses their sign (the bipolar class
// hypervectors), so the deployed model is 1 bit per dimension.
type Classifier struct {
	Enc *encoding.Linear
	// Acc is the accumulator matrix (classes × Dim).
	Acc *mat.Dense
	cfg Config
}

// Train builds the encoder, bundles every training sample into its class
// accumulator, then runs perceptron retraining: misclassified samples are
// added to their true class and subtracted from the predicted class.
func Train(X *mat.Dense, y []int, classes int, cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if X.Rows != len(y) {
		return nil, fmt.Errorf("baselinehd: %d samples but %d labels", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return nil, fmt.Errorf("baselinehd: empty training set")
	}
	if classes < 2 {
		return nil, fmt.Errorf("baselinehd: need at least 2 classes, got %d", classes)
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return nil, fmt.Errorf("baselinehd: label %d at row %d outside [0,%d)", label, i, classes)
		}
	}

	enc := encoding.NewLinear(X.Cols, cfg.Dim, true, cfg.Seed)
	H := enc.EncodeBatch(X)
	c := &Classifier{Enc: enc, Acc: mat.New(classes, cfg.Dim), cfg: cfg}

	// One-shot bundling: C_l = Σ_{i: y_i = l} H_i.
	for i := 0; i < H.Rows; i++ {
		mat.Axpy(c.Acc.Row(y[i]), 1, H.Row(i))
	}

	// Perceptron retraining on the bipolar (sign) view.
	r := rng.New(cfg.Seed ^ 0xabcdef)
	for e := 0; e < cfg.Epochs; e++ {
		order := r.Perm(H.Rows)
		errors := 0
		for _, i := range order {
			h := H.Row(i)
			pred := c.predictEncoded(h)
			if pred != y[i] {
				errors++
				mat.Axpy(c.Acc.Row(y[i]), 1, h)
				mat.Axpy(c.Acc.Row(pred), -1, h)
			}
		}
		if errors == 0 {
			break
		}
	}
	return c, nil
}

// predictEncoded classifies an already-encoded bipolar hypervector using
// Hamming similarity against sign-quantized accumulators: the class whose
// sign pattern agrees with h in the most positions. Equivalent to the
// argmax of Σ_d sign(Acc_ld)·h_d.
func (c *Classifier) predictEncoded(h []float64) int {
	best := 0
	bestScore := hammingAgreement(c.Acc.Row(0), h)
	for l := 1; l < c.Acc.Rows; l++ {
		if s := hammingAgreement(c.Acc.Row(l), h); s > bestScore {
			best, bestScore = l, s
		}
	}
	return best
}

// hammingAgreement counts sign agreements between accumulator row acc and
// bipolar hypervector h (zero accumulator entries count as +1, matching
// the fixed tie-break used by sign quantization).
func hammingAgreement(acc, h []float64) float64 {
	var s float64
	for i, a := range acc {
		sa := 1.0
		if a < 0 {
			sa = -1
		}
		s += sa * h[i]
	}
	return s
}

// Predict classifies a single raw feature vector.
func (c *Classifier) Predict(x []float64) int {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.predictEncoded(h)
}

// signView writes the sign-quantized accumulators into a pooled buffer.
// Hamming agreement against a bipolar hypervector is exactly the dot
// product with this view, so batch classification runs on the shared
// blocked GEMM kernels; every term is ±1, so the sums are exact integers
// and the kernel result is bitwise identical to the scalar loop.
func (c *Classifier) signView() (*mat.Dense, *mat.Scratch) {
	s := mat.GetScratch(c.Acc.Rows * c.Acc.Cols)
	sv := mat.View(c.Acc.Rows, c.Acc.Cols, s.Buf)
	for i, v := range c.Acc.Data {
		if v < 0 {
			sv.Data[i] = -1
		} else {
			sv.Data[i] = 1
		}
	}
	return sv, s
}

// PredictBatch classifies every row of X via one blocked GEMM against the
// sign-quantized class hypervectors.
func (c *Classifier) PredictBatch(X *mat.Dense) []int {
	H := c.Enc.EncodeBatch(X)
	out := make([]int, H.Rows)
	sv, svS := c.signView()
	scoreS := mat.GetScratch(H.Rows * c.Acc.Rows)
	scores := mat.View(H.Rows, c.Acc.Rows, scoreS.Buf)
	mat.MulTInto(scores, H, sv)
	mat.ParallelFor(H.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = mat.ArgMax(scores.Row(i))
		}
	})
	scoreS.Release()
	svS.Release()
	return out
}

// Accuracy returns accuracy over a labeled raw batch.
func (c *Classifier) Accuracy(X *mat.Dense, y []int) float64 {
	pred := c.PredictBatch(X)
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// TopKAccuracy returns top-k accuracy over a labeled raw batch, using
// Hamming agreement as the ranking score.
func (c *Classifier) TopKAccuracy(X *mat.Dense, y []int, k int) float64 {
	H := c.Enc.EncodeBatch(X)
	if H.Rows == 0 {
		return 0
	}
	sv, svS := c.signView()
	scoreS := mat.GetScratch(H.Rows * c.Acc.Rows)
	scores := mat.View(H.Rows, c.Acc.Rows, scoreS.Buf)
	mat.MulTInto(scores, H, sv)
	correct := 0
	for i := 0; i < H.Rows; i++ {
		for _, l := range mat.ArgTopK(scores.Row(i), k) {
			if l == y[i] {
				correct++
				break
			}
		}
	}
	scoreS.Release()
	svS.Release()
	return float64(correct) / float64(H.Rows)
}

// BipolarModel returns the sign-quantized class hypervectors — the 1-bit
// deployed model used by the robustness experiment.
func (c *Classifier) BipolarModel() *mat.Dense {
	out := c.Acc.Clone()
	for i := range out.Data {
		if out.Data[i] < 0 {
			out.Data[i] = -1
		} else {
			out.Data[i] = 1
		}
	}
	return out
}
