package baselinehd

import (
	"testing"

	"repro/internal/dataset"
)

func toyData(t testing.TB, seed uint64) (train, test *dataset.Dataset) {
	t.Helper()
	spec := &dataset.Spec{
		Name: "toy", Features: 16, Classes: 4,
		Train: 400, Test: 150,
		Subclusters: 2, LatentDim: 5,
		CenterStd: 1.0, IntraStd: 0.4, Warp: 0.9, NoiseStd: 0.12,
		Seed: seed,
	}
	train, test, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dataset.NormalizePair(train, test)
	return train, test
}

func TestTrainLearnsAtHighDim(t *testing.T) {
	train, test := toyData(t, 1)
	cfg := Config{Dim: 2048, Epochs: 15, Seed: 1}
	clf, err := Train(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := clf.Accuracy(test.X, test.Y); acc < 0.7 {
		t.Fatalf("baselineHD accuracy %.3f too low at D=2048", acc)
	}
}

// The defining weakness the paper exploits: the static bipolar learner
// degrades sharply as D shrinks.
func TestAccuracyDropsWithDim(t *testing.T) {
	train, test := toyData(t, 2)
	accAt := func(d int) float64 {
		clf, err := Train(train.X, train.Y, train.Classes, Config{Dim: d, Epochs: 15, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return clf.Accuracy(test.X, test.Y)
	}
	low := accAt(64)
	high := accAt(2048)
	t.Logf("baselineHD: D=64 -> %.3f, D=2048 -> %.3f", low, high)
	if high < low {
		t.Fatalf("accuracy should not decrease with dimensionality: %.3f -> %.3f", low, high)
	}
}

func TestValidation(t *testing.T) {
	train, _ := toyData(t, 3)
	if _, err := Train(train.X, train.Y[:5], train.Classes, DefaultConfig()); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Train(train.X, train.Y, 1, DefaultConfig()); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := Train(train.X, train.Y, train.Classes, Config{Dim: 0, Epochs: 1}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := Train(train.X, train.Y, train.Classes, Config{Dim: 16, Epochs: -1}); err == nil {
		t.Fatal("negative epochs accepted")
	}
	yBad := make([]int, len(train.Y))
	copy(yBad, train.Y)
	yBad[0] = 99
	if _, err := Train(train.X, yBad, train.Classes, Config{Dim: 16, Epochs: 1, Seed: 1}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestDeterministic(t *testing.T) {
	train, test := toyData(t, 4)
	cfg := Config{Dim: 256, Epochs: 5, Seed: 7}
	run := func() []int {
		clf, err := Train(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return clf.PredictBatch(test.X)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("baselineHD not deterministic")
		}
	}
}

func TestPredictSingleMatchesBatch(t *testing.T) {
	train, test := toyData(t, 5)
	clf, err := Train(train.X, train.Y, train.Classes, Config{Dim: 256, Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := clf.PredictBatch(test.X)
	for i := 0; i < 10; i++ {
		if p := clf.Predict(test.X.Row(i)); p != batch[i] {
			t.Fatalf("row %d: single %d != batch %d", i, p, batch[i])
		}
	}
}

func TestBipolarModelIsBipolar(t *testing.T) {
	train, _ := toyData(t, 6)
	clf, err := Train(train.X, train.Y, train.Classes, Config{Dim: 128, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bm := clf.BipolarModel()
	for _, v := range bm.Data {
		if v != 1 && v != -1 {
			t.Fatalf("BipolarModel contains non-bipolar value %v", v)
		}
	}
	if bm.Rows != train.Classes || bm.Cols != 128 {
		t.Fatal("BipolarModel has wrong shape")
	}
}

func TestTopKAccuracyMonotone(t *testing.T) {
	train, test := toyData(t, 7)
	clf, err := Train(train.X, train.Y, train.Classes, Config{Dim: 512, Epochs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1 := clf.TopKAccuracy(test.X, test.Y, 1)
	a2 := clf.TopKAccuracy(test.X, test.Y, 2)
	a4 := clf.TopKAccuracy(test.X, test.Y, 4)
	if a1 > a2 || a2 > a4 {
		t.Fatalf("top-k not monotone: %v %v %v", a1, a2, a4)
	}
	if a4 != 1 {
		t.Fatalf("top-4 of 4 classes should be 1, got %v", a4)
	}
}

func TestZeroEpochsBundlingOnly(t *testing.T) {
	train, test := toyData(t, 8)
	clf, err := Train(train.X, train.Y, train.Classes, Config{Dim: 1024, Epochs: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pure bundling should still beat chance (0.25) comfortably.
	if acc := clf.Accuracy(test.X, test.Y); acc < 0.4 {
		t.Fatalf("bundling-only accuracy %.3f barely above chance", acc)
	}
}
