package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/encoding"
)

// trainDistHDOn trains a DistHD classifier on one dataset with the given
// config mutations applied on top of the harness defaults.
func trainDistHDOn(o Options, p datasetPair, d int, mutate func(*core.Config)) (*core.Classifier, *core.TrainStats, error) {
	cfg := core.DefaultConfig()
	cfg.Dim = d
	cfg.Iterations = hdcIterations(o)
	cfg.Seed = o.Seed
	if mutate != nil {
		mutate(&cfg)
	}
	enc := encoding.NewRBF(p.Train.Features(), d, o.Seed^0xab1)
	return core.Train(enc, p.Train.X, p.Train.Y, p.Train.Classes, cfg)
}

// AblationA2Result compares the prose and literal readings of Algorithm 2
// (see DESIGN.md §1) across all datasets.
type AblationA2Result struct {
	Datasets             []string
	ProseAcc, LiteralAcc []float64
}

// RunAblationA2 regenerates the Algorithm-2 discrepancy study.
func RunAblationA2(o Options) (*AblationA2Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pairs, err := loadAll(o)
	if err != nil {
		return nil, err
	}
	lowD, _ := comparisonDims(o)
	res := &AblationA2Result{}
	for _, p := range pairs {
		res.Datasets = append(res.Datasets, p.Name)
		prose, _, err := trainDistHDOn(o, p, lowD, nil)
		if err != nil {
			return nil, err
		}
		res.ProseAcc = append(res.ProseAcc, prose.Accuracy(p.Test.X, p.Test.Y))

		literal, _, err := trainDistHDOn(o, p, lowD, func(c *core.Config) {
			c.UseLiteralAlgorithm2 = true
		})
		if err != nil {
			return nil, err
		}
		res.LiteralAcc = append(res.LiteralAcc, literal.Accuracy(p.Test.X, p.Test.Y))
	}
	return res, nil
}

// Render prints the comparison.
func (r *AblationA2Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation: Algorithm 2 prose formula vs literal pseudocode (incorrect-bucket scoring)"); err != nil {
		return err
	}
	t := newTable("Dataset", "Prose (default)", "Literal line 11")
	var dp, dl float64
	for i, ds := range r.Datasets {
		t.addf("%s\t%s\t%s", ds, pct(r.ProseAcc[i]), pct(r.LiteralAcc[i]))
		dp += r.ProseAcc[i]
		dl += r.LiteralAcc[i]
	}
	n := float64(len(r.Datasets))
	t.addf("Mean\t%s\t%s", pct(dp/n), pct(dl/n))
	return t.render(w)
}

// AblationRegenResult sweeps the regeneration rate R.
type AblationRegenResult struct {
	Dataset string
	Rates   []float64
	Accs    []float64
	// EffectiveDims records D* = D + total regenerated at each rate.
	EffectiveDims []int
}

// RunAblationRegen sweeps R on the UCIHAR stand-in.
func RunAblationRegen(o Options) (*AblationRegenResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "UCIHAR")
	if err != nil {
		return nil, err
	}
	lowD, _ := comparisonDims(o)
	res := &AblationRegenResult{Dataset: p.Name, Rates: []float64{0, 0.02, 0.05, 0.10, 0.20}}
	for _, rate := range res.Rates {
		clf, stats, err := trainDistHDOn(o, p, lowD, func(c *core.Config) { c.RegenRate = rate })
		if err != nil {
			return nil, err
		}
		res.Accs = append(res.Accs, clf.Accuracy(p.Test.X, p.Test.Y))
		res.EffectiveDims = append(res.EffectiveDims, stats.EffectiveDim)
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationRegenResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Ablation: regeneration rate R sweep on %s\n", r.Dataset); err != nil {
		return err
	}
	t := newTable("R", "Accuracy", "Effective D*")
	for i, rate := range r.Rates {
		t.addf("%.0f%%\t%s\t%d", 100*rate, pct(r.Accs[i]), r.EffectiveDims[i])
	}
	return t.render(w)
}

// AblationEncoderResult compares the RBF encoder against the linear
// random-projection encoder under the full DistHD loop.
type AblationEncoderResult struct {
	Datasets          []string
	RBFAcc, LinearAcc []float64
}

// RunAblationEncoder regenerates the encoder-family comparison.
func RunAblationEncoder(o Options) (*AblationEncoderResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pairs, err := loadAll(o)
	if err != nil {
		return nil, err
	}
	lowD, _ := comparisonDims(o)
	iters := hdcIterations(o)
	res := &AblationEncoderResult{}
	for _, p := range pairs {
		res.Datasets = append(res.Datasets, p.Name)

		cfg := core.DefaultConfig()
		cfg.Dim = lowD
		cfg.Iterations = iters
		cfg.Seed = o.Seed

		rbf := encoding.NewRBF(p.Train.Features(), lowD, o.Seed^0xe1)
		rclf, _, err := core.Train(rbf, p.Train.X, p.Train.Y, p.Train.Classes, cfg)
		if err != nil {
			return nil, err
		}
		res.RBFAcc = append(res.RBFAcc, rclf.Accuracy(p.Test.X, p.Test.Y))

		lin := encoding.NewLinear(p.Train.Features(), lowD, false, o.Seed^0xe2)
		lclf, _, err := core.Train(lin, p.Train.X, p.Train.Y, p.Train.Classes, cfg)
		if err != nil {
			return nil, err
		}
		res.LinearAcc = append(res.LinearAcc, lclf.Accuracy(p.Test.X, p.Test.Y))
	}
	return res, nil
}

// Render prints the comparison.
func (r *AblationEncoderResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation: RBF (paper) vs linear random-projection encoder under DistHD"); err != nil {
		return err
	}
	t := newTable("Dataset", "RBF encoder", "Linear encoder")
	var sr, sl float64
	for i, ds := range r.Datasets {
		t.addf("%s\t%s\t%s", ds, pct(r.RBFAcc[i]), pct(r.LinearAcc[i]))
		sr += r.RBFAcc[i]
		sl += r.LinearAcc[i]
	}
	n := float64(len(r.Datasets))
	t.addf("Mean\t%s\t%s", pct(sr/n), pct(sl/n))
	return t.render(w)
}
