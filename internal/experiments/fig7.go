package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselinehd"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/neuralhd"
)

// Fig7Result backs Fig. 7: convergence speed (test accuracy vs training
// iterations) and accuracy vs dimensionality for DistHD, NeuralHD and
// baselineHD.
type Fig7Result struct {
	Dataset string
	// Checkpoints lists the sampled iteration budgets; the three iter
	// curves are indexed by checkpoint.
	Checkpoints                               []int
	DistHDIters, NeuralHDIters, BaselineIters []float64
	// Dim sweep.
	Dims                                   []int
	DistHDDims, NeuralHDDims, BaselineDims []float64
}

// RunFig7 reproduces both panels on the UCIHAR stand-in.
func RunFig7(o Options) (*Fig7Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "UCIHAR")
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Dataset: p.Name}

	lowD, _ := comparisonDims(o)
	iters := hdcIterations(o)

	// Left panel: accuracy after each iteration at the compressed D.
	// DistHD/NeuralHD expose per-iteration accuracy by retraining with
	// increasing budgets (their encoders mutate during training, so a
	// mid-training snapshot requires a fresh deterministic run).
	res.Checkpoints = convergenceCheckpoints(iters)
	for _, cp := range res.Checkpoints {
		dcfg := core.DefaultConfig()
		dcfg.Dim = lowD
		dcfg.Iterations = cp
		dcfg.Seed = o.Seed
		enc := encoding.NewRBF(p.Train.Features(), lowD, o.Seed^0x7a)
		dclf, _, err := core.Train(enc, p.Train.X, p.Train.Y, p.Train.Classes, dcfg)
		if err != nil {
			return nil, err
		}
		res.DistHDIters = append(res.DistHDIters, dclf.Accuracy(p.Test.X, p.Test.Y))

		ncfg := neuralhd.DefaultConfig()
		ncfg.Dim = lowD
		ncfg.Iterations = cp
		ncfg.Seed = o.Seed
		nenc := encoding.NewRBF(p.Train.Features(), lowD, o.Seed^0x7b)
		nclf, _, err := neuralhd.Train(nenc, p.Train.X, p.Train.Y, p.Train.Classes, ncfg)
		if err != nil {
			return nil, err
		}
		res.NeuralHDIters = append(res.NeuralHDIters, nclf.Accuracy(p.Test.X, p.Test.Y))

		bclf, err := baselinehd.Train(p.Train.X, p.Train.Y, p.Train.Classes,
			baselinehd.Config{Dim: lowD, Epochs: cp, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		res.BaselineIters = append(res.BaselineIters, bclf.Accuracy(p.Test.X, p.Test.Y))
	}

	// Right panel: accuracy vs dimensionality at the full iteration budget.
	if o.Quick {
		res.Dims = []int{64, 128, 256}
	} else {
		res.Dims = []int{1024, 2048, 3072, 4096}
	}
	for _, d := range res.Dims {
		dcfg := core.DefaultConfig()
		dcfg.Dim = d
		dcfg.Iterations = iters
		dcfg.Seed = o.Seed
		enc := encoding.NewRBF(p.Train.Features(), d, o.Seed^0x7c)
		dclf, _, err := core.Train(enc, p.Train.X, p.Train.Y, p.Train.Classes, dcfg)
		if err != nil {
			return nil, err
		}
		res.DistHDDims = append(res.DistHDDims, dclf.Accuracy(p.Test.X, p.Test.Y))

		ncfg := neuralhd.DefaultConfig()
		ncfg.Dim = d
		ncfg.Iterations = iters
		ncfg.Seed = o.Seed
		nenc := encoding.NewRBF(p.Train.Features(), d, o.Seed^0x7d)
		nclf, _, err := neuralhd.Train(nenc, p.Train.X, p.Train.Y, p.Train.Classes, ncfg)
		if err != nil {
			return nil, err
		}
		res.NeuralHDDims = append(res.NeuralHDDims, nclf.Accuracy(p.Test.X, p.Test.Y))

		bclf, err := baselinehd.Train(p.Train.X, p.Train.Y, p.Train.Classes,
			baselinehd.Config{Dim: d, Epochs: iters, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		res.BaselineDims = append(res.BaselineDims, bclf.Accuracy(p.Test.X, p.Test.Y))
	}
	return res, nil
}

// convergenceCheckpoints returns the iteration budgets sampled for the
// left panel.
func convergenceCheckpoints(max int) []int {
	full := []int{1, 2, 4, 8, 12, 16, 20, 30, 40, 60, 80}
	var out []int
	for _, c := range full {
		if c <= max {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Render prints both panels.
func (r *Fig7Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 7: convergence of DistHD vs other HDC algorithms on %s\n", r.Dataset); err != nil {
		return err
	}
	t := newTable("Iterations", "DistHD", "NeuralHD", "BaselineHD")
	for i := range r.DistHDIters {
		t.addf("%d\t%s\t%s\t%s", r.Checkpoints[i],
			pct(r.DistHDIters[i]), pct(r.NeuralHDIters[i]), pct(r.BaselineIters[i]))
	}
	if err := t.render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	t2 := newTable("Dimensions", "DistHD", "NeuralHD", "BaselineHD")
	for i, d := range r.Dims {
		t2.addf("%s\t%s\t%s\t%s", dimLabel(d),
			pct(r.DistHDDims[i]), pct(r.NeuralHDDims[i]), pct(r.BaselineDims[i]))
	}
	return t2.render(w)
}
