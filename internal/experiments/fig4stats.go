package experiments

import (
	"fmt"
	"io"
	"math"
)

// Fig4StatsResult is the multi-seed statistical variant of the Fig. 4
// comparison: mean ± standard deviation of each learner's mean accuracy
// over several independent seeds (fresh data draws AND fresh model
// initializations). The paper reports single numbers; this quantifies how
// much of each gap is real versus seed noise — the question that dominated
// this reproduction (see EXPERIMENTS.md note 4).
type Fig4StatsResult struct {
	Seeds    []uint64
	Learners []string
	// PerSeed[s][l] is learner l's across-dataset mean accuracy at seed s.
	PerSeed [][]float64
	// Mean and Std aggregate PerSeed per learner.
	Mean, Std []float64
}

// RunFig4Stats repeats the comparison across `trials` seeds derived from
// o.Seed (3 at Quick, 5 otherwise).
func RunFig4Stats(o Options) (*Fig4StatsResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	trials := 5
	if o.Quick {
		trials = 3
	}
	res := &Fig4StatsResult{}
	for s := 0; s < trials; s++ {
		seed := o.Seed + uint64(s)*7919
		res.Seeds = append(res.Seeds, seed)
		run := o
		run.Seed = seed
		cmp, err := RunComparison(run)
		if err != nil {
			return nil, err
		}
		if res.Learners == nil {
			res.Learners = cmp.Learners
		}
		row := make([]float64, len(cmp.Learners))
		for i, l := range cmp.Learners {
			row[i] = cmp.MeanAccuracy(l)
		}
		res.PerSeed = append(res.PerSeed, row)
	}

	n := float64(len(res.PerSeed))
	res.Mean = make([]float64, len(res.Learners))
	res.Std = make([]float64, len(res.Learners))
	for l := range res.Learners {
		var sum float64
		for s := range res.PerSeed {
			sum += res.PerSeed[s][l]
		}
		mean := sum / n
		var ss float64
		for s := range res.PerSeed {
			d := res.PerSeed[s][l] - mean
			ss += d * d
		}
		res.Mean[l] = mean
		res.Std[l] = math.Sqrt(ss / n)
	}
	return res, nil
}

// Render prints mean ± std per learner plus the DistHD deltas.
func (r *Fig4StatsResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 4 statistical variant: mean accuracy over %d seeds (mean ± std)\n", len(r.Seeds)); err != nil {
		return err
	}
	t := newTable("Learner", "Mean", "Std")
	for l, name := range r.Learners {
		t.addf("%s\t%s\t±%.2f%%", name, pct(r.Mean[l]), 100*r.Std[l])
	}
	if err := t.render(w); err != nil {
		return err
	}
	// DistHD (index 5) deltas with a crude significance hint.
	dist := 5
	for _, vs := range []int{2, 3, 4} {
		delta := r.Mean[dist] - r.Mean[vs]
		noise := math.Sqrt(r.Std[dist]*r.Std[dist]+r.Std[vs]*r.Std[vs]) + 1e-12
		verdict := "within noise"
		if math.Abs(delta) > 2*noise {
			verdict = "clear"
		}
		if _, err := fmt.Fprintf(w, "DistHD - %-22s %+.2f%% (pooled std %.2f%%; %s)\n",
			r.Learners[vs]+":", 100*delta, 100*noise, verdict); err != nil {
			return err
		}
	}
	return nil
}
