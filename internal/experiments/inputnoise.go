package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
)

// InputNoiseResult is an extension experiment: accuracy degradation under
// Gaussian *input* noise (noisy sensors), complementing Fig. 8's *memory*
// faults. The paper's §I motivates HDC with robustness on "noisy IoT
// devices" in general; this measures that claim directly for DistHD and
// the DNN comparator.
type InputNoiseResult struct {
	Dataset     string
	NoiseLevels []float64 // std of added Gaussian noise (features are z-scored)
	DistHD      []float64 // accuracy at each level
	DNN         []float64
	CleanDist   float64
	CleanDNN    float64
}

// RunInputNoise trains both models once and evaluates under increasing
// input corruption.
func RunInputNoise(o Options) (*InputNoiseResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "UCIHAR")
	if err != nil {
		return nil, err
	}
	lowD, _ := comparisonDims(o)
	res := &InputNoiseResult{
		Dataset:     p.Name,
		NoiseLevels: []float64{0.25, 0.5, 1.0, 1.5, 2.0},
	}

	cfg := core.DefaultConfig()
	cfg.Dim = lowD
	cfg.Iterations = hdcIterations(o)
	cfg.Seed = o.Seed
	enc := encoding.NewRBF(p.Train.Features(), lowD, o.Seed^0x105e)
	dist, _, err := core.Train(enc, p.Train.X, p.Train.Y, p.Train.Classes, cfg)
	if err != nil {
		return nil, err
	}
	dnn := newDNN(o)
	if err := dnn.Train(p.Train); err != nil {
		return nil, err
	}

	res.CleanDist = dist.Accuracy(p.Test.X, p.Test.Y)
	res.CleanDNN = accuracyOf(dnn.Predict(p.Test.X), p.Test.Y)

	noiseRNG := rng.New(o.Seed ^ 0xadd)
	for _, sigma := range res.NoiseLevels {
		noisy := corrupt(p.Test, sigma, noiseRNG.Split())
		res.DistHD = append(res.DistHD, dist.Accuracy(noisy.X, noisy.Y))
		res.DNN = append(res.DNN, accuracyOf(dnn.Predict(noisy.X), noisy.Y))
	}
	return res, nil
}

// corrupt returns a copy of d with N(0, sigma²) noise added to every
// feature.
func corrupt(d *dataset.Dataset, sigma float64, r *rng.Rand) *dataset.Dataset {
	out := d.Clone()
	for i := range out.X.Data {
		out.X.Data[i] += sigma * r.NormFloat64()
	}
	return out
}

// accuracyOf computes plain accuracy from predictions.
func accuracyOf(pred, y []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// Render prints the degradation curves.
func (r *InputNoiseResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Input-noise extension: accuracy under Gaussian sensor noise on %s (features are z-scored)\n", r.Dataset); err != nil {
		return err
	}
	t := newTable("Noise std", "DistHD", "DNN", "DistHD loss", "DNN loss")
	t.addf("clean\t%s\t%s\t-\t-", pct(r.CleanDist), pct(r.CleanDNN))
	for i, sigma := range r.NoiseLevels {
		t.addf("%.2f\t%s\t%s\t%s\t%s", sigma,
			pct(r.DistHD[i]), pct(r.DNN[i]),
			pct(r.CleanDist-r.DistHD[i]),
			pct(r.CleanDNN-r.DNN[i]))
	}
	return t.render(w)
}
