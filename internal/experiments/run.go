package experiments

import (
	"fmt"
	"io"
)

// Renderer is any experiment result that can print itself.
type Renderer interface {
	Render(w io.Writer) error
}

// Run executes the experiment with the given id and writes its rendered
// table(s) to w. Valid ids are listed by ExperimentIDs.
func Run(id string, o Options, w io.Writer) error {
	var (
		res Renderer
		err error
	)
	switch id {
	case "table1":
		res, err = RunTable1(o)
	case "fig2a":
		res, err = RunFig2a(o)
	case "fig2b":
		res, err = RunFig2b(o)
	case "fig4":
		var c *ComparisonResult
		c, err = RunComparison(o)
		if err == nil {
			return c.RenderFig4(w)
		}
	case "fig5":
		var c *ComparisonResult
		c, err = RunComparison(o)
		if err == nil {
			return c.RenderFig5(w)
		}
	case "fig6":
		res, err = RunFig6(o)
	case "fig7":
		res, err = RunFig7(o)
	case "fig8":
		res, err = RunFig8(o)
	case "ablA2":
		res, err = RunAblationA2(o)
	case "ablReg":
		res, err = RunAblationRegen(o)
	case "ablEnc":
		res, err = RunAblationEncoder(o)
	case "edgecost":
		res, err = RunEdgeCost(o)
	case "gridsearch":
		res, err = RunGridSearch(o)
	case "headline":
		res, err = RunHeadline(o)
	case "inputnoise":
		res, err = RunInputNoise(o)
	case "fig4stats":
		res, err = RunFig4Stats(o)
	case "hdtrainers":
		res, err = RunHDTrainers(o)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (valid: %v)", id, ExperimentIDs())
	}
	if err != nil {
		return err
	}
	return res.Render(w)
}
