package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// LearnerResult holds one learner's outcome on one dataset.
type LearnerResult struct {
	Learner   string
	Dataset   string
	Accuracy  float64
	TrainSecs float64
	// InferSecs is the wall-clock time to classify the full test split.
	InferSecs float64
	TestSize  int
}

// ComparisonResult backs both Fig. 4 (accuracy) and Fig. 5 (efficiency):
// the six learners of the paper's headline comparison, trained once per
// dataset with both accuracy and timing recorded.
type ComparisonResult struct {
	Datasets []string
	Learners []string
	// ByKey maps learner+"/"+dataset to the result.
	ByKey map[string]*LearnerResult
}

// key builds the lookup key for ByKey.
func key(learner, ds string) string { return learner + "/" + ds }

// Get returns the result for a learner/dataset pair, or nil.
func (r *ComparisonResult) Get(learner, ds string) *LearnerResult {
	return r.ByKey[key(learner, ds)]
}

// MeanAccuracy averages a learner's accuracy across all datasets.
func (r *ComparisonResult) MeanAccuracy(learner string) float64 {
	var sum float64
	var n int
	for _, ds := range r.Datasets {
		if lr := r.Get(learner, ds); lr != nil {
			sum += lr.Accuracy
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// speedup returns the geometric-mean ratio base/target of the chosen
// phase's time across datasets — "target is X× faster than base".
func (r *ComparisonResult) speedup(base, target string, infer bool) float64 {
	var num, den []float64
	for _, ds := range r.Datasets {
		b, t := r.Get(base, ds), r.Get(target, ds)
		if b == nil || t == nil {
			continue
		}
		if infer {
			num = append(num, b.InferSecs)
			den = append(den, t.InferSecs)
		} else {
			num = append(num, b.TrainSecs)
			den = append(den, t.TrainSecs)
		}
	}
	return geoMeanRatio(num, den)
}

// RunComparison trains the paper's six learners on every dataset, timing
// training and inference. This single run backs fig4 and fig5.
func RunComparison(o Options) (*ComparisonResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pairs, err := loadAll(o)
	if err != nil {
		return nil, err
	}
	lowD, highD := comparisonDims(o)

	res := &ComparisonResult{ByKey: map[string]*LearnerResult{}}
	for _, p := range pairs {
		res.Datasets = append(res.Datasets, p.Name)
	}

	// Construct fresh learners per dataset (they keep trained state).
	mkLearners := func() []Learner {
		return []Learner{
			newDNN(o),
			newSVM(o),
			newBaselineHD(o, lowD),
			newBaselineHD(o, highD),
			newNeuralHD(o, lowD),
			newDistHD(o, lowD),
		}
	}
	for _, l := range mkLearners() {
		res.Learners = append(res.Learners, l.Name())
	}

	for _, p := range pairs {
		for _, l := range mkLearners() {
			lr := &LearnerResult{Learner: l.Name(), Dataset: p.Name, TestSize: p.Test.N()}
			var trainErr error
			lr.TrainSecs = timeIt(func() { trainErr = l.Train(p.Train) })
			if trainErr != nil {
				return nil, fmt.Errorf("%s on %s: %w", l.Name(), p.Name, trainErr)
			}
			var pred []int
			lr.InferSecs = timeIt(func() { pred = l.Predict(p.Test.X) })
			acc, err := metrics.Accuracy(pred, p.Test.Y)
			if err != nil {
				return nil, err
			}
			lr.Accuracy = acc
			res.ByKey[key(l.Name(), p.Name)] = lr
		}
	}
	return res, nil
}

// RenderFig4 prints the accuracy comparison (paper Fig. 4) plus the
// aggregate deltas the paper headlines.
func (r *ComparisonResult) RenderFig4(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Fig. 4: Classification accuracy of DistHD vs. state-of-the-art learning algorithms"); err != nil {
		return err
	}
	t := newTable(append([]string{"Learner"}, append(r.Datasets, "Mean")...)...)
	for _, l := range r.Learners {
		cells := []string{l}
		for _, ds := range r.Datasets {
			cells = append(cells, pct(r.Get(l, ds).Accuracy))
		}
		cells = append(cells, pct(r.MeanAccuracy(l)))
		t.add(cells...)
	}
	if err := t.render(w); err != nil {
		return err
	}

	dist := r.Learners[5]
	deltas := []struct{ vs, label string }{
		{r.Learners[2], "baselineHD (low D)"},
		{r.Learners[3], "baselineHD (high D*)"},
		{r.Learners[4], "NeuralHD (low D)"},
		{r.Learners[1], "SVM"},
		{r.Learners[0], "DNN"},
	}
	for _, d := range deltas {
		diff := 100 * (r.MeanAccuracy(dist) - r.MeanAccuracy(d.vs))
		if _, err := fmt.Fprintf(w, "DistHD vs %-22s %+.2f%% mean accuracy\n", d.label+":", diff); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig5 prints the efficiency comparison (paper Fig. 5) plus the
// aggregate speedups the paper headlines.
func (r *ComparisonResult) RenderFig5(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Fig. 5: Training time and inference latency of DistHD vs. state-of-the-art learning algorithms"); err != nil {
		return err
	}
	// Fig. 5 compares the iso-accuracy configurations: DNN, SVM,
	// baselineHD at its high effective dimensionality, NeuralHD and DistHD
	// at the compressed dimensionality.
	learners := []string{r.Learners[0], r.Learners[1], r.Learners[3], r.Learners[4], r.Learners[5]}

	t := newTable(append([]string{"Training time"}, r.Datasets...)...)
	for _, l := range learners {
		cells := []string{l}
		for _, ds := range r.Datasets {
			cells = append(cells, secs(r.Get(l, ds).TrainSecs))
		}
		t.add(cells...)
	}
	if err := t.render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	t2 := newTable(append([]string{"Inference latency"}, r.Datasets...)...)
	for _, l := range learners {
		cells := []string{l}
		for _, ds := range r.Datasets {
			cells = append(cells, secs(r.Get(l, ds).InferSecs))
		}
		t2.add(cells...)
	}
	if err := t2.render(w); err != nil {
		return err
	}

	dist := r.Learners[5]
	lines := []struct {
		base  string
		infer bool
		label string
	}{
		{r.Learners[0], false, "training speedup vs DNN"},
		{r.Learners[3], false, "training speedup vs baselineHD (high D*)"},
		{r.Learners[4], false, "training speedup vs NeuralHD"},
		{r.Learners[3], true, "inference speedup vs baselineHD (high D*)"},
		{r.Learners[1], true, "inference speedup vs SVM"},
	}
	for _, ln := range lines {
		if _, err := fmt.Fprintf(w, "DistHD %-42s %.2fx\n", ln.label+":", r.speedup(ln.base, dist, ln.infer)); err != nil {
			return err
		}
	}
	return nil
}
