package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment test runs at Quick scale so the suite stays fast; the
// full-scale runs back EXPERIMENTS.md via cmd/hdbench.

func TestOptionsValidate(t *testing.T) {
	o := Options{Scale: 0}
	if err := o.Validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
	o = QuickOptions()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1(t *testing.T) {
	res, err := RunTable1(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 datasets, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TrainSize <= 0 || row.TestSize <= 0 {
			t.Fatalf("dataset %s has empty split", row.Name)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MNIST", "UCIHAR", "ISOLET", "PAMAP2", "DIABETES"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("rendered table missing %s:\n%s", name, buf.String())
		}
	}
}

func TestComparisonShapes(t *testing.T) {
	res, err := RunComparison(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 5 || len(res.Learners) != 6 {
		t.Fatalf("got %d datasets, %d learners", len(res.Datasets), len(res.Learners))
	}
	for _, l := range res.Learners {
		for _, ds := range res.Datasets {
			lr := res.Get(l, ds)
			if lr == nil {
				t.Fatalf("missing result for %s/%s", l, ds)
			}
			if lr.Accuracy < 0 || lr.Accuracy > 1 {
				t.Fatalf("%s/%s accuracy %v out of range", l, ds, lr.Accuracy)
			}
			if lr.TrainSecs <= 0 || lr.InferSecs <= 0 {
				t.Fatalf("%s/%s has non-positive timing", l, ds)
			}
		}
	}
	// Fig 4 shape: every learner beats chance on average.
	for _, l := range res.Learners {
		if res.MeanAccuracy(l) < 0.3 {
			t.Fatalf("%s mean accuracy %.3f at or below chance", l, res.MeanAccuracy(l))
		}
	}
	// The paper's ordering claims are asserted at full scale (see
	// TestFullScaleShapes, gated behind HD_FULL=1); at the quick smoke
	// scale the datasets are tiny and dynamic encoders churn on almost no
	// data, so only a generous sanity margin is checked here.
	dist := res.MeanAccuracy(res.Learners[5])
	baseLow := res.MeanAccuracy(res.Learners[2])
	if dist < baseLow-0.15 {
		t.Fatalf("DistHD (%.3f) collapsed far below the bipolar static baseline (%.3f)", dist, baseLow)
	}
	var buf bytes.Buffer
	if err := res.RenderFig4(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderFig5(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DistHD") {
		t.Fatal("render output missing DistHD")
	}
}

func TestFig2a(t *testing.T) {
	res, err := RunFig2a(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DimAccs) != len(res.Dims) || len(res.IterAccs) != len(res.Iters) {
		t.Fatal("sweep lengths mismatch")
	}
	// Static HDC accuracy should not collapse as D grows.
	if res.DimAccs[len(res.DimAccs)-1] < res.DimAccs[0]-0.05 {
		t.Fatalf("static HDC got worse with more dims: %v", res.DimAccs)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig2bTopKOrdering(t *testing.T) {
	res, err := RunFig2b(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Iterations {
		if res.Top1[i] > res.Top2[i] || res.Top2[i] > res.Top3[i] {
			t.Fatalf("top-k ordering violated at checkpoint %d: %v %v %v",
				i, res.Top1[i], res.Top2[i], res.Top3[i])
		}
	}
	// The motivating observation: top-2 clearly above top-1 at the end.
	last := len(res.Iterations) - 1
	if res.Top2[last] <= res.Top1[last] {
		t.Fatalf("top-2 (%v) not above top-1 (%v)", res.Top2[last], res.Top1[last])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig6(t *testing.T) {
	res, err := RunFig6(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("expected 2 curves, got %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if c.AUC < 0.5 {
			t.Fatalf("%s AUC %.3f below random", c.Label, c.AUC)
		}
		last := c.Points[len(c.Points)-1]
		if last.FPR != 1 || last.TPR != 1 {
			t.Fatalf("%s curve does not end at (1,1)", c.Label)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig7(t *testing.T) {
	res, err := RunFig7(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != len(res.DistHDIters) {
		t.Fatal("checkpoint bookkeeping broken")
	}
	// Strict ordering is asserted at full scale; here only sanity.
	last := len(res.Checkpoints) - 1
	if res.DistHDIters[last] <= res.BaselineIters[last]-0.15 {
		t.Fatalf("DistHD final %.3f collapsed far below baselineHD %.3f",
			res.DistHDIters[last], res.BaselineIters[last])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8(t *testing.T) {
	res, err := RunFig8(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Quality loss must be broadly non-decreasing in the error rate for the
	// DNN (allowing small trial noise).
	for i := 1; i < len(res.DNN); i++ {
		if res.DNN[i] < res.DNN[i-1]-0.1 {
			t.Fatalf("DNN loss curve wildly non-monotone: %v", res.DNN)
		}
	}
	// The paper's key claims, in shape: at the highest error rate the 1-bit
	// DistHD at the largest D degrades less than the 8-bit DNN.
	ei := len(res.ErrorRates) - 1
	distBest := res.DistHD[0][len(res.Dims)-1][ei]
	if distBest > res.DNN[ei] {
		t.Fatalf("DistHD 1-bit (%.3f) should degrade less than DNN (%.3f) at %.0f%% flips",
			distBest, res.DNN[ei], 100*res.ErrorRates[ei])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	o := QuickOptions()
	a2, err := RunAblationA2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2.ProseAcc) != 5 || len(a2.LiteralAcc) != 5 {
		t.Fatal("ablA2 wrong lengths")
	}
	reg, err := RunAblationRegen(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Accs) != len(reg.Rates) {
		t.Fatal("ablReg wrong lengths")
	}
	// R=0 must leave effective D at the physical D.
	if reg.EffectiveDims[0] != 64 {
		t.Fatalf("R=0 effective dim %d, want physical 64", reg.EffectiveDims[0])
	}
	enc, err := RunAblationEncoder(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.RBFAcc) != 5 {
		t.Fatal("ablEnc wrong lengths")
	}
	var buf bytes.Buffer
	for _, r := range []Renderer{a2, reg, enc} {
		if err := r.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", QuickOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("dispatcher produced no output")
	}
	if err := Run("nope", QuickOptions(), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentIDsCoverDispatcher(t *testing.T) {
	// Every listed id must dispatch without "unknown experiment" errors.
	// (Run with an invalid scale so the experiment itself fails fast after
	// id resolution.)
	for _, id := range ExperimentIDs() {
		err := Run(id, Options{Scale: -1}, &bytes.Buffer{})
		if err == nil {
			t.Fatalf("%s ran with invalid options", id)
		}
		if strings.Contains(err.Error(), "unknown experiment") {
			t.Fatalf("listed id %q not wired in dispatcher", id)
		}
	}
}

func TestTableRenderer(t *testing.T) {
	tb := newTable("A", "LongHeader")
	tb.add("x", "y")
	tb.addf("%d\t%s", 12, "z")
	var buf bytes.Buffer
	if err := tb.render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatal("missing rule line")
	}
}

func TestGeoMeanRatio(t *testing.T) {
	r := geoMeanRatio([]float64{4, 9}, []float64{1, 1})
	if r < 5.9 || r > 6.1 { // sqrt(36) = 6
		t.Fatalf("geoMeanRatio = %v, want 6", r)
	}
	if geoMeanRatio(nil, nil) != 0 {
		t.Fatal("empty ratio should be 0")
	}
	if geoMeanRatio([]float64{1, 0}, []float64{1, 2}) != 1 {
		t.Fatal("zero entries should be skipped")
	}
}

func TestDimLabel(t *testing.T) {
	cases := map[int]string{512: "0.5k", 1024: "1k", 2048: "2k", 4096: "4k", 6144: "6k", 3000: "3k", 64: "64"}
	for d, want := range cases {
		if got := dimLabel(d); got != want {
			t.Fatalf("dimLabel(%d) = %q, want %q", d, got, want)
		}
	}
}

func TestHeadline(t *testing.T) {
	res, err := RunHeadline(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.DimReduction < 1 {
		t.Fatalf("dim reduction %v below 1", res.DimReduction)
	}
	if res.TrainSpeedupVsDNN <= 0 || res.InferSpeedupVsHDC <= 0 {
		t.Fatalf("degenerate speedups: %+v", res)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2.12%", "8.0x", "12.90x"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("headline render missing paper reference %q:\n%s", want, buf.String())
		}
	}
}

func TestGridSearch(t *testing.T) {
	res, err := RunGridSearch(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 5 {
		t.Fatalf("got %d datasets", len(res.Datasets))
	}
	for i := range res.Datasets {
		if res.DNNBest[i] == nil || res.SVMBest[i] == nil {
			t.Fatalf("dataset %s missing best points", res.Datasets[i])
		}
		for _, a := range [][]float64{res.DNNDefault, res.DNNTuned, res.SVMDefault, res.SVMTuned} {
			if a[i] < 0 || a[i] > 1 {
				t.Fatalf("accuracy out of range: %v", a[i])
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCostExperiment(t *testing.T) {
	res, err := RunEdgeCost(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 6 {
		t.Fatalf("got %d profiles", len(res.Profiles))
	}
	// the high-D float HDC must cost more than the low-D one
	if res.Profiles[2].EnergyPJ <= res.Profiles[3].EnergyPJ {
		t.Fatal("high-D baseline should cost more energy than low-D DistHD")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestInputNoise(t *testing.T) {
	res, err := RunInputNoise(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DistHD) != len(res.NoiseLevels) || len(res.DNN) != len(res.NoiseLevels) {
		t.Fatal("curve lengths mismatch")
	}
	// Heavy noise must hurt both models relative to clean accuracy.
	last := len(res.NoiseLevels) - 1
	if res.DistHD[last] > res.CleanDist+0.01 {
		t.Fatalf("DistHD improved under heavy noise: %.3f vs clean %.3f", res.DistHD[last], res.CleanDist)
	}
	if res.DNN[last] > res.CleanDNN+0.01 {
		t.Fatalf("DNN improved under heavy noise: %.3f vs clean %.3f", res.DNN[last], res.CleanDNN)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Stats(t *testing.T) {
	res, err := RunFig4Stats(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("quick mode should run 3 seeds, got %d", len(res.Seeds))
	}
	if len(res.Mean) != 6 || len(res.Std) != 6 {
		t.Fatal("aggregate lengths wrong")
	}
	for l, m := range res.Mean {
		if m <= 0 || m > 1 {
			t.Fatalf("learner %d mean %v out of range", l, m)
		}
		if res.Std[l] < 0 {
			t.Fatalf("negative std %v", res.Std[l])
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Fatal("render missing std column")
	}
}

func TestHDTrainers(t *testing.T) {
	res, err := RunHDTrainers(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 5 {
		t.Fatalf("got %d datasets", len(res.Datasets))
	}
	// At the tiny quick scale, bundling (a class-mean estimator) can beat
	// the error-driven rules — a small-sample effect. Only sanity-check
	// here: every trainer must beat chance on average; the full-scale
	// ordering (adaptive ≥ bundling) shows at hdbench scale.
	for name, accs := range map[string][]float64{
		"bundling": res.Bundling, "adaptive": res.Adaptive, "online": res.Online,
	} {
		var mean float64
		for _, a := range accs {
			mean += a / 5
		}
		if mean < 0.3 {
			t.Fatalf("%s trainer mean %.3f at or below chance", name, mean)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// Experiments must be bitwise deterministic given identical options (the
// whole reproduction depends on it). Timing-free experiments are compared
// as rendered text.
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "fig2b", "fig6", "edgecost", "ablReg"} {
		var a, b bytes.Buffer
		if err := Run(id, QuickOptions(), &a); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := Run(id, QuickOptions(), &b); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s renders differ across identical runs", id)
		}
	}
}
