package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/metrics"
)

// Fig6Curve is one ROC curve of Fig. 6: a DistHD model trained with a
// particular α/β ratio, evaluated one-vs-rest on the positive class.
type Fig6Curve struct {
	Label     string
	AlphaBeta float64
	Points    []metrics.ROCPoint
	AUC       float64
	Accuracy  float64
}

// Fig6Result holds the two weight-parameter settings the paper contrasts:
// α/β = 0.5 (specificity-leaning) and α/β = 2 (sensitivity-leaning).
type Fig6Result struct {
	Dataset string
	// PositiveClass is the class treated as "positive" for the ROC.
	PositiveClass int
	Curves        []Fig6Curve
}

// RunFig6 trains DistHD twice on the DIABETES stand-in with the two α/β
// ratios and computes one-vs-rest ROC curves from the class-score margins.
func RunFig6(o Options) (*Fig6Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "DIABETES")
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Dataset: p.Name, PositiveClass: 0}

	settings := []struct {
		label       string
		alpha, beta float64
	}{
		{"alpha/beta=0.5", 0.5, 1.0},
		{"alpha/beta=2", 1.0, 0.5},
	}
	d := 512
	if o.Quick {
		d = 128
	}
	for _, s := range settings {
		cfg := core.DefaultConfig()
		cfg.Dim = d
		cfg.Iterations = hdcIterations(o)
		cfg.Alpha = s.alpha
		cfg.Beta = s.beta
		cfg.Theta = s.beta / 2
		cfg.Seed = o.Seed
		enc := encoding.NewRBF(p.Train.Features(), d, o.Seed^0xf16)
		clf, _, err := core.Train(enc, p.Train.X, p.Train.Y, p.Train.Classes, cfg)
		if err != nil {
			return nil, err
		}

		// One-vs-rest margin of the positive class: its similarity minus
		// the best other-class similarity.
		scores := make([]float64, p.Test.N())
		positive := make([]bool, p.Test.N())
		correct := 0
		for i := 0; i < p.Test.N(); i++ {
			s := clf.Scores(p.Test.X.Row(i))
			bestOther := -2.0
			for c, v := range s {
				if c != res.PositiveClass && v > bestOther {
					bestOther = v
				}
			}
			scores[i] = s[res.PositiveClass] - bestOther
			positive[i] = p.Test.Y[i] == res.PositiveClass
			best := 0
			for c, v := range s {
				if v > s[best] {
					best = c
				}
			}
			if best == p.Test.Y[i] {
				correct++
			}
		}
		points, auc, err := metrics.ROC(scores, positive)
		if err != nil {
			return nil, err
		}
		res.Curves = append(res.Curves, Fig6Curve{
			Label:     s.label,
			AlphaBeta: s.alpha / s.beta,
			Points:    points,
			AUC:       auc,
			Accuracy:  float64(correct) / float64(p.Test.N()),
		})
	}
	return res, nil
}

// Render prints coarse ROC operating points plus AUCs, the paper's Fig. 6.
func (r *Fig6Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 6: ROC of DistHD with different weight parameters on %s (positive class %d)\n",
		r.Dataset, r.PositiveClass); err != nil {
		return err
	}
	for _, c := range r.Curves {
		if _, err := fmt.Fprintf(w, "\n%s: AUC = %.3f, accuracy = %s\n", c.Label, c.AUC, pct(c.Accuracy)); err != nil {
			return err
		}
		t := newTable("FPR (1-specificity)", "TPR (sensitivity)")
		// subsample ~10 operating points for readability
		step := len(c.Points) / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(c.Points); i += step {
			t.addf("%.3f\t%.3f", c.Points[i].FPR, c.Points[i].TPR)
		}
		last := c.Points[len(c.Points)-1]
		t.addf("%.3f\t%.3f", last.FPR, last.TPR)
		if err := t.render(w); err != nil {
			return err
		}
	}
	return nil
}
