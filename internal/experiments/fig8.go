package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/mlp"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/rng"
)

// Fig8Cell is one entry of the robustness table: average quality loss of a
// deployed model at a given bit-flip error rate.
type Fig8Cell struct {
	QualityLoss float64
}

// Fig8Result reproduces the Fig. 8 table: quality loss of the 8-bit DNN
// and of DistHD at D ∈ {0.5k, 1k, 2k, 4k} × precision ∈ {1, 2, 4, 8} bits
// under memory bit-flip rates of {1, 2, 5, 10, 15}%.
type Fig8Result struct {
	Dataset    string
	ErrorRates []float64
	Dims       []int
	Bits       []int
	Trials     int
	// DNN[e] is quality loss of the 8-bit DNN at ErrorRates[e].
	DNN []float64
	// DistHD[b][d][e] indexes Bits × Dims × ErrorRates.
	DistHD [][][]float64
	// CleanDNNAcc / CleanDistAcc record the fault-free accuracies.
	CleanDNNAcc  float64
	CleanDistAcc map[string]float64 // "bits/dim" -> accuracy
}

// RunFig8 trains the models once per dimensionality, then measures
// accuracy degradation across fault rates averaged over several injection
// trials.
func RunFig8(o Options) (*Fig8Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "UCIHAR")
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		Dataset:      p.Name,
		ErrorRates:   []float64{0.01, 0.02, 0.05, 0.10, 0.15},
		Bits:         []int{1, 2, 4, 8},
		Trials:       5,
		CleanDistAcc: map[string]float64{},
	}
	if o.Quick {
		res.Dims = []int{128, 256}
		res.Trials = 2
	} else {
		res.Dims = []int{512, 1024, 2048, 4096}
	}

	// --- DNN at 8-bit ---
	dnn := newDNN(o)
	if err := dnn.Train(p.Train); err != nil {
		return nil, err
	}
	cleanPred := dnn.Predict(p.Test.X)
	res.CleanDNNAcc, err = metrics.Accuracy(cleanPred, p.Test.Y)
	if err != nil {
		return nil, err
	}
	faultRNG := rng.New(o.Seed ^ 0xfa17)
	for _, rate := range res.ErrorRates {
		var lossSum float64
		for trial := 0; trial < res.Trials; trial++ {
			faulty, err := injureDNN(dnn.net, rate, faultRNG.Split())
			if err != nil {
				return nil, err
			}
			acc := faulty.Accuracy(p.Test.X, p.Test.Y)
			lossSum += metrics.QualityLoss(res.CleanDNNAcc, acc)
		}
		res.DNN = append(res.DNN, lossSum/float64(res.Trials))
	}

	// --- DistHD across dims × bits ---
	// Train one DistHD model per dimensionality, then deploy it at each
	// precision. The encoded test set is reused across precisions.
	res.DistHD = make([][][]float64, len(res.Bits))
	for bi := range res.Bits {
		res.DistHD[bi] = make([][]float64, len(res.Dims))
		for di := range res.Dims {
			res.DistHD[bi][di] = make([]float64, len(res.ErrorRates))
		}
	}
	for di, d := range res.Dims {
		cfg := core.DefaultConfig()
		cfg.Dim = d
		cfg.Iterations = hdcIterations(o)
		cfg.Seed = o.Seed
		enc := encoding.NewRBF(p.Train.Features(), d, o.Seed^0xf18)
		clf, _, err := core.Train(enc, p.Train.X, p.Train.Y, p.Train.Classes, cfg)
		if err != nil {
			return nil, err
		}
		Htest := clf.Enc.EncodeBatch(p.Test.X)

		for bi, bits := range res.Bits {
			// Clean (fault-free) deployed accuracy at this precision.
			img, err := quant.Pack(clf.Model.Weights.Data, bits)
			if err != nil {
				return nil, err
			}
			cleanAcc, err := deployedAccuracy(img, clf.Model.Classes(), d, Htest, p.Test.Y)
			if err != nil {
				return nil, err
			}
			res.CleanDistAcc[fmt.Sprintf("%d/%d", bits, d)] = cleanAcc

			for ei, rate := range res.ErrorRates {
				var lossSum float64
				for trial := 0; trial < res.Trials; trial++ {
					injured := img.Clone()
					if err := injured.FlipBits(rate, faultRNG.Split()); err != nil {
						return nil, err
					}
					acc, err := deployedAccuracy(injured, clf.Model.Classes(), d, Htest, p.Test.Y)
					if err != nil {
						return nil, err
					}
					lossSum += metrics.QualityLoss(cleanAcc, acc)
				}
				res.DistHD[bi][di][ei] = lossSum / float64(res.Trials)
			}
		}
	}
	return res, nil
}

// deployedAccuracy reconstitutes a class-hypervector model from a packed
// image and evaluates it on the encoded test set.
func deployedAccuracy(img *quant.Image, classes, dim int, Htest *mat.Dense, y []int) (float64, error) {
	vals := img.Unpack()
	m := model.New(classes, dim)
	copy(m.Weights.Data, vals)
	m.RefreshNorms()
	return model.Accuracy(m, Htest, y), nil
}

// injureDNN quantizes every layer of the network to 8 bits, flips bits at
// the given rate, and reconstitutes a faulty clone — the paper's DNN fault
// model ("all DNN weights are quantized to their effective 8-bit
// representation").
func injureDNN(net *mlp.Network, rate float64, r *rng.Rand) (*mlp.Network, error) {
	out := net.Clone()
	for l := 0; l < len(out.W); l++ {
		img, err := quant.Pack(out.W[l].Data, 8)
		if err != nil {
			return nil, err
		}
		if err := img.FlipBits(rate, r); err != nil {
			return nil, err
		}
		copy(out.W[l].Data, img.Unpack())

		bimg, err := quant.Pack(out.B[l], 8)
		if err != nil {
			return nil, err
		}
		if err := bimg.FlipBits(rate, r); err != nil {
			return nil, err
		}
		copy(out.B[l], bimg.Unpack())
	}
	return out, nil
}

// Render prints the Fig. 8 table in the paper's layout (rows = model ×
// precision × dimensionality, columns = error rates).
func (r *Fig8Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 8: quality loss under random memory bit flips on %s (avg of %d trials)\n",
		r.Dataset, r.Trials); err != nil {
		return err
	}
	header := []string{"Model", "Bits", "D"}
	for _, rate := range r.ErrorRates {
		header = append(header, fmt.Sprintf("%.1f%%", 100*rate))
	}
	t := newTable(header...)

	row := []string{"DNN", "8", "-"}
	for _, loss := range r.DNN {
		row = append(row, fmt.Sprintf("%.1f%%", 100*loss))
	}
	t.add(row...)

	for bi, bits := range r.Bits {
		for di, d := range r.Dims {
			row := []string{"DistHD", fmt.Sprintf("%d", bits), dimLabel(d)}
			for ei := range r.ErrorRates {
				row = append(row, fmt.Sprintf("%.1f%%", 100*r.DistHD[bi][di][ei]))
			}
			t.add(row...)
		}
	}
	if err := t.render(w); err != nil {
		return err
	}

	// Aggregate robustness ratio at the paper's highlighted operating
	// point: 10% flips, DistHD 1-bit at the largest D vs DNN.
	ei := 3 // 10%
	best := r.DistHD[0][len(r.Dims)-1][ei]
	dnn := r.DNN[ei]
	if best > 0 {
		_, err := fmt.Fprintf(w, "robustness ratio at 10%% flips (DNN loss / DistHD 1-bit max-D loss): %.2fx\n", dnn/best)
		return err
	}
	_, err := fmt.Fprintf(w, "DistHD 1-bit at max D lost no accuracy at 10%% flips (DNN lost %.1f%%)\n", 100*dnn)
	return err
}
