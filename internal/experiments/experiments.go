// Package experiments regenerates every table and figure of the DistHD
// paper's evaluation (§IV) on the synthetic stand-ins for its five
// datasets. Each experiment has a Run function returning a typed result
// with a Render method that prints the same rows/series the paper reports;
// cmd/hdbench exposes them by experiment id and bench_test.go wires each to
// a testing.B benchmark.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data); the reproduction target is the qualitative shape: who wins, by
// roughly what factor, and where crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for every artifact.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/dataset"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the default dataset sizes (1.0 ≈ a few thousand
	// samples per dataset; see dataset.PaperSpecs).
	Scale float64
	// Seed drives every stochastic component.
	Seed uint64
	// Quick shrinks sweeps (fewer dims, fewer iterations) so the
	// experiment finishes in seconds; used by tests and testing.B benches.
	Quick bool
}

// DefaultOptions returns the configuration used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Scale: 0.35, Seed: 42}
}

// QuickOptions returns a CI-sized configuration.
func QuickOptions() Options {
	return Options{Scale: 0.04, Seed: 42, Quick: true}
}

// Validate reports the first problem with the options, or nil.
func (o *Options) Validate() error {
	if o.Scale <= 0 {
		return fmt.Errorf("experiments: Scale must be positive, got %v", o.Scale)
	}
	return nil
}

// loadAll generates every paper dataset at the configured scale.
func loadAll(o Options) ([]datasetPair, error) {
	var out []datasetPair
	for _, spec := range dataset.PaperSpecs(o.Scale, o.Seed) {
		train, test, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		dataset.NormalizePair(train, test)
		out = append(out, datasetPair{Name: spec.Name, Train: train, Test: test})
	}
	return out, nil
}

// loadOne generates a single named dataset.
func loadOne(o Options, name string) (datasetPair, error) {
	train, test, err := dataset.Load(name, o.Scale, o.Seed)
	if err != nil {
		return datasetPair{}, err
	}
	return datasetPair{Name: name, Train: train, Test: test}, nil
}

// datasetPair bundles the two splits of one task.
type datasetPair struct {
	Name        string
	Train, Test *dataset.Dataset
}

// timeIt returns f's wall-clock duration in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// table is a minimal aligned-text table writer shared by all renderers.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// pct formats a fraction as a percentage with 2 decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// secs formats a duration in seconds with adaptive precision.
func secs(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0fs", v)
	case v >= 1:
		return fmt.Sprintf("%.2fs", v)
	default:
		return fmt.Sprintf("%.4fs", v)
	}
}

// geoMeanRatio returns the geometric mean of b[i]/a[i]; used for the
// paper's "X× faster" style aggregate claims.
func geoMeanRatio(num, den []float64) float64 {
	if len(num) != len(den) || len(num) == 0 {
		return 0
	}
	prod := 1.0
	n := 0
	for i := range num {
		if den[i] <= 0 || num[i] <= 0 {
			continue
		}
		prod *= num[i] / den[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// ExperimentIDs lists every runnable experiment in presentation order.
func ExperimentIDs() []string {
	return []string{
		"table1", "fig2a", "fig2b", "fig4", "fig5", "fig6", "fig7", "fig8",
		"ablA2", "ablEnc", "ablReg", "edgecost", "fig4stats", "gridsearch",
		"hdtrainers", "headline", "inputnoise",
	}
}
