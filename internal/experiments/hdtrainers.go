package experiments

import (
	"fmt"
	"io"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// HDTrainersResult is an extension experiment comparing the three HDC
// training rules on the same static encoder: one-shot bundling (the
// original Rahimi-style training), the paper's error-driven adaptive rule
// (Algorithm 1), and an OnlineHD-style single-pass + refinement. It
// isolates the *trainer* contribution from the *dynamic encoder*
// contribution that fig4/fig7 measure.
type HDTrainersResult struct {
	Datasets                   []string
	Bundling, Adaptive, Online []float64
}

// RunHDTrainers evaluates all three rules at the compressed D.
func RunHDTrainers(o Options) (*HDTrainersResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pairs, err := loadAll(o)
	if err != nil {
		return nil, err
	}
	lowD, _ := comparisonDims(o)
	epochs := hdcIterations(o)
	res := &HDTrainersResult{}

	for _, p := range pairs {
		res.Datasets = append(res.Datasets, p.Name)
		enc := encoding.NewRBF(p.Train.Features(), lowD, o.Seed^0x7ea1)
		Htrain := enc.EncodeBatch(p.Train.X)
		Htest := enc.EncodeBatch(p.Test.X)

		// 1. one-shot bundling
		bundle := model.New(p.Train.Classes, lowD)
		for i := 0; i < Htrain.Rows; i++ {
			mat.Axpy(bundle.Weights.Row(p.Train.Y[i]), 1, Htrain.Row(i))
		}
		bundle.RefreshNorms()
		res.Bundling = append(res.Bundling, model.Accuracy(bundle, Htest, p.Test.Y))

		// 2. error-driven adaptive (Algorithm 1)
		adaptive := model.New(p.Train.Classes, lowD)
		if _, err := model.Fit(adaptive, Htrain, p.Train.Y, model.TrainConfig{
			LearningRate: 0.05, Epochs: epochs, Seed: o.Seed,
		}); err != nil {
			return nil, err
		}
		res.Adaptive = append(res.Adaptive, model.Accuracy(adaptive, Htest, p.Test.Y))

		// 3. OnlineHD-style
		online := model.New(p.Train.Classes, lowD)
		if _, err := model.FitOnline(online, Htrain, p.Train.Y, model.TrainConfig{
			LearningRate: 0.05, Epochs: epochs, Seed: o.Seed,
		}); err != nil {
			return nil, err
		}
		res.Online = append(res.Online, model.Accuracy(online, Htest, p.Test.Y))
	}
	return res, nil
}

// Render prints the trainer comparison.
func (r *HDTrainersResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "HDC trainer extension: bundling vs adaptive (Algorithm 1) vs OnlineHD-style, same static RBF encoder"); err != nil {
		return err
	}
	t := newTable("Dataset", "Bundling", "Adaptive", "OnlineHD-style")
	var sb, sa, so float64
	for i, ds := range r.Datasets {
		t.addf("%s\t%s\t%s\t%s", ds, pct(r.Bundling[i]), pct(r.Adaptive[i]), pct(r.Online[i]))
		sb += r.Bundling[i]
		sa += r.Adaptive[i]
		so += r.Online[i]
	}
	n := float64(len(r.Datasets))
	t.addf("Mean\t%s\t%s\t%s", pct(sb/n), pct(sa/n), pct(so/n))
	return t.render(w)
}
