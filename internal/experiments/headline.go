package experiments

import (
	"fmt"
	"io"
)

// HeadlineResult aggregates the five numbers the paper's abstract claims,
// computed from this repository's runs: accuracy gain over SOTA HDC,
// dimensionality reduction, training and inference speedups, and the
// robustness ratio over the DNN.
type HeadlineResult struct {
	// AccGainVsHDC is DistHD(lowD) minus the best SOTA-HDC mean accuracy
	// (max of baselineHD at either D and NeuralHD). Paper: +2.12%.
	AccGainVsHDC float64
	// DimReduction is highD/lowD when DistHD(lowD) matches or beats
	// baselineHD(highD); 1.0 otherwise. Paper: 8.0×.
	DimReduction float64
	// TrainSpeedupVsDNN is the geometric-mean training-time ratio.
	// Paper: 5.97×.
	TrainSpeedupVsDNN float64
	// InferSpeedupVsHDC is the geometric-mean inference-latency ratio vs
	// baselineHD at high D*. Paper: 8.09×.
	InferSpeedupVsHDC float64
	// RobustnessVsDNN is DNN quality loss over DistHD 1-bit max-D loss at
	// 10% bit flips. Paper: 12.90×.
	RobustnessVsDNN float64
	// Sources preserved for rendering context.
	Comparison *ComparisonResult
	Robustness *Fig8Result
}

// RunHeadline computes the abstract-level claims from a fresh comparison
// run and robustness table.
func RunHeadline(o Options) (*HeadlineResult, error) {
	cmp, err := RunComparison(o)
	if err != nil {
		return nil, err
	}
	rob, err := RunFig8(o)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{Comparison: cmp, Robustness: rob}

	dist := cmp.MeanAccuracy(cmp.Learners[5])
	bestHDC := cmp.MeanAccuracy(cmp.Learners[2])
	for _, l := range []string{cmp.Learners[3], cmp.Learners[4]} {
		if a := cmp.MeanAccuracy(l); a > bestHDC {
			bestHDC = a
		}
	}
	res.AccGainVsHDC = dist - bestHDC

	lowD, highD := comparisonDims(o)
	if dist >= cmp.MeanAccuracy(cmp.Learners[3]) {
		res.DimReduction = float64(highD) / float64(lowD)
	} else {
		res.DimReduction = 1
	}
	res.TrainSpeedupVsDNN = cmp.speedup(cmp.Learners[0], cmp.Learners[5], false)
	res.InferSpeedupVsHDC = cmp.speedup(cmp.Learners[3], cmp.Learners[5], true)

	// Robustness at the 10% flip column (index 3).
	const tenPct = 3
	if len(rob.DNN) > tenPct {
		dnnLoss := rob.DNN[tenPct]
		distLoss := rob.DistHD[0][len(rob.Dims)-1][tenPct]
		if distLoss > 0 {
			res.RobustnessVsDNN = dnnLoss / distLoss
		}
	}
	return res, nil
}

// Render prints the measured headline numbers next to the paper's.
func (r *HeadlineResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Headline claims: paper (abstract) vs this reproduction"); err != nil {
		return err
	}
	t := newTable("Claim", "Paper", "Measured")
	t.addf("accuracy vs SOTA HDC\t+2.12%%\t%+.2f%%", 100*r.AccGainVsHDC)
	t.addf("dimensionality reduction\t8.0x\t%.1fx", r.DimReduction)
	t.addf("training speedup vs DNN\t5.97x\t%.2fx", r.TrainSpeedupVsDNN)
	t.addf("inference speedup vs SOTA HDC\t8.09x\t%.2fx", r.InferSpeedupVsHDC)
	if r.RobustnessVsDNN > 0 {
		t.addf("robustness vs DNN (10%% flips)\t12.90x\t%.2fx", r.RobustnessVsDNN)
	} else {
		t.addf("robustness vs DNN (10%% flips)\t12.90x\tno measurable DistHD loss")
	}
	return t.render(w)
}
