package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// Table1Row describes one dataset (paper Table I).
type Table1Row struct {
	Name        string
	Features    int
	Classes     int
	TrainSize   int
	TestSize    int
	Description string
}

// Table1Result reproduces Table I at the configured scale.
type Table1Result struct {
	Rows []Table1Row
}

var table1Descriptions = map[string]string{
	"MNIST":    "Handwritten Recognition (synthetic stand-in)",
	"UCIHAR":   "Mobile Activity Recognition (synthetic stand-in)",
	"ISOLET":   "Voice Recognition (synthetic stand-in)",
	"PAMAP2":   "Activity Recognition / IMU (synthetic stand-in)",
	"DIABETES": "Outcomes of Diabetic Patients (synthetic stand-in)",
}

// RunTable1 generates every dataset and reports its shape.
func RunTable1(o Options) (*Table1Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for _, spec := range dataset.PaperSpecs(o.Scale, o.Seed) {
		train, test, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Name:        spec.Name,
			Features:    spec.Features,
			Classes:     spec.Classes,
			TrainSize:   train.N(),
			TestSize:    test.N(),
			Description: table1Descriptions[spec.Name],
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "TABLE I: DATASETS (n: number of features, k: number of classes)"); err != nil {
		return err
	}
	t := newTable("Dataset", "n", "k", "Train", "Test", "Description")
	for _, row := range r.Rows {
		t.addf("%s\t%d\t%d\t%d\t%d\t%s",
			row.Name, row.Features, row.Classes, row.TrainSize, row.TestSize, row.Description)
	}
	return t.render(w)
}
