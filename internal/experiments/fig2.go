package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselinehd"
	"repro/internal/encoding"
	"repro/internal/model"
)

// Fig2aResult backs Fig. 2(a): a static-encoder HDC needs very high
// dimensionality to approach DNN accuracy, and its accuracy climbs slowly
// with training iterations.
type Fig2aResult struct {
	Dataset string
	// DimSweep maps swept dimensionality to static-HDC test accuracy.
	Dims    []int
	DimAccs []float64
	// Iters lists the swept training-iteration budgets; IterAccs[i] is
	// static-HDC test accuracy with budget Iters[i] at the lowest swept
	// dimensionality.
	Iters    []int
	IterAccs []float64
	// DNN reference point.
	DNNAcc       float64
	DNNTrainSecs float64
}

// RunFig2a reproduces the motivation experiment on the UCIHAR stand-in.
func RunFig2a(o Options) (*Fig2aResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "UCIHAR")
	if err != nil {
		return nil, err
	}
	res := &Fig2aResult{Dataset: p.Name}
	if o.Quick {
		res.Dims = []int{128, 256, 512}
	} else {
		res.Dims = []int{512, 1024, 2048, 4096, 6144}
	}

	for _, d := range res.Dims {
		clf, err := baselinehd.Train(p.Train.X, p.Train.Y, p.Train.Classes,
			baselinehd.Config{Dim: d, Epochs: hdcIterations(o), Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		res.DimAccs = append(res.DimAccs, clf.Accuracy(p.Test.X, p.Test.Y))
	}

	// Accuracy vs iterations at the smallest dimensionality: retrain with
	// increasing epoch budgets. (baselineHD trains destructively, so each
	// budget is a fresh run; runs share the deterministic seed.)
	res.Iters = []int{1, 2, 5, 10, 20, 30, 40, 50}
	if o.Quick {
		res.Iters = []int{1, 2, 4, 8}
	}
	for _, it := range res.Iters {
		clf, err := baselinehd.Train(p.Train.X, p.Train.Y, p.Train.Classes,
			baselinehd.Config{Dim: res.Dims[0], Epochs: it, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		res.IterAccs = append(res.IterAccs, clf.Accuracy(p.Test.X, p.Test.Y))
	}

	dnn := newDNN(o)
	res.DNNTrainSecs = timeIt(func() { err = dnn.Train(p.Train) })
	if err != nil {
		return nil, err
	}
	pred := dnn.Predict(p.Test.X)
	correct := 0
	for i, pr := range pred {
		if pr == p.Test.Y[i] {
			correct++
		}
	}
	res.DNNAcc = float64(correct) / float64(len(pred))
	return res, nil
}

// Render prints both panels of Fig. 2(a).
func (r *Fig2aResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 2(a): static-encoder HDC vs DNN on %s\n", r.Dataset); err != nil {
		return err
	}
	t := newTable("Dimensions", "Static-HDC accuracy")
	for i, d := range r.Dims {
		t.addf("%s\t%s", dimLabel(d), pct(r.DimAccs[i]))
	}
	if err := t.render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "DNN reference: %s accuracy, trained in %s\n\n",
		pct(r.DNNAcc), secs(r.DNNTrainSecs)); err != nil {
		return err
	}
	t2 := newTable("Iteration budget", "Static-HDC accuracy (lowest D)")
	for i, acc := range r.IterAccs {
		t2.addf("%d\t%s", r.Iters[i], pct(acc))
	}
	return t2.render(w)
}

// Fig2bResult backs Fig. 2(b): top-2 accuracy of a static HDC classifier is
// far above top-1, and top-3 adds little over top-2 — the observation that
// motivates DistHD's top-2 classification.
type Fig2bResult struct {
	Dataset string
	// Iterations[i] labels row i; TopK[k-1][i] is top-k accuracy there.
	Iterations       []int
	Top1, Top2, Top3 []float64
}

// RunFig2b trains the adaptive HDC model at low dimensionality and records
// top-1/2/3 accuracy as training progresses.
func RunFig2b(o Options) (*Fig2bResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, err := loadOne(o, "ISOLET")
	if err != nil {
		return nil, err
	}
	d := 512
	checkpoints := []int{1, 2, 5, 10, 20, 30, 40, 50}
	if o.Quick {
		d = 128
		checkpoints = []int{1, 2, 4, 8}
	}

	enc := encoding.NewRBF(p.Train.Features(), d, o.Seed^0x2b)
	Htrain := enc.EncodeBatch(p.Train.X)
	Htest := enc.EncodeBatch(p.Test.X)
	m := model.New(p.Train.Classes, d)

	res := &Fig2bResult{Dataset: p.Name, Iterations: checkpoints}
	done := 0
	for _, cp := range checkpoints {
		// Continue training from the previous checkpoint.
		cfg := model.TrainConfig{
			LearningRate: 0.05,
			Epochs:       cp - done,
			Seed:         o.Seed ^ uint64(cp),
		}
		if cfg.Epochs > 0 {
			if _, err := model.Fit(m, Htrain, p.Train.Y, cfg); err != nil {
				return nil, err
			}
			done = cp
		}
		res.Top1 = append(res.Top1, model.TopKAccuracy(m, Htest, p.Test.Y, 1))
		res.Top2 = append(res.Top2, model.TopKAccuracy(m, Htest, p.Test.Y, 2))
		res.Top3 = append(res.Top3, model.TopKAccuracy(m, Htest, p.Test.Y, 3))
	}
	return res, nil
}

// Render prints the top-k accuracy trajectories.
func (r *Fig2bResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 2(b): top-1/2/3 accuracy of static-encoder HDC on %s\n", r.Dataset); err != nil {
		return err
	}
	t := newTable("Iterations", "Top-1", "Top-2", "Top-3")
	for i, it := range r.Iterations {
		t.addf("%d\t%s\t%s\t%s", it, pct(r.Top1[i]), pct(r.Top2[i]), pct(r.Top3[i]))
	}
	if err := t.render(w); err != nil {
		return err
	}
	last := len(r.Iterations) - 1
	_, err := fmt.Fprintf(w, "final gaps: top-2 - top-1 = %+.2f%%, top-3 - top-2 = %+.2f%%\n",
		100*(r.Top2[last]-r.Top1[last]), 100*(r.Top3[last]-r.Top2[last]))
	return err
}
