package experiments

import (
	"fmt"
	"io"

	"repro/internal/cost"
	"repro/internal/dataset"
)

// EdgeCostResult is an extension experiment (not a paper artifact): the
// analytical per-inference cost of each learner configuration from the
// Fig. 4/5 comparison, using the first-order edge-hardware model of
// internal/cost. It quantifies the §I motivation — why an 8× dimension
// reduction matters on a power-limited device.
type EdgeCostResult struct {
	Dataset  string
	Profiles []cost.Profile
}

// RunEdgeCost profiles the comparison configurations on the UCIHAR shapes.
func RunEdgeCost(o Options) (*EdgeCostResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	spec, err := dataset.SpecByName("UCIHAR", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	q, k := spec.Features, spec.Classes
	lowD, highD := comparisonDims(o)

	dnn, err := cost.MLP("DNN (128 hidden)", []int{q, 128, k})
	if err != nil {
		return nil, err
	}
	res := &EdgeCostResult{
		Dataset: spec.Name,
		Profiles: []cost.Profile{
			dnn,
			cost.SVMRFF("SVM (RFF 1024)", q, 1024, k),
			cost.HDCFloat(fmt.Sprintf("BaselineHD float (D=%s)", dimLabel(highD)), q, highD, k),
			cost.HDCFloat(fmt.Sprintf("DistHD float (D=%s)", dimLabel(lowD)), q, lowD, k),
			cost.HDCBinary(fmt.Sprintf("DistHD 1-bit (D=%s)", dimLabel(lowD)), q, lowD, k),
			cost.HDCBinary(fmt.Sprintf("DistHD 1-bit (D=%s)", dimLabel(highD)), q, highD, k),
		},
	}
	return res, nil
}

// Render prints the cost table.
func (r *EdgeCostResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Edge-cost extension: analytical per-inference cost on %s shapes (45nm first-order model)\n", r.Dataset); err != nil {
		return err
	}
	t := newTable("Configuration", "MACs", "BitOps", "Model KiB", "On-chip", "Energy/inf")
	for _, p := range r.Profiles {
		fits := "DRAM"
		if p.FitsSRAM {
			fits = "SRAM"
		}
		t.addf("%s\t%d\t%d\t%.1f\t%s\t%.2f uJ",
			p.Name, p.MACs, p.BitOps, float64(p.ModelBytes)/1024, fits, p.EnergyUJ())
	}
	if err := t.render(w); err != nil {
		return err
	}
	// headline ratio: float low-D vs float high-D energy
	lo := r.Profiles[3].EnergyPJ
	hi := r.Profiles[2].EnergyPJ
	if lo > 0 {
		_, err := fmt.Fprintf(w, "dimension reduction pays %.1fx lower inference energy (float, low vs high D)\n", hi/lo)
		return err
	}
	return nil
}
