package experiments

import (
	"fmt"

	"repro/internal/baselinehd"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/mlp"
	"repro/internal/neuralhd"
	"repro/internal/svm"
)

// Learner is the uniform face every comparator presents to the harness:
// train on one dataset, then classify batches. Implementations time their
// own phases through the harness, not internally.
type Learner interface {
	// Name is the display label used in tables ("DistHD (D=0.5k)").
	Name() string
	// Train fits the learner on the training split.
	Train(train *dataset.Dataset) error
	// Predict classifies every row of X.
	Predict(X *mat.Dense) []int
}

// dims used by the headline comparison. Quick mode shrinks everything.
func comparisonDims(o Options) (lowD, highD int) {
	if o.Quick {
		return 64, 512
	}
	return 512, 4096
}

func hdcIterations(o Options) int {
	if o.Quick {
		return 8
	}
	return 20
}

// --- DistHD ---

type distHDLearner struct {
	name string
	cfg  core.Config
	seed uint64
	clf  *core.Classifier
	// Stats from the last Train call, for convergence reporting.
	Stats *core.TrainStats
}

func newDistHD(o Options, d int) *distHDLearner {
	cfg := core.DefaultConfig()
	cfg.Dim = d
	cfg.Iterations = hdcIterations(o)
	cfg.Seed = o.Seed
	return &distHDLearner{
		name: fmt.Sprintf("DistHD (D=%s)", dimLabel(d)),
		cfg:  cfg,
		seed: o.Seed,
	}
}

func (l *distHDLearner) Name() string { return l.name }

func (l *distHDLearner) Train(train *dataset.Dataset) error {
	enc := encoding.NewRBF(train.Features(), l.cfg.Dim, l.seed^0xd15c)
	clf, stats, err := core.Train(enc, train.X, train.Y, train.Classes, l.cfg)
	if err != nil {
		return err
	}
	l.clf = clf
	l.Stats = stats
	return nil
}

func (l *distHDLearner) Predict(X *mat.Dense) []int { return l.clf.PredictBatch(X) }

// --- NeuralHD ---

type neuralHDLearner struct {
	name string
	cfg  neuralhd.Config
	seed uint64
	clf  *neuralhd.Classifier
	// Stats from the last Train call.
	Stats *neuralhd.Stats
}

func newNeuralHD(o Options, d int) *neuralHDLearner {
	cfg := neuralhd.DefaultConfig()
	cfg.Dim = d
	cfg.Iterations = hdcIterations(o)
	cfg.Seed = o.Seed
	return &neuralHDLearner{
		name: fmt.Sprintf("NeuralHD (D=%s)", dimLabel(d)),
		cfg:  cfg,
		seed: o.Seed,
	}
}

func (l *neuralHDLearner) Name() string { return l.name }

func (l *neuralHDLearner) Train(train *dataset.Dataset) error {
	enc := encoding.NewRBF(train.Features(), l.cfg.Dim, l.seed^0x4e4e)
	clf, stats, err := neuralhd.Train(enc, train.X, train.Y, train.Classes, l.cfg)
	if err != nil {
		return err
	}
	l.clf = clf
	l.Stats = stats
	return nil
}

func (l *neuralHDLearner) Predict(X *mat.Dense) []int { return l.clf.PredictBatch(X) }

// --- baselineHD ---

type baselineHDLearner struct {
	name string
	cfg  baselinehd.Config
	clf  *baselinehd.Classifier
}

func newBaselineHD(o Options, d int) *baselineHDLearner {
	return &baselineHDLearner{
		name: fmt.Sprintf("BaselineHD (D=%s)", dimLabel(d)),
		cfg:  baselinehd.Config{Dim: d, Epochs: hdcIterations(o), Seed: o.Seed},
	}
}

func (l *baselineHDLearner) Name() string { return l.name }

func (l *baselineHDLearner) Train(train *dataset.Dataset) error {
	clf, err := baselinehd.Train(train.X, train.Y, train.Classes, l.cfg)
	if err != nil {
		return err
	}
	l.clf = clf
	return nil
}

func (l *baselineHDLearner) Predict(X *mat.Dense) []int { return l.clf.PredictBatch(X) }

// --- DNN (MLP) ---

type dnnLearner struct {
	cfg mlp.Config
	net *mlp.Network
}

func newDNN(o Options) *dnnLearner {
	cfg := mlp.DefaultConfig()
	cfg.Seed = o.Seed
	if o.Quick {
		cfg.Hidden = []int{32}
		cfg.Epochs = 5
	}
	return &dnnLearner{cfg: cfg}
}

func (l *dnnLearner) Name() string { return "DNN" }

func (l *dnnLearner) Train(train *dataset.Dataset) error {
	net, err := mlp.New(train.Features(), train.Classes, l.cfg)
	if err != nil {
		return err
	}
	if _, err := net.Fit(train.X, train.Y); err != nil {
		return err
	}
	l.net = net
	return nil
}

func (l *dnnLearner) Predict(X *mat.Dense) []int { return l.net.PredictBatch(X) }

// --- SVM ---

type svmLearner struct {
	cfg svm.Config
	m   *svm.Machine
}

func newSVM(o Options) *svmLearner {
	cfg := svm.DefaultConfig()
	cfg.Seed = o.Seed
	if o.Quick {
		cfg.RFFDim = 128
		cfg.Epochs = 5
	}
	return &svmLearner{cfg: cfg}
}

func (l *svmLearner) Name() string { return "SVM" }

func (l *svmLearner) Train(train *dataset.Dataset) error {
	m, err := svm.Train(train.X, train.Y, train.Classes, l.cfg)
	if err != nil {
		return err
	}
	l.m = m
	return nil
}

func (l *svmLearner) Predict(X *mat.Dense) []int { return l.m.PredictBatch(X) }

// dimLabel renders a dimensionality the way the paper does (0.5k, 4k),
// treating powers of two as their "k" approximations (512 → 0.5k).
func dimLabel(d int) string {
	switch {
	case d == 512:
		return "0.5k"
	case d >= 1024 && d%1024 == 0:
		return fmt.Sprintf("%dk", d/1024)
	case d >= 1000 && d%1000 == 0:
		return fmt.Sprintf("%dk", d/1000)
	default:
		return fmt.Sprintf("%d", d)
	}
}
