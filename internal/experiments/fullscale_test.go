package experiments

import (
	"os"
	"testing"
)

// TestFullScaleShapes asserts the paper's qualitative orderings at the
// EXPERIMENTS.md scale. It takes several minutes on one core, so it only
// runs when HD_FULL=1 is set:
//
//	HD_FULL=1 go test ./internal/experiments -run TestFullScaleShapes -timeout 60m
func TestFullScaleShapes(t *testing.T) {
	if os.Getenv("HD_FULL") != "1" {
		t.Skip("set HD_FULL=1 to run the full-scale shape assertions")
	}
	o := DefaultOptions()
	res, err := RunComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Learners {
		t.Logf("%-22s mean acc %.4f", l, res.MeanAccuracy(l))
	}
	dist := res.MeanAccuracy(res.Learners[5])
	baseLow := res.MeanAccuracy(res.Learners[2])
	baseHigh := res.MeanAccuracy(res.Learners[3])
	neural := res.MeanAccuracy(res.Learners[4])

	// Fig. 4 shapes: DistHD(0.5k) beats baselineHD(0.5k) decisively and
	// reaches baselineHD(4k)-level accuracy — the 8× dimension reduction.
	if dist <= baseLow {
		t.Errorf("DistHD (%.4f) did not beat baselineHD at equal D (%.4f)", dist, baseLow)
	}
	if dist < baseHigh-0.02 {
		t.Errorf("DistHD at 0.5k (%.4f) fell short of baselineHD at 4k (%.4f)", dist, baseHigh)
	}
	// DistHD and NeuralHD should be comparable (paper: +1.88% for DistHD;
	// our reproduction measures them within ~2% — see EXPERIMENTS.md).
	if dist < neural-0.04 {
		t.Errorf("DistHD (%.4f) fell more than 4%% below NeuralHD (%.4f)", dist, neural)
	}

	// Fig. 5 shape: DistHD trains faster than the DNN and infers faster
	// than baselineHD at its high effective dimensionality.
	if s := res.speedup(res.Learners[0], res.Learners[5], false); s < 1 {
		t.Errorf("DistHD training speedup vs DNN = %.2fx, want > 1", s)
	}
	if s := res.speedup(res.Learners[3], res.Learners[5], true); s < 1 {
		t.Errorf("DistHD inference speedup vs baselineHD(4k) = %.2fx, want > 1", s)
	}
}
