package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/mlp"
	"repro/internal/svm"
	"repro/internal/tune"
)

// GridSearchResult reproduces the paper's comparator-tuning protocol
// ("we utilize the common practice of grid search to identify the best
// hyper-parameters for each model", §IV-B): the DNN and SVM are tuned per
// dataset on a validation split carved from the training set, and the
// tuned accuracy is reported next to the default-config accuracy.
type GridSearchResult struct {
	Datasets []string
	// Default vs tuned test accuracies per learner.
	DNNDefault, DNNTuned []float64
	SVMDefault, SVMTuned []float64
	// BestPoints records the winning hyperparameters per dataset.
	DNNBest, SVMBest []tune.Point
}

// RunGridSearch tunes both comparators on every dataset.
func RunGridSearch(o Options) (*GridSearchResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pairs, err := loadAll(o)
	if err != nil {
		return nil, err
	}
	res := &GridSearchResult{}

	dnnAxes := []tune.Axis{
		{Name: "hidden", Values: []float64{64, 128, 256}},
		{Name: "lr", Values: []float64{0.01, 0.05, 0.1}},
	}
	svmAxes := []tune.Axis{
		{Name: "lambda", Values: []float64{1e-5, 1e-4, 1e-3}},
		{Name: "gamma", Values: []float64{0, 0.5, 2}}, // 0 = 1/q default; others scale it
	}
	if o.Quick {
		dnnAxes = []tune.Axis{
			{Name: "hidden", Values: []float64{32, 64}},
			{Name: "lr", Values: []float64{0.05}},
		}
		svmAxes = []tune.Axis{
			{Name: "lambda", Values: []float64{1e-4, 1e-3}},
			{Name: "gamma", Values: []float64{0}},
		}
	}

	for _, p := range pairs {
		res.Datasets = append(res.Datasets, p.Name)
		// Carve a validation split from the training set (80/20).
		subTrain, valid := p.Train.Split(0.8, o.Seed^0x6e1d)

		// --- DNN ---
		dnnEpochs := 30
		if o.Quick {
			dnnEpochs = 5
		}
		trainDNN := func(tr *dataset.Dataset, hidden int, lr float64) (*mlp.Network, error) {
			cfg := mlp.DefaultConfig()
			cfg.Hidden = []int{hidden}
			cfg.LearningRate = lr
			cfg.Epochs = dnnEpochs
			cfg.Seed = o.Seed
			net, err := mlp.New(tr.Features(), tr.Classes, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := net.Fit(tr.X, tr.Y); err != nil {
				return nil, err
			}
			return net, nil
		}
		dnnSearch, err := tune.Search(dnnAxes, func(pt tune.Point) (float64, error) {
			net, err := trainDNN(subTrain, int(pt["hidden"]), pt["lr"])
			if err != nil {
				return 0, err
			}
			return net.Accuracy(valid.X, valid.Y), nil
		})
		if err != nil {
			return nil, err
		}
		res.DNNBest = append(res.DNNBest, dnnSearch.Best)
		// Default and tuned, both retrained on the full training set.
		defNet, err := trainDNN(p.Train, 128, 0.05)
		if err != nil {
			return nil, err
		}
		res.DNNDefault = append(res.DNNDefault, defNet.Accuracy(p.Test.X, p.Test.Y))
		tunedNet, err := trainDNN(p.Train, int(dnnSearch.Best["hidden"]), dnnSearch.Best["lr"])
		if err != nil {
			return nil, err
		}
		res.DNNTuned = append(res.DNNTuned, tunedNet.Accuracy(p.Test.X, p.Test.Y))

		// --- SVM ---
		svmEpochs := 30
		rff := 1024
		if o.Quick {
			svmEpochs = 5
			rff = 128
		}
		trainSVM := func(tr *dataset.Dataset, lambda, gammaScale float64) (*svm.Machine, error) {
			cfg := svm.Config{Lambda: lambda, Epochs: svmEpochs, RFFDim: rff, Seed: o.Seed}
			if gammaScale > 0 {
				cfg.Gamma = gammaScale / float64(tr.Features())
			}
			return svm.Train(tr.X, tr.Y, tr.Classes, cfg)
		}
		svmSearch, err := tune.Search(svmAxes, func(pt tune.Point) (float64, error) {
			m, err := trainSVM(subTrain, pt["lambda"], pt["gamma"])
			if err != nil {
				return 0, err
			}
			return m.Accuracy(valid.X, valid.Y), nil
		})
		if err != nil {
			return nil, err
		}
		res.SVMBest = append(res.SVMBest, svmSearch.Best)
		defSVM, err := trainSVM(p.Train, 1e-4, 0)
		if err != nil {
			return nil, err
		}
		res.SVMDefault = append(res.SVMDefault, defSVM.Accuracy(p.Test.X, p.Test.Y))
		tunedSVM, err := trainSVM(p.Train, svmSearch.Best["lambda"], svmSearch.Best["gamma"])
		if err != nil {
			return nil, err
		}
		res.SVMTuned = append(res.SVMTuned, tunedSVM.Accuracy(p.Test.X, p.Test.Y))
	}
	return res, nil
}

// Render prints default-vs-tuned accuracies and the winning points.
func (r *GridSearchResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Comparator grid search (paper §IV-B protocol): default vs tuned test accuracy"); err != nil {
		return err
	}
	t := newTable("Dataset", "DNN default", "DNN tuned", "best (hidden, lr)", "SVM default", "SVM tuned", "best (lambda, gamma)")
	for i, ds := range r.Datasets {
		t.addf("%s\t%s\t%s\t(%.0f, %.2g)\t%s\t%s\t(%.0e, %.2g)",
			ds,
			pct(r.DNNDefault[i]), pct(r.DNNTuned[i]),
			r.DNNBest[i]["hidden"], r.DNNBest[i]["lr"],
			pct(r.SVMDefault[i]), pct(r.SVMTuned[i]),
			r.SVMBest[i]["lambda"], r.SVMBest[i]["gamma"])
	}
	return t.render(w)
}
