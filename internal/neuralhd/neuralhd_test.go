package neuralhd

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/model"
)

func toyData(t testing.TB, seed uint64) (train, test *dataset.Dataset) {
	t.Helper()
	spec := &dataset.Spec{
		Name: "toy", Features: 16, Classes: 4,
		Train: 400, Test: 150,
		Subclusters: 2, LatentDim: 5,
		CenterStd: 1.0, IntraStd: 0.4, Warp: 0.9, NoiseStd: 0.12,
		Seed: seed,
	}
	train, test, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dataset.NormalizePair(train, test)
	return train, test
}

func TestTrainLearns(t *testing.T) {
	train, test := toyData(t, 1)
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 10
	enc := encoding.NewRBF(train.Features(), cfg.Dim, 7)
	clf, stats, err := Train(enc, train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := clf.Accuracy(test.X, test.Y); acc < 0.75 {
		t.Fatalf("NeuralHD accuracy %.3f too low", acc)
	}
	if stats.TotalRegenerated == 0 {
		t.Fatal("NeuralHD never regenerated")
	}
	if len(stats.TrainAccPerIter) != cfg.Iterations {
		t.Fatalf("expected %d iteration records, got %d", cfg.Iterations, len(stats.TrainAccPerIter))
	}
}

func TestSaliencyScores(t *testing.T) {
	m := model.New(3, 4)
	// dim 0: identical weights across classes -> zero variance.
	// dim 2: strongly class-dependent -> high variance.
	for c := 0; c < 3; c++ {
		m.Weights.Set(c, 0, 1)
		m.Weights.Set(c, 1, 0.1*float64(c))
		m.Weights.Set(c, 2, float64(2*c-2)) // -2, 0, 2
		m.Weights.Set(c, 3, 0.5)
	}
	m.RefreshNorms()
	s := SaliencyScores(m)
	if len(s) != 4 {
		t.Fatalf("saliency length %d", len(s))
	}
	if s[2] <= s[0] {
		t.Fatalf("discriminative dim should outscore constant dim: %v", s)
	}
}

func TestLeastSalientSelectsLowVariance(t *testing.T) {
	m := model.New(2, 6)
	for c := 0; c < 2; c++ {
		for d := 0; d < 6; d++ {
			// dims 0..2 constant across classes, dims 3..5 class-dependent
			if d < 3 {
				m.Weights.Set(c, d, 1)
			} else {
				m.Weights.Set(c, d, float64(1-2*c))
			}
		}
	}
	m.RefreshNorms()
	dims := leastSalient(m, 3)
	for _, d := range dims {
		if d >= 3 {
			t.Fatalf("leastSalient picked discriminative dim %d: %v", d, dims)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	train, _ := toyData(t, 2)
	cfg := DefaultConfig()
	cfg.Dim = 64
	enc := encoding.NewRBF(train.Features(), 64, 1)
	if _, _, err := Train(enc, train.X, train.Y[:5], train.Classes, cfg); err == nil {
		t.Fatal("label mismatch accepted")
	}
	cfg2 := cfg
	cfg2.Dim = 128
	if _, _, err := Train(enc, train.X, train.Y, train.Classes, cfg2); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	bad := cfg
	bad.RegenRate = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("bad regen rate accepted")
	}
	bad2 := cfg
	bad2.LearningRate = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("bad lr accepted")
	}
	bad3 := cfg
	bad3.Iterations = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad4 := cfg
	bad4.EpochsPerIter = 0
	if err := bad4.Validate(); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	train, test := toyData(t, 3)
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 5
	run := func() []int {
		enc := encoding.NewRBF(train.Features(), cfg.Dim, 9)
		clf, _, err := Train(enc, train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return clf.PredictBatch(test.X)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("NeuralHD training not deterministic")
		}
	}
}

func TestPredictSingleMatchesBatch(t *testing.T) {
	train, test := toyData(t, 4)
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 4
	enc := encoding.NewRBF(train.Features(), cfg.Dim, 5)
	clf, _, err := Train(enc, train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := clf.PredictBatch(test.X)
	for i := 0; i < 10; i++ {
		if p := clf.Predict(test.X.Row(i)); p != batch[i] {
			t.Fatalf("row %d: single %d != batch %d", i, p, batch[i])
		}
	}
}

func TestZeroRegenRateIsStatic(t *testing.T) {
	train, test := toyData(t, 5)
	cfg := DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 6
	cfg.RegenRate = 0
	enc := encoding.NewRBF(train.Features(), cfg.Dim, 11)
	clf, stats, err := Train(enc, train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRegenerated != 0 {
		t.Fatal("zero regen rate still regenerated")
	}
	if acc := clf.Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("static fallback accuracy %.3f too low", acc)
	}
	// nothing else to assert: the static fallback simply must learn
}
