// Package neuralhd implements NeuralHD (Zou et al., SC'21, the paper's
// ref [7]), the dynamic-encoding baseline DistHD is compared against in
// Figs. 4, 5 and 7. NeuralHD shares DistHD's regenerable encoder and
// adaptive trainer but selects dimensions to regenerate by *model-side
// saliency* instead of learner-aware distance matrices: a dimension whose
// (normalized) class weights are nearly identical across classes carries
// no discriminative information, and is dropped and redrawn.
package neuralhd

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// Config holds NeuralHD hyperparameters.
type Config struct {
	// Dim is the physical hypervector dimensionality D.
	Dim int
	// LearningRate is η for the shared adaptive trainer.
	LearningRate float64
	// RegenRate is the fraction of dimensions regenerated per iteration.
	RegenRate float64
	// Iterations is the number of train+regenerate rounds.
	Iterations int
	// EpochsPerIter is the number of adaptive passes between regenerations.
	EpochsPerIter int
	// Seed drives shuffling.
	Seed uint64
}

// DefaultConfig mirrors the DistHD defaults so comparisons are apples to
// apples (same D, η, R, iteration budget).
func DefaultConfig() Config {
	return Config{
		Dim:           512,
		LearningRate:  0.05,
		RegenRate:     0.10,
		Iterations:    20,
		EpochsPerIter: 1,
		Seed:          1,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("neuralhd: Dim must be positive, got %d", c.Dim)
	case c.LearningRate <= 0:
		return fmt.Errorf("neuralhd: LearningRate must be positive, got %v", c.LearningRate)
	case c.RegenRate < 0 || c.RegenRate > 1:
		return fmt.Errorf("neuralhd: RegenRate must be in [0,1], got %v", c.RegenRate)
	case c.Iterations <= 0:
		return fmt.Errorf("neuralhd: Iterations must be positive, got %d", c.Iterations)
	case c.EpochsPerIter <= 0:
		return fmt.Errorf("neuralhd: EpochsPerIter must be positive, got %d", c.EpochsPerIter)
	}
	return nil
}

// Classifier is a trained NeuralHD model.
type Classifier struct {
	Enc   encoding.Regenerable
	Model *model.Model
	Cfg   Config
}

// Stats summarizes a training run.
type Stats struct {
	// TrainAccPerIter is the training accuracy after each iteration.
	TrainAccPerIter []float64
	// TotalRegenerated counts regenerated dimensions with multiplicity.
	TotalRegenerated int
}

// SaliencyScores returns, per dimension, the variance of the normalized
// class weights across classes. Low variance = the dimension responds the
// same way for every class = no discriminative power.
func SaliencyScores(m *model.Model) []float64 {
	norm := m.Weights.Clone()
	norm.RowNormalizeL2()
	d := m.Dim()
	k := m.Classes()
	out := make([]float64, d)
	col := make([]float64, k)
	for j := 0; j < d; j++ {
		for c := 0; c < k; c++ {
			col[c] = norm.At(c, j)
		}
		out[j] = mat.Variance(col)
	}
	return out
}

// leastSalient returns the `budget` dimensions with the lowest saliency.
func leastSalient(m *model.Model, budget int) []int {
	scores := SaliencyScores(m)
	// ArgTopK selects the largest; negate to select the smallest.
	neg := make([]float64, len(scores))
	for i, v := range scores {
		neg[i] = -v
	}
	return mat.ArgTopK(neg, budget)
}

// Train runs the NeuralHD loop over raw features X: adaptive training, then
// regeneration of the least-salient dimensions each iteration.
func Train(enc encoding.Regenerable, X *mat.Dense, y []int, classes int, cfg Config) (*Classifier, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if X.Rows != len(y) {
		return nil, nil, fmt.Errorf("neuralhd: %d samples but %d labels", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return nil, nil, fmt.Errorf("neuralhd: empty training set")
	}
	if enc.Dim() != cfg.Dim {
		return nil, nil, fmt.Errorf("neuralhd: encoder dim %d != config dim %d", enc.Dim(), cfg.Dim)
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return nil, nil, fmt.Errorf("neuralhd: label %d at row %d outside [0,%d)", label, i, classes)
		}
	}

	m := model.New(classes, cfg.Dim)
	H := enc.EncodeBatch(X)
	stats := &Stats{}
	budget := int(cfg.RegenRate * float64(cfg.Dim))

	for iter := 0; iter < cfg.Iterations; iter++ {
		tc := model.TrainConfig{
			LearningRate: cfg.LearningRate,
			Epochs:       cfg.EpochsPerIter,
			Seed:         cfg.Seed ^ (uint64(iter)+1)*0x9e3779b97f4a7c15,
		}
		res, err := model.Fit(m, H, y, tc)
		if err != nil {
			return nil, nil, err
		}
		stats.TrainAccPerIter = append(stats.TrainAccPerIter, res.History[len(res.History)-1])

		if iter < cfg.Iterations-1 && budget > 0 {
			dims := leastSalient(m, budget)
			enc.Regenerate(dims)
			enc.EncodeDimsBatch(X, dims, H)
			m.ZeroDims(dims)
			warmStart(m, H, y, dims)
			stats.TotalRegenerated += len(dims)
		}
	}
	return &Classifier{Enc: enc, Model: m, Cfg: cfg}, stats, nil
}

// warmStart seeds regenerated dimensions with class-conditional means, the
// single-pass (re)training NeuralHD applies to fresh dimensions.
func warmStart(m *model.Model, H *mat.Dense, y []int, dims []int) {
	k := m.Classes()
	counts := make([]float64, k)
	for _, label := range y {
		counts[label]++
	}
	sums := mat.New(k, len(dims))
	for i := 0; i < H.Rows; i++ {
		row := H.Row(i)
		srow := sums.Row(y[i])
		for j, d := range dims {
			srow[j] += row[d]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		srow := sums.Row(c)
		wrow := m.Weights.Row(c)
		for j, d := range dims {
			wrow[d] = srow[j] / counts[c]
		}
	}
	m.RefreshNorms()
}

// Predict classifies a single raw feature vector.
func (c *Classifier) Predict(x []float64) int {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Predict(h)
}

// PredictBatch classifies every row of X.
func (c *Classifier) PredictBatch(X *mat.Dense) []int {
	return c.Model.PredictBatch(c.Enc.EncodeBatch(X))
}

// Accuracy returns accuracy over a labeled raw batch.
func (c *Classifier) Accuracy(X *mat.Dense, y []int) float64 {
	return model.Accuracy(c.Model, c.Enc.EncodeBatch(X), y)
}
