package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{0, 1, 1, 0}, []int{0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", acc)
	}
	if _, err := Accuracy([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestConfusion(t *testing.T) {
	conf, err := Confusion([]int{0, 1, 1, 2}, []int{0, 1, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if conf[0][0] != 1 || conf[1][1] != 1 || conf[2][1] != 1 || conf[2][2] != 1 {
		t.Fatalf("confusion = %v", conf)
	}
	if _, err := Confusion([]int{5}, []int{0}, 3); err == nil {
		t.Fatal("out-of-range prediction accepted")
	}
}

func TestSensitivitySpecificity(t *testing.T) {
	// class 0: TP=8, FN=2, FP=1, TN=9
	conf := [][]int{
		{8, 2},
		{1, 9},
	}
	sens, spec := SensitivitySpecificity(conf, 0)
	if math.Abs(sens-0.8) > 1e-12 {
		t.Fatalf("sensitivity = %v, want 0.8", sens)
	}
	if math.Abs(spec-0.9) > 1e-12 {
		t.Fatalf("specificity = %v, want 0.9", spec)
	}
	// degenerate: class with no samples
	conf2 := [][]int{{0, 0}, {0, 5}}
	s, _ := SensitivitySpecificity(conf2, 0)
	if s != 0 {
		t.Fatalf("empty-class sensitivity = %v, want 0", s)
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	pos := []bool{true, true, false, false}
	curve, auc, err := ROC(scores, pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve must end at (1,1), got %+v", last)
	}
}

func TestROCWorstClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	pos := []bool{true, true, false, false}
	_, auc, err := ROC(scores, pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc) > 1e-12 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	r := rng.New(1)
	const n = 4000
	scores := make([]float64, n)
	pos := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		pos[i] = r.Float64() < 0.5
	}
	_, auc, err := ROC(scores, pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCTieHandling(t *testing.T) {
	// every sample shares one score: AUC must be exactly 0.5
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	pos := []bool{true, false, true, false}
	curve, auc, err := ROC(scores, pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v, want exactly 0.5", auc)
	}
	// the tie group must move as one: curve has start + one point
	if len(curve) != 2 {
		t.Fatalf("tied curve has %d points, want 2", len(curve))
	}
}

func TestROCValidation(t *testing.T) {
	if _, _, err := ROC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("single-class input accepted")
	}
}

func TestMacroAUC(t *testing.T) {
	// 3 samples, 2 classes, perfectly separable
	scores := [][]float64{
		{0.9, 0.1},
		{0.8, 0.2},
		{0.1, 0.9},
	}
	y := []int{0, 0, 1}
	auc, err := MacroAUC(scores, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Fatalf("macro AUC = %v, want 1", auc)
	}
	// class absent from labels is skipped, not an error
	wide := [][]float64{
		{0.9, 0.1, 0},
		{0.8, 0.2, 0},
		{0.1, 0.9, 0},
	}
	if _, err := MacroAUC(wide, y, 3); err != nil {
		t.Fatal(err)
	}
	// score rows narrower than k must be rejected, not panic
	if _, err := MacroAUC(scores, y, 3); err == nil {
		t.Fatal("narrow score rows accepted")
	}
}

func TestQualityLoss(t *testing.T) {
	if QualityLoss(0.9, 0.8) != 0.1 && math.Abs(QualityLoss(0.9, 0.8)-0.1) > 1e-12 {
		t.Fatal("quality loss wrong")
	}
	if QualityLoss(0.8, 0.9) != 0 {
		t.Fatal("negative loss should clamp to 0")
	}
}

// Property: AUC is invariant to monotone transforms of the scores.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 40
		scores := make([]float64, n)
		trans := make([]float64, n)
		pos := make([]bool, n)
		nPos := 0
		for i := range scores {
			scores[i] = r.NormFloat64()
			trans[i] = math.Exp(scores[i]) // strictly monotone
			pos[i] = r.Float64() < 0.5
			if pos[i] {
				nPos++
			}
		}
		if nPos == 0 || nPos == n {
			return true // vacuous
		}
		_, a1, err1 := ROC(scores, pos)
		_, a2, err2 := ROC(trans, pos)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC equals the Mann-Whitney U statistic (probability a random
// positive outscores a random negative, ties counting half).
func TestAUCEqualsMannWhitney(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 30
		scores := make([]float64, n)
		pos := make([]bool, n)
		nPos := 0
		for i := range scores {
			scores[i] = float64(r.Intn(5)) // coarse grid forces ties
			pos[i] = r.Float64() < 0.5
			if pos[i] {
				nPos++
			}
		}
		if nPos == 0 || nPos == n {
			return true
		}
		_, auc, err := ROC(scores, pos)
		if err != nil {
			return false
		}
		var u, pairs float64
		for i := range scores {
			if !pos[i] {
				continue
			}
			for j := range scores {
				if pos[j] {
					continue
				}
				pairs++
				switch {
				case scores[i] > scores[j]:
					u++
				case scores[i] == scores[j]:
					u += 0.5
				}
			}
		}
		return math.Abs(auc-u/pairs) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestF1(t *testing.T) {
	// class 0: tp=8, fn=2, fp=4 -> precision 8/12, recall 8/10, F1 = 2*.667*.8/1.467
	conf := [][]int{
		{8, 2},
		{4, 6},
	}
	got := F1(conf, 0)
	precision := 8.0 / 12
	recall := 8.0 / 10
	want := 2 * precision * recall / (precision + recall)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
	// degenerate: class never predicted and never actual
	empty := [][]int{{0, 0}, {0, 5}}
	if F1(empty, 0) != 0 {
		t.Fatal("degenerate F1 should be 0")
	}
}

func TestMacroF1(t *testing.T) {
	// perfect classifier: macro F1 = 1
	conf := [][]int{
		{5, 0},
		{0, 7},
	}
	if got := MacroF1(conf); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect MacroF1 = %v", got)
	}
	// class 2 absent from labels is skipped
	conf3 := [][]int{
		{5, 0, 0},
		{0, 7, 0},
		{0, 0, 0},
	}
	if got := MacroF1(conf3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MacroF1 with absent class = %v", got)
	}
	if MacroF1([][]int{{0}}) != 0 {
		t.Fatal("all-absent MacroF1 should be 0")
	}
}
