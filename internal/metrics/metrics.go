// Package metrics implements the evaluation metrics used by the DistHD
// paper: classification accuracy, confusion matrices, per-class
// sensitivity/specificity (§III-C), and ROC curves with AUC (Fig. 6).
package metrics

import (
	"fmt"
	"sort"
)

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(pred, y []int) (float64, error) {
	if len(pred) != len(y) {
		return 0, fmt.Errorf("metrics: %d predictions but %d labels", len(pred), len(y))
	}
	if len(y) == 0 {
		return 0, fmt.Errorf("metrics: empty input")
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}

// Confusion returns the k×k confusion matrix: entry [t][p] counts samples
// with true label t predicted as p.
func Confusion(pred, y []int, k int) ([][]int, error) {
	if len(pred) != len(y) {
		return nil, fmt.Errorf("metrics: %d predictions but %d labels", len(pred), len(y))
	}
	conf := make([][]int, k)
	for i := range conf {
		conf[i] = make([]int, k)
	}
	for i := range y {
		if y[i] < 0 || y[i] >= k || pred[i] < 0 || pred[i] >= k {
			return nil, fmt.Errorf("metrics: label/prediction out of range at %d", i)
		}
		conf[y[i]][pred[i]]++
	}
	return conf, nil
}

// SensitivitySpecificity returns the one-vs-rest sensitivity (recall, TPR)
// and specificity (TNR) of class c from a confusion matrix, as defined in
// §III-C of the paper. Degenerate denominators yield 0.
func SensitivitySpecificity(conf [][]int, c int) (sensitivity, specificity float64) {
	k := len(conf)
	var tp, fn, fp, tn float64
	for t := 0; t < k; t++ {
		for p := 0; p < k; p++ {
			n := float64(conf[t][p])
			switch {
			case t == c && p == c:
				tp += n
			case t == c:
				fn += n
			case p == c:
				fp += n
			default:
				tn += n
			}
		}
	}
	if tp+fn > 0 {
		sensitivity = tp / (tp + fn)
	}
	if tn+fp > 0 {
		specificity = tn / (tn + fp)
	}
	return sensitivity, specificity
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	FPR, TPR float64
	// Threshold is the score cutoff that produces this point.
	Threshold float64
}

// ROC computes the ROC curve and AUC for binary labels (true = positive)
// scored by `scores` (higher = more positive). The curve runs from (0,0)
// to (1,1); AUC is computed by the trapezoid rule with proper tie handling
// (all samples sharing a score move together).
func ROC(scores []float64, positive []bool) ([]ROCPoint, float64, error) {
	if len(scores) != len(positive) {
		return nil, 0, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(positive))
	}
	var nPos, nNeg float64
	for _, p := range positive {
		if p {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, 0, fmt.Errorf("metrics: ROC needs both classes (pos=%v neg=%v)", nPos, nNeg)
	}

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	curve := []ROCPoint{{FPR: 0, TPR: 0, Threshold: scores[idx[0]] + 1}}
	var tp, fp float64
	auc := 0.0
	i := 0
	for i < len(idx) {
		thr := scores[idx[i]]
		// absorb every sample tied at this threshold
		var dTP, dFP float64
		for i < len(idx) && scores[idx[i]] == thr {
			if positive[idx[i]] {
				dTP++
			} else {
				dFP++
			}
			i++
		}
		prevTPR := tp / nPos
		tp += dTP
		fp += dFP
		tpr := tp / nPos
		fpr := fp / nNeg
		// trapezoid over the FPR step
		auc += (dFP / nNeg) * (prevTPR + tpr) / 2
		curve = append(curve, ROCPoint{FPR: fpr, TPR: tpr, Threshold: thr})
	}
	return curve, auc, nil
}

// MacroAUC computes the unweighted mean one-vs-rest AUC over all classes,
// given a score matrix scores[i][c] and integer labels. Classes absent
// from y are skipped.
func MacroAUC(scores [][]float64, y []int, k int) (float64, error) {
	if len(scores) != len(y) {
		return 0, fmt.Errorf("metrics: %d score rows but %d labels", len(scores), len(y))
	}
	for i, row := range scores {
		if len(row) < k {
			return 0, fmt.Errorf("metrics: score row %d has %d columns, need %d", i, len(row), k)
		}
	}
	var sum float64
	var used int
	col := make([]float64, len(y))
	pos := make([]bool, len(y))
	for c := 0; c < k; c++ {
		nPos := 0
		for i := range y {
			col[i] = scores[i][c]
			pos[i] = y[i] == c
			if pos[i] {
				nPos++
			}
		}
		if nPos == 0 || nPos == len(y) {
			continue
		}
		_, auc, err := ROC(col, pos)
		if err != nil {
			return 0, err
		}
		sum += auc
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("metrics: no class had both positives and negatives")
	}
	return sum / float64(used), nil
}

// QualityLoss returns the accuracy degradation (in absolute fraction) of a
// faulty model relative to a clean one, clamped at 0 — the metric reported
// in Fig. 8.
func QualityLoss(cleanAcc, faultyAcc float64) float64 {
	loss := cleanAcc - faultyAcc
	if loss < 0 {
		return 0
	}
	return loss
}

// F1 returns the one-vs-rest F1 score of class c from a confusion matrix:
// the harmonic mean of precision and recall. Degenerate cases (no
// predicted or no actual positives) yield 0.
func F1(conf [][]int, c int) float64 {
	k := len(conf)
	var tp, fn, fp float64
	for t := 0; t < k; t++ {
		for p := 0; p < k; p++ {
			n := float64(conf[t][p])
			switch {
			case t == c && p == c:
				tp += n
			case t == c:
				fn += n
			case p == c:
				fp += n
			}
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}

// MacroF1 returns the unweighted mean F1 over all classes that appear in
// the true labels.
func MacroF1(conf [][]int) float64 {
	var sum float64
	var used int
	for c := range conf {
		actual := 0
		for p := range conf[c] {
			actual += conf[c][p]
		}
		if actual == 0 {
			continue
		}
		sum += F1(conf, c)
		used++
	}
	if used == 0 {
		return 0
	}
	return sum / float64(used)
}
