// Package hv implements the hypervector algebra that HDC (hyperdimensional
// computing) is built on, as summarized in §III-A of the DistHD paper:
// similarity (cosine / Hamming), bundling (element-wise addition, the
// memory operation), binding (element-wise multiplication, the association
// operation), permutation (sequence encoding), and bipolar quantization.
//
// Hypervectors are plain []float64 slices; bipolar vectors hold ±1 values.
// In a space with dimension D large enough, independently drawn random
// bipolar hypervectors are nearly orthogonal (dot ≈ 0), which is the
// property every operation here exploits; the package tests assert it.
package hv

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/rng"
)

// RandomBipolar returns a fresh ±1 hypervector of dimension d.
func RandomBipolar(d int, r *rng.Rand) []float64 {
	h := make([]float64, d)
	for i := range h {
		h[i] = r.Bipolar()
	}
	return h
}

// RandomGaussian returns a hypervector with i.i.d. N(0,1) components.
func RandomGaussian(d int, r *rng.Rand) []float64 {
	h := make([]float64, d)
	r.FillNorm(h, 0, 1)
	return h
}

// Cosine returns the cosine similarity δ(a, b) from eq. (1) of the paper.
func Cosine(a, b []float64) float64 { return mat.CosineSim(a, b) }

// Dot returns the raw inner product.
func Dot(a, b []float64) float64 { return mat.Dot(a, b) }

// Hamming returns the normalized Hamming distance between two bipolar
// hypervectors: the fraction of positions where they disagree in sign.
// Zero components count as disagreement with any nonzero component.
func Hamming(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("hv: Hamming length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		sa, sb := sign(a[i]), sign(b[i])
		if sa != sb {
			diff++
		}
	}
	return float64(diff) / float64(len(a))
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Bundle returns the element-wise sum of the given hypervectors — the HDC
// memorization operator (+). The result is similar to each input.
func Bundle(hs ...[]float64) []float64 {
	if len(hs) == 0 {
		return nil
	}
	out := make([]float64, len(hs[0]))
	for _, h := range hs {
		if len(h) != len(out) {
			panic("hv: Bundle dimension mismatch")
		}
		mat.Axpy(out, 1, h)
	}
	return out
}

// BundleInto accumulates src into dst (dst += src).
func BundleInto(dst, src []float64) { mat.Axpy(dst, 1, src) }

// Bind returns the element-wise product a*b — the HDC association operator
// (*). For bipolar inputs the result is nearly orthogonal to both inputs
// and binding is its own inverse: Bind(Bind(a,b), a) == b.
func Bind(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("hv: Bind dimension mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Permute returns h cyclically rotated right by k positions. Permutation
// produces a near-orthogonal hypervector while preserving pairwise
// similarities, and is the standard way to encode order/position.
func Permute(h []float64, k int) []float64 {
	n := len(h)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	for i, v := range h {
		out[(i+k)%n] = v
	}
	return out
}

// Sign quantizes h to bipolar in place: positive → +1, negative → -1,
// zero → +1 (a fixed tie-break keeps quantization deterministic).
func Sign(h []float64) {
	for i, v := range h {
		if v < 0 {
			h[i] = -1
		} else {
			h[i] = 1
		}
	}
}

// Majority bundles bipolar hypervectors and sign-quantizes the result,
// i.e. the element-wise majority vote. Ties break positive.
func Majority(hs ...[]float64) []float64 {
	out := Bundle(hs...)
	Sign(out)
	return out
}

// CheckDim panics with a descriptive message when a hypervector does not
// have the expected dimension. Used by callers at API boundaries.
func CheckDim(h []float64, d int) {
	if len(h) != d {
		panic(fmt.Sprintf("hv: dimension %d, want %d", len(h), d))
	}
}
