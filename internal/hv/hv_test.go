package hv

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const testDim = 2048

func TestRandomBipolarValues(t *testing.T) {
	h := RandomBipolar(1000, rng.New(1))
	for _, v := range h {
		if v != 1 && v != -1 {
			t.Fatalf("non-bipolar value %v", v)
		}
	}
}

// The foundational HDC property: independently drawn hypervectors in high
// dimension are nearly orthogonal (|cos| small).
func TestNearOrthogonality(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 20; i++ {
		a := RandomBipolar(testDim, r)
		b := RandomBipolar(testDim, r)
		if c := Cosine(a, b); math.Abs(c) > 0.1 {
			t.Fatalf("random hypervectors not near-orthogonal: cos=%v", c)
		}
	}
}

func TestGaussianNearOrthogonality(t *testing.T) {
	r := rng.New(3)
	a := RandomGaussian(testDim, r)
	b := RandomGaussian(testDim, r)
	if c := Cosine(a, b); math.Abs(c) > 0.1 {
		t.Fatalf("gaussian hypervectors not near-orthogonal: cos=%v", c)
	}
}

func TestHamming(t *testing.T) {
	a := []float64{1, 1, -1, -1}
	b := []float64{1, -1, -1, 1}
	if got := Hamming(a, b); got != 0.5 {
		t.Fatalf("Hamming = %v, want 0.5", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Fatalf("Hamming self = %v, want 0", got)
	}
	if got := Hamming(nil, nil); got != 0 {
		t.Fatalf("Hamming empty = %v", got)
	}
}

// Bundling acts as memory: the bundle is similar to members, dissimilar to
// non-members (δ(bundle, member) >> 0, δ(bundle, other) ≈ 0) — the exact
// property §III-A of the paper describes.
func TestBundleMembership(t *testing.T) {
	r := rng.New(4)
	members := make([][]float64, 5)
	for i := range members {
		members[i] = RandomBipolar(testDim, r)
	}
	bundle := Bundle(members...)
	for i, m := range members {
		if c := Cosine(bundle, m); c < 0.25 {
			t.Fatalf("member %d not recoverable from bundle: cos=%v", i, c)
		}
	}
	outsider := RandomBipolar(testDim, r)
	if c := Cosine(bundle, outsider); math.Abs(c) > 0.1 {
		t.Fatalf("outsider too similar to bundle: cos=%v", c)
	}
}

// Binding creates a near-orthogonal vector and is reversible for bipolar
// inputs: Bind(Bind(a,b), a) == b.
func TestBindReversible(t *testing.T) {
	r := rng.New(5)
	a := RandomBipolar(testDim, r)
	b := RandomBipolar(testDim, r)
	bound := Bind(a, b)
	if c := math.Abs(Cosine(bound, a)); c > 0.1 {
		t.Fatalf("bound vector too similar to input: %v", c)
	}
	back := Bind(bound, a)
	for i := range back {
		if back[i] != b[i] {
			t.Fatal("Bind is not reversible for bipolar inputs")
		}
	}
}

func TestPermute(t *testing.T) {
	h := []float64{1, 2, 3, 4}
	p := Permute(h, 1)
	want := []float64{4, 1, 2, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Permute = %v, want %v", p, want)
		}
	}
	// negative and wrap-around shifts
	if got := Permute(h, -1)[0]; got != 2 {
		t.Fatalf("Permute(-1)[0] = %v, want 2", got)
	}
	p5 := Permute(h, 5)
	p1 := Permute(h, 1)
	for i := range p1 {
		if p5[i] != p1[i] {
			t.Fatal("Permute should wrap modulo len")
		}
	}
}

func TestPermutePreservesSimilarity(t *testing.T) {
	r := rng.New(6)
	a := RandomBipolar(testDim, r)
	b := RandomBipolar(testDim, r)
	before := Cosine(a, b)
	after := Cosine(Permute(a, 17), Permute(b, 17))
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("permutation changed pairwise similarity: %v -> %v", before, after)
	}
	// but decorrelates against the unpermuted vector
	if c := math.Abs(Cosine(a, Permute(a, 17))); c > 0.1 {
		t.Fatalf("permuted vector too similar to original: %v", c)
	}
}

func TestSign(t *testing.T) {
	h := []float64{-2.5, 0, 3.1}
	Sign(h)
	want := []float64{-1, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Sign = %v, want %v", h, want)
		}
	}
}

func TestMajority(t *testing.T) {
	a := []float64{1, 1, -1}
	b := []float64{1, -1, -1}
	c := []float64{-1, 1, -1}
	m := Majority(a, b, c)
	want := []float64{1, 1, -1}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Majority = %v, want %v", m, want)
		}
	}
}

func TestBundleEmpty(t *testing.T) {
	if Bundle() != nil {
		t.Fatal("Bundle() should be nil")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Bind":    func() { Bind([]float64{1}, []float64{1, 2}) },
		"Bundle":  func() { Bundle([]float64{1}, []float64{1, 2}) },
		"Hamming": func() { _ = Hamming([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCheckDim(t *testing.T) {
	CheckDim(make([]float64, 5), 5) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("CheckDim mismatch did not panic")
		}
	}()
	CheckDim(make([]float64, 4), 5)
}

// Property: binding is commutative and self-inverse on bipolar vectors.
func TestBindProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := RandomBipolar(64, r)
		b := RandomBipolar(64, r)
		ab := Bind(a, b)
		ba := Bind(b, a)
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		id := Bind(a, a)
		for _, v := range id {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Permute(Permute(h, k), -k) is the identity.
func TestPermuteInverseProperty(t *testing.T) {
	f := func(seed uint64, k int16) bool {
		r := rng.New(seed)
		h := RandomBipolar(32, r)
		back := Permute(Permute(h, int(k)), -int(k))
		for i := range h {
			if back[i] != h[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance and cosine agree in ordering for bipolar
// vectors (cos = 1 - 2*hamming).
func TestHammingCosineRelation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := RandomBipolar(128, r)
		b := RandomBipolar(128, r)
		return math.Abs(Cosine(a, b)-(1-2*Hamming(a, b))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCosine4096(b *testing.B) {
	r := rng.New(1)
	x := RandomBipolar(4096, r)
	y := RandomBipolar(4096, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Cosine(x, y)
	}
}

// Bundle capacity: recovering a member from a bundle gets harder as the
// bundle grows — similarity decays roughly like 1/sqrt(k) — but stays well
// above the noise floor for small k at high D. This is the quantitative
// version of the "memory operation" property.
func TestBundleCapacityDecay(t *testing.T) {
	r := rng.New(20)
	const d = 4096
	simOfFirst := func(k int) float64 {
		members := make([][]float64, k)
		for i := range members {
			members[i] = RandomBipolar(d, r)
		}
		return Cosine(Bundle(members...), members[0])
	}
	s2 := simOfFirst(2)
	s8 := simOfFirst(8)
	s32 := simOfFirst(32)
	if !(s2 > s8 && s8 > s32) {
		t.Fatalf("bundle similarity not decaying: %v %v %v", s2, s8, s32)
	}
	// even at 32 members the member stays detectable above noise (~1/sqrt(D)=0.016)
	if s32 < 0.1 {
		t.Fatalf("32-member bundle lost its members: cos=%v", s32)
	}
}
