package assoc

import (
	"testing"

	"repro/internal/hv"
	"repro/internal/mat"
	"repro/internal/rng"
)

const testDim = 2048

func filled(t *testing.T, names ...string) (*Memory, map[string][]float64) {
	t.Helper()
	r := rng.New(1)
	m := New(testDim)
	items := map[string][]float64{}
	for _, n := range names {
		h := hv.RandomBipolar(testDim, r)
		items[n] = h
		if err := m.Store(n, h); err != nil {
			t.Fatal(err)
		}
	}
	return m, items
}

func TestStoreAndGet(t *testing.T) {
	m, items := filled(t, "apple", "banana", "cherry")
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	got, err := m.Get("banana")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != items["banana"][i] {
			t.Fatal("Get returned wrong item")
		}
	}
	if _, err := m.Get("durian"); err == nil {
		t.Fatal("missing item returned without error")
	}
}

func TestStoreValidation(t *testing.T) {
	m := New(8)
	if err := m.Store("", make([]float64, 8)); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := m.Store("x", make([]float64, 7)); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

func TestStoreReplaces(t *testing.T) {
	m := New(4)
	if err := m.Store("x", []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Store("x", []float64{-1, -1, -1, -1}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("replace grew the memory: Len=%d", m.Len())
	}
	got, _ := m.Get("x")
	if got[0] != -1 {
		t.Fatal("replace did not update the item")
	}
}

func TestRecallCleansNoise(t *testing.T) {
	m, items := filled(t, "a", "b", "c", "d", "e")
	r := rng.New(2)
	// Corrupt 20% of "c" and recall.
	noisy := make([]float64, testDim)
	copy(noisy, items["c"])
	for i := 0; i < testDim/5; i++ {
		noisy[r.Intn(testDim)] *= -1
	}
	name, clean, sim, err := m.Recall(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if name != "c" {
		t.Fatalf("recalled %q, want c", name)
	}
	if sim < 0.4 {
		t.Fatalf("similarity %.3f suspiciously low", sim)
	}
	for i := range clean {
		if clean[i] != items["c"][i] {
			t.Fatal("recall must return the CLEAN stored item")
		}
	}
}

func TestRecallEmptyAndBadQuery(t *testing.T) {
	m := New(8)
	if _, _, _, err := m.Recall(make([]float64, 8)); err == nil {
		t.Fatal("recall from empty memory succeeded")
	}
	if err := m.Store("x", make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Recall(make([]float64, 7)); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
}

func TestRecallAboveThreshold(t *testing.T) {
	m, items := filled(t, "a", "b")
	// Clean query passes a high threshold.
	if _, _, _, err := m.RecallAbove(items["a"], 0.9); err != nil {
		t.Fatal(err)
	}
	// A random unrelated query must be rejected at a modest threshold.
	unknown := hv.RandomBipolar(testDim, rng.New(3))
	if _, _, _, err := m.RecallAbove(unknown, 0.5); err == nil {
		t.Fatal("unknown input recognized above threshold")
	}
}

// Decomposing a bundle: recall each member from the bundled composite —
// the memory operation §III-A of the paper describes.
func TestRecallFromBundle(t *testing.T) {
	m, items := filled(t, "x", "y", "z")
	bundle := hv.Bundle(items["x"], items["y"])
	name, _, sim, err := m.Recall(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if name != "x" && name != "y" {
		t.Fatalf("bundle recalled unrelated item %q", name)
	}
	if sim < 0.3 {
		t.Fatalf("bundle similarity %.3f too low", sim)
	}
	// "z" must score clearly lower than the bundle members.
	zsim := hv.Cosine(bundle, items["z"])
	if zsim > sim {
		t.Fatal("non-member outranked a bundle member")
	}
}

// Unbinding: recover a bound pair's second element via the first.
func TestRecallAfterUnbinding(t *testing.T) {
	m, items := filled(t, "role", "filler", "other")
	bound := hv.Bind(items["role"], items["filler"])
	// bound * role = filler (bipolar binding is self-inverse)
	recovered := hv.Bind(bound, items["role"])
	name, _, _, err := m.Recall(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if name != "filler" {
		t.Fatalf("unbinding recalled %q, want filler", name)
	}
}

func TestNamesInsertionOrder(t *testing.T) {
	m, _ := filled(t, "first", "second", "third")
	names := m.Names()
	if names[0] != "first" || names[2] != "third" {
		t.Fatalf("Names = %v", names)
	}
	// returned slice is a copy
	names[0] = "mutated"
	if m.Names()[0] != "first" {
		t.Fatal("Names leaked internal storage")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dimension accepted")
		}
	}()
	New(0)
}

// TestRecallBatchMatchesSingle pins the batched recall to per-query Recall.
func TestRecallBatchMatchesSingle(t *testing.T) {
	m, _ := filled(t, "alpha", "beta", "gamma", "delta")
	r := rng.New(77)
	queries := mat.New(7, testDim)
	r.FillNorm(queries.Data, 0, 1)
	names, sims, err := m.RecallBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queries.Rows; i++ {
		name, _, sim, err := m.Recall(queries.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if names[i] != name || sims[i] != sim {
			t.Fatalf("row %d: batch (%s, %v) != single (%s, %v)", i, names[i], sims[i], name, sim)
		}
	}
	if _, _, err := m.RecallBatch(mat.New(2, testDim-1)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, err := New(8).RecallBatch(mat.New(1, 8)); err == nil {
		t.Fatal("recall from empty memory accepted")
	}
}
