// Package assoc implements the associative item memory (cleanup memory)
// that hyperdimensional architectures are built on: a store of named
// hypervectors supporting nearest-neighbor recall of a noisy query back to
// its clean stored form. Bundled or bound composites can be decomposed by
// repeatedly querying the memory — the "brain-like reasoning" substrate
// the DistHD paper cites (GrapHD, ref [17]); HDC classification itself is
// the special case where the memory holds one item per class.
package assoc

import (
	"fmt"

	"repro/internal/mat"
)

// Memory is an associative store of labeled hypervectors. All items share
// one dimensionality, fixed by the first Store. Item norms are cached at
// Store time so recall is one blocked matrix product (mat.MulTInto) plus a
// cheap normalization rather than per-item cosine loops. Memory is not
// safe for concurrent use.
type Memory struct {
	dim   int
	names []string
	items *mat.Dense
	norms []float64 // cached Euclidean norm per item row
	index map[string]int
}

// New returns an empty memory for hypervectors of the given dimension.
func New(dim int) *Memory {
	if dim <= 0 {
		panic(fmt.Sprintf("assoc: non-positive dimension %d", dim))
	}
	return &Memory{dim: dim, index: map[string]int{}}
}

// Len returns the number of stored items.
func (m *Memory) Len() int { return len(m.names) }

// Dim returns the hypervector dimensionality.
func (m *Memory) Dim() int { return m.dim }

// Store adds (or replaces) an item under the given name. The hypervector
// is copied.
func (m *Memory) Store(name string, h []float64) error {
	if name == "" {
		return fmt.Errorf("assoc: empty item name")
	}
	if len(h) != m.dim {
		return fmt.Errorf("assoc: item %q has dimension %d, memory expects %d", name, len(h), m.dim)
	}
	if i, ok := m.index[name]; ok {
		copy(m.items.Row(i), h)
		m.norms[i] = mat.Norm2(h)
		return nil
	}
	// Grow the backing matrix by one row.
	grown := mat.New(len(m.names)+1, m.dim)
	if m.items != nil {
		copy(grown.Data, m.items.Data)
	}
	copy(grown.Row(len(m.names)), h)
	m.items = grown
	m.norms = append(m.norms, mat.Norm2(h))
	m.index[name] = len(m.names)
	m.names = append(m.names, name)
	return nil
}

// normalizeScores converts raw item dot products in row to cosine
// similarities against a query of norm qn; zero-norm queries or items
// score 0. Both recall paths share this one definition — Recall and
// RecallBatch are pinned to exact agreement by tests.
func (m *Memory) normalizeScores(row []float64, qn float64) {
	for i := range row {
		if qn == 0 || m.norms[i] == 0 {
			row[i] = 0
		} else {
			row[i] /= qn * m.norms[i]
		}
	}
}

// scoreInto writes the cosine similarity of query (with norm qn) against
// every stored item into dst via the blocked kernel.
func (m *Memory) scoreInto(query []float64, qn float64, dst []float64) {
	qv := mat.View(1, m.dim, query)
	sv := mat.View(1, m.Len(), dst)
	mat.MulTInto(sv, qv, m.items)
	m.normalizeScores(dst, qn)
}

// Recall returns the stored item most similar to the query, its name, and
// the cosine similarity. An empty memory returns an error. Scores are
// computed as one kernel pass over the item matrix using a pooled buffer.
func (m *Memory) Recall(query []float64) (name string, item []float64, sim float64, err error) {
	if m.Len() == 0 {
		return "", nil, 0, fmt.Errorf("assoc: recall from empty memory")
	}
	if len(query) != m.dim {
		return "", nil, 0, fmt.Errorf("assoc: query has dimension %d, memory expects %d", len(query), m.dim)
	}
	s := mat.GetScratch(m.Len())
	m.scoreInto(query, mat.Norm2(query), s.Buf)
	best := mat.ArgMax(s.Buf)
	bestSim := s.Buf[best]
	s.Release()
	out := make([]float64, m.dim)
	copy(out, m.items.Row(best))
	return m.names[best], out, bestSim, nil
}

// RecallBatch resolves every row of queries to its nearest stored item in
// one blocked GEMM over the whole batch, returning the matched names and
// similarities row by row.
func (m *Memory) RecallBatch(queries *mat.Dense) ([]string, []float64, error) {
	if m.Len() == 0 {
		return nil, nil, fmt.Errorf("assoc: recall from empty memory")
	}
	if queries.Cols != m.dim {
		return nil, nil, fmt.Errorf("assoc: queries have dimension %d, memory expects %d", queries.Cols, m.dim)
	}
	names := make([]string, queries.Rows)
	sims := make([]float64, queries.Rows)
	s := mat.GetScratch(queries.Rows * m.Len())
	scores := mat.View(queries.Rows, m.Len(), s.Buf)
	mat.MulTIntoFused(scores, queries, m.items, func(i int, row []float64) {
		m.normalizeScores(row, mat.Norm2(queries.Row(i)))
	})
	for i := 0; i < queries.Rows; i++ {
		best := mat.ArgMax(scores.Row(i))
		names[i] = m.names[best]
		sims[i] = scores.Row(i)[best]
	}
	s.Release()
	return names, sims, nil
}

// RecallAbove behaves like Recall but fails the lookup when the best
// similarity is below the threshold — distinguishing "recognized, cleaned
// up" from "unknown input", which a bare argmax cannot.
func (m *Memory) RecallAbove(query []float64, threshold float64) (string, []float64, float64, error) {
	name, item, sim, err := m.Recall(query)
	if err != nil {
		return "", nil, 0, err
	}
	if sim < threshold {
		return "", nil, sim, fmt.Errorf("assoc: best match %q at similarity %.3f below threshold %.3f", name, sim, threshold)
	}
	return name, item, sim, nil
}

// Get returns the clean stored item by name.
func (m *Memory) Get(name string) ([]float64, error) {
	i, ok := m.index[name]
	if !ok {
		return nil, fmt.Errorf("assoc: no item named %q", name)
	}
	out := make([]float64, m.dim)
	copy(out, m.items.Row(i))
	return out, nil
}

// Names returns the stored item names in insertion order (copy).
func (m *Memory) Names() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}
