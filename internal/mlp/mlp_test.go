package mlp

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
)

func toyData(t testing.TB, seed uint64) (train, test *dataset.Dataset) {
	t.Helper()
	spec := &dataset.Spec{
		Name: "toy", Features: 16, Classes: 4,
		Train: 400, Test: 150,
		Subclusters: 2, LatentDim: 5,
		CenterStd: 1.0, IntraStd: 0.4, Warp: 0.9, NoiseStd: 0.12,
		Seed: seed,
	}
	train, test, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dataset.NormalizePair(train, test)
	return train, test
}

func TestNewShapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = []int{32, 16}
	n, err := New(10, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Layers() != 3 || n.In() != 10 || n.Out() != 3 {
		t.Fatalf("layers=%d in=%d out=%d", n.Layers(), n.In(), n.Out())
	}
	if n.W[0].Rows != 32 || n.W[0].Cols != 10 {
		t.Fatal("first layer shape wrong")
	}
	if n.W[2].Rows != 3 || n.W[2].Cols != 16 {
		t.Fatal("output layer shape wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Hidden = nil },
		func(c *Config) { c.Hidden = []int{0} },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.Momentum = 1 },
		func(c *Config) { c.Momentum = -0.1 },
		func(c *Config) { c.WeightDecay = -1 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(4, 2, cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	if _, err := New(0, 2, DefaultConfig()); err == nil {
		t.Fatal("zero input width accepted")
	}
	if _, err := New(4, 1, DefaultConfig()); err == nil {
		t.Fatal("single-class output accepted")
	}
}

func TestSoftmax(t *testing.T) {
	z := []float64{1, 2, 3}
	softmaxInPlace(z)
	var sum float64
	for _, v := range z {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax out of (0,1): %v", z)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(z[2] > z[1] && z[1] > z[0]) {
		t.Fatal("softmax should preserve ordering")
	}
	// numerical stability under large logits
	big := []float64{1000, 1001}
	softmaxInPlace(big)
	if math.IsNaN(big[0]) || math.IsInf(big[1], 0) {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestFitLearnsToy(t *testing.T) {
	train, test := toyData(t, 1)
	cfg := DefaultConfig()
	cfg.Hidden = []int{64}
	cfg.Epochs = 25
	n, err := New(train.Features(), train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := n.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if acc := n.Accuracy(test.X, test.Y); acc < 0.85 {
		t.Fatalf("MLP accuracy %.3f too low on easy toy task", acc)
	}
}

func TestFitValidation(t *testing.T) {
	n, err := New(4, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	X := mat.New(3, 4)
	if _, err := n.Fit(X, []int{0, 1}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := n.Fit(mat.New(2, 5), []int{0, 1}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := n.Fit(X, []int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestDeterministic(t *testing.T) {
	train, test := toyData(t, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	run := func() []int {
		n, err := New(train.Features(), train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Fit(train.X, train.Y); err != nil {
			t.Fatal(err)
		}
		return n.PredictBatch(test.X)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MLP training not deterministic")
		}
	}
}

func TestProbsValid(t *testing.T) {
	train, _ := toyData(t, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	n, err := New(train.Features(), train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	p := n.Probs(train.X.Row(0))
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("invalid probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	train, test := toyData(t, 4)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	n, err := New(train.Features(), train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	batch := n.PredictBatch(test.X)
	for i := 0; i < 10; i++ {
		if p := n.Predict(test.X.Row(i)); p != batch[i] {
			t.Fatalf("row %d: single %d != batch %d", i, p, batch[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	n, err := New(4, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	c.W[0].Set(0, 0, 123)
	c.B[0][0] = 9
	if n.W[0].At(0, 0) == 123 || n.B[0][0] == 9 {
		t.Fatal("Clone shares storage")
	}
}

// Gradient check: compare analytic gradients against finite differences on
// a tiny network. This pins the backprop implementation.
func TestGradientCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = []int{5}
	cfg.Seed = 3
	n, err := New(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.1}
	label := 1

	loss := func() float64 {
		acts := n.newActs()
		n.forward(x, acts)
		probs := make([]float64, n.Out())
		copy(probs, acts[len(acts)-1])
		softmaxInPlace(probs)
		return -math.Log(probs[label])
	}

	gW := []*mat.Dense{mat.New(5, 3), mat.New(2, 5)}
	gB := [][]float64{make([]float64, 5), make([]float64, 2)}
	acts := n.newActs()
	deltas := [][]float64{make([]float64, 5), make([]float64, 2)}
	n.accumulateGradients(x, label, acts, deltas, gW, gB)

	const eps = 1e-6
	for l := 0; l < 2; l++ {
		for idx := range n.W[l].Data {
			orig := n.W[l].Data[idx]
			n.W[l].Data[idx] = orig + eps
			lp := loss()
			n.W[l].Data[idx] = orig - eps
			lm := loss()
			n.W[l].Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := gW[l].Data[idx]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: analytic %v vs numeric %v", l, idx, analytic, numeric)
			}
		}
		for j := range n.B[l] {
			orig := n.B[l][j]
			n.B[l][j] = orig + eps
			lp := loss()
			n.B[l][j] = orig - eps
			lm := loss()
			n.B[l][j] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-gB[l][j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d bias %d: analytic %v vs numeric %v", l, j, gB[l][j], numeric)
			}
		}
	}
}

func BenchmarkFitEpoch(b *testing.B) {
	train, _ := toyData(b, 5)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := New(train.Features(), train.Classes, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.Fit(train.X, train.Y); err != nil {
			b.Fatal(err)
		}
	}
}
