// Package mlp implements the DNN comparator used throughout the DistHD
// paper's evaluation: a fully-connected multilayer perceptron (ref [27])
// with ReLU hidden activations, a softmax cross-entropy output, and
// minibatch SGD with momentum. The paper trains its DNN with TensorFlow;
// this from-scratch implementation provides the same model family, a small
// grid-search helper, and access to the raw weights for the 8-bit
// quantization used by the robustness study (Fig. 8).
package mlp

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Config describes the network and its optimizer.
type Config struct {
	// Hidden lists the hidden-layer widths, e.g. {128, 64}.
	Hidden []int
	// LearningRate for SGD.
	LearningRate float64
	// Momentum coefficient (0 disables momentum).
	Momentum float64
	// L2 weight decay coefficient (0 disables).
	WeightDecay float64
	// Epochs over the training set.
	Epochs int
	// BatchSize for minibatch SGD.
	BatchSize int
	// Seed for init and shuffling.
	Seed uint64
}

// DefaultConfig returns a single-hidden-layer network comparable to the
// small MLPs the paper grid-searches.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{128},
		LearningRate: 0.05,
		Momentum:     0.9,
		WeightDecay:  1e-4,
		Epochs:       30,
		BatchSize:    32,
		Seed:         1,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case len(c.Hidden) == 0:
		return fmt.Errorf("mlp: need at least one hidden layer")
	case c.LearningRate <= 0:
		return fmt.Errorf("mlp: LearningRate must be positive, got %v", c.LearningRate)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("mlp: Momentum must be in [0,1), got %v", c.Momentum)
	case c.WeightDecay < 0:
		return fmt.Errorf("mlp: WeightDecay must be non-negative, got %v", c.WeightDecay)
	case c.Epochs <= 0:
		return fmt.Errorf("mlp: Epochs must be positive, got %d", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("mlp: BatchSize must be positive, got %d", c.BatchSize)
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("mlp: hidden layer %d has non-positive width %d", i, h)
		}
	}
	return nil
}

// Network is a trained (or trainable) MLP.
type Network struct {
	// W[l] is the weight matrix of layer l (out × in); B[l] its bias.
	W []*mat.Dense
	B [][]float64
	// sizes caches the layer widths including input and output.
	sizes []int
	cfg   Config
}

// New builds a randomly initialized network mapping `in` features to `out`
// classes through cfg.Hidden layers, using He initialization.
func New(in, out int, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in <= 0 || out < 2 {
		return nil, fmt.Errorf("mlp: invalid shape in=%d out=%d", in, out)
	}
	sizes := append(append([]int{in}, cfg.Hidden...), out)
	n := &Network{sizes: sizes, cfg: cfg}
	r := rng.New(cfg.Seed)
	for l := 0; l+1 < len(sizes); l++ {
		w := mat.New(sizes[l+1], sizes[l])
		// He init: std = sqrt(2 / fan_in), appropriate for ReLU.
		r.FillNorm(w.Data, 0, math.Sqrt(2/float64(sizes[l])))
		n.W = append(n.W, w)
		n.B = append(n.B, make([]float64, sizes[l+1]))
	}
	return n, nil
}

// Layers returns the number of weight layers.
func (n *Network) Layers() int { return len(n.W) }

// In returns the input width; Out the number of classes.
func (n *Network) In() int  { return n.sizes[0] }
func (n *Network) Out() int { return n.sizes[len(n.sizes)-1] }

// forward computes all layer activations for input x. acts[0] = x,
// acts[l+1] = activation after layer l. The final layer is returned as
// logits (no softmax applied).
func (n *Network) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for l := 0; l < n.Layers(); l++ {
		in := acts[l]
		out := acts[l+1]
		w := n.W[l]
		for j := 0; j < w.Rows; j++ {
			v := mat.Dot(w.Row(j), in) + n.B[l][j]
			if l < n.Layers()-1 && v < 0 {
				v = 0 // ReLU on hidden layers only
			}
			out[j] = v
		}
	}
}

// newActs allocates activation buffers matching the layer sizes.
func (n *Network) newActs() [][]float64 {
	acts := make([][]float64, len(n.sizes))
	for i, s := range n.sizes {
		acts[i] = make([]float64, s)
	}
	return acts
}

// softmaxInPlace converts logits to probabilities, numerically stable.
func softmaxInPlace(z []float64) {
	max := z[0]
	for _, v := range z {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range z {
		z[i] = math.Exp(v - max)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
}

// Fit trains the network with minibatch SGD + momentum and returns the
// per-epoch average cross-entropy loss.
func (n *Network) Fit(X *mat.Dense, y []int) ([]float64, error) {
	if X.Rows != len(y) {
		return nil, fmt.Errorf("mlp: %d samples but %d labels", X.Rows, len(y))
	}
	if X.Cols != n.In() {
		return nil, fmt.Errorf("mlp: input width %d != network input %d", X.Cols, n.In())
	}
	for i, label := range y {
		if label < 0 || label >= n.Out() {
			return nil, fmt.Errorf("mlp: label %d at row %d outside [0,%d)", label, i, n.Out())
		}
	}

	r := rng.New(n.cfg.Seed ^ 0x5eed)
	// Momentum velocity buffers.
	vW := make([]*mat.Dense, n.Layers())
	vB := make([][]float64, n.Layers())
	// Gradient accumulators per batch.
	gW := make([]*mat.Dense, n.Layers())
	gB := make([][]float64, n.Layers())
	for l := 0; l < n.Layers(); l++ {
		vW[l] = mat.New(n.W[l].Rows, n.W[l].Cols)
		vB[l] = make([]float64, len(n.B[l]))
		gW[l] = mat.New(n.W[l].Rows, n.W[l].Cols)
		gB[l] = make([]float64, len(n.B[l]))
	}
	acts := n.newActs()
	// delta[l] is dLoss/dPreactivation of layer l's output.
	deltas := make([][]float64, n.Layers())
	for l := 0; l < n.Layers(); l++ {
		deltas[l] = make([]float64, n.sizes[l+1])
	}

	var losses []float64
	for e := 0; e < n.cfg.Epochs; e++ {
		order := r.Perm(X.Rows)
		var epochLoss float64
		for start := 0; start < len(order); start += n.cfg.BatchSize {
			end := start + n.cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			for l := range gW {
				gW[l].Fill(0)
				for j := range gB[l] {
					gB[l][j] = 0
				}
			}
			for _, i := range batch {
				epochLoss += n.accumulateGradients(X.Row(i), y[i], acts, deltas, gW, gB)
			}
			scale := 1 / float64(len(batch))
			for l := 0; l < n.Layers(); l++ {
				// v = momentum*v - lr*(g/batch + decay*W); W += v
				for idx, g := range gW[l].Data {
					vW[l].Data[idx] = n.cfg.Momentum*vW[l].Data[idx] -
						n.cfg.LearningRate*(g*scale+n.cfg.WeightDecay*n.W[l].Data[idx])
					n.W[l].Data[idx] += vW[l].Data[idx]
				}
				for j, g := range gB[l] {
					vB[l][j] = n.cfg.Momentum*vB[l][j] - n.cfg.LearningRate*g*scale
					n.B[l][j] += vB[l][j]
				}
			}
		}
		losses = append(losses, epochLoss/float64(X.Rows))
	}
	return losses, nil
}

// accumulateGradients runs forward+backward for one sample, adds gradients
// into gW/gB, and returns the sample's cross-entropy loss.
func (n *Network) accumulateGradients(x []float64, label int, acts, deltas [][]float64, gW []*mat.Dense, gB [][]float64) float64 {
	n.forward(x, acts)
	logits := acts[len(acts)-1]
	probs := make([]float64, len(logits))
	copy(probs, logits)
	softmaxInPlace(probs)
	loss := -math.Log(math.Max(probs[label], 1e-12))

	// Output delta: softmax-CE gradient.
	last := n.Layers() - 1
	for j := range deltas[last] {
		deltas[last][j] = probs[j]
	}
	deltas[last][label] -= 1

	// Backpropagate through hidden layers.
	for l := last - 1; l >= 0; l-- {
		wNext := n.W[l+1]
		for j := 0; j < n.sizes[l+1]; j++ {
			if acts[l+1][j] <= 0 { // ReLU gate
				deltas[l][j] = 0
				continue
			}
			var s float64
			for k := 0; k < wNext.Rows; k++ {
				s += wNext.At(k, j) * deltas[l+1][k]
			}
			deltas[l][j] = s
		}
	}

	// Gradients: gW[l] += delta[l] ⊗ acts[l].
	for l := 0; l < n.Layers(); l++ {
		in := acts[l]
		for j, d := range deltas[l] {
			if d == 0 {
				continue
			}
			mat.Axpy(gW[l].Row(j), d, in)
			gB[l][j] += d
		}
	}
	return loss
}

// Predict returns the argmax class for x.
func (n *Network) Predict(x []float64) int {
	acts := n.newActs()
	n.forward(x, acts)
	return mat.ArgMax(acts[len(acts)-1])
}

// Probs returns softmax class probabilities for x.
func (n *Network) Probs(x []float64) []float64 {
	acts := n.newActs()
	n.forward(x, acts)
	out := make([]float64, n.Out())
	copy(out, acts[len(acts)-1])
	softmaxInPlace(out)
	return out
}

// PredictBatch classifies every row of X in parallel.
func (n *Network) PredictBatch(X *mat.Dense) []int {
	out := make([]int, X.Rows)
	mat.ParallelFor(X.Rows, func(lo, hi int) {
		acts := n.newActs()
		for i := lo; i < hi; i++ {
			n.forward(X.Row(i), acts)
			out[i] = mat.ArgMax(acts[len(acts)-1])
		}
	})
	return out
}

// Accuracy returns classification accuracy over a labeled batch.
func (n *Network) Accuracy(X *mat.Dense, y []int) float64 {
	if X.Rows == 0 {
		return 0
	}
	pred := n.PredictBatch(X)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// Clone returns a deep copy of the network (weights and config).
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...), cfg: n.cfg}
	for l := range n.W {
		c.W = append(c.W, n.W[l].Clone())
		b := make([]float64, len(n.B[l]))
		copy(b, n.B[l])
		c.B = append(c.B, b)
	}
	return c
}
