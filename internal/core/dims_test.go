package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/model"
	"repro/internal/rng"
)

func TestOutcomeString(t *testing.T) {
	if Correct.String() != "correct" || Partial.String() != "partial" || Incorrect.String() != "incorrect" {
		t.Fatal("Outcome.String wrong")
	}
	if Outcome(99).String() != "unknown" {
		t.Fatal("unknown outcome should stringify to unknown")
	}
}

func TestTop2Outcome(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7}
	// top-1 = class 1, top-2 = class 3
	if o, i1, i2 := Top2Outcome(scores, 1); o != Correct || i1 != 1 || i2 != 3 {
		t.Fatalf("got %v (%d,%d)", o, i1, i2)
	}
	if o, _, _ := Top2Outcome(scores, 3); o != Partial {
		t.Fatalf("got %v, want Partial", o)
	}
	if o, _, _ := Top2Outcome(scores, 0); o != Incorrect {
		t.Fatalf("got %v, want Incorrect", o)
	}
}

func TestRegenBudget(t *testing.T) {
	if regenBudget(512, 0.10) != 51 {
		t.Fatalf("budget = %d, want 51", regenBudget(512, 0.10))
	}
	if regenBudget(512, 0) != 0 {
		t.Fatal("zero rate should give zero budget")
	}
	if regenBudget(10, 1.0) != 10 {
		t.Fatal("full rate should give full budget")
	}
}

func TestIntersect(t *testing.T) {
	got := intersect([]int{1, 2, 3, 4}, []int{3, 1, 9})
	want := []int{1, 3}
	if len(got) != len(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersect = %v, want %v", got, want)
		}
	}
	if intersect([]int{1}, []int{2}) != nil {
		t.Fatal("disjoint intersect should be nil")
	}
}

func TestColumnScores(t *testing.T) {
	// Column 2 dominates after row normalization.
	rows := [][]float64{
		{0, 0, 5, 0},
		{0, 1, 4, 0},
	}
	got := columnScores(rows)
	if len(got) != 4 || mat.ArgMax(got) != 2 {
		t.Fatalf("columnScores = %v, want col 2 dominant", got)
	}
	if columnScores(nil) != nil {
		t.Fatal("empty matrix should return nil")
	}
}

func TestSelectUndesiredBudgetAndVeto(t *testing.T) {
	// colM and colN agree that dims 0 and 1 are the worst offenders; the
	// fill ranks dim 3 as least informative. Dim 0 is vetoed (high
	// information = very low fill value), so the selection should be
	// dim 1 (indicted, not vetoed) then fill dims in order.
	colM := []float64{9, 8, 0, 0, 0, 0}
	colN := []float64{9, 8, 0, 0, 0, 0}
	// fill = negated saliency: higher means less informative.
	fill := []float64{-100, 0.5, 0.1, 0.9, 0.2, 0.3}
	got := selectUndesired(colM, colN, fill, 3)
	if len(got) != 3 {
		t.Fatalf("selected %d dims, want 3 (budget)", len(got))
	}
	if got[0] != 1 {
		t.Fatalf("first selection %d, want indicted dim 1", got[0])
	}
	for _, d := range got {
		if d == 0 {
			t.Fatal("vetoed high-information dim 0 was selected")
		}
	}
	// zero budget
	if selectUndesired(colM, colN, fill, 0) != nil {
		t.Fatal("zero budget should select nothing")
	}
}

func TestMedianOf(t *testing.T) {
	if m := medianOf([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("medianOf = %v, want 2", m)
	}
	if medianOf(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}

// Construct a deliberately misleading dimension and check Algorithm 2
// finds it: classes are separable in all dims except one, where samples of
// class 0 look like class 1.
func TestIdentifyUndesiredFindsMisleadingDim(t *testing.T) {
	const d = 16
	const n = 60
	k := 2
	m := model.New(k, d)
	// Class prototypes: class 0 = +1 everywhere, class 1 = -1 everywhere.
	for j := 0; j < d; j++ {
		m.Weights.Set(0, j, 1)
		m.Weights.Set(1, j, -1)
	}
	m.RefreshNorms()

	H := mat.New(n, d)
	y := make([]int, n)
	r := rng.New(1)
	const badDim = 7
	for i := 0; i < n; i++ {
		y[i] = i % k
		sign := 1.0
		if y[i] == 1 {
			sign = -1
		}
		row := H.Row(i)
		for j := 0; j < d; j++ {
			row[j] = sign * (0.5 + 0.1*r.Float64())
		}
		// The bad dimension actively points at the wrong class, strongly
		// enough to flip the prediction (it must outweigh the other 15
		// dims' combined pull of ~0.55 each).
		row[badDim] = -sign * 12
	}

	cfg := DefaultConfig()
	cfg.Dim = d
	cfg.RegenRate = 0.15 // budget = 2 dims per matrix

	// With only 2 classes every error is Partial (true label is always the
	// runner-up), so M alone decides.
	stats := IdentifyUndesired(H, y, m, &cfg)
	if stats.NumPartial == 0 {
		t.Fatal("expected some partial misclassifications")
	}
	found := false
	for _, dim := range stats.Undesired {
		if dim == badDim {
			found = true
		}
	}
	if !found {
		t.Fatalf("Algorithm 2 missed the misleading dim %d, selected %v", badDim, stats.Undesired)
	}
}

func TestIdentifyUndesiredPerfectModelSelectsNothing(t *testing.T) {
	const d = 8
	m := model.New(2, d)
	for j := 0; j < d; j++ {
		m.Weights.Set(0, j, 1)
		m.Weights.Set(1, j, -1)
	}
	m.RefreshNorms()
	H := mat.New(4, d)
	y := []int{0, 1, 0, 1}
	for i := 0; i < 4; i++ {
		sign := 1.0
		if y[i] == 1 {
			sign = -1
		}
		for j := 0; j < d; j++ {
			H.Set(i, j, sign)
		}
	}
	cfg := DefaultConfig()
	cfg.Dim = d
	stats := IdentifyUndesired(H, y, m, &cfg)
	if stats.NumCorrect != 4 || len(stats.Undesired) != 0 {
		t.Fatalf("perfect model should select nothing: %+v", stats)
	}
}

func TestIdentifyUndesiredZeroRate(t *testing.T) {
	m := model.New(2, 8)
	m.Weights.Set(0, 0, 1)
	m.Weights.Set(1, 1, -1)
	m.RefreshNorms()
	H := mat.New(2, 8)
	H.Set(0, 0, -1) // misclassified
	H.Set(1, 1, 1)
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.RegenRate = 0
	stats := IdentifyUndesired(H, []int{0, 1}, m, &cfg)
	if len(stats.Undesired) != 0 {
		t.Fatal("zero regen rate must select nothing")
	}
}

// Property: the undesired set never exceeds the per-matrix budget and never
// contains duplicates or out-of-range dims.
func TestIdentifyUndesiredBudgetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const d, n, k = 24, 30, 3
		m := model.New(k, d)
		r.FillNorm(m.Weights.Data, 0, 1)
		m.RefreshNorms()
		H := mat.New(n, d)
		r.FillNorm(H.Data, 0, 1)
		y := make([]int, n)
		for i := range y {
			y[i] = r.Intn(k)
		}
		cfg := DefaultConfig()
		cfg.Dim = d
		cfg.RegenRate = 0.25
		stats := IdentifyUndesired(H, y, m, &cfg)
		budget := regenBudget(d, cfg.RegenRate)
		if len(stats.Undesired) > budget {
			return false
		}
		seen := map[int]bool{}
		for _, dim := range stats.Undesired {
			if dim < 0 || dim >= d || seen[dim] {
				return false
			}
			seen[dim] = true
		}
		return stats.NumCorrect+stats.NumPartial+stats.NumIncorrect == n
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The literal and prose Algorithm-2 variants score incorrect-bucket
// samples with near-opposite formulas; on a construction where every
// sample lands in the incorrect bucket, their N-matrix column rankings
// must differ. This pins the ablation switch actually switching.
func TestAlgorithm2VariantsDiffer(t *testing.T) {
	r := rng.New(3)
	const d, n, k = 32, 60, 4
	// Class 3 has a weak (low-norm) prototype, classes 0 and 1 strong
	// bipolar prototypes. Samples labeled 3 but resembling class 0 always
	// score top-2 = {0, 1}-ish, never 3 → incorrect bucket.
	m := model.New(k, d)
	for j := 0; j < d; j++ {
		m.Weights.Set(0, j, r.Bipolar())
		m.Weights.Set(1, j, r.Bipolar())
		m.Weights.Set(2, j, 0.5*r.Bipolar())
		m.Weights.Set(3, j, 0.01*r.NormFloat64())
	}
	m.RefreshNorms()
	H := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = 3
		row := H.Row(i)
		copy(row, m.Weights.Row(0))
		for j := range row {
			row[j] += 0.4 * r.NormFloat64()
		}
	}
	prose := DefaultConfig()
	prose.Dim = d
	prose.RegenRate = 0.25
	literal := prose
	literal.UseLiteralAlgorithm2 = true

	a := IdentifyUndesired(H, y, m, &prose)
	b := IdentifyUndesired(H, y, m, &literal)
	if a.NumIncorrect == 0 {
		t.Fatalf("construction failed: buckets %d/%d/%d", a.NumCorrect, a.NumPartial, a.NumIncorrect)
	}
	if len(a.Undesired) == 0 || len(b.Undesired) == 0 {
		t.Skip("no dims selected under either variant; vacuous")
	}
	asSet := func(xs []int) map[int]bool {
		s := map[int]bool{}
		for _, x := range xs {
			s[x] = true
		}
		return s
	}
	sa, sb := asSet(a.Undesired), asSet(b.Undesired)
	same := len(sa) == len(sb)
	if same {
		for x := range sa {
			if !sb[x] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("literal and prose variants selected identical dim sets, switch may be dead")
	}
}
