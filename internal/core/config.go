// Package core implements DistHD, the paper's primary contribution: an HDC
// classifier with a learner-aware dynamic encoder. Each training iteration
// runs the adaptive learning rule (Algorithm 1, package model), buckets
// every training sample by its top-2 classification outcome, scores each
// hypervector dimension by how much it misleads classification
// (Algorithm 2), and regenerates the worst-scoring dimensions in the
// encoder. See DESIGN.md §1 for the full pipeline and the documented
// discrepancy between Algorithm 2's pseudocode and the paper's prose.
package core

import (
	"fmt"

	"repro/internal/model"
)

// Config collects every DistHD hyperparameter. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Dim is the physical hypervector dimensionality D (paper: 0.5k).
	Dim int
	// LearningRate is η in Algorithm 1.
	LearningRate float64
	// Alpha weights distance-from-true-label when scoring dimensions;
	// larger values favor sensitivity (lower false-negative rate, §III-C).
	Alpha float64
	// Beta weights closeness-to-top-1-wrong-label; larger values favor
	// specificity (lower false-positive rate).
	Beta float64
	// Theta weights closeness-to-top-2-wrong-label for samples whose true
	// label missed the top 2 entirely. The paper requires Theta < Beta.
	Theta float64
	// RegenRate is R, the fraction of dimensions eligible for regeneration
	// each iteration (paper's regeneration rate, e.g. 0.10 = 10%).
	RegenRate float64
	// Iterations is the maximum number of train+regenerate rounds.
	Iterations int
	// Patience stops early after this many rounds without training-accuracy
	// improvement; 0 disables early stopping.
	Patience int
	// RegenPatience freezes the encoder (stops regenerating, keeps
	// training) after this many consecutive iterations without
	// training-accuracy improvement. On noisy tasks the train error never
	// reaches zero, so Algorithm 2 would otherwise keep nominating
	// dimensions forever and the resulting churn prevents convergence —
	// the paper's "train until convergence" protocol implies regeneration
	// ceases once learning plateaus. 0 disables the freeze.
	RegenPatience int
	// EpochsPerIter is how many adaptive-learning passes run between
	// regenerations (the paper uses a single pass; more can help on small D).
	EpochsPerIter int
	// UseLiteralAlgorithm2 switches the incorrect-bucket scoring to the
	// literal line-11 formula from the paper's pseudocode instead of the
	// (self-consistent) prose formula. Kept for the ablation study.
	UseLiteralAlgorithm2 bool
	// WarmStart, when true, initializes each regenerated dimension's class
	// weights with the class-conditional mean of the new encoded column
	// (a single-pass bundling restricted to the new dimensions — the
	// "Hyperdimensional Train (Retrain)" box in the paper's Fig. 3).
	// Without it a regenerated dimension only ever receives weight from
	// misclassified samples and stays nearly dead late in training.
	WarmStart bool
	// Seed drives shuffling; the encoder owns its own seed.
	Seed uint64
}

// DefaultConfig returns the hyperparameters used for the paper-shaped
// experiments: D = 512, η = 0.05, α = β = 1, θ = 0.5, R = 10%. Equal α and
// β keep the distance score balanced between "far from the true label" and
// "close to the wrong label"; Fig. 6 of the paper explores unequal ratios
// as a sensitivity/specificity trade-off knob.
func DefaultConfig() Config {
	return Config{
		Dim:           512,
		LearningRate:  0.05,
		Alpha:         1.0,
		Beta:          1.0,
		Theta:         0.5,
		RegenRate:     0.10,
		Iterations:    20,
		Patience:      0,
		RegenPatience: 3,
		EpochsPerIter: 1,
		WarmStart:     true,
		Seed:          1,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("disthd: Dim must be positive, got %d", c.Dim)
	case c.LearningRate <= 0:
		return fmt.Errorf("disthd: LearningRate must be positive, got %v", c.LearningRate)
	case c.Alpha <= 0 || c.Beta <= 0 || c.Theta <= 0:
		return fmt.Errorf("disthd: weight parameters must be positive (α=%v β=%v θ=%v)", c.Alpha, c.Beta, c.Theta)
	case c.Theta >= c.Beta:
		return fmt.Errorf("disthd: paper requires θ < β, got θ=%v β=%v", c.Theta, c.Beta)
	case c.RegenRate < 0 || c.RegenRate > 1:
		return fmt.Errorf("disthd: RegenRate must be in [0,1], got %v", c.RegenRate)
	case c.Iterations <= 0:
		return fmt.Errorf("disthd: Iterations must be positive, got %d", c.Iterations)
	case c.EpochsPerIter <= 0:
		return fmt.Errorf("disthd: EpochsPerIter must be positive, got %d", c.EpochsPerIter)
	}
	return nil
}

// trainConfig adapts the DistHD config to the Algorithm 1 trainer.
func (c *Config) trainConfig(iter int) model.TrainConfig {
	return model.TrainConfig{
		LearningRate: c.LearningRate,
		Epochs:       c.EpochsPerIter,
		// A distinct, deterministic shuffle seed per iteration.
		Seed: c.Seed ^ (uint64(iter)+1)*0x9e3779b97f4a7c15,
	}
}
