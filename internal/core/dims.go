package core

import (
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/model"
)

// Outcome buckets a sample by its top-2 classification result (§III-C).
type Outcome int

const (
	// Correct: the true label is the most similar class.
	Correct Outcome = iota
	// Partial: the true label is the second most similar class.
	Partial
	// Incorrect: the true label is neither of the top two.
	Incorrect
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Correct:
		return "correct"
	case Partial:
		return "partial"
	case Incorrect:
		return "incorrect"
	default:
		return "unknown"
	}
}

// Top2Outcome classifies a single (scores, label) pair into a bucket, also
// returning the top-2 class indices.
func Top2Outcome(scores []float64, label int) (Outcome, int, int) {
	i1, i2 := mat.ArgTop2(scores)
	switch label {
	case i1:
		return Correct, i1, i2
	case i2:
		return Partial, i1, i2
	default:
		return Incorrect, i1, i2
	}
}

// DimStats is the per-iteration output of Algorithm 2: the undesired
// dimension set plus the bucket census, which the trainer reports.
type DimStats struct {
	Undesired                            []int
	NumCorrect, NumPartial, NumIncorrect int
}

// IdentifyUndesired implements Algorithm 2. H is the encoded training batch
// (N×D), y the labels, m the partially trained model. It returns up to
// R%·D dimensions to drop, selected in two stages (see DESIGN.md §1 for
// the empirical justification of each choice):
//
//  1. Indicted dimensions — the intersection of the top-R%·D columns of
//     the two row-normalized distance matrices M (partial bucket) and N
//     (incorrect bucket), Algorithm 2 line 15. These "mislead the
//     classification". With only one non-empty bucket its top set is used
//     alone; an indicted dimension whose saliency is above the median is
//     vetoed (the paper's guard against over-eliminating).
//  2. Budget fill — remaining slots go to the lowest-saliency dimensions
//     ("reduce the learning quality"), matching the paper's effective-
//     dimensionality accounting D* = D + D·R%·iterations.
//
// Distances are taken in the sign (bipolar) view of sample and class
// hypervectors, so each matrix entry is a pure directional-disagreement
// indicator rather than a magnitude.
func IdentifyUndesired(H *mat.Dense, y []int, m *model.Model, cfg *Config) DimStats {
	d := H.Cols
	k := m.Classes()

	// Distances are taken in the bipolar (sign) view of both the sample
	// and the class hypervectors, so |H − C| at a dimension is a pure
	// directional-disagreement indicator (0 or 2). Using raw magnitudes
	// instead would bias the ranking toward dimensions with large learned
	// weights — exactly the class-signature dimensions that must NOT be
	// dropped. The sign view matches the bipolar deployment HDC hardware
	// uses and keeps Algorithm 2's formulas intact.
	normClasses := m.Weights.Clone()

	var stats DimStats
	var mRows, nRows [][]float64

	for c := 0; c < k; c++ {
		signVec(normClasses.Row(c))
	}

	// Batched similarity: blocked GEMMs over row tiles (pooled buffer)
	// instead of N independent score loops. Tiling bounds peak scratch at
	// scoreTile×k however large the training set grows; the tile height is
	// a multiple of the kernel row block, so results are bitwise identical
	// to scoring the whole batch at once.
	tileRows := H.Rows
	if tileRows > scoreTile {
		tileRows = scoreTile
	}
	scoreS := mat.GetScratch(tileRows * k)
	defer scoreS.Release()

	hn := make([]float64, d)
	distTrue := make([]float64, d)
	distTop1 := make([]float64, d)
	distTop2 := make([]float64, d)

	for t0 := 0; t0 < H.Rows; t0 += scoreTile {
		t1 := t0 + scoreTile
		if t1 > H.Rows {
			t1 = H.Rows
		}
		Ht := mat.View(t1-t0, d, H.Data[t0*d:t1*d])
		scores := mat.View(t1-t0, k, scoreS.Buf[:(t1-t0)*k])
		m.ScoreBatchInto(Ht, scores)
		identifyTile(H, y, t0, t1, scores, cfg, &stats, &mRows, &nRows,
			normClasses, hn, distTrue, distTop1, distTop2)
	}

	budget := regenBudget(d, cfg.RegenRate)
	if budget == 0 {
		return stats
	}

	colM := columnScores(mRows)
	colN := columnScores(nRows)
	stats.Undesired = selectUndesired(colM, colN, saliencyFill(m), budget)
	return stats
}

// scoreTile is the row-tile height for Algorithm 2's batched scoring: large
// enough to amortize the GEMM, small enough to bound scratch memory, and a
// multiple of the kernel row block so tiling never changes results.
const scoreTile = 4096

// identifyTile buckets rows [t0, t1) by their top-2 outcome and appends the
// per-sample distance rows of Algorithm 2's M and N matrices.
func identifyTile(H *mat.Dense, y []int, t0, t1 int, scores *mat.Dense, cfg *Config,
	stats *DimStats, mRows, nRows *[][]float64, normClasses *mat.Dense,
	hn, distTrue, distTop1, distTop2 []float64) {
	d := H.Cols
	for i := t0; i < t1; i++ {
		h := H.Row(i)
		outcome, i1, i2 := Top2Outcome(scores.Row(i-t0), y[i])

		if outcome == Correct {
			stats.NumCorrect++
			continue
		}

		copy(hn, h)
		signVec(hn)

		switch outcome {
		case Partial:
			stats.NumPartial++
			// Row of M: α·|H−C_true| − β·|H−C_top1|. Large where the
			// dimension pulls the sample away from its true label (which is
			// the runner-up) and toward the wrongly-winning class.
			mat.AbsDiff(distTrue, hn, normClasses.Row(y[i]))
			mat.AbsDiff(distTop1, hn, normClasses.Row(i1))
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = cfg.Alpha*distTrue[j] - cfg.Beta*distTop1[j]
			}
			*mRows = append(*mRows, row)

		case Incorrect:
			stats.NumIncorrect++
			mat.AbsDiff(distTrue, hn, normClasses.Row(y[i]))
			mat.AbsDiff(distTop1, hn, normClasses.Row(i1))
			mat.AbsDiff(distTop2, hn, normClasses.Row(i2))
			row := make([]float64, d)
			if cfg.UseLiteralAlgorithm2 {
				// Literal Algorithm 2 line 11: N_i = α·n1 + β·n2 − θ·n with
				// n = |H−C_label|, n1 = |H−C_top1|, n2 = |H−C_top2|.
				for j := 0; j < d; j++ {
					row[j] = cfg.Alpha*distTop1[j] + cfg.Beta*distTop2[j] - cfg.Theta*distTrue[j]
				}
			} else {
				// Prose (§III-C), consistent with M's convention:
				// N_i = α·|H−C_label| − β·|H−C_top1| − θ·|H−C_top2|.
				for j := 0; j < d; j++ {
					row[j] = cfg.Alpha*distTrue[j] - cfg.Beta*distTop1[j] - cfg.Theta*distTop2[j]
				}
			}
			*nRows = append(*nRows, row)
		}
	}
}

// signVec replaces every component with its sign (zero counts positive,
// matching the sign-quantization convention used across the repo).
func signVec(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = -1
		} else {
			x[i] = 1
		}
	}
}

// regenBudget returns ⌊R·D⌋, the per-matrix candidate count.
func regenBudget(d int, rate float64) int {
	b := int(math.Floor(rate * float64(d)))
	if b < 0 {
		b = 0
	}
	if b > d {
		b = d
	}
	return b
}

// columnScores normalizes each row to unit L2 norm and sums column-wise
// (Algorithm 2 lines 13–14) — the column reduction on the training path,
// run as a deterministic chunked parallel reduction with the row
// normalization fused into the accumulate pass. Returns nil for an empty
// matrix.
func columnScores(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	d := len(rows[0])
	return mat.ChunkedColReduce(len(rows), d, make([]float64, d), func(c int, p []float64) {
		lo, hi := mat.ChunkSpan(c, len(rows))
		for _, row := range rows[lo:hi] {
			mat.Normalize(row)
			for j, v := range row {
				p[j] += v
			}
		}
	})
}

// selectUndesired picks up to `budget` dimensions. Dimensions indicted by
// BOTH error populations — the intersection of the two top-R%·D sets,
// Algorithm 2 line 15 — are taken first: these "mislead the
// classification". The remaining budget is filled with the dimensions
// carrying the least discriminative information (lowest class-weight
// variance): these "reduce the learning quality" (§I, §III). Filling to
// the full budget matches the paper's effective-dimensionality accounting
// (D* = D + D·R%·iterations, §IV-B), which implies regeneration proceeds
// at the full R%·D rate each iteration.
func selectUndesired(colM, colN, fill []float64, budget int) []int {
	if budget == 0 {
		return nil
	}
	selected := make([]int, 0, budget)
	seen := make(map[int]bool, budget)
	// Indicted dimensions: the intersection of the two top sets when both
	// error populations exist, otherwise the top set of the only one (a
	// 2-class task never produces an incorrect bucket, because the true
	// label is always within the top 2 of 2 classes).
	var indicted []int
	switch {
	case colM != nil && colN != nil:
		indicted = intersect(mat.ArgTopK(colM, budget), mat.ArgTopK(colN, budget))
	case colM != nil:
		indicted = mat.ArgTopK(colM, budget)
	case colN != nil:
		indicted = mat.ArgTopK(colN, budget)
	}
	// Veto guard against over-elimination: an indicted dimension is only
	// dropped if its global information content (saliency) sits in the
	// lower half — a strongly discriminative dimension that happens to
	// disagree with a few hard samples is kept.
	medianFill := medianOf(fill)
	for _, dim := range indicted {
		if len(selected) == budget {
			break
		}
		if fill[dim] < medianFill {
			continue // high-information dimension: vetoed
		}
		selected = append(selected, dim)
		seen[dim] = true
	}
	for _, dim := range mat.ArgTopK(fill, len(fill)) {
		if len(selected) == budget {
			break
		}
		if !seen[dim] {
			selected = append(selected, dim)
			seen[dim] = true
		}
	}
	return selected
}

// medianOf returns the median value of x (x is not modified).
func medianOf(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	tmp := make([]float64, len(x))
	copy(tmp, x)
	sort.Float64s(tmp)
	return tmp[len(tmp)/2]
}

// saliencyFill scores each dimension by the NEGATED variance of its
// normalized class weights, so ArgTopK surfaces the least-informative
// dimensions first.
func saliencyFill(m *model.Model) []float64 {
	norm := m.Weights.Clone()
	norm.RowNormalizeL2()
	d := m.Dim()
	k := m.Classes()
	out := make([]float64, d)
	col := make([]float64, k)
	for j := 0; j < d; j++ {
		for c := 0; c < k; c++ {
			col[c] = norm.At(c, j)
		}
		out[j] = -mat.Variance(col)
	}
	return out
}

// intersect returns the sorted-by-first-slice intersection of two index
// sets.
func intersect(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	var out []int
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}
