package core

import (
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// Classifier is a trained DistHD model: a (dynamically regenerated) encoder
// plus the class-hypervector model learned over it.
type Classifier struct {
	Enc   encoding.Regenerable
	Model *model.Model
	Cfg   Config
}

// IterStats records one training iteration.
type IterStats struct {
	// Iter is the 0-based iteration index.
	Iter int
	// TrainAcc is the training accuracy observed during the final adaptive
	// pass of this iteration.
	TrainAcc float64
	// Regenerated is how many dimensions were dropped and redrawn.
	Regenerated int
	// Bucket census from the top-2 classification.
	NumCorrect, NumPartial, NumIncorrect int
}

// TrainStats summarizes a full DistHD training run.
type TrainStats struct {
	Iters []IterStats
	// TotalRegenerated counts dimension regenerations across all
	// iterations (with multiplicity).
	TotalRegenerated int
	// EffectiveDim is D* = D + TotalRegenerated, the paper's effective
	// dimensionality (§IV-B).
	EffectiveDim int
	// Converged reports whether early stopping fired before the iteration
	// budget was exhausted.
	Converged bool
}

// FinalTrainAcc returns the training accuracy of the last iteration, or 0
// if no iterations ran.
func (s *TrainStats) FinalTrainAcc() float64 {
	if len(s.Iters) == 0 {
		return 0
	}
	return s.Iters[len(s.Iters)-1].TrainAcc
}

// Train runs the full DistHD procedure over raw feature matrix X with
// labels y: encode once, then iterate adaptive learning → top-2 bucketing →
// Algorithm 2 dimension scoring → regeneration. Only the regenerated
// columns of the encoded batch are recomputed between iterations.
//
// Train is Pipeline.Run over a cold NewPipeline; drive the stages directly
// for warm-start retraining (Resume) or custom schedules.
func Train(enc encoding.Regenerable, X *mat.Dense, y []int, classes int, cfg Config) (*Classifier, *TrainStats, error) {
	p, err := NewPipeline(enc, X, y, classes, cfg)
	if err != nil {
		return nil, nil, err
	}
	clf, stats := p.Run()
	return clf, stats, nil
}

// warmStartDims seeds the class weights of freshly regenerated dimensions
// with the class-conditional mean of the new encoded column — a one-pass
// bundling restricted to those dimensions, so they participate in
// classification immediately instead of waiting for error-driven updates.
func warmStartDims(m *model.Model, H *mat.Dense, y []int, dims []int) {
	k := m.Classes()
	counts := make([]float64, k)
	for _, label := range y {
		counts[label]++
	}
	sums := mat.New(k, len(dims))
	for i := 0; i < H.Rows; i++ {
		row := H.Row(i)
		srow := sums.Row(y[i])
		for j, d := range dims {
			srow[j] += row[d]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		srow := sums.Row(c)
		wrow := m.Weights.Row(c)
		for j, d := range dims {
			wrow[d] = srow[j] / counts[c]
		}
	}
	m.RefreshNorms()
}

// Update performs one online adaptive-learning step on a single labeled
// sample: encode, then apply model.AdaptiveStep — the single Algorithm 1
// update rule shared by every training path in this repository (batch
// epochs via model.Trainer, OnlineHD-style passes via model.FitOnline, and
// this per-sample entry point). Update itself owns only the encode; the
// learning rule lives in internal/model and is never reimplemented here.
//
// The returned bool is AdaptiveStep's verdict on the PRE-update prediction:
// true means the sample was already classified correctly and no weights
// changed; false means it was misclassified, so the wrongly-winning class
// was weakened and the true class strengthened (each scaled by the sample's
// novelty, 1 − δ). Callers stream it into windowed accuracy estimates —
// it is the "free" accuracy signal online learning gets before adapting.
//
// This is the on-device continual-learning primitive for edge deployments;
// it never regenerates dimensions (regeneration needs batch statistics —
// run Resume over a window for that).
func (c *Classifier) Update(x []float64, label int, lr float64) bool {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	scratch := make([]float64, c.Model.Classes())
	return c.Model.AdaptiveStep(h, label, lr, scratch)
}

// CloneDetached returns a deep copy of the classifier — cloned class
// weights plus a detached encoder whose regeneration stream restarts from
// regenSeed. The copy can be retrained (Resume) while the original keeps
// serving; nothing is shared between the two.
func (c *Classifier) CloneDetached(regenSeed uint64) *Classifier {
	return &Classifier{
		Enc:   c.Enc.CloneDetached(regenSeed),
		Model: c.Model.Clone(),
		Cfg:   c.Cfg,
	}
}

// Predict classifies a single raw feature vector.
func (c *Classifier) Predict(x []float64) int {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Predict(h)
}

// PredictTop2 returns the two most similar classes for x, best first.
func (c *Classifier) PredictTop2(x []float64) (int, int) {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Top2(h)
}

// Scores returns the per-class cosine similarities for x.
func (c *Classifier) Scores(x []float64) []float64 {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Scores(h, make([]float64, c.Model.Classes()))
}

// PredictBatch classifies every row of X.
func (c *Classifier) PredictBatch(X *mat.Dense) []int {
	return c.Model.PredictBatch(c.Enc.EncodeBatch(X))
}

// Accuracy returns classification accuracy over a labeled raw batch.
func (c *Classifier) Accuracy(X *mat.Dense, y []int) float64 {
	return model.Accuracy(c.Model, c.Enc.EncodeBatch(X), y)
}

// TopKAccuracy returns the top-k accuracy over a labeled raw batch.
func (c *Classifier) TopKAccuracy(X *mat.Dense, y []int, k int) float64 {
	return model.TopKAccuracy(c.Model, c.Enc.EncodeBatch(X), y, k)
}
