package core

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// Classifier is a trained DistHD model: a (dynamically regenerated) encoder
// plus the class-hypervector model learned over it.
type Classifier struct {
	Enc   encoding.Regenerable
	Model *model.Model
	Cfg   Config
}

// IterStats records one training iteration.
type IterStats struct {
	// Iter is the 0-based iteration index.
	Iter int
	// TrainAcc is the training accuracy observed during the final adaptive
	// pass of this iteration.
	TrainAcc float64
	// Regenerated is how many dimensions were dropped and redrawn.
	Regenerated int
	// Bucket census from the top-2 classification.
	NumCorrect, NumPartial, NumIncorrect int
}

// TrainStats summarizes a full DistHD training run.
type TrainStats struct {
	Iters []IterStats
	// TotalRegenerated counts dimension regenerations across all
	// iterations (with multiplicity).
	TotalRegenerated int
	// EffectiveDim is D* = D + TotalRegenerated, the paper's effective
	// dimensionality (§IV-B).
	EffectiveDim int
	// Converged reports whether early stopping fired before the iteration
	// budget was exhausted.
	Converged bool
}

// FinalTrainAcc returns the training accuracy of the last iteration, or 0
// if no iterations ran.
func (s *TrainStats) FinalTrainAcc() float64 {
	if len(s.Iters) == 0 {
		return 0
	}
	return s.Iters[len(s.Iters)-1].TrainAcc
}

// Train runs the full DistHD procedure over raw feature matrix X with
// labels y: encode once, then iterate adaptive learning → top-2 bucketing →
// Algorithm 2 dimension scoring → regeneration. Only the regenerated
// columns of the encoded batch are recomputed between iterations.
func Train(enc encoding.Regenerable, X *mat.Dense, y []int, classes int, cfg Config) (*Classifier, *TrainStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if X.Rows != len(y) {
		return nil, nil, fmt.Errorf("disthd: %d samples but %d labels", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return nil, nil, fmt.Errorf("disthd: empty training set")
	}
	if enc.Dim() != cfg.Dim {
		return nil, nil, fmt.Errorf("disthd: encoder dim %d != config dim %d", enc.Dim(), cfg.Dim)
	}
	if enc.Features() != X.Cols {
		return nil, nil, fmt.Errorf("disthd: encoder expects %d features, data has %d", enc.Features(), X.Cols)
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return nil, nil, fmt.Errorf("disthd: label %d at row %d outside [0,%d)", label, i, classes)
		}
	}

	m := model.New(classes, cfg.Dim)
	H := enc.EncodeBatch(X)
	stats := &TrainStats{}
	best := -1.0
	stall := 0
	regenBest := -1.0
	regenStall := 0
	regenFrozen := false

	// One Trainer across all iterations: the shuffle order, score scratch,
	// and RNG are reused, so the steady-state train/regenerate loop
	// allocates nothing beyond Algorithm 2's per-iteration bookkeeping.
	trainer := model.NewTrainer(m, cfg.Seed)

	for iter := 0; iter < cfg.Iterations; iter++ {
		tc := cfg.trainConfig(iter)
		trainer.Reseed(tc.Seed)
		var acc float64
		for e := 0; e < tc.Epochs; e++ {
			acc = trainer.Epoch(H, y, tc.LearningRate)
		}
		is := IterStats{Iter: iter, TrainAcc: acc}

		// Early-stopping bookkeeping happens before regeneration so a
		// converged model is not perturbed by one final regeneration.
		if cfg.Patience > 0 {
			if acc > best+1e-9 {
				best = acc
				stall = 0
			} else {
				stall++
			}
			if stall >= cfg.Patience {
				stats.Iters = append(stats.Iters, is)
				stats.Converged = true
				break
			}
		}

		// Freeze the encoder once training accuracy plateaus (see
		// Config.RegenPatience).
		if cfg.RegenPatience > 0 && !regenFrozen {
			if acc > regenBest+1e-9 {
				regenBest = acc
				regenStall = 0
			} else {
				regenStall++
				if regenStall >= cfg.RegenPatience {
					regenFrozen = true
				}
			}
		}

		// No regeneration after the last iteration: the returned model must
		// be trained under its final encoder.
		if iter < cfg.Iterations-1 && !regenFrozen {
			ds := IdentifyUndesired(H, y, m, &cfg)
			is.NumCorrect = ds.NumCorrect
			is.NumPartial = ds.NumPartial
			is.NumIncorrect = ds.NumIncorrect
			if len(ds.Undesired) > 0 {
				enc.Regenerate(ds.Undesired)
				enc.EncodeDimsBatch(X, ds.Undesired, H)
				m.ZeroDims(ds.Undesired)
				if cfg.WarmStart {
					warmStartDims(m, H, y, ds.Undesired)
				}
				is.Regenerated = len(ds.Undesired)
				stats.TotalRegenerated += len(ds.Undesired)
			}
		}
		stats.Iters = append(stats.Iters, is)
	}

	stats.EffectiveDim = cfg.Dim + stats.TotalRegenerated
	return &Classifier{Enc: enc, Model: m, Cfg: cfg}, stats, nil
}

// warmStartDims seeds the class weights of freshly regenerated dimensions
// with the class-conditional mean of the new encoded column — a one-pass
// bundling restricted to those dimensions, so they participate in
// classification immediately instead of waiting for error-driven updates.
func warmStartDims(m *model.Model, H *mat.Dense, y []int, dims []int) {
	k := m.Classes()
	counts := make([]float64, k)
	for _, label := range y {
		counts[label]++
	}
	sums := mat.New(k, len(dims))
	for i := 0; i < H.Rows; i++ {
		row := H.Row(i)
		srow := sums.Row(y[i])
		for j, d := range dims {
			srow[j] += row[d]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		srow := sums.Row(c)
		wrow := m.Weights.Row(c)
		for j, d := range dims {
			wrow[d] = srow[j] / counts[c]
		}
	}
	m.RefreshNorms()
}

// Update performs one online adaptive-learning step (Algorithm 1) on a
// single labeled sample: encode, and if the prediction is wrong, weaken
// the wrongly-winning class and strengthen the true class. Returns whether
// the pre-update prediction was already correct. This is the on-device
// continual-learning primitive for edge deployments; it never regenerates
// dimensions (regeneration needs batch statistics).
func (c *Classifier) Update(x []float64, label int, lr float64) bool {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	scratch := make([]float64, c.Model.Classes())
	return c.Model.AdaptiveStep(h, label, lr, scratch)
}

// Predict classifies a single raw feature vector.
func (c *Classifier) Predict(x []float64) int {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Predict(h)
}

// PredictTop2 returns the two most similar classes for x, best first.
func (c *Classifier) PredictTop2(x []float64) (int, int) {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Top2(h)
}

// Scores returns the per-class cosine similarities for x.
func (c *Classifier) Scores(x []float64) []float64 {
	h := make([]float64, c.Enc.Dim())
	c.Enc.Encode(x, h)
	return c.Model.Scores(h, make([]float64, c.Model.Classes()))
}

// PredictBatch classifies every row of X.
func (c *Classifier) PredictBatch(X *mat.Dense) []int {
	return c.Model.PredictBatch(c.Enc.EncodeBatch(X))
}

// Accuracy returns classification accuracy over a labeled raw batch.
func (c *Classifier) Accuracy(X *mat.Dense, y []int) float64 {
	return model.Accuracy(c.Model, c.Enc.EncodeBatch(X), y)
}

// TopKAccuracy returns the top-k accuracy over a labeled raw batch.
func (c *Classifier) TopKAccuracy(X *mat.Dense, y []int, k int) float64 {
	return model.TopKAccuracy(c.Model, c.Enc.EncodeBatch(X), y, k)
}
