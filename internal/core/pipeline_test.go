package core

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/mat"
)

// mustEqualFloats fails when two slices differ at any bit.
func mustEqualFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs: %v != %v", what, i, got[i], want[i])
		}
	}
}

// TestPipelineMatchesTrainBitwise pins the refactor contract: driving the
// staged Pipeline by hand — Encode, then per iteration Adapt / Score /
// Regenerate (or SkipScore) — produces exactly the model the Train
// entry point produces from the same seed and config: identical class
// weights, identical encoder state, identical stats. The manual drive uses
// the fine-grained stage methods rather than Step/Run, so any divergence
// between the re-enterable surface and the one-shot path fails here.
func TestPipelineMatchesTrainBitwise(t *testing.T) {
	train, _ := toyData(t, 7)
	for _, cfg := range []Config{
		func() Config {
			c := DefaultConfig()
			c.Dim = 128
			c.Iterations = 8
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Dim = 96
			c.Iterations = 12
			c.Patience = 2 // exercise the early-stop path
			c.RegenPatience = 2
			return c
		}(),
	} {
		encA := encoding.NewRBF(train.Features(), cfg.Dim, 0xabc)
		encB := encoding.NewRBF(train.Features(), cfg.Dim, 0xabc)

		clfA, statsA, err := Train(encA, train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}

		p, err := NewPipeline(encB, train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Encode()
		for !p.Done() {
			p.Adapt()
			if p.Done() {
				break
			}
			if p.WillRegenerate() {
				p.Regenerate(p.Score())
			} else {
				p.SkipScore()
			}
		}
		clfB, statsB := p.Finish()

		mustEqualFloats(t, "class weights", clfB.Model.Weights.Data, clfA.Model.Weights.Data)
		baseA, phaseA, _ := clfA.Enc.(*encoding.RBF).Params()
		baseB, phaseB, _ := clfB.Enc.(*encoding.RBF).Params()
		mustEqualFloats(t, "encoder base", baseB.Data, baseA.Data)
		mustEqualFloats(t, "encoder phase", phaseB, phaseA)

		if len(statsA.Iters) != len(statsB.Iters) {
			t.Fatalf("iteration count %d != %d", len(statsB.Iters), len(statsA.Iters))
		}
		for i := range statsA.Iters {
			if statsA.Iters[i] != statsB.Iters[i] {
				t.Fatalf("iter %d stats differ: %+v != %+v", i, statsB.Iters[i], statsA.Iters[i])
			}
		}
		if statsA.TotalRegenerated != statsB.TotalRegenerated ||
			statsA.EffectiveDim != statsB.EffectiveDim ||
			statsA.Converged != statsB.Converged {
			t.Fatalf("summary stats differ: %+v != %+v", statsB, statsA)
		}
	}
}

// TestPipelineStepMatchesRun checks the coarse drive (Step) against Run.
func TestPipelineStepMatchesRun(t *testing.T) {
	train, _ := toyData(t, 3)
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 6

	pA, err := NewPipeline(encoding.NewRBF(train.Features(), cfg.Dim, 5), train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clfA, _ := pA.Run()

	pB, err := NewPipeline(encoding.NewRBF(train.Features(), cfg.Dim, 5), train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !pB.Step() {
		steps++
	}
	clfB, _ := pB.Finish()
	if steps >= cfg.Iterations {
		t.Fatalf("Step reported done after %d steps for %d iterations", steps, cfg.Iterations)
	}
	mustEqualFloats(t, "class weights", clfB.Model.Weights.Data, clfA.Model.Weights.Data)
}

// TestPipelineStageOrder pins the stage machine: methods called out of
// order panic, and the stage accessor tracks the cycle.
func TestPipelineStageOrder(t *testing.T) {
	train, _ := toyData(t, 11)
	cfg := DefaultConfig()
	cfg.Dim = 32
	cfg.Iterations = 3
	p, err := NewPipeline(encoding.NewRBF(train.Features(), cfg.Dim, 1), train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stage() != StageEncode {
		t.Fatalf("fresh pipeline at stage %v", p.Stage())
	}
	mustPanic(t, "Adapt before Encode", func() { p.Adapt() })
	p.Encode()
	if p.Stage() != StageAdapt {
		t.Fatalf("after Encode at stage %v", p.Stage())
	}
	mustPanic(t, "Score before Adapt", func() { p.Score() })
	p.Adapt()
	if p.Stage() != StageScore {
		t.Fatalf("after Adapt at stage %v", p.Stage())
	}
	mustPanic(t, "Regenerate before Score", func() { p.Regenerate(DimStats{}) })
	ds := p.Score()
	if p.Stage() != StageRegenerate {
		t.Fatalf("after Score at stage %v", p.Stage())
	}
	p.Regenerate(ds)
	if p.Stage() != StageAdapt || p.Iteration() != 1 {
		t.Fatalf("after Regenerate at stage %v, iter %d", p.Stage(), p.Iteration())
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

// TestResumeWarmRetrains checks the warm-start path: Resume over a trained
// classifier keeps its weights (no cold re-initialization), accepts a new
// window, runs regeneration rounds, and the retrained model still
// classifies the original task.
func TestResumeWarmRetrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 8
	clf, _, train, test := trainToy(t, cfg, 2)
	before := clf.Accuracy(test.X, test.Y)

	// Warm-resume over a window of the training data with a short budget.
	wcfg := cfg
	wcfg.Iterations = 3
	n := train.N() / 2
	winX := mat.View(n, train.Features(), train.X.Data[:n*train.Features()])
	p, err := Resume(clf, winX, train.Y[:n], wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model() != clf.Model {
		t.Fatal("Resume must train the classifier's own model in place")
	}
	clf2, stats := p.Run()
	if clf2.Model != clf.Model {
		t.Fatal("warm retrain returned a different model object")
	}
	if len(stats.Iters) == 0 || len(stats.Iters) > wcfg.Iterations {
		t.Fatalf("warm retrain ran %d iterations, budget %d", len(stats.Iters), wcfg.Iterations)
	}
	after := clf2.Accuracy(test.X, test.Y)
	if after < before-0.10 {
		t.Fatalf("warm retrain collapsed accuracy: %.3f -> %.3f", before, after)
	}
}

// TestResumeValidates pins Resume's admission checks.
func TestResumeValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 3
	clf, _, train, _ := trainToy(t, cfg, 4)

	if _, err := Resume(nil, train.X, train.Y, cfg); err == nil {
		t.Fatal("nil classifier accepted")
	}
	bad := cfg
	bad.Dim = 32
	if _, err := Resume(clf, train.X, train.Y, bad); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Resume(clf, train.X, train.Y[:len(train.Y)-1], cfg); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	badY := make([]int, train.N())
	badY[0] = train.Classes
	if _, err := Resume(clf, train.X, badY, cfg); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

// TestCloneDetachedIsolates pins the clone contract behind background
// retraining: mutating the clone (training, regeneration) never changes the
// original's predictions or parameters.
func TestCloneDetachedIsolates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 4
	clf, _, train, test := trainToy(t, cfg, 9)
	wantW := append([]float64(nil), clf.Model.Weights.Data...)
	base, phase, _ := clf.Enc.(*encoding.RBF).Params()
	wantBase := append([]float64(nil), base.Data...)
	wantPhase := append([]float64(nil), phase...)
	before := clf.Accuracy(test.X, test.Y)

	dup := clf.CloneDetached(123)
	wcfg := cfg
	wcfg.Iterations = 3
	p, err := Resume(dup, train.X, train.Y, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Run()

	mustEqualFloats(t, "original weights", clf.Model.Weights.Data, wantW)
	base2, phase2, _ := clf.Enc.(*encoding.RBF).Params()
	mustEqualFloats(t, "original encoder base", base2.Data, wantBase)
	mustEqualFloats(t, "original encoder phase", phase2, wantPhase)
	if got := clf.Accuracy(test.X, test.Y); got != before {
		t.Fatalf("original accuracy moved %.4f -> %.4f after clone retrain", before, got)
	}
}
