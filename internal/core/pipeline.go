package core

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// PipelineStage identifies where a Pipeline is in its iteration cycle.
type PipelineStage int

const (
	// StageEncode: the raw batch has not been encoded yet.
	StageEncode PipelineStage = iota
	// StageAdapt: ready to run the adaptive-learning epochs of the current
	// iteration (Algorithm 1).
	StageAdapt
	// StageScore: adaptive epochs done; ready for top-2 bucketing and
	// dimension scoring (Algorithm 2).
	StageScore
	// StageRegenerate: dimensions scored; ready to regenerate the undesired
	// set and patch the encoded batch.
	StageRegenerate
	// StageDone: the iteration budget is exhausted or early stopping fired.
	StageDone
)

// String implements fmt.Stringer.
func (s PipelineStage) String() string {
	switch s {
	case StageEncode:
		return "encode"
	case StageAdapt:
		return "adapt"
	case StageScore:
		return "score"
	case StageRegenerate:
		return "regenerate"
	case StageDone:
		return "done"
	default:
		return "unknown"
	}
}

// Pipeline is the DistHD training loop decomposed into explicit,
// re-enterable stages — encode → adaptive epochs → top-2 bucketing/dim
// scoring → regenerate — with all loop state (iteration counter, early-stop
// and regeneration-freeze bookkeeping, the reusable model.Trainer) held in
// one resumable object. The same stages drive every training mode:
//
//   - One-shot training: Train is Run over a cold NewPipeline, and produces
//     bitwise-identical models to the historical monolith.
//   - Warm-start retraining: Resume wraps an already-trained Classifier and
//     reruns the regeneration stages over a new batch (the online-learning
//     retrain path behind disthd.OnlineLearner).
//   - Incremental/custom drives: callers may invoke the stage methods
//     directly — e.g. Score without Regenerate to audit dimension quality,
//     or extra Adapt rounds after the encoder froze.
//
// A Pipeline is single-goroutine; the model it trains is mutated in place
// (clone the Classifier first if the original must keep serving).
type Pipeline struct {
	enc     encoding.Regenerable
	m       *model.Model
	cfg     Config
	X       *mat.Dense
	y       []int
	H       *mat.Dense
	trainer *model.Trainer

	stage PipelineStage
	iter  int
	stats TrainStats
	cur   IterStats

	// Early-stopping and encoder-freeze bookkeeping (see Config.Patience
	// and Config.RegenPatience).
	best        float64
	stall       int
	regenBest   float64
	regenStall  int
	regenFrozen bool
}

// validateTrainInputs is the shared admission check for every pipeline
// construction path.
func validateTrainInputs(enc encoding.Regenerable, X *mat.Dense, y []int, classes int, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if X.Rows != len(y) {
		return fmt.Errorf("disthd: %d samples but %d labels", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return fmt.Errorf("disthd: empty training set")
	}
	if enc.Dim() != cfg.Dim {
		return fmt.Errorf("disthd: encoder dim %d != config dim %d", enc.Dim(), cfg.Dim)
	}
	if enc.Features() != X.Cols {
		return fmt.Errorf("disthd: encoder expects %d features, data has %d", enc.Features(), X.Cols)
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return fmt.Errorf("disthd: label %d at row %d outside [0,%d)", label, i, classes)
		}
	}
	return nil
}

// NewPipeline builds a cold-start pipeline: a zero-initialized model and a
// fresh trainer, positioned at the encode stage.
func NewPipeline(enc encoding.Regenerable, X *mat.Dense, y []int, classes int, cfg Config) (*Pipeline, error) {
	if err := validateTrainInputs(enc, X, y, classes, cfg); err != nil {
		return nil, err
	}
	m := model.New(classes, cfg.Dim)
	return newPipeline(enc, m, X, y, cfg), nil
}

// Resume builds a warm-start pipeline around an already-trained Classifier:
// the encoder and class weights are kept as-is and more train → score →
// regenerate rounds run over (X, y) — typically a recent window of labeled
// feedback. The Classifier's model and encoder are mutated in place; clone
// first (Classifier.CloneDetached) when the original must stay immutable,
// e.g. while it is being served.
func Resume(clf *Classifier, X *mat.Dense, y []int, cfg Config) (*Pipeline, error) {
	if clf == nil || clf.Model == nil || clf.Enc == nil {
		return nil, fmt.Errorf("disthd: Resume needs a trained classifier")
	}
	if cfg.Dim != clf.Model.Dim() {
		return nil, fmt.Errorf("disthd: config dim %d != classifier dim %d", cfg.Dim, clf.Model.Dim())
	}
	if err := validateTrainInputs(clf.Enc, X, y, clf.Model.Classes(), cfg); err != nil {
		return nil, err
	}
	return newPipeline(clf.Enc, clf.Model, X, y, cfg), nil
}

// newPipeline wires the shared pipeline state; inputs are pre-validated.
func newPipeline(enc encoding.Regenerable, m *model.Model, X *mat.Dense, y []int, cfg Config) *Pipeline {
	return &Pipeline{
		enc: enc,
		m:   m,
		cfg: cfg,
		X:   X,
		y:   y,
		// One Trainer across all iterations: the shuffle order, score
		// scratch, and RNG are reused, so the steady-state train/regenerate
		// loop allocates nothing beyond Algorithm 2's per-iteration
		// bookkeeping.
		trainer:   model.NewTrainer(m, cfg.Seed),
		stage:     StageEncode,
		best:      -1,
		regenBest: -1,
	}
}

// Stage returns the stage the pipeline will run next.
func (p *Pipeline) Stage() PipelineStage { return p.stage }

// Iteration returns the 0-based index of the current training iteration.
func (p *Pipeline) Iteration() int { return p.iter }

// Done reports whether the pipeline has finished (budget exhausted or early
// stopping fired).
func (p *Pipeline) Done() bool { return p.stage == StageDone }

// Model returns the model under training (live, mutated by Adapt and
// Regenerate).
func (p *Pipeline) Model() *model.Model { return p.m }

// Encoder returns the encoder under regeneration (live).
func (p *Pipeline) Encoder() encoding.Regenerable { return p.enc }

// mustBeAt panics when a stage method is called out of order — programmer
// error, matching the panic convention of the kernel layers.
func (p *Pipeline) mustBeAt(want PipelineStage, method string) {
	if p.stage != want {
		panic(fmt.Sprintf("disthd: Pipeline.%s called at stage %v, want %v", method, p.stage, want))
	}
}

// Encode runs the encode stage: the full raw batch becomes the encoded
// matrix H that every later stage reads and Regenerate patches in place.
func (p *Pipeline) Encode() {
	p.mustBeAt(StageEncode, "Encode")
	p.H = p.enc.EncodeBatch(p.X)
	p.stage = StageAdapt
}

// Adapt runs the adaptive-learning epochs of the current iteration
// (Algorithm 1) and returns the training accuracy of the final pass. It
// also performs the early-stop and encoder-freeze bookkeeping; when early
// stopping fires the iteration is sealed and the pipeline jumps straight to
// StageDone (a converged model is not perturbed by one final regeneration).
func (p *Pipeline) Adapt() float64 {
	p.mustBeAt(StageAdapt, "Adapt")
	tc := p.cfg.trainConfig(p.iter)
	p.trainer.Reseed(tc.Seed)
	var acc float64
	for e := 0; e < tc.Epochs; e++ {
		acc = p.trainer.Epoch(p.H, p.y, tc.LearningRate)
	}
	p.cur = IterStats{Iter: p.iter, TrainAcc: acc}

	// Early-stopping bookkeeping happens before regeneration so a converged
	// model is not perturbed by one final regeneration.
	if p.cfg.Patience > 0 {
		if acc > p.best+1e-9 {
			p.best = acc
			p.stall = 0
		} else {
			p.stall++
		}
		if p.stall >= p.cfg.Patience {
			p.stats.Iters = append(p.stats.Iters, p.cur)
			p.stats.Converged = true
			p.stage = StageDone
			return acc
		}
	}

	// Freeze the encoder once training accuracy plateaus (see
	// Config.RegenPatience).
	if p.cfg.RegenPatience > 0 && !p.regenFrozen {
		if acc > p.regenBest+1e-9 {
			p.regenBest = acc
			p.regenStall = 0
		} else {
			p.regenStall++
			if p.regenStall >= p.cfg.RegenPatience {
				p.regenFrozen = true
			}
		}
	}

	p.stage = StageScore
	return acc
}

// WillRegenerate reports whether the current iteration still regenerates
// dimensions: regeneration stops on the last iteration (the returned model
// must be trained under its final encoder) and once the encoder froze.
func (p *Pipeline) WillRegenerate() bool {
	return p.stage == StageScore && p.iter < p.cfg.Iterations-1 && !p.regenFrozen
}

// Score runs top-2 bucketing and Algorithm 2 dimension scoring over the
// encoded batch, recording the bucket census in the iteration's stats. Call
// only when WillRegenerate reports true (the monolithic loop never scored
// an iteration that could not regenerate); the undesired set feeds
// Regenerate.
func (p *Pipeline) Score() DimStats {
	p.mustBeAt(StageScore, "Score")
	ds := IdentifyUndesired(p.H, p.y, p.m, &p.cfg)
	p.cur.NumCorrect = ds.NumCorrect
	p.cur.NumPartial = ds.NumPartial
	p.cur.NumIncorrect = ds.NumIncorrect
	p.stage = StageRegenerate
	return ds
}

// SkipScore advances past the score and regenerate stages without touching
// the encoder — the path taken when WillRegenerate is false.
func (p *Pipeline) SkipScore() {
	p.mustBeAt(StageScore, "SkipScore")
	p.endIteration()
}

// Regenerate applies the regeneration stage for the undesired set produced
// by Score: redraw those encoder dimensions, patch exactly those columns of
// the encoded batch, zero the stale class weights at those coordinates, and
// (when Config.WarmStart is set) re-seed them from the class-conditional
// mean of the new columns. An empty undesired set is a no-op. The iteration
// is then sealed and the pipeline moves to the next one.
func (p *Pipeline) Regenerate(ds DimStats) {
	p.mustBeAt(StageRegenerate, "Regenerate")
	if len(ds.Undesired) > 0 {
		p.enc.Regenerate(ds.Undesired)
		p.enc.EncodeDimsBatch(p.X, ds.Undesired, p.H)
		p.m.ZeroDims(ds.Undesired)
		if p.cfg.WarmStart {
			warmStartDims(p.m, p.H, p.y, ds.Undesired)
		}
		p.cur.Regenerated = len(ds.Undesired)
		p.stats.TotalRegenerated += len(ds.Undesired)
	}
	p.endIteration()
}

// endIteration seals the current iteration's stats and advances the
// iteration counter, finishing the pipeline when the budget is exhausted.
func (p *Pipeline) endIteration() {
	p.stats.Iters = append(p.stats.Iters, p.cur)
	p.iter++
	if p.iter >= p.cfg.Iterations {
		p.stage = StageDone
	} else {
		p.stage = StageAdapt
	}
}

// Step advances the pipeline by one full training iteration (encoding first
// when needed) and reports whether the pipeline is done.
func (p *Pipeline) Step() bool {
	if p.stage == StageEncode {
		p.Encode()
	}
	if p.stage == StageDone {
		return true
	}
	p.Adapt()
	if p.stage == StageDone {
		return true
	}
	if p.WillRegenerate() {
		p.Regenerate(p.Score())
	} else {
		p.SkipScore()
	}
	return p.stage == StageDone
}

// Run drives the pipeline to completion and returns the trained Classifier
// with its stats, exactly like Train.
func (p *Pipeline) Run() (*Classifier, *TrainStats) {
	for !p.Step() {
	}
	return p.Finish()
}

// Finish seals the run statistics (the paper's effective dimensionality
// D* = D + total regenerated) and returns the trained Classifier. It may be
// called mid-run to snapshot a partially trained classifier; the returned
// objects share state with the pipeline until it is abandoned.
func (p *Pipeline) Finish() (*Classifier, *TrainStats) {
	p.stats.EffectiveDim = p.cfg.Dim + p.stats.TotalRegenerated
	return &Classifier{Enc: p.enc, Model: p.m, Cfg: p.cfg}, &p.stats
}
