package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/model"
)

// toyData generates a small nonlinear task where dynamic encoding has room
// to help at low dimensionality.
func toyData(t testing.TB, seed uint64) (train, test *dataset.Dataset) {
	t.Helper()
	spec := &dataset.Spec{
		Name: "toy", Features: 16, Classes: 4,
		Train: 400, Test: 150,
		Subclusters: 2, LatentDim: 5,
		CenterStd: 1.0, IntraStd: 0.4, Warp: 0.9, NoiseStd: 0.12,
		Seed: seed,
	}
	train, test, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dataset.NormalizePair(train, test)
	return train, test
}

func trainToy(t testing.TB, cfg Config, seed uint64) (*Classifier, *TrainStats, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test := toyData(t, seed)
	enc := encoding.NewRBF(train.Features(), cfg.Dim, seed^0xbeef)
	clf, stats, err := Train(enc, train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return clf, stats, train, test
}

func TestTrainLearns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 10
	clf, stats, _, test := trainToy(t, cfg, 1)
	acc := clf.Accuracy(test.X, test.Y)
	if acc < 0.8 {
		t.Fatalf("DistHD test accuracy %.3f too low", acc)
	}
	if stats.EffectiveDim < cfg.Dim {
		t.Fatalf("effective dim %d below physical dim", stats.EffectiveDim)
	}
	if len(stats.Iters) == 0 {
		t.Fatal("no iteration stats recorded")
	}
}

func TestTrainRegenerates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 8
	_, stats, _, _ := trainToy(t, cfg, 2)
	if stats.TotalRegenerated == 0 {
		t.Fatal("no dimensions regenerated on an imperfect task; dynamic encoding is dead")
	}
	if stats.EffectiveDim != cfg.Dim+stats.TotalRegenerated {
		t.Fatalf("effective dim bookkeeping wrong: %d != %d + %d",
			stats.EffectiveDim, cfg.Dim, stats.TotalRegenerated)
	}
}

// Non-inferiority against a float-model static encoder trained identically:
// the dynamic encoder's churn must not cost accuracy. (The paper's headline
// margins are against the weaker *bipolar* baselineHD of ref [6], which the
// experiments package asserts; against a float static model, DistHD is
// expected to be at worst comparable at equal D.)
func TestDistHDNotWorseThanStaticFloat(t *testing.T) {
	const d = 96
	cfg := DefaultConfig()
	cfg.Dim = d
	cfg.Iterations = 15
	clf, _, train, test := trainToy(t, cfg, 3)
	distAcc := clf.Accuracy(test.X, test.Y)

	// Static baseline: same encoder family, same seed, same total epochs,
	// but no regeneration.
	enc := encoding.NewRBF(train.Features(), d, 3^0xbeef)
	m := model.New(train.Classes, d)
	tc := model.TrainConfig{LearningRate: cfg.LearningRate, Epochs: cfg.Iterations, Seed: 1}
	if _, err := model.Fit(m, enc.EncodeBatch(train.X), train.Y, tc); err != nil {
		t.Fatal(err)
	}
	staticAcc := model.Accuracy(m, enc.EncodeBatch(test.X), test.Y)

	t.Logf("DistHD=%.4f static=%.4f at D=%d", distAcc, staticAcc, d)
	if distAcc < staticAcc-0.05 {
		t.Fatalf("DistHD (%.4f) lost badly to static float encoder (%.4f) at low D", distAcc, staticAcc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 5
	a, _, _, test := trainToy(t, cfg, 4)
	b, _, _, _ := trainToy(t, cfg, 4)
	pa := a.PredictBatch(test.X)
	pb := b.PredictBatch(test.X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("training is not deterministic")
		}
	}
	for i := range a.Model.Weights.Data {
		if a.Model.Weights.Data[i] != b.Model.Weights.Data[i] {
			t.Fatal("model weights differ across identical runs")
		}
	}
}

func TestTrainValidatesInputs(t *testing.T) {
	train, _ := toyData(t, 5)
	okCfg := DefaultConfig()
	okCfg.Dim = 64
	enc := encoding.NewRBF(train.Features(), 64, 1)

	// label count mismatch
	if _, _, err := Train(enc, train.X, train.Y[:10], train.Classes, okCfg); err == nil {
		t.Fatal("label mismatch accepted")
	}
	// encoder dim != config dim
	badDim := okCfg
	badDim.Dim = 128
	if _, _, err := Train(enc, train.X, train.Y, train.Classes, badDim); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	// out-of-range label
	yBad := make([]int, len(train.Y))
	copy(yBad, train.Y)
	yBad[0] = train.Classes
	if _, _, err := Train(enc, train.X, train.Y, train.Classes, okCfg); err != nil {
		t.Fatalf("valid call rejected: %v", err)
	}
	enc2 := encoding.NewRBF(train.Features(), 64, 1)
	if _, _, err := Train(enc2, train.X, yBad, train.Classes, okCfg); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.Theta = 0 },
		func(c *Config) { c.Theta = c.Beta }, // θ must be < β
		func(c *Config) { c.RegenRate = 1.5 },
		func(c *Config) { c.RegenRate = -0.1 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.EpochsPerIter = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d: invalid config accepted", i)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestEarlyStoppingConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 60
	cfg.Patience = 3
	_, stats, _, _ := trainToy(t, cfg, 6)
	if !stats.Converged && len(stats.Iters) == 60 {
		t.Log("note: no convergence within 60 iterations (acceptable on hard seeds)")
	}
	if stats.Converged && len(stats.Iters) >= 60 {
		t.Fatal("converged flag set but full budget used")
	}
}

func TestPredictConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 4
	clf, _, _, test := trainToy(t, cfg, 7)
	batch := clf.PredictBatch(test.X)
	for i := 0; i < 20; i++ {
		if single := clf.Predict(test.X.Row(i)); single != batch[i] {
			t.Fatalf("row %d: single %d != batch %d", i, single, batch[i])
		}
	}
	// Top2 first element must equal Predict.
	for i := 0; i < 20; i++ {
		p1, p2 := clf.PredictTop2(test.X.Row(i))
		if p1 != batch[i] {
			t.Fatalf("row %d: top2 first %d != predict %d", i, p1, batch[i])
		}
		if p1 == p2 {
			t.Fatal("top2 returned duplicate classes")
		}
	}
}

func TestScoresShapeAndBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 3
	clf, _, _, test := trainToy(t, cfg, 8)
	s := clf.Scores(test.X.Row(0))
	if len(s) != test.Classes {
		t.Fatalf("scores length %d, want %d", len(s), test.Classes)
	}
	for _, v := range s {
		if v < -1.000001 || v > 1.000001 {
			t.Fatalf("cosine score %v outside [-1,1]", v)
		}
	}
}

func TestTopKAccuracyOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 5
	clf, _, _, test := trainToy(t, cfg, 9)
	a1 := clf.TopKAccuracy(test.X, test.Y, 1)
	a2 := clf.TopKAccuracy(test.X, test.Y, 2)
	if a2 < a1 {
		t.Fatalf("top-2 accuracy %.4f below top-1 %.4f", a2, a1)
	}
}

// Regeneration must not destroy an already-good model: accuracy at the end
// of training should be at least roughly the best seen mid-training.
func TestRegenerationDoesNotDegrade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 12
	_, stats, _, _ := trainToy(t, cfg, 10)
	best := 0.0
	for _, it := range stats.Iters {
		if it.TrainAcc > best {
			best = it.TrainAcc
		}
	}
	final := stats.FinalTrainAcc()
	if final < best-0.1 {
		t.Fatalf("final train acc %.4f collapsed from best %.4f", final, best)
	}
}

func TestLinearEncoderWorksToo(t *testing.T) {
	train, test := toyData(t, 11)
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 8
	enc := encoding.NewLinear(train.Features(), cfg.Dim, false, 99)
	clf, _, err := Train(enc, train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := clf.Accuracy(test.X, test.Y); acc < 0.5 {
		t.Fatalf("DistHD over linear encoder accuracy %.3f suspiciously low", acc)
	}
}

func BenchmarkTrainD256(b *testing.B) {
	train, _ := toyData(b, 20)
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := encoding.NewRBF(train.Features(), cfg.Dim, uint64(i))
		if _, _, err := Train(enc, train.X, train.Y, train.Classes, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferD256(b *testing.B) {
	train, test := toyData(b, 21)
	cfg := DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 5
	enc := encoding.NewRBF(train.Features(), cfg.Dim, 1)
	clf, _, err := Train(enc, train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = clf.PredictBatch(test.X)
	}
}

func TestRegenPatienceFreezesEncoder(t *testing.T) {
	// With RegenPatience=1, regeneration must stop shortly after the
	// training accuracy plateaus; with patience disabled it keeps going.
	train, _ := toyData(t, 15)
	mk := func(patience int) *TrainStats {
		cfg := DefaultConfig()
		cfg.Dim = 128
		cfg.Iterations = 20
		cfg.RegenPatience = patience
		enc := encoding.NewRBF(train.Features(), cfg.Dim, 15^0xbeef)
		_, stats, err := Train(enc, train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	frozen := mk(1)
	free := mk(0)
	if frozen.TotalRegenerated >= free.TotalRegenerated {
		t.Fatalf("patience=1 regenerated %d dims, no-patience %d — freeze never engaged",
			frozen.TotalRegenerated, free.TotalRegenerated)
	}
	// After the freeze, later iterations must show zero regenerations.
	lastRegen := 0
	for _, it := range frozen.Iters {
		if it.Regenerated > 0 {
			lastRegen = it.Iter
		}
	}
	if lastRegen >= len(frozen.Iters)-1 && len(frozen.Iters) > 3 {
		t.Fatalf("regeneration continued to the end despite patience: last at iter %d of %d",
			lastRegen, len(frozen.Iters))
	}
}

func TestWarmStartSeedsRegeneratedDims(t *testing.T) {
	train, test := toyData(t, 16)
	accWith := func(warm bool) float64 {
		cfg := DefaultConfig()
		cfg.Dim = 96
		cfg.Iterations = 12
		cfg.WarmStart = warm
		enc := encoding.NewRBF(train.Features(), cfg.Dim, 16^0xbeef)
		clf, _, err := Train(enc, train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return clf.Accuracy(test.X, test.Y)
	}
	warm := accWith(true)
	cold := accWith(false)
	t.Logf("warm=%.4f cold=%.4f", warm, cold)
	// Warm start shouldn't be dramatically worse; (it usually helps).
	if warm < cold-0.08 {
		t.Fatalf("warm start hurt badly: %.3f vs %.3f", warm, cold)
	}
}

func TestUpdateOnlineStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 3
	clf, _, train, test := trainToy(t, cfg, 17)
	// Feed a misclassified test sample repeatedly; the model must learn it.
	var wrongIdx int = -1
	for i := 0; i < test.N(); i++ {
		if clf.Predict(test.X.Row(i)) != test.Y[i] {
			wrongIdx = i
			break
		}
	}
	if wrongIdx < 0 {
		t.Skip("no misclassified test sample at this seed")
	}
	x := test.X.Row(wrongIdx)
	label := test.Y[wrongIdx]
	for step := 0; step < 50; step++ {
		if clf.Update(x, label, 0.2) {
			break
		}
	}
	if clf.Predict(x) != label {
		t.Fatal("50 online updates failed to absorb one sample")
	}
	_ = train
}
