package mat

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// benchDense returns a deterministic rows×cols matrix of N(0,1) draws.
func benchDense(rows, cols int, seed uint64) *Dense {
	m := New(rows, cols)
	rng.New(seed).FillNorm(m.Data, 0, 1)
	return m
}

// BenchmarkDot measures the scalar dot-product kernel at HDC dimension.
func BenchmarkDot(b *testing.B) {
	a := benchDense(1, 2048, 1).Row(0)
	c := benchDense(1, 2048, 2).Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(a, c)
	}
	_ = sink
}

// BenchmarkMulT measures C = A·Bᵀ at the similarity-search shape: a batch
// of encoded samples against a small set of class hypervectors, with the
// hypervector dimensionality D as the inner dimension.
func BenchmarkMulT(b *testing.B) {
	for _, d := range []int{256, 2048} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			a := benchDense(128, d, 1)
			bm := benchDense(32, d, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulT(a, bm)
			}
		})
	}
}

// BenchmarkColSums measures the column reduction used on the Fit path.
func BenchmarkColSums(b *testing.B) {
	m := benchDense(512, 2048, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ColSums()
	}
}

// BenchmarkArgTopK measures top-k selection at the Algorithm 2 shape:
// k = 10% of D dimensions nominated for regeneration.
func BenchmarkArgTopK(b *testing.B) {
	for _, d := range []int{256, 2048} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			x := benchDense(1, d, 1).Row(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ArgTopK(x, d/10)
			}
		})
	}
}

// BenchmarkMulTInto measures the destination-passing kernel: identical work
// to BenchmarkMulT minus the result allocation (0 allocs/op in steady
// state).
func BenchmarkMulTInto(b *testing.B) {
	for _, d := range []int{256, 2048} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			a := benchDense(128, d, 1)
			bm := benchDense(32, d, 2)
			dst := New(128, 32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulTInto(dst, a, bm)
			}
		})
	}
}

// BenchmarkDotBatch measures the 4-wide micro-kernel against the same
// per-pass work as four BenchmarkDot iterations.
func BenchmarkDotBatch(b *testing.B) {
	rows := benchDense(4, 2048, 1)
	a := benchDense(1, 2048, 2).Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		s0, s1, s2, s3 := DotBatch(a, rows.Row(0), rows.Row(1), rows.Row(2), rows.Row(3))
		sink += s0 + s1 + s2 + s3
	}
	_ = sink
}
