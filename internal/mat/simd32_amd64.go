package mat

// This file gates the float32 FMA assembly tiers (simd32_amd64.s) behind
// the packed encode path. The assembly computes exactly the 16-lane
// float32 FMA accumulation the pure-Go kernels in f32.go define (fma32
// is an exact emulation of the hardware single-precision FMA), so
// enabling a tier changes speed, never bits.

import "sync/atomic"

// f32 ISA dispatch tiers, lowest to highest. f32ISA holds the active
// level and is lowered only by tests exercising fallback parity.
const (
	f32Generic int32 = iota
	f32AVX2          // 8-wide VFMADD231PS, two YMM accumulators per output
	f32AVX512        // 16-wide VFMADD231PS, masked tails via opmask registers
)

// f32Best is the highest tier the host CPU + OS support.
var f32Best = detectF32ISA()

// f32ISA is the active dispatch tier. Atomic so tests can force fallback
// tiers while -race parity checks run concurrently.
var f32ISA atomic.Int32

func init() { f32ISA.Store(f32Best) }

// setF32ISA forces the dispatch tier (tests only), clamped to f32Best.
// Returns the previous tier so callers can restore it.
func setF32ISA(level int32) int32 {
	if level > f32Best {
		level = f32Best
	}
	return f32ISA.Swap(level)
}

// f32TailMasks holds the VMASKMOVPS masks for the AVX2 tier's tails of
// 1..15 elements: row t-1 opens the first t of 16 int32 lanes.
var f32TailMasks = func() (m [240]int32) {
	for t := 1; t <= 15; t++ {
		for i := 0; i < t; i++ {
			m[(t-1)*16+i] = -1
		}
	}
	return
}()

// dotBatch4F32AVX512 is the complete AVX-512 1×4 micro-kernel: groups
// full 16-element FMA steps of a against four B rows, an opmask-gated
// partial step for tail (0..15) further elements, and the laneSum32
// reduction into out.
//
//go:noescape
func dotBatch4F32AVX512(a, b0, b1, b2, b3 *float32, groups, tail int, out *[4]float32)

// dot2x4F32AVX512 is the complete AVX-512 2×4 register tile (two A rows,
// four B rows, eight finished dots in out).
//
//go:noescape
func dot2x4F32AVX512(a0, a1, b0, b1, b2, b3 *float32, groups, tail int, out *[8]float32)

// dotBatch4F32AVX2 is the AVX2 1×4 micro-kernel under the same contract,
// with each 16-lane accumulator split across two YMM registers and the
// tail loaded through VMASKMOVPS masks.
//
//go:noescape
func dotBatch4F32AVX2(a, b0, b1, b2, b3 *float32, groups, tail int, masks *[240]int32, out *[4]float32)

// detectF32ISA probes CPUID leaves 1 and 7 plus XCR0 and returns the
// best f32 kernel tier: AVX-512 needs AVX512F and OS-saved ZMM/opmask
// state; AVX2 needs AVX2 + FMA and OS-saved YMM state.
func detectF32ISA() int32 {
	const (
		fmaBit     = 1 << 12 // leaf 1 ECX
		osxsaveBit = 1 << 27 // leaf 1 ECX
		avxBit     = 1 << 28 // leaf 1 ECX
		avx2Bit    = 1 << 5  // leaf 7 EBX
		avx512fBit = 1 << 16 // leaf 7 EBX
		ymmState   = 0x6     // XCR0: XMM+YMM
		zmmState   = 0xe6    // XCR0: XMM+YMM+opmask+ZMM hi/lo
	)
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return f32Generic
	}
	_, _, c1, _ := cpuid(1, 0)
	if c1&(osxsaveBit|avxBit) != osxsaveBit|avxBit {
		return f32Generic
	}
	xcr0, _ := xgetbv()
	_, b7, _, _ := cpuid(7, 0)
	if xcr0&zmmState == zmmState && b7&avx512fBit != 0 {
		return f32AVX512
	}
	if xcr0&ymmState == ymmState && b7&avx2Bit != 0 && c1&fmaBit != 0 {
		return f32AVX2
	}
	return f32Generic
}
