package mat

// This file gates the AVX2+FMA assembly micro-kernels (simd_amd64.s). The
// assembly computes exactly the 4-lane FMA accumulation the pure-Go lane
// kernels in kernels.go define, so enabling it changes speed, never bits;
// machines without AVX2 (or other architectures) run the Go kernels and
// produce identical results.

// laneMasks holds the VMASKMOVPD masks for tails of 1, 2 and 3 elements
// (rows of 4 lanes; all-ones opens a lane).
var laneMasks = [12]int64{
	-1, 0, 0, 0,
	-1, -1, 0, 0,
	-1, -1, -1, 0,
}

// dotBatch4AVX is the complete 1×4 micro-kernel: groups full 4-element
// FMA steps of a against four B rows, a masked partial step for tail
// (0..3) further elements, and the laneSum reduction into out.
//
//go:noescape
func dotBatch4AVX(a, b0, b1, b2, b3 *float64, groups, tail int, masks *[12]int64, out *[4]float64)

// dot2x4AVX is the complete 2×4 register tile (two A rows, four B rows,
// eight finished dots in out).
//
//go:noescape
func dot2x4AVX(a0, a1, b0, b1, b2, b3 *float64, groups, tail int, masks *[12]int64, out *[8]float64)

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// useFMAKernels reports whether the assembly kernels are usable: the CPU
// must have AVX2 and FMA, and the OS must save the YMM state.
var useFMAKernels = detectFMAKernels()

// detectFMAKernels probes CPUID leaves 1 and 7 plus XCR0.
func detectFMAKernels() bool {
	const (
		fmaBit     = 1 << 12 // leaf 1 ECX
		osxsaveBit = 1 << 27 // leaf 1 ECX
		avxBit     = 1 << 28 // leaf 1 ECX
		avx2Bit    = 1 << 5  // leaf 7 EBX
		ymmState   = 0x6     // XCR0 bits 1 (XMM) and 2 (YMM)
	)
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	if c&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	if eax, _ := xgetbv(); eax&ymmState != ymmState {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&avx2Bit != 0
}
