package mat

import (
	"runtime"
	"sync"
)

// This file provides the two pooling mechanisms the hot paths are built on:
//
//   - a persistent goroutine worker pool behind ParallelFor, so shard fan-out
//     costs a channel send instead of a goroutine spawn, and
//   - a sync.Pool of reusable float64 scratch buffers, so per-shard and
//     per-call temporaries do not allocate in steady state.

// pfTask is one contiguous shard of a ParallelFor loop. done receives one
// value when the shard finishes; it belongs to the ParallelFor call that
// submitted the shard.
type pfTask struct {
	body   func(lo, hi int)
	lo, hi int
	done   chan struct{}
}

var (
	pfOnce  sync.Once
	pfTasks chan pfTask
)

// startPool launches the persistent workers, one per available CPU at first
// use. GOMAXPROCS changes after that point affect shard counts but not the
// pool size; the inline-fallback in ParallelFor keeps correctness either way.
func startPool() {
	w := runtime.GOMAXPROCS(0)
	pfTasks = make(chan pfTask, 8*w)
	for i := 0; i < w; i++ {
		go func() {
			for t := range pfTasks {
				t.body(t.lo, t.hi)
				t.done <- struct{}{}
			}
		}()
	}
}

// Serial reports whether ParallelFor would run entirely inline (only one
// available CPU). Hot paths branch on it to skip constructing the shard
// closure — a heap allocation — when fan-out cannot help; that is what
// keeps the steady-state Into kernels at zero allocations on single-core
// machines.
func Serial() bool { return runtime.GOMAXPROCS(0) <= 1 }

// ParallelFor splits [0, n) into contiguous shards, one per available CPU,
// and runs body on each shard concurrently on a persistent worker pool.
// With GOMAXPROCS=1 it simply calls body(0, n) inline, so single-core
// machines pay no overhead. The final shard always runs on the calling
// goroutine, a full queue degrades to inline execution, and while waiting
// for its own shards the caller steals and runs queued tasks — so nested
// or concurrent ParallelFor calls make progress even with every worker
// busy, instead of deadlocking.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	pfOnce.Do(startPool)
	chunk := (n + workers - 1) / workers
	shards := (n + chunk - 1) / chunk
	done := make(chan struct{}, shards)
	submitted := 0
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		select {
		case pfTasks <- pfTask{body: body, lo: lo, hi: lo + chunk, done: done}:
			submitted++
		default:
			// Queue full: run the shard inline rather than block.
			body(lo, lo+chunk)
		}
	}
	body(lo, n)
	// Wait for the submitted shards, working off other queued tasks in the
	// meantime. A stolen task signals its own submitter via its done
	// channel, so cross-call stealing is safe; it is what guarantees
	// system-wide progress when all workers are blocked waiting on nested
	// ParallelFor calls.
	for submitted > 0 {
		select {
		case <-done:
			submitted--
		case t := <-pfTasks:
			t.body(t.lo, t.hi)
			t.done <- struct{}{}
		}
	}
}

// Scratch is a pooled float64 buffer. Obtain one with GetScratch, use Buf,
// and return it with Release. Contents on Get are arbitrary garbage from a
// previous user; callers must overwrite (or use GetScratchZeroed).
type Scratch struct {
	Buf []float64
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a pooled scratch buffer with Buf of length n and
// unspecified contents.
func GetScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	if cap(s.Buf) < n {
		s.Buf = make([]float64, n)
	}
	s.Buf = s.Buf[:n]
	return s
}

// GetScratchZeroed returns a pooled scratch buffer with Buf of length n,
// all zeros.
func GetScratchZeroed(n int) *Scratch {
	s := GetScratch(n)
	for i := range s.Buf {
		s.Buf[i] = 0
	}
	return s
}

// Release returns the buffer to the pool. The caller must not touch Buf
// afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }
