//go:build !amd64

package mat

// Non-amd64 builds run the pure-Go lane kernels in kernels.go, which
// produce bit-identical results to the assembly (see simd_amd64.go).

// useFMAKernels is always false without the assembly kernels.
var useFMAKernels = false

// laneMasks is unused without the assembly kernels.
var laneMasks [12]int64

// dotBatch4AVX is unreachable when useFMAKernels is false.
func dotBatch4AVX(a, b0, b1, b2, b3 *float64, groups, tail int, masks *[12]int64, out *[4]float64) {
	panic("mat: SIMD kernel called on non-amd64 build")
}

// dot2x4AVX is unreachable when useFMAKernels is false.
func dot2x4AVX(a0, a1, b0, b1, b2, b3 *float64, groups, tail int, masks *[12]int64, out *[8]float64) {
	panic("mat: SIMD kernel called on non-amd64 build")
}
