package mat

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) has wrong shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix not zeroed")
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.Row(0)[0] != 9 {
		t.Fatal("Set/Row view mismatch")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := New(2, 3)
	r := m.Row(1)
	r[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row must be a zero-copy view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7}
	b := []float64{7, 6, 5, 4, 3, 2, 1}
	// 7+12+15+16+15+12+7 = 84
	if got := Dot(a, b); got != 84 {
		t.Fatalf("Dot = %v, want 84", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 1, 1}
	Axpy(dst, 2, []float64{1, 2, 3})
	want := []float64{3, 5, 7}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", dst, want)
		}
	}
}

func TestNorm2AndNormalize(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v, want 5", Norm2(x))
	}
	n := Normalize(x)
	if n != 5 || !almostEq(Norm2(x), 1, 1e-12) {
		t.Fatalf("Normalize returned %v, new norm %v", n, Norm2(x))
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float64{1, 0}, []float64{1, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("cos of identical = %v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("cos of orthogonal = %v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{-1, 0}); !almostEq(got, -1, 1e-12) {
		t.Fatalf("cos of opposite = %v", got)
	}
	if got := CosineSim([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Fatalf("cos with zero vector = %v, want 0", got)
	}
}

func TestAbsDiff(t *testing.T) {
	dst := make([]float64, 3)
	AbsDiff(dst, []float64{1, -2, 3}, []float64{4, 2, 3})
	want := []float64{3, 4, 0}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("AbsDiff = %v, want %v", dst, want)
		}
	}
}

func TestColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.ColSums()
	want := []float64{5, 7, 9}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ColSums = %v, want %v", got, want)
		}
	}
}

func TestRowNormalizeL2(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, 0}, {5, 12}})
	m.RowNormalizeL2()
	if !almostEq(Norm2(m.Row(0)), 1, 1e-12) || !almostEq(Norm2(m.Row(2)), 1, 1e-12) {
		t.Fatal("rows not unit-normalized")
	}
	if Norm2(m.Row(1)) != 0 {
		t.Fatal("zero row should stay zero")
	}
}

func TestMulTSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})         // 2x2
	b := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}}) // 3x2
	c := MulT(a, b)                                    // 2x3
	want := [][]float64{{1, 2, 3}, {3, 4, 7}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MulT(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulMatchesMulT(t *testing.T) {
	r := rng.New(1)
	a := New(13, 7)
	b := New(7, 9)
	r.FillNorm(a.Data, 0, 1)
	r.FillNorm(b.Data, 0, 1)
	// Build bT (9x7) so MulT(a, bT) == Mul(a, b).
	bT := New(b.Cols, b.Rows)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bT.Set(j, i, b.At(i, j))
		}
	}
	c1 := Mul(a, b)
	c2 := MulT(a, bT)
	for i := range c1.Data {
		if !almostEq(c1.Data[i], c2.Data[i], 1e-9) {
			t.Fatalf("Mul and MulT disagree at %d: %v vs %v", i, c1.Data[i], c2.Data[i])
		}
	}
}

func TestMulTDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulT mismatch did not panic")
		}
	}()
	MulT(New(2, 3), New(2, 4))
}

func TestParallelForCoversRange(t *testing.T) {
	hit := make([]bool, 100)
	ParallelFor(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i] = true
		}
	})
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestParallelForZero(t *testing.T) {
	called := false
	ParallelFor(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n=0")
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	// first on ties
	if got := ArgMax([]float64{5, 5, 3}); got != 0 {
		t.Fatalf("ArgMax tie = %d, want 0", got)
	}
}

func TestArgTop2(t *testing.T) {
	i1, i2 := ArgTop2([]float64{0.1, 0.9, 0.5, 0.7})
	if i1 != 1 || i2 != 3 {
		t.Fatalf("ArgTop2 = (%d,%d), want (1,3)", i1, i2)
	}
	i1, i2 = ArgTop2([]float64{2, 1})
	if i1 != 0 || i2 != 1 {
		t.Fatalf("ArgTop2 = (%d,%d), want (0,1)", i1, i2)
	}
}

func TestArgTopK(t *testing.T) {
	x := []float64{0.2, 0.9, 0.1, 0.7, 0.5}
	got := ArgTopK(x, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgTopK = %v, want %v", got, want)
		}
	}
	if got := ArgTopK(x, 99); len(got) != len(x) {
		t.Fatal("ArgTopK should clamp k")
	}
	if got := ArgTopK(x, 0); got != nil {
		t.Fatal("ArgTopK(x,0) should be nil")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	x := []float64{2, 4, 6}
	MinMaxNormalize(x)
	want := []float64{0, 0.5, 1}
	for i := range x {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Fatalf("MinMaxNormalize = %v, want %v", x, want)
		}
	}
	c := []float64{3, 3}
	MinMaxNormalize(c)
	if c[0] != 0 || c[1] != 0 {
		t.Fatal("constant vector should normalize to zeros")
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if Mean(x) != 2.5 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if !almostEq(Variance(x), 1.25, 1e-12) {
		t.Fatalf("Variance = %v, want 1.25", Variance(x))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate Mean/Variance should be 0")
	}
}

// Property: ArgTop2 agrees with ArgTopK(…, 2) on arbitrary inputs.
func TestArgTop2MatchesTopK(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%30) + 2
		r := rng.New(seed)
		x := make([]float64, m)
		for i := range x {
			// Integer-valued entries exercise tie handling.
			x[i] = float64(r.Intn(5))
		}
		i1, i2 := ArgTop2(x)
		top := ArgTopK(x, 2)
		return x[i1] == x[top[0]] && x[i2] == x[top[1]]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cosine similarity is bounded in [-1, 1].
func TestCosineBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]float64, 16)
		b := make([]float64, 16)
		r.FillNorm(a, 0, 1)
		r.FillNorm(b, 0, 1)
		c := CosineSim(a, b)
		return c >= -1-1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalization is idempotent up to float tolerance.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := make([]float64, 8)
		r.FillNorm(x, 0, 3)
		Normalize(x)
		n1 := Norm2(x)
		Normalize(x)
		n2 := Norm2(x)
		if n1 == 0 {
			return n2 == 0
		}
		return almostEq(n1, 1, 1e-9) && almostEq(n2, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot1024(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1024)
	y := make([]float64, 1024)
	r.FillNorm(x, 0, 1)
	r.FillNorm(y, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkMulT128x64x512(b *testing.B) {
	r := rng.New(2)
	a := New(128, 64)
	bb := New(512, 64)
	r.FillNorm(a.Data, 0, 1)
	r.FillNorm(bb.Data, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulT(a, bb)
	}
}

func TestFillAndCopyFrom(t *testing.T) {
	m := New(2, 3)
	m.Fill(7)
	for _, v := range m.Data {
		if v != 7 {
			t.Fatal("Fill missed an element")
		}
	}
	dst := New(2, 3)
	dst.CopyFrom(m)
	for _, v := range dst.Data {
		if v != 7 {
			t.Fatal("CopyFrom missed an element")
		}
	}
	// shape mismatch panics
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom shape mismatch did not panic")
		}
	}()
	dst.CopyFrom(New(3, 2))
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatal("empty FromRows should be 0x0")
	}
}

func TestAxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Axpy mismatch did not panic")
		}
	}()
	Axpy([]float64{1}, 1, []float64{1, 2})
}

func TestAbsDiffMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AbsDiff mismatch did not panic")
		}
	}()
	AbsDiff(make([]float64, 2), []float64{1}, []float64{1, 2})
}

func TestMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul mismatch did not panic")
		}
	}()
	Mul(New(2, 3), New(4, 2))
}

func TestArgMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ArgMax did not panic")
		}
	}()
	ArgMax(nil)
}

func TestArgTop2ShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short ArgTop2 did not panic")
		}
	}()
	ArgTop2([]float64{1})
}

// ParallelFor must also behave with GOMAXPROCS > 1 semantics: exercise the
// multi-worker path explicitly by restoring afterwards.
func TestParallelForMultiWorker(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var mu sync.Mutex
	hit := make([]bool, 257) // odd size to force uneven shards
	ParallelFor(len(hit), func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			if hit[i] {
				t.Error("index covered twice")
			}
			hit[i] = true
		}
	})
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestMinMaxNormalizeEmpty(t *testing.T) {
	MinMaxNormalize(nil) // must not panic
}
