// Package mat implements the dense linear-algebra substrate used by every
// learner in this repository: row-major float64 matrices, cache-blocked and
// goroutine-parallel matrix products, and the handful of vector kernels
// (dot, axpy, norms, column reductions, top-k selection) that dominate HDC
// encoding and similarity search.
//
// The package deliberately stays small and allocation-conscious rather than
// general: matrices are plain row-major slices, rows are exposed as
// zero-copy views, and hot-path dimension mismatches panic (they are
// programmer errors, not runtime conditions).
package mat

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Dense is a row-major matrix. The zero value is an empty matrix; use New
// or FromRows to construct a usable one.
type Dense struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (i,j) is Data[i*Cols+j].
	Data []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged input, row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a zero-copy view of row i.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	// 4-way unrolled accumulation; measurably faster than the naive loop on
	// the long (D >= 512) vectors HDC uses, without resorting to assembly.
	n := len(a)
	i := 0
	var s0, s1, s2, s3 float64
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s + s0 + s1 + s2 + s3
}

// Axpy computes dst += alpha * x element-wise.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(x, 1/n)
	return n
}

// CosineSim returns the cosine similarity of a and b, or 0 if either has
// zero norm.
func CosineSim(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// AbsDiff writes |a[i]-b[i]| into dst.
func AbsDiff(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("mat: AbsDiff length mismatch")
	}
	for i := range a {
		dst[i] = math.Abs(a[i] - b[i])
	}
}

// ColSums returns the 1×Cols vector of column sums of m.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// RowNormalizeL2 scales each row of m to unit Euclidean norm in place.
// Zero rows are left untouched.
func (m *Dense) RowNormalizeL2() {
	for i := 0; i < m.Rows; i++ {
		Normalize(m.Row(i))
	}
}

// MulT computes C = A · Bᵀ where A is n×q and B is d×q, producing n×d.
// This is the natural layout for HDC encoding (each base hypervector is a
// row of B) and for batched similarity against class vectors. Rows of the
// output are computed in parallel across GOMAXPROCS workers.
func MulT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT inner dimension mismatch %d vs %d", a.Cols, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	ParallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			ci := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				ci[j] = Dot(ai, b.Row(j))
			}
		}
	})
	return c
}

// Mul computes the ordinary product C = A · B with A n×k and B k×m.
// It uses an ikj loop order so the inner loop streams both B and C rows.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %d vs %d", a.Cols, b.Rows))
	}
	c := New(a.Rows, b.Cols)
	ParallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			ci := c.Row(i)
			for k := 0; k < a.Cols; k++ {
				aik := ai[k]
				if aik == 0 {
					continue
				}
				bk := b.Row(k)
				Axpy(ci, aik, bk)
			}
		}
	})
	return c
}

// ParallelFor splits [0, n) into contiguous shards, one per available CPU,
// and runs body on each shard concurrently. With GOMAXPROCS=1 it simply
// calls body(0, n) inline, so single-core machines pay no overhead.
func ParallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ArgMax returns the index of the largest element of x (first on ties).
// It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mat: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgTop2 returns the indices of the two largest elements of x
// (first, second). It panics if len(x) < 2.
func ArgTop2(x []float64) (int, int) {
	if len(x) < 2 {
		panic("mat: ArgTop2 needs at least 2 elements")
	}
	i1, i2 := 0, 1
	if x[i2] > x[i1] {
		i1, i2 = i2, i1
	}
	for i := 2; i < len(x); i++ {
		switch {
		case x[i] > x[i1]:
			i2 = i1
			i1 = i
		case x[i] > x[i2]:
			i2 = i
		}
	}
	return i1, i2
}

// ArgTopK returns the indices of the k largest elements of x in descending
// value order. k is clamped to len(x).
func ArgTopK(x []float64, k int) []int {
	if k > len(x) {
		k = len(x)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	// Full sort is O(D log D) with tiny constants; D <= a few thousand in
	// every caller, so a selection algorithm is not worth the complexity.
	sort.Slice(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// MinMaxNormalize rescales x in place to [0, 1]. A constant vector becomes
// all zeros.
func MinMaxNormalize(x []float64) {
	if len(x) == 0 {
		return
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	for i := range x {
		x[i] = (x[i] - lo) / span
	}
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (0 for len < 2).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}
