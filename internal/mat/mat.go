// Package mat implements the dense linear-algebra substrate used by every
// learner in this repository: row-major float64 matrices, cache-blocked and
// register-tiled matrix kernels, a persistent worker pool, and the handful
// of vector kernels (dot, axpy, norms, column reductions, top-k selection)
// that dominate HDC encoding and similarity search.
//
// The kernel layer is built around destination-passing "Into" variants so
// hot loops can reuse buffers and allocate nothing in steady state:
//
//   - MulTInto(dst, A, B) computes A·Bᵀ — the shape of both HDC hot paths
//     (batch encoding and batched similarity) — cache-blocked over the
//     shared dimension (kernelKC-column panels sized to L1) and
//     register-tiled 2×4 via the DotBatch/dot2x4 micro-kernels, which
//     compute four output columns per pass over a row.
//   - MulInto(dst, A, B) is the ordinary product in ikj order.
//   - ParallelFor shards loops over a persistent goroutine worker pool
//     (see pool.go); GetScratch provides pooled temporaries.
//
// MulT and Mul are thin allocating wrappers over the Into variants. The
// package deliberately stays small and allocation-conscious rather than
// general: matrices are plain row-major slices, rows are exposed as
// zero-copy views, and hot-path dimension mismatches panic (they are
// programmer errors, not runtime conditions).
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix. The zero value is an empty matrix; use New
// or FromRows to construct a usable one.
type Dense struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (i,j) is Data[i*Cols+j].
	Data []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// View wraps an existing slice as a rows×cols matrix without copying,
// panicking unless len(data) is exactly rows*cols. Use it for scratch-pool
// views so a mismatched size fails at the construction site instead of as
// an out-of-range panic deep inside a kernel.
func View(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: View %dx%d over %d elements", rows, cols, len(data)))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged input, row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a zero-copy view of row i.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	// 4-way unrolled accumulation; measurably faster than the naive loop on
	// the long (D >= 512) vectors HDC uses, without resorting to assembly.
	n := len(a)
	i := 0
	var s0, s1, s2, s3 float64
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s + s0 + s1 + s2 + s3
}

// Axpy computes dst += alpha * x element-wise.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(x, 1/n)
	return n
}

// CosineSim returns the cosine similarity of a and b, or 0 if either has
// zero norm.
func CosineSim(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// AbsDiff writes |a[i]-b[i]| into dst.
func AbsDiff(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("mat: AbsDiff length mismatch")
	}
	for i := range a {
		dst[i] = math.Abs(a[i] - b[i])
	}
}

// ColSums returns the 1×Cols vector of column sums of m.
func (m *Dense) ColSums() []float64 {
	return m.ColSumsInto(make([]float64, m.Cols))
}

// ReduceChunk is the fixed shard height of ChunkedColReduce. A
// machine-independent chunk (rather than n/GOMAXPROCS) fixes the
// partial-sum boundaries and merge order, so chunked reductions are
// bitwise identical on every machine — the same determinism contract the
// matrix kernels keep.
const ReduceChunk = 128

// ChunkSpan returns the index range [lo, hi) that chunk c of a
// ChunkedColReduce over n items covers.
func ChunkSpan(c, n int) (lo, hi int) {
	lo = c * ReduceChunk
	hi = lo + ReduceChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ChunkedColReduce runs a deterministic parallel column reduction over n
// items: the range [0, n) is split into ReduceChunk-sized chunks,
// accumulate(c, p) adds chunk c's contribution (the items of ChunkSpan(c,
// n)) into the width-wide partial p, and partials merge in chunk order.
// The chunked structure is used even when running serially, so every
// low-order bit of the result is identical whatever the core count.
// accumulate must be safe to call concurrently for different chunks.
func ChunkedColReduce(n, width int, out []float64, accumulate func(chunk int, p []float64)) []float64 {
	if len(out) != width {
		panic("mat: ChunkedColReduce output length mismatch")
	}
	for j := range out {
		out[j] = 0
	}
	if n <= 0 || width == 0 {
		return out
	}
	if n <= ReduceChunk {
		accumulate(0, out)
		return out
	}
	chunks := (n + ReduceChunk - 1) / ReduceChunk
	partial := GetScratchZeroed(chunks * width)
	if Serial() {
		for c := 0; c < chunks; c++ {
			accumulate(c, partial.Buf[c*width:(c+1)*width])
		}
	} else {
		ParallelFor(chunks, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				accumulate(c, partial.Buf[c*width:(c+1)*width])
			}
		})
	}
	for c := 0; c < chunks; c++ {
		for j, v := range partial.Buf[c*width : (c+1)*width] {
			out[j] += v
		}
	}
	partial.Release()
	return out
}

// ColSumsInto writes the column sums of m into out (len m.Cols) and
// returns it, as a chunked parallel reduction (see ChunkedColReduce).
func (m *Dense) ColSumsInto(out []float64) []float64 {
	return ChunkedColReduce(m.Rows, m.Cols, out, func(c int, p []float64) {
		lo, hi := ChunkSpan(c, m.Rows)
		for i := lo; i < hi; i++ {
			for j, v := range m.Row(i) {
				p[j] += v
			}
		}
	})
}

// RowNormalizeL2 scales each row of m to unit Euclidean norm in place.
// Zero rows are left untouched.
func (m *Dense) RowNormalizeL2() {
	for i := 0; i < m.Rows; i++ {
		Normalize(m.Row(i))
	}
}

// MinMaxNormalize rescales x in place to [0, 1]. A constant vector becomes
// all zeros.
func MinMaxNormalize(x []float64) {
	if len(x) == 0 {
		return
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	for i := range x {
		x[i] = (x[i] - lo) / span
	}
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (0 for len < 2).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}
