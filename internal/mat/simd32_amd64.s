// Float32 FMA micro-kernels for the packed-encode projection GEMM. Each
// kernel accumulates 16 strided single-precision FMA lanes per output
// element — one ZMM accumulator on the AVX-512 tier, two YMM on AVX2 —
// handles the sub-group tail with a masked partial step, and finishes
// with the laneSum32 horizontal reduction (512→256→128-bit folds, then
// the float64 kernels' (x0+x2)+(x1+x3) order). The pure-Go lane kernels
// in f32.go reproduce every output bitwise via fma32; as in the float64
// kernels, the only tolerated divergence is the sign of a zero
// accumulator lane, which the masked tail's FMA-with-zeros can flip
// from -0 to +0.

#include "textflag.h"

// HSUM32Z reduces a ZMM accumulator into out+off in laneSum32 order:
// fold 512→256 (l[j]+l[j+8]), 256→128 (m[j]+m[j+4]), then
// (x0+x2)+(x1+x3).
#define HSUM32Z(accz, accy, accx, tmpy, tmpx, off) \
	VEXTRACTF64X4 $1, accz, tmpy    \
	VADDPS        tmpy, accy, accy  \
	VEXTRACTF128  $1, accy, tmpx    \
	VADDPS        tmpx, accx, accx  \
	VSHUFPD       $1, accx, accx, tmpx \
	VADDPS        tmpx, accx, accx  \
	VMOVSHDUP     accx, tmpx        \
	VADDSS        tmpx, accx, accx  \
	VMOVSS        accx, off(DI)

// HSUM32Y reduces a lo/hi YMM accumulator pair the same way: the lo+hi
// add IS the 512→256 fold, so both tiers reduce in the identical order.
#define HSUM32Y(lo, hi, lox, tmpx, off) \
	VADDPS       hi, lo, lo         \
	VEXTRACTF128 $1, lo, tmpx       \
	VADDPS       tmpx, lox, lox     \
	VSHUFPD      $1, lox, lox, tmpx \
	VADDPS       tmpx, lox, lox     \
	VMOVSHDUP    lox, tmpx          \
	VADDSS       tmpx, lox, lox     \
	VMOVSS       lox, off(DI)

// func dotBatch4F32AVX512(a, b0, b1, b2, b3 *float32, groups, tail int, out *[4]float32)
// The complete AVX-512 1×4 micro-kernel: groups full 16-element FMA
// steps, an opmask-gated partial step for the tail (0..15), and the
// horizontal reduction. out[r] receives the finished lane dot of a with
// B row r.
TEXT ·dotBatch4F32AVX512(SB), NOSPLIT, $0-64
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ groups+40(FP), CX
	MOVQ tail+48(FP), BX
	MOVQ out+56(FP), DI
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3
	TESTQ CX, CX
	JZ    zb4tail

zb4loop:
	VMOVUPS     (SI), Z8
	VFMADD231PS (R8), Z8, Z0
	VFMADD231PS (R9), Z8, Z1
	VFMADD231PS (R10), Z8, Z2
	VFMADD231PS (R11), Z8, Z3
	ADDQ        $64, SI
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	DECQ        CX
	JNZ         zb4loop

zb4tail:
	TESTQ BX, BX
	JZ    zb4done
	MOVL  $1, AX
	MOVQ  BX, CX
	SHLL  CX, AX
	DECL  AX
	KMOVW AX, K1
	VMOVUPS.Z   (SI), K1, Z8
	VMOVUPS.Z   (R8), K1, Z9
	VFMADD231PS Z9, Z8, Z0
	VMOVUPS.Z   (R9), K1, Z9
	VFMADD231PS Z9, Z8, Z1
	VMOVUPS.Z   (R10), K1, Z9
	VFMADD231PS Z9, Z8, Z2
	VMOVUPS.Z   (R11), K1, Z9
	VFMADD231PS Z9, Z8, Z3

zb4done:
	HSUM32Z(Z0, Y0, X0, Y14, X15, 0)
	HSUM32Z(Z1, Y1, X1, Y14, X15, 4)
	HSUM32Z(Z2, Y2, X2, Y14, X15, 8)
	HSUM32Z(Z3, Y3, X3, Y14, X15, 12)
	VZEROUPPER
	RET

// func dot2x4F32AVX512(a0, a1, b0, b1, b2, b3 *float32, groups, tail int, out *[8]float32)
// The complete AVX-512 2×4 register tile: two A rows against four B
// rows, eight output elements, 128 FMA lanes in flight, masked tail,
// horizontal reduction. out layout: a0·b0, a0·b1, a0·b2, a0·b3, a1·b0,
// ..., a1·b3.
TEXT ·dot2x4F32AVX512(SB), NOSPLIT, $0-72
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DX
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ groups+48(FP), CX
	MOVQ tail+56(FP), BX
	MOVQ out+64(FP), DI
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3
	VXORPS X4, X4, X4
	VXORPS X5, X5, X5
	VXORPS X6, X6, X6
	VXORPS X7, X7, X7
	TESTQ CX, CX
	JZ    z24tail

z24loop:
	VMOVUPS     (SI), Z8
	VMOVUPS     (DX), Z9
	VMOVUPS     (R8), Z10
	VFMADD231PS Z10, Z8, Z0
	VFMADD231PS Z10, Z9, Z4
	VMOVUPS     (R9), Z11
	VFMADD231PS Z11, Z8, Z1
	VFMADD231PS Z11, Z9, Z5
	VMOVUPS     (R10), Z10
	VFMADD231PS Z10, Z8, Z2
	VFMADD231PS Z10, Z9, Z6
	VMOVUPS     (R11), Z11
	VFMADD231PS Z11, Z8, Z3
	VFMADD231PS Z11, Z9, Z7
	ADDQ        $64, SI
	ADDQ        $64, DX
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	DECQ        CX
	JNZ         z24loop

z24tail:
	TESTQ BX, BX
	JZ    z24done
	MOVL  $1, AX
	MOVQ  BX, CX
	SHLL  CX, AX
	DECL  AX
	KMOVW AX, K1
	VMOVUPS.Z   (SI), K1, Z8
	VMOVUPS.Z   (DX), K1, Z9
	VMOVUPS.Z   (R8), K1, Z10
	VFMADD231PS Z10, Z8, Z0
	VFMADD231PS Z10, Z9, Z4
	VMOVUPS.Z   (R9), K1, Z11
	VFMADD231PS Z11, Z8, Z1
	VFMADD231PS Z11, Z9, Z5
	VMOVUPS.Z   (R10), K1, Z10
	VFMADD231PS Z10, Z8, Z2
	VFMADD231PS Z10, Z9, Z6
	VMOVUPS.Z   (R11), K1, Z11
	VFMADD231PS Z11, Z8, Z3
	VFMADD231PS Z11, Z9, Z7

z24done:
	HSUM32Z(Z0, Y0, X0, Y14, X15, 0)
	HSUM32Z(Z1, Y1, X1, Y14, X15, 4)
	HSUM32Z(Z2, Y2, X2, Y14, X15, 8)
	HSUM32Z(Z3, Y3, X3, Y14, X15, 12)
	HSUM32Z(Z4, Y4, X4, Y14, X15, 16)
	HSUM32Z(Z5, Y5, X5, Y14, X15, 20)
	HSUM32Z(Z6, Y6, X6, Y14, X15, 24)
	HSUM32Z(Z7, Y7, X7, Y14, X15, 28)
	VZEROUPPER
	RET

// func dotBatch4F32AVX2(a, b0, b1, b2, b3 *float32, groups, tail int, masks *[240]int32, out *[4]float32)
// The AVX2 1×4 micro-kernel: each 16-lane accumulator is a lo/hi YMM
// pair (lanes 0–7 and 8–15), the tail loads through VMASKMOVPS masks,
// and the lo+hi add of the reduction is exactly the AVX-512 tier's
// 512→256 fold — same bits on either tier.
TEXT ·dotBatch4F32AVX2(SB), NOSPLIT, $0-72
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ groups+40(FP), CX
	MOVQ tail+48(FP), BX
	MOVQ masks+56(FP), AX
	MOVQ out+64(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	TESTQ CX, CX
	JZ    yb4tail

yb4loop:
	VMOVUPS     (SI), Y8
	VMOVUPS     32(SI), Y9
	VMOVUPS     (R8), Y10
	VMOVUPS     32(R8), Y11
	VFMADD231PS Y10, Y8, Y0
	VFMADD231PS Y11, Y9, Y1
	VMOVUPS     (R9), Y10
	VMOVUPS     32(R9), Y11
	VFMADD231PS Y10, Y8, Y2
	VFMADD231PS Y11, Y9, Y3
	VMOVUPS     (R10), Y10
	VMOVUPS     32(R10), Y11
	VFMADD231PS Y10, Y8, Y4
	VFMADD231PS Y11, Y9, Y5
	VMOVUPS     (R11), Y10
	VMOVUPS     32(R11), Y11
	VFMADD231PS Y10, Y8, Y6
	VFMADD231PS Y11, Y9, Y7
	ADDQ        $64, SI
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	DECQ        CX
	JNZ         yb4loop

yb4tail:
	TESTQ BX, BX
	JZ    yb4done
	DECQ  BX
	SHLQ  $6, BX
	VMOVUPS     (AX)(BX*1), Y12
	VMOVUPS     32(AX)(BX*1), Y13
	VMASKMOVPS  (SI), Y12, Y8
	VMASKMOVPS  32(SI), Y13, Y9
	VMASKMOVPS  (R8), Y12, Y10
	VMASKMOVPS  32(R8), Y13, Y11
	VFMADD231PS Y10, Y8, Y0
	VFMADD231PS Y11, Y9, Y1
	VMASKMOVPS  (R9), Y12, Y10
	VMASKMOVPS  32(R9), Y13, Y11
	VFMADD231PS Y10, Y8, Y2
	VFMADD231PS Y11, Y9, Y3
	VMASKMOVPS  (R10), Y12, Y10
	VMASKMOVPS  32(R10), Y13, Y11
	VFMADD231PS Y10, Y8, Y4
	VFMADD231PS Y11, Y9, Y5
	VMASKMOVPS  (R11), Y12, Y10
	VMASKMOVPS  32(R11), Y13, Y11
	VFMADD231PS Y10, Y8, Y6
	VFMADD231PS Y11, Y9, Y7

yb4done:
	HSUM32Y(Y0, Y1, X0, X15, 0)
	HSUM32Y(Y2, Y3, X2, X15, 4)
	HSUM32Y(Y4, Y5, X4, X15, 8)
	HSUM32Y(Y6, Y7, X6, X15, 12)
	VZEROUPPER
	RET
