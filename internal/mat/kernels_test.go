package mat

import (
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// naiveMulT is the reference implementation the blocked kernel is pinned to.
func naiveMulT(a, b *Dense) *Dense {
	c := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// naiveMul is the reference for the ordinary product.
func naiveMul(a, b *Dense) *Dense {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randDense(rows, cols int, seed uint64) *Dense {
	m := New(rows, cols)
	rng.New(seed).FillNorm(m.Data, 0, 1)
	return m
}

func maxAbsDiff(a, b *Dense) float64 {
	var worst float64
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestMulTIntoMatchesNaive pins the blocked kernel to the naive reference
// across shapes that exercise every edge: dimensions that are not multiples
// of the 2×4 register tile or the row block, shared dimensions straddling
// the kernelKC panel boundary, single rows/columns, and the empty shared
// dimension.
func TestMulTIntoMatchesNaive(t *testing.T) {
	shapes := []struct{ n, d, q int }{
		{1, 1, 1},
		{2, 4, 8},
		{3, 5, 7},                        // nothing divides the tiles
		{kernelMR + 1, kernelNR + 1, 33}, // one past each block
		{2*kernelMR - 1, 2*kernelNR - 1, kernelKC - 1},
		{4, 6, kernelKC},        // exactly one panel
		{5, 9, kernelKC + 1},    // panel boundary straddle
		{3, 2, 2*kernelKC + 17}, // three panels, ragged tail
		{17, 1, 129},            // single output column
		{1, 13, 257},            // single output row
		{6, 8, 0},               // empty shared dimension
		{128, 32, 512},          // benchmark shape
	}
	for _, s := range shapes {
		a := randDense(s.n, s.q, uint64(3*s.n+5*s.d+7*s.q+1))
		b := randDense(s.d, s.q, uint64(11*s.n+13*s.d+17*s.q+2))
		want := naiveMulT(a, b)

		got := MulTInto(New(s.n, s.d), a, b)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("MulTInto %dx%d·(%dx%d)ᵀ: max |diff| = %g", s.n, s.q, s.d, s.q, d)
		}

		// Into semantics must overwrite stale destination contents.
		dirty := New(s.n, s.d)
		dirty.Fill(math.Pi)
		MulTInto(dirty, a, b)
		if d := maxAbsDiff(dirty, want); d > 1e-12 {
			t.Errorf("MulTInto with dirty dst %dx%d: max |diff| = %g", s.n, s.d, d)
		}

		// The allocating wrapper must agree bitwise with the Into variant.
		if d := maxAbsDiff(MulT(a, b), got); d != 0 {
			t.Errorf("MulT disagrees with MulTInto at shape %+v", s)
		}
	}
}

// TestPanelDotReproducesMulTIntoBitwise checks the contract the encoders
// rely on: recomputing any single element of a blocked product with
// PanelDot yields the exact bits the batch kernel produced, for every tile
// position (2×4 interior, 1×4 odd row, sequential remainder columns) and
// across panel boundaries.
func TestPanelDotReproducesMulTIntoBitwise(t *testing.T) {
	for _, s := range []struct{ n, d, q int }{
		{5, 7, 33},                      // odd everything
		{kernelMR + 3, 9, kernelKC + 7}, // panel straddle
		{3, 3, 2 * kernelKC},            // remainder-only columns, two panels
	} {
		a := randDense(s.n, s.q, uint64(s.n+s.d+s.q))
		b := randDense(s.d, s.q, uint64(s.n*s.d*s.q+1))
		c := MulT(a, b)
		for i := 0; i < s.n; i++ {
			for j := 0; j < s.d; j++ {
				if got := PanelDot(a.Row(i), b.Row(j)); got != c.At(i, j) {
					t.Fatalf("shape %+v element (%d,%d): PanelDot %v != kernel %v",
						s, i, j, got, c.At(i, j))
				}
			}
		}
	}
}

// TestMulTIntoFusedPost checks the fused epilogue runs exactly once per row
// on the completed row.
func TestMulTIntoFusedPost(t *testing.T) {
	a := randDense(11, 65, 1)
	b := randDense(6, 65, 2)
	want := MulT(a, b)
	visited := make([]int, 11)
	got := MulTIntoFused(New(11, 6), a, b, func(i int, row []float64) {
		visited[i]++
		for j := range row {
			row[j] *= 2
		}
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("row %d visited %d times", i, c)
		}
	}
	for i := 0; i < 11; i++ {
		for j := 0; j < 6; j++ {
			if got.At(i, j) != 2*want.At(i, j) {
				t.Fatalf("fused post not applied at (%d,%d)", i, j)
			}
		}
	}
}

// TestMulIntoMatchesNaive pins MulInto to the naive triple loop.
func TestMulIntoMatchesNaive(t *testing.T) {
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {3, 5, 7}, {8, 16, 4}, {13, 129, 31},
	}
	for _, s := range shapes {
		a := randDense(s.n, s.k, uint64(s.n+s.k+s.m))
		b := randDense(s.k, s.m, uint64(2*s.n+3*s.k+4*s.m))
		want := naiveMul(a, b)
		dirty := New(s.n, s.m)
		dirty.Fill(-7)
		MulInto(dirty, a, b)
		if d := maxAbsDiff(dirty, want); d > 1e-12 {
			t.Errorf("MulInto %dx%dx%d: max |diff| = %g", s.n, s.k, s.m, d)
		}
	}
}

// TestDotBatchMatchesDot pins the 4-wide micro-kernel to four scalar dots.
func TestDotBatchMatchesDot(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 64, 1023} {
		a := randDense(1, n, uint64(n+1)).Row(0)
		rows := randDense(4, n, uint64(n+2))
		s0, s1, s2, s3 := DotBatch(a, rows.Row(0), rows.Row(1), rows.Row(2), rows.Row(3))
		for i, got := range []float64{s0, s1, s2, s3} {
			want := Dot(a, rows.Row(i))
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("DotBatch n=%d lane %d: got %g, want %g", n, i, got, want)
			}
		}
	}
}

// TestArgTopKMatchesSortReference pins the quickselect implementation to the
// original full-sort reference, including the value-then-index tie order.
func TestArgTopKMatchesSortReference(t *testing.T) {
	sortRef := func(x []float64, k int) []int {
		if k > len(x) {
			k = len(x)
		}
		if k <= 0 {
			return nil
		}
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if x[idx[a]] != x[idx[b]] {
				return x[idx[a]] > x[idx[b]]
			}
			return idx[a] < idx[b]
		})
		return idx[:k]
	}

	r := rng.New(42)
	cases := [][]float64{
		{1},
		{2, 1},
		{1, 1, 1, 1, 1},       // all ties: index order must win
		{3, 1, 3, 2, 3, 0, 3}, // interleaved ties
		{-1, -2, -3, -4},
		{0, 0, 1, 0, 0, 1, 0, 0, 1},
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(r.Uint64()%500)
		x := make([]float64, n)
		r.FillNorm(x, 0, 1)
		// Quantize half the trials so duplicates are common.
		if trial%2 == 0 {
			for i := range x {
				x[i] = math.Round(x[i] * 2)
			}
		}
		cases = append(cases, x)
	}
	for ci, x := range cases {
		for _, k := range []int{0, 1, 2, len(x) / 3, len(x) - 1, len(x), len(x) + 5} {
			got := ArgTopK(x, k)
			want := sortRef(x, k)
			if len(got) != len(want) {
				t.Fatalf("case %d k=%d: got %d indices, want %d", ci, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("case %d k=%d: got %v, want %v", ci, k, got, want)
				}
			}
		}
	}
}

// TestColSumsMatchesSerial pins the sharded reduction to a serial loop.
func TestColSumsMatchesSerial(t *testing.T) {
	for _, s := range []struct{ r, c int }{{1, 1}, {3, 7}, {64, 129}, {513, 33}} {
		m := randDense(s.r, s.c, uint64(s.r*1000+s.c))
		want := make([]float64, s.c)
		for i := 0; i < s.r; i++ {
			for j, v := range m.Row(i) {
				want[j] += v
			}
		}
		got := m.ColSums()
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("ColSums %dx%d col %d: got %g, want %g", s.r, s.c, j, got[j], want[j])
			}
		}
	}
}

// TestParallelForPool exercises the worker pool: full coverage of the index
// range, no overlap, and survival of nested invocations.
func TestParallelForPool(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		seen := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
	// Nested ParallelFor must complete (saturated pool degrades inline).
	total := make([]int32, 64)
	ParallelFor(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * 8
			ParallelFor(8, func(l, h int) {
				for j := l; j < h; j++ {
					total[base+j]++
				}
			})
		}
	})
	for i, c := range total {
		if c != 1 {
			t.Fatalf("nested: index %d visited %d times", i, c)
		}
	}
}

// TestParallelForConcurrentNested reproduces the pool-starvation scenario:
// several goroutines each run a nested ParallelFor, enough to occupy every
// worker with outer shards. The waiters must steal queued inner shards to
// make progress; a pool that parks waiters unconditionally deadlocks here.
func TestParallelForConcurrentNested(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const callers = 4
	finished := make(chan [64]int32, callers)
	for c := 0; c < callers; c++ {
		go func() {
			var seen [64]int32
			ParallelFor(8, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					base := i * 8
					ParallelFor(8, func(l, h int) {
						for j := l; j < h; j++ {
							atomic.AddInt32(&seen[base+j], 1)
						}
					})
				}
			})
			finished <- seen
		}()
	}
	for c := 0; c < callers; c++ {
		select {
		case seen := <-finished:
			for i, v := range seen {
				if v != 1 {
					t.Fatalf("caller %d: index %d visited %d times", c, i, v)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent nested ParallelFor deadlocked")
		}
	}
}

// TestScratchPool checks length/reuse semantics of the pooled buffers.
func TestScratchPool(t *testing.T) {
	s := GetScratch(100)
	if len(s.Buf) != 100 {
		t.Fatalf("GetScratch(100) length %d", len(s.Buf))
	}
	s.Release()
	z := GetScratchZeroed(50)
	if len(z.Buf) != 50 {
		t.Fatalf("GetScratchZeroed(50) length %d", len(z.Buf))
	}
	for i, v := range z.Buf {
		if v != 0 {
			t.Fatalf("GetScratchZeroed: index %d = %g", i, v)
		}
	}
	z.Release()
}
