package mat

import "fmt"

// Lease is a caller-owned scratch arena for a long-lived single-goroutine
// worker — a serving replica, a benchmark loop — that needs several scratch
// matrices with fixed peak shapes. It differs from the GetScratch pool in
// two ways that matter on a serving hot path:
//
//   - Ownership is exclusive. A pooled Scratch must be fetched and released
//     around every use, paying the sync.Pool synchronization each time; a
//     Lease is carved once at worker start-up and the hot loop never touches
//     a shared structure again.
//   - Locality is guaranteed. All carved buffers share one backing
//     allocation, so a replica's input rows, encoded batch and score matrix
//     sit in one contiguous region instead of wherever the pool happened to
//     have spare slabs.
//
// A Lease is NOT safe for concurrent use; give each goroutine its own.
type Lease struct {
	buf []float64
	off int
}

// NewLease returns an arena holding capacity float64s to carve from.
func NewLease(capacity int) *Lease {
	if capacity < 0 {
		panic(fmt.Sprintf("mat: NewLease(%d) negative capacity", capacity))
	}
	return &Lease{buf: make([]float64, capacity)}
}

// Floats carves the next n values off the arena. Carving past the arena's
// capacity panics: lease sizes are computed from fixed model shapes at
// construction time, so running out is a programmer error, not a runtime
// condition (matching the package's hot-path dimension checks).
func (l *Lease) Floats(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("mat: Lease.Floats(%d) negative length", n))
	}
	if l.off+n > len(l.buf) {
		panic(fmt.Sprintf("mat: lease exhausted, want %d of %d remaining (capacity %d)",
			n, len(l.buf)-l.off, len(l.buf)))
	}
	s := l.buf[l.off : l.off+n : l.off+n]
	l.off += n
	return s
}

// Dense carves a rows×cols matrix off the arena. The returned matrix shares
// the arena's backing array; see Floats for the exhaustion contract.
func (l *Lease) Dense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: Lease.Dense(%d, %d) negative dimensions", rows, cols))
	}
	return View(rows, cols, l.Floats(rows*cols))
}

// Reset rewinds the arena so it can be carved afresh. Buffers carved before
// the Reset alias the same memory as buffers carved after it; Reset is for
// workers that rebuild their whole scratch layout (e.g. after a model
// reshape), not for interleaving live buffers.
func (l *Lease) Reset() { l.off = 0 }

// Cap returns the arena's total capacity in float64s.
func (l *Lease) Cap() int { return len(l.buf) }

// Used returns how many float64s have been carved since the last Reset.
func (l *Lease) Used() int { return l.off }
