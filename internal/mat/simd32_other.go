//go:build !amd64

package mat

import "sync/atomic"

// Non-amd64 builds run the pure-Go f32 lane kernels in f32.go, which
// produce bit-identical results to the assembly (fma32 emulates the
// hardware single-precision FMA exactly); the entry points below exist
// only to satisfy the dispatch code and are unreachable because
// detectF32ISA pins the tier to f32Generic.

const (
	f32Generic int32 = iota
	f32AVX2
	f32AVX512
)

var f32Best = detectF32ISA()

var f32ISA atomic.Int32

func init() { f32ISA.Store(f32Best) }

func setF32ISA(level int32) int32 {
	if level > f32Best {
		level = f32Best
	}
	return f32ISA.Swap(level)
}

func detectF32ISA() int32 { return f32Generic }

// f32TailMasks is unused without the assembly kernels.
var f32TailMasks [240]int32

func dotBatch4F32AVX512(a, b0, b1, b2, b3 *float32, groups, tail int, out *[4]float32) {
	panic("mat: f32 SIMD kernel on non-amd64 build")
}

func dot2x4F32AVX512(a0, a1, b0, b1, b2, b3 *float32, groups, tail int, out *[8]float32) {
	panic("mat: f32 SIMD kernel on non-amd64 build")
}

func dotBatch4F32AVX2(a, b0, b1, b2, b3 *float32, groups, tail int, masks *[240]int32, out *[4]float32) {
	panic("mat: f32 SIMD kernel on non-amd64 build")
}
