package mat

import (
	"fmt"
	"math"
)

// This file holds the float32 projection kernels behind the packed 1-bit
// encode path. The quantized serving tier only consumes the SIGN of each
// RBF activation, so its projection GEMM runs in float32 — half the
// memory traffic and twice the SIMD lanes of the float64 kernels — while
// the f32 champion keeps the float64 path untouched.
//
// The contract mirrors kernels.go exactly: the pure-Go functions in this
// file define the arithmetic, and the assembly tiers in simd32_amd64.s
// reproduce it bit for bit, so the packed bits of an encode never depend
// on the host ISA. Each output element is accumulated as sixteen strided
// float32 fused-multiply-add lanes — the dataflow of one 16-wide AVX-512
// VFMADD231PS loop (or two 8-wide AVX2 ones) — and reduced by the fixed
// extract/add tree of laneSum32. The Go lanes use fma32, an exact
// software emulation of the hardware single-precision FMA (see its
// comment for the round-to-odd argument), so "same bits" holds even on
// hosts with no FMA at all.

// kernelNR32 is the f32 register-tile width (outputs per pass), matching
// the float64 kernels; lanes32 is the FMA lane count per output element.
const (
	kernelNR32 = 4
	lanes32    = 16
)

// Dense32 is a row-major float32 matrix — the minimal shape the packed
// encode path needs (scratch views, no general linear algebra). Element
// (i,j) is Data[i*Stride+j]. NewDense32 rounds Stride up to lanes32 so
// every row starts 64-byte aligned (given an aligned base) and the SIMD
// kernels can run whole 16-lane groups over the zero padding instead of
// a masked tail — the same padded-row trick bitpack.Matrix plays with
// its words. The padding columns MUST stay zero; Row excludes them and
// all writers in this package preserve them.
type Dense32 struct {
	Rows, Cols, Stride int
	Data               []float32
}

// Stride32 returns the padded row stride NewDense32 would pick for a
// matrix of cols columns: cols rounded up to a multiple of lanes32.
func Stride32(cols int) int {
	return (cols + lanes32 - 1) &^ (lanes32 - 1)
}

// NewDense32 returns a zeroed rows×cols float32 matrix with padded rows.
func NewDense32(rows, cols int) *Dense32 {
	stride := Stride32(cols)
	return &Dense32{Rows: rows, Cols: cols, Stride: stride, Data: make([]float32, rows*stride)}
}

// View32 wraps an existing slice as a rows×cols matrix without copying.
// The backing slice must hold rows padded to Stride32(cols) and the
// padding columns must be zero (a freshly allocated arena qualifies).
func View32(rows, cols int, data []float32) *Dense32 {
	stride := Stride32(cols)
	if len(data) < rows*stride {
		panic(fmt.Sprintf("mat: View32 backing slice %d for %dx%d (stride %d)", len(data), rows, cols, stride))
	}
	return &Dense32{Rows: rows, Cols: cols, Stride: stride, Data: data[:rows*stride]}
}

// Row returns row i as a zero-copy slice view, excluding the padding.
func (m *Dense32) Row(i int) []float32 {
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// paddedRow returns row i including the zero padding columns — the view
// the kernels iterate so no masked tail runs.
func (m *Dense32) paddedRow(i int) []float32 {
	return m.Data[i*m.Stride : (i+1)*m.Stride]
}

// SetFrom fills the matrix with the float64 values of src, rounding each
// to float32 — how the packed encode path lowers its inputs and the
// shared projection base. Padding columns are left untouched (zero).
func (m *Dense32) SetFrom(src *Dense) {
	if src.Rows != m.Rows || src.Cols != m.Cols {
		panic(fmt.Sprintf("mat: SetFrom %dx%d from %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst := m.Row(i)
		srcRow := src.Row(i)
		for j, v := range srcRow {
			dst[j] = float32(v)
		}
	}
}

// fma32 is an exact software float32 fused multiply-add: it returns
// a·b+c computed exactly and rounded ONCE to float32 — bit-identical to
// the hardware VFMADD231PS lane the assembly tiers run.
//
// The product of two 24-bit significands is exact in float64, so only
// the addition can round. A float64 round-to-nearest of p+c followed by
// a float32 conversion would double-round; instead the float64 sum is
// corrected to round-to-odd (if the TwoSum residual is nonzero and the
// sum's mantissa is even, nudge one ulp toward the residual), after
// which the final float32 rounding is exact — the standard Boldo–
// Melquiond argument, valid because float64 carries ≥ 2·24+2 bits.
func fma32(a, b, c float32) float32 {
	p := float64(a) * float64(b)
	s := p + float64(c)
	t := s - p
	r := (p - (s - t)) + (float64(c) - t)
	if r != 0 && !math.IsNaN(r) && math.Float64bits(s)&1 == 0 {
		if r > 0 {
			s = math.Nextafter(s, math.Inf(1))
		} else {
			s = math.Nextafter(s, math.Inf(-1))
		}
	}
	return float32(s)
}

// laneFMA32 folds panel elements [i, n) of a·b into the sixteen
// accumulator lanes at lanes[o:o+16], continuing the stride-16 lane
// pattern from panel index i.
func laneFMA32(a, b []float32, i, n, o int, lanes *[64]float32) {
	for ; i < n; i++ {
		lanes[o+i%lanes32] = fma32(a[i], b[i], lanes[o+i%lanes32])
	}
}

// laneSum32 is the horizontal reduction of one 16-lane group — the
// extract/add tree of the AVX-512 epilogue (512→256→128-bit folds, then
// the same final 4-lane order as the float64 kernels). The AVX2 tier's
// two 8-lane accumulators add into exactly the first fold.
func laneSum32(l *[64]float32, o int) float32 {
	var m [8]float32
	for j := 0; j < 8; j++ {
		m[j] = l[o+j] + l[o+8+j]
	}
	var x [4]float32
	for j := 0; j < 4; j++ {
		x[j] = m[j] + m[j+4]
	}
	return (x[0] + x[2]) + (x[1] + x[3])
}

// laneDot32 is the canonical single-element f32 kernel: the inner
// product of one panel accumulated in 16 strided fma32 lanes. Every
// micro-kernel output element — assembly or pure Go, tiled or remainder
// — equals laneDot32 over its panels.
func laneDot32(a, b []float32) float32 {
	var lanes [64]float32
	laneFMA32(a, b[:len(a)], 0, len(a), 0, &lanes)
	return laneSum32(&lanes, 0)
}

// laneDot232 computes two lane dots sharing b — the remainder-column
// kernel for a pair of A rows.
func laneDot232(a0, a1, b []float32) (s0, s1 float32) {
	n := len(a0)
	var lanes [64]float32
	laneFMA32(a0, b[:n], 0, n, 0, &lanes)
	laneFMA32(a1[:n], b[:n], 0, n, 16, &lanes)
	return laneSum32(&lanes, 0), laneSum32(&lanes, 16)
}

// dotBatch4F32Go is the pure-Go 1×4 micro-kernel: four lane dots of a
// against b0..b3 in one pass over a.
func dotBatch4F32Go(a, b0, b1, b2, b3 []float32, out *[4]float32) {
	n := len(a)
	var lanes [64]float32
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	i := 0
	for ; i+lanes32 <= n; i += lanes32 {
		for k := 0; k < lanes32; k++ {
			av := a[i+k]
			lanes[k] = fma32(av, b0[i+k], lanes[k])
			lanes[16+k] = fma32(av, b1[i+k], lanes[16+k])
			lanes[32+k] = fma32(av, b2[i+k], lanes[32+k])
			lanes[48+k] = fma32(av, b3[i+k], lanes[48+k])
		}
	}
	laneFMA32(a, b0, i, n, 0, &lanes)
	laneFMA32(a, b1, i, n, 16, &lanes)
	laneFMA32(a, b2, i, n, 32, &lanes)
	laneFMA32(a, b3, i, n, 48, &lanes)
	out[0] = laneSum32(&lanes, 0)
	out[1] = laneSum32(&lanes, 16)
	out[2] = laneSum32(&lanes, 32)
	out[3] = laneSum32(&lanes, 48)
}

// dotBatch4F32 dispatches the 1×4 micro-kernel.
func dotBatch4F32(a, b0, b1, b2, b3 []float32, out *[4]float32) {
	n := len(a)
	switch f32ISA.Load() {
	case f32AVX512:
		dotBatch4F32AVX512(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n/lanes32, n%lanes32, out)
		return
	case f32AVX2:
		dotBatch4F32AVX2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n/lanes32, n%lanes32, &f32TailMasks, out)
		return
	}
	dotBatch4F32Go(a, b0, b1, b2, b3, out)
}

// dot2x4F32 dispatches the 2×4 register tile. Only AVX-512 has a fused
// 2×4 kernel; the AVX2 tier composes it from two 1×4 calls, which is
// bit-identical because the eight outputs are independent lane dots.
func dot2x4F32(a0, a1, b0, b1, b2, b3 []float32, out *[8]float32) {
	n := len(a0)
	switch f32ISA.Load() {
	case f32AVX512:
		dot2x4F32AVX512(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], n/lanes32, n%lanes32, out)
		return
	case f32AVX2:
		var lo, hi [4]float32
		dotBatch4F32AVX2(&a0[0], &b0[0], &b1[0], &b2[0], &b3[0], n/lanes32, n%lanes32, &f32TailMasks, &lo)
		dotBatch4F32AVX2(&a1[0], &b0[0], &b1[0], &b2[0], &b3[0], n/lanes32, n%lanes32, &f32TailMasks, &hi)
		out[0], out[1], out[2], out[3] = lo[0], lo[1], lo[2], lo[3]
		out[4], out[5], out[6], out[7] = hi[0], hi[1], hi[2], hi[3]
		return
	}
	var lo, hi [4]float32
	dotBatch4F32Go(a0, b0, b1, b2, b3, &lo)
	dotBatch4F32Go(a1[:n], b0, b1, b2, b3, &hi)
	out[0], out[1], out[2], out[3] = lo[0], lo[1], lo[2], lo[3]
	out[4], out[5], out[6], out[7] = hi[0], hi[1], hi[2], hi[3]
}

// PanelDot32 returns the inner product of a and b accumulated in the
// same panel-wise lane order as the MulTInto32Fused micro-kernels:
// kernelKC-column panels summed left to right (in float32), 16 strided
// fma32 lanes within each panel. Use it to recompute any single element
// of the blocked f32 product bitwise-identically to the batch kernels.
func PanelDot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("mat: PanelDot32 length mismatch")
	}
	var s float32
	for k0 := 0; k0 < len(a); k0 += kernelKC {
		k1 := k0 + kernelKC
		if k1 > len(a) {
			k1 = len(a)
		}
		p := laneDot32(a[k0:k1], b[k0:k1])
		if k0 == 0 {
			s = p
		} else {
			s += p
		}
	}
	return s
}

// MulTInto32Fused computes C = A · Bᵀ in float32 into dst (A n×q, B d×q,
// dst n×d) with an optional per-row epilogue, mirroring MulTIntoFused's
// blocking: kernelKC-column panels over the shared dimension, 2×4
// register tiles within a panel, row blocks sharded across the worker
// pool. post(i, dst.Row(i)) runs while the row is cache-hot and must be
// safe to call concurrently for different rows. dst must not alias A or
// B. It returns dst.
func MulTInto32Fused(dst, a, b *Dense32, post func(i int, row []float32)) *Dense32 {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTInto32 inner dimension mismatch %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTInto32 dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if a.Cols == 0 {
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		if post != nil {
			for i := 0; i < dst.Rows; i++ {
				post(i, dst.Row(i))
			}
		}
		return dst
	}
	blocks := (a.Rows + kernelMR - 1) / kernelMR
	if Serial() || blocks == 1 {
		mulT32Blocks(dst, a, b, post, 0, blocks)
		return dst
	}
	ParallelFor(blocks, func(lo, hi int) {
		mulT32Blocks(dst, a, b, post, lo, hi)
	})
	return dst
}

// mulT32Blocks processes row blocks [lo, hi) of the blocked f32 product,
// applying the optional epilogue to each completed row. The whole range
// runs as one kernel call so each four-row B tile is streamed from cache
// once per shard, not once per kernelMR rows — at serving shapes B is
// megabytes and dominates the memory traffic, while the shard's A rows
// stay resident in L2.
func mulT32Blocks(dst, a, b *Dense32, post func(i int, row []float32), lo, hi int) {
	i0 := lo * kernelMR
	i1 := hi * kernelMR
	if i1 > a.Rows {
		i1 = a.Rows
	}
	mulT32Block(dst, a, b, i0, i1)
	if post != nil {
		for i := i0; i < i1; i++ {
			post(i, dst.Row(i))
		}
	}
}

// mulT32Block computes output rows [i0, i1) of dst = A·Bᵀ with panel
// blocking over the shared dimension and 2×4 register tiling — the f32
// mirror of mulTBlock, with panel accumulation in float32. The panels
// run over the full padded stride: the padding columns are zero in both
// operands, so the extra FMA lanes add +0 and the SIMD tiers never need
// a masked tail (every group is a whole 16-lane step).
func mulT32Block(dst, a, b *Dense32, i0, i1 int) {
	q := a.Stride
	d := b.Rows
	var t8 [8]float32
	var t4 [4]float32
	for k0 := 0; k0 < q; k0 += kernelKC {
		k1 := k0 + kernelKC
		if k1 > q {
			k1 = q
		}
		first := k0 == 0
		j := 0
		for ; j+kernelNR32 <= d; j += kernelNR32 {
			b0 := b.paddedRow(j)[k0:k1]
			b1 := b.paddedRow(j + 1)[k0:k1]
			b2 := b.paddedRow(j + 2)[k0:k1]
			b3 := b.paddedRow(j + 3)[k0:k1]
			i := i0
			for ; i+2 <= i1; i += 2 {
				dot2x4F32(a.paddedRow(i)[k0:k1], a.paddedRow(i + 1)[k0:k1], b0, b1, b2, b3, &t8)
				c0 := dst.Row(i)
				c1 := dst.Row(i + 1)
				if first {
					c0[j], c0[j+1], c0[j+2], c0[j+3] = t8[0], t8[1], t8[2], t8[3]
					c1[j], c1[j+1], c1[j+2], c1[j+3] = t8[4], t8[5], t8[6], t8[7]
				} else {
					c0[j] += t8[0]
					c0[j+1] += t8[1]
					c0[j+2] += t8[2]
					c0[j+3] += t8[3]
					c1[j] += t8[4]
					c1[j+1] += t8[5]
					c1[j+2] += t8[6]
					c1[j+3] += t8[7]
				}
			}
			if i < i1 {
				dotBatch4F32(a.paddedRow(i)[k0:k1], b0, b1, b2, b3, &t4)
				ci := dst.Row(i)
				if first {
					ci[j], ci[j+1], ci[j+2], ci[j+3] = t4[0], t4[1], t4[2], t4[3]
				} else {
					ci[j] += t4[0]
					ci[j+1] += t4[1]
					ci[j+2] += t4[2]
					ci[j+3] += t4[3]
				}
			}
		}
		// Remainder columns (d % 4) run the pure-Go lane kernels so every
		// output element stays reproducible by PanelDot32.
		for ; j < d; j++ {
			bj := b.paddedRow(j)[k0:k1]
			i := i0
			for ; i+2 <= i1; i += 2 {
				s0, s1 := laneDot232(a.paddedRow(i)[k0:k1], a.paddedRow(i + 1)[k0:k1], bj)
				if first {
					dst.Row(i)[j] = s0
					dst.Row(i + 1)[j] = s1
				} else {
					dst.Row(i)[j] += s0
					dst.Row(i + 1)[j] += s1
				}
			}
			if i < i1 {
				s := laneDot32(a.paddedRow(i)[k0:k1], bj)
				if first {
					dst.Row(i)[j] = s
				} else {
					dst.Row(i)[j] += s
				}
			}
		}
	}
}
