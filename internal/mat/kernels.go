package mat

import "fmt"

// This file holds the cache-blocked, register-tiled matrix kernels. The
// destination-passing variants (MulTInto, MulInto) are the primitives; MulT
// and Mul are thin allocating wrappers kept for convenience.
//
// Blocking parameters are sized for a ~48 KiB L1d / ~2 MiB L2 cache:
//
//   - kernelKC columns per shared-dimension panel: a 4-row B tile of one
//     panel is 4·kernelKC·8 B = 32 KiB, which stays L1-resident while the
//     micro-kernel sweeps the A rows of the current block over it.
//   - kernelMR rows of A per block: the panel of A rows cycles through L1
//     but remains L2-resident across all B tiles of the block, so B is
//     streamed from memory only once per kernelMR rows of output.
//
// Within a block the micro-kernels compute a 2×4 (or 1×4, DotBatch) tile of
// C per pass, amortizing each A load over four B rows and keeping eight
// independent accumulator chains in flight.
const (
	kernelKC = 1024
	kernelMR = 8
	kernelNR = 4
)

// DotBatch computes the four inner products of a with b0..b3 in a single
// pass over a — the 4-wide micro-kernel behind MulTInto. All five slices
// must have equal length.
func DotBatch(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	n := len(a)
	if len(b0) != n || len(b1) != n || len(b2) != n || len(b3) != n {
		panic("mat: DotBatch length mismatch")
	}
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for i, av := range a {
		s0 += av * b0[i]
		s1 += av * b1[i]
		s2 += av * b2[i]
		s3 += av * b3[i]
	}
	return s0, s1, s2, s3
}

// dot2x4 is the 2×4 register tile: two A rows against four B rows, eight
// accumulators, six loads per eight multiply-adds. Lengths must match
// (callers slice to the current panel).
func dot2x4(a0, a1, b0, b1, b2, b3 []float64) (r00, r01, r02, r03, r10, r11, r12, r13 float64) {
	n := len(a0)
	a1, b0, b1, b2, b3 = a1[:n], b0[:n], b1[:n], b2[:n], b3[:n]
	i := 0
	for ; i+2 <= n; i += 2 {
		a0v, a1v := a0[i], a1[i]
		b0v, b1v, b2v, b3v := b0[i], b1[i], b2[i], b3[i]
		r00 += a0v * b0v
		r01 += a0v * b1v
		r02 += a0v * b2v
		r03 += a0v * b3v
		r10 += a1v * b0v
		r11 += a1v * b1v
		r12 += a1v * b2v
		r13 += a1v * b3v
		a0v, a1v = a0[i+1], a1[i+1]
		b0v, b1v, b2v, b3v = b0[i+1], b1[i+1], b2[i+1], b3[i+1]
		r00 += a0v * b0v
		r01 += a0v * b1v
		r02 += a0v * b2v
		r03 += a0v * b3v
		r10 += a1v * b0v
		r11 += a1v * b1v
		r12 += a1v * b2v
		r13 += a1v * b3v
	}
	if i < n {
		a0v, a1v := a0[i], a1[i]
		b0v, b1v, b2v, b3v := b0[i], b1[i], b2[i], b3[i]
		r00 += a0v * b0v
		r01 += a0v * b1v
		r02 += a0v * b2v
		r03 += a0v * b3v
		r10 += a1v * b0v
		r11 += a1v * b1v
		r12 += a1v * b2v
		r13 += a1v * b3v
	}
	return
}

// seqDot is the strictly sequential inner product: one accumulator, in
// index order. All MulTInto micro-kernel lanes accumulate in exactly this
// order, which is what makes PanelDot able to reproduce blocked results
// bitwise for a single element.
func seqDot(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// seqDot2 computes two sequential-order inner products sharing b: two
// independent accumulator chains, each in strict index order.
func seqDot2(a0, a1, b []float64) (s0, s1 float64) {
	n := len(a0)
	a1, b = a1[:n], b[:n]
	for i, av := range a0 {
		bv := b[i]
		s0 += av * bv
		s1 += a1[i] * bv
	}
	return s0, s1
}

// PanelDot returns the inner product of a and b accumulated in the same
// panel-wise, strictly sequential order as the MulTInto micro-kernels:
// kernelKC-column panels summed left to right, sequentially within each
// panel. Use it to recompute a single element of a blocked product (e.g.
// one regenerated encoder dimension) bitwise-identically to the batch
// kernel. For plain dot products prefer Dot, which is faster.
func PanelDot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: PanelDot length mismatch")
	}
	var s float64
	for k0 := 0; k0 < len(a); k0 += kernelKC {
		k1 := k0 + kernelKC
		if k1 > len(a) {
			k1 = len(a)
		}
		s += seqDot(a[k0:k1], b[k0:k1])
	}
	return s
}

// MulTInto computes C = A · Bᵀ into dst, where A is n×q and B is d×q and
// dst is n×d. This is the layout of both HDC hot paths: encoding (rows of B
// are base hypervectors) and batched similarity (rows of B are class
// hypervectors). dst must not alias A or B. It returns dst.
//
// Row blocks are distributed across the worker pool; within a block the
// kernel is cache-blocked over the shared dimension and register-tiled 2×4,
// so results are bitwise deterministic regardless of scheduling (each output
// element is accumulated in a fixed panel order by exactly one goroutine,
// reproducible element-wise by PanelDot).
func MulTInto(dst, a, b *Dense) *Dense {
	return MulTIntoFused(dst, a, b, nil)
}

// MulTIntoFused is MulTInto with an optional elementwise epilogue: after a
// row of the product is complete, post(i, dst.Row(i)) runs while the row is
// still cache-hot. This is how batch encoding fuses its nonlinearity onto
// the GEMM instead of making a second pass over the (much larger than L2)
// output. post must be safe to call concurrently for different rows; a nil
// post is a plain product.
func MulTIntoFused(dst, a, b *Dense, post func(i int, row []float64)) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTInto inner dimension mismatch %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if a.Cols == 0 {
		dst.Fill(0)
		if post != nil {
			for i := 0; i < dst.Rows; i++ {
				post(i, dst.Row(i))
			}
		}
		return dst
	}
	blocks := (a.Rows + kernelMR - 1) / kernelMR
	if Serial() || blocks == 1 {
		// Skip the shard closure entirely: zero allocations.
		mulTBlocks(dst, a, b, post, 0, blocks)
		return dst
	}
	ParallelFor(blocks, func(lo, hi int) {
		mulTBlocks(dst, a, b, post, lo, hi)
	})
	return dst
}

// mulTBlocks processes row blocks [lo, hi) of the blocked product,
// applying the optional epilogue to each completed row.
func mulTBlocks(dst, a, b *Dense, post func(i int, row []float64), lo, hi int) {
	for blk := lo; blk < hi; blk++ {
		i0 := blk * kernelMR
		i1 := i0 + kernelMR
		if i1 > a.Rows {
			i1 = a.Rows
		}
		mulTBlock(dst, a, b, i0, i1)
		if post != nil {
			for i := i0; i < i1; i++ {
				post(i, dst.Row(i))
			}
		}
	}
}

// mulTBlock computes output rows [i0, i1) of dst = A·Bᵀ with panel blocking
// over the shared dimension and 2×4 register tiling.
func mulTBlock(dst, a, b *Dense, i0, i1 int) {
	q := a.Cols
	d := b.Rows
	for k0 := 0; k0 < q; k0 += kernelKC {
		k1 := k0 + kernelKC
		if k1 > q {
			k1 = q
		}
		first := k0 == 0
		j := 0
		for ; j+kernelNR <= d; j += kernelNR {
			b0 := b.Row(j)[k0:k1]
			b1 := b.Row(j + 1)[k0:k1]
			b2 := b.Row(j + 2)[k0:k1]
			b3 := b.Row(j + 3)[k0:k1]
			i := i0
			for ; i+2 <= i1; i += 2 {
				s00, s01, s02, s03, s10, s11, s12, s13 := dot2x4(
					a.Row(i)[k0:k1], a.Row(i + 1)[k0:k1], b0, b1, b2, b3)
				c0 := dst.Row(i)
				c1 := dst.Row(i + 1)
				if first {
					c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
					c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
				} else {
					c0[j] += s00
					c0[j+1] += s01
					c0[j+2] += s02
					c0[j+3] += s03
					c1[j] += s10
					c1[j+1] += s11
					c1[j+2] += s12
					c1[j+3] += s13
				}
			}
			if i < i1 {
				s0, s1, s2, s3 := DotBatch(a.Row(i)[k0:k1], b0, b1, b2, b3)
				ci := dst.Row(i)
				if first {
					ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
				} else {
					ci[j] += s0
					ci[j+1] += s1
					ci[j+2] += s2
					ci[j+3] += s3
				}
			}
		}
		// Remainder columns (d % 4) use sequential-order lanes so every
		// output element, tiled or not, is reproducible by PanelDot.
		for ; j < d; j++ {
			bj := b.Row(j)[k0:k1]
			i := i0
			for ; i+2 <= i1; i += 2 {
				s0, s1 := seqDot2(a.Row(i)[k0:k1], a.Row(i + 1)[k0:k1], bj)
				if first {
					dst.Row(i)[j] = s0
					dst.Row(i + 1)[j] = s1
				} else {
					dst.Row(i)[j] += s0
					dst.Row(i + 1)[j] += s1
				}
			}
			if i < i1 {
				s := seqDot(a.Row(i)[k0:k1], bj)
				if first {
					dst.Row(i)[j] = s
				} else {
					dst.Row(i)[j] += s
				}
			}
		}
	}
}

// MulT computes C = A · Bᵀ into a freshly allocated matrix. See MulTInto.
func MulT(a, b *Dense) *Dense {
	return MulTInto(New(a.Rows, b.Rows), a, b)
}

// MulInto computes the ordinary product C = A · B into dst, with A n×k and
// B k×m and dst n×m. dst must not alias A or B. The ikj loop order streams
// rows of B and C; rows of the output are sharded across the worker pool.
// It returns dst.
func MulInto(dst, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulInto inner dimension mismatch %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if Serial() {
		mulRows(dst, a, b, 0, a.Rows)
		return dst
	}
	ParallelFor(a.Rows, func(lo, hi int) {
		mulRows(dst, a, b, lo, hi)
	})
	return dst
}

// mulRows computes output rows [lo, hi) of the ordinary product in ikj
// order.
func mulRows(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		ci := dst.Row(i)
		for j := range ci {
			ci[j] = 0
		}
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			Axpy(ci, aik, b.Row(k))
		}
	}
}

// Mul computes C = A · B into a freshly allocated matrix. See MulInto.
func Mul(a, b *Dense) *Dense {
	return MulInto(New(a.Rows, b.Cols), a, b)
}
