package mat

import (
	"fmt"
	"math"
)

// This file holds the cache-blocked, register-tiled matrix kernels. The
// destination-passing variants (MulTInto, MulInto) are the primitives; MulT
// and Mul are thin allocating wrappers kept for convenience.
//
// Blocking parameters are sized for a ~48 KiB L1d / ~2 MiB L2 cache:
//
//   - kernelKC columns per shared-dimension panel: a 4-row B tile of one
//     panel is 4·kernelKC·8 B = 32 KiB, which stays L1-resident while the
//     micro-kernel sweeps the A rows of the current block over it.
//   - kernelMR rows of A per block: the panel of A rows cycles through L1
//     but remains L2-resident across all B tiles of the block, so B is
//     streamed from memory only once per kernelMR rows of output.
//
// Within a block the micro-kernels compute a 2×4 (or 1×4, DotBatch) tile
// of C per pass, amortizing each A load over four B rows.
//
// # Lane semantics
//
// Every micro-kernel output element is accumulated as four strided fused
// multiply-add lanes: panel element i feeds lane i%4 via math.FMA, and the
// lanes reduce as (l0+l2) + (l1+l3) at the end of each panel. This is
// exactly the dataflow of a 4-wide AVX2 VFMADD loop followed by the
// standard extract/add horizontal sum, so on amd64 machines with AVX2+FMA
// the inner loops dispatch to the assembly kernels in simd_amd64.s — same
// bits, several times the throughput, which is what makes the batched
// serving path (GEMM over cache-resident panels) far outrun per-request
// matrix-vector encoding (bandwidth-bound, SIMD cannot help it much).
// PanelDot reproduces any single output element of the blocked product
// bitwise by replaying the same lanes in pure Go.
const (
	kernelKC = 1024
	kernelMR = 8
	kernelNR = 4
)

// laneFMA folds panel elements [i, n) of a·b into the four accumulator
// lanes at lanes[o:o+4], continuing the stride-4 lane pattern from panel
// index i.
func laneFMA(a, b []float64, i, n, o int, lanes *[32]float64) {
	for ; i < n; i++ {
		lanes[o+i%4] = math.FMA(a[i], b[i], lanes[o+i%4])
	}
}

// laneSum is the kernel's horizontal reduction of one 4-lane group — the
// extract/add order of the AVX2 epilogue.
func laneSum(l0, l1, l2, l3 float64) float64 { return (l0 + l2) + (l1 + l3) }

// laneDot is the canonical single-element kernel: the inner product of one
// panel accumulated in 4 strided FMA lanes. Every micro-kernel output
// element — assembly or pure Go, tiled or remainder — equals laneDot over
// its panels.
func laneDot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var l0, l1, l2, l3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		l0 = math.FMA(a[i], b[i], l0)
		l1 = math.FMA(a[i+1], b[i+1], l1)
		l2 = math.FMA(a[i+2], b[i+2], l2)
		l3 = math.FMA(a[i+3], b[i+3], l3)
	}
	if i < n {
		l0 = math.FMA(a[i], b[i], l0)
		if i+1 < n {
			l1 = math.FMA(a[i+1], b[i+1], l1)
		}
		if i+2 < n {
			l2 = math.FMA(a[i+2], b[i+2], l2)
		}
	}
	return laneSum(l0, l1, l2, l3)
}

// laneDot2 computes two lane dots sharing b — the remainder-column kernel
// for a pair of A rows.
func laneDot2(a0, a1, b []float64) (s0, s1 float64) {
	n := len(a0)
	a1, b = a1[:n], b[:n]
	var lanes [32]float64
	i := 0
	for ; i+4 <= n; i += 4 {
		for k := 0; k < 4; k++ {
			bv := b[i+k]
			lanes[k] = math.FMA(a0[i+k], bv, lanes[k])
			lanes[4+k] = math.FMA(a1[i+k], bv, lanes[4+k])
		}
	}
	laneFMA(a0, b, i, n, 0, &lanes)
	laneFMA(a1, b, i, n, 4, &lanes)
	return laneSum(lanes[0], lanes[1], lanes[2], lanes[3]),
		laneSum(lanes[4], lanes[5], lanes[6], lanes[7])
}

// DotBatch computes the four inner products of a with b0..b3 in a single
// pass over a — the 1×4 micro-kernel behind MulTInto. All five slices must
// have equal length. Each result equals laneDot of its pair.
func DotBatch(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	n := len(a)
	if len(b0) != n || len(b1) != n || len(b2) != n || len(b3) != n {
		panic("mat: DotBatch length mismatch")
	}
	if useFMAKernels && n >= 4 {
		var out [4]float64
		dotBatch4AVX(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n/4, n%4, &laneMasks, &out)
		return out[0], out[1], out[2], out[3]
	}
	var lanes [32]float64
	i := 0
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for ; i+4 <= n; i += 4 {
		for k := 0; k < 4; k++ {
			av := a[i+k]
			lanes[k] = math.FMA(av, b0[i+k], lanes[k])
			lanes[4+k] = math.FMA(av, b1[i+k], lanes[4+k])
			lanes[8+k] = math.FMA(av, b2[i+k], lanes[8+k])
			lanes[12+k] = math.FMA(av, b3[i+k], lanes[12+k])
		}
	}
	laneFMA(a, b0, i, n, 0, &lanes)
	laneFMA(a, b1, i, n, 4, &lanes)
	laneFMA(a, b2, i, n, 8, &lanes)
	laneFMA(a, b3, i, n, 12, &lanes)
	return laneSum(lanes[0], lanes[1], lanes[2], lanes[3]),
		laneSum(lanes[4], lanes[5], lanes[6], lanes[7]),
		laneSum(lanes[8], lanes[9], lanes[10], lanes[11]),
		laneSum(lanes[12], lanes[13], lanes[14], lanes[15])
}

// dot2x4 is the 2×4 register tile: two A rows against four B rows, eight
// output elements, 32 FMA lanes in flight. Lengths must match (callers
// slice to the current panel). Each result equals laneDot of its pair.
func dot2x4(a0, a1, b0, b1, b2, b3 []float64) (r00, r01, r02, r03, r10, r11, r12, r13 float64) {
	n := len(a0)
	if useFMAKernels && n >= 4 {
		var out [8]float64
		dot2x4AVX(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], n/4, n%4, &laneMasks, &out)
		return out[0], out[1], out[2], out[3], out[4], out[5], out[6], out[7]
	}
	var lanes [32]float64
	i := 0
	a1, b0, b1, b2, b3 = a1[:n], b0[:n], b1[:n], b2[:n], b3[:n]
	for ; i+4 <= n; i += 4 {
		for k := 0; k < 4; k++ {
			a0v, a1v := a0[i+k], a1[i+k]
			b0v, b1v, b2v, b3v := b0[i+k], b1[i+k], b2[i+k], b3[i+k]
			lanes[k] = math.FMA(a0v, b0v, lanes[k])
			lanes[4+k] = math.FMA(a0v, b1v, lanes[4+k])
			lanes[8+k] = math.FMA(a0v, b2v, lanes[8+k])
			lanes[12+k] = math.FMA(a0v, b3v, lanes[12+k])
			lanes[16+k] = math.FMA(a1v, b0v, lanes[16+k])
			lanes[20+k] = math.FMA(a1v, b1v, lanes[20+k])
			lanes[24+k] = math.FMA(a1v, b2v, lanes[24+k])
			lanes[28+k] = math.FMA(a1v, b3v, lanes[28+k])
		}
	}
	laneFMA(a0, b0, i, n, 0, &lanes)
	laneFMA(a0, b1, i, n, 4, &lanes)
	laneFMA(a0, b2, i, n, 8, &lanes)
	laneFMA(a0, b3, i, n, 12, &lanes)
	laneFMA(a1, b0, i, n, 16, &lanes)
	laneFMA(a1, b1, i, n, 20, &lanes)
	laneFMA(a1, b2, i, n, 24, &lanes)
	laneFMA(a1, b3, i, n, 28, &lanes)
	return laneSum(lanes[0], lanes[1], lanes[2], lanes[3]),
		laneSum(lanes[4], lanes[5], lanes[6], lanes[7]),
		laneSum(lanes[8], lanes[9], lanes[10], lanes[11]),
		laneSum(lanes[12], lanes[13], lanes[14], lanes[15]),
		laneSum(lanes[16], lanes[17], lanes[18], lanes[19]),
		laneSum(lanes[20], lanes[21], lanes[22], lanes[23]),
		laneSum(lanes[24], lanes[25], lanes[26], lanes[27]),
		laneSum(lanes[28], lanes[29], lanes[30], lanes[31])
}

// PanelDot returns the inner product of a and b accumulated in the same
// panel-wise lane order as the MulTInto micro-kernels: kernelKC-column
// panels summed left to right, 4 strided FMA lanes within each panel. Use
// it to recompute a single element of a blocked product (e.g. one
// regenerated encoder dimension) bitwise-identically to the batch kernel.
// For plain dot products prefer Dot, which skips the lane bookkeeping.
func PanelDot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: PanelDot length mismatch")
	}
	var s float64
	for k0 := 0; k0 < len(a); k0 += kernelKC {
		k1 := k0 + kernelKC
		if k1 > len(a) {
			k1 = len(a)
		}
		p := laneDot(a[k0:k1], b[k0:k1])
		if k0 == 0 {
			s = p
		} else {
			s += p
		}
	}
	return s
}

// MulTInto computes C = A · Bᵀ into dst, where A is n×q and B is d×q and
// dst is n×d. This is the layout of both HDC hot paths: encoding (rows of B
// are base hypervectors) and batched similarity (rows of B are class
// hypervectors). dst must not alias A or B. It returns dst.
//
// Row blocks are distributed across the worker pool; within a block the
// kernel is cache-blocked over the shared dimension and register-tiled 2×4,
// so results are bitwise deterministic regardless of scheduling (each output
// element is accumulated in a fixed panel order by exactly one goroutine,
// reproducible element-wise by PanelDot).
func MulTInto(dst, a, b *Dense) *Dense {
	return MulTIntoFused(dst, a, b, nil)
}

// MulTIntoFused is MulTInto with an optional elementwise epilogue: after a
// row of the product is complete, post(i, dst.Row(i)) runs while the row is
// still cache-hot. This is how batch encoding fuses its nonlinearity onto
// the GEMM instead of making a second pass over the (much larger than L2)
// output. post must be safe to call concurrently for different rows; a nil
// post is a plain product.
func MulTIntoFused(dst, a, b *Dense, post func(i int, row []float64)) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTInto inner dimension mismatch %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if a.Cols == 0 {
		dst.Fill(0)
		if post != nil {
			for i := 0; i < dst.Rows; i++ {
				post(i, dst.Row(i))
			}
		}
		return dst
	}
	blocks := (a.Rows + kernelMR - 1) / kernelMR
	if Serial() || blocks == 1 {
		// Skip the shard closure entirely: zero allocations.
		mulTBlocks(dst, a, b, post, 0, blocks)
		return dst
	}
	ParallelFor(blocks, func(lo, hi int) {
		mulTBlocks(dst, a, b, post, lo, hi)
	})
	return dst
}

// mulTBlocks processes row blocks [lo, hi) of the blocked product,
// applying the optional epilogue to each completed row.
func mulTBlocks(dst, a, b *Dense, post func(i int, row []float64), lo, hi int) {
	for blk := lo; blk < hi; blk++ {
		i0 := blk * kernelMR
		i1 := i0 + kernelMR
		if i1 > a.Rows {
			i1 = a.Rows
		}
		mulTBlock(dst, a, b, i0, i1)
		if post != nil {
			for i := i0; i < i1; i++ {
				post(i, dst.Row(i))
			}
		}
	}
}

// mulTBlock computes output rows [i0, i1) of dst = A·Bᵀ with panel blocking
// over the shared dimension and 2×4 register tiling.
func mulTBlock(dst, a, b *Dense, i0, i1 int) {
	q := a.Cols
	d := b.Rows
	for k0 := 0; k0 < q; k0 += kernelKC {
		k1 := k0 + kernelKC
		if k1 > q {
			k1 = q
		}
		first := k0 == 0
		j := 0
		for ; j+kernelNR <= d; j += kernelNR {
			b0 := b.Row(j)[k0:k1]
			b1 := b.Row(j + 1)[k0:k1]
			b2 := b.Row(j + 2)[k0:k1]
			b3 := b.Row(j + 3)[k0:k1]
			i := i0
			for ; i+2 <= i1; i += 2 {
				s00, s01, s02, s03, s10, s11, s12, s13 := dot2x4(
					a.Row(i)[k0:k1], a.Row(i + 1)[k0:k1], b0, b1, b2, b3)
				c0 := dst.Row(i)
				c1 := dst.Row(i + 1)
				if first {
					c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
					c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
				} else {
					c0[j] += s00
					c0[j+1] += s01
					c0[j+2] += s02
					c0[j+3] += s03
					c1[j] += s10
					c1[j+1] += s11
					c1[j+2] += s12
					c1[j+3] += s13
				}
			}
			if i < i1 {
				s0, s1, s2, s3 := DotBatch(a.Row(i)[k0:k1], b0, b1, b2, b3)
				ci := dst.Row(i)
				if first {
					ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
				} else {
					ci[j] += s0
					ci[j+1] += s1
					ci[j+2] += s2
					ci[j+3] += s3
				}
			}
		}
		// Remainder columns (d % 4) use the same 4-lane FMA kernels so
		// every output element, tiled or not, is reproducible by PanelDot.
		for ; j < d; j++ {
			bj := b.Row(j)[k0:k1]
			i := i0
			for ; i+2 <= i1; i += 2 {
				s0, s1 := laneDot2(a.Row(i)[k0:k1], a.Row(i + 1)[k0:k1], bj)
				if first {
					dst.Row(i)[j] = s0
					dst.Row(i + 1)[j] = s1
				} else {
					dst.Row(i)[j] += s0
					dst.Row(i + 1)[j] += s1
				}
			}
			if i < i1 {
				s := laneDot(a.Row(i)[k0:k1], bj)
				if first {
					dst.Row(i)[j] = s
				} else {
					dst.Row(i)[j] += s
				}
			}
		}
	}
}

// MulT computes C = A · Bᵀ into a freshly allocated matrix. See MulTInto.
func MulT(a, b *Dense) *Dense {
	return MulTInto(New(a.Rows, b.Rows), a, b)
}

// MulInto computes the ordinary product C = A · B into dst, with A n×k and
// B k×m and dst n×m. dst must not alias A or B. The ikj loop order streams
// rows of B and C; rows of the output are sharded across the worker pool.
// It returns dst.
func MulInto(dst, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulInto inner dimension mismatch %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if Serial() {
		mulRows(dst, a, b, 0, a.Rows)
		return dst
	}
	ParallelFor(a.Rows, func(lo, hi int) {
		mulRows(dst, a, b, lo, hi)
	})
	return dst
}

// mulRows computes output rows [lo, hi) of the ordinary product in ikj
// order.
func mulRows(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		ci := dst.Row(i)
		for j := range ci {
			ci[j] = 0
		}
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			Axpy(ci, aik, b.Row(k))
		}
	}
}

// Mul computes C = A · B into a freshly allocated matrix. See MulInto.
func Mul(a, b *Dense) *Dense {
	return MulInto(New(a.Rows, b.Cols), a, b)
}
