package mat

import "sort"

// This file holds the selection kernels: argmax, top-2, and the partial
// top-k selection that Algorithm 2 uses to nominate dimensions for
// regeneration.

// ArgMax returns the index of the largest element of x (first on ties).
// It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mat: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgTop2 returns the indices of the two largest elements of x
// (first, second). It panics if len(x) < 2.
func ArgTop2(x []float64) (int, int) {
	if len(x) < 2 {
		panic("mat: ArgTop2 needs at least 2 elements")
	}
	i1, i2 := 0, 1
	if x[i2] > x[i1] {
		i1, i2 = i2, i1
	}
	for i := 2; i < len(x); i++ {
		switch {
		case x[i] > x[i1]:
			i2 = i1
			i1 = i
		case x[i] > x[i2]:
			i2 = i
		}
	}
	return i1, i2
}

// topLess reports whether index a precedes index b in top-k order:
// larger value first, lower index first on equal values.
func topLess(x []float64, a, b int) bool {
	if x[a] != x[b] {
		return x[a] > x[b]
	}
	return a < b
}

// ArgTopK returns the indices of the k largest elements of x in descending
// value order, lower index first on ties. k is clamped to len(x).
//
// Selection is a quickselect partition to isolate the top k followed by a
// sort of just those k — O(D + k log k) instead of the O(D log D) full sort,
// which matters because Algorithm 2 calls this with k = R·D every training
// iteration.
func ArgTopK(x []float64, k int) []int {
	if k > len(x) {
		k = len(x)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	if k < len(idx) {
		topKSelect(x, idx, k)
	}
	top := idx[:k]
	sort.Slice(top, func(a, b int) bool { return topLess(x, top[a], top[b]) })
	return top
}

// topKSelect partially orders idx so that its first k entries are the top k
// under topLess (in arbitrary internal order). Iterative quickselect with
// median-of-three pivoting; the comparator is a strict total order (index
// breaks value ties), so partitioning is well defined.
func topKSelect(x []float64, idx []int, k int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := topKPartition(x, idx, lo, hi)
		switch {
		case p == k-1:
			return
		case p >= k:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// topKPartition partitions idx[lo..hi] around a median-of-three pivot and
// returns the pivot's final position.
func topKPartition(x []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Sort the three candidates so the median lands at mid, then use it as
	// the Lomuto pivot (stashed at hi).
	if topLess(x, idx[mid], idx[lo]) {
		idx[lo], idx[mid] = idx[mid], idx[lo]
	}
	if topLess(x, idx[hi], idx[lo]) {
		idx[lo], idx[hi] = idx[hi], idx[lo]
	}
	if topLess(x, idx[hi], idx[mid]) {
		idx[mid], idx[hi] = idx[hi], idx[mid]
	}
	idx[mid], idx[hi] = idx[hi], idx[mid]
	pivot := idx[hi]
	store := lo
	for i := lo; i < hi; i++ {
		if topLess(x, idx[i], pivot) {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}
