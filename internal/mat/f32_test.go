package mat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// fillPseudo32 deterministically fills a slice with sign-mixed values.
func fillPseudo32(xs []float32, seed float64) {
	v := seed
	for i := range xs {
		v = v*1.000000059604644775390625 + 0.013671875
		if v > 2 {
			v -= 3.5
		}
		xs[i] = float32(v)
	}
}

// fillDense32 fills the logical elements of a padded Dense32 row by row,
// preserving the zero padding columns the kernels run over.
func fillDense32(m *Dense32, seed float64) {
	v := seed
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			v = v*1.000000059604644775390625 + 0.013671875
			if v > 2 {
				v -= 3.5
			}
			row[j] = float32(v)
		}
	}
}

// refFMA32 computes the correctly-rounded float32 a·b+c through
// big.Float at full precision — the oracle fma32 must match.
func refFMA32(a, b, c float32) float32 {
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) || math.IsNaN(float64(c)) {
		return float32(math.NaN())
	}
	if math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) || math.IsInf(float64(c), 0) {
		// big.Float panics on Inf-Inf / Inf·0; float64 arithmetic is
		// exact for any finite float32 product, so Inf propagation and
		// the NaN cases come out right.
		return float32(float64(a)*float64(b) + float64(c))
	}
	var p, s big.Float
	p.SetPrec(200).SetFloat64(float64(a))
	p.Mul(&p, new(big.Float).SetFloat64(float64(b)))
	s.SetPrec(200).SetFloat64(float64(c))
	s.Add(&s, &p)
	f, _ := s.Float32()
	return f
}

// TestFMA32MatchesCorrectRounding proves the software fma32 is the
// correctly-rounded fused multiply-add on random values, near-boundary
// adversarial cases, and the special values — the property that makes
// the Go fallback bit-identical to the hardware VFMADD231PS lanes.
func TestFMA32MatchesCorrectRounding(t *testing.T) {
	check := func(a, b, c float32) {
		t.Helper()
		got, want := fma32(a, b, c), refFMA32(a, b, c)
		if got != want && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
			t.Fatalf("fma32(%g, %g, %g) = %g (%08x), want %g (%08x)",
				a, b, c, got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		a := float32(rng.NormFloat64())
		b := float32(rng.NormFloat64())
		// Bias c toward -a·b so the addition cancels and the rounding
		// boundary cases (where double rounding would bite) are hit.
		c := -a * b * (1 + float32(rng.NormFloat64())*1e-3)
		if i%3 == 0 {
			c = float32(rng.NormFloat64())
		}
		check(a, b, c)
	}
	// Tiny/huge magnitudes: subnormal products and near-overflow sums.
	for i := 0; i < 20000; i++ {
		a := float32(math.Ldexp(1+rng.Float64(), rng.Intn(280)-140))
		b := float32(math.Ldexp(1+rng.Float64(), rng.Intn(280)-140))
		c := float32(math.Ldexp(1+rng.Float64(), rng.Intn(280)-140))
		if rng.Intn(2) == 0 {
			c = -c
		}
		check(a, b, c)
	}
	inf := float32(math.Inf(1))
	for _, tc := range [][3]float32{
		{0, 0, 0}, {0, 0, float32(math.Copysign(0, -1))},
		{inf, 1, 1}, {1, inf, -inf}, {inf, 0, 1},
		{float32(math.NaN()), 1, 1}, {1, 1, float32(math.NaN())},
		{math.MaxFloat32, math.MaxFloat32, -inf},
		{math.MaxFloat32, 2, math.MaxFloat32},
		{1.0000001, 1.0000001, -1},
	} {
		check(tc[0], tc[1], tc[2])
	}
}

// TestF32KernelsMatchGoLanes pins the dispatching f32 micro-kernels to
// the pure-Go lane kernels bitwise across every ISA tier the host
// supports, over aligned and ragged lengths — the f32 mirror of
// TestSIMDKernelsMatchGoLanes, with the tiers forced through setF32ISA.
func TestF32KernelsMatchGoLanes(t *testing.T) {
	if f32Best == f32Generic {
		t.Log("no f32 SIMD tier: dispatcher always uses the Go lanes")
	}
	tiers := []int32{f32Generic, f32AVX2, f32AVX512}
	for _, n := range []int{1, 3, 8, 15, 16, 17, 31, 32, 63, 64, 65, 127, 561, 1024, 2000} {
		a0 := make([]float32, n)
		a1 := make([]float32, n)
		rows := NewDense32(4, n)
		fillPseudo32(a0, 0.1)
		fillPseudo32(a1, -0.7)
		fillDense32(rows, 0.3)
		b0, b1, b2, b3 := rows.Row(0), rows.Row(1), rows.Row(2), rows.Row(3)

		// laneDot32 is the canonical definition every element must equal.
		want := [8]float32{
			laneDot32(a0, b0), laneDot32(a0, b1), laneDot32(a0, b2), laneDot32(a0, b3),
			laneDot32(a1, b0), laneDot32(a1, b1), laneDot32(a1, b2), laneDot32(a1, b3),
		}

		for _, tier := range tiers {
			if tier > f32Best {
				continue
			}
			prev := setF32ISA(tier)
			var t4 [4]float32
			dotBatch4F32(a0, b0, b1, b2, b3, &t4)
			for i, got := range t4 {
				if got != want[i] {
					setF32ISA(prev)
					t.Fatalf("n=%d tier=%d dotBatch4F32 lane %d: %g != laneDot32 %g", n, tier, i, got, want[i])
				}
			}
			var t8 [8]float32
			dot2x4F32(a0, a1, b0, b1, b2, b3, &t8)
			for i, got := range t8 {
				if got != want[i] {
					setF32ISA(prev)
					t.Fatalf("n=%d tier=%d dot2x4F32 element %d: %g != laneDot32 %g", n, tier, i, got, want[i])
				}
			}
			setF32ISA(prev)
		}

		s0, s1 := laneDot232(a0, a1, b0)
		if s0 != want[0] || s1 != want[4] {
			t.Fatalf("n=%d laneDot232 (%g, %g) != laneDot32 (%g, %g)", n, s0, s1, want[0], want[4])
		}
	}
}

// TestMulTInto32TiersBitIdentical computes full blocked f32 products on
// every supported ISA tier and requires bit-identical outputs, with every
// element also reproducible by PanelDot32 — ragged shapes exercise the
// 2×4 tile, the 1×4 row remainder, the scalar column remainder, and the
// multi-panel accumulation path.
func TestMulTInto32TiersBitIdentical(t *testing.T) {
	shapes := []struct{ n, q, d int }{
		{1, 1, 1}, {2, 16, 4}, {3, 17, 5}, {8, 64, 12}, {5, 561, 11},
		{13, 700, 9}, {7, 1030, 6}, {64, 2048, 3}, {9, 3000, 8},
	}
	for _, sh := range shapes {
		a := NewDense32(sh.n, sh.q)
		b := NewDense32(sh.d, sh.q)
		fillDense32(a, 0.25)
		fillDense32(b, -0.5)

		var ref *Dense32
		for _, tier := range []int32{f32Generic, f32AVX2, f32AVX512} {
			if tier > f32Best {
				continue
			}
			prev := setF32ISA(tier)
			dst := NewDense32(sh.n, sh.d)
			MulTInto32Fused(dst, a, b, nil)
			setF32ISA(prev)
			if ref == nil {
				ref = dst
				for i := 0; i < sh.n; i++ {
					for j := 0; j < sh.d; j++ {
						if got, want := dst.Row(i)[j], PanelDot32(a.paddedRow(i), b.paddedRow(j)); got != want {
							t.Fatalf("%dx%dx%d element (%d,%d): blocked %g != PanelDot32 %g",
								sh.n, sh.q, sh.d, i, j, got, want)
						}
					}
				}
				continue
			}
			for i := range dst.Data {
				if dst.Data[i] != ref.Data[i] {
					t.Fatalf("%dx%dx%d tier=%d element %d: %g != generic %g",
						sh.n, sh.q, sh.d, tier, i, dst.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestMulTInto32FusedPost checks the fused epilogue runs exactly once
// per row with the finished row contents.
func TestMulTInto32FusedPost(t *testing.T) {
	a := NewDense32(11, 37)
	b := NewDense32(6, 37)
	fillDense32(a, 0.4)
	fillDense32(b, 0.9)
	seen := make([]int, 11)
	MulTInto32Fused(NewDense32(11, 6), a, b, func(i int, row []float32) {
		seen[i]++
		for j := range row {
			if row[j] != PanelDot32(a.paddedRow(i), b.paddedRow(j)) {
				t.Errorf("post row %d col %d not finished", i, j)
			}
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("post ran %d times for row %d", c, i)
		}
	}
}

// BenchmarkMulTInto32 measures the f32 projection GEMM at the serving
// shape (64-row batch, UCIHAR-like 561 features) — the packed tier's
// answer to BenchmarkMulTInto.
func BenchmarkMulTInto32(b *testing.B) {
	for _, d := range []int{256, 2048} {
		b.Run(benchName32(d), func(b *testing.B) {
			a := NewDense32(64, 561)
			bb := NewDense32(d, 561)
			dst := NewDense32(64, d)
			fillDense32(a, 0.1)
			fillDense32(bb, 0.7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulTInto32Fused(dst, a, bb, nil)
			}
		})
	}
}

// benchName32 formats the sub-benchmark name for a dimensionality.
func benchName32(d int) string {
	if d == 256 {
		return "D=256"
	}
	return "D=2048"
}
