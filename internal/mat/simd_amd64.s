// AVX2+FMA micro-kernels for the blocked A·Bᵀ product. Each kernel
// accumulates 4 strided FMA lanes per output element, handles the
// sub-group tail with a masked partial step, and finishes with the
// horizontal reduction — one call returns finished dot products, so the
// per-call overhead is a handful of instructions. The pure-Go lane
// kernels in kernels.go reproduce every output bitwise (see laneDot);
// the only tolerated divergence is the sign of a zero accumulator lane,
// which the masked tail's FMA-with-zeros can flip from -0 to +0 (Go
// float64 equality treats them as equal).

#include "textflag.h"

// hsum reduces the accumulator ymm into out+off: (l0+l2) + (l1+l3) — the
// exact laneSum order of kernels.go.
#define HSUM(acc, accx, tmp, off) \
	VEXTRACTF128 $1, acc, tmp     \
	VADDPD       tmp, accx, accx  \
	VSHUFPD      $1, accx, accx, tmp \
	VADDSD       tmp, accx, accx  \
	VMOVSD       accx, off(DI)

// func dotBatch4AVX(a, b0, b1, b2, b3 *float64, groups, tail int, masks *[12]int64, out *[4]float64)
// The complete 1×4 micro-kernel: groups full 4-element FMA steps, a masked
// partial step for the tail (tail in 0..3), and the horizontal reduction.
// out[r] receives the finished lane dot of a with B row r.
TEXT ·dotBatch4AVX(SB), NOSPLIT, $0-72
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ groups+40(FP), CX
	MOVQ tail+48(FP), BX
	MOVQ masks+56(FP), AX
	MOVQ out+64(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	TESTQ CX, CX
	JZ    db4tail

db4loop:
	VMOVUPD     (SI), Y4
	VFMADD231PD (R8), Y4, Y0
	VFMADD231PD (R9), Y4, Y1
	VFMADD231PD (R10), Y4, Y2
	VFMADD231PD (R11), Y4, Y3
	ADDQ        $32, SI
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	DECQ        CX
	JNZ         db4loop

db4tail:
	TESTQ BX, BX
	JZ    db4done
	DECQ  BX
	SHLQ  $5, BX
	VMOVUPD     (AX)(BX*1), Y14
	VMASKMOVPD  (SI), Y14, Y4
	VMASKMOVPD  (R8), Y14, Y5
	VFMADD231PD Y5, Y4, Y0
	VMASKMOVPD  (R9), Y14, Y5
	VFMADD231PD Y5, Y4, Y1
	VMASKMOVPD  (R10), Y14, Y5
	VFMADD231PD Y5, Y4, Y2
	VMASKMOVPD  (R11), Y14, Y5
	VFMADD231PD Y5, Y4, Y3

db4done:
	HSUM(Y0, X0, X8, 0)
	HSUM(Y1, X1, X8, 8)
	HSUM(Y2, X2, X8, 16)
	HSUM(Y3, X3, X8, 24)
	VZEROUPPER
	RET

// func dot2x4AVX(a0, a1, b0, b1, b2, b3 *float64, groups, tail int, masks *[12]int64, out *[8]float64)
// The complete 2×4 register tile: two A rows against four B rows, eight
// output elements, 32 FMA lanes in flight, masked tail, horizontal
// reduction. out layout: a0·b0, a0·b1, a0·b2, a0·b3, a1·b0, ..., a1·b3.
TEXT ·dot2x4AVX(SB), NOSPLIT, $0-80
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DX
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ groups+48(FP), CX
	MOVQ tail+56(FP), BX
	MOVQ masks+64(FP), AX
	MOVQ out+72(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	TESTQ CX, CX
	JZ    d24tail

d24loop:
	VMOVUPD     (SI), Y8
	VMOVUPD     (DX), Y9
	VMOVUPD     (R8), Y10
	VMOVUPD     (R9), Y11
	VMOVUPD     (R10), Y12
	VMOVUPD     (R11), Y13
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y10, Y9, Y4
	VFMADD231PD Y11, Y9, Y5
	VFMADD231PD Y12, Y9, Y6
	VFMADD231PD Y13, Y9, Y7
	ADDQ        $32, SI
	ADDQ        $32, DX
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	DECQ        CX
	JNZ         d24loop

d24tail:
	TESTQ BX, BX
	JZ    d24done
	DECQ  BX
	SHLQ  $5, BX
	VMOVUPD     (AX)(BX*1), Y14
	VMASKMOVPD  (SI), Y14, Y8
	VMASKMOVPD  (DX), Y14, Y9
	VMASKMOVPD  (R8), Y14, Y10
	VMASKMOVPD  (R9), Y14, Y11
	VMASKMOVPD  (R10), Y14, Y12
	VMASKMOVPD  (R11), Y14, Y13
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y10, Y9, Y4
	VFMADD231PD Y11, Y9, Y5
	VFMADD231PD Y12, Y9, Y6
	VFMADD231PD Y13, Y9, Y7

d24done:
	HSUM(Y0, X0, X8, 0)
	HSUM(Y1, X1, X8, 8)
	HSUM(Y2, X2, X8, 16)
	HSUM(Y3, X3, X8, 24)
	HSUM(Y4, X4, X8, 32)
	HSUM(Y5, X5, X8, 40)
	HSUM(Y6, X6, X8, 48)
	HSUM(Y7, X7, X8, 56)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL  eaxIn+0(FP), AX
	MOVL  ecxIn+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET
