package mat

import (
	"testing"
)

// fillPseudo deterministically fills a slice with sign-mixed values.
func fillPseudo(xs []float64, seed float64) {
	v := seed
	for i := range xs {
		v = v*1.000000059604644775390625 + 0.013671875
		if v > 2 {
			v -= 3.5
		}
		xs[i] = v
	}
}

// TestSIMDKernelsMatchGoLanes pins the dispatching micro-kernels to the
// pure-Go lane kernels bitwise, across aligned and ragged lengths. On
// machines without AVX2 both sides run the Go path and the test is
// trivially green; on AVX2 machines it proves the assembly implements
// exactly the documented lane semantics.
func TestSIMDKernelsMatchGoLanes(t *testing.T) {
	if !useFMAKernels {
		t.Log("no AVX2+FMA: dispatcher always uses the Go lanes")
	}
	for _, n := range []int{1, 3, 4, 7, 8, 9, 15, 16, 31, 64, 127, 512, 1000, 1024} {
		a0 := make([]float64, n)
		a1 := make([]float64, n)
		rows := New(4, n)
		fillPseudo(a0, 0.1)
		fillPseudo(a1, -0.7)
		fillPseudo(rows.Data, 0.3)
		b0, b1, b2, b3 := rows.Row(0), rows.Row(1), rows.Row(2), rows.Row(3)

		// laneDot is the canonical definition every element must equal.
		wantLanes := [8]float64{
			laneDot(a0, b0), laneDot(a0, b1), laneDot(a0, b2), laneDot(a0, b3),
			laneDot(a1, b0), laneDot(a1, b1), laneDot(a1, b2), laneDot(a1, b3),
		}

		s0, s1, s2, s3 := DotBatch(a0, b0, b1, b2, b3)
		for i, got := range []float64{s0, s1, s2, s3} {
			if got != wantLanes[i] {
				t.Fatalf("n=%d DotBatch lane %d: %g != laneDot %g", n, i, got, wantLanes[i])
			}
		}

		r := make([]float64, 8)
		r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7] = dot2x4(a0, a1, b0, b1, b2, b3)
		for i, got := range r {
			if got != wantLanes[i] {
				t.Fatalf("n=%d dot2x4 element %d: %g != laneDot %g", n, i, got, wantLanes[i])
			}
		}

		ld0, ld1 := laneDot2(a0, a1, b0)
		if ld0 != wantLanes[0] || ld1 != wantLanes[4] {
			t.Fatalf("n=%d laneDot2 (%g, %g) != laneDot (%g, %g)", n, ld0, ld1, wantLanes[0], wantLanes[4])
		}
	}
}

// TestSIMDDispatchForcedOff compares full blocked products with the
// assembly dispatcher enabled and disabled: the flag must never change a
// single bit of the output.
func TestSIMDDispatchForcedOff(t *testing.T) {
	if !useFMAKernels {
		t.Skip("no AVX2+FMA on this machine")
	}
	a := New(13, 700)
	b := New(9, 700)
	fillPseudo(a.Data, 0.25)
	fillPseudo(b.Data, -0.5)

	fast := MulT(a, b)
	useFMAKernels = false
	slow := MulT(a, b)
	useFMAKernels = true

	for i := range fast.Data {
		if fast.Data[i] != slow.Data[i] {
			t.Fatalf("element %d: AVX %g != Go %g", i, fast.Data[i], slow.Data[i])
		}
	}
}
