package mat

import "testing"

func TestLeaseCarving(t *testing.T) {
	l := NewLease(24)
	a := l.Floats(8)
	m := l.Dense(4, 4)
	if len(a) != 8 || m.Rows != 4 || m.Cols != 4 {
		t.Fatalf("carved shapes wrong: len(a)=%d m=%dx%d", len(a), m.Rows, m.Cols)
	}
	if l.Used() != 24 || l.Cap() != 24 {
		t.Fatalf("bookkeeping wrong: used=%d cap=%d", l.Used(), l.Cap())
	}
	// Carved regions must not alias each other.
	for i := range a {
		a[i] = 1
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Floats and Dense carves alias")
		}
	}
	// Full capacity carved: the slices must tile the arena exactly.
	a[7] = 42
	if m.Data[0] == 42 {
		t.Fatal("adjacent carves overlap")
	}
}

func TestLeaseCarveCapped(t *testing.T) {
	l := NewLease(4)
	s := l.Floats(2)
	// The carved slice's capacity must be clipped so an append cannot
	// silently grow into the next carve's region.
	s = append(s, 99)
	rest := l.Floats(2)
	if rest[0] == 99 {
		t.Fatal("append on a carved slice bled into the next carve")
	}
}

func TestLeaseExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-carving did not panic")
		}
	}()
	l := NewLease(4)
	l.Floats(5)
}

func TestLeaseReset(t *testing.T) {
	l := NewLease(6)
	l.Floats(6)
	l.Reset()
	if l.Used() != 0 {
		t.Fatalf("Used()=%d after Reset", l.Used())
	}
	if got := l.Floats(6); len(got) != 6 {
		t.Fatalf("re-carve after Reset got %d", len(got))
	}
}
