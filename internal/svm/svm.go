// Package svm implements the SVM comparator of the DistHD evaluation
// (ref [28]): a one-vs-rest maximum-margin linear classifier trained with
// Pegasos-style stochastic subgradient descent on the hinge loss, with an
// optional random-Fourier-feature lift that approximates an RBF-kernel SVM
// (the variant scikit-learn's grid search typically lands on for the
// paper's datasets). Training cost scales with the lifted dimensionality,
// which is why Fig. 5 shows SVMs falling behind on the large datasets —
// the same asymmetry this implementation reproduces.
package svm

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Config holds SVM hyperparameters.
type Config struct {
	// Lambda is the L2 regularization strength (Pegasos λ).
	Lambda float64
	// Epochs over the training set.
	Epochs int
	// RFFDim, when positive, lifts inputs through that many random Fourier
	// features (cosine features), approximating an RBF kernel. Zero keeps
	// the plain linear SVM.
	RFFDim int
	// Gamma is the RBF kernel width for the RFF lift; ignored when
	// RFFDim == 0. Zero selects 1/q (the scikit-learn "scale"-like default).
	Gamma float64
	// Seed drives the feature map and shuffling.
	Seed uint64
}

// DefaultConfig returns an RFF-lifted SVM comparable to a grid-searched
// RBF-kernel SVM.
func DefaultConfig() Config {
	return Config{Lambda: 1e-4, Epochs: 30, RFFDim: 1024, Seed: 1}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("svm: Lambda must be positive, got %v", c.Lambda)
	case c.Epochs <= 0:
		return fmt.Errorf("svm: Epochs must be positive, got %d", c.Epochs)
	case c.RFFDim < 0:
		return fmt.Errorf("svm: RFFDim must be non-negative, got %d", c.RFFDim)
	case c.Gamma < 0:
		return fmt.Errorf("svm: Gamma must be non-negative, got %v", c.Gamma)
	}
	return nil
}

// Machine is a trained one-vs-rest SVM.
type Machine struct {
	// W holds one weight vector per class over the lifted feature space.
	// The last column is the bias weight: features are augmented with a
	// constant 1 so the bias shares the regularized Pegasos update instead
	// of receiving the raw 1/(λt) steps, which diverge early in training.
	W *mat.Dense
	// rffW/rffB define the cosine feature map when RFFDim > 0.
	rffW *mat.Dense
	rffB []float64
	cfg  Config
	in   int
}

// Train fits a one-vs-rest SVM on X, y.
func Train(X *mat.Dense, y []int, classes int, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if X.Rows != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", classes)
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return nil, fmt.Errorf("svm: label %d at row %d outside [0,%d)", label, i, classes)
		}
	}

	m := &Machine{cfg: cfg, in: X.Cols}
	r := rng.New(cfg.Seed)
	featDim := X.Cols
	if cfg.RFFDim > 0 {
		gamma := cfg.Gamma
		if gamma == 0 {
			gamma = 1 / float64(X.Cols)
		}
		m.rffW = mat.New(cfg.RFFDim, X.Cols)
		r.FillNorm(m.rffW.Data, 0, math.Sqrt(2*gamma))
		m.rffB = make([]float64, cfg.RFFDim)
		r.FillUniform(m.rffB, 0, 2*math.Pi)
		featDim = cfg.RFFDim
	}
	m.W = mat.New(classes, featDim+1) // +1 for the bias feature

	// Pre-lift the training set once.
	F := m.lift(X)

	// Pegasos: step size 1/(λ·t) with averaged projection-free updates.
	t := 1
	shuffle := rng.New(cfg.Seed ^ 0xf00d)
	for e := 0; e < cfg.Epochs; e++ {
		order := shuffle.Perm(F.Rows)
		for _, i := range order {
			x := F.Row(i)
			eta := 1 / (cfg.Lambda * float64(t))
			t++
			for c := 0; c < classes; c++ {
				target := -1.0
				if y[i] == c {
					target = 1
				}
				margin := target * mat.Dot(m.W.Row(c), x)
				// w ← (1 − ηλ)w (+ η·target·x if margin < 1)
				mat.Scale(m.W.Row(c), 1-eta*cfg.Lambda)
				if margin < 1 {
					mat.Axpy(m.W.Row(c), eta*target, x)
				}
			}
		}
	}
	return m, nil
}

// lift applies the RFF cosine feature map (or identity) to every row of X
// and appends the constant bias feature.
func (m *Machine) lift(X *mat.Dense) *mat.Dense {
	var featDim int
	if m.rffW == nil {
		featDim = X.Cols
	} else {
		featDim = m.rffW.Rows
	}
	out := mat.New(X.Rows, featDim+1)
	scale := math.Sqrt(2 / float64(featDim))
	mat.ParallelFor(X.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := X.Row(i)
			row := out.Row(i)
			if m.rffW == nil {
				copy(row, x)
			} else {
				for j := 0; j < m.rffW.Rows; j++ {
					row[j] = scale * math.Cos(mat.Dot(m.rffW.Row(j), x)+m.rffB[j])
				}
			}
			row[featDim] = 1
		}
	})
	return out
}

// liftOne applies the feature map (plus bias feature) to a single sample.
func (m *Machine) liftOne(x []float64) []float64 {
	if m.rffW == nil {
		out := make([]float64, len(x)+1)
		copy(out, x)
		out[len(x)] = 1
		return out
	}
	out := make([]float64, m.rffW.Rows+1)
	scale := math.Sqrt(2 / float64(m.rffW.Rows))
	for j := 0; j < m.rffW.Rows; j++ {
		out[j] = scale * math.Cos(mat.Dot(m.rffW.Row(j), x)+m.rffB[j])
	}
	out[m.rffW.Rows] = 1
	return out
}

// DecisionValues returns the per-class margins for x.
func (m *Machine) DecisionValues(x []float64) []float64 {
	f := m.liftOne(x)
	out := make([]float64, m.W.Rows)
	for c := 0; c < m.W.Rows; c++ {
		out[c] = mat.Dot(m.W.Row(c), f)
	}
	return out
}

// Predict returns the class with the largest margin.
func (m *Machine) Predict(x []float64) int {
	return mat.ArgMax(m.DecisionValues(x))
}

// PredictBatch classifies every row of X in parallel.
func (m *Machine) PredictBatch(X *mat.Dense) []int {
	F := m.lift(X)
	out := make([]int, F.Rows)
	mat.ParallelFor(F.Rows, func(lo, hi int) {
		vals := make([]float64, m.W.Rows)
		for i := lo; i < hi; i++ {
			f := F.Row(i)
			for c := 0; c < m.W.Rows; c++ {
				vals[c] = mat.Dot(m.W.Row(c), f)
			}
			out[i] = mat.ArgMax(vals)
		}
	})
	return out
}

// Accuracy returns classification accuracy over a labeled batch.
func (m *Machine) Accuracy(X *mat.Dense, y []int) float64 {
	if X.Rows == 0 {
		return 0
	}
	pred := m.PredictBatch(X)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
