package svm

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/rng"
)

func toyData(t testing.TB, seed uint64) (train, test *dataset.Dataset) {
	t.Helper()
	spec := &dataset.Spec{
		Name: "toy", Features: 16, Classes: 4,
		Train: 400, Test: 150,
		Subclusters: 2, LatentDim: 5,
		CenterStd: 1.0, IntraStd: 0.4, Warp: 0.9, NoiseStd: 0.12,
		Seed: seed,
	}
	train, test, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dataset.NormalizePair(train, test)
	return train, test
}

func TestLinearSeparableBinary(t *testing.T) {
	// Two linearly separable clouds.
	r := rng.New(1)
	X := mat.New(200, 2)
	y := make([]int, 200)
	for i := 0; i < 200; i++ {
		c := i % 2
		y[i] = c
		offset := 3.0
		if c == 1 {
			offset = -3.0
		}
		X.Set(i, 0, offset+r.NormFloat64())
		X.Set(i, 1, r.NormFloat64())
	}
	m, err := Train(X, y, 2, Config{Lambda: 1e-3, Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(X, y); acc < 0.98 {
		t.Fatalf("linear SVM accuracy %.3f on separable data", acc)
	}
}

func TestRFFBeatsLinearOnNonlinearTask(t *testing.T) {
	// XOR-style task: linear SVM ~chance, RFF SVM should do well.
	r := rng.New(2)
	const n = 600
	X := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := r.NormFloat64()
		b := r.NormFloat64()
		X.Set(i, 0, a)
		X.Set(i, 1, b)
		if (a > 0) == (b > 0) {
			y[i] = 1
		}
	}
	lin, err := Train(X, y, 2, Config{Lambda: 1e-4, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rff, err := Train(X, y, 2, Config{Lambda: 1e-4, Epochs: 20, RFFDim: 512, Gamma: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	linAcc := lin.Accuracy(X, y)
	rffAcc := rff.Accuracy(X, y)
	t.Logf("XOR: linear=%.3f rff=%.3f", linAcc, rffAcc)
	if rffAcc < 0.85 {
		t.Fatalf("RFF SVM accuracy %.3f too low on XOR", rffAcc)
	}
	if rffAcc < linAcc+0.2 {
		t.Fatalf("RFF (%.3f) should clearly beat linear (%.3f) on XOR", rffAcc, linAcc)
	}
}

func TestMulticlassToy(t *testing.T) {
	train, test := toyData(t, 3)
	m, err := Train(train.X, train.Y, train.Classes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test.X, test.Y); acc < 0.8 {
		t.Fatalf("SVM accuracy %.3f too low on toy task", acc)
	}
}

func TestValidation(t *testing.T) {
	train, _ := toyData(t, 4)
	if _, err := Train(train.X, train.Y[:4], train.Classes, DefaultConfig()); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Train(train.X, train.Y, 1, DefaultConfig()); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := Train(mat.New(0, 4), nil, 2, DefaultConfig()); err == nil {
		t.Fatal("empty set accepted")
	}
	bad := DefaultConfig()
	bad.Lambda = 0
	if _, err := Train(train.X, train.Y, train.Classes, bad); err == nil {
		t.Fatal("zero lambda accepted")
	}
	bad2 := DefaultConfig()
	bad2.Epochs = 0
	if _, err := Train(train.X, train.Y, train.Classes, bad2); err == nil {
		t.Fatal("zero epochs accepted")
	}
	bad3 := DefaultConfig()
	bad3.RFFDim = -1
	if _, err := Train(train.X, train.Y, train.Classes, bad3); err == nil {
		t.Fatal("negative RFFDim accepted")
	}
	yBad := make([]int, len(train.Y))
	copy(yBad, train.Y)
	yBad[3] = -2
	if _, err := Train(train.X, yBad, train.Classes, DefaultConfig()); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestDeterministic(t *testing.T) {
	train, test := toyData(t, 5)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	run := func() []int {
		m, err := Train(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.PredictBatch(test.X)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SVM training not deterministic")
		}
	}
}

func TestPredictSingleMatchesBatch(t *testing.T) {
	train, test := toyData(t, 6)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m, err := Train(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(test.X)
	for i := 0; i < 10; i++ {
		if p := m.Predict(test.X.Row(i)); p != batch[i] {
			t.Fatalf("row %d: single %d != batch %d", i, p, batch[i])
		}
	}
}

func TestDecisionValuesShape(t *testing.T) {
	train, _ := toyData(t, 7)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m, err := Train(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dv := m.DecisionValues(train.X.Row(0))
	if len(dv) != train.Classes {
		t.Fatalf("decision values length %d, want %d", len(dv), train.Classes)
	}
	if m.Predict(train.X.Row(0)) != mat.ArgMax(dv) {
		t.Fatal("Predict disagrees with DecisionValues argmax")
	}
}
