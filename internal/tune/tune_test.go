package tune

import (
	"fmt"
	"math"
	"testing"
)

func TestSearchFindsMaximum(t *testing.T) {
	axes := []Axis{
		{Name: "x", Values: []float64{-2, -1, 0, 1, 2}},
		{Name: "y", Values: []float64{-1, 0, 1}},
	}
	// objective peaks at x=1, y=0
	res, err := Search(axes, func(p Point) (float64, error) {
		return -(p["x"]-1)*(p["x"]-1) - p["y"]*p["y"], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["x"] != 1 || res.Best["y"] != 0 {
		t.Fatalf("best = %v", res.Best)
	}
	if res.Evaluated != 15 || len(res.Scores) != 15 {
		t.Fatalf("evaluated %d points, want 15", res.Evaluated)
	}
	if res.BestScore != 0 {
		t.Fatalf("best score %v, want 0", res.BestScore)
	}
}

func TestSearchSingleAxis(t *testing.T) {
	res, err := Search([]Axis{{Name: "lr", Values: []float64{0.1, 0.5, 0.9}}},
		func(p Point) (float64, error) { return -math.Abs(p["lr"] - 0.5), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["lr"] != 0.5 {
		t.Fatalf("best = %v", res.Best)
	}
}

func TestSearchValidation(t *testing.T) {
	obj := func(Point) (float64, error) { return 0, nil }
	if _, err := Search(nil, obj); err == nil {
		t.Fatal("empty axes accepted")
	}
	if _, err := Search([]Axis{{Name: "", Values: []float64{1}}}, obj); err == nil {
		t.Fatal("unnamed axis accepted")
	}
	if _, err := Search([]Axis{{Name: "a", Values: nil}}, obj); err == nil {
		t.Fatal("empty axis accepted")
	}
}

func TestSearchPropagatesObjectiveError(t *testing.T) {
	_, err := Search([]Axis{{Name: "a", Values: []float64{1, 2}}},
		func(p Point) (float64, error) {
			if p["a"] == 2 {
				return 0, fmt.Errorf("boom")
			}
			return 1, nil
		})
	if err == nil {
		t.Fatal("objective error swallowed")
	}
}

func TestFirstBestWinsTies(t *testing.T) {
	order := []float64{}
	res, err := Search([]Axis{{Name: "a", Values: []float64{10, 20, 30}}},
		func(p Point) (float64, error) {
			order = append(order, p["a"])
			return 1, nil // all tied
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["a"] != 10 {
		t.Fatalf("tie should go to the first candidate, got %v", res.Best)
	}
	if order[0] != 10 || order[2] != 30 {
		t.Fatal("enumeration order not deterministic")
	}
}

func TestGridSize(t *testing.T) {
	axes := []Axis{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{1, 2, 3}},
	}
	if GridSize(axes) != 6 {
		t.Fatalf("GridSize = %d, want 6", GridSize(axes))
	}
	if GridSize(nil) != 0 {
		t.Fatal("empty grid should be 0")
	}
}
