// Package tune implements the grid-search protocol the DistHD paper uses
// to pick hyperparameters for its DNN and SVM comparators ("we utilize the
// common practice of grid search to identify the best hyper-parameters for
// each model", §IV-B): enumerate the cartesian product of per-axis values,
// score each point with a user-supplied objective on a validation split,
// and return the best point. The search is deterministic and sequential —
// candidates are scored in enumeration order, first-best wins ties — so
// tuned experiments stay reproducible.
package tune

import (
	"fmt"
	"math"
)

// Axis is one hyperparameter dimension of the grid.
type Axis struct {
	// Name labels the axis in Point maps ("lr", "hidden", …).
	Name string
	// Values are the candidate settings, tried in order.
	Values []float64
}

// Point maps axis names to chosen values.
type Point map[string]float64

// Result reports the winning point.
type Result struct {
	Best      Point
	BestScore float64
	// Evaluated counts scored grid points.
	Evaluated int
	// Scores records every point's score in enumeration order.
	Scores []float64
}

// Search enumerates the full grid and returns the point with the highest
// objective value. The objective may return an error to abort the search.
func Search(axes []Axis, objective func(Point) (float64, error)) (*Result, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("tune: no axes to search")
	}
	for _, a := range axes {
		if a.Name == "" {
			return nil, fmt.Errorf("tune: axis with empty name")
		}
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("tune: axis %q has no values", a.Name)
		}
	}
	res := &Result{BestScore: math.Inf(-1)}
	idx := make([]int, len(axes))
	for {
		p := Point{}
		for i, a := range axes {
			p[a.Name] = a.Values[idx[i]]
		}
		score, err := objective(p)
		if err != nil {
			return nil, fmt.Errorf("tune: objective at %v: %w", p, err)
		}
		res.Evaluated++
		res.Scores = append(res.Scores, score)
		if score > res.BestScore {
			res.BestScore = score
			res.Best = p
		}
		// advance the mixed-radix counter
		i := 0
		for ; i < len(axes); i++ {
			idx[i]++
			if idx[i] < len(axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i == len(axes) {
			return res, nil
		}
	}
}

// GridSize returns the number of points the axes span.
func GridSize(axes []Axis) int {
	if len(axes) == 0 {
		return 0
	}
	n := 1
	for _, a := range axes {
		n *= len(a.Values)
	}
	return n
}
