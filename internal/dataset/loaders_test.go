package dataset

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1.0,2.0,0\n3.0,4.0,1\n5.5,6.5,0\n"
	d, err := ReadCSV(strings.NewReader(in), -1)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.Features() != 2 || d.Classes != 2 {
		t.Fatalf("shape N=%d q=%d k=%d", d.N(), d.Features(), d.Classes)
	}
	if d.X.At(1, 1) != 4.0 || d.Y[1] != 1 {
		t.Fatal("wrong parsed values")
	}
}

func TestReadCSVLabelColumn(t *testing.T) {
	in := "2,1.5,2.5\n7,3.5,4.5\n"
	d, err := ReadCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Features() != 2 {
		t.Fatalf("features = %d, want 2", d.Features())
	}
	// labels 2 and 7 re-indexed to 0 and 1
	if d.Y[0] != 0 || d.Y[1] != 1 || d.Classes != 2 {
		t.Fatalf("label re-indexing wrong: %v (k=%d)", d.Y, d.Classes)
	}
}

func TestReadCSVSkipsCommentsAndBlank(t *testing.T) {
	in := "# header comment\n\n1,0\n2,1\n"
	d, err := ReadCSV(strings.NewReader(in), -1)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 {
		t.Fatalf("N = %d, want 2", d.N())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"a,b,0\n",          // bad feature
		"1.0,2.0,x\n",      // bad label
		"1,2,0\n1,2,3,1\n", // ragged
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), -1); err == nil {
			t.Fatalf("case %d: bad CSV accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	train, _, err := tinySpec(20).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, train); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != train.N() || back.Features() != train.Features() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < back.N(); i++ {
		if back.Y[i] != train.Y[i] {
			t.Fatal("round trip changed labels")
		}
	}
}

func writeIDXPair(t *testing.T, n, h, w int, pixels []byte, labels []byte) (img, lab *bytes.Buffer) {
	t.Helper()
	img = &bytes.Buffer{}
	for _, v := range []uint32{idxMagicU8Images, uint32(n), uint32(h), uint32(w)} {
		if err := binary.Write(img, binary.BigEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	img.Write(pixels)
	lab = &bytes.Buffer{}
	for _, v := range []uint32{idxMagicU8Labels, uint32(n)} {
		if err := binary.Write(lab, binary.BigEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	lab.Write(labels)
	return img, lab
}

func TestReadIDX(t *testing.T) {
	img, lab := writeIDXPair(t, 2, 2, 2, []byte{0, 255, 128, 0, 10, 20, 30, 40}, []byte{3, 7})
	d, err := ReadIDX(img, lab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.Features() != 4 {
		t.Fatalf("shape N=%d q=%d", d.N(), d.Features())
	}
	if d.X.At(0, 1) != 1.0 {
		t.Fatalf("pixel scaling wrong: %v", d.X.At(0, 1))
	}
	if d.Y[0] != 3 || d.Y[1] != 7 {
		t.Fatal("labels wrong")
	}
}

func TestReadIDXBadMagic(t *testing.T) {
	img, lab := writeIDXPair(t, 1, 1, 1, []byte{9}, []byte{0})
	img.Bytes()[3] = 0x99 // corrupt magic
	if _, err := ReadIDX(img, lab, 10); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadIDXCountMismatch(t *testing.T) {
	img, _ := writeIDXPair(t, 2, 1, 1, []byte{1, 2}, nil)
	_, lab := writeIDXPair(t, 1, 1, 1, []byte{0}, []byte{0})
	if _, err := ReadIDX(img, lab, 10); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestReadIDXTruncated(t *testing.T) {
	img, lab := writeIDXPair(t, 2, 2, 2, []byte{1, 2, 3}, []byte{0, 1}) // short pixels
	if _, err := ReadIDX(img, lab, 10); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
