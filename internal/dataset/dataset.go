// Package dataset provides the data substrate for the DistHD reproduction:
// an in-memory dataset container, feature normalization, train/test
// splitting, file loaders (CSV and IDX/MNIST formats) and — because the
// paper's five evaluation datasets cannot be redistributed here — synthetic
// generators that are matched to each dataset's published shape (feature
// count n, class count k) and qualitative structure (multi-modal classes on
// nonlinear manifolds, with per-dataset overlap controlling difficulty).
//
// All generated learners in this repo consume the same samples, so the
// relative comparisons the paper makes (HDC vs DNN vs SVM, static vs
// dynamic encoders, dimensionality sweeps) are preserved even though the
// absolute accuracy values differ from the authors' testbed.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Dataset is a labeled classification dataset held in memory.
type Dataset struct {
	Name string
	// X holds one sample per row (N × Features).
	X *mat.Dense
	// Y holds the class label of each row, in [0, Classes).
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// N returns the number of samples.
func (d *Dataset) N() int { return d.X.Rows }

// Features returns the feature dimensionality.
func (d *Dataset) Features() int { return d.X.Cols }

// Validate checks internal consistency and returns a descriptive error for
// any violation (row/label count mismatch, label out of range).
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("dataset %q: nil feature matrix", d.Name)
	}
	if len(d.Y) != d.X.Rows {
		return fmt.Errorf("dataset %q: %d rows but %d labels", d.Name, d.X.Rows, len(d.Y))
	}
	if d.Classes <= 0 {
		return fmt.Errorf("dataset %q: non-positive class count %d", d.Name, d.Classes)
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("dataset %q: label %d at row %d outside [0,%d)", d.Name, y, i, d.Classes)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	y := make([]int, len(d.Y))
	copy(y, d.Y)
	return &Dataset{Name: d.Name, X: d.X.Clone(), Y: y, Classes: d.Classes}
}

// Subset returns a new dataset containing the given row indices (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:    d.Name,
		X:       mat.New(len(idx), d.Features()),
		Y:       make([]int, len(idx)),
		Classes: d.Classes,
	}
	for i, j := range idx {
		copy(out.X.Row(i), d.X.Row(j))
		out.Y[i] = d.Y[j]
	}
	return out
}

// Shuffle permutes the samples in place using the given stream.
func (d *Dataset) Shuffle(r *rng.Rand) {
	r.Shuffle(d.N(), func(i, j int) {
		ri, rj := d.X.Row(i), d.X.Row(j)
		for c := range ri {
			ri[c], rj[c] = rj[c], ri[c]
		}
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions d into train and test sets with the requested train
// fraction after a deterministic shuffle.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset) {
	c := d.Clone()
	c.Shuffle(rng.New(seed))
	nTrain := int(math.Round(trainFrac * float64(c.N())))
	if nTrain < 0 {
		nTrain = 0
	}
	if nTrain > c.N() {
		nTrain = c.N()
	}
	idx := make([]int, c.N())
	for i := range idx {
		idx[i] = i
	}
	train = c.Subset(idx[:nTrain])
	test = c.Subset(idx[nTrain:])
	return train, test
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Normalizer holds per-feature affine statistics fit on a training set and
// applied to any split, so test data never leaks into the statistics.
type Normalizer struct {
	Mean, InvStd []float64
}

// FitNormalizer computes per-feature mean and 1/std over d. Features with
// zero variance get InvStd = 0, mapping them to constant 0 after Apply.
func FitNormalizer(d *Dataset) *Normalizer {
	q := d.Features()
	n := &Normalizer{Mean: make([]float64, q), InvStd: make([]float64, q)}
	count := float64(d.N())
	if count == 0 {
		return n
	}
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		for j, v := range row {
			n.Mean[j] += v
		}
	}
	for j := range n.Mean {
		n.Mean[j] /= count
	}
	variance := make([]float64, q)
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		for j, v := range row {
			dv := v - n.Mean[j]
			variance[j] += dv * dv
		}
	}
	for j := range variance {
		sd := math.Sqrt(variance[j] / count)
		if sd > 1e-12 {
			n.InvStd[j] = 1 / sd
		}
	}
	return n
}

// Apply z-scores every sample of d in place using the fitted statistics.
func (n *Normalizer) Apply(d *Dataset) {
	if d.Features() != len(n.Mean) {
		panic(fmt.Sprintf("dataset: normalizer fitted for %d features applied to %d", len(n.Mean), d.Features()))
	}
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		for j := range row {
			row[j] = (row[j] - n.Mean[j]) * n.InvStd[j]
		}
	}
}

// NormalizePair fits on train and applies to both splits, the standard
// leakage-free protocol used by every experiment in this repo.
func NormalizePair(train, test *Dataset) {
	n := FitNormalizer(train)
	n.Apply(train)
	n.Apply(test)
}
