package dataset

import (
	"fmt"

	"repro/internal/rng"
)

// DriftKind selects how a DriftStream corrupts the input distribution over
// time.
type DriftKind int

const (
	// DriftShift adds a growing constant offset to a subset of features —
	// sensor decalibration.
	DriftShift DriftKind = iota
	// DriftScale multiplies a subset of features by a growing gain —
	// sensor sensitivity drift.
	DriftScale
	// DriftNoise adds Gaussian noise of growing magnitude — degrading
	// signal quality.
	DriftNoise
)

// DriftStream wraps a dataset as a time-ordered stream whose input
// distribution drifts as it is consumed: sample i is corrupted with
// severity proportional to i/N. It models the slow environmental change an
// always-on edge deployment faces (sensor aging, remounting, seasonal
// shift) and is the substrate behind the continual-learning experiments
// and the drift example.
type DriftStream struct {
	src  *Dataset
	kind DriftKind
	// MaxSeverity is the corruption magnitude reached at the stream's end.
	maxSeverity float64
	// affected lists the feature indices the drift touches.
	affected []int
	noise    *rng.Rand
	pos      int
}

// NewDriftStream builds a stream over d (consumed in row order) that
// drifts `fraction` of the features up to maxSeverity by the final sample.
func NewDriftStream(d *Dataset, kind DriftKind, fraction, maxSeverity float64, seed uint64) (*DriftStream, error) {
	if d.N() == 0 {
		return nil, fmt.Errorf("dataset: drift stream over empty dataset")
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: drift fraction %v outside (0,1]", fraction)
	}
	if maxSeverity < 0 {
		return nil, fmt.Errorf("dataset: negative drift severity %v", maxSeverity)
	}
	switch kind {
	case DriftShift, DriftScale, DriftNoise:
	default:
		return nil, fmt.Errorf("dataset: unknown drift kind %d", kind)
	}
	r := rng.New(seed)
	q := d.Features()
	count := int(fraction * float64(q))
	if count < 1 {
		count = 1
	}
	affected := r.Perm(q)[:count]
	return &DriftStream{
		src:         d,
		kind:        kind,
		maxSeverity: maxSeverity,
		affected:    affected,
		noise:       r.Split(),
	}, nil
}

// Len returns the stream length.
func (s *DriftStream) Len() int { return s.src.N() }

// Remaining returns how many samples have not been consumed yet.
func (s *DriftStream) Remaining() int { return s.src.N() - s.pos }

// Severity returns the corruption magnitude applied at stream position i.
func (s *DriftStream) Severity(i int) float64 {
	if s.src.N() <= 1 {
		return s.maxSeverity
	}
	return s.maxSeverity * float64(i) / float64(s.src.N()-1)
}

// Next returns the next (drifted) sample and its label; ok is false when
// the stream is exhausted. The returned slice is a fresh copy.
func (s *DriftStream) Next() (x []float64, label int, ok bool) {
	if s.pos >= s.src.N() {
		return nil, 0, false
	}
	i := s.pos
	s.pos++
	x = make([]float64, s.src.Features())
	copy(x, s.src.X.Row(i))
	sev := s.Severity(i)
	for _, f := range s.affected {
		switch s.kind {
		case DriftShift:
			x[f] += sev
		case DriftScale:
			x[f] *= 1 + sev
		case DriftNoise:
			x[f] += sev * s.noise.NormFloat64()
		}
	}
	return x, s.src.Y[i], true
}

// Reset rewinds the stream to the beginning. The noise stream is NOT
// rewound, so a DriftNoise replay differs sample-by-sample (as a fresh
// physical run would); DriftShift and DriftScale replays are identical.
func (s *DriftStream) Reset() { s.pos = 0 }
